// Command tracegen generates and summarizes the synthetic CAIDA-like
// traces used by the experiments: per-sub-window flow and packet counts,
// the flow-size distribution's tail, and the injected anomaly schedule.
//
// Usage:
//
//	tracegen -seed 42 -flows 20000 -duration 2.5s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"omniwindow/internal/experiments"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, generates (or loads)
// and summarizes the trace, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 42, "random seed")
	flows := fs.Int("flows", 20000, "background flow count")
	duration := fs.Duration("duration", 2500*time.Millisecond, "trace duration")
	subWindow := fs.Duration("subwindow", 100*time.Millisecond, "sub-window for the summary")
	anomalies := fs.Bool("anomalies", true, "inject the Exp#1 anomaly schedule")
	out := fs.String("out", "", "save the trace to this .owtr file")
	in := fs.String("in", "", "summarize an existing .owtr file instead of generating")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var pkts []packet.Packet
	if *in != "" {
		var err error
		pkts, err = trace.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(stderr, "tracegen: %v\n", err)
			return 1
		}
		if n := len(pkts); n > 0 {
			*duration = time.Duration(pkts[n-1].Time + 1)
		}
	} else {
		cfg := trace.DefaultConfig(*seed)
		cfg.Flows = *flows
		cfg.Duration = int64(*duration)
		if *anomalies {
			sc := experiments.SmallScale(*seed)
			sc.Duration = cfg.Duration
			cfg.Anomalies = experiments.Exp1Anomalies(sc, query.DefaultThresholds())
		}
		pkts = trace.New(cfg).Generate()
		if *out != "" {
			if err := trace.WriteFile(*out, pkts); err != nil {
				fmt.Fprintf(stderr, "tracegen: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", *out)
		}
	}

	fmt.Fprintf(stdout, "trace: %d packets, %v\n", len(pkts), *duration)
	if len(pkts) == 0 {
		fmt.Fprintln(stderr, "tracegen: empty trace, nothing to summarize")
		return 1
	}

	// Per-sub-window summary.
	subNs := int64(*subWindow)
	nSub := (int64(*duration) + subNs - 1) / subNs
	type stat struct {
		pkts  int
		flows map[packet.FlowKey]bool
	}
	stats := make([]stat, nSub)
	for i := range stats {
		stats[i].flows = make(map[packet.FlowKey]bool)
	}
	sizes := map[packet.FlowKey]int{}
	for i := range pkts {
		swi := pkts[i].Time / subNs
		if swi >= 0 && swi < nSub {
			stats[swi].pkts++
			stats[swi].flows[pkts[i].Key] = true
		}
		sizes[pkts[i].Key]++
	}
	fmt.Fprintf(stdout, "\n%-10s %10s %10s\n", "sub-win", "packets", "flows")
	for i, s := range stats {
		fmt.Fprintf(stdout, "%-10d %10d %10d\n", i, s.pkts, len(s.flows))
	}

	// Flow-size tail.
	all := make([]int, 0, len(sizes))
	for _, n := range sizes {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	fmt.Fprintf(stdout, "\nflows: %d total; top sizes:", len(all))
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Fprintf(stdout, " %d", all[i])
	}
	median := all[len(all)/2]
	fmt.Fprintf(stdout, "\nmedian flow size: %d packets (heavy-tailed: top/median = %.0fx)\n",
		median, float64(all[0])/float64(median))
	return 0
}
