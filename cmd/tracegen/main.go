// Command tracegen generates and summarizes the synthetic CAIDA-like
// traces used by the experiments: per-sub-window flow and packet counts,
// the flow-size distribution's tail, and the injected anomaly schedule.
//
// Usage:
//
//	tracegen -seed 42 -flows 20000 -duration 2.5s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"omniwindow/internal/experiments"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	flows := flag.Int("flows", 20000, "background flow count")
	duration := flag.Duration("duration", 2500*time.Millisecond, "trace duration")
	subWindow := flag.Duration("subwindow", 100*time.Millisecond, "sub-window for the summary")
	anomalies := flag.Bool("anomalies", true, "inject the Exp#1 anomaly schedule")
	out := flag.String("out", "", "save the trace to this .owtr file")
	in := flag.String("in", "", "summarize an existing .owtr file instead of generating")
	flag.Parse()

	var pkts []packet.Packet
	if *in != "" {
		var err error
		pkts, err = trace.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if n := len(pkts); n > 0 {
			*duration = time.Duration(pkts[n-1].Time + 1)
		}
	} else {
		cfg := trace.DefaultConfig(*seed)
		cfg.Flows = *flows
		cfg.Duration = int64(*duration)
		if *anomalies {
			sc := experiments.SmallScale(*seed)
			sc.Duration = cfg.Duration
			cfg.Anomalies = experiments.Exp1Anomalies(sc, query.DefaultThresholds())
		}
		pkts = trace.New(cfg).Generate()
		if *out != "" {
			if err := trace.WriteFile(*out, pkts); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}

	fmt.Printf("trace: %d packets, %v\n", len(pkts), *duration)

	// Per-sub-window summary.
	subNs := int64(*subWindow)
	nSub := (int64(*duration) + subNs - 1) / subNs
	type stat struct {
		pkts  int
		flows map[packet.FlowKey]bool
	}
	stats := make([]stat, nSub)
	for i := range stats {
		stats[i].flows = make(map[packet.FlowKey]bool)
	}
	sizes := map[packet.FlowKey]int{}
	for i := range pkts {
		swi := pkts[i].Time / subNs
		if swi >= 0 && swi < nSub {
			stats[swi].pkts++
			stats[swi].flows[pkts[i].Key] = true
		}
		sizes[pkts[i].Key]++
	}
	fmt.Printf("\n%-10s %10s %10s\n", "sub-win", "packets", "flows")
	for i, s := range stats {
		fmt.Printf("%-10d %10d %10d\n", i, s.pkts, len(s.flows))
	}

	// Flow-size tail.
	all := make([]int, 0, len(sizes))
	for _, n := range sizes {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	fmt.Printf("\nflows: %d total; top sizes:", len(all))
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Printf(" %d", all[i])
	}
	median := all[len(all)/2]
	fmt.Printf("\nmedian flow size: %d packets (heavy-tailed: top/median = %.0fx)\n",
		median, float64(all[0])/float64(median))
}
