package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunGenerateSummarizes: a small generated trace prints the packet
// count, the per-sub-window table and the flow-size tail.
func TestRunGenerateSummarizes(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-flows", "100", "-duration", "300ms", "-anomalies=false"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"trace:", "sub-win", "packets", "flows", "median flow size:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunWriteThenRead: -out persists a trace that -in can summarize back.
func TestRunWriteThenRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.owtr")
	var out, errb bytes.Buffer
	if code := run([]string{"-flows", "100", "-duration", "300ms", "-anomalies=false", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("generate exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing write confirmation:\n%s", out.String())
	}
	firstTrace := out.String()[strings.Index(out.String(), "trace:"):]

	out.Reset()
	errb.Reset()
	if code := run([]string{"-in", path}, &out, &errb); code != 0 {
		t.Fatalf("readback exit %d, stderr: %s", code, errb.String())
	}
	readTrace := out.String()[strings.Index(out.String(), "trace:"):]
	// Byte-identical summary: same packets, same windows, same tail.
	if firstTrace != readTrace {
		t.Errorf("readback summary differs:\n--- generated\n%s\n--- readback\n%s", firstTrace, readTrace)
	}
}

// TestRunErrors: missing input file and bad flags map to exit codes 1 and 2.
func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "nope.owtr")}, &out, &errb); code != 1 {
		t.Errorf("missing -in file: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "tracegen:") {
		t.Errorf("missing error prefix: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-flows", "lots"}, &out, &errb); code != 2 {
		t.Errorf("bad flag value: exit %d, want 2", code)
	}
}
