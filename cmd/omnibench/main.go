// Command omnibench regenerates the paper's tables and figures on the
// simulated substrate. Each experiment prints rows shaped like the
// corresponding figure of the paper's evaluation (§9).
//
// Usage:
//
//	omnibench -exp all            # every experiment
//	omnibench -exp 1              # Exp#1 only (Figure 7)
//	omnibench -exp 9 -seed 7      # Exp#9 with a different seed
//	omnibench -exp ablations      # the design-choice ablations
//	omnibench -exp 2 -scale tiny  # fast, reduced-scale run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"omniwindow/internal/dml"
	"omniwindow/internal/experiments"
	"omniwindow/internal/switchsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, runs the selected
// experiments, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omnibench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: 1-10, 'ablations' or 'all'")
	seed := fs.Int64("seed", 2023, "random seed")
	scale := fs.String("scale", "small", "workload scale: 'small' or 'tiny'")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.SmallScale(*seed)
	case "tiny":
		sc = experiments.TinyScale(*seed)
	default:
		fmt.Fprintf(stderr, "unknown scale %q\n", *scale)
		return 2
	}

	section := func(title string) {
		fmt.Fprintf(stdout, "\n=== %s ===\n", title)
	}
	runners := map[string]func(){
		"1": func() {
			section("Exp#1 — query-driven telemetry accuracy (Figure 7)")
			fmt.Fprint(stdout, experiments.RunExp1(sc).Table())
		},
		"2": func() {
			section("Exp#2 — sketch-based algorithms (Figure 8)")
			fmt.Fprint(stdout, experiments.RunExp2(sc).Table())
		},
		"3": func() {
			section("Exp#3 — DML case study via user-defined signals (Figure 9)")
			res := experiments.RunExp3(dml.DefaultConfig(*seed))
			fmt.Fprintf(stdout, "max in-network measurement error: %.4f\n", res.MaxRelError())
			fmt.Fprint(stdout, res.Table())
		},
		"4": func() {
			section("Exp#4 — controller time breakdown O1-O5 (Figure 10)")
			fmt.Fprint(stdout, experiments.RunExp4(sc).Table())
		},
		"5": func() {
			section("Exp#5 — switch resource breakdown (Table 2)")
			fmt.Fprint(stdout, experiments.RunExp5(sc).Table())
		},
		"6": func() {
			section("Exp#6 — AFR generation & collection time (Figure 11)")
			passes, afrs := experiments.ValidateExp6Passes(4096, 16)
			fmt.Fprintf(stdout, "functional check: %d passes enumerated %d AFRs\n", passes, afrs)
			fmt.Fprint(stdout, experiments.RunExp6(experiments.DefaultExp6Config()).Table())
		},
		"7": func() {
			section("Exp#7 — AFR aggregation time, 1M flows (Figure 12)")
			fmt.Fprint(stdout, experiments.RunExp7(1<<20).Table())
		},
		"8": func() {
			section("Exp#8 — in-switch reset time (Figure 13)")
			passes, clean := experiments.ValidateExp8Reset(4, 4096, 16)
			fmt.Fprintf(stdout, "functional check: %d passes, registers clean: %v\n", passes, clean)
			fmt.Fprint(stdout, experiments.RunExp8(65536, switchsim.DefaultCosts()).Table())
		},
		"9": func() {
			section("Exp#9 — window consistency vs PTP deviation (Figure 14)")
			fmt.Fprint(stdout, experiments.RunExp9(experiments.DefaultExp9Config(*seed)).Table())
		},
		"10": func() {
			section("Exp#10 — accuracy under different window sizes (Figure 15)")
			fmt.Fprint(stdout, experiments.RunExp10(sc).Table())
		},
		"zoo": func() {
			section("Extension — heavy-hitter sketch zoo under OmniWindow")
			fmt.Fprint(stdout, experiments.RunSketchZoo(sc).Table())
		},
		"ablations": func() {
			section("Ablation A1 — sub-window merge strategies (§4.1)")
			fmt.Fprint(stdout, experiments.RunAblationMerge(sc).Table())
			section("Ablation A2 — SALU layout (§6)")
			fmt.Fprint(stdout, experiments.RunAblationSALU(4, 65536, 2).Table())
			section("Ablation A3 — flowkey array size (Algorithm 1)")
			fmt.Fprint(stdout, experiments.RunAblationFlowkey(sc, []int{1024, 4096, 16384}).Table())
			section("Ablation A5 — sub-windows per window")
			fmt.Fprint(stdout, experiments.RunAblationSubWindows(sc, []int{2, 5, 10}).Table())
		},
	}

	order := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "ablations", "zoo"}
	selected := strings.Split(*exp, ",")
	if *exp == "all" {
		selected = order
	}
	start := time.Now()
	for _, name := range selected {
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q (want 1-10, 'ablations' or 'all')\n", name)
			return 2
		}
		runner()
	}
	fmt.Fprintf(stdout, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}
