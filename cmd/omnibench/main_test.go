package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSingleExperiment: one cheap experiment at tiny scale completes
// and prints its section header plus the timing trailer.
func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "5", "-scale", "tiny"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"=== Exp#5", "completed in"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunExperimentList: a comma list runs each named experiment in order.
func TestRunExperimentList(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "5,8", "-scale", "tiny"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	i5 := strings.Index(got, "=== Exp#5")
	i8 := strings.Index(got, "=== Exp#8")
	if i5 < 0 || i8 < 0 || i8 < i5 {
		t.Errorf("experiments missing or out of order (Exp#5 at %d, Exp#8 at %d):\n%s", i5, i8, got)
	}
}

// TestRunErrors: unknown scale, unknown experiment and bad flags all exit 2.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"unknown scale", []string{"-exp", "5", "-scale", "huge"}, `unknown scale "huge"`},
		{"unknown experiment", []string{"-exp", "99", "-scale", "tiny"}, `unknown experiment "99"`},
		{"bad flag", []string{"-seed", "notanumber"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, errb.String())
			}
		})
	}
}
