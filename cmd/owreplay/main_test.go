package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunHeavyHitter: a small generated replay completes and reports the
// packet count and collect-and-reset statistics.
func TestRunHeavyHitter(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-flows", "200", "-duration", "500ms",
		"-app", "heavy", "-window", "200ms", "-slide", "100ms", "-threshold", "50",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"replayed", "sub-windows", "AFRs", "worst C&R"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunSpreadApp: the distinct-counting app wires up and replays too.
func TestRunSpreadApp(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-flows", "200", "-duration", "400ms",
		"-app", "spread", "-window", "200ms", "-slide", "200ms", "-threshold", "10",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "replayed") {
		t.Errorf("output missing replay summary:\n%s", out.String())
	}
}

// TestRunErrors: unknown app and a window that is not a multiple of the
// sub-window fail with exit 1; unparseable flags fail with exit 2.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stderr
	}{
		{"unknown app", []string{"-app", "nosuch"}, 1, `unknown app "nosuch"`},
		{"bad window multiple", []string{"-window", "250ms", "-slide", "100ms"}, 1, "must be positive multiples"},
		{"zero sub-window", []string{"-subwindow", "0s"}, 1, "must be positive"},
		{"bad flag", []string{"-flows", "many"}, 2, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			// Keep failure-path runs cheap: tiny trace.
			args := append([]string{"-flows", "10", "-duration", time.Millisecond.String()}, tc.args...)
			if code := run(args, &out, &errb); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, errb.String())
			}
		})
	}
}
