// Command owreplay runs an OmniWindow deployment over a trace — generated
// on the fly or loaded from a .owtr file (see tracegen) — with a choice of
// telemetry app and window plan, and prints the merged window results.
//
// Usage:
//
//	owreplay -app heavy -window 500ms -slide 100ms -threshold 300
//	owreplay -in trace.owtr -app spread -threshold 120
//	owreplay -app bytes -window 1s -slide 1s -top 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, replays the trace,
// prints results to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("owreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "replay this .owtr trace (default: generate one)")
	seed := fs.Int64("seed", 42, "seed for the generated trace")
	flows := fs.Int("flows", 10000, "background flows of the generated trace")
	duration := fs.Duration("duration", 2500*time.Millisecond, "generated trace length")
	app := fs.String("app", "heavy", "telemetry app: heavy | bytes | spread")
	windowLen := fs.Duration("window", 500*time.Millisecond, "window length")
	slide := fs.Duration("slide", 100*time.Millisecond, "slide (equal to -window for tumbling)")
	subWindow := fs.Duration("subwindow", 100*time.Millisecond, "sub-window length")
	threshold := fs.Uint64("threshold", 300, "detection threshold")
	memKB := fs.Int("mem", 256, "per-sub-window sketch memory (KB)")
	top := fs.Int("top", 10, "print at most this many detections per window")
	rdma := fs.Bool("rdma", false, "use the RDMA collection path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "owreplay: %v\n", err)
		return 1
	}

	var pkts []packet.Packet
	if *in != "" {
		var err error
		pkts, err = trace.ReadFile(*in)
		if err != nil {
			return fail(err)
		}
		if n := len(pkts); n > 0 {
			*duration = time.Duration(pkts[n-1].Time + 1)
		}
	} else {
		cfg := trace.DefaultConfig(*seed)
		cfg.Flows = *flows
		cfg.Duration = int64(*duration)
		pkts = trace.New(cfg).Generate()
	}

	if *subWindow <= 0 {
		return fail(fmt.Errorf("sub-window (%v) must be positive", *subWindow))
	}
	size := int(*windowLen / *subWindow)
	slideSub := int(*slide / *subWindow)
	if size < 1 || slideSub < 1 || *windowLen%*subWindow != 0 || *slide%*subWindow != 0 {
		return fail(fmt.Errorf("window (%v) and slide (%v) must be positive multiples of the sub-window (%v)",
			*windowLen, *slide, *subWindow))
	}

	mem := *memKB * 1024
	cfg := omniwindow.Config{
		SubWindow: *subWindow,
		Plan:      omniwindow.Sliding(size, slideSub),
		Threshold: *threshold,
		Slots:     1, // set below
		RDMA:      *rdma,
	}
	switch *app {
	case "heavy":
		cfg.Kind = omniwindow.Frequency
		w := sketch.NewCountMinBytes(4, mem, 1).Width()
		cfg.Slots = w
		cfg.AppFactory = func(region int) omniwindow.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMinBytes(4, mem, uint64(region+1)), w)
		}
	case "bytes":
		cfg.Kind = omniwindow.Frequency
		w := sketch.NewCountMinBytes(4, mem, 1).Width()
		cfg.Slots = w
		cfg.AppFactory = func(region int) omniwindow.StateApp {
			a := telemetry.NewFrequencyApp(sketch.NewCountMinBytes(4, mem, uint64(region+1)), w)
			a.VolumeOf = func(p *packet.Packet) uint64 { return uint64(p.Size) }
			return a
		}
	case "spread":
		cfg.Kind = omniwindow.Distinction
		slots := mem / (4 * sketch.SPSBucketBytes(4))
		cfg.Slots = slots
		cfg.AppFactory = func(region int) omniwindow.StateApp {
			return telemetry.NewSpreadSketchApp(sketch.NewSpreadSketchBytes(4, mem, uint64(region+1)), slots)
		}
		cfg.KeyOf = func(p *packet.Packet) (packet.FlowKey, bool) { return p.Key.SrcHostKey(), true }
	default:
		return fail(fmt.Errorf("unknown app %q (want heavy | bytes | spread)", *app))
	}
	cfg.CaptureValues = true
	cfg.Tracker = afr.TrackerConfig{BufferKeys: 16384, BloomBits: 1 << 20, BloomHashes: 3}

	d, err := omniwindow.New(cfg)
	if err != nil {
		return fail(err)
	}

	start := time.Now()
	results := d.RunFor(pkts, int64(*duration))
	elapsed := time.Since(start)

	st := d.Stats()
	fmt.Fprintf(stdout, "replayed %d packets in %v (%.0f ns/pkt); %d sub-windows, %d AFRs, worst C&R %v\n\n",
		st.Packets, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(maxInt(st.Packets, 1)),
		st.SubWindows, st.AFRs, st.MaxCollectVirtual)

	for _, w := range results {
		if len(w.Detected) == 0 {
			continue
		}
		fmt.Fprintf(stdout, "window [sub %d..%d] — %d detections\n", w.Start, w.End, len(w.Detected))
		det := append([]packet.FlowKey(nil), w.Detected...)
		sort.Slice(det, func(i, j int) bool { return w.Values[det[i]] > w.Values[det[j]] })
		for i, k := range det {
			if i >= *top {
				fmt.Fprintf(stdout, "  ... %d more\n", len(det)-*top)
				break
			}
			fmt.Fprintf(stdout, "  %-45s %d\n", k, w.Values[k])
		}
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
