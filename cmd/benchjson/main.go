// benchjson converts `go test -bench` output into machine-readable JSON
// so CI and the driver can diff performance numbers across PRs without
// scraping the human-oriented text format.
//
// It reads the benchmark log from stdin (or the files named as
// arguments), parses every result line, and writes a JSON document:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Non-benchmark lines (package headers, PASS/ok trailers, warm-up noise)
// are passed through to stderr untouched, so the command is transparent
// in a pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkFabricProcess", not "BenchmarkFabricProcess-8").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if absent.
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem
	// (omitted from the JSON otherwise).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom b.ReportMetric units (e.g. "windows/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the document benchjson emits.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		readers := make([]io.Reader, 0, flag.NArg())
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc := Output{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  1.5 windows/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters}
	seenNs := false
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, seenNs
}
