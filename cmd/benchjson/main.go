// benchjson converts `go test -bench` output into machine-readable JSON
// so CI and the driver can diff performance numbers across PRs without
// scraping the human-oriented text format.
//
// It reads the benchmark log from stdin (or the files named as
// arguments), parses every result line, and writes a JSON document:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Non-benchmark lines (package headers, PASS/ok trailers, warm-up noise)
// are passed through to stderr untouched, so the command is transparent
// in a pipe.
//
// It is also the perf-regression gate: compare mode diffs two of its own
// JSON documents and fails when any shared benchmark slowed down past the
// tolerance —
//
//	benchjson -compare BENCH_PR4.json BENCH_NOW.json -tolerance 0.15
//
// exits 1 if any benchmark's ns/op grew by more than 15%, or if any
// benchmark's allocs/op grew past the same fractional tolerance when both
// documents carry -benchmem data (a 0 allocs/op baseline therefore pins
// the benchmark at zero: any new allocation fails the gate). Improvements,
// added and removed benchmarks are reported but never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkFabricProcess", not "BenchmarkFabricProcess-8").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if absent.
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem
	// (omitted from the JSON otherwise).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds any custom b.ReportMetric units (e.g. "windows/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the document benchjson emits.
type Output struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	compare := flag.Bool("compare", false, "diff two benchjson documents (baseline current) and fail on ns/op regressions")
	tolerance := flag.Float64("tolerance", 0.15, "with -compare: maximum allowed fractional ns/op increase")
	flag.Parse()

	if *compare {
		// The flag package stops at the first positional argument, so
		// `-compare baseline.json current.json -tolerance 0.15` leaves
		// -tolerance unparsed; accept it in trailing position too.
		files, err := parseCompareArgs(flag.Args(), tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		regressed, err := compareFiles(os.Stdout, files[0], files[1], *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		readers := make([]io.Reader, 0, flag.NArg())
		for _, name := range flag.Args() {
			f, err := os.Open(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc := Output{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseCompareArgs splits -compare's remaining arguments into exactly two
// file paths, honouring a -tolerance flag in trailing position (the flag
// package only parses flags that precede the first positional argument).
func parseCompareArgs(args []string, tolerance *float64) ([]string, error) {
	var files []string
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; arg {
		case "-tolerance", "--tolerance":
			if i+1 >= len(args) {
				return nil, fmt.Errorf("%s needs a value", arg)
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad tolerance %q: %v", args[i], err)
			}
			*tolerance = v
		default:
			files = append(files, arg)
		}
	}
	if len(files) != 2 {
		return nil, fmt.Errorf("-compare needs exactly two files: baseline current")
	}
	return files, nil
}

// compareFiles diffs two benchjson documents and reports per-benchmark
// ns/op movement. It returns regressed=true when any benchmark present in
// both grew by more than tolerance (a fraction, e.g. 0.15 = +15%).
func compareFiles(w io.Writer, baselinePath, currentPath string, tolerance float64) (regressed bool, err error) {
	baseline, err := loadDoc(baselinePath)
	if err != nil {
		return false, err
	}
	current, err := loadDoc(currentPath)
	if err != nil {
		return false, err
	}
	return compareDocs(w, baseline, current, tolerance), nil
}

func loadDoc(path string) (Output, error) {
	var doc Output
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

// compareDocs writes one line per benchmark and returns true if any shared
// benchmark regressed past tolerance — in ns/op, or in allocs/op when both
// documents carry -benchmem data. An allocs/op baseline of 0 allows 0:
// zero-allocation hot paths stay pinned at zero. Benchmarks only in one
// document are listed but never fail the gate (renames and additions are
// routine).
func compareDocs(w io.Writer, baseline, current Output, tolerance float64) bool {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	cur := make(map[string]Result, len(current.Benchmarks))
	names := make([]string, 0, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	regressed := false
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  NEW   %-45s %14.0f ns/op\n", name, c.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			fmt.Fprintf(w, "  SKIP  %-45s baseline has no ns/op\n", name)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > tolerance {
			verdict = "REGRESSED"
			regressed = true
		}
		allocs := ""
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			allowed := int64(float64(*b.AllocsPerOp) * (1 + tolerance))
			if *c.AllocsPerOp > allowed {
				verdict = "REGRESSED"
				regressed = true
			}
			allocs = fmt.Sprintf("  %d → %d allocs/op", *b.AllocsPerOp, *c.AllocsPerOp)
		}
		fmt.Fprintf(w, "  %-9s %-45s %14.0f → %14.0f ns/op  (%+.1f%%, tolerance +%.0f%%)%s\n",
			verdict, name, b.NsPerOp, c.NsPerOp, delta*100, tolerance*100, allocs)
	}
	removed := make([]string, 0)
	for name := range base {
		if _, ok := cur[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "  GONE  %-45s (in baseline only)\n", name)
	}
	return regressed
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  1.5 windows/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters}
	seenNs := false
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, seenNs
}
