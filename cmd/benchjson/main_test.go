package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFabricProcess-8  \t 1000 \t 7881 ns/op \t 1559 B/op \t 24 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Name != "BenchmarkFabricProcess" || r.Procs != 8 || r.Iterations != 1000 {
		t.Fatalf("header misparsed: %+v", r)
	}
	if r.NsPerOp != 7881 || r.BytesPerOp == nil || *r.BytesPerOp != 1559 ||
		r.AllocsPerOp == nil || *r.AllocsPerOp != 24 {
		t.Fatalf("metrics misparsed: %+v", r)
	}
}

func TestParseLineWithoutBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkControllerSharded/shards=4-8   50   111.5 ns/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Name != "BenchmarkControllerSharded/shards=4" || r.NsPerOp != 111.5 {
		t.Fatalf("misparsed: %+v", r)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatal("phantom benchmem metrics")
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkX-2  10  5 ns/op  1.5 windows/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Extra["windows/op"] != 1.5 {
		t.Fatalf("custom metric lost: %+v", r)
	}
}

// writeDoc marshals an Output to a temp file for compareFiles.
func writeDoc(t *testing.T, name string, doc Output) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareDetectsRegression: a >tolerance ns/op increase on a shared
// benchmark fails the gate; improvements, additions and removals do not.
func TestCompareDetectsRegression(t *testing.T) {
	baseline := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	current := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20% > 15%
		{Name: "BenchmarkB", NsPerOp: 500},  // improvement
		{Name: "BenchmarkNew", NsPerOp: 42},
	}}
	var sb strings.Builder
	regressed, err := compareFiles(&sb,
		writeDoc(t, "base.json", baseline), writeDoc(t, "cur.json", current), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20% regression at 15% tolerance not flagged")
	}
	report := sb.String()
	for _, want := range []string{
		"REGRESSED", "BenchmarkA", "+20.0%",
		"ok", "BenchmarkB",
		"NEW", "BenchmarkNew",
		"GONE", "BenchmarkGone",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// iptr builds an *int64 literal for Result benchmem fields.
func iptr(n int64) *int64 { return &n }

// TestCompareDetectsAllocRegression: when both documents carry -benchmem
// data, allocs/op growth past the tolerance fails the gate even with
// flat ns/op — GC pressure is a regression in its own right.
func TestCompareDetectsAllocRegression(t *testing.T) {
	baseline := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: iptr(100)},
	}}
	current := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: iptr(130)}, // +30% > 15%
	}}
	var sb strings.Builder
	regressed, err := compareFiles(&sb,
		writeDoc(t, "base.json", baseline), writeDoc(t, "cur.json", current), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("+30%% allocs/op at 15%% tolerance not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "100 → 130 allocs/op") {
		t.Errorf("report missing the allocs movement:\n%s", sb.String())
	}
}

// TestCompareZeroAllocBaselinePinned: a 0 allocs/op baseline allows no
// allocations at all — this is the zero-allocation hot-path pin.
func TestCompareZeroAllocBaselinePinned(t *testing.T) {
	baseline := Output{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: iptr(0)},
	}}
	current := Output{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: iptr(1)},
	}}
	var sb strings.Builder
	regressed, err := compareFiles(&sb,
		writeDoc(t, "base.json", baseline), writeDoc(t, "cur.json", current), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("0 → 1 allocs/op not flagged:\n%s", sb.String())
	}
}

// TestCompareAllocsWithinToleranceAndMissing: allocs inside the tolerance
// pass, and a document without benchmem data never trips the alloc gate.
func TestCompareAllocsWithinToleranceAndMissing(t *testing.T) {
	baseline := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: iptr(100)},
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: iptr(5)},
	}}
	current := Output{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: iptr(110)}, // +10% < 15%
		{Name: "BenchmarkB", NsPerOp: 1000},                         // no -benchmem this run
	}}
	var sb strings.Builder
	regressed, err := compareFiles(&sb,
		writeDoc(t, "base.json", baseline), writeDoc(t, "cur.json", current), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("tolerated/missing allocs flagged:\n%s", sb.String())
	}
}

// TestCompareWithinTolerance: movement inside the tolerance passes.
func TestCompareWithinTolerance(t *testing.T) {
	baseline := Output{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1000}}}
	current := Output{Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 1100}}}
	var sb strings.Builder
	regressed, err := compareFiles(&sb,
		writeDoc(t, "base.json", baseline), writeDoc(t, "cur.json", current), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("+10%% flagged at 15%% tolerance:\n%s", sb.String())
	}
}

// TestCompareRejectsBadInput: missing files and empty documents error out
// instead of silently passing the gate.
func TestCompareRejectsBadInput(t *testing.T) {
	good := writeDoc(t, "good.json", Output{Benchmarks: []Result{{Name: "B", NsPerOp: 1}}})
	empty := writeDoc(t, "empty.json", Output{})
	var sb strings.Builder
	if _, err := compareFiles(&sb, good, filepath.Join(t.TempDir(), "missing.json"), 0.15); err == nil {
		t.Error("missing current file accepted")
	}
	if _, err := compareFiles(&sb, empty, good, 0.15); err == nil {
		t.Error("empty baseline accepted")
	}
}

// TestParseCompareArgs: trailing -tolerance is honoured, bad arity and
// bad values are rejected.
func TestParseCompareArgs(t *testing.T) {
	tol := 0.15
	files, err := parseCompareArgs([]string{"base.json", "cur.json", "-tolerance", "0.05"}, &tol)
	if err != nil {
		t.Fatal(err)
	}
	if files[0] != "base.json" || files[1] != "cur.json" || tol != 0.05 {
		t.Fatalf("parsed files=%v tol=%v", files, tol)
	}
	for _, bad := range [][]string{
		{"only-one.json"},
		{"a.json", "b.json", "c.json"},
		{"a.json", "b.json", "-tolerance"},
		{"a.json", "b.json", "-tolerance", "lots"},
	} {
		if _, err := parseCompareArgs(bad, &tol); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tomniwindow\t0.5s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoMetrics-8 100", // too short
		"BenchmarkNoNs-8 100 12 B/op 3 allocs/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise parsed as benchmark: %q", line)
		}
	}
}
