package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFabricProcess-8  \t 1000 \t 7881 ns/op \t 1559 B/op \t 24 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Name != "BenchmarkFabricProcess" || r.Procs != 8 || r.Iterations != 1000 {
		t.Fatalf("header misparsed: %+v", r)
	}
	if r.NsPerOp != 7881 || r.BytesPerOp == nil || *r.BytesPerOp != 1559 ||
		r.AllocsPerOp == nil || *r.AllocsPerOp != 24 {
		t.Fatalf("metrics misparsed: %+v", r)
	}
}

func TestParseLineWithoutBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkControllerSharded/shards=4-8   50   111.5 ns/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Name != "BenchmarkControllerSharded/shards=4" || r.NsPerOp != 111.5 {
		t.Fatalf("misparsed: %+v", r)
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatal("phantom benchmem metrics")
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkX-2  10  5 ns/op  1.5 windows/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if r.Extra["windows/op"] != 1.5 {
		t.Fatalf("custom metric lost: %+v", r)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tomniwindow\t0.5s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoMetrics-8 100", // too short
		"BenchmarkNoNs-8 100 12 B/op 3 allocs/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise parsed as benchmark: %q", line)
		}
	}
}
