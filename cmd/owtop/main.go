// owtop is a terminal dashboard over an OmniWindow observability endpoint
// (Config.DebugAddr / fabric.Config.DebugAddr / obs.Serve). It polls
// /metrics, derives per-second rates from successive scrapes, re-estimates
// latency quantiles from the exposed histogram buckets with the same
// interpolation the live histograms use, and tails /debug/windows for the
// most recent lifecycle events.
//
// Run with:
//
//	owtop -addr 127.0.0.1:9900 [-interval 1s] [-once]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"omniwindow/internal/obs"
)

// histData is one histogram family instance rebuilt from its exposed
// bucket lines: per-bucket (non-cumulative) counts in bound order plus the
// trailing +Inf bucket, ready for obs.QuantileFromBuckets.
type histData struct {
	bounds []float64 // finite upper bounds, ascending
	counts []int64   // len(bounds)+1; last is +Inf
	total  int64
	sum    float64
}

// quantile estimates the q-quantile in seconds.
func (h *histData) quantile(q float64) float64 {
	return obs.QuantileFromBuckets(h.bounds, h.counts, h.total, q)
}

// snapshot is one parsed /metrics scrape.
type snapshot struct {
	at     time.Time
	values map[string]float64   // full sample name (labels included, le stripped)
	hists  map[string]*histData // histogram instance name → buckets
}

// parseMetrics parses Prometheus text exposition into a snapshot. Bucket
// lines are folded into histData per histogram instance (family + labels
// minus le); other samples land in values keyed by their full name.
func parseMetrics(text string, at time.Time) (*snapshot, error) {
	s := &snapshot{at: at, values: make(map[string]float64), hists: make(map[string]*histData)}
	type bucket struct {
		le  float64
		cum int64
	}
	buckets := make(map[string][]bucket)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		if base, le, ok := splitBucket(name); ok {
			leF := inf
			if le != "+Inf" {
				leF, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("unparseable le in %q: %v", line, err)
				}
			}
			buckets[base] = append(buckets[base], bucket{le: leF, cum: int64(val)})
			continue
		}
		s.values[name] = val
	}
	for base, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		h := &histData{}
		var prev int64
		for _, b := range bs {
			c := b.cum - prev
			prev = b.cum
			if b.le == inf {
				h.counts = append(h.counts, c)
				continue
			}
			h.bounds = append(h.bounds, b.le)
			h.counts = append(h.counts, c)
		}
		if len(h.counts) == len(h.bounds) {
			h.counts = append(h.counts, 0) // exposition omitted +Inf
		}
		h.total = prev
		h.sum = s.values[base+"_sum"]
		if c, ok := s.values[base+"_count"]; ok {
			h.total = int64(c)
		}
		s.hists[base] = h
	}
	return s, nil
}

var inf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// splitBucket dissects a `fam_bucket{...,le="x"}` sample into the
// histogram instance name (family + labels minus le) and the le value.
func splitBucket(name string) (base, le string, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name[:i], "_bucket") {
		return "", "", false
	}
	fam := strings.TrimSuffix(name[:i], "_bucket")
	inner := strings.TrimSuffix(name[i+1:], "}")
	var rest []string
	for _, pair := range strings.Split(inner, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return "", "", false
		}
		if kv[0] == "le" {
			unq, err := strconv.Unquote(kv[1])
			if err != nil {
				return "", "", false
			}
			le = unq
			continue
		}
		rest = append(rest, pair)
	}
	if le == "" {
		return "", "", false
	}
	base = fam
	if len(rest) > 0 {
		base = fam + "{" + strings.Join(rest, ",") + "}"
	}
	return base, le, true
}

// sumMatching totals every sample whose family (name before '{') equals
// fam — the per-switch instances of a labeled family fold into one number.
func (s *snapshot) sumMatching(fam string) float64 {
	var total float64
	for name, v := range s.values {
		f := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			f = name[:i]
		}
		if f == fam {
			total += v
		}
	}
	return total
}

// hasFamily reports whether the scrape carries any sample of the family,
// labeled or not — used to keep optional panels (RDMA) off the screen for
// deployments that never registered them.
func (s *snapshot) hasFamily(fam string) bool {
	for name := range s.values {
		f := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			f = name[:i]
		}
		if f == fam {
			return true
		}
	}
	return false
}

// qpStateName maps the omniwindow_rdma_qp_state gauge value onto the
// transport's state-machine names (rdma.QPState).
func qpStateName(v float64) string {
	switch int(v) {
	case 0:
		return "RTS"
	case 1:
		return "ERROR"
	case 2:
		return "RECOVERING"
	}
	return "UNKNOWN"
}

// roleName maps the omniwindow_failover_role gauge onto the serving
// controller's provenance.
func roleName(v float64) string {
	switch int(v) {
	case 0:
		return "PRIMARY"
	case 1:
		return "PROMOTED"
	case 2:
		return "PROMOTED+PARKED"
	}
	return "UNKNOWN"
}

// rate is the per-second increase of a (possibly labeled) counter family
// between two snapshots; 0 on the first scrape or counter reset.
func rate(prev, cur *snapshot, fam string) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	d := cur.sumMatching(fam) - prev.sumMatching(fam)
	if d < 0 {
		return 0 // restart reset the counters
	}
	return d / dt
}

// mergedHist folds every instance of a histogram family (e.g. per-switch
// C&R latency) into one distribution. Instances must share a bucket
// layout, which obs histograms of one family always do.
func (s *snapshot) mergedHist(fam string) *histData {
	var out *histData
	for name, h := range s.hists {
		f := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			f = name[:i]
		}
		if f != fam {
			continue
		}
		if out == nil {
			out = &histData{bounds: h.bounds, counts: append([]int64(nil), h.counts...), total: h.total, sum: h.sum}
			continue
		}
		if len(h.counts) == len(out.counts) {
			for i, c := range h.counts {
				out.counts[i] += c
			}
			out.total += h.total
			out.sum += h.sum
		}
	}
	return out
}

// traceEvent is one /debug/windows entry as owtop displays it.
type traceEvent struct {
	At        int64  `json:"at_unix_ns"`
	Stage     string `json:"stage"`
	SubWindow uint64 `json:"sub_window"`
	Shard     int    `json:"shard"`
	Value     int64  `json:"value"`
}

// fmtSeconds renders a latency in the friendliest unit.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// render writes one dashboard frame.
func render(w io.Writer, prev, cur *snapshot, events []traceEvent) {
	fmt.Fprintf(w, "owtop — %s\n\n", cur.at.Format("15:04:05"))

	fmt.Fprintf(w, "  ingest    %8.0f AFR/s   %8.0f pkt/s   dup %.0f/s\n",
		rate(prev, cur, "omniwindow_controller_afrs_total"),
		rate(prev, cur, "omniwindow_switch_packets_total"),
		rate(prev, cur, "omniwindow_controller_duplicates_total"))
	fmt.Fprintf(w, "  windows   %8.0f total   incomplete %.0f   degraded %.0f\n",
		cur.sumMatching("omniwindow_controller_windows_total"),
		cur.sumMatching("omniwindow_controller_windows_incomplete_total"),
		cur.sumMatching("omniwindow_controller_windows_degraded_total"))
	fmt.Fprintf(w, "  loss      shed %.0f   recovered %.0f   retransmitted %.0f\n",
		cur.sumMatching("omniwindow_controller_shed_total")+cur.sumMatching("omniwindow_collector_shed_afrs_total"),
		cur.sumMatching("omniwindow_controller_recovered_total"),
		cur.sumMatching("omniwindow_cr_retransmitted_total"))
	if depth := cur.sumMatching("omniwindow_collector_queue_depth"); depth > 0 ||
		cur.sumMatching("omniwindow_collector_received_total") > 0 {
		fmt.Fprintf(w, "  collector queue %.0f   table %.0f flows   decode failures %.0f\n",
			depth,
			cur.sumMatching("omniwindow_collector_table_size"),
			cur.sumMatching("omniwindow_collector_decode_failures_total"))
	}
	if cur.hasFamily("omniwindow_rdma_qp_state") {
		fmt.Fprintf(w, "  rdma      QP %-10s retries %.1f/s   fallback %.0f   replayed %.0f   lost %.0f\n",
			qpStateName(cur.sumMatching("omniwindow_rdma_qp_state")),
			rate(prev, cur, "omniwindow_rdma_verb_retries_total"),
			cur.sumMatching("omniwindow_rdma_fallback_afrs_total"),
			cur.sumMatching("omniwindow_rdma_replayed_total"),
			cur.sumMatching("omniwindow_rdma_lost_afrs_total"))
	}
	if cur.hasFamily("omniwindow_durable_degraded") {
		state := "OK"
		if cur.sumMatching("omniwindow_durable_degraded") > 0 {
			state = "DEGRADED"
		}
		fmt.Fprintf(w, "  disk      %-10s wal errors %.1f/s   gaps %.0f   quarantined %.0f   scrub errors %.0f\n",
			state,
			rate(prev, cur, "omniwindow_durable_wal_errors_total"),
			cur.sumMatching("omniwindow_durable_gaps_total"),
			cur.sumMatching("omniwindow_durable_quarantined_segments_total"),
			cur.sumMatching("omniwindow_durable_scrub_errors_total"))
	}

	if cur.hasFamily("omniwindow_failover_term") {
		fmt.Fprintf(w, "  failover  %-18s term %.0f   fenced %.1f/s   partitions %.0f   demoted %.0f   readmitted %.0f\n",
			roleName(cur.sumMatching("omniwindow_failover_role")),
			cur.sumMatching("omniwindow_failover_term"),
			rate(prev, cur, "omniwindow_durable_fenced_writes_total"),
			cur.sumMatching("omniwindow_failover_partition_events_total"),
			cur.sumMatching("omniwindow_failover_demotions_total"),
			cur.sumMatching("omniwindow_failover_readmissions_total"))
	}

	fmt.Fprintf(w, "\n  latency          p50        p90        p99\n")
	for _, row := range []struct{ label, fam string }{
		{"C&R round", "omniwindow_cr_collect_seconds"},
		{"finish", "omniwindow_controller_finish_seconds"},
		{"O4 process", "omniwindow_controller_op_process_seconds"},
		{"WAL append", "omniwindow_durable_wal_append_seconds"},
		{"checkpoint", "omniwindow_durable_checkpoint_seconds"},
	} {
		h := cur.mergedHist(row.fam)
		if h == nil || h.total == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-12s %9s  %9s  %9s  (n=%d)\n", row.label,
			fmtSeconds(h.quantile(0.50)), fmtSeconds(h.quantile(0.90)), fmtSeconds(h.quantile(0.99)), h.total)
	}

	if len(events) > 0 {
		fmt.Fprintf(w, "\n  recent window events\n")
		for _, e := range events {
			fmt.Fprintf(w, "  %s  sub %-5d %-15s shard %-3d value %d\n",
				time.Unix(0, e.At).Format("15:04:05.000"), e.SubWindow, e.Stage, e.Shard, e.Value)
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9900", "observability endpoint (host:port or full URL)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "render a single frame and exit")
	events := flag.Int("events", 8, "recent trace events to show (0 disables)")
	flag.Parse()

	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	scrape := func() (*snapshot, []traceEvent, error) {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		snap, err := parseMetrics(string(body), time.Now())
		if err != nil {
			return nil, nil, err
		}
		var evs []traceEvent
		if *events > 0 {
			if r2, err := client.Get(fmt.Sprintf("%s/debug/windows?last=%d", base, *events)); err == nil {
				var dump struct {
					Events []traceEvent `json:"events"`
				}
				if json.NewDecoder(r2.Body).Decode(&dump) == nil {
					evs = dump.Events
				}
				r2.Body.Close()
			}
		}
		return snap, evs, nil
	}

	var prev *snapshot
	for {
		cur, evs, err := scrape()
		if err != nil {
			fmt.Fprintf(os.Stderr, "owtop: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\033[2J\033[H") // clear screen, home cursor
		}
		render(os.Stdout, prev, cur, evs)
		if *once {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}
