package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"omniwindow/internal/obs"
)

// TestParseMetrics exercises the text parser on the shapes the obs
// endpoint actually emits: unlabeled counters, labeled families, and
// histogram bucket/sum/count lines.
func TestParseMetrics(t *testing.T) {
	text := `# HELP omniwindow_switch_packets_total packets
# TYPE omniwindow_switch_packets_total counter
omniwindow_switch_packets_total{switch="0"} 100
omniwindow_switch_packets_total{switch="1"} 50
omniwindow_controller_afrs_total 42
omniwindow_cr_collect_seconds_bucket{le="0.001"} 3
omniwindow_cr_collect_seconds_bucket{le="0.01"} 7
omniwindow_cr_collect_seconds_bucket{le="+Inf"} 8
omniwindow_cr_collect_seconds_sum 0.5
omniwindow_cr_collect_seconds_count 8
`
	s, err := parseMetrics(text, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.values[`omniwindow_switch_packets_total{switch="1"}`]; got != 50 {
		t.Errorf("labeled sample = %v, want 50", got)
	}
	if got := s.values["omniwindow_controller_afrs_total"]; got != 42 {
		t.Errorf("unlabeled sample = %v, want 42", got)
	}
	if got := s.sumMatching("omniwindow_switch_packets_total"); got != 150 {
		t.Errorf("sumMatching folded labeled family to %v, want 150", got)
	}

	h, ok := s.hists["omniwindow_cr_collect_seconds"]
	if !ok {
		t.Fatal("histogram not parsed")
	}
	// Cumulative 3,7,8 → per-bucket 3,4,1.
	wantBounds := []float64{0.001, 0.01}
	wantCounts := []int64{3, 4, 1}
	if len(h.bounds) != len(wantBounds) || h.bounds[0] != 0.001 || h.bounds[1] != 0.01 {
		t.Errorf("bounds = %v, want %v", h.bounds, wantBounds)
	}
	if len(h.counts) != 3 || h.counts[0] != 3 || h.counts[1] != 4 || h.counts[2] != 1 {
		t.Errorf("per-bucket counts = %v, want %v", h.counts, wantCounts)
	}
	if h.total != 8 {
		t.Errorf("total = %d, want 8", h.total)
	}
	if h.sum != 0.5 {
		t.Errorf("sum = %v, want 0.5", h.sum)
	}
}

// TestParseMetricsRejectsGarbage: malformed lines fail loudly instead of
// silently skewing the dashboard.
func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"metric notanumber",
	} {
		if _, err := parseMetrics(bad, time.Now()); err == nil {
			t.Errorf("parseMetrics(%q) accepted malformed input", bad)
		}
	}
}

// TestSplitBucket covers labeled and unlabeled bucket names, and
// non-bucket names passing through.
func TestSplitBucket(t *testing.T) {
	cases := []struct {
		name, base, le string
		ok             bool
	}{
		{`f_seconds_bucket{le="0.5"}`, "f_seconds", "0.5", true},
		{`f_seconds_bucket{switch="2",le="+Inf"}`, `f_seconds{switch="2"}`, "+Inf", true},
		{`f_seconds_sum`, "", "", false},
		{`f_seconds{switch="2"}`, "", "", false},
	}
	for _, c := range cases {
		base, le, ok := splitBucket(c.name)
		if ok != c.ok || base != c.base || le != c.le {
			t.Errorf("splitBucket(%q) = (%q,%q,%v), want (%q,%q,%v)",
				c.name, base, le, ok, c.base, c.le, c.ok)
		}
	}
}

// TestScrapeQuantileMatchesLiveHistogram round-trips a live obs.Histogram
// through its own Prometheus exposition and checks owtop's re-derived
// quantiles agree exactly with the live Quantile — same buckets, same
// estimator, so the dashboard shows what the process would report.
func TestScrapeQuantileMatchesLiveHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("rt_seconds", "round trip", obs.DurationBuckets())
	for i := 1; i <= 500; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := parseMetrics(sb.String(), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	hd, ok := s.hists["rt_seconds"]
	if !ok {
		t.Fatalf("histogram missing from scrape; families: %v", s.hists)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		live := h.Quantile(q).Seconds()
		scraped := hd.quantile(q)
		// The live value round-trips through a nanosecond time.Duration.
		if math.Abs(live-scraped) > 1e-9 {
			t.Errorf("q%.2f: scraped %v != live %v", q, scraped, live)
		}
	}
}

// TestRate: per-second deltas across snapshots, including label folding,
// first-scrape and counter-reset handling.
func TestRate(t *testing.T) {
	t0 := time.Unix(100, 0)
	prev := &snapshot{at: t0, values: map[string]float64{
		`c_total{switch="0"}`: 10,
		`c_total{switch="1"}`: 5,
	}}
	cur := &snapshot{at: t0.Add(2 * time.Second), values: map[string]float64{
		`c_total{switch="0"}`: 30,
		`c_total{switch="1"}`: 15,
	}}
	if got := rate(prev, cur, "c_total"); got != 15 {
		t.Errorf("rate = %v, want 15 ((30+15-10-5)/2s)", got)
	}
	if got := rate(nil, cur, "c_total"); got != 0 {
		t.Errorf("first-scrape rate = %v, want 0", got)
	}
	reset := &snapshot{at: t0.Add(4 * time.Second), values: map[string]float64{
		`c_total{switch="0"}`: 1,
	}}
	if got := rate(cur, reset, "c_total"); got != 0 {
		t.Errorf("post-reset rate = %v, want 0", got)
	}
}

// TestMergedHist folds two labeled instances of one family into a single
// distribution.
func TestMergedHist(t *testing.T) {
	s := &snapshot{
		values: map[string]float64{},
		hists: map[string]*histData{
			`lat_seconds{switch="0"}`: {bounds: []float64{0.1}, counts: []int64{2, 1}, total: 3, sum: 0.4},
			`lat_seconds{switch="1"}`: {bounds: []float64{0.1}, counts: []int64{4, 0}, total: 4, sum: 0.2},
			"other_seconds":           {bounds: []float64{0.1}, counts: []int64{9, 9}, total: 18, sum: 9},
		},
	}
	m := s.mergedHist("lat_seconds")
	if m == nil {
		t.Fatal("mergedHist returned nil")
	}
	if m.total != 7 || m.counts[0] != 6 || m.counts[1] != 1 {
		t.Errorf("merged = counts %v total %d, want [6 1] 7", m.counts, m.total)
	}
	if math.Abs(m.sum-0.6) > 1e-12 {
		t.Errorf("merged sum = %v, want 0.6", m.sum)
	}
	if s.mergedHist("missing_seconds") != nil {
		t.Error("mergedHist fabricated a family")
	}
}

// TestQPStateName maps every gauge value the transport can report, plus
// the out-of-range guard.
func TestQPStateName(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "RTS"},
		{1, "ERROR"},
		{2, "RECOVERING"},
		{7, "UNKNOWN"},
	}
	for _, c := range cases {
		if got := qpStateName(c.v); got != c.want {
			t.Errorf("qpStateName(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// TestRenderRDMAPanel round-trips the RDMA families through a real obs
// registry exposition: the panel shows the decoded QP state, the retry
// rate derived across snapshots, and the fallback/replay totals — and
// stays absent entirely when the deployment never registered the gauge.
func TestRenderRDMAPanel(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GaugeFunc("omniwindow_rdma_qp_state", "", func() int64 { return 2 })
	reg.CounterFunc("omniwindow_rdma_verb_retries_total", "", func() int64 { return 40 })
	reg.CounterFunc("omniwindow_rdma_fallback_afrs_total", "", func() int64 { return 17 })
	reg.CounterFunc("omniwindow_rdma_replayed_total", "", func() int64 { return 9 })
	reg.CounterFunc("omniwindow_rdma_lost_afrs_total", "", func() int64 { return 3 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(300, 0)
	prev := &snapshot{at: t0, values: map[string]float64{
		"omniwindow_rdma_verb_retries_total": 10,
	}}
	cur, err := parseMetrics(sb.String(), t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	render(&out, prev, cur, nil)
	frame := out.String()
	for _, want := range []string{
		"rdma",
		"QP RECOVERING",
		"retries 15.0/s", // (40-10)/2s
		"fallback 17",
		"replayed 9",
		"lost 3",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	// A deployment without the RDMA transport never registers the gauge:
	// the panel must not render.
	bare := &snapshot{at: t0, values: map[string]float64{}}
	out.Reset()
	render(&out, nil, bare, nil)
	if strings.Contains(out.String(), "rdma") {
		t.Errorf("RDMA panel rendered without RDMA metrics:\n%s", out.String())
	}
}

// TestRenderDurabilityPanel round-trips the durability families through a
// real obs registry exposition: the panel decodes the degraded gauge into
// OK/DEGRADED, derives the WAL-error rate across snapshots, and shows the
// gap/quarantine/scrub totals — and stays absent entirely when the
// deployment never registered the gauge (no CheckpointDir).
func TestRenderDurabilityPanel(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("omniwindow_durable_degraded", "").Set(1)
	reg.Counter("omniwindow_durable_gaps_total", "").Add(12)
	reg.CounterFunc("omniwindow_durable_wal_errors_total", "", func() int64 { return 26 })
	reg.CounterFunc("omniwindow_durable_quarantined_segments_total", "", func() int64 { return 2 })
	reg.CounterFunc("omniwindow_durable_scrub_errors_total", "", func() int64 { return 1 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(400, 0)
	prev := &snapshot{at: t0, values: map[string]float64{
		"omniwindow_durable_wal_errors_total": 6,
	}}
	cur, err := parseMetrics(sb.String(), t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	render(&out, prev, cur, nil)
	frame := out.String()
	for _, want := range []string{
		"disk",
		"DEGRADED",
		"wal errors 10.0/s", // (26-6)/2s
		"gaps 12",
		"quarantined 2",
		"scrub errors 1",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	// Healed: the gauge reads 0 — the panel stays but flips to OK.
	healed := &snapshot{at: t0, values: map[string]float64{
		"omniwindow_durable_degraded": 0,
	}}
	out.Reset()
	render(&out, nil, healed, nil)
	if !strings.Contains(out.String(), "OK") || strings.Contains(out.String(), "DEGRADED") {
		t.Errorf("healed panel should read OK:\n%s", out.String())
	}

	// A deployment without CheckpointDir never registers the gauge: the
	// panel must not render.
	bare := &snapshot{at: t0, values: map[string]float64{}}
	out.Reset()
	render(&out, nil, bare, nil)
	if strings.Contains(out.String(), "disk") {
		t.Errorf("durability panel rendered without durable metrics:\n%s", out.String())
	}
}

// TestRenderFailoverPanel round-trips the hot-standby fencing families
// through a real registry exposition: the panel decodes the role gauge,
// shows the fencing term, derives the fenced-write rate across
// snapshots, and totals partition/demotion/readmission counters — and
// stays absent when the deployment runs without a standby.
func TestRenderFailoverPanel(t *testing.T) {
	reg := obs.NewRegistry()
	reg.GaugeFunc("omniwindow_failover_term", "", func() int64 { return 2 })
	reg.GaugeFunc("omniwindow_failover_role", "", func() int64 { return 2 })
	reg.CounterFunc("omniwindow_durable_fenced_writes_total", "", func() int64 { return 24 })
	reg.CounterFunc("omniwindow_failover_partition_events_total", "", func() int64 { return 5 })
	reg.CounterFunc("omniwindow_failover_demotions_total", "", func() int64 { return 2 })
	reg.CounterFunc("omniwindow_failover_readmissions_total", "", func() int64 { return 1 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(500, 0)
	prev := &snapshot{at: t0, values: map[string]float64{
		"omniwindow_durable_fenced_writes_total": 4,
	}}
	cur, err := parseMetrics(sb.String(), t0.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	render(&out, prev, cur, nil)
	frame := out.String()
	for _, want := range []string{
		"failover",
		"PROMOTED+PARKED",
		"term 2",
		"fenced 10.0/s", // (24-4)/2s
		"partitions 5",
		"demoted 2",
		"readmitted 1",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	// A deployment without a standby never registers the term gauge: the
	// panel must not render.
	bare := &snapshot{at: t0, values: map[string]float64{}}
	out.Reset()
	render(&out, nil, bare, nil)
	if strings.Contains(out.String(), "failover") {
		t.Errorf("failover panel rendered without failover metrics:\n%s", out.String())
	}
}

func TestRoleName(t *testing.T) {
	for v, want := range map[float64]string{0: "PRIMARY", 1: "PROMOTED", 2: "PROMOTED+PARKED", 9: "UNKNOWN"} {
		if got := roleName(v); got != want {
			t.Errorf("roleName(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestRenderFrame smoke-tests one dashboard frame against a realistic
// snapshot pair: the headline rates, totals and quantile rows all land in
// the output.
func TestRenderFrame(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("omniwindow_cr_collect_seconds", "", obs.DurationBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond)
	}
	reg.Counter("omniwindow_controller_afrs_total", "").Add(1000)
	reg.Counter("omniwindow_switch_packets_total", "").Add(5000)
	reg.Counter("omniwindow_controller_windows_total", "").Add(7)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(200, 0)
	prev := &snapshot{at: t0, values: map[string]float64{
		"omniwindow_controller_afrs_total": 0,
	}}
	cur, err := parseMetrics(sb.String(), t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	render(&out, prev, cur, []traceEvent{
		{At: t0.UnixNano(), Stage: "collected", SubWindow: 3, Shard: 1, Value: 42},
	})
	frame := out.String()
	for _, want := range []string{
		"1000 AFR/s", // (1000-0)/1s
		"7 total",    // windows
		"C&R round",
		"3.", // ~3ms quantile rendered in ms
		"recent window events",
		"collected",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}
