# OmniWindow-Go developer targets. Pure stdlib: no tool dependencies
# beyond the Go toolchain.

GO ?= go

.PHONY: all build test race bench bench-json bench-diff fuzz examples \
	reproduce fmt vet clean ci fmt-check fuzz-smoke bench-smoke chaos \
	failover fabric-chaos rdma-chaos disk-chaos partition-chaos \
	staticcheck cover nightly microbench

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# ci mirrors .github/workflows/ci.yml one-to-one so the same gates run
# locally; this list and the workflow's job list are the two places the
# gate set is enumerated — change both together:
#
#	build vet fmt-check  ↔ job "build"
#	test                 ↔ job "test"
#	race                 ↔ job "race"
#	chaos                ↔ job "chaos"
#	failover             ↔ job "failover"
#	fabric-chaos         ↔ job "fabric-chaos"
#	rdma-chaos           ↔ job "rdma-chaos"
#	disk-chaos           ↔ job "disk-chaos"
#	partition-chaos      ↔ job "partition-chaos"
#	staticcheck          ↔ job "staticcheck" (CI installs the binary)
#	cover                ↔ job "coverage"
#	fuzz-smoke bench-smoke ↔ job "smoke"
#	bench-diff           ↔ job "bench-regression" (not in `make ci`: perf
#	                       numbers on a loaded dev box false-positive;
#	                       run it explicitly before perf-sensitive PRs)
#	nightly              ↔ .github/workflows/nightly.yml (scheduled)
ci: build vet fmt-check test race chaos failover fabric-chaos rdma-chaos \
	disk-chaos partition-chaos staticcheck cover fuzz-smoke bench-smoke

# Chaos suite: the full pipeline under seeded drop/dup/reorder/corruption
# schedules, run with the race detector. Fixed seeds (1, 2, 3 in the test
# tables) make every schedule a reproducible test case.
chaos:
	$(GO) test -race -run 'Chaos' . ./internal/controller/ ./internal/faults/

# Durability suite: kill-and-restart at every sub-window boundary,
# WAL-replay recovery, hot-standby failover and admission-control shedding,
# all under the race detector. Crash schedules use fixed seeds (and the
# Fixed boundary lists in failover_test.go), so every death is replayable.
failover:
	$(GO) test -race -run 'Crash|Failover|Shed|Store|Lease' \
		. ./internal/controller/ ./internal/faults/ ./internal/durable/

# Fabric chaos suite: switch reboots, stalls and clock drift on multi-hop
# topologies, under the race detector. Every schedule uses fixed seeds
# (the Fixed boundary lists and seeds 1..5 in fabric_test.go), so each
# failure sequence is a reproducible test case.
fabric-chaos:
	$(GO) test -race ./internal/fabric/ ./internal/faults/

# RDMA chaos suite: the fault-tolerant transport (QP state machine, PSN
# replay, mid-window fallback, failover re-registration) under seeded
# RDMASchedule fault runs, with the race detector. Fixed seeds make every
# schedule a reproducible test case.
rdma-chaos:
	$(GO) test -race -run 'RDMA|Transport' . ./internal/rdma/ ./internal/faults/

# Disk chaos suite: seeded I/O fault schedules (EIO, ENOSPC, short/torn
# writes, bit rot, slow IO) against the durable store — segment rotation,
# quarantine, scrubbing, degraded-durability mode and crash-restart
# recovery — under the race detector. Fixed seeds (the schedule tables in
# disk_chaos_test.go) make every fault sequence a reproducible test case.
disk-chaos:
	$(GO) test -race -run 'Disk|Scrub|Quarantine|Segment|Heal|Degrad' \
		. ./internal/durable/ ./internal/faults/

# Partition chaos suite: the hot-standby pair under network partitions
# that leave the primary alive — symmetric/asymmetric cuts, gray renewal
# slowness and standby clock drift — proving the fencing-term protocol:
# one finalizer per window, zero post-fence WAL frames accepted, merged
# stream byte-identical or explicitly Incomplete. Fixed seeds (the
# schedule tables in partition_chaos_test.go) make every partition
# sequence a reproducible test case.
partition-chaos:
	$(GO) test -race -run 'Partition|Term|Fenc' \
		. ./internal/durable/ ./internal/faults/ ./internal/wire/

fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Staticcheck when the binary is available; CI installs it, local runs
# without it skip gracefully instead of failing `make ci` on a missing
# tool (the repo itself stays dependency-free).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Coverage gate: total statement coverage must not erode. The threshold
# sits 2 points under the measured total at the time the gate was last
# ratcheted (81.5%, after the cmd/ binaries gained tests), so routine
# churn doesn't flake while real erosion fails.
COVER_THRESHOLD = 79.5

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | \
		awk '{gsub(/%/,"",$$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v min="$(COVER_THRESHOLD)" \
		'BEGIN{print (t+0 >= min+0) ? "yes" : "no"}'); \
	if [ "$$ok" != "yes" ]; then \
		echo "FAIL: coverage $$total% fell below the $(COVER_THRESHOLD)% gate"; \
		exit 1; \
	fi; \
	echo "coverage $$total% meets the $(COVER_THRESHOLD)% gate"

# Short fuzz and bench runs that surface parser/perf regressions in PRs.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodePatched$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeWALRecord$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeTermRecord$$' -fuzztime 10s ./internal/wire/

bench-smoke:
	$(GO) test -run xxx -bench BenchmarkController -benchtime 1x .

# Regenerate every paper table/figure once (tables in the bench log), and
# refresh the machine-readable perf snapshot.
bench: bench-json
	$(GO) test -run xxx -bench . -benchtime 1x -timeout 3600s .

# Machine-readable perf numbers for the controller-merge, batched-ingest,
# collector-decode, fabric, RDMA-collect, WAL-append and failover-
# promotion hot paths: ns/op, B/op and allocs/op, emitted as
# BENCH_PR10.json for cross-PR diffing (BENCH_PR4, PR6, PR7, PR8 and PR9
# snapshots are kept for comparison). The ingest, WAL-append and
# fenced-append benchmarks carry 0 allocs/op baselines, so the compare
# gate pins them at zero: any new steady-state allocation on a pooled or
# fencing hot path fails bench-diff.
BENCH_PATTERN = BenchmarkControllerSharded|BenchmarkControllerIngestBatch|BenchmarkCollectorDecodeIngest|BenchmarkFabric|BenchmarkRDMACollect|BenchmarkWALAppendRotating|BenchmarkFailoverPromotion

bench-json:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' \
		-benchtime 100x -benchmem . ./internal/fabric/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# Perf-regression gate: rerun the hot-path benchmarks and fail if any
# shared benchmark's ns/op or allocs/op grew more than 15% over the
# checked-in baseline (0-alloc baselines allow 0). CI runs this on every
# PR; locally, quiesce the machine first.
BENCH_CURRENT ?= /tmp/omniwindow_bench_current.json

bench-diff:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' \
		-benchtime 100x -benchmem . ./internal/fabric/ \
		| $(GO) run ./cmd/benchjson -o $(BENCH_CURRENT)
	$(GO) run ./cmd/benchjson -compare BENCH_PR10.json $(BENCH_CURRENT) \
		-tolerance 0.15

# Micro-benchmarks across all packages.
microbench:
	$(GO) test -run xxx -bench . -benchmem ./internal/...

fuzz:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodePatched$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeWALRecord$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeTermRecord$$' -fuzztime 30s ./internal/wire/

# Nightly depth: long fuzz runs on every wire decoder plus the chaos,
# failover, fabric-chaos, rdma-chaos, disk-chaos and partition-chaos
# suites widened with 10 extra derived seeds per table
# (faults.ExtraSeeds). Mirrors .github/workflows/nightly.yml; run
# locally to reproduce a nightly failure.
nightly:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 300s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodePatched$$' -fuzztime 300s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 300s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeWALRecord$$' -fuzztime 300s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeTermRecord$$' -fuzztime 300s ./internal/wire/
	OMNIWINDOW_EXTRA_SEEDS=10 $(MAKE) chaos failover fabric-chaos rdma-chaos disk-chaos partition-chaos

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ddosdetect
	$(GO) run ./examples/lossradar
	$(GO) run ./examples/dmlmonitor
	$(GO) run ./examples/udpcollector
	$(GO) run ./examples/networkwide

# The full paper reproduction via the CLI.
reproduce:
	$(GO) run ./cmd/omnibench -exp all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
