# OmniWindow-Go developer targets. Pure stdlib: no tool dependencies
# beyond the Go toolchain.

GO ?= go

.PHONY: all build test race bench bench-json fuzz examples reproduce fmt \
	vet clean ci fmt-check fuzz-smoke bench-smoke chaos failover \
	fabric-chaos

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# ci mirrors .github/workflows/ci.yml so the same gates run locally.
ci: build vet fmt-check test race chaos failover fabric-chaos fuzz-smoke \
	bench-smoke

# Chaos suite: the full pipeline under seeded drop/dup/reorder/corruption
# schedules, run with the race detector. Fixed seeds (1, 2, 3 in the test
# tables) make every schedule a reproducible test case.
chaos:
	$(GO) test -race -run 'Chaos' . ./internal/controller/ ./internal/faults/

# Durability suite: kill-and-restart at every sub-window boundary,
# WAL-replay recovery, hot-standby failover and admission-control shedding,
# all under the race detector. Crash schedules use fixed seeds (and the
# Fixed boundary lists in failover_test.go), so every death is replayable.
failover:
	$(GO) test -race -run 'Crash|Failover|Shed|Store|Lease' \
		. ./internal/controller/ ./internal/faults/ ./internal/durable/

# Fabric chaos suite: switch reboots, stalls and clock drift on multi-hop
# topologies, under the race detector. Every schedule uses fixed seeds
# (the Fixed boundary lists and seeds 1..5 in fabric_test.go), so each
# failure sequence is a reproducible test case.
fabric-chaos:
	$(GO) test -race ./internal/fabric/ ./internal/faults/

fmt-check:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# Short fuzz and bench runs that surface parser/perf regressions in PRs.
fuzz-smoke:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodePatched$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 10s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeWALRecord$$' -fuzztime 10s ./internal/wire/

bench-smoke:
	$(GO) test -run xxx -bench BenchmarkController -benchtime 1x .

# Regenerate every paper table/figure once (tables in the bench log), and
# refresh the machine-readable perf snapshot.
bench: bench-json
	$(GO) test -run xxx -bench . -benchtime 1x -timeout 3600s .

# Machine-readable perf numbers for the controller-merge and fabric hot
# paths: ns/op and allocs/op, emitted as BENCH_PR4.json for cross-PR
# diffing.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkControllerSharded|BenchmarkFabric' \
		-benchtime 100x -benchmem . ./internal/fabric/ \
		| $(GO) run ./cmd/benchjson -o BENCH_PR4.json

# Micro-benchmarks across all packages.
microbench:
	$(GO) test -run xxx -bench . -benchmem ./internal/...

fuzz:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodePatched$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeWALRecord$$' -fuzztime 30s ./internal/wire/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ddosdetect
	$(GO) run ./examples/lossradar
	$(GO) run ./examples/dmlmonitor
	$(GO) run ./examples/udpcollector
	$(GO) run ./examples/networkwide

# The full paper reproduction via the CLI.
reproduce:
	$(GO) run ./cmd/omnibench -exp all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
