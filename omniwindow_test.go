package omniwindow

import (
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

const ms = trace.Millisecond

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstIP: 99, SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP}
}

// burstTrace emits `count` packets for each listed flow centered at the
// given times.
func burstTrace(bursts map[int64][]int, count int) []packet.Packet {
	var pkts []packet.Packet
	for at, flows := range bursts {
		for _, f := range flows {
			for i := 0; i < count; i++ {
				pkts = append(pkts, packet.Packet{
					Key:  fk(f),
					Size: 100,
					Seq:  uint32(i),
					Time: at + int64(i)*((90*ms)/int64(count)) - 45*ms,
				})
			}
		}
	}
	// sort by time
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Time < pkts[j-1].Time; j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
	return pkts
}

func freqConfig(plan window.Plan, threshold uint64, rdmaMode bool) Config {
	return Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      plan,
		Kind:      afr.Frequency,
		Threshold: threshold,
		AppFactory: func(region int) afr.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 4096, uint64(region+1)), 4096)
		},
		Slots:         4096,
		Tracker:       afr.TrackerConfig{BufferKeys: 1024, BloomBits: 1 << 16, BloomHashes: 3},
		CaptureValues: true,
		RDMA:          rdmaMode,
	}
}

func TestConfigValidation(t *testing.T) {
	base := freqConfig(window.Tumbling(5), 10, false)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sub-window", func(c *Config) { c.SubWindow = 0 }},
		{"empty plan", func(c *Config) { c.Plan = window.Plan{} }},
		{"nil app factory", func(c *Config) { c.AppFactory = nil }},
		{"zero slots", func(c *Config) { c.Slots = 0 }},
		{"slot mismatch", func(c *Config) { c.Slots = 100 }}, // app built 4096
		{"negative retry backoff", func(c *Config) { c.RetryBackoff = -time.Millisecond }},
		{"negative retry max backoff", func(c *Config) { c.RetryMaxBackoff = -time.Millisecond }},
		{"negative queue depth", func(c *Config) { c.MaxQueueDepth = -1 }},
		{"negative checkpoint cadence", func(c *Config) { c.CheckpointEvery = -1 }},
		{"checkpoint cadence without directory", func(c *Config) { c.CheckpointEvery = 2 }},
		{"checkpoint cadence misaligned with slide", func(c *Config) {
			c.CheckpointDir = "x"
			c.CheckpointEvery = 3 // Tumbling(5): slide 5 — 3 is neither multiple nor divisor
		}},
		{"standby without checkpoint directory", func(c *Config) { c.Standby = true }},
		{"standby without explicit shards", func(c *Config) {
			c.CheckpointDir = "x"
			c.Standby = true
		}},
		{"standby with sparse checkpoints", func(c *Config) {
			c.CheckpointDir = "x"
			c.Standby = true
			c.Shards = 4
			c.CheckpointEvery = 5
		}},
		{"RDMA fault schedule without RDMA", func(c *Config) {
			c.RDMAFaults = &faults.RDMASchedule{VerbError: 0.1}
		}},
		{"RDMA verb retries without RDMA", func(c *Config) { c.RDMAVerbRetries = 2 }},
		{"RDMA replay depth without RDMA", func(c *Config) { c.RDMAReplayDepth = 64 }},
		{"negative RDMA replay depth", func(c *Config) {
			c.RDMA = true
			c.RDMAReplayDepth = -1
		}},
		{"negative preserve", func(c *Config) { c.Preserve = -1 }},
		{"preserve equal to region count", func(c *Config) { c.Preserve = 2 }}, // 2 regions: only 1 previous sub-window has live state
		{"preserve beyond region count", func(c *Config) { c.Preserve = 7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// The largest valid Preserve with the default two regions.
	max := base
	max.Preserve = 1
	if _, err := New(max); err != nil {
		t.Fatalf("valid Preserve rejected: %v", err)
	}
}

func TestTumblingMergesSubWindowBursts(t *testing.T) {
	// Flow 1 bursts in sub-windows 0 and 1 of the same 500 ms window
	// (60+80 packets, threshold 100): only the merged window sees it —
	// the §4.1 motivating example.
	pkts := append(burstTrace(map[int64][]int{50 * ms: {1}}, 60),
		burstTrace(map[int64][]int{150 * ms: {1}}, 80)...)
	d, err := New(freqConfig(window.Tumbling(5), 100, false))
	if err != nil {
		t.Fatal(err)
	}
	results := d.RunFor(pkts, 500*ms)
	if len(results) != 1 {
		t.Fatalf("windows = %d", len(results))
	}
	if len(results[0].Detected) != 1 || results[0].Detected[0] != fk(1) {
		t.Fatalf("detected = %v", results[0].Detected)
	}
	if got := results[0].Values[fk(1)]; got != 140 {
		t.Fatalf("merged value = %d want 140", got)
	}
	if err := d.assertConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingCatchesBoundaryBurst(t *testing.T) {
	// Figure 1: a burst straddling the 500 ms tumbling boundary. The
	// tumbling deployment misses it; the sliding one reports it.
	pkts := append(burstTrace(map[int64][]int{460 * ms: {1}}, 60),
		burstTrace(map[int64][]int{540 * ms: {1}}, 60)...)

	dt, _ := New(freqConfig(window.Tumbling(5), 100, false))
	tumbling := dt.RunFor(pkts, 1000*ms)
	for _, w := range tumbling {
		if len(w.Detected) != 0 {
			t.Fatalf("tumbling window [%d,%d] should miss the boundary burst: %v (values %v)",
				w.Start, w.End, w.Detected, w.Values)
		}
	}

	ds, _ := New(freqConfig(window.SlidingPlan(5, 1), 100, false))
	sliding := ds.RunFor(pkts, 1000*ms)
	found := false
	for _, w := range sliding {
		for _, k := range w.Detected {
			if k == fk(1) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("sliding window missed the boundary burst")
	}
}

func TestSpilledKeysAreStillCollected(t *testing.T) {
	// Flowkey buffer of 8: most keys spill to the controller, but every
	// flow must still appear in the merged window.
	cfg := freqConfig(window.Tumbling(1), 1, false)
	cfg.Tracker = afr.TrackerConfig{BufferKeys: 8, BloomBits: 1 << 16, BloomHashes: 3}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	pkts := burstTrace(map[int64][]int{50 * ms: flows}, 10)
	results := d.RunFor(pkts, 100*ms)
	if d.Stats().Spills == 0 {
		t.Fatal("test premise: keys should spill")
	}
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	got := map[packet.FlowKey]uint64{}
	for _, w := range results {
		for k, v := range w.Values {
			got[k] += v
		}
	}
	for _, f := range flows {
		if got[fk(f)] != 10 {
			t.Fatalf("flow %d merged value = %d want 10", f, got[fk(f)])
		}
	}
}

func TestRDMAModeMatchesPacketMode(t *testing.T) {
	pkts := burstTrace(map[int64][]int{
		50 * ms:  {1, 2, 3},
		150 * ms: {1, 2, 4},
		250 * ms: {1, 5},
		350 * ms: {1, 2},
		450 * ms: {1, 6},
	}, 20)

	dPkt, _ := New(freqConfig(window.Tumbling(5), 1, false))
	dRDMA, _ := New(freqConfig(window.Tumbling(5), 1, true))
	rPkt := dPkt.RunFor(pkts, 500*ms)
	rRDMA := dRDMA.RunFor(pkts, 500*ms)
	if len(rPkt) != len(rRDMA) {
		t.Fatalf("window counts differ: %d vs %d", len(rPkt), len(rRDMA))
	}
	for i := range rPkt {
		for k, v := range rPkt[i].Values {
			if rRDMA[i].Values[k] != v {
				t.Fatalf("window %d key %v: packet=%d rdma=%d", i, k, v, rRDMA[i].Values[k])
			}
		}
	}
	st := dRDMA.Stats()
	if st.HotAFRs == 0 {
		t.Fatalf("hot path never used: %+v", st)
	}
}

func TestReliabilityRetransmission(t *testing.T) {
	// Drop some AFR packets between switch and controller; the sequence
	// check must recover them.
	cfg := freqConfig(window.Tumbling(1), 1, false)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Intercept: wrap deliverAFRs by dropping every 3rd AFR packet. We
	// simulate loss by removing records before delivery.
	d.testAFRLoss = func(i int) bool { return i%3 == 0 }
	pkts := burstTrace(map[int64][]int{50 * ms: {1, 2, 3, 4, 5, 6}}, 5)
	results := d.RunFor(pkts, 100*ms)
	if d.Stats().Retransmitted == 0 {
		t.Fatal("no retransmissions despite loss")
	}
	got := map[packet.FlowKey]uint64{}
	for _, w := range results {
		for k, v := range w.Values {
			got[k] += v
		}
	}
	for f := 1; f <= 6; f++ {
		if got[fk(f)] != 5 {
			t.Fatalf("flow %d value = %d want 5 (loss not recovered)", f, got[fk(f)])
		}
	}
}

func TestStatsAndVirtualTimeBudget(t *testing.T) {
	gen := trace.New(trace.Config{Seed: 3, Flows: 4000, Duration: 1000 * ms})
	pkts := gen.Generate()
	cfg := freqConfig(window.Tumbling(5), 50, false)
	cfg.Tracker = afr.TrackerConfig{BufferKeys: 4096, BloomBits: 1 << 18, BloomHashes: 3}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(pkts, 1000*ms)
	st := d.Stats()
	if st.Packets != len(pkts) {
		t.Fatalf("packets = %d want %d", st.Packets, len(pkts))
	}
	if st.SubWindows < 9 {
		t.Fatalf("sub-windows = %d", st.SubWindows)
	}
	if st.AFRs == 0 || st.RecircPasses == 0 {
		t.Fatalf("collection did not run: %+v", st)
	}
	// The §6 invariant: C&R completes within a sub-window, so two
	// regions suffice.
	if st.MaxCollectVirtual > 100*time.Millisecond {
		t.Fatalf("C&R too slow: %v", st.MaxCollectVirtual)
	}
	if err := d.assertConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestUserDefinedSignalWindows(t *testing.T) {
	// Packets carry iteration numbers; windows follow them (Exp#3).
	cfg := freqConfig(window.Tumbling(1), 1, false)
	cfg.Signal = window.UserSignal{}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []packet.Packet
	for iter := uint64(0); iter < 3; iter++ {
		for i := 0; i < 10; i++ {
			pkts = append(pkts, packet.Packet{
				Key:  fk(1),
				Size: 100,
				Time: int64(iter)*10*ms + int64(i)*ms/2,
				OW:   packet.OWHeader{UserSignal: iter, HasUserSignal: true},
			})
		}
	}
	results := d.Run(pkts)
	if len(results) != 3 {
		t.Fatalf("windows = %d want 3 (one per iteration)", len(results))
	}
	for i, w := range results {
		if w.Values[fk(1)] != 10 {
			t.Fatalf("iteration %d count = %d", i, w.Values[fk(1)])
		}
	}
}

func TestIdleGapProducesEmptyWindows(t *testing.T) {
	// Traffic in sub-window 0, then silence until sub-window 9: the gap
	// windows must exist (empty), and no stale region state may leak.
	pkts := append(burstTrace(map[int64][]int{50 * ms: {1}}, 20),
		burstTrace(map[int64][]int{950 * ms: {2}}, 20)...)
	d, _ := New(freqConfig(window.Tumbling(2), 1, false))
	results := d.Run(pkts)
	if len(results) < 5 {
		t.Fatalf("windows = %d want >= 5", len(results))
	}
	for _, w := range results {
		if w.Start >= 2 && w.End <= 7 && len(w.Detected) != 0 {
			t.Fatalf("idle window [%d,%d] detected %v", w.Start, w.End, w.Detected)
		}
	}
	// First window has flow 1 only; last has flow 2 only.
	if results[0].Values[fk(1)] != 20 || results[0].Values[fk(2)] != 0 {
		t.Fatalf("first window values: %v", results[0].Values)
	}
	last := results[len(results)-1]
	if last.Values[fk(2)] != 20 || last.Values[fk(1)] != 0 {
		t.Fatalf("last window values: %v", last.Values)
	}
}

func TestResourceLedgerHasAllFeatures(t *testing.T) {
	d, _ := New(freqConfig(window.Tumbling(5), 1, true))
	ledger := d.Switch().Ledger()
	for _, feat := range []string{"Signal", "Consistency model", "Address location",
		"Flowkey tracking", "AFR generation", "RDMA opt.", "In-switch reset"} {
		r := ledger.Feature(feat)
		if r.Stages == 0 {
			t.Fatalf("feature %q not deployed: %+v", feat, r)
		}
	}
	total := ledger.Total()
	if total.SALUs == 0 || total.SRAMKB == 0 {
		t.Fatalf("ledger empty: %+v", total)
	}
}

func TestShardedDeploymentMatchesSequential(t *testing.T) {
	// The controller shard count must never change deployment results:
	// the same trace through Shards=1 and Shards=8 deployments yields
	// identical windows (detections and captured values).
	pkts := append(burstTrace(map[int64][]int{50 * ms: {1, 2, 3}, 250 * ms: {1, 4}}, 60),
		burstTrace(map[int64][]int{450 * ms: {1, 5}}, 80)...)

	run := func(shards int) []WindowResult {
		cfg := freqConfig(window.SlidingPlan(5, 1), 100, false)
		cfg.Shards = shards
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := d.RunFor(pkts, 700*ms)
		if err := d.assertConsistent(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sharded deployment diverged:\n seq %+v\n par %+v", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("no windows produced")
	}
}
