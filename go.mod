module omniwindow

go 1.22
