// Package omniwindow is a from-scratch reproduction of "OmniWindow: A
// General and Efficient Window Mechanism Framework for Network Telemetry"
// (SIGCOMM 2023). It provides the public API over the internal substrates:
// a Deployment wires a simulated RMT switch (data plane), the sub-window
// mechanism, the AFR collect-and-reset machinery and the controller into a
// complete system that turns a packet trace into per-window telemetry
// results under tumbling, sliding, session or user-defined windows of
// arbitrary size.
//
// Quickstart:
//
//	app := func(region int) afr.StateApp {
//		return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 1<<14, uint64(region)), 1<<14)
//	}
//	d, err := omniwindow.New(omniwindow.Config{
//		SubWindow:  100 * time.Millisecond,
//		Plan:       window.SlidingPlan(5, 1), // 500 ms window, 100 ms slide
//		Kind:       afr.Frequency,
//		Threshold:  1000,
//		AppFactory: app,
//		Slots:      1 << 14,
//	})
//	results := d.Run(pkts)
package omniwindow

import (
	"fmt"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/controller"
	"omniwindow/internal/durable"
	"omniwindow/internal/faults"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/rdma"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/window"
)

// Config describes an OmniWindow deployment on one switch plus its
// controller.
type Config struct {
	// SubWindow is the sub-window duration for the default timeout
	// signal. Ignored when Signal is set.
	SubWindow time.Duration
	// Signal optionally replaces the timeout signal (counter-, session-
	// or user-defined windows, §5).
	Signal window.Signal
	// Plan maps sub-windows to complete windows (size and slide in
	// sub-window units).
	Plan window.Plan
	// Kind is the merge pattern of the telemetry statistic.
	Kind afr.Kind
	// Threshold is the detection threshold over merged window values.
	Threshold uint64
	// Detector optionally replaces threshold detection.
	Detector func(k packet.FlowKey, v uint64) bool
	// DistinctCounter optionally overrides distinct-summary counting.
	DistinctCounter afr.DistinctCounter
	// CaptureValues copies merged per-flow values into window results.
	CaptureValues bool
	// Shards is the number of hash partitions of each controller's
	// key-value table; window assembly runs one worker per shard.
	// <= 0 defaults to runtime.GOMAXPROCS(0); 1 forces the sequential
	// controller. Results are identical for every shard count.
	Shards int
	// ExpectedFlows hints the number of distinct flows per sub-window, so
	// controller shard tables and ingest staging are pre-sized instead of
	// growing through rehashes on the hot path. 0 means no hint; the hint
	// is advisory only and never changes results.
	ExpectedFlows int
	// Preserve is the consistency model's preservation depth (§5): how
	// many terminated sub-windows stay monitorable so out-of-order packets
	// can still land in their stamped sub-window. 0 uses the deepest
	// supported depth — the region count minus the active region, i.e. 1
	// with the two-region layout. Values at or above the region count are
	// rejected: the "preserved" region would already hold newer state.
	Preserve int
	// SpikeAttr computes the software path's per-packet contribution for a
	// latency-spike copy (§5): a spike packet's stamped sub-window is no
	// longer preserved in any data-plane region, so the controller merges
	// the packet directly, and this function supplies the attribute value
	// one packet contributes under the app's merge pattern. Nil means 1
	// (count semantics, matching the default frequency application).
	SpikeAttr func(p *packet.Packet) uint64

	// AppFactory builds one region's application state, sized for one
	// sub-window's traffic. Called once per memory region.
	AppFactory func(region int) afr.StateApp
	// Apps optionally co-deploys several telemetry applications on the
	// same switch: they share the window mechanism and flowkey tracking
	// (one C&R round serves all), each with its own state and its own
	// controller table. When set, AppFactory/Kind/Threshold/Detector/
	// DistinctCounter/CaptureValues are ignored in favour of the specs.
	// The RDMA path currently supports single-app deployments only.
	Apps []AppSpec
	// KeyOf is the application's flowkey definition for tracking (§4.1):
	// it maps a packet to the key the AFR machinery enumerates; ok=false
	// skips tracking (e.g. the packet fails the query's filter). Nil
	// tracks every packet's 5-tuple.
	KeyOf func(p *packet.Packet) (packet.FlowKey, bool)
	// Slots is the per-register entry count the in-switch reset
	// enumerates (usually the app's row width).
	Slots int
	// Tracker sizes the flowkey tracking structures; zero value uses
	// DefaultTrackerConfig.
	Tracker afr.TrackerConfig
	// CollectionPackets is the number of concurrently recirculating
	// collection/clear packets (the paper uses 3 without RDMA, 16 with).
	CollectionPackets int
	// Grace is how long after a sub-window terminates the controller
	// waits before starting AFR generation, absorbing out-of-order
	// packets (§4.2). Defaults to the cost model's ControllerWait.
	Grace time.Duration

	// RetryLimit bounds the NACK/retransmit recovery rounds for AFRs
	// lost on the switch→controller path (§8). 0 uses the default (4);
	// a negative value disables recovery entirely, so windows with
	// losses finalize marked Incomplete instead of being repaired.
	RetryLimit int
	// RetryBackoff is the initial wait between recovery rounds, doubling
	// each round up to RetryMaxBackoff. In the in-process deployment the
	// waits are virtual time charged to the C&R budget. Zero values use
	// controller.DefaultRetryPolicy.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// AFRFaults optionally pushes every controller-bound AFR packet —
	// first transmissions and retransmissions alike — through a seeded
	// fault schedule (drop/duplicate; the in-process path carries
	// structs, not bytes, so truncation/corruption do not apply). With
	// RDMA enabled the same injector also supplies verb completion
	// errors. Chaos-testing use: it turns the deployment's lossless
	// internal wire into an adversarial one.
	AFRFaults *faults.Injector

	// CheckpointDir enables controller durability: at sub-window
	// boundaries the complete controller state is checkpointed into this
	// directory (atomic temp-file + rename), and between checkpoints
	// every ingested AFR batch, trigger and finish is appended to a
	// per-shard write-ahead log — a deployment restarted on the same
	// directory replays back to the exact pre-crash state. In RDMA mode
	// the WAL covers records at controller-ingest time (drain and
	// fallback), and a failover re-registers the memory region. Requires
	// a single-app deployment. Empty disables durability.
	CheckpointDir string
	// CheckpointEvery is the number of sub-window boundaries between
	// checkpoints (<= 0 means 1, a checkpoint at every boundary); the WAL
	// covers the boundaries in between. It must align with the merge
	// plan's slide — a multiple or a divisor of Plan.Slide — so
	// checkpoints land at window-emission cadence and replay never
	// re-assembles a half-covered window from mixed state.
	CheckpointEvery int
	// Standby enables the hot-standby controller pair: a second
	// controller tails every checkpoint, a lease-based health probe
	// detects primary death, and the standby takes over mid-window —
	// the in-flight sub-window is its only gap, recovered through the
	// ordinary NACK/retransmit loop before the region resets. Requires
	// CheckpointDir, an explicit Shards count (primary and standby must
	// agree across restarts), and CheckpointEvery 1 (older sub-windows'
	// switch state is already reset, so only the current one is
	// re-queryable).
	Standby bool
	// LeaseTTL is the primary-liveness lease duration in virtual time.
	// The standby promotes only once the lease lapses, so a takeover
	// never races a live primary; the wait is charged to the C&R budget.
	// <= 0 defaults to 2×SubWindow (falling back to 2×Grace when no
	// fixed sub-window length exists).
	LeaseTTL time.Duration
	// Crash schedules simulated controller deaths at sub-window
	// boundaries (seeded, deterministic — see faults.CrashSchedule).
	// Without Standby the deployment halts at the crash (restart it on
	// the same CheckpointDir to recover); with Standby it fails over.
	Crash *faults.CrashSchedule
	// PartitionFaults schedules network failures between the hot-standby
	// pair's halves (seeded, deterministic — see
	// faults.PartitionSchedule): symmetric cuts, asymmetric renewal-only
	// or checkpoint-only cuts, gray renewal slowness, and constant
	// standby clock drift. A partition that expires the lease promotes
	// the standby behind a fencing term — the isolated old primary's
	// durable writes are rejected (ErrFenced) and it self-demotes.
	// Requires Standby.
	PartitionFaults *faults.PartitionSchedule
	// ReadmitAfter is how many consecutive partition-free sub-window
	// boundaries must pass before a demoted former primary is re-admitted
	// as the new standby (its state wiped and re-seeded from the current
	// primary's). 0 defaults to 1; negative disables re-admission — a
	// demoted node stays parked forever. Requires PartitionFaults.
	ReadmitAfter int
	// DiskFaults pushes every checkpoint/WAL disk operation through a
	// seeded per-operation fault schedule (EIO, ENOSPC, short writes,
	// bit rot, slow IO — see faults.DiskSchedule). Writes that survive
	// the store's retry budget land normally; persistent faults flip the
	// deployment to degraded durability instead of stopping telemetry.
	// Requires CheckpointDir.
	DiskFaults *faults.DiskSchedule
	// WALSegmentBytes caps one WAL segment file's size: an append that
	// would exceed it seals the segment and rotates to a fresh
	// generation, so checkpoint truncation is whole-file deletion and a
	// corrupt frame quarantines one bounded file. 0 uses the durable
	// default (256 KiB); negative values are rejected. Requires
	// CheckpointDir.
	WALSegmentBytes int
	// DurabilityRetryLimit bounds the store's per-operation retries
	// after a transient disk fault (each retry rotates to a fresh
	// segment, sealing any torn tail behind it). 0 uses the default (3);
	// negative disables retries — the first fault degrades immediately.
	// Requires CheckpointDir.
	DurabilityRetryLimit int
	// DurabilityRetryBackoff is the initial wait between disk retries,
	// doubling up to DurabilityRetryMaxBackoff; the waits are virtual
	// time charged to the C&R budget, never slept. Zero values use the
	// durable defaults (1 ms / 50 ms). Require CheckpointDir.
	DurabilityRetryBackoff    time.Duration
	DurabilityRetryMaxBackoff time.Duration
	// ScrubDepth is how many recent WAL frames per chain the boundary
	// scrubber re-reads and CRC-verifies, catching bit rot while the
	// live state still covers the damaged records (a corrupt frame
	// quarantines its segment and forces a checkpoint at zero loss).
	// 0 uses the default (64); negative disables scrubbing. Requires
	// CheckpointDir.
	ScrubDepth int

	// MaxQueueDepth bounds the network collector's ingest queue when this
	// config is served over UDP (see CollectorConfig); <= 0 uses the
	// collector default. Negative values are rejected.
	MaxQueueDepth int
	// ShedPolicy selects what the network collector's admission control
	// drops under overload.
	ShedPolicy controller.ShedPolicy

	// RDMA enables the §7 collection path: AFRs land in registered
	// controller memory via simulated WRITE verbs, with hot keys cached
	// in a switch-side address MAT.
	RDMA bool
	// HotThreshold is how many sub-window appearances make a key hot.
	HotThreshold int
	// AddressMATSize bounds the switch-side address MAT.
	AddressMATSize int
	// RDMAVerbRetries bounds the RNR-style retries after a verb's first
	// failed attempt before the completion error becomes persistent and
	// the queue pair faults to Error (every send then falls back to the
	// packet path until boundary recovery). 0 uses the default (3); a
	// negative value disables retries.
	RDMAVerbRetries int
	// RDMAReplayDepth bounds the transport's PSN replay window: how many
	// unacked verbs can be replayed after in-flight loss or a region
	// invalidation. 0 uses the default (8192). Records evicted from the
	// window are charged to shed accounting if they are lost.
	RDMAReplayDepth int
	// RDMAFaults schedules deterministic RDMA transport failures (verb
	// completion errors, in-flight PSN drops, async QP errors, region
	// invalidations, sustained outages) — see faults.RDMASchedule.
	RDMAFaults *faults.RDMASchedule

	// Costs is the virtual-time cost model; zero value uses defaults.
	Costs switchsim.CostModel

	// DebugAddr, when non-empty, serves the runtime observability endpoint
	// on this address ("127.0.0.1:0" picks a free port; read it back with
	// DebugURL): Prometheus text on /metrics, the window-lifecycle trace
	// ring as JSON on /debug/windows, and the standard net/http/pprof
	// profiles on /debug/pprof/. Empty leaves the deployment completely
	// uninstrumented — the hot paths then carry nil handles whose calls
	// are no-ops and allocation-free (see internal/obs). Close the
	// endpoint with CloseDebug.
	DebugAddr string
	// Obs optionally supplies an existing observability registry to
	// instrument into, instead of (or in addition to) DebugAddr — the
	// fabric uses this to aggregate every switch's deployment into one
	// endpoint. Setting either Obs or DebugAddr enables instrumentation.
	Obs *obs.Registry
	// ObsLabels is an optional Prometheus label set (e.g. `switch="2"`)
	// embedded in every metric name this deployment registers, so several
	// deployments sharing one registry stay distinguishable. Ignored when
	// instrumentation is off.
	ObsLabels string
}

// Stats aggregates a deployment run's behaviour for the micro-benchmarks.
type Stats struct {
	// Packets is the number of trace packets processed.
	Packets int
	// SubWindows is the number of terminated-and-collected sub-windows.
	SubWindows int
	// Spills counts flow keys spilled to the controller because the
	// flowkey array was full.
	Spills int
	// Spikes counts latency-spike packets forwarded to the controller.
	Spikes int
	// SpikesMerged counts spike copies the controller's software path
	// actually merged (each distinct packet exactly once; duplicates and
	// too-late copies are not merged).
	SpikesMerged int
	// StaleEpochStamps counts packets rejected because their stamp was
	// written under an older synchronization epoch (by a rebooted,
	// not-yet-resynced switch). They are never monitored.
	StaleEpochStamps int
	// Reboots counts power-cycles injected into this switch.
	Reboots int
	// AFRs counts collected flow records.
	AFRs int
	// HotAFRs and ColdAFRs split the RDMA path's records.
	HotAFRs, ColdAFRs int
	// FallbackAFRs counts records rerouted mid-sub-window from the RDMA
	// transport to the packet C&R path (QP down, retries exhausted, cold
	// buffer full, or replay budget spent).
	FallbackAFRs int
	// RDMAReplayed counts verbs re-applied by the PSN-gap NACK/replay
	// loop.
	RDMAReplayed int
	// Retransmitted counts AFRs re-queried and re-sent by the
	// reliability protocol (attempts; the fault layer may still drop
	// some of them, triggering further rounds).
	Retransmitted int
	// RecoveryRounds counts NACK rounds across all sub-windows.
	RecoveryRounds int
	// IncompleteSubWindows counts sub-windows whose announced AFRs could
	// not all be recovered within the retry budget; the windows they
	// belong to are marked Incomplete.
	IncompleteSubWindows int
	// CollectVirtual is the total modeled C&R time across sub-windows
	// (enumeration + reset recirculation + injection).
	CollectVirtual time.Duration
	// MaxCollectVirtual is the worst single sub-window's C&R time; it
	// must stay below the sub-window duration for two regions to
	// suffice (§6).
	MaxCollectVirtual time.Duration
	// ControllerCPUVirtual is the modeled controller-CPU time spent
	// receiving and parsing (zero for RDMA hot-path records).
	ControllerCPUVirtual time.Duration
	// RecircPasses is the total number of recirculation pipeline passes.
	RecircPasses int
	// Failovers counts hot-standby promotions — crash failovers and
	// partition-triggered takeovers. Crash failover happens at most once,
	// but with re-admission (Config.ReadmitAfter) a healed node becomes
	// the new standby and can promote again, so repeated partitions can
	// push this past 1.
	Failovers int
	// Demotions counts zombie-primary self-demotions: the partitioned old
	// primary observed its own fencing (a durable write returned
	// ErrFenced, or its lease lapsed under a promoted standby) and stopped
	// emitting.
	Demotions int
	// Readmissions counts demoted former primaries re-admitted as the new
	// standby after ReadmitAfter consecutive partition-free boundaries.
	Readmissions int
	// FencedWrites counts durable mutations rejected because the writer's
	// fencing term was stale — the zombie primary's post-promotion write
	// attempts. Mirrors the store's counter for the run.
	FencedWrites int
	// PartitionEvents counts sub-window boundaries at which an active
	// partition fault touched this deployment (lost or delayed renewals,
	// cut checkpoint tailing).
	PartitionEvents int
	// SuppressedWindows counts window emissions the promoted standby
	// discarded because the fenced old primary had already legitimately
	// emitted them before losing its term — the duplicate-finalizer
	// guard: every (Start, End) window has exactly one emitter.
	SuppressedWindows int
	// ReplayedWindows counts windows re-emitted by WAL replay during
	// recovery, included in Results in their original positions.
	ReplayedWindows int
	// DurabilityGaps counts durable writes skipped (or failed) while the
	// deployment ran in degraded durability — pressure, not damage: the
	// live windows stayed byte-identical; only a crash or failover inside
	// the degraded stretch turns gaps into Missing records.
	DurabilityGaps int
	// DurabilityHeals counts successful degraded→durable re-entries (a
	// boundary heal probe cut a fresh checkpoint on new WAL generations).
	DurabilityHeals int
	// QuarantinedSegments counts WAL segment files (and checkpoints)
	// renamed aside as damaged — by recovery or the boundary scrubber —
	// instead of aborting. Their unreplayable records surface as Missing.
	QuarantinedSegments int
}

// AppSpec describes one co-deployed telemetry application.
type AppSpec struct {
	// Name labels the app in results.
	Name string
	// Factory builds the app's per-region state.
	Factory func(region int) afr.StateApp
	// Kind is the statistic's merge pattern.
	Kind afr.Kind
	// Threshold, Detector, DistinctCounter, CaptureValues and SpikeAttr
	// parameterize the app's controller, as in the single-app Config
	// fields.
	Threshold       uint64
	Detector        func(k packet.FlowKey, v uint64) bool
	DistinctCounter afr.DistinctCounter
	CaptureValues   bool
	SpikeAttr       func(p *packet.Packet) uint64
}

// Deployment is a running OmniWindow instance.
type Deployment struct {
	cfg     Config
	apps    []AppSpec
	sw      *switchsim.Switch
	manager *window.Manager
	engine  *afr.Engine
	// ctrls holds one controller per co-deployed app; ctrl aliases
	// ctrls[0] for the single-app fast paths.
	ctrls []*controller.Controller
	ctrl  *controller.Controller

	// RDMA path: the fault-tolerant transport (QP state machine, PSN
	// replay window, AddressMAT) plus the key-hotness tracker that
	// drives promotions.
	rdma *rdma.Transport
	hot  *controller.HotTracker

	spilled map[uint64][]packet.FlowKey
	pending []pendingCR
	// results aliases appResults[0]; per-app windows live in appResults.
	results    []controller.WindowResult
	appResults [][]controller.WindowResult
	stats      Stats
	now        int64
	// collectAt is the current collection's boundary-anchored due time
	// (termination + grace). The standby's partition probe observes the
	// lease at this instant — the boundary it runs at — not at d.now,
	// which a trailing-flush time jump may have moved arbitrarily far.
	collectAt int64

	// regionOwner tracks which sub-window's state each memory region
	// currently holds, so stale terminations cannot reset a region a
	// newer sub-window has taken over.
	regionOwner [2]uint64
	regionOwned [2]bool

	// Durability and failover (nil/zero unless CheckpointDir is set).
	store      *durable.Store
	standby    *controller.Controller
	lease      *durable.Lease
	ckptShards int
	failedOver bool
	// term is this incarnation's fencing term — the writer identity every
	// durable mutation carries. A partition promotion CASes the store to
	// term+1 for the standby; the old primary's writes then fence.
	term uint64
	// demotedCtrl parks a self-demoted former primary's controller until
	// re-admission (or forever, when re-admission is disabled).
	demotedCtrl *controller.Controller
	// cleanSince counts consecutive partition-free boundaries observed
	// while a demoted node waits for re-admission.
	cleanSince int
	crashed    bool
	crashedAt  uint64
	storeErr   error
	// storeDead: the store itself died (crash hook or closed) — durable
	// logging is over for this incarnation. degraded: disk faults
	// exhausted the store's retry budget — writes are skipped and counted
	// as gaps until the boundary heal probe succeeds.
	storeDead bool
	degraded  bool
	// unattested/unattestedFrom: open after crash-restart recovery when
	// the durable record ends before the crash point (a degraded stretch,
	// a quarantined tail). Sub-windows from unattestedFrom up to the
	// first one this incarnation observes traffic for cannot be proven
	// empty — they are charged Missing so their windows assemble
	// Incomplete instead of silently partial.
	unattested     bool
	unattestedFrom uint64

	// Observability (zero unless Config.Obs or Config.DebugAddr is set).
	reg      *obs.Registry
	obs      deployObs
	debugSrv *obs.Server

	// preserve is the resolved consistency-model preservation depth.
	preserve int
	// decisionHook, when set, observes every traffic packet's window
	// decision — the fabric's invariant checker uses it to prove no
	// stale-epoch stamp is ever monitored and spikes are copied once.
	decisionHook func(p *packet.Packet, r window.Result)

	// testAFRLoss, when set, drops the i-th AFR packet before delivery —
	// a fault-injection hook for exercising the reliability protocol.
	testAFRLoss func(i int) bool
	afrPktCount int

	// Hot-path staging scratch, reused across deliveries so steady-state
	// ingest and WAL grouping allocate nothing (see durability.go logBatch
	// and deployment.go ingestByApp). Deliveries are single-threaded per
	// deployment, so plain fields suffice.
	walKeys  []walKey
	walParts [][]packet.AFR
	appParts [][]packet.AFR
}

// walKey identifies one WAL frame's grouping: (controller shard,
// sub-window).
type walKey struct {
	shard int
	sw    uint64
}

// pendingCR is a terminated sub-window awaiting its grace period.
type pendingCR struct {
	sw  uint64
	due int64
}

// New validates the configuration and builds a deployment.
func New(cfg Config) (*Deployment, error) {
	if cfg.Signal == nil {
		if cfg.SubWindow <= 0 {
			return nil, fmt.Errorf("omniwindow: SubWindow must be positive when no custom Signal is given")
		}
		cfg.Signal = window.TimeoutSignal{Interval: int64(cfg.SubWindow)}
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("omniwindow: RetryBackoff must be non-negative, got %v (use RetryLimit < 0 to disable recovery)", cfg.RetryBackoff)
	}
	if cfg.RetryMaxBackoff < 0 {
		return nil, fmt.Errorf("omniwindow: RetryMaxBackoff must be non-negative, got %v", cfg.RetryMaxBackoff)
	}
	if cfg.MaxQueueDepth < 0 {
		return nil, fmt.Errorf("omniwindow: MaxQueueDepth must be non-negative, got %d (0 means the collector default)", cfg.MaxQueueDepth)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("omniwindow: CheckpointEvery must be non-negative, got %d (0 means every boundary)", cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery > 1 {
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("omniwindow: CheckpointEvery %d is set but CheckpointDir is empty — nothing would be checkpointed", cfg.CheckpointEvery)
		}
		if cfg.CheckpointEvery%cfg.Plan.Slide != 0 && cfg.Plan.Slide%cfg.CheckpointEvery != 0 {
			return nil, fmt.Errorf("omniwindow: CheckpointEvery %d does not align with the plan's slide %d (it must be a multiple or a divisor, so checkpoints land at window-emission cadence)", cfg.CheckpointEvery, cfg.Plan.Slide)
		}
	}
	if cfg.CheckpointDir == "" {
		if cfg.DiskFaults != nil || cfg.WALSegmentBytes != 0 || cfg.DurabilityRetryLimit != 0 ||
			cfg.DurabilityRetryBackoff != 0 || cfg.DurabilityRetryMaxBackoff != 0 || cfg.ScrubDepth != 0 {
			return nil, fmt.Errorf("omniwindow: DiskFaults/WALSegmentBytes/DurabilityRetry*/ScrubDepth require CheckpointDir — there is no durable store to apply them to")
		}
	}
	if cfg.WALSegmentBytes < 0 {
		return nil, fmt.Errorf("omniwindow: WALSegmentBytes must be non-negative, got %d (0 means the durable default)", cfg.WALSegmentBytes)
	}
	if cfg.DurabilityRetryBackoff < 0 {
		return nil, fmt.Errorf("omniwindow: DurabilityRetryBackoff must be non-negative, got %v (use DurabilityRetryLimit < 0 to disable retries)", cfg.DurabilityRetryBackoff)
	}
	if cfg.DurabilityRetryMaxBackoff < 0 {
		return nil, fmt.Errorf("omniwindow: DurabilityRetryMaxBackoff must be non-negative, got %v", cfg.DurabilityRetryMaxBackoff)
	}
	if cfg.Standby {
		if cfg.CheckpointDir == "" {
			return nil, fmt.Errorf("omniwindow: Standby requires CheckpointDir — the standby promotes from tailed checkpoints")
		}
		if cfg.Shards <= 0 {
			return nil, fmt.Errorf("omniwindow: Standby requires an explicit Shards count, got %d — primary and standby must agree on the WAL's shard layout across restarts", cfg.Shards)
		}
		if cfg.CheckpointEvery > 1 {
			return nil, fmt.Errorf("omniwindow: Standby requires CheckpointEvery 1, got %d — only the in-flight sub-window's switch state is still queryable at takeover", cfg.CheckpointEvery)
		}
	}
	if cfg.PartitionFaults != nil && !cfg.Standby {
		return nil, fmt.Errorf("omniwindow: PartitionFaults requires Standby — a partition needs two halves to separate")
	}
	if cfg.ReadmitAfter != 0 && cfg.PartitionFaults == nil {
		return nil, fmt.Errorf("omniwindow: ReadmitAfter requires PartitionFaults — only a partition demotion leaves a node to re-admit")
	}
	apps := cfg.Apps
	if len(apps) == 0 {
		if cfg.AppFactory == nil {
			return nil, fmt.Errorf("omniwindow: AppFactory (or Apps) is required")
		}
		apps = []AppSpec{{
			Name:            "app",
			Factory:         cfg.AppFactory,
			Kind:            cfg.Kind,
			Threshold:       cfg.Threshold,
			Detector:        cfg.Detector,
			DistinctCounter: cfg.DistinctCounter,
			CaptureValues:   cfg.CaptureValues,
			SpikeAttr:       cfg.SpikeAttr,
		}}
	}
	for i, a := range apps {
		if a.Factory == nil {
			return nil, fmt.Errorf("omniwindow: app %d has no factory", i)
		}
	}
	if cfg.RDMA && len(apps) > 1 {
		return nil, fmt.Errorf("omniwindow: the RDMA path supports single-app deployments only")
	}
	if !cfg.RDMA && (cfg.RDMAFaults != nil || cfg.RDMAVerbRetries != 0 || cfg.RDMAReplayDepth != 0) {
		return nil, fmt.Errorf("omniwindow: RDMAFaults/RDMAVerbRetries/RDMAReplayDepth require RDMA")
	}
	if cfg.RDMAReplayDepth < 0 {
		return nil, fmt.Errorf("omniwindow: RDMAReplayDepth must be non-negative, got %d", cfg.RDMAReplayDepth)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("omniwindow: Slots must be positive")
	}
	if cfg.Tracker.BloomBits == 0 {
		cfg.Tracker = afr.DefaultTrackerConfig()
	}
	cfg.Tracker.Regions = 2
	if cfg.CollectionPackets <= 0 {
		if cfg.RDMA {
			cfg.CollectionPackets = 16
		} else {
			cfg.CollectionPackets = 3
		}
	}
	if cfg.Costs == (switchsim.CostModel{}) {
		cfg.Costs = switchsim.DefaultCosts()
	}
	if cfg.Grace <= 0 {
		cfg.Grace = cfg.Costs.ControllerWait
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 3
	}
	if cfg.AddressMATSize <= 0 {
		cfg.AddressMATSize = 4096
	}

	d := &Deployment{
		cfg:     cfg,
		apps:    apps,
		spilled: make(map[uint64][]packet.FlowKey),
	}
	d.sw = switchsim.NewWithCapacity(0, switchsim.DefaultCapacity(), cfg.Costs)

	regions := window.NewRegions(2, cfg.Slots)
	d.preserve = cfg.Preserve
	if d.preserve == 0 {
		d.preserve = regions.N() - 1
	}
	manager, err := window.NewManagerPreserve(cfg.Signal, regions, d.preserve)
	if err != nil {
		return nil, fmt.Errorf("omniwindow: %w", err)
	}
	d.manager = manager

	perRegion := make([][]afr.StateApp, 2)
	for r := range perRegion {
		for ai, spec := range apps {
			a := spec.Factory(r)
			if a == nil {
				return nil, fmt.Errorf("omniwindow: app %d factory returned nil for region %d", ai, r)
			}
			if len(apps) == 1 && a.Slots() != cfg.Slots {
				return nil, fmt.Errorf("omniwindow: region %d app has %d slots, config says %d", r, a.Slots(), cfg.Slots)
			}
			if a.Slots() > cfg.Slots {
				return nil, fmt.Errorf("omniwindow: app %d has %d slots exceeding the configured %d", ai, a.Slots(), cfg.Slots)
			}
			perRegion[r] = append(perRegion[r], a)
		}
	}
	d.engine = afr.NewMultiEngine(afr.NewTracker(cfg.Tracker), perRegion, regions)
	if cfg.KeyOf != nil {
		d.engine.SetKeyFunc(cfg.KeyOf)
	}

	d.appResults = make([][]controller.WindowResult, len(apps))
	for i, spec := range apps {
		ctrl, err := controller.NewWithError(controller.Config{
			Plan:            cfg.Plan,
			Kind:            spec.Kind,
			Threshold:       spec.Threshold,
			Detector:        spec.Detector,
			DistinctCounter: spec.DistinctCounter,
			CaptureValues:   spec.CaptureValues,
			Shards:          cfg.Shards,
			ExpectedFlows:   cfg.ExpectedFlows,
		})
		if err != nil {
			return nil, fmt.Errorf("omniwindow: app %d controller: %w", i, err)
		}
		d.ctrls = append(d.ctrls, ctrl)
	}
	d.ctrl = d.ctrls[0]

	if cfg.RDMA {
		var injector func(op string, addr int) error
		if cfg.AFRFaults != nil {
			injector = cfg.AFRFaults.Verb
		}
		d.rdma = rdma.NewTransport(rdma.TransportConfig{
			Rows:        cfg.AddressMATSize,
			Lanes:       cfg.Plan.Size,
			BufCap:      1 << 18,
			VerbRetries: cfg.RDMAVerbRetries,
			ReplayDepth: cfg.RDMAReplayDepth,
			Faults:      cfg.RDMAFaults,
			Injector:    injector,
			// The closure reads d.ctrl at charge time, so shed notes
			// follow a failover to the promoted standby.
			OnShed: func(sw uint64, n int) { d.noteRDMAShed(sw, n) },
		})
		d.hot = controller.NewHotTracker(cfg.AddressMATSize, cfg.HotThreshold)
	}

	if cfg.CheckpointDir != "" {
		if len(apps) > 1 {
			return nil, fmt.Errorf("omniwindow: durability supports single-app deployments only, got %d apps", len(apps))
		}
		if err := d.openDurability(); err != nil {
			return nil, err
		}
	}

	if err := d.setupObs(); err != nil {
		return nil, err
	}
	if err := d.deployResources(); err != nil {
		return nil, err
	}
	d.installProgram()
	if d.store != nil {
		if err := d.recover(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// openDurability opens the checkpoint/WAL store and, when configured,
// builds the hot-standby controller and the liveness lease.
func (d *Deployment) openDurability() error {
	cfg := &d.cfg
	d.ckptShards = d.ctrl.Shards()
	opts := durable.Options{
		SegmentBytes:    cfg.WALSegmentBytes,
		RetryLimit:      cfg.DurabilityRetryLimit,
		RetryBackoff:    cfg.DurabilityRetryBackoff,
		RetryMaxBackoff: cfg.DurabilityRetryMaxBackoff,
		ScrubDepth:      cfg.ScrubDepth,
	}
	if cfg.DiskFaults != nil {
		opts.FS = durable.NewFaultFS(durable.OSFS{}, cfg.DiskFaults)
	}
	store, err := durable.OpenStore(cfg.CheckpointDir, d.ckptShards, opts)
	if err != nil {
		return fmt.Errorf("omniwindow: %w", err)
	}
	d.store = store
	// The opener implicitly adopts the persisted term (the store loads
	// the term file — or rebuilds authority from segment headers — and
	// resumes writing under it). A CAS only happens at promotion: the
	// term advances when a standby takes over, never on a plain restart,
	// so the WAL's term sequence reads as the exact failover history.
	d.term = store.Term()
	if !cfg.Standby {
		return nil
	}
	spec := d.apps[0]
	standby, err := controller.NewWithError(controller.Config{
		Plan:            cfg.Plan,
		Kind:            spec.Kind,
		Threshold:       spec.Threshold,
		Detector:        spec.Detector,
		DistinctCounter: spec.DistinctCounter,
		CaptureValues:   spec.CaptureValues,
		Shards:          cfg.Shards,
		ExpectedFlows:   cfg.ExpectedFlows,
	})
	if err != nil {
		return fmt.Errorf("omniwindow: standby controller: %w", err)
	}
	d.standby = standby
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 2 * cfg.SubWindow
	}
	if ttl <= 0 {
		ttl = 2 * cfg.Grace
	}
	d.lease = durable.NewLease(int64(ttl))
	d.lease.Renew(0)
	return nil
}

// CollectorConfig translates the deployment's overload knobs into the UDP
// collector's admission-control settings, for callers serving this config
// over the network (see examples/udpcollector).
func (c Config) CollectorConfig() controller.CollectorConfig {
	return controller.CollectorConfig{
		MaxQueueDepth: c.MaxQueueDepth,
		Policy:        c.ShedPolicy,
	}
}

// Crashed reports whether (and at which sub-window boundary) the
// scheduled controller crash halted this deployment. A halted deployment
// ignores further traffic; build a new one on the same CheckpointDir to
// recover.
func (d *Deployment) Crashed() (sw uint64, ok bool) { return d.crashedAt, d.crashed }

// DurabilityErr reports the first checkpoint/WAL write failure, if any.
// A fault that survived the store's retry budget flips the deployment to
// degraded durability (writes skipped and counted as DurabilityGaps, a
// boundary heal probe re-enters durable mode); the recorded error is the
// first one ever seen and persists across heals as an audit trail. See
// DurabilityDegraded for the live mode.
func (d *Deployment) DurabilityErr() error { return d.storeErr }

// CloseDurability flushes and closes the checkpoint/WAL store (a no-op
// without CheckpointDir). Call it when the deployment is done so a later
// deployment can reopen the directory.
func (d *Deployment) CloseDurability() error {
	if d.store == nil {
		return nil
	}
	return d.store.Close()
}

// Switch exposes the simulated switch (resource ledger, cost model).
func (d *Deployment) Switch() *switchsim.Switch { return d.sw }

// Epoch returns the switch's current synchronization epoch (0 when epochs
// are unused, or after a reboot until the switch resyncs).
func (d *Deployment) Epoch() uint64 { return d.manager.Epoch() }

// SetEpoch joins the switch to a fabric synchronization epoch: stamps it
// writes carry the epoch, stamps from older epochs are rejected as stale.
func (d *Deployment) SetEpoch(e uint64) {
	d.manager.SetEpoch(e)
	d.obs.ring.Record(obs.StageEpochResync, d.manager.Cur(), -1, int64(e))
}

// CurrentSubWindow returns the switch's local sub-window counter.
func (d *Deployment) CurrentSubWindow() uint64 { return d.manager.Cur() }

// ResyncBeacon applies a controller-announced (epoch, sub-window) beacon:
// the switch adopts the epoch and jumps forward to the fabric's sub-window
// without terminating the skipped range (whose state belongs to the
// pre-reboot incarnation). Beacons from older epochs are ignored.
func (d *Deployment) ResyncBeacon(epoch, sw uint64) {
	before := d.manager.Epoch()
	d.manager.Resync(epoch, sw)
	if d.manager.Epoch() != before {
		d.obs.ring.Record(obs.StageEpochResync, sw, -1, int64(epoch))
	}
}

// SetDecisionHook registers an observer over every traffic packet's window
// decision (stamp written/adopted, spike escape, stale-epoch rejection).
// The fabric's invariant checker uses it; nil unregisters.
func (d *Deployment) SetDecisionHook(h func(p *packet.Packet, r window.Result)) {
	d.decisionHook = h
}

// UncollectedSubWindows lists the sub-windows whose switch state has not
// yet been collected — region owners and grace-pending C&R rounds. This is
// exactly the data a power-cycle at this instant would destroy; the fabric
// charges it to the rebooted switch as a coverage gap.
func (d *Deployment) UncollectedSubWindows() []uint64 {
	seen := make(map[uint64]bool, 4)
	var out []uint64
	add := func(sw uint64) {
		if !seen[sw] {
			seen[sw] = true
			out = append(out, sw)
		}
	}
	for r, owned := range d.regionOwned {
		if owned {
			add(d.regionOwner[r])
		}
	}
	for _, cr := range d.pending {
		add(cr.sw)
	}
	return out
}

// Reboot power-cycles the switch: every register — flowkey trackers,
// application state, the sub-window counter, the synchronization epoch —
// is wiped. The deployment comes back up immediately but unsynced (epoch
// 0, sub-window 0): stamps it writes are rejected as stale by synced
// switches until it resyncs from the first in-epoch stamp it forwards or
// from a controller beacon (ResyncBeacon), and its first local sub-window
// advance adopts the clock's value without re-terminating the skipped
// range. The controller is NOT restarted — it is a separate box — so its
// announced-sub-window ledger survives: a sub-window announced before the
// wipe still reaches FinishSubWindow at its grace deadline, finds nothing
// to collect, and finalizes its windows explicitly marked Incomplete with
// the announced records missing. Nothing is silently undercounted.
func (d *Deployment) Reboot() {
	if d.obs.ring != nil {
		oldest := int64(-1)
		for _, sw := range d.UncollectedSubWindows() {
			if oldest < 0 || int64(sw) < oldest {
				oldest = int64(sw)
			}
		}
		d.obs.ring.Record(obs.StageReboot, d.manager.Cur(), -1, oldest)
	}
	d.obs.reboots.Inc()
	d.engine.PowerCycle()
	manager, err := window.NewManagerPreserve(d.cfg.Signal, d.manager.Regions(), d.preserve)
	if err != nil {
		panic(err) // unreachable: the same arguments validated in New
	}
	manager.BootUnsynced()
	d.manager = manager
	d.regionOwned = [2]bool{}
	d.regionOwner = [2]uint64{}
	d.stats.Reboots++
}

// Controller exposes the controller (per-sub-window timing breakdowns).
func (d *Deployment) Controller() *controller.Controller { return d.ctrl }

// Term returns the fencing term this deployment's serving controller
// currently writes under (0 without durability). Every promotion —
// crash or partition — advances it; a demoted former primary's stale
// term is what the store rejects its writes by.
func (d *Deployment) Term() uint64 { return d.term }

// Stats returns run statistics. Store-side tallies (quarantined
// segments, fenced writes) are folded in at read time.
func (d *Deployment) Stats() Stats {
	s := d.stats
	if d.store != nil {
		s.QuarantinedSegments = int(d.store.Quarantined())
		s.FencedWrites = int(d.store.FencedWrites())
	}
	return s
}

// Feasibility is the §6 deployment check: with two shared memory regions,
// every sub-window's collect-and-reset must finish strictly inside one
// sub-window, or the region being collected would be needed for new
// traffic before it is ready.
type Feasibility struct {
	// SubWindow is the configured sub-window length (zero for
	// signal-driven windows with no fixed length).
	SubWindow time.Duration
	// WorstCR is the largest observed C&R virtual time.
	WorstCR time.Duration
	// Headroom is SubWindow/WorstCR (0 when unknown).
	Headroom float64
	// TwoRegionsSufficient reports whether the §6 invariant held for
	// every collected sub-window so far.
	TwoRegionsSufficient bool
}

// Feasibility reports whether the run so far satisfied the two-region
// invariant. Call after (or during) a run.
func (d *Deployment) Feasibility() Feasibility {
	f := Feasibility{SubWindow: d.cfg.SubWindow, WorstCR: d.stats.MaxCollectVirtual}
	if f.SubWindow > 0 && f.WorstCR > 0 {
		f.Headroom = float64(f.SubWindow) / float64(f.WorstCR)
	}
	f.TwoRegionsSufficient = f.SubWindow == 0 || f.WorstCR < f.SubWindow
	return f
}

// Results returns the windows completed so far (the first app's, which is
// the only one in single-app deployments).
func (d *Deployment) Results() []controller.WindowResult { return d.results }

// ResultsFor returns a co-deployed app's completed windows by index.
func (d *Deployment) ResultsFor(app int) []controller.WindowResult {
	return d.appResults[app]
}

// AppNames lists the co-deployed apps in result order.
func (d *Deployment) AppNames() []string {
	names := make([]string, len(d.apps))
	for i, a := range d.apps {
		names[i] = a.Name
	}
	return names
}
