package omniwindow

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/faults"
	"omniwindow/internal/window"
)

// TestChaosNeverDoubleCountsProperty: for ANY seeded fault schedule with
// loss below 100%, sequence dedup plus bounded NACK/retransmit recovery
// yields per-key counts equal to the lossless baseline — duplicates never
// inflate a count, and retransmitted records never land twice. Schedules
// are drawn from a seeded meta-RNG so failures replay exactly.
func TestChaosNeverDoubleCountsProperty(t *testing.T) {
	baseline := runChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}

	meta := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 12; trial++ {
		fc := faults.Config{
			Seed:          meta.Int63(),
			Drop:          meta.Float64() * 0.5, // loss < 100%: recovery can win
			Duplicate:     meta.Float64() * 0.5,
			MaxDuplicates: 1 + meta.Intn(3),
		}
		inj := faults.New(fc)
		d := runChaos(t, func(c *Config) {
			c.AFRFaults = inj
			// Enough rounds that a <=50% per-packet loss rate converges
			// with overwhelming probability.
			c.RetryLimit = 30
		})
		if d.Stats().IncompleteSubWindows != 0 {
			t.Fatalf("trial %d (cfg %+v): %d incomplete sub-windows",
				trial, fc, d.Stats().IncompleteSubWindows)
		}
		got, want := d.Results(), baseline.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d (cfg %+v): %d windows, want %d", trial, fc, len(got), len(want))
		}
		for i := range want {
			for k, v := range want[i].Values {
				if got[i].Values[k] != v {
					t.Fatalf("trial %d (cfg %+v) window %d key %v: got %d want %d",
						trial, fc, i, k, got[i].Values[k], v)
				}
			}
			for k, v := range got[i].Values {
				if want[i].Values[k] != v {
					t.Fatalf("trial %d (cfg %+v) window %d phantom key %v = %d",
						trial, fc, i, k, v)
				}
			}
		}
	}
}

// TestChaosRDMAVerbErrors: injected RDMA completion errors must never
// lose telemetry data — the failed verb's record falls back to the
// packet path, so results match a fault-free RDMA run exactly.
func TestChaosRDMAVerbErrors(t *testing.T) {
	run := func(inj *faults.Injector) *Deployment {
		cfg := freqConfig(window.SlidingPlan(3, 1), 25, true)
		cfg.AFRFaults = inj
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.RunFor(chaosTrace(), 500*ms)
		return d
	}
	baseline := run(nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}

	for _, seed := range []int64{1, 2, 3} {
		inj := faults.New(faults.Config{Seed: seed, VerbError: 0.3})
		d := run(inj)
		if inj.Stats().VerbErrors == 0 {
			t.Fatalf("seed %d: schedule injected no verb errors", seed)
		}
		if !reflect.DeepEqual(baseline.Results(), d.Results()) {
			t.Fatalf("seed %d: verb errors changed results:\nbaseline: %+v\nfaulted:  %+v",
				seed, baseline.Results(), d.Results())
		}
	}
}

// TestChaosCrashRestartProperty: for ANY seeded probabilistic crash
// schedule and ANY (slide-aligned) checkpoint cadence, killing the
// controller wherever the schedule strikes first and restarting on the
// same directory stitches back the exact uncrashed window sequence.
// Schedules come from a seeded meta-RNG so failures replay exactly.
func TestChaosCrashRestartProperty(t *testing.T) {
	baseline := runChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}

	meta := rand.New(rand.NewSource(2027))
	crashes := 0
	for trial := 0; trial < 12; trial++ {
		cs := &faults.CrashSchedule{
			Seed: meta.Uint64(),
			Prob: 0.15 + meta.Float64()*0.5,
		}
		every := 1 + meta.Intn(3) // any value aligns with slide 1
		dir := t.TempDir()

		// Find where (if anywhere) this schedule strikes first.
		at, willCrash := uint64(0), false
		for sw := uint64(0); sw <= 4; sw++ {
			if cs.At(sw) {
				at, willCrash = sw, true
				break
			}
		}
		if !willCrash {
			d, err := New(durableConfig(dir, every, cs))
			if err != nil {
				t.Fatal(err)
			}
			d.RunFor(chaosTrace(), 500*ms)
			if _, crashed := d.Crashed(); crashed {
				t.Fatalf("trial %d: schedule %+v crashed despite predicting no crash", trial, cs)
			}
			if !reflect.DeepEqual(baseline.Results(), d.Results()) {
				t.Fatalf("trial %d: durable run without crash diverged", trial)
			}
			d.CloseDurability()
			continue
		}
		crashes++
		combined, _ := crashAndRestart(t, dir, every, at)
		if !reflect.DeepEqual(baseline.Results(), combined) {
			t.Fatalf("trial %d (seed %d prob %.2f every %d, crash at %d): restart diverged:\nuncrashed: %+v\nstitched:  %+v",
				trial, cs.Seed, cs.Prob, every, at, baseline.Results(), combined)
		}
	}
	if crashes == 0 {
		t.Fatal("meta-RNG produced no crashing schedules; property untested")
	}
}

// TestChaosRetryKnobsBoundVirtualTime: recovery waits are charged to the
// C&R virtual-time budget, so the configured backoff knobs bound the
// worst-case stall a lossy sub-window can add.
func TestChaosRetryKnobsBoundVirtualTime(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, Drop: 1})
	d := runChaos(t, func(c *Config) {
		c.AFRFaults = inj
		c.RetryLimit = 3
		c.RetryBackoff = time.Millisecond
		c.RetryMaxBackoff = 2 * time.Millisecond
	})
	// Per sub-window: 1ms + 2ms + 2ms of backoff on top of the lossless
	// C&R time; the budget must stay within the 100 ms sub-window.
	if err := d.assertConsistent(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().RecoveryRounds == 0 {
		t.Fatal("no recovery rounds charged")
	}
}
