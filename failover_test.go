package omniwindow

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/controller"
	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// durableConfig is the chaos deployment with durability enabled.
func durableConfig(dir string, every int, crash *faults.CrashSchedule) Config {
	cfg := freqConfig(window.SlidingPlan(3, 1), 25, false)
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryMaxBackoff = 2 * time.Millisecond
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = every
	cfg.Crash = crash
	return cfg
}

// traceTail returns the packets of sub-windows strictly after `at` — the
// part of the trace a deployment restarted after a crash at boundary `at`
// must replay. The crash destroys the switch's in-flight region along with
// the controller process, so replay restarts at the sub-window boundary,
// not at the exact crash packet.
func traceTail(pkts []packet.Packet, at uint64) []packet.Packet {
	cut := int64(at+1) * 100 * ms
	var tail []packet.Packet
	for _, p := range pkts {
		if p.Time >= cut {
			tail = append(tail, p)
		}
	}
	return tail
}

// lastCheckpointBefore returns the highest boundary <= at that took a
// checkpoint under the given cadence, and whether one exists.
func lastCheckpointBefore(at uint64, every int) (uint64, bool) {
	if every <= 0 {
		every = 1
	}
	for b := int64(at); b >= 0; b-- {
		if (uint64(b)+1)%uint64(every) == 0 {
			return uint64(b), true
		}
	}
	return 0, false
}

// crashAndRestart kills a deployment at boundary `at`, restarts it on the
// same checkpoint directory, replays the trace tail, and returns the
// combined window sequence: the pre-crash run's windows through the last
// checkpoint, then everything the restarted run emitted (WAL-replayed
// windows first, fresh tail windows after). The second return is the
// restarted deployment, for stats assertions.
func crashAndRestart(t *testing.T, dir string, every int, at uint64) ([]controller.WindowResult, *Deployment) {
	t.Helper()
	pkts := chaosTrace()

	d1, err := New(durableConfig(dir, every, &faults.CrashSchedule{Fixed: []uint64{at}}))
	if err != nil {
		t.Fatal(err)
	}
	d1.RunFor(pkts, 500*ms)
	if sw, ok := d1.Crashed(); !ok || sw != at {
		t.Fatalf("crash at %d did not fire: crashed=%v sw=%d", at, ok, sw)
	}
	if err := d1.DurabilityErr(); err != nil {
		t.Fatalf("pre-crash run hit a durable-write error: %v", err)
	}

	// Keep only the pre-crash windows the last checkpoint fully covers;
	// the restarted run re-emits the rest from the WAL.
	var combined []controller.WindowResult
	if ckpt, ok := lastCheckpointBefore(at, every); ok {
		for _, w := range d1.Results() {
			if w.End <= ckpt {
				combined = append(combined, w)
			}
		}
	}

	d2, err := New(durableConfig(dir, every, nil))
	if err != nil {
		t.Fatalf("restart on %s failed: %v", dir, err)
	}
	d2.RunFor(traceTail(pkts, at), 500*ms)
	if err := d2.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	return append(combined, d2.Results()...), d2
}

// TestCrashRestartByteIdenticalEveryBoundary is the tentpole durability
// assertion: kill the controller at EVERY sub-window boundary in turn,
// restart on the same checkpoint directory, replay the trace tail — and
// the stitched window sequence is byte-identical to a run that never
// crashed. Checkpoint restore plus WAL replay is exact recovery, not
// approximation.
func TestCrashRestartByteIdenticalEveryBoundary(t *testing.T) {
	baseline := runChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}
	for at := uint64(0); at <= 4; at++ {
		t.Run(fmt.Sprintf("boundary%d", at), func(t *testing.T) {
			combined, _ := crashAndRestart(t, t.TempDir(), 1, at)
			if !reflect.DeepEqual(baseline.Results(), combined) {
				t.Fatalf("crash at %d not exactly recovered:\nuncrashed: %+v\nstitched:  %+v",
					at, baseline.Results(), combined)
			}
		})
	}
}

// TestCrashRestartReplaysWAL: with checkpoints every other boundary, a
// crash between checkpoints forces real WAL replay — re-ingested batches,
// re-announced triggers and re-run window assemblies — and the result is
// still byte-identical.
func TestCrashRestartReplaysWAL(t *testing.T) {
	baseline := runChaos(t, nil)
	for _, at := range []uint64{0, 2, 4} { // boundaries NOT covered by a fresh checkpoint (every=2 checkpoints at 1, 3)
		t.Run(fmt.Sprintf("boundary%d", at), func(t *testing.T) {
			combined, d2 := crashAndRestart(t, t.TempDir(), 2, at)
			if d2.Stats().ReplayedWindows == 0 && at >= 2 {
				// Boundary 0 finishes no window yet; from 2 on, the WAL
				// holds at least one finish past the last checkpoint.
				t.Fatal("no windows re-emitted from WAL replay")
			}
			if !reflect.DeepEqual(baseline.Results(), combined) {
				t.Fatalf("crash at %d (ckpt every 2) not exactly recovered:\nuncrashed: %+v\nstitched:  %+v",
					at, baseline.Results(), combined)
			}
		})
	}
}

// TestFailoverStandbyPromotes: with a hot standby, a primary death
// mid-collection does NOT halt the deployment — the standby waits out the
// liveness lease, promotes from the checkpoint it tailed at the previous
// boundary, and the re-sent trigger plus the ordinary NACK/retransmit loop
// recover the one in-flight sub-window from the still-unreset switch
// region. Results stay byte-identical to a run with no failure.
func TestFailoverStandbyPromotes(t *testing.T) {
	baseline := runChaos(t, nil)

	cfg := durableConfig(t.TempDir(), 1, &faults.CrashSchedule{Fixed: []uint64{2}})
	cfg.Standby = true
	cfg.Shards = 4
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(chaosTrace(), 500*ms)
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	if _, crashed := d.Crashed(); crashed {
		t.Fatal("deployment halted despite the hot standby")
	}
	st := d.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d want 1", st.Failovers)
	}
	if st.Retransmitted == 0 {
		t.Fatal("takeover gap was not NACK-recovered")
	}
	if st.IncompleteSubWindows != 0 {
		t.Fatalf("failover left %d incomplete sub-windows", st.IncompleteSubWindows)
	}

	// The gap is exactly the in-flight sub-window: everything the dead
	// primary had received for sub-window 2 died with it, so the promoted
	// standby re-queries precisely that sub-window's flows — no more
	// (neighbours were checkpoint-covered), no fewer (nothing is lost).
	gap := map[packet.FlowKey]bool{}
	for _, p := range chaosTrace() {
		if p.Time >= 200*ms && p.Time < 300*ms {
			gap[p.Key] = true
		}
	}
	if st.Retransmitted != len(gap) {
		t.Fatalf("retransmitted %d AFRs, want exactly the takeover sub-window's %d flows",
			st.Retransmitted, len(gap))
	}

	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatalf("failover changed results:\nclean:    %+v\nfailover: %+v",
			baseline.Results(), d.Results())
	}
}

// TestCrashWithoutDurabilityHalts: a scheduled crash on a deployment with
// no checkpoint directory simply halts it — traffic after the crash is
// ignored, and the windows emitted before the crash remain available.
func TestCrashWithoutDurabilityHalts(t *testing.T) {
	d := runChaos(t, func(c *Config) {
		c.Crash = &faults.CrashSchedule{Fixed: []uint64{2}}
	})
	if sw, ok := d.Crashed(); !ok || sw != 2 {
		t.Fatalf("crash did not halt the deployment: %v %v", sw, ok)
	}
	for _, w := range d.Results() {
		if w.End > 2 {
			t.Fatalf("window [%d,%d] emitted after the crash boundary", w.Start, w.End)
		}
	}
	st := d.Stats()
	if st.SubWindows > 3 {
		t.Fatalf("collected %d sub-windows past the crash", st.SubWindows)
	}
}
