package omniwindow

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/controller"
	"omniwindow/internal/durable"
	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// Partition chaos: the hot-standby pair under network failures that do
// NOT kill the primary — symmetric cuts, asymmetric renewal-only or
// checkpoint-only cuts, gray renewal slowness, and standby clock drift.
// The properties proven here are the partition failure doctrine:
//
//   - At most one term holder ever finalizes a window: a promotion
//     advances the fencing term by CAS before the standby touches
//     anything, the deposed primary's durable writes are rejected
//     (ErrFenced), and the boundaries it already emitted are suppressed
//     on the promoted controller — every (Start, End) span appears
//     exactly once in Results across the whole run.
//   - Zero post-fence WAL frames are accepted: replaying the log after
//     the run shows frame terms non-decreasing in LSN order, ending at
//     the final holder's term.
//   - The merged window stream is byte-identical to the fault-free run,
//     or explicitly Incomplete — spurious promotions (gray, drift,
//     renewal-only cuts) cost nothing because the standby's checkpoint
//     was fresh; real outages surface as Missing-charged spans, never as
//     silently different values.

// partitionConfig is durableConfig plus the hot-standby pair and a
// partition schedule. The lease TTL is pinned between one and two
// sub-window lengths: long enough that the gap between construction-time
// arming and the first boundary renewal (~151 ms into the run) never
// lapses it on a healthy network, short enough that a single lost
// renewal is detected at the following boundary.
func partitionConfig(dir string, ps *faults.PartitionSchedule) Config {
	cfg := durableConfig(dir, 1, nil)
	cfg.Standby = true
	cfg.Shards = 4
	cfg.LeaseTTL = 170 * time.Millisecond
	cfg.PartitionFaults = ps
	return cfg
}

// partitionTrace is chaosTrace generalized to n 100 ms sub-windows, for
// scenarios (re-failover after re-admission) that need a longer run.
func partitionTrace(n int64) []packet.Packet {
	var pkts []packet.Packet
	for swi := int64(0); swi < n; swi++ {
		at := swi*100*ms + 50*ms
		for f := 1; f <= 40; f++ {
			if (int64(f)+swi)%3 == 0 {
				continue
			}
			cnt := 3 + (f+int(swi)*7)%9
			for i := 0; i < cnt; i++ {
				pkts = append(pkts, packet.Packet{
					Key:  fk(f),
					Size: 100,
					Seq:  uint32(i),
					Time: at + int64(i)*ms,
				})
			}
		}
	}
	return pkts
}

// runPartition builds and runs one hot-standby deployment over n
// sub-windows of the partition trace.
func runPartition(t *testing.T, cfg Config, n int64) *Deployment {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(partitionTrace(n), n*100*ms)
	return d
}

// partitionBaseline is the fault-free (and durability-free) run over the
// same n-sub-window trace.
func partitionBaseline(t *testing.T, n int64) *Deployment {
	t.Helper()
	cfg := freqConfig(window.SlidingPlan(3, 1), 25, false)
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryMaxBackoff = 2 * time.Millisecond
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(partitionTrace(n), n*100*ms)
	return d
}

// assertSingleFinalizer fails if any (Start, End) span appears more than
// once — the duplicate a zombie primary and a promoted standby would
// both emit if fencing or suppression were broken.
func assertSingleFinalizer(t *testing.T, got []controller.WindowResult) {
	t.Helper()
	seen := make(map[[2]uint64]bool, len(got))
	for _, w := range got {
		k := [2]uint64{w.Start, w.End}
		if seen[k] {
			t.Fatalf("window [%d,%d] was finalized twice — two term holders emitted it", w.Start, w.End)
		}
		seen[k] = true
	}
}

func TestPartitionConfigValidation(t *testing.T) {
	cfg := durableConfig(t.TempDir(), 1, nil)
	cfg.PartitionFaults = &faults.PartitionSchedule{}
	if _, err := New(cfg); err == nil {
		t.Fatal("PartitionFaults without Standby must be rejected")
	}
	cfg = durableConfig(t.TempDir(), 1, nil)
	cfg.ReadmitAfter = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("ReadmitAfter without PartitionFaults must be rejected")
	}
}

// A zero-value schedule is a healthy network: no promotion, no fenced
// writes, no partition events — and the boundary-anchored lease probe
// must not misread the trailing-flush time jump as an outage.
func TestPartitionChaosHealthySchedule(t *testing.T) {
	baseline := partitionBaseline(t, 5)
	d := runPartition(t, partitionConfig(t.TempDir(), &faults.PartitionSchedule{Seed: 1}), 5)
	st := d.Stats()
	if st.Failovers != 0 || st.Demotions != 0 || st.FencedWrites != 0 || st.PartitionEvents != 0 {
		t.Fatalf("healthy schedule injected failures: %+v", st)
	}
	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatal("healthy partition schedule changed the window stream")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionChaosSymmetricOutage: a sustained full cut across
// boundaries 1–2 lapses the lease and promotes the standby at boundary
// 2 behind a fresh term. The boundary hidden by the outage (1) is
// charged Missing — its windows read Incomplete — while the in-flight
// boundary is NACK-recovered and everything else stays byte-identical.
// After the partition heals, the demoted primary is re-admitted as the
// new standby.
func TestPartitionChaosSymmetricOutage(t *testing.T) {
	baseline := partitionBaseline(t, 5)
	ps := &faults.PartitionSchedule{Windows: []faults.PartitionWindow{{Start: 1, Len: 2}}}
	d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
	st := d.Stats()
	if st.Failovers != 1 || st.Demotions != 1 {
		t.Fatalf("failovers=%d demotions=%d, want 1/1", st.Failovers, st.Demotions)
	}
	if st.FencedWrites < 2 {
		t.Fatalf("fenced writes = %d, want >= 2 (the zombie's finish + checkpoint)", st.FencedWrites)
	}
	if st.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1 (partition healed at boundary 3)", st.Readmissions)
	}
	if d.Term() != 1 {
		t.Fatalf("term = %d, want 1 after one promotion", d.Term())
	}
	assertSingleFinalizer(t, d.Results())
	incomplete := assertIdenticalOrIncomplete(t, baseline.Results(), d.Results())
	if incomplete == 0 {
		t.Fatal("the outage hid boundary 1 — some window must read Incomplete")
	}
	// Windows that do not span the hidden boundary stay byte-identical.
	for _, w := range d.Results() {
		if w.Start > 1 && w.Incomplete {
			t.Fatalf("window [%d,%d] does not span the outage but reads Incomplete", w.Start, w.End)
		}
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionChaosAsymmetric: the two one-channel cuts. Losing only
// renewals is the classic zombie-primary case — the standby promotes
// against a fully fresh checkpoint, so the spurious takeover is free.
// Losing only checkpoints starves the standby but never promotes it.
func TestPartitionChaosAsymmetric(t *testing.T) {
	baseline := partitionBaseline(t, 5)

	t.Run("renew-only", func(t *testing.T) {
		ps := &faults.PartitionSchedule{RenewOnly: 1}
		d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
		st := d.Stats()
		if st.Failovers != 1 || st.Demotions != 1 {
			t.Fatalf("failovers=%d demotions=%d, want 1/1", st.Failovers, st.Demotions)
		}
		if st.FencedWrites < 2 {
			t.Fatalf("fenced writes = %d, want >= 2", st.FencedWrites)
		}
		assertSingleFinalizer(t, d.Results())
		// The standby's checkpoint was fresh (checkpoints flowed), so the
		// spurious promotion costs nothing at all.
		if !reflect.DeepEqual(baseline.Results(), d.Results()) {
			t.Fatal("renewal-only cut changed the window stream")
		}
		if err := d.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ckpt-only", func(t *testing.T) {
		ps := &faults.PartitionSchedule{CkptOnly: 1}
		d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
		st := d.Stats()
		if st.Failovers != 0 || st.Demotions != 0 {
			t.Fatalf("checkpoint-only cut must never promote: %+v", st)
		}
		if st.PartitionEvents == 0 {
			t.Fatal("checkpoint cuts were not counted as partition events")
		}
		if !reflect.DeepEqual(baseline.Results(), d.Results()) {
			t.Fatal("a stale standby changed the live window stream")
		}
		if err := d.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPartitionChaosGray: renewals are issued but crawl. A delay beyond
// the lease TTL is indistinguishable from loss — the standby promotes,
// spuriously but safely. A sub-TTL delay lands each renewal before the
// next probe and never promotes.
func TestPartitionChaosGray(t *testing.T) {
	baseline := partitionBaseline(t, 5)

	t.Run("beyond-ttl", func(t *testing.T) {
		ps := &faults.PartitionSchedule{Gray: 1, DelayNs: int64(250 * time.Millisecond)}
		d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
		st := d.Stats()
		if st.Failovers != 1 || st.Demotions != 1 {
			t.Fatalf("gray beyond TTL must promote: failovers=%d demotions=%d", st.Failovers, st.Demotions)
		}
		assertSingleFinalizer(t, d.Results())
		if !reflect.DeepEqual(baseline.Results(), d.Results()) {
			t.Fatal("gray-failure promotion changed the window stream")
		}
		if err := d.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("within-ttl", func(t *testing.T) {
		ps := &faults.PartitionSchedule{Gray: 1, DelayNs: int64(50 * time.Millisecond)}
		d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
		st := d.Stats()
		if st.Failovers != 0 {
			t.Fatalf("sub-TTL gray slowness must not promote, got %d failovers", st.Failovers)
		}
		if st.PartitionEvents == 0 {
			t.Fatal("gray boundaries were not counted as partition events")
		}
		if !reflect.DeepEqual(baseline.Results(), d.Results()) {
			t.Fatal("sub-TTL gray slowness changed the window stream")
		}
		if err := d.CloseDurability(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPartitionChaosClockDrift: a standby clock running far ahead reads
// the lease as lapsed at the very first boundary and takes over from a
// perfectly healthy primary. Fencing makes the mistake free: the
// takeover is exact, the stream byte-identical.
func TestPartitionChaosClockDrift(t *testing.T) {
	baseline := partitionBaseline(t, 5)
	ps := &faults.PartitionSchedule{DriftNs: int64(300 * time.Millisecond)}
	cfg := partitionConfig(t.TempDir(), ps)
	// A constantly fast clock would re-steal leadership after every
	// re-admission; disable re-admission to isolate the one takeover.
	cfg.ReadmitAfter = -1
	d := runPartition(t, cfg, 5)
	st := d.Stats()
	if st.Failovers != 1 || st.Demotions != 1 {
		t.Fatalf("fast standby clock must promote spuriously: failovers=%d demotions=%d", st.Failovers, st.Demotions)
	}
	if st.PartitionEvents != 0 {
		t.Fatal("constant drift alone is not a partition event")
	}
	assertSingleFinalizer(t, d.Results())
	if !reflect.DeepEqual(baseline.Results(), d.Results()) {
		t.Fatal("drift-triggered promotion changed the window stream")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionChaosFlapping: random symmetric cuts with no structure.
// Whatever the schedule does — promotions, re-admissions, repeated
// outages — three invariants survive every seed: each span is finalized
// exactly once, every window is byte-identical or Incomplete, and the
// whole run is deterministic.
func TestPartitionChaosFlapping(t *testing.T) {
	baseline := partitionBaseline(t, 5)
	seeds := []uint64{1, 2, 3}
	// Nightly sweep: OMNIWINDOW_EXTRA_SEEDS widens the fixed table.
	seeds = append(seeds, faults.ExtraSeeds(6)...)
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ps := &faults.PartitionSchedule{Seed: seed, Symmetric: 0.6}
			d := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
			assertSingleFinalizer(t, d.Results())
			assertIdenticalOrIncomplete(t, baseline.Results(), d.Results())
			if err := d.CloseDurability(); err != nil {
				t.Fatal(err)
			}

			d2 := runPartition(t, partitionConfig(t.TempDir(), ps), 5)
			if !reflect.DeepEqual(d.Results(), d2.Results()) {
				t.Fatal("same schedule, different window stream — partition handling is nondeterministic")
			}
			if d.Stats() != d2.Stats() {
				t.Fatalf("same schedule, different stats:\n%+v\n%+v", d.Stats(), d2.Stats())
			}
			if err := d2.CloseDurability(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionRefailoverAfterReadmission: two separated outages on a
// longer run. The first promotes the standby and demotes the primary;
// re-admission returns the demoted node as the new standby; the second
// outage promotes IT — the roles swap back. Each promotion advances the
// term, and the suppression guard fires on the second takeover (the
// deposed node had emitted complete windows the new holder's checkpoint
// tailing missed).
func TestPartitionRefailoverAfterReadmission(t *testing.T) {
	const n = 9
	baseline := partitionBaseline(t, n)
	ps := &faults.PartitionSchedule{Windows: []faults.PartitionWindow{{Start: 1, Len: 2}, {Start: 5, Len: 2}}}
	d := runPartition(t, partitionConfig(t.TempDir(), ps), n)
	st := d.Stats()
	if st.Failovers != 2 || st.Demotions != 2 {
		t.Fatalf("failovers=%d demotions=%d, want 2/2", st.Failovers, st.Demotions)
	}
	if st.Readmissions < 2 {
		t.Fatalf("readmissions = %d, want 2 (one after each healed outage)", st.Readmissions)
	}
	if d.Term() != 2 {
		t.Fatalf("term = %d, want 2 after two promotions", d.Term())
	}
	if st.SuppressedWindows == 0 {
		t.Fatal("second takeover must suppress the deposed holder's already-emitted windows")
	}
	if st.FencedWrites < 4 {
		t.Fatalf("fenced writes = %d, want >= 4 across two demotions", st.FencedWrites)
	}
	assertSingleFinalizer(t, d.Results())
	if inc := assertIdenticalOrIncomplete(t, baseline.Results(), d.Results()); inc == 0 {
		t.Fatal("two real outages must leave Incomplete spans")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionZombieWALFenced: the durable log proves the fencing
// history. Reopening the store after a promoting run and replaying every
// frame shows terms non-decreasing in LSN order, ending at the promoted
// holder's term — no frame written under a stale term was ever accepted
// after the fence.
func TestPartitionZombieWALFenced(t *testing.T) {
	dir := t.TempDir()
	ps := &faults.PartitionSchedule{Windows: []faults.PartitionWindow{{Start: 1, Len: 2}}}
	d := runPartition(t, partitionConfig(dir, ps), 5)
	finalTerm := d.Term()
	if finalTerm != 1 {
		t.Fatalf("term = %d, want 1", finalTerm)
	}
	if d.Stats().FencedWrites < 2 {
		t.Fatal("the zombie's post-fence writes were not rejected")
	}
	if err := d.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	s, err := durable.Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Term(); got != finalTerm {
		t.Fatalf("persisted term = %d, want %d", got, finalTerm)
	}
	snap, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil && snap.Term > finalTerm {
		t.Fatalf("checkpoint term %d exceeds the final holder's %d", snap.Term, finalTerm)
	}
	last := uint64(0)
	for i, r := range recs {
		if r.Term < last {
			t.Fatalf("frame %d: term %d after term %d — a stale-term frame was accepted post-fence", i, r.Term, last)
		}
		if r.Term > finalTerm {
			t.Fatalf("frame %d carries term %d beyond the final holder's %d", i, r.Term, finalTerm)
		}
		last = r.Term
	}
}
