package omniwindow

import (
	"fmt"

	"omniwindow/internal/controller"
	"omniwindow/internal/obs"
)

// This file wires the deployment into internal/obs: counters and latency
// histograms over the C&R pipeline, window-lifecycle trace events, and
// the optional HTTP debug endpoint (Config.DebugAddr). Instrumentation is
// strictly opt-in — without Config.Obs or Config.DebugAddr every handle
// below stays nil and each call site is an allocation-free no-op, which
// is what keeps the hot paths within the benchmark-regression budget.

// deployObs holds the deployment-level instrumentation handles. These
// cover what the controller and durable store cannot see themselves: the
// switch-side pipeline (packets, spills, spikes, stale stamps, reboots)
// and the C&R driver (virtual collect time, retransmissions).
type deployObs struct {
	packets    *obs.Counter
	afrs       *obs.Counter
	spills     *obs.Counter
	spikes     *obs.Counter
	staleEpoch *obs.Counter
	reboots    *obs.Counter
	retrans    *obs.Counter
	collect    *obs.Histogram // modeled C&R virtual time per sub-window
	ring       *obs.Ring
	// Degraded-durability mode (deployment-level: the store cannot see
	// the skip decisions it never receives).
	durDegraded *obs.Gauge   // 1 while durable writes are suspended
	durGaps     *obs.Counter // durable writes skipped while degraded
}

// setupObs builds the registry (or adopts the caller-supplied one),
// instruments every layer, and starts the debug endpoint when DebugAddr
// is set. A no-op when neither Obs nor DebugAddr is configured.
func (d *Deployment) setupObs() error {
	cfg := &d.cfg
	if cfg.Obs == nil && cfg.DebugAddr == "" {
		return nil
	}
	d.reg = cfg.Obs
	if d.reg == nil {
		d.reg = obs.NewRegistry()
	}
	labels := cfg.ObsLabels

	n := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	d.obs = deployObs{
		packets:    d.reg.Counter(n("omniwindow_switch_packets_total"), "trace packets processed through the switch pipeline"),
		afrs:       d.reg.Counter(n("omniwindow_cr_afrs_total"), "AFR records collected across C&R rounds"),
		spills:     d.reg.Counter(n("omniwindow_switch_spills_total"), "flow keys spilled to the controller (flowkey array full)"),
		spikes:     d.reg.Counter(n("omniwindow_switch_spikes_total"), "latency-spike packets forwarded to the controller"),
		staleEpoch: d.reg.Counter(n("omniwindow_switch_stale_epoch_total"), "packets rejected for carrying a stale-epoch stamp"),
		reboots:    d.reg.Counter(n("omniwindow_switch_reboots_total"), "power-cycles injected into this switch"),
		retrans:    d.reg.Counter(n("omniwindow_cr_retransmitted_total"), "AFR records re-sent by the NACK/retransmit protocol"),
		collect:    d.reg.Histogram(n("omniwindow_cr_collect_seconds"), "modeled C&R virtual time per sub-window (enumeration + recovery + reset)", nil),
		ring:       d.reg.Ring(0),
	}

	// RDMA transport: the QP state gauge and the fault/recovery counters
	// are scrape-time functions over the transport's own (mutex-guarded)
	// stats, so the hot send path carries no extra instrumentation.
	if d.rdma != nil {
		tr := d.rdma
		d.reg.GaugeFunc(n("omniwindow_rdma_qp_state"), "RDMA queue pair state (0=RTS, 1=Error, 2=Recovering)",
			func() int64 { return int64(tr.State()) })
		d.reg.CounterFunc(n("omniwindow_rdma_verb_errors_total"), "RDMA verb completion errors (injected CQ errors)",
			func() int64 { return int64(tr.Stats().VerbErrors) })
		d.reg.CounterFunc(n("omniwindow_rdma_verb_retries_total"), "RNR-style verb retries after transient completion errors",
			func() int64 { return int64(tr.Stats().VerbRetries) })
		d.reg.CounterFunc(n("omniwindow_rdma_fallback_afrs_total"), "records rerouted from the RDMA transport to the packet C&R path",
			func() int64 { return int64(tr.Stats().Fallbacks) })
		d.reg.CounterFunc(n("omniwindow_rdma_replayed_total"), "verbs re-applied by the PSN-gap NACK/replay loop",
			func() int64 { return int64(tr.Stats().Replayed) })
		d.reg.CounterFunc(n("omniwindow_rdma_lost_afrs_total"), "records the RDMA transport dropped irrecoverably (charged to shed)",
			func() int64 { return int64(tr.Stats().Lost) })
		d.reg.CounterFunc(n("omniwindow_rdma_qp_recoveries_total"), "successful QP Error→Recovering boundary recoveries",
			func() int64 { return int64(tr.Stats().QPRecoveries) })
	}

	// Per-app controllers: single-app deployments register unlabeled (or
	// with the caller's labels); co-deployed apps add an app label so the
	// families stay distinguishable.
	for i, ctrl := range d.ctrls {
		l := labels
		if len(d.ctrls) > 1 {
			app := fmt.Sprintf("app=%q", d.apps[i].Name)
			if l == "" {
				l = app
			} else {
				l = l + "," + app
			}
		}
		ctrl.SetObs(controller.Instrument(d.reg, l))
	}
	if d.store != nil {
		d.store.Instrument(d.reg, labels)
		d.obs.durDegraded = d.reg.Gauge(n("omniwindow_durable_degraded"), "1 while durable writes are suspended after persistent disk faults (0 = durable)")
		d.obs.durGaps = d.reg.Counter(n("omniwindow_durable_gaps_total"), "durable writes skipped or failed while in degraded-durability mode")
	}
	// The hot standby shares the primary's handles: it only processes
	// traffic after promotion, so the combined counts read as one
	// controller's — which, to the deployment, they are.
	if d.standby != nil {
		d.standby.SetObs(controller.Instrument(d.reg, labels))
	}
	// Failover topology: who holds the fencing term and what the serving
	// controller's provenance is. Registered only for hot-standby
	// deployments — owtop hides its failover panel when these families
	// are absent.
	if cfg.Standby {
		d.reg.GaugeFunc(n("omniwindow_failover_term"), "fencing term held by the serving controller",
			func() int64 { return int64(d.term) })
		d.reg.GaugeFunc(n("omniwindow_failover_role"), "serving controller's provenance (0=original primary, 1=promoted standby, 2=promoted with the demoted former primary still parked)",
			func() int64 {
				switch {
				case d.demotedCtrl != nil:
					return 2
				case d.failedOver:
					return 1
				}
				return 0
			})
		d.reg.CounterFunc(n("omniwindow_failover_demotions_total"), "zombie-primary self-demotions after fenced writes",
			func() int64 { return int64(d.stats.Demotions) })
		d.reg.CounterFunc(n("omniwindow_failover_readmissions_total"), "demoted former primaries re-admitted as the new standby",
			func() int64 { return int64(d.stats.Readmissions) })
		d.reg.CounterFunc(n("omniwindow_failover_partition_events_total"), "sub-window boundaries touched by an active partition fault",
			func() int64 { return int64(d.stats.PartitionEvents) })
		d.reg.CounterFunc(n("omniwindow_failover_suppressed_windows_total"), "duplicate window emissions discarded by the promoted standby",
			func() int64 { return int64(d.stats.SuppressedWindows) })
	}

	if cfg.DebugAddr != "" {
		srv, err := obs.Serve(cfg.DebugAddr, d.reg)
		if err != nil {
			return fmt.Errorf("omniwindow: debug endpoint: %w", err)
		}
		d.debugSrv = srv
	}
	return nil
}

// Obs exposes the deployment's observability registry (nil when
// instrumentation is off). Callers can register their own metrics on it
// or render it with WritePrometheus.
func (d *Deployment) Obs() *obs.Registry { return d.reg }

// DebugURL returns the running debug endpoint's base URL ("" when
// DebugAddr was not configured).
func (d *Deployment) DebugURL() string { return d.debugSrv.URL() }

// CloseDebug stops the debug endpoint (a no-op when DebugAddr was not
// configured). Safe to call more than once.
func (d *Deployment) CloseDebug() error { return d.debugSrv.Close() }
