package omniwindow

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// chaosTrace is a deterministic multi-flow trace spanning five 100 ms
// sub-windows: every flow appears in several sub-windows with a
// flow-dependent packet count, so merged window values exercise both
// detection outcomes and the per-key comparison has real structure.
func chaosTrace() []packet.Packet {
	var pkts []packet.Packet
	for swi := int64(0); swi < 5; swi++ {
		at := swi*100*ms + 50*ms
		for f := 1; f <= 40; f++ {
			if (int64(f)+swi)%3 == 0 {
				continue // this flow skips this sub-window
			}
			n := 3 + (f+int(swi)*7)%9
			for i := 0; i < n; i++ {
				pkts = append(pkts, packet.Packet{
					Key:  fk(f),
					Size: 100,
					Seq:  uint32(i),
					Time: at + int64(i)*ms,
				})
			}
		}
	}
	return pkts
}

// runChaos runs the standard chaos deployment over chaosTrace and returns
// the deployment for results/stats inspection.
func runChaos(t *testing.T, mutate func(*Config)) *Deployment {
	t.Helper()
	cfg := freqConfig(window.SlidingPlan(3, 1), 25, false)
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryMaxBackoff = 2 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(chaosTrace(), 500*ms)
	return d
}

// TestChaosRecoveryByteIdentical is the tentpole assertion: under seeded
// drop/duplicate schedules on the AFR path, the NACK/retransmit protocol
// recovers every loss and the window results are byte-identical to a
// lossless run — reliability is exact repair, not approximation.
func TestChaosRecoveryByteIdentical(t *testing.T) {
	baseline := runChaos(t, nil)
	if len(baseline.Results()) == 0 {
		t.Fatal("baseline produced no windows")
	}

	cases := []struct {
		name string
		cfg  faults.Config
	}{
		{"drop5/seed1", faults.Config{Seed: 1, Drop: 0.05}},
		{"drop5/seed2", faults.Config{Seed: 2, Drop: 0.05}},
		{"drop5/seed3", faults.Config{Seed: 3, Drop: 0.05}},
		{"drop20+dup/seed1", faults.Config{Seed: 1, Drop: 0.20, Duplicate: 0.20, MaxDuplicates: 2}},
		{"dup-only/seed2", faults.Config{Seed: 2, Duplicate: 0.5, MaxDuplicates: 3}},
	}
	// Nightly sweep: OMNIWINDOW_EXTRA_SEEDS widens the fixed table with
	// derived seeds on the mixed drop+duplicate schedule.
	for _, s := range faults.ExtraSeeds(1) {
		cases = append(cases, struct {
			name string
			cfg  faults.Config
		}{fmt.Sprintf("drop10+dup/seed%d", s),
			faults.Config{Seed: int64(s), Drop: 0.10, Duplicate: 0.10, MaxDuplicates: 2}})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faults.New(tc.cfg)
			d := runChaos(t, func(c *Config) { c.AFRFaults = inj })

			fs := inj.Stats()
			if tc.cfg.Drop > 0 && fs.Dropped == 0 {
				t.Fatalf("schedule injected no drops: %+v", fs)
			}
			if tc.cfg.Duplicate > 0 && fs.Duplicated == 0 {
				t.Fatalf("schedule injected no duplicates: %+v", fs)
			}
			if tc.cfg.Drop > 0 && d.Stats().RecoveryRounds == 0 {
				t.Fatal("drops recovered without any NACK round")
			}
			if d.Stats().IncompleteSubWindows != 0 {
				t.Fatalf("recovery left %d incomplete sub-windows", d.Stats().IncompleteSubWindows)
			}
			if !reflect.DeepEqual(baseline.Results(), d.Results()) {
				t.Fatalf("chaos results differ from lossless run:\nlossless: %+v\nchaos:    %+v",
					baseline.Results(), d.Results())
			}
		})
	}
}

// TestChaosRetriesDisabledMarksIncomplete: the same faulted pipeline with
// recovery disabled must not silently return short counts — the windows
// spanning lossy sub-windows finalize explicitly marked Incomplete.
func TestChaosRetriesDisabledMarksIncomplete(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, Drop: 0.20})
	d := runChaos(t, func(c *Config) {
		c.AFRFaults = inj
		c.RetryLimit = -1
	})
	if inj.Stats().Dropped == 0 {
		t.Fatal("schedule injected no drops")
	}
	if d.Stats().RecoveryRounds != 0 || d.Stats().Retransmitted != 0 {
		t.Fatalf("disabled retries still recovered: %+v", d.Stats())
	}
	if d.Stats().IncompleteSubWindows == 0 {
		t.Fatal("lossy sub-windows not counted incomplete")
	}
	incomplete := 0
	for _, w := range d.Results() {
		if w.Incomplete {
			incomplete++
			if w.MissingAFRs == 0 {
				t.Fatalf("window [%d,%d] Incomplete with MissingAFRs = 0", w.Start, w.End)
			}
		}
	}
	if incomplete == 0 {
		t.Fatal("no window marked Incomplete despite unrecovered losses")
	}
}

// TestChaosRecoveryExhaustion: drops so frequent that the bounded retries
// cannot win (every retransmission is also dropped) must converge to an
// Incomplete marking rather than looping forever.
func TestChaosRecoveryExhaustion(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 7, Drop: 1})
	d := runChaos(t, func(c *Config) {
		c.AFRFaults = inj
		c.RetryLimit = 2
	})
	st := d.Stats()
	if st.RecoveryRounds == 0 || st.Retransmitted == 0 {
		t.Fatalf("exhaustion path never retried: %+v", st)
	}
	if st.IncompleteSubWindows == 0 {
		t.Fatal("total loss not marked incomplete")
	}
	for _, w := range d.Results() {
		if !w.Incomplete {
			t.Fatalf("window [%d,%d] not Incomplete under total loss", w.Start, w.End)
		}
	}
}

// TestChaosDeterministicSchedules: the same seed must produce the same
// run — fault schedules are reproducible test cases, not flakes.
func TestChaosDeterministicSchedules(t *testing.T) {
	run := func() (*Deployment, faults.Stats) {
		inj := faults.New(faults.Config{Seed: 5, Drop: 0.10, Duplicate: 0.10})
		d := runChaos(t, func(c *Config) { c.AFRFaults = inj })
		return d, inj.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, different fault stats:\n%+v\n%+v", s1, s2)
	}
	if d1.Stats() != d2.Stats() {
		t.Fatalf("same seed, different run stats:\n%+v\n%+v", d1.Stats(), d2.Stats())
	}
	if !reflect.DeepEqual(d1.Results(), d2.Results()) {
		t.Fatal("same seed, different window results")
	}
}
