package trace

import (
	"math/rand"

	"omniwindow/internal/packet"
)

// Attacker/victim addresses live in 192.168.0.0/16 so they never collide
// with the 10.0.0.0/8 background pool.
func actorIP(i int) uint32 { return 0xC0A80000 | uint32(i&0xFFFF) }

// ActorIP exposes the anomaly address mapping so experiments can construct
// ground-truth sets for the hosts they injected.
func ActorIP(i int) uint32 { return actorIP(i) }

// TCPFanout injects a host that opens Conns new TCP connections to distinct
// destinations within Spread ns around At (query Q1: hosts opening too many
// new TCP connections).
type TCPFanout struct {
	Host   int   // actor index of the offending source host
	Conns  int   // number of distinct connections opened
	At     int64 // center time
	Spread int64 // packets fall in [At-Spread/2, At+Spread/2)
}

// Emit implements Anomaly.
func (a TCPFanout) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for c := 0; c < a.Conns; c++ {
		key := packet.FlowKey{
			SrcIP:   actorIP(a.Host),
			DstIP:   hostIP(rng.Intn(1 << 20)),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: uint16(1 + rng.Intn(65535)),
			Proto:   packet.ProtoTCP,
		}
		t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
		// SYN, SYN-ACK-ish follow-up, a data packet: a "new connection".
		out = append(out,
			packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagSYN, Time: t},
			packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagACK, Seq: 1, Time: t + 1e5},
			packet.Packet{Key: key, Size: 512, TCPFlags: packet.FlagACK | packet.FlagPSH, Seq: 2, Time: t + 2e5},
		)
	}
	return out
}

// SSHBruteForce injects repeated short SSH connections against a victim
// (query Q2). Each attempt is a distinct 5-tuple to port 22 with a handful
// of small packets.
type SSHBruteForce struct {
	Victim   int
	Sources  int // number of attacking hosts (distributed brute force)
	Attempts int // attempts per source
	At       int64
	Spread   int64
}

// Emit implements Anomaly.
func (a SSHBruteForce) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for s := 0; s < a.Sources; s++ {
		src := actorIP(1000 + a.Victim*64 + s)
		for i := 0; i < a.Attempts; i++ {
			key := packet.FlowKey{
				SrcIP:   src,
				DstIP:   actorIP(a.Victim),
				SrcPort: uint16(1024 + rng.Intn(64000)),
				DstPort: 22,
				Proto:   packet.ProtoTCP,
			}
			t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
			out = append(out,
				packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagSYN, Time: t},
				packet.Packet{Key: key, Size: 128, TCPFlags: packet.FlagACK | packet.FlagPSH, Seq: 1, Time: t + 3e5},
				packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagFIN | packet.FlagACK, Seq: 2, Time: t + 6e5},
			)
		}
	}
	return out
}

// PortScan injects one source probing many distinct ports of a victim
// (query Q3).
type PortScan struct {
	Scanner int
	Victim  int
	Ports   int
	At      int64
	Spread  int64
}

// Emit implements Anomaly.
func (a PortScan) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for p := 0; p < a.Ports; p++ {
		key := packet.FlowKey{
			SrcIP:   actorIP(2000 + a.Scanner),
			DstIP:   actorIP(a.Victim),
			SrcPort: uint16(40000 + rng.Intn(20000)),
			DstPort: uint16(1 + (p*37)%65535),
			Proto:   packet.ProtoTCP,
		}
		t := clampTime(a.At-a.Spread/2+int64(float64(a.Spread)*float64(p)/float64(a.Ports)), duration)
		out = append(out, packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagSYN, Time: t})
	}
	return out
}

// DDoS injects many distinct sources flooding one victim (query Q4).
type DDoS struct {
	Victim        int
	Sources       int
	PktsPerSource int
	At            int64
	Spread        int64
}

// Emit implements Anomaly.
func (a DDoS) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for s := 0; s < a.Sources; s++ {
		key := packet.FlowKey{
			SrcIP:   hostIP(1<<22 | s), // spoofed pool outside normal hosts
			DstIP:   actorIP(a.Victim),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		}
		for i := 0; i < a.PktsPerSource; i++ {
			t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
			out = append(out, packet.Packet{Key: key, Size: 1200, Seq: uint32(i), Time: t})
		}
	}
	return out
}

// SYNFlood injects a flood of bare SYNs to a victim from spoofed sources
// with no completing handshakes (query Q5).
type SYNFlood struct {
	Victim int
	Syns   int
	At     int64
	Spread int64
}

// Emit implements Anomaly.
func (a SYNFlood) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for i := 0; i < a.Syns; i++ {
		key := packet.FlowKey{
			SrcIP:   hostIP(rng.Intn(1 << 23)),
			DstIP:   actorIP(a.Victim),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: 443,
			Proto:   packet.ProtoTCP,
		}
		t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
		out = append(out, packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagSYN, Time: t})
	}
	return out
}

// CompletedFlows injects a host terminating an unusual number of TCP flows
// (FIN packets), exercising query Q6.
type CompletedFlows struct {
	Victim int
	Flows  int
	At     int64
	Spread int64
}

// Emit implements Anomaly.
func (a CompletedFlows) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for i := 0; i < a.Flows; i++ {
		key := packet.FlowKey{
			SrcIP:   hostIP(rng.Intn(1 << 22)),
			DstIP:   actorIP(a.Victim),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: 80,
			Proto:   packet.ProtoTCP,
		}
		t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
		out = append(out,
			packet.Packet{Key: key, Size: 400, TCPFlags: packet.FlagACK, Time: t},
			packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagFIN | packet.FlagACK, Seq: 1, Time: t + 2e5},
		)
	}
	return out
}

// Slowloris injects many long-lived, low-volume connections holding a web
// victim's sockets open (query Q7): high connection count, tiny byte count
// per connection.
type Slowloris struct {
	Victim int
	Conns  int
	At     int64
	Spread int64
	// Life is how long each connection trickles keep-alive bytes.
	Life int64
}

// Emit implements Anomaly.
func (a Slowloris) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	life := a.Life
	if life == 0 {
		life = a.Spread
	}
	for c := 0; c < a.Conns; c++ {
		key := packet.FlowKey{
			SrcIP:   actorIP(3000 + c/256),
			DstIP:   actorIP(a.Victim),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: 80,
			Proto:   packet.ProtoTCP,
		}
		start := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
		out = append(out, packet.Packet{Key: key, Size: 64, TCPFlags: packet.FlagSYN, Time: start})
		// Trickle of tiny header fragments keeping the connection open.
		for j := 1; j <= 4; j++ {
			t := clampTime(start+life*int64(j)/5, duration)
			out = append(out, packet.Packet{Key: key, Size: 70, TCPFlags: packet.FlagACK | packet.FlagPSH, Seq: uint32(j), Time: t})
		}
	}
	return out
}

// SuperSpreader injects one source contacting many distinct destination
// hosts (query Q8).
type SuperSpreader struct {
	Host   int
	Dsts   int
	At     int64
	Spread int64
}

// Emit implements Anomaly.
func (a SuperSpreader) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	var out []packet.Packet
	for d := 0; d < a.Dsts; d++ {
		key := packet.FlowKey{
			SrcIP:   actorIP(4000 + a.Host),
			DstIP:   hostIP((d*2654435761 + 17) & 0x7FFFFF),
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: wellKnownPort(rng),
			Proto:   packet.ProtoUDP,
		}
		t := clampTime(a.At-a.Spread/2+int64(rng.Float64()*float64(a.Spread)), duration)
		out = append(out, packet.Packet{Key: key, Size: 200, Time: t})
	}
	return out
}

// HeavyBurst injects a single heavy flow of Packets packets centered at At
// over Spread ns. Centering At on a tumbling-window boundary reproduces
// the paper's Figure 1: neither adjacent window sees the full burst, while
// a sliding window does.
type HeavyBurst struct {
	Key     packet.FlowKey
	Packets int
	At      int64
	Spread  int64
}

// Emit implements Anomaly.
func (a HeavyBurst) Emit(rng *rand.Rand, duration int64) []packet.Packet {
	out := make([]packet.Packet, 0, a.Packets)
	for i := 0; i < a.Packets; i++ {
		var off int64
		if a.Packets > 1 {
			off = a.Spread * int64(i) / int64(a.Packets-1)
		}
		t := clampTime(a.At-a.Spread/2+off, duration)
		flags := uint8(packet.FlagACK)
		if a.Key.Proto != packet.ProtoTCP {
			flags = 0
		}
		out = append(out, packet.Packet{Key: a.Key, Size: 1200, TCPFlags: flags, Seq: uint32(i), Time: t})
	}
	return out
}

// BurstKey builds a deterministic 5-tuple for the i-th injected heavy flow.
func BurstKey(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   actorIP(5000 + i),
		DstIP:   actorIP(6000 + i),
		SrcPort: uint16(10000 + i),
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}

func clampTime(t, duration int64) int64 {
	if t < 0 {
		return 0
	}
	if t >= duration {
		return duration - 1
	}
	return t
}
