package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"omniwindow/internal/packet"
)

// Binary trace files let experiments snapshot a generated workload and
// replay it across tools and runs: a fixed 16-byte header followed by one
// 32-byte big-endian record per packet.
//
//	header: magic "OWTR" | version u8 | pad[3] | count u64
//	record: time i64 | key[13] | size u32 | flags u8 | seq u32 | pad[2]

const (
	traceMagic   = "OWTR"
	traceVersion = 1
	recordSize   = 8 + packet.KeyBytes + 4 + 1 + 4 + 2
)

// Errors returned by the trace reader.
var (
	ErrBadTraceMagic   = errors.New("trace: bad magic")
	ErrBadTraceVersion = errors.New("trace: unsupported version")
)

// Write streams packets to w in the binary trace format.
func Write(w io.Writer, pkts []packet.Packet) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	copy(hdr[:4], traceMagic)
	hdr[4] = traceVersion
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(pkts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range pkts {
		p := &pkts[i]
		binary.BigEndian.PutUint64(rec[0:], uint64(p.Time))
		kb := p.Key.Bytes()
		copy(rec[8:], kb[:])
		binary.BigEndian.PutUint32(rec[8+packet.KeyBytes:], p.Size)
		rec[12+packet.KeyBytes] = p.TCPFlags
		binary.BigEndian.PutUint32(rec[13+packet.KeyBytes:], p.Seq)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a binary trace from r.
func Read(r io.Reader) ([]packet.Packet, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, ErrBadTraceMagic
	}
	if hdr[4] != traceVersion {
		return nil, ErrBadTraceVersion
	}
	count := binary.BigEndian.Uint64(hdr[8:])
	const sanity = 1 << 30
	if count > sanity {
		return nil, fmt.Errorf("trace: implausible packet count %d", count)
	}
	pkts := make([]packet.Packet, count)
	var rec [recordSize]byte
	var kb [packet.KeyBytes]byte
	for i := range pkts {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		p := &pkts[i]
		p.Time = int64(binary.BigEndian.Uint64(rec[0:]))
		copy(kb[:], rec[8:])
		p.Key = packet.KeyFromBytes(kb)
		p.Size = binary.BigEndian.Uint32(rec[8+packet.KeyBytes:])
		p.TCPFlags = rec[12+packet.KeyBytes]
		p.Seq = binary.BigEndian.Uint32(rec[13+packet.KeyBytes:])
	}
	return pkts, nil
}

// WriteFile saves packets to path.
func WriteFile(path string, pkts []packet.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, pkts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads packets from path.
func ReadFile(path string) ([]packet.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
