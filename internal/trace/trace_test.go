package trace

import (
	"math/rand"
	"sort"
	"testing"

	"omniwindow/internal/packet"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Flows = 2000
	a := New(cfg).Generate()
	b := New(cfg).Generate()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Time != b[i].Time || a[i].Size != b[i].Size ||
			a[i].TCPFlags != b[i].TCPFlags || a[i].Seq != b[i].Seq {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Flows = 3000
	pkts := New(cfg).Generate()
	if len(pkts) < cfg.Flows {
		t.Fatalf("too few packets: %d", len(pkts))
	}
	if !sort.SliceIsSorted(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time }) {
		t.Fatal("trace not sorted by time")
	}
	for i := range pkts {
		if pkts[i].Time < 0 || pkts[i].Time >= cfg.Duration {
			t.Fatalf("packet %d time %d outside [0,%d)", i, pkts[i].Time, cfg.Duration)
		}
		if pkts[i].Size == 0 {
			t.Fatalf("packet %d has zero size", i)
		}
	}
}

func TestDefaultsAppliedToZeroConfig(t *testing.T) {
	g := New(Config{Seed: 1})
	cfg := g.Config()
	if cfg.Duration == 0 || cfg.Flows == 0 || cfg.Hosts == 0 || cfg.MaxFlowPackets == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestHeavyTail(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Flows = 5000
	pkts := New(cfg).Generate()
	counts := CountTruth(pkts, 0, cfg.Duration)
	var max, total uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 10*mean {
		t.Fatalf("distribution not heavy-tailed: max=%d mean=%.1f", max, mean)
	}
}

func TestRateWaveSkewsSecondHalf(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Flows = 8000
	cfg.RateWave = 3
	cfg.BurstFraction = 0.01
	pkts := New(cfg).Generate()
	var first, second int
	for i := range pkts {
		if pkts[i].Time < cfg.Duration/2 {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Fatalf("rate wave had no effect: first=%d second=%d", first, second)
	}
}

func TestTCPFlagsWellFormed(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.Flows = 1500
	pkts := New(cfg).Generate()
	perFlowFirst := map[packet.FlowKey]packet.Packet{}
	for i := range pkts {
		p := pkts[i]
		if p.Key.Proto != packet.ProtoTCP {
			continue
		}
		if cur, ok := perFlowFirst[p.Key]; !ok || p.Seq < cur.Seq {
			perFlowFirst[p.Key] = p
		}
	}
	syn := 0
	for _, p := range perFlowFirst {
		if p.HasFlags(packet.FlagSYN) {
			syn++
		}
	}
	if syn < len(perFlowFirst)*9/10 {
		t.Fatalf("expected SYN on nearly all first TCP packets: %d/%d", syn, len(perFlowFirst))
	}
}

func TestHeavyBurstStraddlesBoundary(t *testing.T) {
	boundary := 500 * Millisecond
	a := HeavyBurst{Key: BurstKey(0), Packets: 200, At: boundary, Spread: 100 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(1)), 2500*Millisecond)
	if len(pkts) != 200 {
		t.Fatalf("packets = %d", len(pkts))
	}
	var before, after int
	for i := range pkts {
		if pkts[i].Time < boundary {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("burst does not straddle boundary: before=%d after=%d", before, after)
	}
	// Roughly half on each side.
	if before < 60 || after < 60 {
		t.Fatalf("burst too lopsided: before=%d after=%d", before, after)
	}
}

func TestPortScanDistinctPorts(t *testing.T) {
	a := PortScan{Scanner: 1, Victim: 2, Ports: 150, At: 100 * Millisecond, Spread: 50 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(2)), 2500*Millisecond)
	ports := map[uint16]bool{}
	for i := range pkts {
		ports[pkts[i].Key.DstPort] = true
		if pkts[i].Key.DstIP != ActorIP(2) {
			t.Fatal("scan packet not aimed at victim")
		}
	}
	if len(ports) < 140 {
		t.Fatalf("too few distinct ports: %d", len(ports))
	}
}

func TestSuperSpreaderDistinctDsts(t *testing.T) {
	a := SuperSpreader{Host: 3, Dsts: 300, At: 100 * Millisecond, Spread: 80 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(3)), 2500*Millisecond)
	dsts := map[uint32]bool{}
	for i := range pkts {
		dsts[pkts[i].Key.DstIP] = true
	}
	if len(dsts) < 290 {
		t.Fatalf("too few distinct destinations: %d", len(dsts))
	}
}

func TestDDoSManySources(t *testing.T) {
	a := DDoS{Victim: 4, Sources: 120, PktsPerSource: 3, At: 100 * Millisecond, Spread: 80 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(4)), 2500*Millisecond)
	srcs := map[uint32]bool{}
	for i := range pkts {
		srcs[pkts[i].Key.SrcIP] = true
		if pkts[i].Key.DstIP != ActorIP(4) {
			t.Fatal("DDoS packet not aimed at victim")
		}
	}
	if len(srcs) != 120 {
		t.Fatalf("sources = %d want 120", len(srcs))
	}
	if len(pkts) != 360 {
		t.Fatalf("packets = %d want 360", len(pkts))
	}
}

func TestSYNFloodOnlySyns(t *testing.T) {
	a := SYNFlood{Victim: 5, Syns: 80, At: 100 * Millisecond, Spread: 30 * Millisecond}
	for _, p := range a.Emit(rand.New(rand.NewSource(5)), 2500*Millisecond) {
		if !p.HasFlags(packet.FlagSYN) || p.HasFlags(packet.FlagACK) {
			t.Fatalf("non-bare-SYN packet in flood: flags=%b", p.TCPFlags)
		}
	}
}

func TestSlowlorisLowVolumeLongLife(t *testing.T) {
	a := Slowloris{Victim: 6, Conns: 50, At: 200 * Millisecond, Spread: 50 * Millisecond, Life: 400 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(6)), 2500*Millisecond)
	bytesPerConn := map[packet.FlowKey]uint64{}
	lastSeen := map[packet.FlowKey]int64{}
	firstSeen := map[packet.FlowKey]int64{}
	for i := range pkts {
		p := pkts[i]
		bytesPerConn[p.Key] += uint64(p.Size)
		if _, ok := firstSeen[p.Key]; !ok || p.Time < firstSeen[p.Key] {
			firstSeen[p.Key] = p.Time
		}
		if p.Time > lastSeen[p.Key] {
			lastSeen[p.Key] = p.Time
		}
	}
	if len(bytesPerConn) != 50 {
		t.Fatalf("connections = %d", len(bytesPerConn))
	}
	for k, b := range bytesPerConn {
		if b > 1000 {
			t.Fatalf("slowloris conn %v sent too many bytes: %d", k, b)
		}
		if lastSeen[k]-firstSeen[k] < 200*Millisecond {
			t.Fatalf("slowloris conn %v too short-lived", k)
		}
	}
}

func TestCompletedFlowsHaveFIN(t *testing.T) {
	a := CompletedFlows{Victim: 7, Flows: 40, At: 100 * Millisecond, Spread: 40 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(7)), 2500*Millisecond)
	fins := 0
	for i := range pkts {
		if pkts[i].HasFlags(packet.FlagFIN) {
			fins++
		}
	}
	if fins != 40 {
		t.Fatalf("FIN packets = %d want 40", fins)
	}
}

func TestSSHBruteForceTargetsPort22(t *testing.T) {
	a := SSHBruteForce{Victim: 8, Sources: 4, Attempts: 25, At: 100 * Millisecond, Spread: 60 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(8)), 2500*Millisecond)
	flows := map[packet.FlowKey]bool{}
	for i := range pkts {
		if pkts[i].Key.DstPort != 22 {
			t.Fatal("brute-force packet not to port 22")
		}
		flows[pkts[i].Key] = true
	}
	if len(flows) != 100 {
		t.Fatalf("attempt flows = %d want 100", len(flows))
	}
}

func TestTCPFanoutDistinctConnections(t *testing.T) {
	a := TCPFanout{Host: 9, Conns: 60, At: 100 * Millisecond, Spread: 40 * Millisecond}
	pkts := a.Emit(rand.New(rand.NewSource(9)), 2500*Millisecond)
	conns := map[packet.FlowKey]bool{}
	for i := range pkts {
		conns[pkts[i].Key] = true
	}
	if len(conns) != 60 {
		t.Fatalf("connections = %d want 60", len(conns))
	}
}

func TestTruthHelpers(t *testing.T) {
	k := BurstKey(1)
	pkts := []packet.Packet{
		{Key: k, Size: 100, Time: 10},
		{Key: k, Size: 200, Time: 20},
		{Key: k, Size: 300, Time: 30},
	}
	c := CountTruth(pkts, 0, 25)
	if c[k] != 2 {
		t.Fatalf("CountTruth = %d", c[k])
	}
	b := ByteTruth(pkts, 15, 35)
	if b[k] != 500 {
		t.Fatalf("ByteTruth = %d", b[k])
	}
}

func TestClampTime(t *testing.T) {
	if clampTime(-5, 100) != 0 {
		t.Fatal("negative not clamped")
	}
	if clampTime(100, 100) != 99 {
		t.Fatal("duration not clamped to last tick")
	}
	if clampTime(50, 100) != 50 {
		t.Fatal("in-range value altered")
	}
}
