// Package trace synthesizes data-center-like packet traces. The paper
// evaluates on a CAIDA 2018 anonymized trace, which is not redistributable;
// this generator substitutes a deterministic synthetic workload with the
// properties the evaluation depends on:
//
//   - heavy-tailed (Zipf) flow-size distribution, so sketches see both a
//     few very large flows and a long tail of mice;
//   - non-uniform arrival rate across the trace (the paper allocates 1/4
//     rather than 1/5 of window memory per sub-window because of this);
//   - bursts concentrated near window boundaries (the motivating Figure 1
//     scenario where tumbling windows miss heavy hitters);
//   - injected anomalies for each evaluated query: TCP-connection fan-out,
//     SSH brute force, port scans, DDoS, SYN floods, completed flows,
//     Slowloris, super-spreaders and heavy hitters.
//
// All randomness flows from one seed, so every experiment is reproducible.
package trace

import (
	"math/rand"
	"sort"
	"time"

	"omniwindow/internal/packet"
)

// Millisecond is one virtual millisecond in trace timestamps.
const Millisecond = int64(time.Millisecond)

// Config parameterizes a synthetic trace.
type Config struct {
	// Seed drives all randomness. Equal configs generate equal traces.
	Seed int64
	// Duration is the trace length in virtual nanoseconds.
	Duration int64
	// Flows is the number of background 5-tuple flows.
	Flows int
	// ZipfS and ZipfV shape the flow-size Zipf distribution
	// (P(size=k) proportional to (ZipfV+k)^-ZipfS).
	ZipfS float64
	ZipfV float64
	// MaxFlowPackets caps the largest background flow.
	MaxFlowPackets int
	// Hosts is the size of the address pool for background traffic.
	Hosts int
	// BurstFraction is the fraction of background flows whose packets are
	// concentrated into a burst rather than spread across their lifetime.
	BurstFraction float64
	// RateWave adds a sinusoid-free two-phase rate modulation: flows
	// starting in the second half of the trace are RateWave times as
	// likely, producing the non-uniform arrival the paper observed.
	// 1 means uniform.
	RateWave float64
	// Anomalies are injected on top of the background traffic.
	Anomalies []Anomaly
}

// DefaultConfig returns a trace sized for the paper's window settings
// (500 ms windows of five 100 ms sub-windows) but scaled down to run in
// tests: roughly a few thousand background flows per sub-window.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Duration:       2500 * Millisecond,
		Flows:          30000,
		ZipfS:          1.2,
		ZipfV:          1.0,
		MaxFlowPackets: 400,
		Hosts:          4096,
		BurstFraction:  0.25,
		RateWave:       1.5,
	}
}

// Anomaly is a traffic pattern injected into the trace. Emit appends its
// packets and returns them; the generator merges and sorts everything.
type Anomaly interface {
	// Emit generates the anomaly's packets using the given RNG.
	Emit(rng *rand.Rand, duration int64) []packet.Packet
}

// Generator produces packets for a Config.
type Generator struct {
	cfg Config
}

// New returns a generator for cfg. Zero-value numeric fields are replaced
// by the DefaultConfig values so callers can override selectively.
func New(cfg Config) *Generator {
	def := DefaultConfig(cfg.Seed)
	if cfg.Duration == 0 {
		cfg.Duration = def.Duration
	}
	if cfg.Flows == 0 {
		cfg.Flows = def.Flows
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = def.ZipfS
	}
	if cfg.ZipfV == 0 {
		cfg.ZipfV = def.ZipfV
	}
	if cfg.MaxFlowPackets == 0 {
		cfg.MaxFlowPackets = def.MaxFlowPackets
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = def.Hosts
	}
	if cfg.BurstFraction == 0 {
		cfg.BurstFraction = def.BurstFraction
	}
	if cfg.RateWave == 0 {
		cfg.RateWave = def.RateWave
	}
	return &Generator{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// hostIP deterministically maps a host index into the 10.0.0.0/8 pool.
func hostIP(i int) uint32 {
	return 0x0A000000 | uint32(i&0x00FFFFFF)
}

// randKey draws a background 5-tuple between two random pool hosts.
func randKey(rng *rand.Rand, hosts int) packet.FlowKey {
	src := rng.Intn(hosts)
	dst := rng.Intn(hosts)
	if dst == src {
		dst = (dst + 1) % hosts
	}
	proto := packet.ProtoTCP
	if rng.Float64() < 0.15 {
		proto = packet.ProtoUDP
	}
	return packet.FlowKey{
		SrcIP:   hostIP(src),
		DstIP:   hostIP(dst),
		SrcPort: uint16(1024 + rng.Intn(64000)),
		DstPort: wellKnownPort(rng),
		Proto:   proto,
	}
}

func wellKnownPort(rng *rand.Rand) uint16 {
	ports := []uint16{80, 443, 8080, 3306, 5432, 53, 123, 9000}
	if rng.Float64() < 0.7 {
		return ports[rng.Intn(len(ports))]
	}
	return uint16(1024 + rng.Intn(64000))
}

// Generate builds the full trace, sorted by timestamp.
func (g *Generator) Generate() []packet.Packet {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	zipf := rand.NewZipf(rng, g.cfg.ZipfS, g.cfg.ZipfV, uint64(g.cfg.MaxFlowPackets-1))

	est := g.cfg.Flows * 4 // rough mean flow size for preallocation
	pkts := make([]packet.Packet, 0, est)

	for i := 0; i < g.cfg.Flows; i++ {
		key := randKey(rng, g.cfg.Hosts)
		n := int(zipf.Uint64()) + 1
		start := g.flowStart(rng)
		life := g.flowLife(rng, n)
		burst := rng.Float64() < g.cfg.BurstFraction
		pkts = appendFlow(pkts, rng, key, n, start, life, burst, g.cfg.Duration)
	}

	for _, a := range g.cfg.Anomalies {
		pkts = append(pkts, a.Emit(rng, g.cfg.Duration)...)
	}

	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
	return pkts
}

// flowStart draws a start time with the two-phase rate modulation.
func (g *Generator) flowStart(rng *rand.Rand) int64 {
	d := g.cfg.Duration
	w := g.cfg.RateWave
	// Probability mass: first half gets 1/(1+w), second half w/(1+w).
	if rng.Float64()*(1+w) < 1 {
		return int64(rng.Float64() * float64(d) / 2)
	}
	return d/2 + int64(rng.Float64()*float64(d)/2)
}

// flowLife draws a lifetime for a flow of n packets: mice live briefly,
// elephants persist.
func (g *Generator) flowLife(rng *rand.Rand, n int) int64 {
	base := 5*Millisecond + int64(rng.Float64()*50)*Millisecond
	return base + int64(n)*Millisecond/4
}

// appendFlow emits n packets of a flow over [start, start+life), clipped to
// the trace duration. Burst flows concentrate in the first tenth of life.
func appendFlow(dst []packet.Packet, rng *rand.Rand, key packet.FlowKey, n int, start, life int64, burst bool, duration int64, tcpOpts ...uint8) []packet.Packet {
	span := life
	if burst {
		span = life / 10
		if span == 0 {
			span = 1
		}
	}
	for j := 0; j < n; j++ {
		var off int64
		if n > 1 {
			off = int64(float64(span) * float64(j) / float64(n-1) * (0.9 + 0.2*rng.Float64()))
		}
		t := start + off
		if t >= duration {
			t = duration - 1
		}
		var flags uint8
		if key.Proto == packet.ProtoTCP {
			switch {
			case j == 0:
				flags = packet.FlagSYN
			case j == n-1 && n > 2:
				flags = packet.FlagFIN | packet.FlagACK
			default:
				flags = packet.FlagACK
				if rng.Float64() < 0.3 {
					flags |= packet.FlagPSH
				}
			}
		}
		for _, o := range tcpOpts {
			flags |= o
		}
		dst = append(dst, packet.Packet{
			Key:      key,
			Size:     packetSize(rng),
			TCPFlags: flags,
			Seq:      uint32(j),
			Time:     t,
		})
	}
	return dst
}

// packetSize draws a bimodal packet size (small ACK-ish vs near-MTU).
func packetSize(rng *rand.Rand) uint32 {
	if rng.Float64() < 0.45 {
		return uint32(64 + rng.Intn(200))
	}
	return uint32(1000 + rng.Intn(500))
}

// CountTruth computes exact per-flow packet counts over [from, to) — the
// error-free statistic ideal windows are judged against.
func CountTruth(pkts []packet.Packet, from, to int64) map[packet.FlowKey]uint64 {
	m := make(map[packet.FlowKey]uint64)
	for i := range pkts {
		if pkts[i].Time >= from && pkts[i].Time < to {
			m[pkts[i].Key]++
		}
	}
	return m
}

// ByteTruth computes exact per-flow byte counts over [from, to).
func ByteTruth(pkts []packet.Packet, from, to int64) map[packet.FlowKey]uint64 {
	m := make(map[packet.FlowKey]uint64)
	for i := range pkts {
		if pkts[i].Time >= from && pkts[i].Time < to {
			m[pkts[i].Key] += uint64(pkts[i].Size)
		}
	}
	return m
}
