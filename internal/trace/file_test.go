package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestTraceFileRoundTrip(t *testing.T) {
	cfg := DefaultConfig(17)
	cfg.Flows = 800
	cfg.Duration = 300 * Millisecond
	pkts := New(cfg).Generate()

	var buf bytes.Buffer
	if err := Write(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("count %d want %d", len(got), len(pkts))
	}
	for i := range got {
		a, b := &got[i], &pkts[i]
		if a.Time != b.Time || a.Key != b.Key || a.Size != b.Size ||
			a.TCPFlags != b.TCPFlags || a.Seq != b.Seq {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceFileOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.owtr")
	pkts := New(Config{Seed: 3, Flows: 100, Duration: 50 * Millisecond}).Generate()
	if err := WriteFile(path, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("count %d want %d", len(got), len(pkts))
	}
}

func TestTraceFileErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := append([]byte("XXXX"), make([]byte, 12)...)
	if _, err := Read(bytes.NewReader(bad)); err != ErrBadTraceMagic {
		t.Fatalf("bad magic: %v", err)
	}
	badv := append([]byte("OWTR"), make([]byte, 12)...)
	badv[4] = 99
	if _, err := Read(bytes.NewReader(badv)); err != ErrBadTraceVersion {
		t.Fatalf("bad version: %v", err)
	}
	// Header promises more records than present.
	var buf bytes.Buffer
	if err := Write(&buf, New(Config{Seed: 1, Flows: 10, Duration: Millisecond * 10}).Generate()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
	// Implausible count.
	huge := append([]byte("OWTR"), 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := Read(bytes.NewReader(huge)); err == nil {
		t.Fatal("implausible count accepted")
	}
}
