package afr_test

import (
	"testing"

	"omniwindow/internal/afr"

	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// TestStateMigration drives the §8 no-AFR path end to end: FlowRadar
// state migrates to the controller via recirculated OWMigrate packets and
// decodes there into exact per-flow counts.
func TestStateMigration(t *testing.T) {
	const cells = 512
	mk := func(seed uint64) *telemetry.FlowRadarApp {
		return telemetry.NewFlowRadarApp(sketch.NewFlowRadar(cells, 3, 1<<13, seed))
	}
	apps := []afr.StateApp{mk(1), mk(1)} // same seed: controller reconstructs region 0's geometry
	e := afr.NewEngine(afr.NewTracker(afr.TrackerConfig{BufferKeys: 16, BloomBits: 1 << 12, BloomHashes: 3}),
		apps, window.NewRegions(2, cells))

	truth := map[packet.FlowKey]uint64{}
	for f := 0; f < 60; f++ {
		k := packet.FlowKey{SrcIP: uint32(f + 1), DstPort: 80, Proto: packet.ProtoTCP}
		n := uint64(f%5 + 1)
		truth[k] = n
		for i := uint64(0); i < n; i++ {
			e.Update(0, &packet.Packet{Key: k, Size: 100})
		}
	}

	sw := switchsim.New(0)
	sw.SetProgram(func(p *switchsim.Pass) { e.HandleSpecial(p) })
	e.BeginCollection(0)

	// Migration: the controller receives one raw-word packet per slot.
	words := make([]uint64, cells*4)
	got := 0
	for i := 0; i < 4; i++ { // four concurrent migration packets
		out := sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWMigrate}})
		for _, c := range out.ToController {
			if c.OW.Flag != packet.OWMigrate {
				t.Fatalf("unexpected clone flag %v", c.OW.Flag)
			}
			copy(words[int(c.OW.Index)*4:], c.OW.RawWords)
			got++
		}
		if len(out.Forward) != 0 {
			t.Fatal("migration packet escaped on egress")
		}
	}
	if got != cells {
		t.Fatalf("migrated %d slots want %d", got, cells)
	}
	if e.ParkedClearPackets() != 4 {
		t.Fatalf("parked = %d", e.ParkedClearPackets())
	}

	// Controller side: reconstruct and decode.
	counts, ok := sketch.FlowRadarFromRaw(words, 3, 1).Decode()
	if !ok {
		t.Fatal("controller decode stalled")
	}
	for k, n := range truth {
		if counts[k] != n {
			t.Fatalf("flow %v decoded %d want %d", k, counts[k], n)
		}
	}

	// Reset phase still works after migration.
	for i := 0; i < 4; i++ {
		sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWReset}})
	}
	if e.Collecting() {
		t.Fatal("C&R round not closed")
	}
	post, _ := apps[0].(*telemetry.FlowRadarApp).FlowRadar().Decode()
	if len(post) != 0 {
		t.Fatal("region not reset after migration")
	}
}

// TestMigrationFallsBackToReset verifies that OWMigrate against an app
// without migration support converts to clear packets instead of looping.
func TestMigrationFallsBackToReset(t *testing.T) {
	app := func() afr.StateApp { return &plainApp{} }
	e := afr.NewEngine(afr.NewTracker(afr.TrackerConfig{BufferKeys: 4, BloomBits: 64, BloomHashes: 1}),
		[]afr.StateApp{app(), app()}, window.NewRegions(2, 8))
	e.Update(0, &packet.Packet{Key: packet.FlowKey{SrcIP: 1}})
	sw := switchsim.New(0)
	sw.SetProgram(func(p *switchsim.Pass) { e.HandleSpecial(p) })
	e.BeginCollection(0)
	out := sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWMigrate}})
	if len(out.Forward) != 0 {
		t.Fatal("packet escaped")
	}
	// The packet became a clear packet and completed the reset loop.
	if out.Passes < 8 {
		t.Fatalf("passes = %d, reset did not run", out.Passes)
	}
}

// plainApp is a minimal StateApp without migration support.
type plainApp struct{ count uint64 }

func (a *plainApp) Update(p *packet.Packet)         { a.count++ }
func (a *plainApp) Query(k packet.FlowKey) afr.Attr { return afr.Attr{Value: a.count} }
func (a *plainApp) ResetSlot(i int) {
	if i == 7 {
		a.count = 0
	}
}
func (a *plainApp) Slots() int { return 8 }
