package afr

import "omniwindow/internal/sketch"

// Kind classifies a flow statistic by its merge pattern. Recent work
// (FlyMon, cited in §4.2) observes that flow statistics follow four
// patterns; OmniWindow merges each with a dedicated strategy.
type Kind int

const (
	// Frequency statistics (packet counts, byte counts) sum across
	// sub-windows.
	Frequency Kind = iota
	// Existence statistics record whether a key appeared; merging is a
	// logical OR.
	Existence
	// Max takes the maximum across sub-windows.
	Max
	// Min takes the minimum across sub-windows.
	Min
	// Distinction counts distinct values per key: the per-sub-window
	// summaries are merged first and counted after, to avoid
	// double-counting values seen in several sub-windows.
	Distinction
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Frequency:
		return "frequency"
	case Existence:
		return "existence"
	case Max:
		return "max"
	case Min:
		return "min"
	case Distinction:
		return "distinction"
	default:
		return "unknown"
	}
}

// DistinctCounter turns an OR-merged distinct summary into a count. The
// default interprets the four words as a multiresolution bitmap; telemetry
// apps whose data plane emits a different summary shape (e.g. the Vector
// Bloom Filter's plain bitmap) supply their own.
type DistinctCounter func(summary [4]uint64) uint64

// Merged is the cross-sub-window accumulation of one flow's statistic.
type Merged struct {
	kind    Kind
	counter DistinctCounter
	// value holds the running scalar for Frequency/Max/Min; for
	// Existence it is 1 when present.
	value uint64
	// distinct accumulates the OR-merged summary for Distinction.
	distinct   [4]uint64
	hasSummary bool
	seeded     bool
}

// NewMerged starts an accumulator of the given kind.
func NewMerged(kind Kind) Merged { return Merged{kind: kind} }

// NewMergedWithCounter starts a Distinction accumulator with a custom
// summary counter.
func NewMergedWithCounter(kind Kind, counter DistinctCounter) Merged {
	return Merged{kind: kind, counter: counter}
}

// Absorb folds one sub-window's attribute into the accumulator.
func (m *Merged) Absorb(attr uint64, distinct [4]uint64, hasDistinct bool) {
	switch m.kind {
	case Frequency:
		m.value += attr
	case Existence:
		m.value = 1
	case Max:
		if !m.seeded || attr > m.value {
			m.value = attr
		}
	case Min:
		if !m.seeded || attr < m.value {
			m.value = attr
		}
	case Distinction:
		// Keep both the scalar sum (exact when sub-window element sets
		// are disjoint, an overcount when elements recur) and the
		// OR-merged summary (duplicate-free but noisy); Value combines
		// them.
		m.value += attr
		if hasDistinct {
			m.hasSummary = true
			for i := range m.distinct {
				m.distinct[i] |= distinct[i]
			}
		}
	}
	m.seeded = true
}

// Value returns the merged statistic. For Distinction it counts the merged
// summary via the multiresolution-bitmap estimator.
func (m *Merged) Value() uint64 {
	if m.kind == Distinction {
		if !m.hasSummary {
			return m.value
		}
		var est uint64
		if m.counter != nil {
			est = m.counter(m.distinct)
		} else {
			est = uint64(sketch.MRBFromComponents(m.distinct[:]).Estimate() + 0.5)
		}
		// The scalar sum over-counts elements that recur across
		// sub-windows but is exact otherwise; the summary estimate is
		// duplicate-free but noisy. Both err upward relative to the
		// smaller one, so take the minimum.
		if m.value > 0 && m.value < est {
			return m.value
		}
		return est
	}
	return m.value
}

// Seeded reports whether any sub-window contributed yet.
func (m *Merged) Seeded() bool { return m.seeded }

// Kind returns the accumulator's statistic kind.
func (m *Merged) Kind() Kind { return m.kind }
