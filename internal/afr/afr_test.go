package afr

import (
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/window"
)

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstPort: 80, Proto: packet.ProtoTCP}
}

func smallTracker(buf int) *Tracker {
	return NewTracker(TrackerConfig{BufferKeys: buf, BloomBits: 1 << 14, BloomHashes: 3, Regions: 2})
}

func TestTrackerDedupes(t *testing.T) {
	tr := smallTracker(16)
	if isNew, spill := tr.Track(0, fk(1)); !isNew || spill {
		t.Fatalf("first sighting: new=%v spill=%v", isNew, spill)
	}
	if isNew, spill := tr.Track(0, fk(1)); isNew || spill {
		t.Fatalf("duplicate: new=%v spill=%v", isNew, spill)
	}
	if tr.KeyCount(0) != 1 {
		t.Fatalf("key count = %d", tr.KeyCount(0))
	}
}

func TestTrackerSpillsWhenFull(t *testing.T) {
	tr := smallTracker(4)
	for i := 0; i < 4; i++ {
		if _, spill := tr.Track(0, fk(i)); spill {
			t.Fatalf("premature spill at %d", i)
		}
	}
	if _, spill := tr.Track(0, fk(99)); !spill {
		t.Fatal("full buffer did not spill")
	}
	if tr.KeyCount(0) != 4 {
		t.Fatalf("key count = %d", tr.KeyCount(0))
	}
}

func TestTrackerRegionsIndependent(t *testing.T) {
	tr := smallTracker(16)
	tr.Track(0, fk(1))
	if isNew, _ := tr.Track(1, fk(1)); !isNew {
		t.Fatal("regions must track independently")
	}
	tr.ResetRegion(0)
	if tr.KeyCount(0) != 0 {
		t.Fatal("reset region kept keys")
	}
	if tr.KeyCount(1) != 1 {
		t.Fatal("reset clobbered other region")
	}
	if isNew, _ := tr.Track(0, fk(1)); !isNew {
		t.Fatal("bloom not cleared by region reset")
	}
}

func TestTrackerDefaults(t *testing.T) {
	cfg := DefaultTrackerConfig()
	tr := NewTracker(cfg)
	if tr.Config().BufferKeys != 32*1024 {
		t.Fatalf("default buffer = %d", tr.Config().BufferKeys)
	}
	if tr.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	if NewTracker(TrackerConfig{Regions: 0, BloomBits: 64, BloomHashes: 1}).Config().Regions != 0 {
		// Regions below 2 are clamped internally; config keeps raw value
		// but regions slice has 2 — verified via Track on region 1.
		NewTracker(TrackerConfig{Regions: 0, BloomBits: 64, BloomHashes: 1}).Track(1, fk(1))
	}
}

// countApp is a minimal StateApp: a per-key exact counter with fixed slots.
type countApp struct {
	counts map[packet.FlowKey]uint64
	slots  int
	resets []int
}

func newCountApp(slots int) *countApp {
	return &countApp{counts: make(map[packet.FlowKey]uint64), slots: slots}
}

func (a *countApp) Update(p *packet.Packet) { a.counts[p.Key]++ }
func (a *countApp) Query(k packet.FlowKey) Attr {
	return Attr{Value: a.counts[k]}
}
func (a *countApp) ResetSlot(i int) {
	a.resets = append(a.resets, i)
	if i == a.slots-1 {
		a.counts = make(map[packet.FlowKey]uint64)
	}
}
func (a *countApp) Slots() int { return a.slots }

func newEngineForTest(t *testing.T, buf int) (*Engine, *countApp, *countApp) {
	t.Helper()
	a0, a1 := newCountApp(8), newCountApp(8)
	e := NewEngine(smallTracker(buf), []StateApp{a0, a1}, window.NewRegions(2, 8))
	return e, a0, a1
}

func TestEngineUpdateRoutesToRegion(t *testing.T) {
	e, a0, a1 := newEngineForTest(t, 16)
	e.Update(0, &packet.Packet{Key: fk(1)})
	e.Update(1, &packet.Packet{Key: fk(2)})
	if a0.counts[fk(1)] != 1 || a1.counts[fk(2)] != 1 {
		t.Fatal("updates not routed to region apps")
	}
	if a0.counts[fk(2)] != 0 {
		t.Fatal("cross-region contamination")
	}
}

func TestEngineMismatchedAppsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(smallTracker(4), []StateApp{newCountApp(4)}, window.NewRegions(2, 4))
}

// runCollection drives a full C&R round through a switchsim switch with
// `packets` concurrent collection packets and returns the AFRs delivered
// to the controller.
func runCollection(t *testing.T, e *Engine, sw uint64, packets int) []packet.AFR {
	t.Helper()
	ss := switchsim.New(0)
	ss.SetProgram(func(pass *switchsim.Pass) {
		if e.HandleSpecial(pass) {
			return
		}
		t.Errorf("unexpected normal packet during collection")
	})
	e.BeginCollection(sw)
	var got []packet.AFR
	for i := 0; i < packets; i++ {
		out := ss.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWCollection}})
		for _, c := range out.ToController {
			if c.OW.Flag == packet.OWAFR {
				got = append(got, c.OW.AFRs...)
			}
		}
		if len(out.Forward) != 0 {
			t.Fatalf("collection packet escaped on egress")
		}
	}
	if e.ParkedClearPackets() != packets {
		t.Fatalf("parked = %d want %d", e.ParkedClearPackets(), packets)
	}
	// Reuse the parked packets as clear packets (§4.3).
	for i := 0; i < packets; i++ {
		out := ss.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWReset}})
		if len(out.Forward) != 0 {
			t.Fatalf("clear packet escaped on egress")
		}
	}
	return got
}

func TestEngineCollectionEnumeratesAllKeys(t *testing.T) {
	e, a0, _ := newEngineForTest(t, 16)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			e.Update(0, &packet.Packet{Key: fk(i)})
		}
	}
	_ = a0
	got := runCollection(t, e, 0, 1)
	if len(got) != 5 {
		t.Fatalf("AFRs = %d want 5", len(got))
	}
	bySeq := map[uint32]packet.AFR{}
	for _, r := range got {
		bySeq[r.Seq] = r
		if r.SubWindow != 0 {
			t.Fatalf("AFR sub-window = %d", r.SubWindow)
		}
	}
	for i := 0; i < 5; i++ {
		r, ok := bySeq[uint32(i)]
		if !ok {
			t.Fatalf("missing seq %d", i)
		}
		if r.Attr != uint64(i+1) {
			t.Fatalf("seq %d attr = %d want %d", i, r.Attr, i+1)
		}
	}
}

func TestEngineCollectionThenResetClearsState(t *testing.T) {
	e, a0, _ := newEngineForTest(t, 16)
	for i := 0; i < 3; i++ {
		e.Update(0, &packet.Packet{Key: fk(i)})
	}
	runCollection(t, e, 0, 1)
	if e.Collecting() {
		t.Fatal("collection round not finished")
	}
	// Clear packets must have enumerated every slot exactly once.
	if len(a0.resets) != a0.slots {
		t.Fatalf("reset slots = %v", a0.resets)
	}
	for i, s := range a0.resets {
		if s != i {
			t.Fatalf("reset order broken: %v", a0.resets)
		}
	}
	if len(a0.counts) != 0 {
		t.Fatal("state not cleared")
	}
	if e.Tracker().KeyCount(0) != 0 {
		t.Fatal("tracker not cleared")
	}
}

func TestEngineConcurrentCollectionPackets(t *testing.T) {
	// Several concurrent collection packets share the enumeration
	// counter: every key is still collected exactly once.
	e, _, _ := newEngineForTest(t, 16)
	for i := 0; i < 7; i++ {
		e.Update(0, &packet.Packet{Key: fk(i)})
	}
	got := runCollection(t, e, 0, 4)
	if len(got) != 7 {
		t.Fatalf("AFRs = %d want 7", len(got))
	}
	seen := map[uint32]bool{}
	for _, r := range got {
		if seen[r.Seq] {
			t.Fatalf("seq %d collected twice", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestEngineInjectedKeyPath(t *testing.T) {
	e, _, _ := newEngineForTest(t, 2) // tiny buffer: keys spill
	for i := 0; i < 5; i++ {
		e.Update(0, &packet.Packet{Key: fk(i)})
	}
	e.BeginCollection(0)
	ss := switchsim.New(0)
	ss.SetProgram(func(pass *switchsim.Pass) { e.HandleSpecial(pass) })
	inj := &packet.Packet{OW: packet.OWHeader{Flag: packet.OWInjectKey, Key: fk(4), Index: 77}}
	out := ss.Inject(inj)
	if len(out.ToController) != 1 {
		t.Fatalf("controller packets = %d", len(out.ToController))
	}
	rs := out.ToController[0].OW.AFRs
	if len(rs) != 1 || rs[0].Key != fk(4) || rs[0].Attr != 1 || rs[0].Seq != 77 {
		t.Fatalf("bad AFR: %+v", rs)
	}
	if len(out.Forward) != 0 {
		t.Fatal("injected key packet leaked to egress")
	}
}

func TestEngineRetransmit(t *testing.T) {
	e, _, _ := newEngineForTest(t, 16)
	for i := 0; i < 4; i++ {
		e.Update(0, &packet.Packet{Key: fk(i)})
	}
	e.BeginCollection(0)
	recs := e.Retransmit([]uint32{1, 3, 99})
	if len(recs) != 2 {
		t.Fatalf("retransmitted %d records", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 3 {
		t.Fatalf("wrong seqs: %+v", recs)
	}
}

func TestMergedKinds(t *testing.T) {
	cases := []struct {
		kind  Kind
		attrs []uint64
		want  uint64
	}{
		{Frequency, []uint64{60, 80}, 140},
		{Existence, []uint64{1, 1, 1}, 1},
		{Max, []uint64{5, 9, 3}, 9},
		{Min, []uint64{5, 9, 3}, 3},
	}
	for _, c := range cases {
		m := NewMerged(c.kind)
		for _, a := range c.attrs {
			m.Absorb(a, [4]uint64{}, false)
		}
		if got := m.Value(); got != c.want {
			t.Fatalf("%v merged to %d want %d", c.kind, got, c.want)
		}
		if !m.Seeded() {
			t.Fatalf("%v not seeded", c.kind)
		}
	}
}

func TestMergedDistinctionMergesBeforeCounting(t *testing.T) {
	// Two sub-windows with identical distinct sets must not double count.
	m := NewMerged(Distinction)
	summary := [4]uint64{0b1011, 0b1, 0, 0}
	m.Absorb(0, summary, true)
	single := m.Value()
	m.Absorb(0, summary, true)
	if m.Value() != single {
		t.Fatalf("identical summaries double-counted: %d vs %d", single, m.Value())
	}
}

func TestMergedDistinctionScalarFallback(t *testing.T) {
	m := NewMerged(Distinction)
	m.Absorb(10, [4]uint64{}, false)
	m.Absorb(5, [4]uint64{}, false)
	if m.Value() != 15 {
		t.Fatalf("fallback sum = %d", m.Value())
	}
}

func TestKindString(t *testing.T) {
	for k := Frequency; k <= Distinction; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("bad kind should be unknown")
	}
}
