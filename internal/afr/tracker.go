// Package afr implements the application-derived flow record subsystem of
// §4: data-plane flowkey tracking (Algorithm 1), AFR generation driven by
// controller-injected collection packets (Algorithm 2), in-switch reset via
// clear packets (§4.3), and the merge strategies for the four statistic
// patterns (frequency, existence, max/min, distinction).
package afr

import (
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// TrackerConfig sizes the flowkey-tracking structures of one switch.
type TrackerConfig struct {
	// BufferKeys is the capacity of the data-plane flowkey array
	// (fk_buffer). Keys beyond it are spilled to the controller.
	BufferKeys int
	// BloomBits and BloomHashes size the de-duplicating Bloom filter.
	BloomBits   int
	BloomHashes int
	// Regions is the number of memory regions (one tracking instance
	// each); two under the shared-region layout.
	Regions int
}

// DefaultTrackerConfig matches the paper's Exp#6 setting: a 32 K-entry
// flowkey array with a Bloom filter sized for ~64 K flows per sub-window.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		BufferKeys:  32 * 1024,
		BloomBits:   1 << 20,
		BloomHashes: 3,
		Regions:     2,
	}
}

// trackRegion is one region's tracking state.
type trackRegion struct {
	bloom *sketch.Bloom
	keys  []packet.FlowKey
}

// Tracker tracks the active flow keys of each sub-window (Algorithm 1) so
// the switch can later enumerate them to generate AFRs. Telemetry
// solutions that keep no keys themselves (Sonata, Count-Min) rely on it.
type Tracker struct {
	cfg     TrackerConfig
	regions []trackRegion
}

// NewTracker builds a tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.Regions < 2 {
		cfg.Regions = 2
	}
	if cfg.BufferKeys < 0 {
		cfg.BufferKeys = 0
	}
	t := &Tracker{cfg: cfg, regions: make([]trackRegion, cfg.Regions)}
	for i := range t.regions {
		t.regions[i] = trackRegion{
			bloom: sketch.NewBloom(cfg.BloomBits, cfg.BloomHashes, uint64(0xB100F+i)),
			keys:  make([]packet.FlowKey, 0, cfg.BufferKeys),
		}
	}
	return t
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() TrackerConfig { return t.cfg }

// Track processes one packet's key in the given region. It returns
// spill=true when the key is new but the flowkey array is full, in which
// case the caller must clone the key to the controller (Algorithm 1
// lines 5-6).
func (t *Tracker) Track(region int, k packet.FlowKey) (isNew, spill bool) {
	r := &t.regions[region]
	if r.bloom.TestAndAdd(k) {
		return false, false // seen before in this sub-window
	}
	if len(r.keys) < t.cfg.BufferKeys {
		r.keys = append(r.keys, k)
		return true, false
	}
	return true, true
}

// Keys returns the flowkey array of a region (the enumeration source of
// Algorithm 2).
func (t *Tracker) Keys(region int) []packet.FlowKey { return t.regions[region].keys }

// KeyCount returns how many keys the region's array holds — the figure the
// trigger packet reports so the controller can detect AFR losses (§8).
func (t *Tracker) KeyCount(region int) int { return len(t.regions[region].keys) }

// ResetRegion clears a region's tracking state after its sub-window has
// been collected and reset.
func (t *Tracker) ResetRegion(region int) {
	r := &t.regions[region]
	r.bloom.Reset()
	r.keys = r.keys[:0]
}

// MemoryBytes reports the tracker's data-plane footprint across regions.
func (t *Tracker) MemoryBytes() int {
	per := t.cfg.BloomBits/8 + t.cfg.BufferKeys*packet.KeyBytes
	return per * len(t.regions)
}
