package afr

import (
	"fmt"

	"omniwindow/internal/packet"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/window"
	"omniwindow/internal/wire"
)

// Attr is the application-derived attribute of one flow in one sub-window:
// the scalar value plus an optional distinct-count summary.
type Attr struct {
	Value       uint64
	Distinct    [4]uint64
	HasDistinct bool
}

// StateMigrator is an optional StateApp extension for telemetry whose
// flow statistics cannot be derived by data-plane queries (FlowRadar
// decoding, NZE's compressive recovery). OmniWindow migrates the ENTIRE
// state to the controller instead of generating AFRs: recirculated
// OWMigrate packets enumerate the registers slot by slot, cloning the raw
// words to the controller, which reconstructs and merges the structure
// (§8, merging intermediate data without AFRs).
type StateMigrator interface {
	// RawSlot returns every register's word(s) at slot i.
	RawSlot(i int) []uint64
}

// StateApp is one memory region's application state — the stateful part of
// a telemetry program for a single sub-window. OmniWindow instantiates one
// StateApp per region and drives measurement, AFR queries and slot-wise
// reset through it.
type StateApp interface {
	// Update processes one packet of the region's active sub-window.
	Update(p *packet.Packet)
	// Query derives the AFR attribute of key k from the region's state
	// (the data-plane flow query of §4.1).
	Query(k packet.FlowKey) Attr
	// ResetSlot zeroes slot i of every register of the region — the work
	// one clear packet performs in one pipeline pass (§4.3).
	ResetSlot(i int)
	// Slots is the number of per-register entries a full reset must
	// enumerate.
	Slots() int
}

// Engine is the switch-side C&R machine: it owns the tracker and the
// per-region StateApps and implements the special-packet handling of
// Algorithm 2 (collection packets), §4.3 (clear packets) and §4.2
// (controller-injected flow keys).
type Engine struct {
	tracker *Tracker
	// apps is indexed [region][app]: one switch can host several
	// co-deployed telemetry applications that share the window mechanism
	// and flowkey tracking while keeping independent state.
	apps    [][]StateApp
	regions window.Regions
	keyOf   func(*packet.Packet) (packet.FlowKey, bool)

	// Collection state for the sub-window currently being collected.
	collecting     bool
	collectSW      uint64
	collectRegion  int
	counter        int
	resetCounter   int
	trackerPending bool
	// parked counts collection packets whose enumeration finished and
	// that wait to be reused as clear packets.
	parked int
}

// NewEngine wires a tracker and one StateApp per region (the single-app
// form; see NewMultiEngine for co-deployed applications).
func NewEngine(tracker *Tracker, apps []StateApp, regions window.Regions) *Engine {
	per := make([][]StateApp, len(apps))
	for i, a := range apps {
		per[i] = []StateApp{a}
	}
	return NewMultiEngine(tracker, per, regions)
}

// NewMultiEngine wires a tracker and, per region, one state instance per
// co-deployed application. All regions must host the same number of apps.
func NewMultiEngine(tracker *Tracker, apps [][]StateApp, regions window.Regions) *Engine {
	if len(apps) != regions.N() {
		panic(fmt.Sprintf("afr: %d state-app regions for %d regions", len(apps), regions.N()))
	}
	n := len(apps[0])
	if n == 0 {
		panic("afr: at least one app per region")
	}
	for r := range apps {
		if len(apps[r]) != n {
			panic("afr: regions host different app counts")
		}
	}
	return &Engine{tracker: tracker, apps: apps, regions: regions}
}

// AppCount returns the number of co-deployed applications.
func (e *Engine) AppCount() int { return len(e.apps[0]) }

// PowerCycle models a switch losing power: every region's flowkey
// tracking structures and application state are wiped and any in-progress
// collection is abandoned (parked clear packets live in pipeline state and
// die with it). The engine itself stays usable — it is the data that is
// gone, which is exactly what the fabric's reboot fault injects.
func (e *Engine) PowerCycle() {
	for r := range e.apps {
		e.tracker.ResetRegion(r)
		for _, a := range e.apps[r] {
			for i := 0; i < a.Slots(); i++ {
				a.ResetSlot(i)
			}
		}
	}
	e.collecting = false
	e.counter = 0
	e.resetCounter = 0
	e.trackerPending = false
	e.parked = 0
}

// SetKeyFunc installs the application's flowkey definition (§4.1:
// "OmniWindow requires telemetry applications to explicitly specify the
// flowkey definition"). The function maps a packet to the key to track; ok
// = false means the packet contributes no key (e.g. it fails the query's
// filter). The default tracks every packet's 5-tuple.
func (e *Engine) SetKeyFunc(f func(*packet.Packet) (packet.FlowKey, bool)) {
	e.keyOf = f
}

// Tracker returns the flowkey tracker.
func (e *Engine) Tracker() *Tracker { return e.tracker }

// App returns the region's first application state (single-app form).
func (e *Engine) App(region int) StateApp { return e.apps[region][0] }

// AppAt returns a specific co-deployed application's region state.
func (e *Engine) AppAt(region, app int) StateApp { return e.apps[region][app] }

// maxSlots returns the largest reset-slot count among a region's apps.
func (e *Engine) maxSlots(region int) int {
	m := 0
	for _, a := range e.apps[region] {
		if a.Slots() > m {
			m = a.Slots()
		}
	}
	return m
}

// Update records a normal packet into the given region, tracking its flow
// key (Algorithm 1). It returns spill=true when the key must be cloned to
// the controller because the flowkey array is full; spillKey is the key to
// send.
func (e *Engine) Update(region int, p *packet.Packet) (spillKey packet.FlowKey, spill bool) {
	k, ok := p.Key, true
	if e.keyOf != nil {
		k, ok = e.keyOf(p)
	}
	if ok {
		_, spill = e.tracker.Track(region, k)
	}
	for _, a := range e.apps[region] {
		a.Update(p)
	}
	return k, spill
}

// BeginCollection arms the engine to collect terminated sub-window sw.
// The controller calls it (conceptually, by sending the first collection
// packet) after the out-of-order grace period.
func (e *Engine) BeginCollection(sw uint64) {
	e.collecting = true
	e.collectSW = sw
	e.collectRegion = e.regions.Index(sw)
	e.counter = 0
	e.resetCounter = 0
	e.trackerPending = true
	e.parked = 0
}

// Collecting reports whether a C&R round is in progress.
func (e *Engine) Collecting() bool { return e.collecting }

// ParkedClearPackets returns how many finished collection packets wait to
// be reused as clear packets. The controller releases them (by sending the
// confirmation that all AFRs arrived) and the deployment re-injects them
// with the reset flag.
func (e *Engine) ParkedClearPackets() int { return e.parked }

// HandleSpecial processes OmniWindow control packets inside a pipeline
// pass. It returns true if the packet was consumed as a special packet.
func (e *Engine) HandleSpecial(pass *switchsim.Pass) bool {
	p := pass.Pkt
	switch p.OW.Flag {
	case packet.OWCollection:
		e.handleCollection(pass)
		return true
	case packet.OWReset:
		e.handleReset(pass)
		return true
	case packet.OWInjectKey:
		e.handleInjectedKey(pass)
		return true
	case packet.OWMigrate:
		e.handleMigrate(pass)
		return true
	default:
		return false
	}
}

// handleMigrate enumerates the collected region's raw register state, one
// slot per pass, cloning the words to the controller. When the app does
// not support migration the packet converts to a clear packet so a
// misconfigured controller cannot stall the reset.
func (e *Engine) handleMigrate(pass *switchsim.Pass) {
	p := pass.Pkt
	if int(p.OW.App) >= e.AppCount() {
		pass.Drop()
		return
	}
	app := e.apps[e.collectRegion][p.OW.App]
	mig, ok := app.(StateMigrator)
	if !ok {
		p.OW.Flag = packet.OWReset
		pass.Recirculate()
		return
	}
	idx := e.counter
	e.counter++
	if idx >= app.Slots() {
		e.parked++
		pass.Drop()
		return
	}
	c := p.Clone()
	c.OW.Flag = packet.OWMigrate
	c.OW.Index = uint32(idx)
	c.OW.SubWindow = e.collectSW
	c.OW.RawWords = mig.RawSlot(idx)
	pass.CloneToController(c)
	pass.Recirculate()
}

// handleCollection implements Algorithm 2: enumerate fk_buffer, one key
// per pass, appending AFRs and cloning them to the controller. When the
// counter passes the end of the array the packet parks: it is reused as a
// clear packet only after the controller has received every AFR (and any
// controller-injected keys have been queried), because a reset destroys
// the state retransmissions would need (§4.3, §8).
func (e *Engine) handleCollection(pass *switchsim.Pass) {
	p := pass.Pkt
	keys := e.tracker.Keys(e.collectRegion)
	idx := e.counter
	e.counter++
	if idx >= len(keys) {
		e.parked++
		pass.Drop()
		return
	}
	k := keys[idx]
	p.OW.Index = uint32(idx)
	p.OW.AFRs = append(p.OW.AFRs, e.queryAFRs(k, uint32(idx))...)

	c := p.Clone()
	c.OW.Flag = packet.OWAFR
	pass.CloneToController(c)
	// The original keeps recirculating to move the enumeration forward;
	// its accumulated AFRs are trimmed so header growth stays bounded.
	p.OW.AFRs = p.OW.AFRs[:0]
	pass.Recirculate()
}

// handleReset implements §4.3: each clear packet zeroes one slot of every
// register of the terminated region per pass, controlled by reset_counter.
func (e *Engine) handleReset(pass *switchsim.Pass) {
	slot := e.resetCounter
	e.resetCounter++
	if slot >= e.maxSlots(e.collectRegion) {
		if e.trackerPending {
			// The last clear packet also retires the tracker's
			// per-region structures (flowkey array + Bloom filter).
			e.tracker.ResetRegion(e.collectRegion)
			e.trackerPending = false
			e.collecting = false
		}
		pass.Drop()
		return
	}
	// One pass resets this slot of every register of every co-deployed
	// app (clear packets touch the same index of all registers).
	for _, a := range e.apps[e.collectRegion] {
		if slot < a.Slots() {
			a.ResetSlot(slot)
		}
	}
	pass.Recirculate()
}

// handleInjectedKey implements the controller-injected flow-key path of
// §4.2: extract the key, query the terminated region, and send the AFR
// back to the controller.
func (e *Engine) handleInjectedKey(pass *switchsim.Pass) {
	p := pass.Pkt
	p.OW.Flag = packet.OWAFR
	p.OW.AFRs = append(p.OW.AFRs, e.queryAFRs(p.OW.Key, p.OW.Index)...)
	pass.CloneToController(p.Clone())
	pass.Drop()
}

// queryAFRs builds one AFR per co-deployed app from the collected
// region's state.
func (e *Engine) queryAFRs(k packet.FlowKey, seq uint32) []packet.AFR {
	out := make([]packet.AFR, 0, e.AppCount())
	for i, app := range e.apps[e.collectRegion] {
		a := app.Query(k)
		out = append(out, packet.AFR{
			Key:         k,
			Attr:        a.Value,
			SubWindow:   e.collectSW,
			Seq:         seq,
			App:         uint8(i),
			Distinct:    a.Distinct,
			HasDistinct: a.HasDistinct,
		})
	}
	return out
}

// Retransmit re-queries specific sequence indexes of the collected region
// after the controller detected AFR losses (§8, reliability of AFRs). It
// must be called before the region is reset.
func (e *Engine) Retransmit(seqs []uint32) []packet.AFR {
	keys := e.tracker.Keys(e.collectRegion)
	out := make([]packet.AFR, 0, len(seqs))
	for _, s := range seqs {
		if int(s) < len(keys) {
			out = append(out, e.queryAFRs(keys[s], s)...)
		}
	}
	return out
}

// RetransmitPackets answers a NACK: it re-queries the requested sequence
// indexes and wraps the records into OWRetransmit packets, chunked to the
// wire AFR bound, ready to send to the controller. The distinct flag lets
// the controller's delivery accounting tell recoveries from first
// deliveries.
func (e *Engine) RetransmitPackets(seqs []uint32) []*packet.Packet {
	recs := e.Retransmit(seqs)
	out := make([]*packet.Packet, 0, (len(recs)+wire.MaxAFRsPerDatagram-1)/wire.MaxAFRsPerDatagram)
	for start := 0; start < len(recs); start += wire.MaxAFRsPerDatagram {
		end := min(start+wire.MaxAFRsPerDatagram, len(recs))
		out = append(out, &packet.Packet{OW: packet.OWHeader{
			Flag:         packet.OWRetransmit,
			SubWindow:    e.collectSW,
			HasSubWindow: true,
			AFRs:         append([]packet.AFR(nil), recs[start:end]...),
		}})
	}
	return out
}
