// Package dml models the distributed-machine-learning traffic of the
// paper's Exp#3 case study: a parameter-server training job whose packets
// embed the current training iteration as a user-defined window signal.
// The paper trains VGG19 on CIFAR-10 over four hosts; only the *traffic*
// matters to the experiment (iteration boundaries and per-iteration
// transfer volume/time), so this model generates the same packet pattern:
// each worker pushes its gradients — whose volume follows the paper's
// dynamic compression schedule (ratio 2, doubling every 16 iterations up
// to 2048) — then the server broadcasts updates and the next iteration
// starts after the slowest worker finishes.
package dml

import (
	"math/rand"
	"sort"

	"omniwindow/internal/packet"
)

// Config parameterizes the training job.
type Config struct {
	// Workers is the number of worker hosts (the paper uses 3 + 1
	// parameter server).
	Workers int
	// Iterations is the number of training iterations to emit.
	Iterations int
	// ModelBytes is the uncompressed gradient volume per iteration
	// (VGG19 is ~548 MB of fp32 gradients; scale down for simulation).
	ModelBytes int64
	// BaseRatio is the initial compression ratio.
	BaseRatio int
	// DoubleEvery doubles the ratio every this many iterations.
	DoubleEvery int
	// MaxRatio caps the compression ratio.
	MaxRatio int
	// LinkBytesPerNs is the per-worker link bandwidth (bytes per virtual
	// nanosecond; 100 Gbps = 12.5 B/ns).
	LinkBytesPerNs float64
	// ComputeNs is the per-iteration compute time before gradients are
	// sent.
	ComputeNs int64
	// MTU is the packet payload size.
	MTU int
	// Seed drives the per-worker speed jitter.
	Seed int64
}

// DefaultConfig returns a scaled-down job matching the paper's schedule.
func DefaultConfig(seed int64) Config {
	return Config{
		Workers:        3,
		Iterations:     96,
		ModelBytes:     24 << 20, // scaled model (VGG19 is ~548 MB)
		BaseRatio:      2,
		DoubleEvery:    16,
		MaxRatio:       2048,
		LinkBytesPerNs: 12.5,
		ComputeNs:      500_000, // 0.5 ms compute per iteration
		MTU:            1500,
		Seed:           seed,
	}
}

// Ratio returns the compression ratio in effect at iteration i.
func (c Config) Ratio(i int) int {
	r := c.BaseRatio
	for k := 0; k < i/c.DoubleEvery; k++ {
		r *= 2
		if r >= c.MaxRatio {
			return c.MaxRatio
		}
	}
	return r
}

func workerIP(w int) uint32 { return 0xAC100000 | uint32(w+1) } // 172.16.0.x
func serverIP() uint32      { return 0xAC100000 | 0x64 }        // 172.16.0.100

// WorkerKey returns the flow key of worker w's gradient push.
func WorkerKey(w int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   workerIP(w),
		DstIP:   serverIP(),
		SrcPort: uint16(30000 + w),
		DstPort: 4321,
		Proto:   packet.ProtoTCP,
	}
}

// Generate emits the training traffic, time-sorted, with the iteration
// number embedded in every packet's user signal.
func Generate(cfg Config) []packet.Packet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pkts []packet.Packet
	// Per-worker relative speeds (stable across iterations, as in a real
	// heterogeneous cluster).
	speed := make([]float64, cfg.Workers)
	for w := range speed {
		speed[w] = 0.85 + 0.3*rng.Float64()
	}
	now := int64(0)
	for iter := 0; iter < cfg.Iterations; iter++ {
		vol := cfg.ModelBytes / int64(cfg.Ratio(iter))
		if vol < int64(cfg.MTU) {
			vol = int64(cfg.MTU)
		}
		iterEnd := now
		for w := 0; w < cfg.Workers; w++ {
			start := now + int64(float64(cfg.ComputeNs)/speed[w])
			n := int(vol) / cfg.MTU
			if n < 1 {
				n = 1
			}
			perPkt := float64(cfg.MTU) / (cfg.LinkBytesPerNs * speed[w])
			t := start
			for j := 0; j < n; j++ {
				pkts = append(pkts, packet.Packet{
					Key:  WorkerKey(w),
					Size: uint32(cfg.MTU),
					Seq:  uint32(j),
					Time: t,
					OW: packet.OWHeader{
						UserSignal:    uint64(iter),
						HasUserSignal: true,
					},
				})
				t += int64(perPkt)
			}
			if t > iterEnd {
				iterEnd = t
			}
		}
		// The server's update broadcast (small) after the barrier.
		for w := 0; w < cfg.Workers; w++ {
			pkts = append(pkts, packet.Packet{
				Key:  WorkerKey(w).Reverse(),
				Size: uint32(cfg.MTU),
				Time: iterEnd,
				OW:   packet.OWHeader{UserSignal: uint64(iter), HasUserSignal: true},
			})
		}
		now = iterEnd + 50_000 // barrier + scheduling gap
	}
	// Stable sort by time: the per-worker streams interleave.
	sortPackets(pkts)
	return pkts
}

// sortPackets sorts by time, stable for equal timestamps.
func sortPackets(pkts []packet.Packet) {
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
}

// IterationTimes computes the exact per-worker per-iteration transfer
// durations (first-to-last gradient packet), the ground truth Exp#3
// compares the in-network measurement against.
func IterationTimes(pkts []packet.Packet, workers, iterations int) [][]int64 {
	type span struct{ first, last int64 }
	spans := make([]map[int]*span, workers)
	for w := range spans {
		spans[w] = make(map[int]*span)
	}
	for i := range pkts {
		p := &pkts[i]
		if !p.OW.HasUserSignal {
			continue
		}
		for w := 0; w < workers; w++ {
			if p.Key == WorkerKey(w) {
				s, ok := spans[w][int(p.OW.UserSignal)]
				if !ok {
					s = &span{first: p.Time, last: p.Time}
					spans[w][int(p.OW.UserSignal)] = s
				}
				if p.Time < s.first {
					s.first = p.Time
				}
				if p.Time > s.last {
					s.last = p.Time
				}
			}
		}
	}
	out := make([][]int64, workers)
	for w := range out {
		out[w] = make([]int64, iterations)
		for i := 0; i < iterations; i++ {
			if s, ok := spans[w][i]; ok {
				out[w][i] = s.last - s.first
			}
		}
	}
	return out
}
