package dml

import (
	"sort"
	"testing"
)

func TestRatioSchedule(t *testing.T) {
	cfg := DefaultConfig(1)
	cases := map[int]int{0: 2, 15: 2, 16: 4, 31: 4, 32: 8, 80: 64}
	for iter, want := range cases {
		if got := cfg.Ratio(iter); got != want {
			t.Fatalf("Ratio(%d) = %d want %d", iter, got, want)
		}
	}
	// The cap holds.
	if got := cfg.Ratio(10000); got != cfg.MaxRatio {
		t.Fatalf("uncapped ratio: %d", got)
	}
}

func TestGenerateSortedAndSignalled(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Iterations = 20
	pkts := Generate(cfg)
	if len(pkts) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time }) {
		t.Fatal("trace not sorted")
	}
	lastIter := uint64(0)
	for i := range pkts {
		if !pkts[i].OW.HasUserSignal {
			t.Fatal("packet without iteration signal")
		}
		if pkts[i].OW.UserSignal < lastIter {
			// Signals are monotone along the trace (barrier-synchronized).
			t.Fatalf("iteration went backwards at packet %d", i)
		}
		lastIter = pkts[i].OW.UserSignal
	}
	if lastIter != uint64(cfg.Iterations-1) {
		t.Fatalf("last iteration = %d", lastIter)
	}
}

func TestVolumeShrinksWithCompression(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Iterations = 48
	pkts := Generate(cfg)
	perIter := make([]int, cfg.Iterations)
	for i := range pkts {
		perIter[pkts[i].OW.UserSignal]++
	}
	// Iteration 16 uses ratio 4 vs ratio 2 before: roughly half volume.
	if perIter[16] >= perIter[15] {
		t.Fatalf("compression did not shrink volume: iter15=%d iter16=%d", perIter[15], perIter[16])
	}
	if perIter[32] >= perIter[16] {
		t.Fatalf("second doubling had no effect: %d vs %d", perIter[32], perIter[16])
	}
}

func TestIterationTimesShrink(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Iterations = 48
	pkts := Generate(cfg)
	times := IterationTimes(pkts, cfg.Workers, cfg.Iterations)
	for w := 0; w < cfg.Workers; w++ {
		if times[w][0] == 0 {
			t.Fatalf("worker %d iteration 0 has zero duration", w)
		}
		if times[w][16] >= times[w][0] {
			t.Fatalf("worker %d: transfer time did not drop with compression (%d vs %d)",
				w, times[w][16], times[w][0])
		}
	}
	// Workers have different speeds, so their durations differ.
	if times[0][0] == times[1][0] && times[1][0] == times[2][0] {
		t.Fatal("workers suspiciously identical")
	}
}

func TestWorkerKeysDistinct(t *testing.T) {
	seen := map[uint32]bool{}
	for w := 0; w < 3; w++ {
		k := WorkerKey(w)
		if seen[k.SrcIP] {
			t.Fatal("duplicate worker IP")
		}
		seen[k.SrcIP] = true
		if k.DstIP != WorkerKey(0).DstIP {
			t.Fatal("workers must share the parameter server")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Iterations = 10
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Key != b[i].Key {
			t.Fatalf("packet %d differs", i)
		}
	}
}
