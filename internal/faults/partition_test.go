package faults

import "testing"

func TestPartitionScheduleNilSafe(t *testing.T) {
	var s *PartitionSchedule
	if s.RenewCut(1) || s.CkptCut(1) || s.Any(1) {
		t.Fatal("nil schedule injected a partition")
	}
	if gray, d := s.GrayAt(1); gray || d != 0 {
		t.Fatal("nil schedule injected gray slowness")
	}
	if s.Drift() != 0 {
		t.Fatal("nil schedule drifted")
	}
}

func TestPartitionScheduleZeroValueHealthy(t *testing.T) {
	s := &PartitionSchedule{Seed: 7}
	for sw := uint64(0); sw < 1000; sw++ {
		if s.Any(sw) {
			t.Fatalf("zero-prob schedule partitioned at boundary %d", sw)
		}
	}
}

func TestPartitionScheduleWindows(t *testing.T) {
	s := &PartitionSchedule{Windows: []PartitionWindow{{Start: 3, Len: 2}, {Start: 9, Len: 1}}}
	for sw := uint64(0); sw < 12; sw++ {
		want := (sw >= 3 && sw < 5) || sw == 9
		if got := s.RenewCut(sw); got != want {
			t.Fatalf("RenewCut(%d) = %v, want %v", sw, got, want)
		}
		if got := s.CkptCut(sw); got != want {
			t.Fatalf("CkptCut(%d) = %v, want %v", sw, got, want)
		}
		if got := s.Any(sw); got != want {
			t.Fatalf("Any(%d) = %v, want %v", sw, got, want)
		}
	}
	// A zero-length window is no window.
	empty := &PartitionSchedule{Windows: []PartitionWindow{{Start: 3, Len: 0}}}
	if empty.Any(3) {
		t.Fatal("zero-length window partitioned")
	}
}

func TestPartitionScheduleDeterministic(t *testing.T) {
	a := &PartitionSchedule{Seed: 42, Symmetric: 0.2, RenewOnly: 0.3, CkptOnly: 0.3, Gray: 0.4, DelayNs: 5}
	b := &PartitionSchedule{Seed: 42, Symmetric: 0.2, RenewOnly: 0.3, CkptOnly: 0.3, Gray: 0.4, DelayNs: 5}
	for sw := uint64(0); sw < 500; sw++ {
		if a.RenewCut(sw) != b.RenewCut(sw) || a.CkptCut(sw) != b.CkptCut(sw) || a.Any(sw) != b.Any(sw) {
			t.Fatalf("same seed diverged at boundary %d", sw)
		}
		ag, ad := a.GrayAt(sw)
		bg, bd := b.GrayAt(sw)
		if ag != bg || ad != bd {
			t.Fatalf("gray draw diverged at boundary %d", sw)
		}
	}
}

// Fault kinds hash under distinct salts: enabling one must not shift
// another's schedule — the property the whole injector family relies on.
func TestPartitionScheduleKindsIndependent(t *testing.T) {
	lone := &PartitionSchedule{Seed: 9, CkptOnly: 0.25}
	both := &PartitionSchedule{Seed: 9, CkptOnly: 0.25, RenewOnly: 0.5}
	for sw := uint64(0); sw < 1000; sw++ {
		// CkptOnly draws must be identical whether or not RenewOnly runs.
		loneHit := lone.prob(saltPartCkpt, sw) < lone.CkptOnly
		bothHit := both.prob(saltPartCkpt, sw) < both.CkptOnly
		if loneHit != bothHit {
			t.Fatalf("enabling RenewOnly shifted the CkptOnly stream at boundary %d", sw)
		}
	}
	// And the partition salts are disjoint from the crash schedule's hash:
	// a CrashSchedule and a PartitionSchedule with the same seed must not
	// produce identical decision streams.
	crash := &CrashSchedule{Seed: 9, Prob: 0.25}
	part := &PartitionSchedule{Seed: 9, Symmetric: 0.25}
	same := 0
	for sw := uint64(0); sw < 1000; sw++ {
		if crash.At(sw) == part.RenewCut(sw) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("partition stream mirrors the crash stream — salts collide")
	}
}

// Loss dominates slowness: a boundary whose renewal is cut cannot also be
// gray, so the deployment never double-charges one renewal.
func TestPartitionScheduleLossDominatesGray(t *testing.T) {
	s := &PartitionSchedule{Seed: 5, Symmetric: 1, Gray: 1, DelayNs: 7}
	for sw := uint64(0); sw < 100; sw++ {
		if gray, _ := s.GrayAt(sw); gray {
			t.Fatalf("boundary %d is both cut and gray", sw)
		}
		if !s.RenewCut(sw) {
			t.Fatalf("boundary %d should be cut", sw)
		}
	}
}

func TestPartitionScheduleGrayDefaultsDelay(t *testing.T) {
	s := &PartitionSchedule{Seed: 5, Gray: 1}
	gray, d := s.GrayAt(0)
	if !gray || d != 1_000_000 {
		t.Fatalf("GrayAt = %v, %d; want true, 1ms default", gray, d)
	}
	s.DelayNs = 42
	if _, d := s.GrayAt(0); d != 42 {
		t.Fatalf("explicit delay = %d, want 42", d)
	}
}

func TestPartitionScheduleRatesRoughlyMatch(t *testing.T) {
	s := &PartitionSchedule{Seed: 3, Symmetric: 0.2}
	hits := 0
	const n = 20000
	for sw := uint64(0); sw < n; sw++ {
		if s.RenewCut(sw) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("symmetric rate %.3f, want ~0.2", got)
	}
}
