package faults

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

func payload(i int) []byte {
	return []byte(fmt.Sprintf("datagram-%04d-payload", i))
}

// sendAll pushes n datagrams through the injector and returns everything
// put on the wire, including the final flush.
func sendAll(in *Injector, n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, in.Datagrams(payload(i))...)
	}
	return append(out, in.Flush()...)
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, Truncate: 0.1, Corrupt: 0.1}
	a := sendAll(New(cfg), 200)
	b := sendAll(New(cfg), 200)
	if len(a) != len(b) {
		t.Fatalf("same seed, different wire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("same seed, different datagram %d", i)
		}
	}
	if sa, sb := New(cfg), New(cfg); func() bool {
		sendAll(sa, 200)
		sendAll(sb, 200)
		return sa.Stats() != sb.Stats()
	}() {
		t.Fatal("same seed, different stats")
	}
}

func TestZeroConfigPassesThrough(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 50; i++ {
		p := payload(i)
		out := in.Datagrams(p)
		if len(out) != 1 || !bytes.Equal(out[0], p) {
			t.Fatalf("zero config altered datagram %d: %q", i, out)
		}
		// The output must not alias the caller's buffer: senders reuse it.
		p[0] ^= 0xFF
		if out[0][0] == p[0] {
			t.Fatal("output aliases the input buffer")
		}
	}
	s := in.Stats()
	if s.Events != 50 || s != (Stats{Events: 50}) {
		t.Fatalf("zero config injected faults: %+v", s)
	}
}

func TestDropAll(t *testing.T) {
	in := New(Config{Seed: 3, Drop: 1})
	if out := sendAll(in, 40); len(out) != 0 {
		t.Fatalf("drop-all leaked %d datagrams", len(out))
	}
	if s := in.Stats(); s.Dropped != 40 {
		t.Fatalf("dropped %d of 40", s.Dropped)
	}
}

func TestDuplicateAll(t *testing.T) {
	in := New(Config{Seed: 5, Duplicate: 1, MaxDuplicates: 3})
	for i := 0; i < 40; i++ {
		out := in.Datagrams(payload(i))
		if len(out) < 2 || len(out) > 4 {
			t.Fatalf("event %d: %d copies outside [2,4]", i, len(out))
		}
		for _, d := range out {
			if !bytes.Equal(d, payload(i)) {
				t.Fatalf("event %d: copy differs from original", i)
			}
		}
	}
	if s := in.Stats(); s.Duplicated == 0 {
		t.Fatal("no duplicates counted")
	}
}

func TestReorderParksAndFlushReleases(t *testing.T) {
	in := New(Config{Seed: 11, Reorder: 1, ReorderDepth: 100})
	sent := 30
	var wired [][]byte
	for i := 0; i < sent; i++ {
		wired = append(wired, in.Datagrams(payload(i))...)
	}
	if len(wired) >= sent {
		t.Fatalf("reorder-all parked nothing: %d of %d on the wire", len(wired), sent)
	}
	wired = append(wired, in.Flush()...)
	if len(wired) != sent {
		t.Fatalf("flush lost datagrams: %d of %d", len(wired), sent)
	}
	// Every payload arrives exactly once, but not in send order.
	seen := make(map[string]int)
	inOrder := true
	for i, d := range wired {
		seen[string(d)]++
		if !bytes.Equal(d, payload(i)) {
			inOrder = false
		}
	}
	for i := 0; i < sent; i++ {
		if seen[string(payload(i))] != 1 {
			t.Fatalf("payload %d seen %d times", i, seen[string(payload(i))])
		}
	}
	if inOrder {
		t.Fatal("reorder-all delivered in send order")
	}
	if s := in.Stats(); s.Reordered != sent {
		t.Fatalf("reordered %d of %d", s.Reordered, sent)
	}
}

func TestTruncateAndCorrupt(t *testing.T) {
	tin := New(Config{Seed: 13, Truncate: 1})
	for i := 0; i < 20; i++ {
		p := payload(i)
		for _, d := range tin.Datagrams(p) {
			if len(d) >= len(p) || !bytes.Equal(d, p[:len(d)]) {
				t.Fatalf("truncation produced %q from %q", d, p)
			}
		}
	}

	cin := New(Config{Seed: 13, Corrupt: 1})
	for i := 0; i < 20; i++ {
		p := payload(i)
		out := cin.Datagrams(p)
		if len(out) != 1 || len(out[0]) != len(p) {
			t.Fatalf("corruption changed datagram count/length")
		}
		diff := 0
		for j := range p {
			if out[0][j] != p[j] {
				diff++
				if b := out[0][j] ^ p[j]; b&(b-1) != 0 {
					t.Fatalf("corruption flipped more than one bit in byte %d", j)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("corruption touched %d bytes, want 1", diff)
		}
	}
}

// TestScheduleAlignment: enabling one fault kind must not shift another's
// schedule — the per-event draw count is fixed.
func TestScheduleAlignment(t *testing.T) {
	droppedIdx := func(cfg Config) []int {
		in := New(cfg)
		var idx []int
		for i := 0; i < 300; i++ {
			if len(in.Datagrams([]byte("xxxxxxxxxxxxxxxx"))) == 0 && len(in.Flush()) == 0 {
				idx = append(idx, i)
			}
		}
		return idx
	}
	base := droppedIdx(Config{Seed: 42, Drop: 0.3})
	with := droppedIdx(Config{Seed: 42, Drop: 0.3, Corrupt: 1, Truncate: 0.0, VerbError: 0.0})
	if len(base) != len(with) {
		t.Fatalf("corruption shifted the drop schedule: %d vs %d drops", len(base), len(with))
	}
	for i := range base {
		if base[i] != with[i] {
			t.Fatalf("drop schedule diverged at event %d", base[i])
		}
	}
}

func TestPacketAction(t *testing.T) {
	in := New(Config{Seed: 9, Drop: 1})
	for i := 0; i < 10; i++ {
		if a := in.Packet(); !a.Drop {
			t.Fatal("drop-all packet survived")
		}
	}
	in = New(Config{Seed: 9, Duplicate: 1, Delay: 1, ExtraDelay: 77})
	for i := 0; i < 10; i++ {
		a := in.Packet()
		if a.Drop || a.Duplicates < 1 || a.ExtraDelay != 77 {
			t.Fatalf("unexpected action %+v", a)
		}
	}
}

func TestLinkFaultTargetsOneLink(t *testing.T) {
	in := New(Config{Seed: 2, Drop: 1})
	f := in.LinkFault(1)
	if a := f(nil, 0); a.Drop || a.Duplicates != 0 || a.ExtraDelay != 0 {
		t.Fatalf("wrong hop got action %+v", a)
	}
	if s := in.Stats(); s.Events != 0 {
		t.Fatal("wrong hop consumed a PRNG draw")
	}
	if a := f(nil, 1); !a.Drop {
		t.Fatal("target hop not dropped")
	}
}

func TestVerb(t *testing.T) {
	in := New(Config{Seed: 4, VerbError: 1})
	for i := 0; i < 5; i++ {
		if err := in.Verb("write", i); err == nil {
			t.Fatal("verb-error-all verb completed")
		}
	}
	if s := in.Stats(); s.VerbErrors != 5 {
		t.Fatalf("counted %d verb errors, want 5", s.VerbErrors)
	}
	in = New(Config{Seed: 4})
	if err := in.Verb("fetch_add", 0); err != nil {
		t.Fatalf("fault-free verb failed: %v", err)
	}
}

// fakeConn records writes; it implements just enough of net.PacketConn.
type fakeConn struct {
	writes [][]byte
}

type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

func (c *fakeConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	c.writes = append(c.writes, append([]byte(nil), b...))
	return len(b), nil
}
func (c *fakeConn) ReadFrom([]byte) (int, net.Addr, error) { return 0, nil, nil }
func (c *fakeConn) Close() error                           { return nil }
func (c *fakeConn) LocalAddr() net.Addr                    { return fakeAddr("local") }
func (c *fakeConn) SetDeadline(time.Time) error            { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error        { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error       { return nil }

func TestPacketConnDropHidesLoss(t *testing.T) {
	fc := &fakeConn{}
	pc := WrapPacketConn(fc, New(Config{Seed: 1, Drop: 1}), nil)
	n, err := pc.WriteTo(payload(0), fakeAddr("ctrl"))
	if err != nil || n != len(payload(0)) {
		t.Fatalf("sender learned of the drop: n=%d err=%v", n, err)
	}
	if len(fc.writes) != 0 || pc.Delivered() != 0 {
		t.Fatal("dropped datagram reached the wire")
	}
}

func TestPacketConnFilterPassthrough(t *testing.T) {
	fc := &fakeConn{}
	// Fault only datagrams starting with 'F'; drop them all.
	pc := WrapPacketConn(fc, New(Config{Seed: 1, Drop: 1}), func(b []byte) bool {
		return len(b) > 0 && b[0] == 'F'
	})
	if _, err := pc.WriteTo([]byte("Fault-me"), fakeAddr("ctrl")); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.WriteTo([]byte("keep-me"), fakeAddr("ctrl")); err != nil {
		t.Fatal(err)
	}
	if len(fc.writes) != 1 || string(fc.writes[0]) != "keep-me" {
		t.Fatalf("filter misrouted: %q", fc.writes)
	}
	if pc.Delivered() != 1 {
		t.Fatalf("Delivered() = %d, want 1", pc.Delivered())
	}
}

func TestPacketConnFlushReleasesParked(t *testing.T) {
	fc := &fakeConn{}
	pc := WrapPacketConn(fc, New(Config{Seed: 6, Reorder: 1, ReorderDepth: 100}), nil)
	const sent = 10
	for i := 0; i < sent; i++ {
		if _, err := pc.WriteTo(payload(i), fakeAddr("ctrl")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(fc.writes) != sent || pc.Delivered() != sent {
		t.Fatalf("flush delivered %d of %d (Delivered=%d)", len(fc.writes), sent, pc.Delivered())
	}
}
