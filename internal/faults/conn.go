package faults

import (
	"net"
	"sync"
	"sync/atomic"
)

// PacketConn wraps a net.PacketConn, pushing every outbound datagram
// through an Injector before it reaches the wire — the lossy network
// between a switch's uplink and controller.Collector. Reads are untouched
// (faults are injected once, on the send side, so the schedule stays
// deterministic regardless of receiver goroutine timing).
//
// Reordered datagrams are parked inside the injector and released behind
// later sends; Flush forces them out before a delivery barrier. Because a
// parked datagram loses its destination, a PacketConn tracks the first
// WriteTo address and requires every subsequent faulted write to target
// it — the telemetry uplink always has exactly one collector.
type PacketConn struct {
	net.PacketConn
	in     *Injector
	filter func([]byte) bool

	mu        sync.Mutex
	dst       net.Addr
	delivered atomic.Int64
}

// WrapPacketConn wraps conn. filter, when non-nil, selects the datagrams
// subject to faults (by raw bytes, e.g. on the wire flag octet); the rest
// pass through untouched. A nil filter faults everything.
func WrapPacketConn(conn net.PacketConn, in *Injector, filter func([]byte) bool) *PacketConn {
	return &PacketConn{PacketConn: conn, in: in, filter: filter}
}

// WriteTo sends b through the fault schedule. It reports b fully written
// even when the schedule swallowed it: the sender must not learn of the
// loss — detecting it is the reliability protocol's job.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if c.filter != nil && !c.filter(b) {
		n, err := c.PacketConn.WriteTo(b, addr)
		if err == nil {
			c.delivered.Add(1)
		}
		return n, err
	}
	c.mu.Lock()
	if c.dst == nil {
		c.dst = addr
	}
	c.mu.Unlock()
	for _, d := range c.in.Datagrams(b) {
		if len(d) == 0 {
			continue // truncated to nothing: indistinguishable from a drop
		}
		if _, err := c.PacketConn.WriteTo(d, addr); err != nil {
			return 0, err
		}
		c.delivered.Add(1)
	}
	return len(b), nil
}

// Flush releases every datagram parked for reordering. Call it before a
// delivery barrier (e.g. before polling the collector's ingest counters).
func (c *PacketConn) Flush() error {
	c.mu.Lock()
	dst := c.dst
	c.mu.Unlock()
	for _, d := range c.in.Flush() {
		if len(d) == 0 || dst == nil {
			continue
		}
		if _, err := c.PacketConn.WriteTo(d, dst); err != nil {
			return err
		}
		c.delivered.Add(1)
	}
	return nil
}

// Delivered reports the datagrams actually put on the wire (fault
// survivors plus duplicates plus filtered passthroughs) — the count a
// delivery barrier must compare the receiver's ingest counters against.
func (c *PacketConn) Delivered() int { return int(c.delivered.Load()) }
