package faults

import (
	"os"
	"strconv"
)

// ExtraSeedsEnv is the environment variable nightly CI sets to widen the
// chaos seed sweeps beyond the fixed per-test tables.
const ExtraSeedsEnv = "OMNIWINDOW_EXTRA_SEEDS"

// ExtraSeeds returns additional deterministic chaos seeds derived from
// base when OMNIWINDOW_EXTRA_SEEDS asks for a deeper sweep (its value is
// the number of extra seeds). It returns nil in ordinary runs — unset,
// zero or unparseable — so PR-time suites keep their small fixed tables
// and only scheduled runs pay for the sweep. The derived seeds start at
// 1000+100*base, far from the hand-picked single-digit seeds in the test
// tables, and every (base, env) pair yields the same list: a nightly
// failure names a seed that replays locally with the same env set.
func ExtraSeeds(base uint64) []uint64 {
	n, err := strconv.Atoi(os.Getenv(ExtraSeedsEnv))
	if err != nil || n <= 0 {
		return nil
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = 1000 + 100*base + uint64(i)
	}
	return seeds
}
