package faults

import "errors"

// Injected disk-fault sentinels. The durable layer classifies against
// these (alongside the real syscall equivalents) to decide between
// bounded retry and immediate degraded-durability: an EIO is transient —
// the next attempt redraws its fate — while ENOSPC is a state, not an
// event, and retrying into a full disk is wasted work.
var (
	// ErrDiskEIO is a transient per-operation I/O failure (the injected
	// analogue of a device-level EIO).
	ErrDiskEIO = errors.New("faults: injected disk EIO")
	// ErrDiskENOSPC is a full-disk failure; it persists for as long as
	// the schedule's ENOSPC window does.
	ErrDiskENOSPC = errors.New("faults: injected ENOSPC")
)

// DiskSchedule describes the failure behaviour of the durable layer's
// storage path (internal/durable). Like CrashSchedule and RDMASchedule it
// is stateless and deterministic: every fault hashes (Seed, operation
// index) under its own salt, so enabling one fault kind never shifts
// another's schedule — and never shifts the crash/RDMA/switch schedules
// either. Operation indices are issued by the durable FaultFS wrapper,
// one per file-data operation, so a retried write redraws its fate at a
// fresh index. The zero value (and a nil schedule) is a healthy disk.
type DiskSchedule struct {
	// Seed parameterizes every hash below.
	Seed uint64

	// WriteEIO is the probability a write operation fails with a
	// transient I/O error (no bytes reach the medium).
	WriteEIO float64
	// ReadEIO is the probability a read operation fails transiently.
	ReadEIO float64
	// ShortWrite is the probability a write tears: only a prefix of the
	// buffer reaches the medium before the failure is reported.
	ShortWrite float64
	// BitRot is the probability a write completes "successfully" but the
	// medium stores one flipped byte — silent corruption that only a
	// CRC re-read (the scrubber, or recovery) can detect.
	BitRot float64
	// SlowIO is the probability an operation completes correctly but
	// slowly; the latency is charged to the deployment's virtual-time
	// budget, never to wall clock.
	SlowIO float64
	// SlowIOLatency is the virtual latency of a slow operation in
	// nanoseconds; 0 defaults to 1ms.
	SlowIOLatency int64

	// ENOSPC is the probability an individual write fails with a
	// full-disk error (on top of the sustained window below).
	ENOSPC float64
	// ENOSPCStart/ENOSPCLen define a sustained full-disk window: every
	// write with operation index in [ENOSPCStart, ENOSPCStart+ENOSPCLen)
	// fails with ENOSPC, modelling a disk that fills up and is later
	// cleaned. ENOSPCLen 0 means no window.
	ENOSPCStart uint64
	ENOSPCLen   uint64
}

// Distinct salts keep the per-kind hash streams independent.
const (
	saltWriteEIO   = 0x4449534B5745_01 // "DISKWE"
	saltReadEIO    = 0x4449534B5245_02 // "DISKRE"
	saltShortWrite = 0x4449534B5357_03 // "DISKSW"
	saltBitRot     = 0x4449534B4252_04 // "DISKBR"
	saltSlowIO     = 0x4449534B534C_05 // "DISKSL"
	saltENOSPC     = 0x4449534B4E53_06 // "DISKNS"
	saltRotSpot    = 0x4449534B5253_07 // "DISKRS"
)

// prob maps a hash to [0, 1) exactly as CrashSchedule.At does.
func (s *DiskSchedule) prob(salt, op uint64) float64 {
	h := splitmix64(s.Seed ^ salt ^ splitmix64(op))
	return float64(h>>11) / float64(1<<53)
}

// WriteEIOAt reports whether write operation op fails transiently.
// Nil-safe.
func (s *DiskSchedule) WriteEIOAt(op uint64) bool {
	if s == nil || s.WriteEIO <= 0 {
		return false
	}
	return s.prob(saltWriteEIO, op) < s.WriteEIO
}

// ReadEIOAt reports whether read operation op fails transiently.
// Nil-safe.
func (s *DiskSchedule) ReadEIOAt(op uint64) bool {
	if s == nil || s.ReadEIO <= 0 {
		return false
	}
	return s.prob(saltReadEIO, op) < s.ReadEIO
}

// ShortWriteAt reports whether write operation op tears. Nil-safe.
func (s *DiskSchedule) ShortWriteAt(op uint64) bool {
	if s == nil || s.ShortWrite <= 0 {
		return false
	}
	return s.prob(saltShortWrite, op) < s.ShortWrite
}

// BitRotAt reports whether write operation op silently corrupts one
// stored byte. Nil-safe.
func (s *DiskSchedule) BitRotAt(op uint64) bool {
	if s == nil || s.BitRot <= 0 {
		return false
	}
	return s.prob(saltBitRot, op) < s.BitRot
}

// BitRotSpot returns the deterministic corruption for operation op over
// an n-byte write: the byte index to damage and the non-zero XOR mask to
// damage it with.
func (s *DiskSchedule) BitRotSpot(op uint64, n int) (idx int, mask byte) {
	if n <= 0 {
		return 0, 1
	}
	h := splitmix64(s.Seed ^ saltRotSpot ^ splitmix64(op))
	return int(h % uint64(n)), byte(1 << ((h >> 32) % 8))
}

// SlowIOAt reports whether operation op is slow; the second return is the
// virtual latency to charge. Nil-safe.
func (s *DiskSchedule) SlowIOAt(op uint64) (bool, int64) {
	if s == nil || s.SlowIO <= 0 {
		return false, 0
	}
	if s.prob(saltSlowIO, op) >= s.SlowIO {
		return false, 0
	}
	lat := s.SlowIOLatency
	if lat <= 0 {
		lat = 1_000_000 // 1ms
	}
	return true, lat
}

// ENOSPCAt reports whether write operation op fails with a full disk —
// inside the sustained window, or by the per-operation draw. Nil-safe.
func (s *DiskSchedule) ENOSPCAt(op uint64) bool {
	if s == nil {
		return false
	}
	if s.ENOSPCLen > 0 && op >= s.ENOSPCStart && op < s.ENOSPCStart+s.ENOSPCLen {
		return true
	}
	if s.ENOSPC <= 0 {
		return false
	}
	return s.prob(saltENOSPC, op) < s.ENOSPC
}
