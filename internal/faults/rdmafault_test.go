package faults

import "testing"

// TestRDMAScheduleNilSafe: a nil schedule is a healthy transport.
func TestRDMAScheduleNilSafe(t *testing.T) {
	var s *RDMASchedule
	if s.VerbErrorAt(0, 0) || s.PSNDropAt(0, 0) || s.QPErrorAt(0) ||
		s.MRInvalidateAt(0) || s.OutageAt(0) {
		t.Fatal("nil RDMASchedule injected a fault")
	}
}

// TestRDMAScheduleDeterministic: the same (seed, input) pair always draws
// the same fate — schedules are reproducible test cases.
func TestRDMAScheduleDeterministic(t *testing.T) {
	a := &RDMASchedule{Seed: 7, VerbError: 0.3, PSNDrop: 0.3,
		QPError: CrashSchedule{Prob: 0.3}, MRInvalidate: CrashSchedule{Prob: 0.3}}
	b := &RDMASchedule{Seed: 7, VerbError: 0.3, PSNDrop: 0.3,
		QPError: CrashSchedule{Prob: 0.3}, MRInvalidate: CrashSchedule{Prob: 0.3}}
	for idx := uint64(0); idx < 500; idx++ {
		for attempt := 0; attempt < 4; attempt++ {
			if a.VerbErrorAt(idx, attempt) != b.VerbErrorAt(idx, attempt) {
				t.Fatalf("VerbErrorAt(%d,%d) not deterministic", idx, attempt)
			}
			if a.PSNDropAt(idx, attempt) != b.PSNDropAt(idx, attempt) {
				t.Fatalf("PSNDropAt(%d,%d) not deterministic", idx, attempt)
			}
		}
		if a.QPErrorAt(idx) != b.QPErrorAt(idx) || a.MRInvalidateAt(idx) != b.MRInvalidateAt(idx) {
			t.Fatalf("boundary fault at %d not deterministic", idx)
		}
	}
}

// TestRDMAScheduleKindsIndependent: enabling one fault kind must not
// shift another's schedule — each kind hashes under its own salt.
func TestRDMAScheduleKindsIndependent(t *testing.T) {
	verbOnly := &RDMASchedule{Seed: 11, VerbError: 0.4}
	both := &RDMASchedule{Seed: 11, VerbError: 0.4, PSNDrop: 0.4,
		QPError: CrashSchedule{Prob: 0.4}}
	for idx := uint64(0); idx < 500; idx++ {
		if verbOnly.VerbErrorAt(idx, 0) != both.VerbErrorAt(idx, 0) {
			t.Fatalf("enabling PSNDrop/QPError shifted VerbErrorAt(%d)", idx)
		}
	}
	// And the boundary kinds must not mirror each other: with identical
	// seeds and probabilities, QPError and MRInvalidate decisions differ
	// somewhere (independent salts).
	s := &RDMASchedule{Seed: 3, QPError: CrashSchedule{Prob: 0.5},
		MRInvalidate: CrashSchedule{Prob: 0.5}}
	same := true
	for sw := uint64(0); sw < 200; sw++ {
		if s.QPErrorAt(sw) != s.MRInvalidateAt(sw) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("QPError and MRInvalidate schedules are identical — salts not independent")
	}
}

// TestRDMAScheduleAttemptsIndependent: a retried verb redraws its fate;
// with a 50% error rate some verb must fail attempt 0 and pass attempt 1.
func TestRDMAScheduleAttemptsIndependent(t *testing.T) {
	s := &RDMASchedule{Seed: 5, VerbError: 0.5}
	recovered := false
	for idx := uint64(0); idx < 200; idx++ {
		if s.VerbErrorAt(idx, 0) && !s.VerbErrorAt(idx, 1) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("no verb ever succeeded on retry — attempts are not independent draws")
	}
}

// TestRDMAScheduleOutageWindow: OutageAt covers exactly
// [OutageStart, OutageStart+OutageLen).
func TestRDMAScheduleOutageWindow(t *testing.T) {
	s := &RDMASchedule{OutageStart: 3, OutageLen: 2}
	want := map[uint64]bool{2: false, 3: true, 4: true, 5: false}
	for sw, w := range want {
		if s.OutageAt(sw) != w {
			t.Fatalf("OutageAt(%d) = %v, want %v", sw, s.OutageAt(sw), w)
		}
	}
	if (&RDMASchedule{OutageStart: 3}).OutageAt(3) {
		t.Fatal("OutageLen 0 must mean no outage")
	}
}

// TestRDMAScheduleFixedBoundaries: Fixed lists work through the salted
// wrappers (the chaos suite pins QP errors to exact boundaries).
func TestRDMAScheduleFixedBoundaries(t *testing.T) {
	s := &RDMASchedule{QPError: CrashSchedule{Fixed: []uint64{2}},
		MRInvalidate: CrashSchedule{Fixed: []uint64{4}}}
	if !s.QPErrorAt(2) || s.QPErrorAt(3) {
		t.Fatal("QPError Fixed boundary not honoured")
	}
	if !s.MRInvalidateAt(4) || s.MRInvalidateAt(2) {
		t.Fatal("MRInvalidate Fixed boundary not honoured")
	}
}
