package faults

// RDMASchedule describes the failure behaviour of the RDMA collection
// transport (internal/rdma). Like CrashSchedule and SwitchSchedule it is
// stateless and deterministic: per-verb faults hash (Seed, verb index,
// attempt) and boundary faults hash (Seed, boundary), each fault kind
// under its own salt, so enabling one kind never shifts another's
// schedule and a retried verb redraws its fate independently per attempt.
// The zero value (and a nil schedule) is a healthy transport.
type RDMASchedule struct {
	// Seed parameterizes every hash below.
	Seed uint64

	// VerbError is the probability a verb completes with a CQ error
	// (RNR-style transient: the requester sees the failure immediately
	// and may retry the verb).
	VerbError float64

	// PSNDrop is the probability a verb's request packet is silently
	// lost in flight: the requester believes it sent, the memory region
	// never sees it, and only the controller-side PSN-gap scan at the
	// next drain notices the hole.
	PSNDrop float64

	// QPError fires an asynchronous queue-pair error at matching
	// sub-window boundaries: the QP transitions to Error and every send
	// until the next successful recovery falls back to the packet path.
	QPError CrashSchedule

	// MRInvalidate destroys the registered memory region at matching
	// boundaries (before that boundary's drain): applied-but-undrained
	// verbs are wiped and must be replayed from the transport's pending
	// window; anything outside the window is permanently lost.
	MRInvalidate CrashSchedule

	// OutageStart/OutageLen define a sustained outage: QP recovery fails
	// for every boundary in [OutageStart, OutageStart+OutageLen), so the
	// transport stays in Error and the deployment rides the packet path
	// until the outage lifts. OutageLen 0 means no outage.
	OutageStart uint64
	OutageLen   uint64
}

// Distinct salts keep the per-kind hash streams independent.
const (
	saltVerbError    = 0x52444D415645_01 // "RDMAVE"
	saltPSNDrop      = 0x52444D415053_02 // "RDMAPS"
	saltQPError      = 0x52444D415150_03 // "RDMAQP"
	saltMRInvalidate = 0x52444D414D52_04 // "RDMAMR"
)

// prob maps a hash to [0, 1) exactly as CrashSchedule.At does.
func (s *RDMASchedule) prob(salt, x uint64) float64 {
	h := splitmix64(s.Seed ^ salt ^ splitmix64(x))
	return float64(h>>11) / float64(1<<53)
}

// verbKey folds (verb index, attempt) into one hash input. Attempts are
// small (bounded retries), so the golden-ratio stride keeps redraws for
// the same verb independent without colliding across verbs.
func verbKey(idx uint64, attempt int) uint64 {
	return idx + uint64(attempt)*0x9E3779B97F4A7C15
}

// VerbErrorAt reports whether verb idx's attempt completes with an
// injected CQ error. Nil-safe.
func (s *RDMASchedule) VerbErrorAt(idx uint64, attempt int) bool {
	if s == nil || s.VerbError <= 0 {
		return false
	}
	return s.prob(saltVerbError, verbKey(idx, attempt)) < s.VerbError
}

// PSNDropAt reports whether verb idx's attempt is lost in flight.
// Nil-safe.
func (s *RDMASchedule) PSNDropAt(idx uint64, attempt int) bool {
	if s == nil || s.PSNDrop <= 0 {
		return false
	}
	return s.prob(saltPSNDrop, verbKey(idx, attempt)) < s.PSNDrop
}

// QPErrorAt reports whether the QP faults to Error at boundary sw.
// Nil-safe.
func (s *RDMASchedule) QPErrorAt(sw uint64) bool {
	if s == nil {
		return false
	}
	c := s.QPError
	if c.Prob <= 0 && len(c.Fixed) == 0 {
		return false
	}
	c.Seed ^= saltQPError
	return c.At(sw)
}

// MRInvalidateAt reports whether the registered region is destroyed at
// boundary sw. Nil-safe.
func (s *RDMASchedule) MRInvalidateAt(sw uint64) bool {
	if s == nil {
		return false
	}
	c := s.MRInvalidate
	if c.Prob <= 0 && len(c.Fixed) == 0 {
		return false
	}
	c.Seed ^= saltMRInvalidate
	return c.At(sw)
}

// OutageAt reports whether QP recovery is impossible at boundary sw.
// Nil-safe.
func (s *RDMASchedule) OutageAt(sw uint64) bool {
	if s == nil || s.OutageLen == 0 {
		return false
	}
	return sw >= s.OutageStart && sw < s.OutageStart+s.OutageLen
}
