package faults

// SwitchSchedule describes the failure behaviour of one simulated switch.
// Like CrashSchedule it is boundary-driven and stateless: each fault kind
// hashes (Seed, boundary) independently, so enabling reboots never shifts
// the stall schedule and vice versa. The zero value is a healthy switch.
type SwitchSchedule struct {
	// Reboot fires a power-cycle at matching sub-window boundaries: the
	// switch loses all register state (flowkey trackers, app slots, the
	// sub-window counter and any in-progress collection) and comes back
	// unsynchronized at epoch 0 until it resyncs.
	Reboot CrashSchedule

	// Stall makes the switch miss its collection deadline for matching
	// sub-windows: AFRs for that sub-window arrive StallDelay boundaries
	// late (default 1). The data is not lost — just tardy — which is the
	// failure mode quarantine exists to catch.
	Stall CrashSchedule

	// StallDelay is how many boundaries a stalled collection slips.
	// Zero means 1.
	StallDelay int

	// ClockDriftPerSub skews the switch's local clock by this many
	// nanoseconds per elapsed sub-window, modelling a slow or fast
	// oscillator. Positive drift runs the clock fast. Timeout-signalled
	// deployments fed through a drifting hop terminate sub-windows early
	// or late relative to the fabric, which the stamping protocol must
	// absorb.
	ClockDriftPerSub int64
}

// RebootAt reports whether the switch power-cycles at boundary sw.
// Nil-safe: a nil schedule is a healthy switch.
func (s *SwitchSchedule) RebootAt(sw uint64) bool {
	if s == nil {
		return false
	}
	return s.Reboot.At(sw)
}

// StallAt reports whether the switch's collection for sub-window sw is
// delayed, and by how many boundaries.
func (s *SwitchSchedule) StallAt(sw uint64) (bool, int) {
	if s == nil || !s.Stall.At(sw) {
		return false, 0
	}
	d := s.StallDelay
	if d <= 0 {
		d = 1
	}
	return true, d
}

// DriftAt returns the switch's accumulated clock skew after sw elapsed
// sub-windows.
func (s *SwitchSchedule) DriftAt(sw uint64) int64 {
	if s == nil {
		return 0
	}
	return s.ClockDriftPerSub * int64(sw)
}
