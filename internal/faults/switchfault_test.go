package faults

import "testing"

func TestSwitchScheduleNilSafe(t *testing.T) {
	var s *SwitchSchedule
	if s.RebootAt(3) {
		t.Fatal("nil schedule rebooted")
	}
	if ok, _ := s.StallAt(3); ok {
		t.Fatal("nil schedule stalled")
	}
	if s.DriftAt(10) != 0 {
		t.Fatal("nil schedule drifted")
	}
}

func TestSwitchScheduleZeroHealthy(t *testing.T) {
	s := &SwitchSchedule{}
	for sw := uint64(0); sw < 100; sw++ {
		if s.RebootAt(sw) {
			t.Fatalf("zero schedule rebooted at %d", sw)
		}
		if ok, _ := s.StallAt(sw); ok {
			t.Fatalf("zero schedule stalled at %d", sw)
		}
	}
}

func TestSwitchScheduleFixedReboot(t *testing.T) {
	s := &SwitchSchedule{Reboot: CrashSchedule{Fixed: []uint64{4, 9}}}
	for sw := uint64(0); sw < 12; sw++ {
		want := sw == 4 || sw == 9
		if s.RebootAt(sw) != want {
			t.Fatalf("RebootAt(%d) = %v, want %v", sw, !want, want)
		}
	}
}

// Enabling one fault kind must not shift the other's schedule: the two
// draws are independent stateless hashes of (their own seed, boundary).
func TestSwitchScheduleIndependentDraws(t *testing.T) {
	rebootOnly := &SwitchSchedule{Reboot: CrashSchedule{Seed: 7, Prob: 0.3}}
	both := &SwitchSchedule{
		Reboot: CrashSchedule{Seed: 7, Prob: 0.3},
		Stall:  CrashSchedule{Seed: 8, Prob: 0.5},
	}
	for sw := uint64(0); sw < 200; sw++ {
		if rebootOnly.RebootAt(sw) != both.RebootAt(sw) {
			t.Fatalf("stall schedule perturbed reboot draw at %d", sw)
		}
	}
}

func TestSwitchScheduleStallDelayDefault(t *testing.T) {
	s := &SwitchSchedule{Stall: CrashSchedule{Fixed: []uint64{2}}}
	ok, d := s.StallAt(2)
	if !ok || d != 1 {
		t.Fatalf("StallAt(2) = %v,%d, want true,1", ok, d)
	}
	s.StallDelay = 3
	if _, d := s.StallAt(2); d != 3 {
		t.Fatalf("StallDelay override ignored: got %d", d)
	}
}

func TestSwitchScheduleDrift(t *testing.T) {
	s := &SwitchSchedule{ClockDriftPerSub: -250}
	if got := s.DriftAt(4); got != -1000 {
		t.Fatalf("DriftAt(4) = %d, want -1000", got)
	}
	if got := s.DriftAt(0); got != 0 {
		t.Fatalf("DriftAt(0) = %d, want 0", got)
	}
}
