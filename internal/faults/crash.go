package faults

// CrashSchedule decides, deterministically, whether the controller process
// dies at a given sub-window boundary. It is deliberately NOT drawn from
// the Injector's PRNG stream: every Injector event draws a fixed number of
// values so enabling one fault kind never shifts another's schedule, and
// crash decisions happen at boundaries, not events — hashing (Seed,
// boundary) keeps crashes reproducible per seed while leaving every
// existing fault schedule untouched.
type CrashSchedule struct {
	// Seed parameterizes the per-boundary hash.
	Seed uint64
	// Prob is the crash probability per sub-window boundary.
	Prob float64
	// Fixed lists boundaries that always crash, regardless of Prob —
	// the kill-and-restart suite uses it to hit every boundary in turn.
	Fixed []uint64
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed stateless
// hash (the same construction seeds xoshiro generators).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// At reports whether the schedule crashes the controller at boundary sw.
func (c CrashSchedule) At(sw uint64) bool {
	for _, f := range c.Fixed {
		if f == sw {
			return true
		}
	}
	if c.Prob <= 0 {
		return false
	}
	h := splitmix64(c.Seed ^ splitmix64(sw))
	return float64(h>>11)/float64(1<<53) < c.Prob
}
