// Package faults is a seeded, deterministic fault-injection layer for the
// delivery paths between switches and the controller. Real deployments
// lose, duplicate, reorder, delay, truncate and corrupt datagrams; the
// collect-and-reset reliability protocol (§8) only deserves trust if it is
// exercised under exactly those conditions. An Injector draws every fault
// decision from one seeded PRNG in a fixed per-event order, so a given
// (seed, event sequence) pair always yields the same fault schedule — a
// chaos run is a reproducible test case, not a flake.
//
// One injector wraps the repo's three delivery choke points:
//
//   - netsim.Path link functions, via LinkFault (drop/duplicate/delay of
//     simulated packets between switches);
//   - the UDP socket feeding controller.Collector, via WrapPacketConn
//     (drop/duplicate/reorder/truncate/corrupt of wire datagrams);
//   - rdma.NIC verbs, via Verb (injected WRITE / Fetch-and-Add / Append
//     completion errors).
package faults

import (
	"fmt"
	"math/rand"
	"sync"

	"omniwindow/internal/netsim"
	"omniwindow/internal/packet"
)

// Config is a fault schedule: per-event probabilities for each fault kind,
// all decided by one PRNG seeded with Seed. Zero value = no faults.
type Config struct {
	// Seed seeds the decision PRNG; schedules are deterministic per seed.
	Seed int64

	// Drop is the probability an event (datagram, packet, link crossing)
	// is silently discarded.
	Drop float64
	// Duplicate is the probability an event is delivered twice (real
	// networks duplicate on retransmitting links and route flaps).
	Duplicate float64
	// MaxDuplicates bounds extra copies per duplication event (default 1).
	MaxDuplicates int

	// Reorder is the probability a datagram is parked and released only
	// after up to ReorderDepth later sends, arriving out of order.
	Reorder float64
	// ReorderDepth is the maximum number of later sends a parked datagram
	// waits behind (default 4).
	ReorderDepth int

	// Delay is the probability a simulated packet crosses its link with
	// ExtraDelay additional latency. On byte streams delay manifests as
	// reordering and is folded into the Reorder mechanism.
	Delay float64
	// ExtraDelay is the added link latency in virtual ns (default 1ms).
	ExtraDelay int64

	// Truncate is the probability a datagram loses its tail in flight.
	Truncate float64
	// Corrupt is the probability one bit of a datagram flips in flight.
	Corrupt float64

	// VerbError is the probability an RDMA verb completes with an error.
	VerbError float64
}

// Stats counts the injected faults so tests can assert a schedule actually
// exercised the recovery path.
type Stats struct {
	Events     int // fault decisions taken (one per datagram/packet)
	Dropped    int
	Duplicated int // extra copies injected
	Reordered  int // datagrams parked for out-of-order release
	Delayed    int
	Truncated  int
	Corrupted  int
	VerbErrors int
}

// PacketAction is the fate of one in-flight simulated packet (an object,
// not bytes: truncation/corruption do not apply).
type PacketAction struct {
	Drop       bool
	Duplicates int
	ExtraDelay int64
}

// decision is one event's full fault draw. Every field is drawn on every
// event — even for fault kinds with probability zero — so enabling one
// fault never shifts the PRNG stream of another.
type decision struct {
	drop       bool
	dup        int
	reorder    bool
	hold       int
	delay      bool
	truncate   bool
	truncFrac  float64
	corrupt    bool
	corruptPos float64
	corruptBit uint8
	verbErr    bool
}

// Injector draws fault decisions from a seeded PRNG. Safe for concurrent
// use; determinism holds for a deterministic order of calls.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	stats  Stats
	parked []parkedDatagram
}

type parkedDatagram struct {
	data []byte
	hold int // sends left to wait behind
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.MaxDuplicates <= 0 {
		cfg.MaxDuplicates = 1
	}
	if cfg.ReorderDepth <= 0 {
		cfg.ReorderDepth = 4
	}
	if cfg.ExtraDelay <= 0 {
		cfg.ExtraDelay = 1_000_000 // 1ms in virtual ns
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide draws one event's decision. Caller holds in.mu. The draw order
// and count are fixed regardless of configuration (see decision).
func (in *Injector) decide() decision {
	var d decision
	d.drop = in.rng.Float64() < in.cfg.Drop
	if in.rng.Float64() < in.cfg.Duplicate {
		d.dup = 1 + in.rng.Intn(in.cfg.MaxDuplicates)
	} else {
		in.rng.Intn(in.cfg.MaxDuplicates) // keep the stream aligned
	}
	d.reorder = in.rng.Float64() < in.cfg.Reorder
	d.hold = 1 + in.rng.Intn(in.cfg.ReorderDepth)
	d.delay = in.rng.Float64() < in.cfg.Delay
	d.truncate = in.rng.Float64() < in.cfg.Truncate
	d.truncFrac = in.rng.Float64()
	d.corrupt = in.rng.Float64() < in.cfg.Corrupt
	d.corruptPos = in.rng.Float64()
	d.corruptBit = uint8(in.rng.Intn(8))
	d.verbErr = in.rng.Float64() < in.cfg.VerbError
	return d
}

// mangle applies truncation/corruption to a copy of data (the input is
// never aliased: senders reuse their buffers). Caller holds in.mu.
func (in *Injector) mangle(data []byte, d decision) []byte {
	out := append([]byte(nil), data...)
	if d.truncate && len(out) > 0 {
		in.stats.Truncated++
		out = out[:int(d.truncFrac*float64(len(out)))]
	}
	if d.corrupt && len(out) > 0 {
		in.stats.Corrupted++
		pos := int(d.corruptPos * float64(len(out)))
		if pos >= len(out) {
			pos = len(out) - 1
		}
		out[pos] ^= 1 << d.corruptBit
	}
	return out
}

// Datagrams pushes one outbound datagram through the schedule and returns
// the datagrams to put on the wire now, in order: surviving copies of this
// datagram (mangled, possibly duplicated, absent when dropped or parked
// for reordering) followed by any previously parked datagrams whose hold
// expired with this send. Call Flush at a delivery barrier to release the
// remaining parked datagrams.
func (in *Injector) Datagrams(data []byte) [][]byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Events++
	d := in.decide()

	var out [][]byte
	switch {
	case d.drop:
		in.stats.Dropped++
	case d.reorder || d.delay:
		if d.reorder {
			in.stats.Reordered++
		} else {
			in.stats.Delayed++
		}
		in.parked = append(in.parked, parkedDatagram{data: in.mangle(data, d), hold: d.hold})
	default:
		b := in.mangle(data, d)
		out = append(out, b)
		for c := 0; c < d.dup; c++ {
			in.stats.Duplicated++
			out = append(out, append([]byte(nil), b...))
		}
	}

	// Age the parked datagrams and release the expired ones after the
	// current send, which is what puts them on the wire out of order.
	kept := in.parked[:0]
	for _, p := range in.parked {
		p.hold--
		if p.hold <= 0 {
			out = append(out, p.data)
		} else {
			kept = append(kept, p)
		}
	}
	in.parked = kept
	return out
}

// Flush releases every parked datagram, in park order. Call it before a
// delivery barrier so reordered datagrams are not withheld forever.
func (in *Injector) Flush() [][]byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out [][]byte
	for _, p := range in.parked {
		out = append(out, p.data)
	}
	in.parked = in.parked[:0]
	return out
}

// Packet decides the fate of one in-flight simulated packet: drop,
// duplicates and extra delay (reordering/truncation/corruption have no
// object-level meaning and are ignored, though their PRNG draws still
// happen so schedules stay aligned with the byte path).
func (in *Injector) Packet() PacketAction {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Events++
	d := in.decide()
	var a PacketAction
	if d.drop {
		in.stats.Dropped++
		a.Drop = true
		return a
	}
	a.Duplicates = d.dup
	in.stats.Duplicated += d.dup
	if d.delay {
		in.stats.Delayed++
		a.ExtraDelay = in.cfg.ExtraDelay
	}
	return a
}

// LinkFault adapts the injector to netsim.Path.Fault for the link after
// hop `link`: packets crossing that link are dropped, duplicated or
// delayed per the schedule; other links are untouched.
func (in *Injector) LinkFault(link int) func(*packet.Packet, int) netsim.LinkAction {
	return func(_ *packet.Packet, hop int) netsim.LinkAction {
		if hop != link {
			return netsim.LinkAction{}
		}
		a := in.Packet()
		return netsim.LinkAction{Drop: a.Drop, Duplicates: a.Duplicates, ExtraDelay: a.ExtraDelay}
	}
}

// Verb decides whether an RDMA verb completes or fails with an injected
// completion error — the signature matches rdma.NIC's fault hook.
func (in *Injector) Verb(op string, addr int) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Events++
	d := in.decide()
	if d.verbErr {
		in.stats.VerbErrors++
		return fmt.Errorf("faults: injected %s completion error at address %d", op, addr)
	}
	return nil
}
