package faults

import (
	"reflect"
	"testing"
)

func TestExtraSeedsDisabledByDefault(t *testing.T) {
	t.Setenv(ExtraSeedsEnv, "")
	if s := ExtraSeeds(3); s != nil {
		t.Fatalf("unset env produced seeds %v", s)
	}
	for _, bad := range []string{"0", "-2", "ten"} {
		t.Setenv(ExtraSeedsEnv, bad)
		if s := ExtraSeeds(3); s != nil {
			t.Fatalf("env %q produced seeds %v", bad, s)
		}
	}
}

func TestExtraSeedsDeterministic(t *testing.T) {
	t.Setenv(ExtraSeedsEnv, "3")
	want := []uint64{1200, 1201, 1202}
	if got := ExtraSeeds(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("ExtraSeeds(2) = %v, want %v", got, want)
	}
	if got := ExtraSeeds(2); !reflect.DeepEqual(got, want) {
		t.Fatal("same env+base produced a different list")
	}
	// Different bases sweep disjoint ranges so suites don't repeat each
	// other's schedules.
	if got := ExtraSeeds(3); got[0] != 1300 {
		t.Fatalf("ExtraSeeds(3)[0] = %d, want 1300", got[0])
	}
}
