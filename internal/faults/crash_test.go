package faults

import "testing"

// TestCrashScheduleDeterministic: the same (Seed, Prob) must decide every
// boundary identically across calls and instances — crash schedules are
// replayable test cases.
func TestCrashScheduleDeterministic(t *testing.T) {
	a := CrashSchedule{Seed: 7, Prob: 0.3}
	b := CrashSchedule{Seed: 7, Prob: 0.3}
	crashes := 0
	for sw := uint64(0); sw < 1000; sw++ {
		if a.At(sw) != b.At(sw) || a.At(sw) != a.At(sw) {
			t.Fatalf("boundary %d decided inconsistently", sw)
		}
		if a.At(sw) {
			crashes++
		}
	}
	// Prob 0.3 over 1000 boundaries: the hash should land in a loose band
	// around 300; a flat 0 or 1000 means the threshold math is broken.
	if crashes < 200 || crashes > 400 {
		t.Fatalf("crash rate off: %d/1000 at Prob 0.3", crashes)
	}
}

func TestCrashScheduleSeedsDiffer(t *testing.T) {
	a := CrashSchedule{Seed: 1, Prob: 0.5}
	b := CrashSchedule{Seed: 2, Prob: 0.5}
	same := true
	for sw := uint64(0); sw < 64; sw++ {
		if a.At(sw) != b.At(sw) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCrashScheduleFixedAndZeroProb(t *testing.T) {
	c := CrashSchedule{Fixed: []uint64{3, 9}}
	for sw := uint64(0); sw < 20; sw++ {
		want := sw == 3 || sw == 9
		if c.At(sw) != want {
			t.Fatalf("boundary %d: At = %v want %v (Prob 0, Fixed %v)", sw, c.At(sw), want, c.Fixed)
		}
	}
	if (CrashSchedule{}).At(0) {
		t.Fatal("zero-value schedule crashed")
	}
}

// TestCrashScheduleLeavesInjectorUntouched: enabling a crash schedule must
// not shift any Injector fault stream — CrashSchedule is stateless and
// draws nothing from the injector's PRNG.
func TestCrashScheduleLeavesInjectorUntouched(t *testing.T) {
	drops := func(withCrashChecks bool) int {
		inj := New(Config{Seed: 11, Drop: 0.2})
		cs := CrashSchedule{Seed: 11, Prob: 0.5}
		n := 0
		for i := 0; i < 500; i++ {
			if withCrashChecks {
				cs.At(uint64(i)) // interleaved crash decisions
			}
			if inj.Packet().Drop {
				n++
			}
		}
		return n
	}
	if a, b := drops(false), drops(true); a != b {
		t.Fatalf("crash checks perturbed the drop schedule: %d vs %d", a, b)
	}
}
