package faults

import "testing"

func TestDiskScheduleNilSafe(t *testing.T) {
	var s *DiskSchedule
	if s.WriteEIOAt(1) || s.ReadEIOAt(1) || s.ShortWriteAt(1) || s.BitRotAt(1) || s.ENOSPCAt(1) {
		t.Fatal("nil schedule injected a fault")
	}
	if slow, lat := s.SlowIOAt(1); slow || lat != 0 {
		t.Fatal("nil schedule injected slow IO")
	}
}

func TestDiskScheduleZeroValueHealthy(t *testing.T) {
	s := &DiskSchedule{Seed: 7}
	for op := uint64(0); op < 1000; op++ {
		if s.WriteEIOAt(op) || s.ReadEIOAt(op) || s.ShortWriteAt(op) || s.BitRotAt(op) || s.ENOSPCAt(op) {
			t.Fatalf("zero-prob schedule faulted at op %d", op)
		}
	}
}

func TestDiskScheduleDeterministic(t *testing.T) {
	a := &DiskSchedule{Seed: 42, WriteEIO: 0.3, ReadEIO: 0.2, ShortWrite: 0.1, BitRot: 0.1, SlowIO: 0.2, ENOSPC: 0.05}
	b := &DiskSchedule{Seed: 42, WriteEIO: 0.3, ReadEIO: 0.2, ShortWrite: 0.1, BitRot: 0.1, SlowIO: 0.2, ENOSPC: 0.05}
	for op := uint64(0); op < 500; op++ {
		if a.WriteEIOAt(op) != b.WriteEIOAt(op) ||
			a.ReadEIOAt(op) != b.ReadEIOAt(op) ||
			a.ShortWriteAt(op) != b.ShortWriteAt(op) ||
			a.BitRotAt(op) != b.BitRotAt(op) ||
			a.ENOSPCAt(op) != b.ENOSPCAt(op) {
			t.Fatalf("same seed diverged at op %d", op)
		}
		as, al := a.SlowIOAt(op)
		bs, bl := b.SlowIOAt(op)
		if as != bs || al != bl {
			t.Fatalf("slow-IO draw diverged at op %d", op)
		}
	}
}

// Fault kinds hash under distinct salts: enabling one must not shift
// another's schedule — the property the whole injector family relies on.
func TestDiskScheduleKindsIndependent(t *testing.T) {
	lone := &DiskSchedule{Seed: 9, WriteEIO: 0.25}
	both := &DiskSchedule{Seed: 9, WriteEIO: 0.25, BitRot: 0.5, ShortWrite: 0.5, ReadEIO: 0.5}
	for op := uint64(0); op < 1000; op++ {
		if lone.WriteEIOAt(op) != both.WriteEIOAt(op) {
			t.Fatalf("enabling other kinds shifted WriteEIO at op %d", op)
		}
	}
}

func TestDiskScheduleRatesRoughlyMatch(t *testing.T) {
	s := &DiskSchedule{Seed: 3, WriteEIO: 0.2}
	hits := 0
	const n = 20000
	for op := uint64(0); op < n; op++ {
		if s.WriteEIOAt(op) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("WriteEIO rate %.3f, want ~0.2", got)
	}
}

func TestDiskScheduleENOSPCWindow(t *testing.T) {
	s := &DiskSchedule{Seed: 1, ENOSPCStart: 10, ENOSPCLen: 5}
	for op := uint64(0); op < 30; op++ {
		want := op >= 10 && op < 15
		if s.ENOSPCAt(op) != want {
			t.Fatalf("ENOSPC window wrong at op %d: got %v want %v", op, s.ENOSPCAt(op), want)
		}
	}
}

func TestDiskScheduleBitRotSpot(t *testing.T) {
	s := &DiskSchedule{Seed: 11, BitRot: 1}
	for op := uint64(0); op < 200; op++ {
		idx, mask := s.BitRotSpot(op, 64)
		if idx < 0 || idx >= 64 {
			t.Fatalf("bit-rot index %d out of range", idx)
		}
		if mask == 0 {
			t.Fatal("bit-rot mask is zero: the flip would be a no-op")
		}
		i2, m2 := s.BitRotSpot(op, 64)
		if i2 != idx || m2 != mask {
			t.Fatal("BitRotSpot not deterministic")
		}
	}
	if idx, mask := s.BitRotSpot(5, 0); idx != 0 || mask == 0 {
		t.Fatal("BitRotSpot must stay in range for empty writes")
	}
}

func TestDiskScheduleSlowIODefaultLatency(t *testing.T) {
	s := &DiskSchedule{Seed: 2, SlowIO: 1}
	slow, lat := s.SlowIOAt(0)
	if !slow || lat != 1_000_000 {
		t.Fatalf("default slow-IO latency: got (%v, %d), want (true, 1ms)", slow, lat)
	}
	s.SlowIOLatency = 250
	if _, lat := s.SlowIOAt(0); lat != 250 {
		t.Fatalf("explicit slow-IO latency ignored: got %d", lat)
	}
}
