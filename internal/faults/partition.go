package faults

// PartitionWindow is one sustained symmetric-partition interval: every
// sub-window boundary in [Start, Start+Len) has both the lease-renewal
// and the checkpoint-tailing channel cut.
type PartitionWindow struct {
	Start, Len uint64
}

// PartitionSchedule describes network failures between the hot-standby
// pair's two halves (deployment.go): the primary→standby lease-renewal
// channel and the primary→standby checkpoint-tailing channel. Like
// Crash/Switch/Disk/RDMA schedules it is stateless and deterministic —
// every fault hashes (Seed, sub-window boundary) under its own salt, so
// enabling one fault kind never shifts another's schedule, and never
// shifts any other schedule family either. The zero value (and a nil
// schedule) is a healthy network.
//
// Fault classes, per boundary:
//
//   - Symmetric (probability, plus sustained Windows): both channels cut.
//     Renewals are lost AND the standby stops receiving checkpoints, so a
//     long enough partition expires the lease and promotes a standby
//     whose state lags — the boundaries hidden by the outage are charged
//     Missing by the new primary.
//   - RenewOnly (asymmetric): renewals lost, checkpoints flow. The
//     classic zombie-primary case — the standby promotes against a fully
//     fresh checkpoint, and fencing makes the spurious takeover safe.
//   - CkptOnly (asymmetric): checkpoints lost, renewals flow. No
//     promotion; the standby just goes stale until the channel heals.
//   - Gray (slowness, not loss): the renewal is issued but arrives
//     DelayNs late. A delay beyond the lease TTL is indistinguishable
//     from loss to the standby — the gray-failure trigger.
//
// DriftNs skews the standby's virtual clock against the primary's for
// lease observations: a fast standby clock (positive drift) promotes
// early and spuriously, a slow one promotes late. Drift is constant, not
// hashed — clock skew is a property of the node, not of the boundary.
type PartitionSchedule struct {
	// Seed parameterizes every hash below.
	Seed uint64

	// Symmetric is the per-boundary probability of a full cut.
	Symmetric float64
	// Windows are sustained symmetric partitions at fixed boundaries.
	Windows []PartitionWindow
	// RenewOnly is the per-boundary probability the renewal channel alone
	// is cut.
	RenewOnly float64
	// CkptOnly is the per-boundary probability the checkpoint channel
	// alone is cut.
	CkptOnly float64
	// Gray is the per-boundary probability the renewal is delayed by
	// DelayNs instead of lost.
	Gray float64
	// DelayNs is the gray renewal's latency in virtual ns; 0 defaults to
	// 1ms.
	DelayNs int64
	// DriftNs is the standby's constant clock skew in virtual ns
	// (positive = standby clock ahead of the primary's).
	DriftNs int64
}

// Distinct salts keep the per-kind hash streams independent.
const (
	saltPartSym   = 0x504152545359_01 // "PARTSY"
	saltPartRenew = 0x50415254524E_02 // "PARTRN"
	saltPartCkpt  = 0x50415254434B_03 // "PARTCK"
	saltPartGray  = 0x504152544752_04 // "PARTGR"
)

// prob maps a hash to [0, 1) exactly as CrashSchedule.At does.
func (s *PartitionSchedule) prob(salt, sw uint64) float64 {
	h := splitmix64(s.Seed ^ salt ^ splitmix64(sw))
	return float64(h>>11) / float64(1<<53)
}

// symmetricAt reports a full cut at boundary sw — a sustained window, or
// the per-boundary draw.
func (s *PartitionSchedule) symmetricAt(sw uint64) bool {
	for _, w := range s.Windows {
		if w.Len > 0 && sw >= w.Start && sw < w.Start+w.Len {
			return true
		}
	}
	if s.Symmetric <= 0 {
		return false
	}
	return s.prob(saltPartSym, sw) < s.Symmetric
}

// RenewCut reports whether the primary's lease renewal at boundary sw is
// lost (symmetric cut, or the asymmetric renewal-only cut). Nil-safe.
func (s *PartitionSchedule) RenewCut(sw uint64) bool {
	if s == nil {
		return false
	}
	if s.symmetricAt(sw) {
		return true
	}
	if s.RenewOnly <= 0 {
		return false
	}
	return s.prob(saltPartRenew, sw) < s.RenewOnly
}

// CkptCut reports whether the standby's checkpoint tailing at boundary sw
// is lost (symmetric cut, or the asymmetric checkpoint-only cut).
// Nil-safe.
func (s *PartitionSchedule) CkptCut(sw uint64) bool {
	if s == nil {
		return false
	}
	if s.symmetricAt(sw) {
		return true
	}
	if s.CkptOnly <= 0 {
		return false
	}
	return s.prob(saltPartCkpt, sw) < s.CkptOnly
}

// GrayAt reports whether the renewal at boundary sw is delayed rather
// than lost, and by how much virtual time. A boundary that is already cut
// (RenewCut) is not also gray — loss dominates slowness. Nil-safe.
func (s *PartitionSchedule) GrayAt(sw uint64) (bool, int64) {
	if s == nil || s.Gray <= 0 || s.RenewCut(sw) {
		return false, 0
	}
	if s.prob(saltPartGray, sw) >= s.Gray {
		return false, 0
	}
	d := s.DelayNs
	if d <= 0 {
		d = 1_000_000 // 1ms
	}
	return true, d
}

// Any reports whether any partition fault is active at boundary sw — the
// deployment's "partition-free boundary" predicate gating re-admission of
// a demoted primary. Constant drift alone is not an event. Nil-safe.
func (s *PartitionSchedule) Any(sw uint64) bool {
	if s == nil {
		return false
	}
	if s.RenewCut(sw) || s.CkptCut(sw) {
		return true
	}
	gray, _ := s.GrayAt(sw)
	return gray
}

// Drift returns the standby's constant clock skew. Nil-safe.
func (s *PartitionSchedule) Drift() int64 {
	if s == nil {
		return 0
	}
	return s.DriftNs
}
