package sketch

import (
	"math"
	"sort"

	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// univLevel is one sampling level of UnivMon: a Count-Sketch over the
// flows whose hash has at least `level` leading one-bits, plus the
// level's tracked heavy hitters.
type univLevel struct {
	cs    *CountSketch
	heavy map[packet.FlowKey]int64
}

// UnivMon (Liu et al., SIGCOMM'16) is a universal sketch: L sampling
// levels, each halving the flow population, each running a Count-Sketch
// and tracking its top-k heavy flows. One instance answers any
// G-sum statistic Sum(g(f_i)) over per-flow frequencies — heavy hitters,
// cardinality, entropy — via the recursive Y_L..Y_0 estimator.
type UnivMon struct {
	levels []univLevel
	topK   int
	seed   uint64
}

// NewUnivMon builds a UnivMon with `levels` levels of d x w Count-Sketches
// tracking topK heavy flows per level.
func NewUnivMon(levels, d, w, topK int, seed uint64) *UnivMon {
	if levels <= 0 || topK <= 0 {
		panic("sketch: UnivMon needs levels and topK")
	}
	u := &UnivMon{topK: topK, seed: seed}
	for l := 0; l < levels; l++ {
		u.levels = append(u.levels, univLevel{
			cs:    NewCountSketch(d, w, seed+uint64(l)*0xA5),
			heavy: make(map[packet.FlowKey]int64),
		})
	}
	return u
}

// NewUnivMonBytes builds a UnivMon within memoryBytes (levels of equal
// Count-Sketches, depth 5, topK 64).
func NewUnivMonBytes(levels, memoryBytes int, seed uint64) *UnivMon {
	const d, topK = 5, 64
	per := memoryBytes / levels
	w := per / (d * 8)
	if w < 8 {
		w = 8
	}
	return NewUnivMon(levels, d, w, topK, seed)
}

// level returns the deepest sampling level of key k (number of leading
// one-bits of its sampling hash, capped).
func (u *UnivMon) level(k packet.FlowKey) int {
	h := hashing.Key64(k, u.seed^0x17171717)
	l := 0
	for l < len(u.levels)-1 && h&(1<<uint(l)) != 0 {
		l++
	}
	return l
}

// Update records v packets of flow k.
func (u *UnivMon) Update(k packet.FlowKey, v uint64) {
	deepest := u.level(k)
	for l := 0; l <= deepest; l++ {
		lv := &u.levels[l]
		lv.cs.Update(k, int64(v))
		// Track the level's heavy flows: admit if already tracked, or
		// if there is room, or if the estimate beats the current
		// minimum (software top-k stand-in for the hardware heap).
		if _, ok := lv.heavy[k]; ok {
			lv.heavy[k] += int64(v)
			continue
		}
		est := lv.cs.Estimate(k)
		if len(lv.heavy) < u.topK {
			lv.heavy[k] = est
			continue
		}
		var minK packet.FlowKey
		minV := int64(math.MaxInt64)
		for hk, hv := range lv.heavy {
			if hv < minV {
				minK, minV = hk, hv
			}
		}
		if est > minV {
			delete(lv.heavy, minK)
			lv.heavy[k] = est
		}
	}
}

// refreshHeavy re-estimates the tracked flows from the level sketch (the
// running values drift from admission-time estimates).
func (u *UnivMon) refreshHeavy(l int) map[packet.FlowKey]int64 {
	lv := &u.levels[l]
	out := make(map[packet.FlowKey]int64, len(lv.heavy))
	for k := range lv.heavy {
		if e := lv.cs.Estimate(k); e > 0 {
			out[k] = e
		}
	}
	return out
}

// GSum estimates Sum over distinct flows of g(frequency) with the
// recursive estimator: Y_L = sum of g over level-L heavy flows;
// Y_l = 2*Y_{l+1} + sum over level-l heavy flows of g(f) * (1 - 2*I[flow
// sampled into level l+1]).
func (u *UnivMon) GSum(g func(freq float64) float64) float64 {
	L := len(u.levels) - 1
	y := 0.0
	for k, f := range u.refreshHeavy(L) {
		_ = k
		y += g(float64(f))
	}
	for l := L - 1; l >= 0; l-- {
		yl := 2 * y
		for k, f := range u.refreshHeavy(l) {
			ind := 0.0
			if u.level(k) > l {
				ind = 1
			}
			yl += g(float64(f)) * (1 - 2*ind)
		}
		if yl < 0 {
			yl = 0
		}
		y = yl
	}
	return y
}

// Cardinality estimates the number of distinct flows (g = 1).
func (u *UnivMon) Cardinality() float64 {
	return u.GSum(func(float64) float64 { return 1 })
}

// Entropy estimates the empirical entropy of the flow-size distribution
// (in nats) using the G-sum of f*ln(f) and the total volume.
func (u *UnivMon) Entropy() float64 {
	total := u.GSum(func(f float64) float64 { return f })
	if total <= 0 {
		return 0
	}
	flnf := u.GSum(func(f float64) float64 {
		if f <= 0 {
			return 0
		}
		return f * math.Log(f)
	})
	return math.Log(total) - flnf/total
}

// HeavyKeys returns level-0 tracked flows whose estimate reaches the
// threshold, sorted by descending estimate.
func (u *UnivMon) HeavyKeys(threshold uint64) []packet.FlowKey {
	type kv struct {
		k packet.FlowKey
		v int64
	}
	var all []kv
	for k, v := range u.refreshHeavy(0) {
		if v >= int64(threshold) {
			all = append(all, kv{k, v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	out := make([]packet.FlowKey, len(all))
	for i := range all {
		out[i] = all[i].k
	}
	return out
}

// Query estimates flow k's frequency from level 0 (clamped at zero).
func (u *UnivMon) Query(k packet.FlowKey) uint64 {
	e := u.levels[0].cs.Estimate(k)
	if e < 0 {
		return 0
	}
	return uint64(e)
}

// Reset clears every level.
func (u *UnivMon) Reset() {
	for l := range u.levels {
		u.levels[l].cs.Reset()
		u.levels[l].heavy = make(map[packet.FlowKey]int64)
	}
}

// MemoryBytes reports the footprint (sketches + tracked keys).
func (u *UnivMon) MemoryBytes() int {
	b := 0
	for l := range u.levels {
		b += u.levels[l].cs.MemoryBytes()
		b += u.topK * (packet.KeyBytes + 8)
	}
	return b
}
