package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// Bloom is a standard Bloom filter over flow keys. OmniWindow's flowkey
// tracking (Algorithm 1) uses it to suppress duplicate keys before
// appending to the data-plane flowkey array or spilling to the controller.
type Bloom struct {
	bits []uint64
	m    int
	fam  *hashing.Family
}

// NewBloom builds a Bloom filter with m bits (rounded up to a multiple of
// 64) and k hash functions.
func NewBloom(m, k int, seed uint64) *Bloom {
	if m <= 0 || k <= 0 {
		panic("sketch: Bloom parameters must be positive")
	}
	words := (m + 63) / 64
	return &Bloom{bits: make([]uint64, words), m: words * 64, fam: hashing.NewFamily(k, seed)}
}

// NewBloomBytes builds a Bloom filter within memoryBytes with k hashes.
func NewBloomBytes(memoryBytes, k int, seed uint64) *Bloom {
	return NewBloom(memoryBytes*8, k, seed)
}

// Contains reports whether k may have been added (no false negatives).
func (b *Bloom) Contains(k packet.FlowKey) bool {
	for i := 0; i < b.fam.Size(); i++ {
		h := b.fam.Hash64(i, k) % uint64(b.m)
		if b.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Add inserts k.
func (b *Bloom) Add(k packet.FlowKey) {
	for i := 0; i < b.fam.Size(); i++ {
		h := b.fam.Hash64(i, k) % uint64(b.m)
		b.bits[h/64] |= 1 << (h % 64)
	}
}

// TestAndAdd inserts k and reports whether it was (probably) present
// before — the single-pass check-then-update of Algorithm 1 lines 2-3.
func (b *Bloom) TestAndAdd(k packet.FlowKey) bool {
	present := true
	for i := 0; i < b.fam.Size(); i++ {
		h := b.fam.Hash64(i, k) % uint64(b.m)
		if b.bits[h/64]&(1<<(h%64)) == 0 {
			present = false
			b.bits[h/64] |= 1 << (h % 64)
		}
	}
	return present
}

// Reset clears the filter.
func (b *Bloom) Reset() { clear(b.bits) }

// MemoryBytes reports the bitmap footprint.
func (b *Bloom) MemoryBytes() int { return b.m / 8 }

// Hashes returns the number of hash functions (one SALU-visible access
// per hash in the data plane).
func (b *Bloom) Hashes() int { return b.fam.Size() }
