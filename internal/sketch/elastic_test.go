package sketch

import (
	"math/rand"
	"testing"

	"omniwindow/internal/packet"
)

func TestElasticDetectsHeavyHitters(t *testing.T) {
	stream, truth := skewedStream(21, 10, 500, 3000)
	e := NewElastic(2048, 1<<16, 1)
	for _, k := range stream {
		e.Update(k, 1)
	}
	const thr = 400
	reported := map[packet.FlowKey]bool{}
	for _, k := range e.HeavyKeys(thr) {
		reported[k] = true
	}
	missed := 0
	for k, c := range truth {
		if c >= 500 && !reported[k] {
			missed++
		}
	}
	if missed > 1 {
		t.Fatalf("Elastic missed %d/10 heavy keys", missed)
	}
	for k := range reported {
		if truth[k] < thr/2 {
			t.Fatalf("Elastic reported mouse %v (count %d)", k, truth[k])
		}
	}
}

func TestElasticHeavyQueryAccuracy(t *testing.T) {
	// Elephants that settle in the heavy part are counted near-exactly.
	e := NewElastic(1024, 1<<16, 2)
	for i := 0; i < 1000; i++ {
		e.Update(fk(7), 1)
	}
	if got := e.Query(fk(7)); got < 990 || got > 1010 {
		t.Fatalf("heavy query = %d want ~1000", got)
	}
}

func TestElasticEvictionPreservesTotals(t *testing.T) {
	// A single bucket fought over by two flows: the loser's mass must
	// survive in the light part (total conservation within CM
	// overestimation).
	e := NewElastic(1, 1<<14, 3)
	for i := 0; i < 50; i++ {
		e.Update(fk(1), 1)
	}
	for i := 0; i < 600; i++ {
		e.Update(fk(2), 1)
	}
	if got := e.Query(fk(1)); got < 50 {
		t.Fatalf("evicted flow lost mass: %d", got)
	}
	if got := e.Query(fk(2)); got < 500 {
		t.Fatalf("winner undercounted: %d", got)
	}
}

func TestElasticLightPartAbsorbsMice(t *testing.T) {
	e := NewElastic(64, 1<<16, 4)
	rng := rand.New(rand.NewSource(5))
	truth := map[packet.FlowKey]uint64{}
	for i := 0; i < 20000; i++ {
		k := fk(rng.Intn(3000))
		e.Update(k, 1)
		truth[k]++
	}
	// Count-Min semantics in the light part: no underestimation beyond
	// the heavy-part bookkeeping.
	under := 0
	for k, c := range truth {
		if e.Query(k) < c {
			under++
		}
	}
	if under > 0 {
		t.Fatalf("%d flows underestimated", under)
	}
}

func TestElasticResetAndMemory(t *testing.T) {
	e := NewElasticBytes(1<<18, 6)
	e.Update(fk(1), 5)
	e.Reset()
	if e.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
	if e.MemoryBytes() > 1<<18+ElasticBucketBytes {
		t.Fatalf("memory %d over budget", e.MemoryBytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewElastic(0, 10, 1)
}

func TestFlowRadarDecodeExact(t *testing.T) {
	fr := NewFlowRadar(4096, 3, 1<<16, 1)
	truth := map[packet.FlowKey]uint64{}
	rng := rand.New(rand.NewSource(7))
	for f := 0; f < 800; f++ {
		k := fk(f + 1)
		n := uint64(rng.Intn(20) + 1)
		truth[k] = n
		for i := uint64(0); i < n; i++ {
			fr.Update(k, 1)
		}
	}
	counts, ok := fr.Decode()
	if !ok {
		t.Fatal("decode stalled")
	}
	if len(counts) != len(truth) {
		t.Fatalf("decoded %d flows want %d", len(counts), len(truth))
	}
	for k, n := range truth {
		if counts[k] != n {
			t.Fatalf("flow %v decoded %d want %d", k, counts[k], n)
		}
	}
}

func TestFlowRadarDecodeIsNonDestructive(t *testing.T) {
	fr := NewFlowRadar(256, 3, 1<<12, 2)
	fr.Update(fk(1), 3)
	a, _ := fr.Decode()
	b, _ := fr.Decode()
	if a[fk(1)] != 3 || b[fk(1)] != 3 {
		t.Fatalf("repeat decode differs: %v vs %v", a, b)
	}
}

func TestFlowRadarOverload(t *testing.T) {
	fr := NewFlowRadar(16, 3, 1<<12, 3)
	for f := 0; f < 500; f++ {
		fr.Update(fk(f+1), 1)
	}
	if _, ok := fr.Decode(); ok {
		t.Fatal("overloaded decode claimed success")
	}
}

func TestFlowRadarRawRoundTrip(t *testing.T) {
	fr := NewFlowRadar(512, 3, 1<<13, 4)
	truth := map[packet.FlowKey]uint64{}
	for f := 0; f < 100; f++ {
		k := fk(f + 1)
		truth[k] = uint64(f%7 + 1)
		for i := uint64(0); i < truth[k]; i++ {
			fr.Update(k, 1)
		}
	}
	// Migrate raw words and reconstruct at the "controller".
	rebuilt := FlowRadarFromRaw(fr.RawState(), 3, 4)
	counts, ok := rebuilt.Decode()
	if !ok {
		t.Fatal("reconstructed decode stalled")
	}
	for k, n := range truth {
		if counts[k] != n {
			t.Fatalf("flow %v: %d want %d", k, counts[k], n)
		}
	}
	// Per-cell and bulk accessors agree.
	raw := fr.RawState()
	for i := 0; i < fr.Cells(); i++ {
		c := fr.RawCell(i)
		for j := 0; j < 4; j++ {
			if raw[i*4+j] != c[j] {
				t.Fatalf("cell %d word %d mismatch", i, j)
			}
		}
	}
}

func TestFlowRadarResetAndMemory(t *testing.T) {
	fr := NewFlowRadarBytes(1<<16, 5)
	fr.Update(fk(1), 1)
	fr.Reset()
	counts, ok := fr.Decode()
	if !ok || len(counts) != 0 {
		t.Fatal("reset left state")
	}
	if fr.MemoryBytes() > 1<<16+FRCellBytes {
		t.Fatalf("memory %d over budget", fr.MemoryBytes())
	}
}
