package sketch

import (
	"math"
	"testing"
)

func TestLinearCountingAccuracy(t *testing.T) {
	lc := NewLinearCounting(1<<16, 1)
	const n = 10000
	for i := 0; i < n; i++ {
		lc.Insert(fk(i))
	}
	est := lc.Estimate()
	if math.Abs(est-n)/n > 0.05 {
		t.Fatalf("LC estimate %f too far from %d", est, n)
	}
}

func TestLinearCountingDuplicatesIgnored(t *testing.T) {
	lc := NewLinearCounting(1<<14, 2)
	for i := 0; i < 1000; i++ {
		lc.Insert(fk(42))
	}
	if est := lc.Estimate(); est > 3 {
		t.Fatalf("duplicates inflated LC estimate: %f", est)
	}
}

func TestLinearCountingResetAndSaturation(t *testing.T) {
	lc := NewLinearCounting(64, 3)
	for i := 0; i < 5000; i++ {
		lc.Insert(fk(i))
	}
	if est := lc.Estimate(); math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("saturated LC produced %f", est)
	}
	lc.Reset()
	if lc.Estimate() != 0 {
		t.Fatalf("reset LC estimate = %f", lc.Estimate())
	}
}

func TestLinearCountingBytesRounding(t *testing.T) {
	lc := NewLinearCountingBytes(100, 1)
	if lc.MemoryBytes() < 100 {
		t.Fatalf("memory %d below requested", lc.MemoryBytes())
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	h := NewHyperLogLog(12, 1) // 4096 registers: ~1.6% std error
	const n = 100000
	for i := 0; i < n; i++ {
		h.Insert(fk(i))
	}
	est := h.Estimate()
	if math.Abs(est-n)/n > 0.06 {
		t.Fatalf("HLL estimate %f too far from %d", est, n)
	}
}

func TestHyperLogLogSmallRangeCorrection(t *testing.T) {
	h := NewHyperLogLog(12, 2)
	for i := 0; i < 50; i++ {
		h.Insert(fk(i))
	}
	est := h.Estimate()
	if math.Abs(est-50) > 10 {
		t.Fatalf("small-range estimate %f too far from 50", est)
	}
}

func TestHyperLogLogMergeEqualsUnion(t *testing.T) {
	a := NewHyperLogLog(10, 3)
	b := NewHyperLogLog(10, 3)
	u := NewHyperLogLog(10, 3)
	for i := 0; i < 5000; i++ {
		a.Insert(fk(i))
		u.Insert(fk(i))
	}
	for i := 2500; i < 7500; i++ {
		b.Insert(fk(i))
		u.Insert(fk(i))
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merge not equal to union: %f vs %f", a.Estimate(), u.Estimate())
	}
}

func TestHyperLogLogMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHyperLogLog(10, 1).Merge(NewHyperLogLog(11, 1))
}

func TestHyperLogLogPrecisionValidation(t *testing.T) {
	for _, p := range []uint{3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%d should panic", p)
				}
			}()
			NewHyperLogLog(p, 1)
		}()
	}
}

func TestHyperLogLogBytesBudget(t *testing.T) {
	h := NewHyperLogLogBytes(100000, 1)
	if h.MemoryBytes() > 100000 {
		t.Fatalf("memory %d over budget", h.MemoryBytes())
	}
	if h.MemoryBytes() < 1<<16 {
		t.Fatalf("memory %d surprisingly small for 100 KB budget", h.MemoryBytes())
	}
}

func TestHyperLogLogReset(t *testing.T) {
	h := NewHyperLogLog(8, 4)
	for i := 0; i < 1000; i++ {
		h.Insert(fk(i))
	}
	h.Reset()
	if h.Estimate() != 0 {
		t.Fatalf("reset estimate = %f", h.Estimate())
	}
}

func TestMRBAccuracySmallAndLarge(t *testing.T) {
	// A 4-component MRB of 64-bit bitmaps should track cardinalities well
	// past a plain 64-bit bitmap's range.
	for _, n := range []int{10, 50, 200, 500} {
		m := NewMRB(4)
		for i := 0; i < n; i++ {
			m.Insert(uint64(i)*0x9E3779B97F4A7C15 + 12345)
		}
		est := m.Estimate()
		if est < float64(n)*0.4 || est > float64(n)*2.5 {
			t.Fatalf("MRB estimate for n=%d out of range: %f", n, est)
		}
	}
}

func TestMRBMergeMonotone(t *testing.T) {
	a, b := NewMRB(4), NewMRB(4)
	for i := 0; i < 100; i++ {
		a.Insert(uint64(i) * 7919)
	}
	for i := 100; i < 200; i++ {
		b.Insert(uint64(i) * 7919)
	}
	before := a.Estimate()
	a.Merge(b)
	if a.Estimate() < before {
		t.Fatalf("merge decreased estimate: %f -> %f", before, a.Estimate())
	}
}

func TestMRBResetAndValidation(t *testing.T) {
	m := NewMRB(4)
	m.Insert(123456789)
	m.Reset()
	if m.Estimate() != 0 {
		t.Fatalf("reset estimate = %f", m.Estimate())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for c<2")
		}
	}()
	NewMRB(1)
}
