package sketch

import (
	"math/rand"
	"testing"

	"omniwindow/internal/packet"
)

func pid(flow, seq int) PacketID {
	return PacketID{Key: fk(flow), Seq: uint32(seq)}
}

func TestLossRadarDecodesLosses(t *testing.T) {
	up := NewLossRadar(1024, 3, 1)
	down := NewLossRadar(1024, 3, 1)
	rng := rand.New(rand.NewSource(1))
	lostTruth := map[PacketID]bool{}
	for i := 0; i < 5000; i++ {
		id := pid(rng.Intn(400), i)
		up.Insert(id)
		if rng.Float64() < 0.01 { // ~1% loss
			lostTruth[id] = true
			continue
		}
		down.Insert(id)
	}
	up.Subtract(down)
	lost, extra, ok := up.Decode()
	if !ok {
		t.Fatal("decode stalled")
	}
	if len(extra) != 0 {
		t.Fatalf("unexpected extras: %d", len(extra))
	}
	if len(lost) != len(lostTruth) {
		t.Fatalf("decoded %d losses want %d", len(lost), len(lostTruth))
	}
	for _, id := range lost {
		if !lostTruth[id] {
			t.Fatalf("false loss %v", id)
		}
	}
}

func TestLossRadarNoLossEmptyDiff(t *testing.T) {
	up := NewLossRadar(256, 3, 2)
	down := NewLossRadar(256, 3, 2)
	for i := 0; i < 1000; i++ {
		id := pid(i%50, i)
		up.Insert(id)
		down.Insert(id)
	}
	up.Subtract(down)
	lost, extra, ok := up.Decode()
	if !ok || len(lost) != 0 || len(extra) != 0 {
		t.Fatalf("clean diff decoded lost=%d extra=%d ok=%v", len(lost), len(extra), ok)
	}
}

func TestLossRadarDetectsExtras(t *testing.T) {
	// A packet counted only downstream (e.g. measured into different
	// windows by the two meters) shows up with negative sign.
	up := NewLossRadar(256, 3, 3)
	down := NewLossRadar(256, 3, 3)
	shared := pid(1, 1)
	up.Insert(shared)
	down.Insert(shared)
	ghost := pid(2, 2)
	down.Insert(ghost)
	up.Subtract(down)
	lost, extra, ok := up.Decode()
	if !ok {
		t.Fatal("decode stalled")
	}
	if len(lost) != 0 || len(extra) != 1 || extra[0] != ghost {
		t.Fatalf("lost=%v extra=%v", lost, extra)
	}
}

func TestLossRadarOverload(t *testing.T) {
	// Too many losses for the cell budget: Decode must report failure,
	// not loop or fabricate.
	up := NewLossRadar(16, 3, 4)
	down := NewLossRadar(16, 3, 4)
	for i := 0; i < 500; i++ {
		up.Insert(pid(i, i))
	}
	up.Subtract(down)
	_, _, ok := up.Decode()
	if ok {
		t.Fatal("overloaded decode claimed success")
	}
}

func TestLossRadarIncompatibleSubtractPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLossRadar(64, 3, 1).Subtract(NewLossRadar(128, 3, 1))
}

func TestLossRadarReset(t *testing.T) {
	lr := NewLossRadar(64, 3, 5)
	lr.Insert(pid(1, 1))
	lr.Reset()
	lost, extra, ok := lr.Decode()
	if !ok || len(lost) != 0 || len(extra) != 0 {
		t.Fatal("reset meter not empty")
	}
}

func TestSlidingQueryCombinesWindows(t *testing.T) {
	s := NewSliding(NewCountMin(4, 512, 1), NewCountMin(4, 512, 1))
	s.Update(fk(1), 10)
	s.Advance()
	s.Update(fk(1), 7)
	// Query covers current + previous window.
	if got := s.Query(fk(1)); got != 17 {
		t.Fatalf("sliding query = %d want 17", got)
	}
	s.Advance()
	if got := s.Query(fk(1)); got != 7 {
		t.Fatalf("after advance query = %d want 7", got)
	}
	s.Advance()
	if got := s.Query(fk(1)); got != 0 {
		t.Fatalf("after two advances query = %d want 0", got)
	}
}

func TestSlidingOverestimatesWindow(t *testing.T) {
	// The defining artifact of Sliding Sketch: right after an advance,
	// a query still includes the whole previous window even though only
	// part of it lies within the sliding window.
	s := NewSliding(NewCountMin(4, 512, 2), NewCountMin(4, 512, 2))
	s.Update(fk(2), 100)
	s.Advance()
	if got := s.Query(fk(2)); got != 100 {
		t.Fatalf("stale mass not reported: %d", got)
	}
}

func TestSlidingResetAndMemory(t *testing.T) {
	cur := NewCountMin(4, 256, 3)
	prev := NewCountMin(4, 256, 3)
	s := NewSliding(cur, prev)
	s.Update(fk(1), 5)
	s.Reset()
	if s.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
	if s.MemoryBytes() != cur.MemoryBytes()+prev.MemoryBytes() {
		t.Fatal("memory accounting wrong")
	}
}

func TestSlidingInvertibleHeavyKeys(t *testing.T) {
	s := NewSlidingInvertible(NewMV(4, 1024, 4), NewMV(4, 1024, 4))
	for i := 0; i < 300; i++ {
		s.Update(fk(1), 1)
	}
	s.Advance()
	for i := 0; i < 300; i++ {
		s.Update(fk(2), 1)
	}
	found := map[packet.FlowKey]bool{}
	for _, k := range s.HeavyKeys(250) {
		found[k] = true
	}
	if !found[fk(1)] || !found[fk(2)] {
		t.Fatalf("sliding invertible missed keys: %v", found)
	}
	// Key 1's mass is stale but still reported — the overestimation that
	// hurts Sliding Sketch precision in Exp#10.
	s.Advance()
	found = map[packet.FlowKey]bool{}
	for _, k := range s.HeavyKeys(250) {
		found[k] = true
	}
	if found[fk(1)] {
		t.Fatal("mass older than two windows must be gone")
	}
	if !found[fk(2)] {
		t.Fatal("previous-window key must persist one advance")
	}
}

func TestBloomBasics(t *testing.T) {
	b := NewBloom(1<<12, 3, 1)
	if b.Contains(fk(1)) {
		t.Fatal("empty filter claims membership")
	}
	b.Add(fk(1))
	if !b.Contains(fk(1)) {
		t.Fatal("no false negatives allowed")
	}
	if got := b.TestAndAdd(fk(1)); !got {
		t.Fatal("TestAndAdd should report presence")
	}
	if got := b.TestAndAdd(fk(2)); got {
		t.Fatal("TestAndAdd reported false presence")
	}
	if !b.Contains(fk(2)) {
		t.Fatal("TestAndAdd did not insert")
	}
	b.Reset()
	if b.Contains(fk(1)) {
		t.Fatal("reset did not clear")
	}
	if b.Hashes() != 3 {
		t.Fatalf("hashes = %d", b.Hashes())
	}
}

func TestBloomFalsePositiveRateBounded(t *testing.T) {
	b := NewBloom(1<<15, 4, 2)
	for i := 0; i < 2000; i++ {
		b.Add(fk(i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(fk(1<<24 + i)) {
			fp++
		}
	}
	if fp > probes/50 { // theoretical rate well under 1%
		t.Fatalf("false positive rate too high: %d/%d", fp, probes)
	}
}
