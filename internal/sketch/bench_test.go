package sketch

import (
	"testing"

	"omniwindow/internal/packet"
)

// Per-sketch update/query micro-benchmarks, for comparing the software
// cost of the algorithms the framework can host.

func benchKeys(n int) []packet.FlowKey {
	keys := make([]packet.FlowKey, n)
	for i := range keys {
		keys[i] = fk(i)
	}
	return keys
}

func BenchmarkElasticUpdate(b *testing.B) {
	e := NewElastic(4096, 1<<18, 1)
	keys := benchKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(keys[i&1023], 1)
	}
}

func BenchmarkUnivMonUpdate(b *testing.B) {
	u := NewUnivMon(8, 5, 4096, 64, 1)
	keys := benchKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Update(keys[i&1023], 1)
	}
}

func BenchmarkFlowRadarUpdate(b *testing.B) {
	fr := NewFlowRadar(1<<16, 3, 1<<20, 1)
	keys := benchKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fr.Update(keys[i&1023], 1)
	}
}

func BenchmarkSpreadSketchUpdate(b *testing.B) {
	s := NewSpreadSketch(4, 4096, 4, 1)
	srcs := benchKeys(256)
	dsts := benchKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UpdateSpread(srcs[i&255], dsts[i&1023])
	}
}

func BenchmarkLossRadarInsert(b *testing.B) {
	lr := NewLossRadar(1<<14, 3, 1)
	keys := benchKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lr.Insert(PacketID{Key: keys[i&1023], Seq: uint32(i)})
	}
}

func BenchmarkHyperLogLogInsert(b *testing.B) {
	h := NewHyperLogLog(14, 1)
	keys := benchKeys(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(keys[i&4095])
	}
}

func BenchmarkCountMinQuery(b *testing.B) {
	cm := NewCountMin(4, 1<<16, 1)
	keys := benchKeys(1024)
	for _, k := range keys {
		cm.Update(k, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += cm.Query(keys[i&1023])
	}
	_ = sink
}

func BenchmarkFlowRadarDecode(b *testing.B) {
	fr := NewFlowRadar(1<<14, 3, 1<<18, 1)
	for i := 0; i < 2000; i++ {
		fr.Update(fk(i+1), uint64(i%9+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fr.Decode(); !ok {
			b.Fatal("decode stalled")
		}
	}
}
