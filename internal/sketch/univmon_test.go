package sketch

import (
	"math"
	"math/rand"
	"testing"

	"omniwindow/internal/packet"
)

func TestCountSketchUnbiasedEstimates(t *testing.T) {
	cs := NewCountSketch(5, 2048, 1)
	truth := map[packet.FlowKey]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		k := fk(rng.Intn(800))
		cs.Update(k, 1)
		truth[k]++
	}
	// Heavy flows estimate closely; aggregate bias stays small.
	var errSum float64
	for k, c := range truth {
		e := cs.Estimate(k)
		errSum += float64(e - c)
		if c > 300 {
			if d := math.Abs(float64(e - c)); d > float64(c)/5 {
				t.Fatalf("heavy flow %v estimate %d truth %d", k, e, c)
			}
		}
	}
	if math.Abs(errSum)/float64(len(truth)) > 10 {
		t.Fatalf("mean bias too large: %f", errSum/float64(len(truth)))
	}
}

func TestCountSketchSignedUpdates(t *testing.T) {
	cs := NewCountSketch(3, 512, 2)
	cs.Update(fk(1), 10)
	cs.Update(fk(1), -10)
	if got := cs.Estimate(fk(1)); got != 0 {
		t.Fatalf("cancelled flow estimates %d", got)
	}
}

func TestCountSketchResetAndValidation(t *testing.T) {
	cs := NewCountSketch(3, 64, 3)
	cs.Update(fk(1), 5)
	cs.Reset()
	if cs.Estimate(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCountSketch(0, 64, 1)
}

// univStream builds a Zipf-ish stream and its exact per-flow counts.
func univStream(seed int64, flows, pkts int) ([]packet.FlowKey, map[packet.FlowKey]uint64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(flows-1))
	truth := map[packet.FlowKey]uint64{}
	stream := make([]packet.FlowKey, 0, pkts)
	for i := 0; i < pkts; i++ {
		k := fk(int(zipf.Uint64()) + 1)
		stream = append(stream, k)
		truth[k]++
	}
	return stream, truth
}

func TestUnivMonHeavyHitters(t *testing.T) {
	stream, truth := univStream(3, 5000, 60000)
	u := NewUnivMon(8, 5, 4096, 64, 1)
	for _, k := range stream {
		u.Update(k, 1)
	}
	// The top flows of a Zipf stream must surface.
	type kv struct {
		k packet.FlowKey
		v uint64
	}
	var top []kv
	for k, v := range truth {
		top = append(top, kv{k, v})
	}
	// selection of the top-5 truth flows
	for i := 0; i < 5; i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].v > top[i].v {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	found := map[packet.FlowKey]bool{}
	for _, k := range u.HeavyKeys(1) {
		found[k] = true
	}
	for i := 0; i < 5; i++ {
		if !found[top[i].k] {
			t.Fatalf("UnivMon missed top flow %v (count %d)", top[i].k, top[i].v)
		}
	}
	// Level-0 point queries are usable for heavy flows.
	if q := u.Query(top[0].k); q < top[0].v/2 || q > top[0].v*2 {
		t.Fatalf("top flow query %d truth %d", q, top[0].v)
	}
}

func TestUnivMonCardinality(t *testing.T) {
	stream, truth := univStream(5, 2000, 40000)
	u := NewUnivMon(10, 5, 4096, 128, 2)
	for _, k := range stream {
		u.Update(k, 1)
	}
	est := u.Cardinality()
	n := float64(len(truth))
	if math.Abs(est-n)/n > 0.35 {
		t.Fatalf("cardinality %f truth %f", est, n)
	}
}

func TestUnivMonEntropy(t *testing.T) {
	stream, truth := univStream(7, 3000, 50000)
	u := NewUnivMon(10, 5, 4096, 128, 3)
	total := 0.0
	for _, k := range stream {
		u.Update(k, 1)
	}
	var exact float64
	for _, c := range truth {
		total += float64(c)
	}
	for _, c := range truth {
		p := float64(c) / total
		exact -= p * math.Log(p)
	}
	est := u.Entropy()
	if math.Abs(est-exact) > 0.5 {
		t.Fatalf("entropy %f exact %f", est, exact)
	}
}

func TestUnivMonGSumFrequencyTotal(t *testing.T) {
	// g(f)=f: the G-sum is the total packet count, which the estimator
	// should recover within a modest factor on a skewed stream.
	stream, _ := univStream(9, 2000, 30000)
	u := NewUnivMon(10, 5, 4096, 128, 4)
	for _, k := range stream {
		u.Update(k, 1)
	}
	est := u.GSum(func(f float64) float64 { return f })
	if est < 30000*0.6 || est > 30000*1.6 {
		t.Fatalf("F1 estimate %f truth 30000", est)
	}
}

func TestUnivMonResetAndMemory(t *testing.T) {
	u := NewUnivMonBytes(8, 1<<20, 5)
	if u.MemoryBytes() > 1<<20+8*64*(packet.KeyBytes+8) {
		t.Fatalf("memory %d over budget", u.MemoryBytes())
	}
	u.Update(fk(1), 100)
	u.Reset()
	if u.Cardinality() != 0 {
		t.Fatalf("reset cardinality %f", u.Cardinality())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUnivMon(0, 1, 1, 1, 1)
}
