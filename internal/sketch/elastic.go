package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// elasticBucket is one heavy-part bucket of the Elastic Sketch: the
// resident key, its positive votes (packets of the resident) and negative
// votes (packets of other keys hashing here).
type elasticBucket struct {
	key     packet.FlowKey
	posVote uint64
	negVote uint64
	ejected bool // the resident was placed after an eviction: its
	// earlier packets live in the light part
	used bool
}

// ElasticBucketBytes is the modeled heavy-bucket footprint.
const ElasticBucketBytes = 32

// Elastic is the Elastic Sketch (Yang et al., SIGCOMM'18): a heavy part
// of vote-based buckets that pins elephant flows exactly, backed by a
// light part (a Count-Min-style counter array) that absorbs mice and the
// evicted remainders. λ is the eviction threshold on negVote/posVote.
type Elastic struct {
	heavy  []elasticBucket
	light  *CountMin
	seed   uint64
	lambda uint64
}

// NewElastic builds an Elastic Sketch with `buckets` heavy buckets and a
// light part of lightMem bytes (depth 1, as in the original design's
// one-array light part... the constructor uses depth 3 for robustness,
// matching the paper's software version).
func NewElastic(buckets, lightMem int, seed uint64) *Elastic {
	if buckets <= 0 {
		panic("sketch: Elastic needs heavy buckets")
	}
	return &Elastic{
		heavy:  make([]elasticBucket, buckets),
		light:  NewCountMinBytes(3, lightMem, seed^0x11A57),
		seed:   seed,
		lambda: 8,
	}
}

// NewElasticBytes splits memoryBytes between the heavy part (1/4) and the
// light part (3/4), the paper's recommended division.
func NewElasticBytes(memoryBytes int, seed uint64) *Elastic {
	buckets := memoryBytes / 4 / ElasticBucketBytes
	if buckets < 1 {
		buckets = 1
	}
	return NewElastic(buckets, memoryBytes*3/4, seed)
}

// Update implements Sketch.
func (e *Elastic) Update(k packet.FlowKey, v uint64) {
	b := &e.heavy[hashing.Index(k, e.seed, len(e.heavy))]
	switch {
	case !b.used:
		*b = elasticBucket{key: k, posVote: v, used: true}
	case b.key == k:
		b.posVote += v
	default:
		b.negVote += v
		if b.negVote >= e.lambda*b.posVote {
			// Evict the resident to the light part; the newcomer takes
			// the bucket with the "ejected" flag (its earlier packets,
			// if any, are already in the light part).
			e.light.Update(b.key, b.posVote)
			*b = elasticBucket{key: k, posVote: v, ejected: true, used: true}
		} else {
			e.light.Update(k, v)
		}
	}
}

// Query implements Sketch.
func (e *Elastic) Query(k packet.FlowKey) uint64 {
	b := &e.heavy[hashing.Index(k, e.seed, len(e.heavy))]
	if b.used && b.key == k {
		if b.ejected {
			return b.posVote + e.light.Query(k)
		}
		return b.posVote
	}
	return e.light.Query(k)
}

// HeavyKeys implements Invertible: the heavy part stores elephants with
// their keys, so candidates come straight from the buckets.
func (e *Elastic) HeavyKeys(threshold uint64) []packet.FlowKey {
	var out []packet.FlowKey
	for i := range e.heavy {
		if !e.heavy[i].used {
			continue
		}
		k := e.heavy[i].key
		if e.Query(k) >= threshold {
			out = append(out, k)
		}
	}
	return dedupeKeys(out)
}

// Reset implements Sketch.
func (e *Elastic) Reset() {
	clear(e.heavy)
	e.light.Reset()
}

// MemoryBytes implements Sketch.
func (e *Elastic) MemoryBytes() int {
	return len(e.heavy)*ElasticBucketBytes + e.light.MemoryBytes()
}
