package sketch

import (
	"math"
	"math/bits"
)

// MRB is a multiresolution bitmap (Estan, Varghese, Fisk — "Bitmap
// algorithms for counting active flows"). Component k samples elements
// with probability 2^-(k+1); the last component absorbs all remaining
// levels. It estimates far larger cardinalities than a plain bitmap of the
// same size, which is why SpreadSketch stores one per bucket.
type MRB struct {
	comps []uint64 // one 64-bit bitmap per component
	c     int
}

// mrbBits is the width of each component bitmap.
const mrbBits = 64

// NewMRB builds a multiresolution bitmap with c components of 64 bits.
func NewMRB(c int) *MRB {
	if c < 2 {
		panic("sketch: MRB needs at least 2 components")
	}
	return &MRB{comps: make([]uint64, c), c: c}
}

// level returns the geometric sampling level of an element hash: the
// number of trailing one-bits capped to the last component.
func (m *MRB) level(h uint64) int {
	l := bits.TrailingZeros64(^h) // trailing ones of h
	if l >= m.c {
		l = m.c - 1
	}
	return l
}

// Insert records an element by its 64-bit hash.
func (m *MRB) Insert(h uint64) {
	l := m.level(h)
	// Use high bits for the position so they are independent of the
	// trailing bits that chose the level.
	pos := (h >> 32) % mrbBits
	m.comps[l] |= 1 << pos
}

// sampleProb returns component k's sampling probability.
func (m *MRB) sampleProb(k int) float64 {
	if k == m.c-1 {
		return math.Pow(2, -float64(m.c-1))
	}
	return math.Pow(2, -float64(k+1))
}

// Estimate returns the estimated number of distinct inserted elements.
// It picks the lowest component that is not saturated as the base and
// combines linear-counting estimates of the base and finer components.
func (m *MRB) Estimate() float64 {
	base := m.c - 1
	for k := 0; k < m.c; k++ {
		if bits.OnesCount64(m.comps[k]) <= mrbBits*93/100 {
			base = k
			break
		}
	}
	var est, prob float64
	for k := base; k < m.c; k++ {
		z := float64(mrbBits - bits.OnesCount64(m.comps[k]))
		if z == 0 {
			z = 1
		}
		est += mrbBits * math.Log(mrbBits/z)
		prob += m.sampleProb(k)
	}
	if prob == 0 {
		return 0
	}
	return est / prob
}

// Merge folds another MRB with identical shape into m (bitwise OR), which
// is lossless — the property that lets distinct-count state merge across
// sub-windows.
func (m *MRB) Merge(o *MRB) {
	if m.c != o.c {
		panic("sketch: merging incompatible MRBs")
	}
	for i := range m.comps {
		m.comps[i] |= o.comps[i]
	}
}

// Components returns a copy of the raw component bitmaps, the wire form
// AFRs carry for distinction statistics.
func (m *MRB) Components() []uint64 {
	return append([]uint64(nil), m.comps...)
}

// MRBFromComponents reconstructs an MRB from raw component bitmaps (the
// controller-side inverse of Components).
func MRBFromComponents(comps []uint64) *MRB {
	if len(comps) < 2 {
		panic("sketch: MRB needs at least 2 components")
	}
	return &MRB{comps: append([]uint64(nil), comps...), c: len(comps)}
}

// Reset clears the bitmap.
func (m *MRB) Reset() { clear(m.comps) }

// MemoryBytes reports the bitmap footprint.
func (m *MRB) MemoryBytes() int { return m.c * 8 }
