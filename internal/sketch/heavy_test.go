package sketch

import (
	"math/rand"
	"testing"

	"omniwindow/internal/packet"
)

// skewedStream sends `heavyCount` packets for each of nHeavy heavy keys
// and 1-5 packets for each of nMice mice, shuffled.
func skewedStream(seed int64, nHeavy, heavyCount, nMice int) ([]packet.FlowKey, map[packet.FlowKey]uint64) {
	rng := rand.New(rand.NewSource(seed))
	truth := map[packet.FlowKey]uint64{}
	var stream []packet.FlowKey
	for h := 0; h < nHeavy; h++ {
		k := fk(500000 + h)
		for i := 0; i < heavyCount; i++ {
			stream = append(stream, k)
		}
		truth[k] = uint64(heavyCount)
	}
	for m := 0; m < nMice; m++ {
		k := fk(1000000 + m)
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			stream = append(stream, k)
		}
		truth[k] = uint64(n)
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	return stream, truth
}

func TestMVDetectsHeavyHitters(t *testing.T) {
	stream, truth := skewedStream(1, 10, 500, 3000)
	mv := NewMV(4, 2048, 1)
	for _, k := range stream {
		mv.Update(k, 1)
	}
	const thr = 400
	reported := map[packet.FlowKey]bool{}
	for _, k := range mv.HeavyKeys(thr) {
		reported[k] = true
	}
	for k, c := range truth {
		if c >= thr && !reported[k] {
			t.Fatalf("MV missed heavy key %v (count %d)", k, c)
		}
	}
	for k := range reported {
		if truth[k] < thr/2 {
			t.Fatalf("MV reported mouse %v (count %d)", k, truth[k])
		}
	}
}

func TestMVQueryAccurateForHeavy(t *testing.T) {
	stream, truth := skewedStream(2, 5, 1000, 2000)
	mv := NewMV(4, 2048, 2)
	for _, k := range stream {
		mv.Update(k, 1)
	}
	for k, c := range truth {
		if c < 1000 {
			continue
		}
		got := mv.Query(k)
		if got < c*8/10 || got > c*12/10 {
			t.Fatalf("MV heavy estimate off: key %v got %d want ~%d", k, got, c)
		}
	}
}

func TestMVReset(t *testing.T) {
	mv := NewMV(2, 64, 3)
	mv.Update(fk(1), 100)
	mv.Reset()
	if mv.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
	if len(mv.HeavyKeys(1)) != 0 {
		t.Fatal("reset left candidates")
	}
}

func TestMVBytesBudget(t *testing.T) {
	mv := NewMVBytes(4, 8<<20, 1)
	if mv.MemoryBytes() > 8<<20 {
		t.Fatalf("memory %d over budget", mv.MemoryBytes())
	}
}

func TestHashPipeDetectsHeavyHitters(t *testing.T) {
	stream, truth := skewedStream(3, 10, 500, 3000)
	hp := NewHashPipe(4, 2048, 1)
	for _, k := range stream {
		hp.Update(k, 1)
	}
	const thr = 400
	reported := map[packet.FlowKey]bool{}
	for _, k := range hp.HeavyKeys(thr) {
		reported[k] = true
	}
	missed := 0
	for k, c := range truth {
		if c >= 500 && !reported[k] {
			missed++
		}
	}
	// HashPipe can split a key across stages losing some counts; allow a
	// small miss budget but not systematic failure.
	if missed > 2 {
		t.Fatalf("HashPipe missed %d/10 heavy keys", missed)
	}
}

func TestHashPipeNeverOverestimates(t *testing.T) {
	// HashPipe only drops counts (evicted tails), so Query <= truth.
	stream, truth := skewedStream(4, 5, 300, 2000)
	hp := NewHashPipe(4, 1024, 9)
	for _, k := range stream {
		hp.Update(k, 1)
	}
	for k, c := range truth {
		if got := hp.Query(k); got > c {
			t.Fatalf("HashPipe overestimated %v: got %d want <= %d", k, got, c)
		}
	}
}

func TestHashPipeSameKeyAccumulatesInStage0(t *testing.T) {
	hp := NewHashPipe(2, 64, 1)
	for i := 0; i < 10; i++ {
		hp.Update(fk(7), 1)
	}
	if got := hp.Query(fk(7)); got != 10 {
		t.Fatalf("repeat key count = %d want 10", got)
	}
}

func TestHashPipeResetAndMemory(t *testing.T) {
	hp := NewHashPipeBytes(4, 1<<20, 1)
	if hp.MemoryBytes() > 1<<20 {
		t.Fatalf("memory %d over budget", hp.MemoryBytes())
	}
	hp.Update(fk(1), 5)
	hp.Reset()
	if hp.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
}

func BenchmarkMVUpdate(b *testing.B) {
	mv := NewMV(4, 1<<14, 1)
	for i := 0; i < b.N; i++ {
		mv.Update(fk(i&1023), 1)
	}
}

func BenchmarkHashPipeUpdate(b *testing.B) {
	hp := NewHashPipe(4, 1<<14, 1)
	for i := 0; i < b.N; i++ {
		hp.Update(fk(i&1023), 1)
	}
}
