// Package sketch implements the streaming data structures the paper
// evaluates OmniWindow with (Exp#2, Exp#6, Exp#9, Exp#10):
//
//   - Count-Min Sketch and SuMax Sketch (per-flow frequency estimation)
//   - MV-Sketch and HashPipe (invertible heavy-hitter detection)
//   - SpreadSketch and Vector Bloom Filter (super-spreader detection)
//   - Linear Counting and HyperLogLog (cardinality estimation)
//   - Bloom filter (flowkey de-duplication in Algorithm 1)
//   - LossRadar (invertible Bloom lookup table for packet-loss detection)
//   - Sliding Sketch (the baseline sliding-window framework of Exp#2/#10)
//
// Every sketch is written over plain Go slices so the same implementation
// serves the data plane (wrapped by the two-region window state manager),
// the offline ideal baselines, and the controller. Each constructor takes
// an explicit memory budget or dimensions so experiments can reproduce the
// paper's allocations (e.g. 8 MB per original window, depth 4).
package sketch

import "omniwindow/internal/packet"

// Sketch is the common frequency-style interface: per-key additive updates
// and point queries.
type Sketch interface {
	// Update adds v to key k's statistic.
	Update(k packet.FlowKey, v uint64)
	// Query estimates key k's statistic.
	Query(k packet.FlowKey) uint64
	// Reset clears all state for the next window.
	Reset()
	// MemoryBytes reports the configured memory footprint.
	MemoryBytes() int
}

// Invertible is a sketch that can enumerate candidate heavy keys without
// an external key list (MV-Sketch, HashPipe, SpreadSketch).
type Invertible interface {
	Sketch
	// HeavyKeys returns the candidate keys whose estimate reaches the
	// threshold.
	HeavyKeys(threshold uint64) []packet.FlowKey
}

// Spread estimates per-source distinct destinations (super-spreaders).
type Spread interface {
	// UpdateSpread records that src contacted dst.
	UpdateSpread(src, dst packet.FlowKey)
	// QuerySpread estimates the number of distinct destinations of src.
	QuerySpread(src packet.FlowKey) uint64
	Reset()
	MemoryBytes() int
}

// Estimator estimates stream cardinality (Linear Counting, HyperLogLog).
type Estimator interface {
	// Insert adds an element.
	Insert(k packet.FlowKey)
	// Estimate returns the estimated number of distinct elements.
	Estimate() float64
	Reset()
	MemoryBytes() int
}

// dedupeKeys removes duplicates preserving first-seen order.
func dedupeKeys(keys []packet.FlowKey) []packet.FlowKey {
	seen := make(map[packet.FlowKey]bool, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
