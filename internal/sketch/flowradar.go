package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// frCell is one FlowRadar counting-table cell: XOR of the flow keys that
// hash here, how many distinct flows did, and their total packet count.
type frCell struct {
	flowXor  [packet.KeyBytes]byte
	flowCnt  uint32
	packetCt uint64
}

// FRCellBytes is the modeled per-cell footprint.
const FRCellBytes = packet.KeyBytes + 4 + 8

// FlowRadar (Li et al., NSDI'16) encodes per-flow counters for ALL flows
// in constant per-packet work: a flow filter (Bloom) ensures each flow's
// key is XORed into its cells exactly once, while every packet increments
// the packet counters. The controller DECODES the structure offline by
// peeling single-flow cells — the data plane cannot answer per-flow
// queries, which is exactly why OmniWindow migrates FlowRadar's raw state
// to the controller instead of generating AFRs (paper §8).
type FlowRadar struct {
	filter *Bloom
	cells  []frCell
	fam    *hashing.Family
	k      int
}

// NewFlowRadar builds a FlowRadar with `cells` counting cells, k cell
// hashes and a flow filter of filterBits bits.
func NewFlowRadar(cells, k, filterBits int, seed uint64) *FlowRadar {
	if cells <= 0 || k <= 0 {
		panic("sketch: FlowRadar parameters must be positive")
	}
	return &FlowRadar{
		filter: NewBloom(filterBits, 3, seed^0xF10),
		cells:  make([]frCell, cells),
		fam:    hashing.NewFamily(k, seed),
		k:      k,
	}
}

// NewFlowRadarBytes builds a FlowRadar within memoryBytes (80% counting
// table, 20% flow filter).
func NewFlowRadarBytes(memoryBytes int, seed uint64) *FlowRadar {
	cells := memoryBytes * 4 / 5 / FRCellBytes
	if cells < 1 {
		cells = 1
	}
	return NewFlowRadar(cells, 3, memoryBytes/5*8, seed)
}

// Update records one packet of flow k.
func (fr *FlowRadar) Update(k packet.FlowKey, v uint64) {
	newFlow := !fr.filter.TestAndAdd(k)
	kb := k.Bytes()
	for i := 0; i < fr.k; i++ {
		c := &fr.cells[fr.fam.Index(i, k, len(fr.cells))]
		if newFlow {
			for j := range kb {
				c.flowXor[j] ^= kb[j]
			}
			c.flowCnt++
		}
		c.packetCt += v
	}
}

// Decode recovers per-flow packet counts by iteratively peeling cells
// that contain exactly one flow. ok is false when peeling stalls (too
// many flows for the cell budget); the recovered subset is still
// returned.
func (fr *FlowRadar) Decode() (counts map[packet.FlowKey]uint64, ok bool) {
	// Work on copies: decoding is destructive and the controller may
	// decode a snapshot more than once.
	cells := append([]frCell(nil), fr.cells...)
	counts = make(map[packet.FlowKey]uint64)
	for {
		progressed := false
		for i := range cells {
			c := &cells[i]
			if c.flowCnt != 1 {
				continue
			}
			key := packet.KeyFromBytes(c.flowXor)
			n := c.packetCt
			counts[key] = n
			kb := key.Bytes()
			for j := 0; j < fr.k; j++ {
				cc := &cells[fr.fam.Index(j, key, len(cells))]
				for b := range kb {
					cc.flowXor[b] ^= kb[b]
				}
				cc.flowCnt--
				cc.packetCt -= n
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	for i := range cells {
		if cells[i].flowCnt != 0 {
			return counts, false
		}
	}
	return counts, true
}

// RawCell exposes cell i's registers as four words for state migration
// (§8): [xorLo, xorHi, flowCnt, packetCt].
func (fr *FlowRadar) RawCell(i int) [4]uint64 {
	c := &fr.cells[i]
	var lo, hi uint64
	for j := 0; j < 8; j++ {
		lo |= uint64(c.flowXor[j]) << (8 * j)
	}
	for j := 8; j < packet.KeyBytes; j++ {
		hi |= uint64(c.flowXor[j]) << (8 * (j - 8))
	}
	return [4]uint64{lo, hi, uint64(c.flowCnt), c.packetCt}
}

// RawState exposes the whole structure as flat words (RawCell
// concatenated).
func (fr *FlowRadar) RawState() []uint64 {
	out := make([]uint64, 0, len(fr.cells)*4)
	for i := range fr.cells {
		c := fr.RawCell(i)
		out = append(out, c[:]...)
	}
	return out
}

// FlowRadarFromRaw reconstructs a decodable FlowRadar from migrated raw
// words (the controller-side half of state migration). The geometry and
// seed must match the data-plane instance.
func FlowRadarFromRaw(words []uint64, k int, seed uint64) *FlowRadar {
	cells := len(words) / 4
	fr := NewFlowRadar(cells, k, 64, seed)
	for i := 0; i < cells; i++ {
		lo, hi := words[i*4], words[i*4+1]
		c := &fr.cells[i]
		for j := 0; j < 8; j++ {
			c.flowXor[j] = byte(lo >> (8 * j))
		}
		for j := 8; j < packet.KeyBytes; j++ {
			c.flowXor[j] = byte(hi >> (8 * (j - 8)))
		}
		c.flowCnt = uint32(words[i*4+2])
		c.packetCt = words[i*4+3]
	}
	return fr
}

// Cells returns the counting-table size (slots for migration/reset).
func (fr *FlowRadar) Cells() int { return len(fr.cells) }

// Reset clears the structure.
func (fr *FlowRadar) Reset() {
	fr.filter.Reset()
	clear(fr.cells)
}

// MemoryBytes reports the footprint.
func (fr *FlowRadar) MemoryBytes() int {
	return len(fr.cells)*FRCellBytes + fr.filter.MemoryBytes()
}
