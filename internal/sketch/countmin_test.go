package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstIP: uint32(i >> 8), SrcPort: uint16(i), DstPort: 80, Proto: 6}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 1024, 1)
	truth := map[packet.FlowKey]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := fk(rng.Intn(500))
		v := uint64(rng.Intn(5) + 1)
		cm.Update(k, v)
		truth[k] += v
	}
	for k, v := range truth {
		if got := cm.Query(k); got < v {
			t.Fatalf("CM underestimated %v: got %d want >= %d", k, got, v)
		}
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cm := NewCountMin(4, 1<<14, 2)
	for i := 0; i < 50; i++ {
		cm.Update(fk(i), uint64(i+1))
	}
	for i := 0; i < 50; i++ {
		if got := cm.Query(fk(i)); got != uint64(i+1) {
			t.Fatalf("sparse CM not exact: key %d got %d", i, got)
		}
	}
	if cm.Query(fk(999)) != 0 {
		t.Fatal("unseen key should be 0 in sparse sketch")
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(2, 64, 3)
	cm.Update(fk(1), 10)
	cm.Reset()
	if cm.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCountMinMergeEqualsCombinedStream(t *testing.T) {
	a := NewCountMin(3, 256, 7)
	b := NewCountMin(3, 256, 7)
	c := NewCountMin(3, 256, 7)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		k := fk(rng.Intn(300))
		if i%2 == 0 {
			a.Update(k, 1)
		} else {
			b.Update(k, 1)
		}
		c.Update(k, 1)
	}
	a.Merge(b)
	for i := 0; i < 300; i++ {
		if a.Query(fk(i)) != c.Query(fk(i)) {
			t.Fatalf("merge mismatch for key %d", i)
		}
	}
}

func TestCountMinMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCountMin(2, 64, 1).Merge(NewCountMin(2, 128, 1))
}

func TestCountMinBytesBudget(t *testing.T) {
	cm := NewCountMinBytes(4, 8<<20, 1)
	if cm.MemoryBytes() > 8<<20 {
		t.Fatalf("memory %d exceeds budget", cm.MemoryBytes())
	}
	if cm.Width() != (8<<20)/(4*8) {
		t.Fatalf("width = %d", cm.Width())
	}
	if cm.Depth() != 4 {
		t.Fatalf("depth = %d", cm.Depth())
	}
	// Tiny budget still yields a usable sketch.
	if NewCountMinBytes(4, 1, 1).Width() != 1 {
		t.Fatal("tiny budget should clamp width to 1")
	}
}

func TestSuMaxNeverUnderestimates(t *testing.T) {
	sm := NewSuMax(4, 1024, 1)
	truth := map[packet.FlowKey]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := fk(rng.Intn(500))
		v := uint64(rng.Intn(3) + 1)
		sm.Update(k, v)
		truth[k] += v
	}
	for k, v := range truth {
		if got := sm.Query(k); got < v {
			t.Fatalf("SuMax underestimated %v: got %d want >= %d", k, got, v)
		}
	}
}

func TestSuMaxTighterThanCountMin(t *testing.T) {
	// Conservative update must not be worse than Count-Min on total
	// overestimation under a skewed load into a small sketch.
	cm := NewCountMin(4, 128, 5)
	sm := NewSuMax(4, 128, 5)
	truth := map[packet.FlowKey]uint64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30000; i++ {
		k := fk(rng.Intn(2000))
		cm.Update(k, 1)
		sm.Update(k, 1)
		truth[k]++
	}
	var cmErr, smErr uint64
	for k, v := range truth {
		cmErr += cm.Query(k) - v
		smErr += sm.Query(k) - v
	}
	if smErr > cmErr {
		t.Fatalf("SuMax error %d exceeds Count-Min error %d", smErr, cmErr)
	}
}

func TestSuMaxResetAndMemory(t *testing.T) {
	sm := NewSuMaxBytes(4, 1<<16, 9)
	sm.Update(fk(1), 3)
	if sm.Query(fk(1)) != 3 {
		t.Fatal("query after update")
	}
	sm.Reset()
	if sm.Query(fk(1)) != 0 {
		t.Fatal("reset did not clear")
	}
	if sm.MemoryBytes() > 1<<16 {
		t.Fatalf("memory %d over budget", sm.MemoryBytes())
	}
}

func TestCountMinQueryMonotoneProperty(t *testing.T) {
	// Property: adding more updates never decreases any query.
	f := func(keys []uint16) bool {
		cm := NewCountMin(3, 128, 11)
		probe := fk(42)
		prev := cm.Query(probe)
		for _, k := range keys {
			cm.Update(fk(int(k)), 1)
			if q := cm.Query(probe); q < prev {
				return false
			} else {
				prev = q
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCountMin(0, 10, 1) },
		func() { NewCountMin(2, 0, 1) },
		func() { NewSuMax(0, 10, 1) },
		func() { NewMV(0, 10, 1) },
		func() { NewHashPipe(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected dimension panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	cm := NewCountMin(4, 1<<16, 1)
	for i := 0; i < b.N; i++ {
		cm.Update(fk(i&1023), 1)
	}
}

func BenchmarkSuMaxUpdate(b *testing.B) {
	sm := NewSuMax(4, 1<<16, 1)
	for i := 0; i < b.N; i++ {
		sm.Update(fk(i&1023), 1)
	}
}
