package sketch

import "omniwindow/internal/packet"

// Sliding implements the basic Sliding Sketch design (Gou et al., KDD'20)
// as the paper's Exp#2/Exp#10 baseline: every bucket of an underlying
// sketch is extended into two buckets — one holding the latest tumbling
// window, the other the previous one — realized here as two half-width
// instances. Queries combine both buckets, so an answer "actually contains
// information of more than one sliding window": the systematic
// overestimation that costs Sliding Sketch precision in the paper.
type Sliding struct {
	cur, prev Sketch
}

// NewSliding wraps two same-shape sketch instances. Callers build each
// with half the width of the plain sketch so total memory matches (the
// paper: "the same depth but half width ... to ensure the same memory
// resource occupation").
func NewSliding(cur, prev Sketch) *Sliding {
	return &Sliding{cur: cur, prev: prev}
}

// Update implements Sketch: only the current bucket absorbs traffic.
func (s *Sliding) Update(k packet.FlowKey, v uint64) { s.cur.Update(k, v) }

// Query implements Sketch: the sum of both buckets — the design's
// deliberate approximation of the last full window.
func (s *Sliding) Query(k packet.FlowKey) uint64 {
	return s.cur.Query(k) + s.prev.Query(k)
}

// Advance rotates the buckets at a tumbling-window boundary: the current
// bucket becomes the previous one and the (recycled) previous instance is
// cleared to receive new traffic.
func (s *Sliding) Advance() {
	s.cur, s.prev = s.prev, s.cur
	s.cur.Reset()
}

// Reset implements Sketch.
func (s *Sliding) Reset() {
	s.cur.Reset()
	s.prev.Reset()
}

// MemoryBytes implements Sketch.
func (s *Sliding) MemoryBytes() int { return s.cur.MemoryBytes() + s.prev.MemoryBytes() }

// SlidingInvertible is Sliding over an invertible sketch (e.g. MV-Sketch
// in Exp#10): candidates are decoded from both buckets and re-qualified
// against the combined estimate.
type SlidingInvertible struct {
	Sliding
	curInv, prevInv Invertible
}

// NewSlidingInvertible wraps two invertible instances.
func NewSlidingInvertible(cur, prev Invertible) *SlidingInvertible {
	return &SlidingInvertible{Sliding: Sliding{cur: cur, prev: prev}, curInv: cur, prevInv: prev}
}

// Advance rotates buckets, keeping the invertible views aligned.
func (s *SlidingInvertible) Advance() {
	s.Sliding.Advance()
	s.curInv, s.prevInv = s.prevInv, s.curInv
}

// HeavyKeys implements Invertible over the combined estimate.
func (s *SlidingInvertible) HeavyKeys(threshold uint64) []packet.FlowKey {
	// Decode candidates from both buckets with a permissive threshold,
	// then qualify against the combined (cur+prev) estimate.
	cand := append(s.curInv.HeavyKeys(1), s.prevInv.HeavyKeys(1)...)
	var out []packet.FlowKey
	for _, k := range dedupeKeys(cand) {
		if s.Query(k) >= threshold {
			out = append(out, k)
		}
	}
	return out
}
