package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// PacketID identifies a single packet for loss detection: its flow key and
// per-flow sequence number.
type PacketID struct {
	Key packet.FlowKey
	Seq uint32
}

// lrCell is one invertible-Bloom-lookup-table cell: the signed element
// count plus XOR accumulators for the key bytes, the sequence number, and
// an integrity checksum used to recognize pure cells.
type lrCell struct {
	count    int64
	keyXor   [packet.KeyBytes]byte
	seqXor   uint32
	checkXor uint64
}

// LRCellBytes is the modeled per-cell footprint.
const LRCellBytes = 8 + packet.KeyBytes + 4 + 8

// LossRadar (Li et al., CoNEXT'16) detects individual lost packets between
// two meters: each switch inserts every packet into an IBLT; subtracting
// the downstream meter from the upstream one leaves exactly the lost
// packets, which Decode recovers by peeling pure cells. Both meters must
// cover the *same* packet set — which is precisely the window-consistency
// requirement OmniWindow's Lamport stamping provides (Exp#9).
type LossRadar struct {
	cells []lrCell
	fam   *hashing.Family
	m     int
	check uint64
}

// NewLossRadar builds a LossRadar meter with m cells and k hash functions.
func NewLossRadar(m, k int, seed uint64) *LossRadar {
	if m <= 0 || k <= 0 {
		panic("sketch: LossRadar parameters must be positive")
	}
	fam := hashing.NewFamily(k+1, seed)
	return &LossRadar{cells: make([]lrCell, m), fam: fam, m: m, check: fam.Seed(k)}
}

// checksum produces the purity-detection digest of one packet identity.
func (lr *LossRadar) checksum(id PacketID) uint64 {
	return hashing.Pair64(id.Key, uint64(id.Seq), lr.check)
}

// cell returns the i-th cell index for a packet identity. The index hashes
// the full (key, seq) identity: distinct packets of one flow must spread
// across cells or peeling could never isolate them.
func (lr *LossRadar) cell(i int, id PacketID) int {
	h := hashing.Pair64(id.Key, uint64(id.Seq), lr.fam.Seed(i))
	return int(uint64(uint32(h)) * uint64(lr.m) >> 32)
}

// Insert records a packet passing the meter.
func (lr *LossRadar) Insert(id PacketID) {
	kb := id.Key.Bytes()
	cs := lr.checksum(id)
	for i := 0; i < lr.fam.Size()-1; i++ {
		c := &lr.cells[lr.cell(i, id)]
		c.count++
		for j := range kb {
			c.keyXor[j] ^= kb[j]
		}
		c.seqXor ^= id.Seq
		c.checkXor ^= cs
	}
}

// Subtract removes another meter's contents cell-wise (downstream from
// upstream), leaving the difference set. Both meters must share dimensions
// and seed.
func (lr *LossRadar) Subtract(o *LossRadar) {
	if lr.m != o.m || lr.fam.Size() != o.fam.Size() {
		panic("sketch: subtracting incompatible LossRadar meters")
	}
	for i := range lr.cells {
		a, b := &lr.cells[i], &o.cells[i]
		a.count -= b.count
		for j := range a.keyXor {
			a.keyXor[j] ^= b.keyXor[j]
		}
		a.seqXor ^= b.seqXor
		a.checkXor ^= b.checkXor
	}
}

// remove deletes one decoded element with the given sign from the table.
func (lr *LossRadar) remove(id PacketID, sign int64) {
	kb := id.Key.Bytes()
	cs := lr.checksum(id)
	for i := 0; i < lr.fam.Size()-1; i++ {
		c := &lr.cells[lr.cell(i, id)]
		c.count -= sign
		for j := range kb {
			c.keyXor[j] ^= kb[j]
		}
		c.seqXor ^= id.Seq
		c.checkXor ^= cs
	}
}

// Decode peels the table and returns the recovered difference: packets
// with positive sign (seen upstream, missing downstream — i.e. lost) and
// negative sign (seen only downstream, e.g. mis-windowed extras). ok is
// false if peeling stalled before emptying the table (too many losses for
// the cell budget).
func (lr *LossRadar) Decode() (lost, extra []PacketID, ok bool) {
	for {
		progressed := false
		for i := range lr.cells {
			c := &lr.cells[i]
			if c.count != 1 && c.count != -1 {
				continue
			}
			id := PacketID{Key: packet.KeyFromBytes(c.keyXor), Seq: c.seqXor}
			if lr.checksum(id) != c.checkXor {
				continue // mixed cell that happens to have count ±1
			}
			sign := c.count
			lr.remove(id, sign)
			if sign > 0 {
				lost = append(lost, id)
			} else {
				extra = append(extra, id)
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	for i := range lr.cells {
		if lr.cells[i].count != 0 {
			return lost, extra, false
		}
	}
	return lost, extra, true
}

// Reset clears the meter for the next window.
func (lr *LossRadar) Reset() { clear(lr.cells) }

// MemoryBytes reports the table footprint.
func (lr *LossRadar) MemoryBytes() int { return lr.m * LRCellBytes }
