package sketch

import (
	"sort"

	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// CountSketch (Charikar, Chen, Farach-Colton) estimates frequencies with
// signed updates: unlike Count-Min its error is two-sided and unbiased,
// which is what UnivMon's recursive estimator needs.
type CountSketch struct {
	rows [][]int64
	fam  *hashing.Family
	w    int
	// signSeed derives the per-row ±1 hashes.
	signSeed uint64
	// med is scratch space for the median.
	med []int64
}

// NewCountSketch builds a d x w Count-Sketch.
func NewCountSketch(d, w int, seed uint64) *CountSketch {
	if d <= 0 || w <= 0 {
		panic("sketch: CountSketch dimensions must be positive")
	}
	cs := &CountSketch{fam: hashing.NewFamily(d, seed), w: w, signSeed: seed ^ 0x51611, med: make([]int64, d)}
	cs.rows = make([][]int64, d)
	backing := make([]int64, d*w)
	for i := range cs.rows {
		cs.rows[i], backing = backing[:w], backing[w:]
	}
	return cs
}

// sign returns the ±1 hash of key k for row i.
func (cs *CountSketch) sign(i int, k packet.FlowKey) int64 {
	if hashing.Key64(k, cs.signSeed+uint64(i)*0x9E37)&1 == 0 {
		return -1
	}
	return 1
}

// Update adds v (signed) to key k's estimate.
func (cs *CountSketch) Update(k packet.FlowKey, v int64) {
	for i, row := range cs.rows {
		row[cs.fam.Index(i, k, cs.w)] += cs.sign(i, k) * v
	}
}

// Estimate returns the median-of-rows unbiased estimate of k's frequency.
func (cs *CountSketch) Estimate(k packet.FlowKey) int64 {
	for i, row := range cs.rows {
		cs.med[i] = cs.sign(i, k) * row[cs.fam.Index(i, k, cs.w)]
	}
	tmp := append([]int64(nil), cs.med...)
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Reset clears the sketch.
func (cs *CountSketch) Reset() {
	for _, row := range cs.rows {
		clear(row)
	}
}

// MemoryBytes reports the footprint.
func (cs *CountSketch) MemoryBytes() int { return len(cs.rows) * cs.w * 8 }
