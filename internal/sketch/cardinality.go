package sketch

import (
	"math"
	"math/bits"

	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// LinearCounting (Whang et al., TODS'90) estimates cardinality with an
// m-bit bitmap: n-hat = -m * ln(z/m) where z is the number of zero bits.
type LinearCounting struct {
	bits []uint64
	m    int
	seed uint64
}

// NewLinearCounting builds a counter with m bits (rounded up to a multiple
// of 64).
func NewLinearCounting(m int, seed uint64) *LinearCounting {
	if m <= 0 {
		panic("sketch: LinearCounting size must be positive")
	}
	words := (m + 63) / 64
	return &LinearCounting{bits: make([]uint64, words), m: words * 64, seed: seed}
}

// NewLinearCountingBytes builds a counter within memoryBytes.
func NewLinearCountingBytes(memoryBytes int, seed uint64) *LinearCounting {
	return NewLinearCounting(memoryBytes*8, seed)
}

// Insert implements Estimator.
func (lc *LinearCounting) Insert(k packet.FlowKey) {
	h := hashing.Key64(k, lc.seed) % uint64(lc.m)
	lc.bits[h/64] |= 1 << (h % 64)
}

// InsertHash records a precomputed element hash (used when the element is
// not a bare flow key, e.g. key+attribute pairs).
func (lc *LinearCounting) InsertHash(h uint64) {
	h %= uint64(lc.m)
	lc.bits[h/64] |= 1 << (h % 64)
}

// Estimate implements Estimator.
func (lc *LinearCounting) Estimate() float64 {
	zero := 0
	for _, w := range lc.bits {
		zero += 64 - bits.OnesCount64(w)
	}
	if zero == 0 {
		// Saturated: report the asymptote for one remaining zero bit.
		zero = 1
	}
	m := float64(lc.m)
	return -m * math.Log(float64(zero)/m)
}

// Merge folds another counter with identical size and seed into lc
// (bitwise OR — lossless, so sub-window bitmaps merge into exact-union
// window bitmaps).
func (lc *LinearCounting) Merge(o *LinearCounting) {
	if lc.m != o.m {
		panic("sketch: merging incompatible LinearCounting bitmaps")
	}
	for i, w := range o.bits {
		lc.bits[i] |= w
	}
}

// Reset implements Estimator.
func (lc *LinearCounting) Reset() { clear(lc.bits) }

// MemoryBytes implements Estimator.
func (lc *LinearCounting) MemoryBytes() int { return lc.m / 8 }

// HyperLogLog (Flajolet et al.; Heule et al., EDBT'13 practice version)
// estimates cardinality with m one-byte registers holding the maximum
// leading-zero rank observed per substream.
type HyperLogLog struct {
	regs []uint8
	p    uint // m = 2^p
	seed uint64
}

// NewHyperLogLog builds an HLL with 2^p registers (4 <= p <= 18).
func NewHyperLogLog(p uint, seed uint64) *HyperLogLog {
	if p < 4 || p > 18 {
		panic("sketch: HyperLogLog precision out of range [4,18]")
	}
	return &HyperLogLog{regs: make([]uint8, 1<<p), p: p, seed: seed}
}

// NewHyperLogLogBytes builds the largest HLL fitting memoryBytes
// (one byte per register, as in the paper's Exp#2 configuration).
func NewHyperLogLogBytes(memoryBytes int, seed uint64) *HyperLogLog {
	p := uint(4)
	for p < 18 && 1<<(p+1) <= memoryBytes {
		p++
	}
	return NewHyperLogLog(p, seed)
}

// Insert implements Estimator.
func (h *HyperLogLog) Insert(k packet.FlowKey) {
	h.InsertHash(hashing.Key64(k, h.seed))
}

// InsertHash records a precomputed element hash.
func (h *HyperLogLog) InsertHash(x uint64) {
	idx := x >> (64 - h.p)
	rest := x << h.p
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if maxRank := uint8(64 - h.p + 1); rank > maxRank {
		rank = maxRank
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// alpha returns the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate implements Estimator, with the standard small-range correction
// (fall back to linear counting while registers are sparse).
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(len(h.regs)) * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Merge folds another HLL with identical precision and seed into h by
// taking per-register maxima. HLL merging is lossless, which is why
// distinction statistics can be merged across sub-windows (§4.2).
func (h *HyperLogLog) Merge(o *HyperLogLog) {
	if len(h.regs) != len(o.regs) {
		panic("sketch: merging incompatible HyperLogLogs")
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// Reset implements Estimator.
func (h *HyperLogLog) Reset() { clear(h.regs) }

// MemoryBytes implements Estimator.
func (h *HyperLogLog) MemoryBytes() int { return len(h.regs) }
