package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// hpSlot is one HashPipe table slot: a resident key and its counter.
type hpSlot struct {
	K packet.FlowKey
	C uint64
}

// HPSlotBytes is the modeled per-slot footprint: 13-byte key padded to 16
// plus an 8-byte counter.
const HPSlotBytes = 24

// HashPipe (Sivaraman et al., SOSR'17) tracks heavy hitters entirely in
// the data plane with d pipelined stages of (key, count) tables. The first
// stage always inserts the incoming key, evicting the resident entry,
// which then "rolls" through later stages, swapping with lighter residents
// — so heavy keys settle in the pipe while mice churn through.
type HashPipe struct {
	stages [][]hpSlot
	fam    *hashing.Family
	w      int
}

// NewHashPipe builds a HashPipe with d stages of w slots.
func NewHashPipe(d, w int, seed uint64) *HashPipe {
	if d <= 0 || w <= 0 {
		panic("sketch: HashPipe dimensions must be positive")
	}
	hp := &HashPipe{fam: hashing.NewFamily(d, seed), w: w}
	hp.stages = make([][]hpSlot, d)
	backing := make([]hpSlot, d*w)
	for i := range hp.stages {
		hp.stages[i], backing = backing[:w], backing[w:]
	}
	return hp
}

// NewHashPipeBytes builds a HashPipe of depth d within memoryBytes.
func NewHashPipeBytes(d, memoryBytes int, seed uint64) *HashPipe {
	w := memoryBytes / (d * HPSlotBytes)
	if w < 1 {
		w = 1
	}
	return NewHashPipe(d, w, seed)
}

// Update implements Sketch.
func (hp *HashPipe) Update(k packet.FlowKey, v uint64) {
	// Stage 0: always insert, evicting the resident.
	carryK, carryC := k, v
	s0 := &hp.stages[0][hp.fam.Index(0, k, hp.w)]
	if s0.K == carryK {
		s0.C += carryC
		return
	}
	s0.K, carryK = carryK, s0.K
	s0.C, carryC = carryC, s0.C
	if carryK.IsZero() {
		return
	}
	// Later stages: merge on match, fill empty slots, or swap if the
	// carried entry is heavier than the resident.
	for i := 1; i < len(hp.stages); i++ {
		s := &hp.stages[i][hp.fam.Index(i, carryK, hp.w)]
		switch {
		case s.K == carryK:
			s.C += carryC
			return
		case s.K.IsZero():
			s.K, s.C = carryK, carryC
			return
		case carryC > s.C:
			s.K, carryK = carryK, s.K
			s.C, carryC = carryC, s.C
		}
	}
	// The final carried entry is dropped (HashPipe's bounded error).
}

// Query implements Sketch: the sum of this key's counters across stages
// (a key may reside in several stages after evictions).
func (hp *HashPipe) Query(k packet.FlowKey) uint64 {
	var est uint64
	for i, st := range hp.stages {
		s := &st[hp.fam.Index(i, k, hp.w)]
		if s.K == k {
			est += s.C
		}
	}
	return est
}

// HeavyKeys implements Invertible.
func (hp *HashPipe) HeavyKeys(threshold uint64) []packet.FlowKey {
	var out []packet.FlowKey
	for _, st := range hp.stages {
		for i := range st {
			k := st[i].K
			if k.IsZero() {
				continue
			}
			if hp.Query(k) >= threshold {
				out = append(out, k)
			}
		}
	}
	return dedupeKeys(out)
}

// Reset implements Sketch.
func (hp *HashPipe) Reset() {
	for _, st := range hp.stages {
		clear(st)
	}
}

// MemoryBytes implements Sketch.
func (hp *HashPipe) MemoryBytes() int { return len(hp.stages) * hp.w * HPSlotBytes }
