package sketch

import (
	"testing"

	"omniwindow/internal/packet"
)

func srcKey(i int) packet.FlowKey { return packet.FlowKey{SrcIP: uint32(0xC0A80000 + i), Proto: 17} }
func dstKey(i int) packet.FlowKey { return packet.FlowKey{DstIP: uint32(0x0A000000 + i), Proto: 17} }

func TestSpreadSketchSeparatesSpreaders(t *testing.T) {
	s := NewSpreadSketch(4, 4096, 4, 1)
	// 5 super-spreaders with 400 distinct destinations, 500 normal
	// sources with 2 each.
	for h := 0; h < 5; h++ {
		for d := 0; d < 400; d++ {
			s.UpdateSpread(srcKey(h), dstKey(h*1000+d))
		}
	}
	for m := 0; m < 500; m++ {
		s.UpdateSpread(srcKey(100+m), dstKey(50000+m))
		s.UpdateSpread(srcKey(100+m), dstKey(60000+m))
	}
	for h := 0; h < 5; h++ {
		est := s.QuerySpread(srcKey(h))
		if est < 150 {
			t.Fatalf("spreader %d estimate too low: %d", h, est)
		}
	}
	low := 0
	for m := 0; m < 500; m++ {
		if s.QuerySpread(srcKey(100+m)) < 50 {
			low++
		}
	}
	if low < 450 {
		t.Fatalf("too many normal sources look heavy: only %d/500 low", low)
	}
}

func TestSpreadSketchInvertible(t *testing.T) {
	s := NewSpreadSketch(4, 4096, 4, 2)
	for h := 0; h < 3; h++ {
		for d := 0; d < 500; d++ {
			s.UpdateSpread(srcKey(h), dstKey(h*1000+d))
		}
	}
	for m := 0; m < 300; m++ {
		s.UpdateSpread(srcKey(100+m), dstKey(90000+m))
	}
	found := map[packet.FlowKey]bool{}
	for _, k := range s.HeavySpreaders(200) {
		found[k] = true
	}
	for h := 0; h < 3; h++ {
		if !found[srcKey(h)] {
			t.Fatalf("HeavySpreaders missed spreader %d", h)
		}
	}
}

func TestSpreadSketchDuplicateDestinationsIgnored(t *testing.T) {
	s := NewSpreadSketch(4, 1024, 4, 3)
	for i := 0; i < 1000; i++ {
		s.UpdateSpread(srcKey(1), dstKey(7)) // same destination repeatedly
	}
	if est := s.QuerySpread(srcKey(1)); est > 5 {
		t.Fatalf("duplicate destinations inflated spread: %d", est)
	}
}

func TestSpreadSketchReset(t *testing.T) {
	s := NewSpreadSketch(2, 64, 4, 4)
	s.UpdateSpread(srcKey(1), dstKey(1))
	s.Reset()
	if s.QuerySpread(srcKey(1)) != 0 {
		t.Fatalf("reset spread = %d", s.QuerySpread(srcKey(1)))
	}
	if len(s.HeavySpreaders(1)) != 0 {
		t.Fatal("reset left candidates")
	}
}

func TestSpreadSketchBytesBudget(t *testing.T) {
	s := NewSpreadSketchBytes(4, 8<<20, 5)
	if s.MemoryBytes() > 8<<20 {
		t.Fatalf("memory %d over budget", s.MemoryBytes())
	}
}

func TestVBFSeparatesSpreaders(t *testing.T) {
	v := NewVBF(5, 4096, 1) // the paper's Exp#2 configuration
	for d := 0; d < 40; d++ {
		v.UpdateSpread(srcKey(1), dstKey(d))
	}
	v.UpdateSpread(srcKey(2), dstKey(1))
	v.UpdateSpread(srcKey(2), dstKey(2))
	heavy := v.QuerySpread(srcKey(1))
	light := v.QuerySpread(srcKey(2))
	if heavy < 25 {
		t.Fatalf("heavy spreader estimate too low: %d", heavy)
	}
	if light > 10 {
		t.Fatalf("light source estimate too high: %d", light)
	}
}

func TestVBFDuplicateDestinations(t *testing.T) {
	v := NewVBF(5, 1024, 2)
	for i := 0; i < 500; i++ {
		v.UpdateSpread(srcKey(3), dstKey(9))
	}
	if est := v.QuerySpread(srcKey(3)); est > 4 {
		t.Fatalf("duplicates inflated VBF estimate: %d", est)
	}
}

func TestVBFResetAndMemory(t *testing.T) {
	v := NewVBF(5, 4096, 3)
	v.UpdateSpread(srcKey(1), dstKey(1))
	v.Reset()
	if v.QuerySpread(srcKey(1)) != 0 {
		t.Fatalf("reset VBF spread = %d", v.QuerySpread(srcKey(1)))
	}
	if v.MemoryBytes() != 5*4096*8 {
		t.Fatalf("memory = %d", v.MemoryBytes())
	}
}

func TestSpreadInterfacesSatisfied(t *testing.T) {
	var _ Spread = NewSpreadSketch(2, 64, 4, 1)
	var _ Spread = NewVBF(2, 64, 1)
}
