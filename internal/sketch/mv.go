package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// mvBucket is one MV-Sketch bucket: the total value V, the majority-vote
// candidate key K and its vote counter C.
type mvBucket struct {
	V uint64
	K packet.FlowKey
	C int64
}

// MV is the MV-Sketch (Tang, Huang, Lee — INFOCOM'19 / ToN'20): an
// invertible sketch for heavy-flow detection. Each bucket tracks the total
// update mass plus a majority-vote candidate, so heavy keys can be decoded
// from the buckets themselves without an external key list.
type MV struct {
	rows [][]mvBucket
	fam  *hashing.Family
	w    int
}

// MVBucketBytes is the modeled per-bucket footprint: 8 (V) + 13 (key,
// padded to 16) + 8 (C).
const MVBucketBytes = 32

// NewMV builds a d x w MV-Sketch.
func NewMV(d, w int, seed uint64) *MV {
	if d <= 0 || w <= 0 {
		panic("sketch: MV dimensions must be positive")
	}
	mv := &MV{fam: hashing.NewFamily(d, seed), w: w}
	mv.rows = make([][]mvBucket, d)
	backing := make([]mvBucket, d*w)
	for i := range mv.rows {
		mv.rows[i], backing = backing[:w], backing[w:]
	}
	return mv
}

// NewMVBytes builds an MV-Sketch of depth d within memoryBytes.
func NewMVBytes(d, memoryBytes int, seed uint64) *MV {
	w := memoryBytes / (d * MVBucketBytes)
	if w < 1 {
		w = 1
	}
	return NewMV(d, w, seed)
}

// Update implements Sketch using the majority-vote rule.
func (mv *MV) Update(k packet.FlowKey, v uint64) {
	for i, row := range mv.rows {
		b := &row[mv.fam.Index(i, k, mv.w)]
		b.V += v
		if b.K == k {
			b.C += int64(v)
			continue
		}
		b.C -= int64(v)
		if b.C < 0 {
			b.K = k
			b.C = -b.C
		}
	}
}

// Query implements Sketch. For each row the estimate is (V+C)/2 when the
// bucket's candidate is k (k holds at least that much of the mass) and
// (V-C)/2 otherwise; the final estimate is the row minimum.
func (mv *MV) Query(k packet.FlowKey) uint64 {
	est := ^uint64(0)
	for i, row := range mv.rows {
		b := &row[mv.fam.Index(i, k, mv.w)]
		var e uint64
		if b.K == k {
			e = (b.V + uint64(b.C)) / 2
		} else {
			e = (b.V - uint64(b.C)) / 2
		}
		if e < est {
			est = e
		}
	}
	return est
}

// HeavyKeys implements Invertible: every bucket's candidate whose queried
// estimate reaches the threshold is reported.
func (mv *MV) HeavyKeys(threshold uint64) []packet.FlowKey {
	var out []packet.FlowKey
	for _, row := range mv.rows {
		for i := range row {
			k := row[i].K
			if k.IsZero() {
				continue
			}
			if mv.Query(k) >= threshold {
				out = append(out, k)
			}
		}
	}
	return dedupeKeys(out)
}

// Reset implements Sketch.
func (mv *MV) Reset() {
	for _, row := range mv.rows {
		clear(row)
	}
}

// MemoryBytes implements Sketch.
func (mv *MV) MemoryBytes() int { return len(mv.rows) * mv.w * MVBucketBytes }
