package sketch

import (
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// CountMin is the classic Count-Min sketch (Cormode & Muthukrishnan): d
// rows of w counters; Update increments one counter per row; Query takes
// the row minimum, giving a one-sided (over-)estimate.
type CountMin struct {
	rows [][]uint64
	fam  *hashing.Family
	w    int
}

// NewCountMin builds a d x w Count-Min sketch seeded from seed.
func NewCountMin(d, w int, seed uint64) *CountMin {
	if d <= 0 || w <= 0 {
		panic("sketch: CountMin dimensions must be positive")
	}
	cm := &CountMin{fam: hashing.NewFamily(d, seed), w: w}
	cm.rows = make([][]uint64, d)
	backing := make([]uint64, d*w)
	for i := range cm.rows {
		cm.rows[i], backing = backing[:w], backing[w:]
	}
	return cm
}

// NewCountMinBytes builds a Count-Min sketch of depth d that fits within
// memoryBytes (8-byte counters), matching the paper's "width is calculated
// according to the depth and the memory usage of each bucket".
func NewCountMinBytes(d, memoryBytes int, seed uint64) *CountMin {
	w := memoryBytes / (d * 8)
	if w < 1 {
		w = 1
	}
	return NewCountMin(d, w, seed)
}

// Depth returns the number of rows.
func (cm *CountMin) Depth() int { return len(cm.rows) }

// Width returns the number of counters per row.
func (cm *CountMin) Width() int { return cm.w }

// Update implements Sketch.
func (cm *CountMin) Update(k packet.FlowKey, v uint64) {
	for i, row := range cm.rows {
		row[cm.fam.Index(i, k, cm.w)] += v
	}
}

// Query implements Sketch.
func (cm *CountMin) Query(k packet.FlowKey) uint64 {
	est := ^uint64(0)
	for i, row := range cm.rows {
		if c := row[cm.fam.Index(i, k, cm.w)]; c < est {
			est = c
		}
	}
	return est
}

// Reset implements Sketch.
func (cm *CountMin) Reset() {
	for _, row := range cm.rows {
		clear(row)
	}
}

// MemoryBytes implements Sketch.
func (cm *CountMin) MemoryBytes() int { return len(cm.rows) * cm.w * 8 }

// Merge adds another Count-Min sketch with identical dimensions and seeds
// into cm. Merging is what the "merge sub-window states" strawman of §4.1
// does — it is exact for CM counters but amplifies collision error, which
// Exp#A1 (ablation) quantifies.
func (cm *CountMin) Merge(o *CountMin) {
	if len(cm.rows) != len(o.rows) || cm.w != o.w {
		panic("sketch: merging incompatible Count-Min sketches")
	}
	for i, row := range cm.rows {
		for j, v := range o.rows[i] {
			row[j] += v
		}
	}
}

// SuMax is the SuMax sketch (LightGuardian, NSDI'21): the same geometry as
// Count-Min but with the conservative-update policy — only the counters
// that currently equal the row minimum are advanced, so each update raises
// the estimate by exactly what is necessary. This keeps the one-sided error
// guarantee while shrinking it substantially.
type SuMax struct {
	rows [][]uint64
	fam  *hashing.Family
	w    int
	// idx is reused across updates to avoid per-packet allocation.
	idx []int
}

// NewSuMax builds a d x w SuMax sketch.
func NewSuMax(d, w int, seed uint64) *SuMax {
	if d <= 0 || w <= 0 {
		panic("sketch: SuMax dimensions must be positive")
	}
	sm := &SuMax{fam: hashing.NewFamily(d, seed), w: w, idx: make([]int, d)}
	sm.rows = make([][]uint64, d)
	backing := make([]uint64, d*w)
	for i := range sm.rows {
		sm.rows[i], backing = backing[:w], backing[w:]
	}
	return sm
}

// NewSuMaxBytes builds a SuMax sketch of depth d within memoryBytes.
func NewSuMaxBytes(d, memoryBytes int, seed uint64) *SuMax {
	w := memoryBytes / (d * 8)
	if w < 1 {
		w = 1
	}
	return NewSuMax(d, w, seed)
}

// Update implements Sketch with the conservative-update rule.
func (sm *SuMax) Update(k packet.FlowKey, v uint64) {
	min := ^uint64(0)
	for i, row := range sm.rows {
		sm.idx[i] = sm.fam.Index(i, k, sm.w)
		if c := row[sm.idx[i]]; c < min {
			min = c
		}
	}
	target := min + v
	for i, row := range sm.rows {
		if row[sm.idx[i]] < target {
			row[sm.idx[i]] = target
		}
	}
}

// Query implements Sketch.
func (sm *SuMax) Query(k packet.FlowKey) uint64 {
	est := ^uint64(0)
	for i, row := range sm.rows {
		if c := row[sm.fam.Index(i, k, sm.w)]; c < est {
			est = c
		}
	}
	return est
}

// Reset implements Sketch.
func (sm *SuMax) Reset() {
	for _, row := range sm.rows {
		clear(row)
	}
}

// MemoryBytes implements Sketch.
func (sm *SuMax) MemoryBytes() int { return len(sm.rows) * sm.w * 8 }
