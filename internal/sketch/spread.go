package sketch

import (
	"math"
	"math/bits"

	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// spsBucket is one SpreadSketch bucket: a multiresolution bitmap counting
// distinct destinations, plus the candidate source key with the highest
// observed sampling level (heavier spreaders produce higher levels more
// often, so the candidate converges to the bucket's heaviest spreader).
type spsBucket struct {
	mrb   *MRB
	key   packet.FlowKey
	level int
	used  bool
}

// SpreadSketch (Tang, Huang, Lee — INFOCOM'20) detects super-spreaders
// invertibly: d rows of buckets indexed by source key.
type SpreadSketch struct {
	rows [][]spsBucket
	fam  *hashing.Family
	w    int
	comp int
	// pairSeed hashes (src,dst) pairs into MRB elements.
	pairSeed uint64
}

// SPSBucketBytes is the modeled per-bucket footprint with c components:
// c*8 (MRB) + 16 (key) + 1 (level), rounded up.
func SPSBucketBytes(c int) int { return c*8 + 17 }

// NewSpreadSketch builds a d x w SpreadSketch with c MRB components per
// bucket.
func NewSpreadSketch(d, w, c int, seed uint64) *SpreadSketch {
	if d <= 0 || w <= 0 {
		panic("sketch: SpreadSketch dimensions must be positive")
	}
	fam := hashing.NewFamily(d+1, seed)
	s := &SpreadSketch{fam: fam, w: w, comp: c, pairSeed: fam.Seed(d)}
	s.rows = make([][]spsBucket, d)
	for i := range s.rows {
		s.rows[i] = make([]spsBucket, w)
		for j := range s.rows[i] {
			s.rows[i][j].mrb = NewMRB(c)
		}
	}
	return s
}

// NewSpreadSketchBytes builds a SpreadSketch of depth d within memoryBytes
// using 4-component MRBs.
func NewSpreadSketchBytes(d, memoryBytes int, seed uint64) *SpreadSketch {
	const c = 4
	w := memoryBytes / (d * SPSBucketBytes(c))
	if w < 1 {
		w = 1
	}
	return NewSpreadSketch(d, w, c, seed)
}

// UpdateSpread implements Spread.
func (s *SpreadSketch) UpdateSpread(src, dst packet.FlowKey) {
	pair := hashing.Pair64(src, hashing.Key64(dst, s.pairSeed), s.pairSeed)
	lvl := bits.TrailingZeros64(^pair) // geometric level of this pair
	for i, row := range s.rows {
		b := &row[s.fam.Index(i, src, s.w)]
		b.mrb.Insert(pair)
		if !b.used || lvl >= b.level {
			b.key = src
			b.level = lvl
			b.used = true
		}
	}
}

// QuerySpread implements Spread: the minimum MRB estimate across rows.
func (s *SpreadSketch) QuerySpread(src packet.FlowKey) uint64 {
	est := -1.0
	for i, row := range s.rows {
		b := &row[s.fam.Index(i, src, s.w)]
		e := b.mrb.Estimate()
		if est < 0 || e < est {
			est = e
		}
	}
	if est < 0 {
		return 0
	}
	return uint64(est + 0.5)
}

// Summary returns the MRB components of the bucket with the minimum
// estimate for src — the mergeable distinct summary an AFR carries for
// distinction statistics. Requires 4-component buckets.
func (s *SpreadSketch) Summary(src packet.FlowKey) [4]uint64 {
	var out [4]uint64
	best := -1.0
	for i, row := range s.rows {
		b := &row[s.fam.Index(i, src, s.w)]
		e := b.mrb.Estimate()
		if best < 0 || e < best {
			best = e
			comps := b.mrb.Components()
			for j := 0; j < len(out) && j < len(comps); j++ {
				out[j] = comps[j]
			}
		}
	}
	return out
}

// HeavySpreaders returns candidate sources whose estimated spread reaches
// the threshold (the invertibility property of SpreadSketch).
func (s *SpreadSketch) HeavySpreaders(threshold uint64) []packet.FlowKey {
	var out []packet.FlowKey
	for _, row := range s.rows {
		for i := range row {
			if !row[i].used {
				continue
			}
			k := row[i].key
			if s.QuerySpread(k) >= threshold {
				out = append(out, k)
			}
		}
	}
	return dedupeKeys(out)
}

// Reset implements Spread.
func (s *SpreadSketch) Reset() {
	for _, row := range s.rows {
		for i := range row {
			row[i].mrb.Reset()
			row[i].key = packet.FlowKey{}
			row[i].level = 0
			row[i].used = false
		}
	}
}

// MemoryBytes implements Spread.
func (s *SpreadSketch) MemoryBytes() int {
	return len(s.rows) * s.w * SPSBucketBytes(s.comp)
}

// VBF is the Vector Bloom Filter (Liu et al., TIFS'16) for super-spreader
// detection: several arrays of small bitmaps; a source indexes one bitmap
// per array and its distinct-destination count is the minimum
// linear-counting estimate among them. VBF itself is not invertible, so
// detection queries the keys tracked elsewhere (in OmniWindow, the AFR
// flowkey list — exactly the paper's integration).
type VBF struct {
	arrays [][]uint64 // arrays[i][bitmap] packed: one uint64 per bitmap
	fam    *hashing.Family
	nb     int // bitmaps per array
	dseed  uint64
}

// vbfBits is the width of each per-source bitmap.
const vbfBits = 64

// NewVBF builds a VBF with `arrays` arrays of `bitmaps` 64-bit bitmaps
// (the paper's Exp#2 uses five arrays of 4096 bitmaps).
func NewVBF(arrays, bitmaps int, seed uint64) *VBF {
	if arrays <= 0 || bitmaps <= 0 {
		panic("sketch: VBF dimensions must be positive")
	}
	fam := hashing.NewFamily(arrays+1, seed)
	v := &VBF{fam: fam, nb: bitmaps, dseed: fam.Seed(arrays)}
	v.arrays = make([][]uint64, arrays)
	for i := range v.arrays {
		v.arrays[i] = make([]uint64, bitmaps)
	}
	return v
}

// UpdateSpread implements Spread.
func (v *VBF) UpdateSpread(src, dst packet.FlowKey) {
	bit := hashing.Key64(dst, v.dseed) % vbfBits
	for i, arr := range v.arrays {
		arr[v.fam.Index(i, src, v.nb)] |= 1 << bit
	}
}

// QuerySpread implements Spread: minimum linear-counting estimate over the
// source's bitmaps.
func (v *VBF) QuerySpread(src packet.FlowKey) uint64 {
	best := -1.0
	for i, arr := range v.arrays {
		bm := arr[v.fam.Index(i, src, v.nb)]
		e := bitmapLC(bm)
		if best < 0 || e < best {
			best = e
		}
	}
	if best < 0 {
		return 0
	}
	return uint64(best + 0.5)
}

// bitmapLC is the linear-counting estimate of one 64-bit bitmap.
func bitmapLC(bm uint64) float64 {
	z := float64(vbfBits - bits.OnesCount64(bm))
	if z == 0 {
		z = 1
	}
	return vbfBits * math.Log(vbfBits/z)
}

// SummaryBitmap returns the bitmap with the fewest set bits among the
// source's per-array bitmaps — the mergeable summary the VBF-backed
// telemetry app embeds in AFRs (interpreted by VBFDistinctCounter).
func (v *VBF) SummaryBitmap(src packet.FlowKey) uint64 {
	var best uint64
	bestOnes := -1
	for i, arr := range v.arrays {
		bm := arr[v.fam.Index(i, src, v.nb)]
		if n := bits.OnesCount64(bm); bestOnes < 0 || n < bestOnes {
			bestOnes = n
			best = bm
		}
	}
	return best
}

// VBFDistinctCounter counts an OR-merged VBF summary: the first word is a
// plain linear-counting bitmap.
func VBFDistinctCounter(sum [4]uint64) uint64 {
	return uint64(bitmapLC(sum[0]) + 0.5)
}

// Reset implements Spread.
func (v *VBF) Reset() {
	for _, arr := range v.arrays {
		clear(arr)
	}
}

// MemoryBytes implements Spread.
func (v *VBF) MemoryBytes() int { return len(v.arrays) * v.nb * 8 }
