package query

import (
	"math/rand"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

func syn(src, dst uint32, sport, dport uint16) *packet.Packet {
	return &packet.Packet{
		Key:      packet.FlowKey{SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport, Proto: packet.ProtoTCP},
		Size:     64,
		TCPFlags: packet.FlagSYN,
	}
}

func TestStateFrequencyCounts(t *testing.T) {
	q := SynFloodQuery(Thresholds{SynFlood: 5})
	s := NewState(q, 1024, 0, 1)
	for i := 0; i < 7; i++ {
		s.Update(syn(uint32(i), 99, uint16(1000+i), 443))
	}
	victim := packet.FlowKey{DstIP: 99, Proto: packet.ProtoTCP}
	if got := s.Query(victim).Value; got != 7 {
		t.Fatalf("victim SYN count = %d want 7", got)
	}
	// Non-SYN packets are filtered.
	ack := syn(1, 99, 1000, 443)
	ack.TCPFlags = packet.FlagACK
	s.Update(ack)
	if got := s.Query(victim).Value; got != 7 {
		t.Fatalf("filtered packet counted: %d", got)
	}
}

func TestStateDistinctDedup(t *testing.T) {
	q := DDoSQuery(Thresholds{})
	s := NewState(q, 1024, 1<<14, 2)
	// 50 distinct sources, each sending 10 packets: distinct count must
	// be ~50, not 500.
	for src := 0; src < 50; src++ {
		for j := 0; j < 10; j++ {
			p := syn(uint32(1000+src), 7, uint16(2000+j), 80)
			s.Update(p)
		}
	}
	victim := packet.FlowKey{DstIP: 7, Proto: packet.ProtoTCP}
	got := s.Query(victim)
	if got.Value != 50 {
		t.Fatalf("distinct sources = %d want 50", got.Value)
	}
	if !got.HasDistinct {
		t.Fatal("distinct query must carry a summary")
	}
	if got.Distinct == ([4]uint64{}) {
		t.Fatal("summary empty")
	}
}

func TestStateCollisionsShareSlot(t *testing.T) {
	// Sonata's error model: with one slot, every key shares the counter.
	q := SynFloodQuery(Thresholds{})
	s := NewState(q, 1, 0, 3)
	s.Update(syn(1, 50, 1, 443))
	s.Update(syn(2, 60, 2, 443))
	if got := s.Query(packet.FlowKey{DstIP: 50, Proto: packet.ProtoTCP}).Value; got != 2 {
		t.Fatalf("collision semantics broken: %d", got)
	}
}

func TestStateResetSlots(t *testing.T) {
	q := DDoSQuery(Thresholds{})
	s := NewState(q, 16, 1<<10, 4)
	for src := 0; src < 30; src++ {
		s.Update(syn(uint32(src), 7, 1000, 80))
	}
	for i := 0; i < s.Slots(); i++ {
		s.ResetSlot(i)
	}
	victim := packet.FlowKey{DstIP: 7, Proto: packet.ProtoTCP}
	if got := s.Query(victim); got.Value != 0 || got.Distinct != ([4]uint64{}) {
		t.Fatalf("reset left state: %+v", got)
	}
	// Dedup filter must also be clear: the same source counts again.
	s.Update(syn(1, 7, 1000, 80))
	if got := s.Query(victim).Value; got != 1 {
		t.Fatalf("dedup not cleared: %d", got)
	}
}

func TestStateMemoryAccounting(t *testing.T) {
	freq := NewState(SynFloodQuery(Thresholds{}), 1024, 0, 5)
	dist := NewState(DDoSQuery(Thresholds{}), 1024, 1<<13, 5)
	if freq.MemoryBytes() != 1024*8 {
		t.Fatalf("freq memory = %d", freq.MemoryBytes())
	}
	if dist.MemoryBytes() <= freq.MemoryBytes() {
		t.Fatal("distinct state must cost more (summaries + dedup filter)")
	}
}

func TestStateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(SynFloodQuery(Thresholds{}), 0, 0, 1)
}

func TestExactMatchesStateWhenNoCollisions(t *testing.T) {
	q := SynFloodQuery(Thresholds{})
	s := NewState(q, 1<<16, 0, 6)
	e := NewExact(q)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := syn(uint32(rng.Intn(20)), uint32(rng.Intn(5)), uint16(rng.Intn(5000)), 443)
		s.Update(p)
		e.Update(p)
	}
	for k, v := range e.Counts() {
		if got := s.Query(k).Value; got != v {
			t.Fatalf("state diverged from exact for %v: %d vs %d", k, got, v)
		}
	}
}

func TestExactDistinct(t *testing.T) {
	q := DDoSQuery(Thresholds{DDoSSources: 3})
	e := NewExact(q)
	for src := 0; src < 5; src++ {
		for j := 0; j < 4; j++ {
			e.Update(syn(uint32(src), 9, uint16(j), 80))
		}
	}
	victim := packet.FlowKey{DstIP: 9, Proto: packet.ProtoTCP}
	if e.Counts()[victim] != 5 {
		t.Fatalf("exact distinct = %d", e.Counts()[victim])
	}
	det := e.Detect()
	if !det[victim] || len(det) != 1 {
		t.Fatalf("detect = %v", det)
	}
	if len(e.DistinctSets()[victim]) != 5 {
		t.Fatal("distinct set size wrong")
	}
	e.Reset()
	if len(e.Counts()) != 0 {
		t.Fatal("reset kept counts")
	}
}

func TestQueriesObserveExpectedPackets(t *testing.T) {
	th := DefaultThresholds()

	// Q2 only watches port 22.
	q2 := SSHBruteQuery(th)
	if q2.observes(syn(1, 2, 3, 22)) != true || q2.observes(syn(1, 2, 3, 80)) {
		t.Fatal("Q2 filter wrong")
	}

	// Q5 rejects SYN+ACK.
	q5 := SynFloodQuery(th)
	synack := syn(1, 2, 3, 443)
	synack.TCPFlags = packet.FlagSYN | packet.FlagACK
	if q5.observes(synack) {
		t.Fatal("Q5 must ignore SYN-ACK")
	}

	// Q6 needs FIN.
	q6 := CompletedFlowsQuery(th)
	fin := syn(1, 2, 3, 80)
	fin.TCPFlags = packet.FlagFIN | packet.FlagACK
	if !q6.observes(fin) || q6.observes(syn(1, 2, 3, 80)) {
		t.Fatal("Q6 filter wrong")
	}

	// Q7 wants small packets to port 80.
	q7 := SlowlorisQuery(th)
	small := syn(1, 2, 3, 80)
	small.TCPFlags = packet.FlagACK
	small.Size = 70
	big := syn(1, 2, 3, 80)
	big.Size = 1400
	if !q7.observes(small) || q7.observes(big) {
		t.Fatal("Q7 filter wrong")
	}
}

func TestAllReturnsSevenDistinctQueries(t *testing.T) {
	qs := All(Thresholds{})
	if len(qs) != 7 {
		t.Fatalf("queries = %d", len(qs))
	}
	names := map[string]bool{}
	for _, q := range qs {
		if names[q.Name] {
			t.Fatalf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
		if q.Threshold == 0 {
			t.Fatalf("%s has zero threshold", q.Name)
		}
		if q.Kind == afr.Distinction && q.Distinct == nil {
			t.Fatalf("%s is distinction without element extractor", q.Name)
		}
	}
}

func TestDefaultThresholdsFill(t *testing.T) {
	var th Thresholds
	th.defaults()
	if th != DefaultThresholds() {
		t.Fatalf("defaults not applied: %+v", th)
	}
	custom := Thresholds{NewConns: 5}
	custom.defaults()
	if custom.NewConns != 5 || custom.SynFlood != DefaultThresholds().SynFlood {
		t.Fatal("selective override broken")
	}
}
