package query

import (
	"omniwindow/internal/afr"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
)

// Thresholds configures the anomaly-detection cutoffs of the evaluation
// queries. Zero fields take the defaults below.
type Thresholds struct {
	NewConns     uint64 // Q1: new TCP connections per source host
	SSHAttempts  uint64 // Q2: brute-force attempts per victim
	ScanPorts    uint64 // Q3: distinct probed ports per victim
	DDoSSources  uint64 // Q4: distinct sources per victim
	SynFlood     uint64 // Q5: bare SYNs per victim
	Completed    uint64 // Q6: completed (FIN) flows per host
	SlowlorisCon uint64 // Q7: open low-volume connections per victim
}

// DefaultThresholds returns cutoffs sized for the synthetic trace.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NewConns:     40,
		SSHAttempts:  40,
		ScanPorts:    60,
		DDoSSources:  60,
		SynFlood:     50,
		Completed:    30,
		SlowlorisCon: 30,
	}
}

func (t *Thresholds) defaults() {
	d := DefaultThresholds()
	if t.NewConns == 0 {
		t.NewConns = d.NewConns
	}
	if t.SSHAttempts == 0 {
		t.SSHAttempts = d.SSHAttempts
	}
	if t.ScanPorts == 0 {
		t.ScanPorts = d.ScanPorts
	}
	if t.DDoSSources == 0 {
		t.DDoSSources = d.DDoSSources
	}
	if t.SynFlood == 0 {
		t.SynFlood = d.SynFlood
	}
	if t.Completed == 0 {
		t.Completed = d.Completed
	}
	if t.SlowlorisCon == 0 {
		t.SlowlorisCon = d.SlowlorisCon
	}
}

// connHash hashes the packet's full 5-tuple, the distinct element for
// connection-counting queries.
func connHash(p *packet.Packet) uint64 { return hashing.Key64(p.Key, 0xC04) }

// srcHash hashes the packet's source host.
func srcHash(p *packet.Packet) uint64 { return uint64(p.Key.SrcIP) }

// isTCP reports whether the packet is TCP.
func isTCP(p *packet.Packet) bool { return p.Key.Proto == packet.ProtoTCP }

// bareSYN matches connection-opening SYNs (no ACK).
func bareSYN(p *packet.Packet) bool {
	return isTCP(p) && p.HasFlags(packet.FlagSYN) && !p.HasFlags(packet.FlagACK)
}

// NewConnQuery (Q1) detects hosts opening too many new TCP connections
// [NetQRE]: distinct connections initiated per source host.
func NewConnQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name:      "Q1-new-tcp-conns",
		Filter:    bareSYN,
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.SrcHostKey() },
		Distinct:  connHash,
		Kind:      afr.Distinction,
		Threshold: t.NewConns,
	}
}

// SSHBruteQuery (Q2) detects hosts under SSH brute-force attack [Javed &
// Paxson]: distinct connection attempts to port 22 per victim host.
func SSHBruteQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name: "Q2-ssh-brute-force",
		Filter: func(p *packet.Packet) bool {
			return isTCP(p) && p.Key.DstPort == 22
		},
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Distinct:  connHash,
		Kind:      afr.Distinction,
		Threshold: t.SSHAttempts,
	}
}

// PortScanQuery (Q3) detects hosts under port scanning [Jung et al.]:
// distinct destination ports probed per victim host.
func PortScanQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name:      "Q3-port-scan",
		Filter:    bareSYN,
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Distinct:  func(p *packet.Packet) uint64 { return uint64(p.Key.DstPort) },
		Kind:      afr.Distinction,
		Threshold: t.ScanPorts,
	}
}

// DDoSQuery (Q4) detects hosts under DDoS [OpenSketch]: distinct source
// hosts per victim host.
func DDoSQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name:      "Q4-ddos",
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Distinct:  srcHash,
		Kind:      afr.Distinction,
		Threshold: t.DDoSSources,
	}
}

// SynFloodQuery (Q5) detects hosts under SYN flood [NetQRE]: bare SYN
// count per victim host.
func SynFloodQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name:      "Q5-syn-flood",
		Filter:    bareSYN,
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Kind:      afr.Frequency,
		Threshold: t.SynFlood,
	}
}

// CompletedFlowsQuery (Q6) detects hosts with anomalously many completed
// TCP flows: FIN-bearing flows per host.
func CompletedFlowsQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name: "Q6-completed-flows",
		Filter: func(p *packet.Packet) bool {
			return isTCP(p) && p.HasFlags(packet.FlagFIN)
		},
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Distinct:  connHash,
		Kind:      afr.Distinction,
		Threshold: t.Completed,
	}
}

// SlowlorisQuery (Q7) detects hosts under Slowloris attack [NetQRE]: many
// distinct low-volume connections holding port 80 open per victim.
func SlowlorisQuery(t Thresholds) *Query {
	t.defaults()
	return &Query{
		Name: "Q7-slowloris",
		Filter: func(p *packet.Packet) bool {
			return isTCP(p) && p.Key.DstPort == 80 && p.Size < 128
		},
		Key:       func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() },
		Distinct:  connHash,
		Kind:      afr.Distinction,
		Threshold: t.SlowlorisCon,
	}
}

// DNSAmpQuery detects hosts receiving DNS-amplification floods: total
// bytes of large UDP responses from port 53 per victim host. Built with
// the dataflow DSL as the canonical example of a byte-volume query.
func DNSAmpQuery(thresholdBytes uint64) *Query {
	return MustCompile("Q-dns-amplification",
		Filter(func(p *packet.Packet) bool {
			return p.Key.Proto == packet.ProtoUDP && p.Key.SrcPort == 53 && p.Size > 512
		}),
		MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() }),
		Reduce{Volume: func(p *packet.Packet) uint64 { return uint64(p.Size) }},
		Threshold(thresholdBytes),
	)
}

// All returns Q1..Q7 with the given thresholds.
func All(t Thresholds) []*Query {
	return []*Query{
		NewConnQuery(t),
		SSHBruteQuery(t),
		PortScanQuery(t),
		DDoSQuery(t),
		SynFloodQuery(t),
		CompletedFlowsQuery(t),
		SlowlorisQuery(t),
	}
}
