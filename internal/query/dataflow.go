package query

import (
	"fmt"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

// Operator is one stage of a Sonata-style dataflow. A query is written as
// a pipeline of operators and compiled onto the data-plane Query form —
// mirroring how Sonata partitions a dataflow between the switch (filter,
// map, distinct, reduce) and the stream processor (final threshold).
type Operator interface {
	apply(*build) error
}

// build accumulates the compiled query.
type build struct {
	q            *Query
	hasKey       bool
	hasReduce    bool
	hasThreshold bool
}

// Filter keeps only packets satisfying the predicate. Multiple filters
// conjoin.
type Filter func(*packet.Packet) bool

func (f Filter) apply(b *build) error {
	if b.hasReduce {
		return fmt.Errorf("query: filter after reduce is not supported in the data plane")
	}
	if prev := b.q.Filter; prev != nil {
		b.q.Filter = func(p *packet.Packet) bool { return prev(p) && f(p) }
	} else {
		b.q.Filter = f
	}
	return nil
}

// MapKey sets the aggregation key (Sonata's map to (key, value) tuples).
type MapKey func(*packet.Packet) packet.FlowKey

func (m MapKey) apply(b *build) error {
	if b.hasKey {
		return fmt.Errorf("query: multiple map-key operators")
	}
	b.q.Key = m
	b.hasKey = true
	return nil
}

// Distinct deduplicates (key, element) pairs before the reduce, turning
// the aggregation into a distinct count.
type Distinct func(*packet.Packet) uint64

func (d Distinct) apply(b *build) error {
	if b.q.Distinct != nil {
		return fmt.Errorf("query: multiple distinct operators")
	}
	if b.hasReduce {
		return fmt.Errorf("query: distinct after reduce")
	}
	b.q.Distinct = d
	b.q.Kind = afr.Distinction
	return nil
}

// Reduce aggregates per key. A nil volume counts packets; with a Distinct
// stage upstream the reduce counts distinct elements and volume must be
// nil.
type Reduce struct {
	Volume func(*packet.Packet) uint64
	// Kind overrides the merge pattern (defaults to Frequency, or
	// Distinction when a Distinct stage is present).
	Kind afr.Kind
}

func (r Reduce) apply(b *build) error {
	if b.hasReduce {
		return fmt.Errorf("query: multiple reduce operators")
	}
	if !b.hasKey {
		return fmt.Errorf("query: reduce requires a map-key stage")
	}
	if b.q.Distinct != nil && r.Volume != nil {
		return fmt.Errorf("query: distinct-reduce cannot take a volume function")
	}
	b.q.Volume = r.Volume
	if b.q.Distinct == nil {
		b.q.Kind = r.Kind // Frequency is the zero value
	}
	b.hasReduce = true
	return nil
}

// Threshold is the final detection predicate (evaluated in the controller
// over merged window values).
type Threshold uint64

func (t Threshold) apply(b *build) error {
	if !b.hasReduce {
		return fmt.Errorf("query: threshold requires a reduce stage")
	}
	if b.hasThreshold {
		return fmt.Errorf("query: multiple thresholds")
	}
	b.q.Threshold = uint64(t)
	b.hasThreshold = true
	return nil
}

// Compile lowers a dataflow onto the data-plane Query form, validating
// the operator ordering constraints Sonata's compiler enforces.
func Compile(name string, ops ...Operator) (*Query, error) {
	b := &build{q: &Query{Name: name}}
	for i, op := range ops {
		if err := op.apply(b); err != nil {
			return nil, fmt.Errorf("operator %d: %w", i, err)
		}
	}
	if !b.hasKey {
		return nil, fmt.Errorf("query %q: missing map-key stage", name)
	}
	if !b.hasReduce {
		return nil, fmt.Errorf("query %q: missing reduce stage", name)
	}
	if !b.hasThreshold {
		return nil, fmt.Errorf("query %q: missing threshold stage", name)
	}
	return b.q, nil
}

// MustCompile is Compile that panics on error (for static query tables).
func MustCompile(name string, ops ...Operator) *Query {
	q, err := Compile(name, ops...)
	if err != nil {
		panic(err)
	}
	return q
}
