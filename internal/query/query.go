// Package query implements a Sonata-style query-driven telemetry engine
// (Gupta et al., SIGCOMM'18): queries are dataflows of filter / map /
// distinct / reduce operators compiled onto data-plane stateful state.
// Like Sonata's switch operators, the data-plane state is a hash-indexed
// array with no collision handling — colliding keys share a counter, which
// is exactly the residual error the paper observes between OmniWindow and
// the ideal windows in Exp#1 ("the stateful operators of Sonata do not
// handle hash conflicts, which cannot be avoided by OmniWindow").
//
// The package also provides an exact reference executor used to compute
// the ITW/ISW ground truth.
package query

import (
	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

// Query is a compiled telemetry query.
type Query struct {
	// Name identifies the query (Q1..Q7 in the evaluation).
	Name string
	// Filter selects the packets the query observes; nil observes all.
	Filter func(*packet.Packet) bool
	// Key maps a packet to the aggregation key (reduce-by-key).
	Key func(*packet.Packet) packet.FlowKey
	// Distinct, when non-nil, maps a packet to the element whose distinct
	// count is aggregated per key (Sonata's distinct-then-reduce shape).
	// When nil, the query sums Volume per key.
	Distinct func(*packet.Packet) uint64
	// Volume is the per-packet contribution for frequency queries; nil
	// counts packets.
	Volume func(*packet.Packet) uint64
	// Kind is the merge pattern of the aggregated statistic.
	Kind afr.Kind
	// Threshold is the detection threshold over the merged window value.
	Threshold uint64
}

// Observes reports whether the query's filter selects the packet.
func (q *Query) Observes(p *packet.Packet) bool {
	return q.Filter == nil || q.Filter(p)
}

// observes is the internal alias.
func (q *Query) observes(p *packet.Packet) bool { return q.Observes(p) }

// volume returns the packet's contribution for frequency queries.
func (q *Query) volume(p *packet.Packet) uint64 {
	if q.Volume == nil {
		return 1
	}
	return q.Volume(p)
}
