package query

import (
	"math/rand"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
)

func TestCompileEquivalentToHandWrittenQ4(t *testing.T) {
	th := DefaultThresholds()
	compiled := MustCompile("ddos-dsl",
		MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() }),
		Distinct(func(p *packet.Packet) uint64 { return uint64(p.Key.SrcIP) }),
		Reduce{},
		Threshold(th.DDoSSources),
	)
	hand := DDoSQuery(th)

	a, b := NewExact(compiled), NewExact(hand)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		p := syn(uint32(rng.Intn(50)), uint32(rng.Intn(8)), uint16(rng.Intn(4000)), 80)
		a.Update(p)
		b.Update(p)
	}
	ca, cb := a.Counts(), b.Counts()
	if len(ca) != len(cb) {
		t.Fatalf("key sets differ: %d vs %d", len(ca), len(cb))
	}
	for k, v := range cb {
		if ca[k] != v {
			t.Fatalf("key %v: %d vs %d", k, ca[k], v)
		}
	}
	if compiled.Kind != afr.Distinction || compiled.Threshold != th.DDoSSources {
		t.Fatalf("compiled metadata wrong: %+v", compiled)
	}
}

func TestCompileFiltersConjoin(t *testing.T) {
	q := MustCompile("conjoin",
		Filter(func(p *packet.Packet) bool { return p.Key.Proto == packet.ProtoTCP }),
		Filter(func(p *packet.Packet) bool { return p.Key.DstPort == 22 }),
		MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() }),
		Reduce{},
		Threshold(1),
	)
	if q.Observes(syn(1, 2, 3, 22)) != true {
		t.Fatal("both filters should pass")
	}
	if q.Observes(syn(1, 2, 3, 80)) {
		t.Fatal("second filter should reject")
	}
	udp := syn(1, 2, 3, 22)
	udp.Key.Proto = packet.ProtoUDP
	if q.Observes(udp) {
		t.Fatal("first filter should reject")
	}
}

func TestCompileVolumeReduce(t *testing.T) {
	q := MustCompile("bytes",
		MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key }),
		Reduce{Volume: func(p *packet.Packet) uint64 { return uint64(p.Size) }},
		Threshold(100),
	)
	e := NewExact(q)
	p := syn(1, 2, 3, 80)
	p.Size = 700
	e.Update(p)
	if e.Counts()[p.Key] != 700 {
		t.Fatalf("volume reduce = %d", e.Counts()[p.Key])
	}
	if q.Kind != afr.Frequency {
		t.Fatalf("kind = %v", q.Kind)
	}
}

func TestCompileOrderingErrors(t *testing.T) {
	key := MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key })
	dist := Distinct(func(p *packet.Packet) uint64 { return 1 })
	filt := Filter(func(p *packet.Packet) bool { return true })
	cases := [][]Operator{
		{Reduce{}, Threshold(1)},                    // reduce without key
		{key, Threshold(1)},                         // threshold without reduce
		{key, Reduce{}},                             // missing threshold
		{key, key, Reduce{}, Threshold(1)},          // duplicate key
		{key, Reduce{}, Reduce{}, Threshold(1)},     // duplicate reduce
		{key, Reduce{}, Threshold(1), Threshold(2)}, // duplicate threshold
		{key, Reduce{}, filt, Threshold(1)},         // filter after reduce
		{key, Reduce{}, dist, Threshold(1)},         // distinct after reduce
		{key, dist, dist, Reduce{}, Threshold(1)},   // duplicate distinct
		{key, dist, Reduce{Volume: func(*packet.Packet) uint64 { return 1 }}, Threshold(1)}, // distinct+volume
		{dist, Reduce{}, Threshold(1)}, // missing key entirely
	}
	for i, ops := range cases {
		if _, err := Compile("bad", ops...); err == nil {
			t.Fatalf("case %d compiled successfully", i)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile("bad")
}

func TestCompiledQueryRunsOnDataPlaneState(t *testing.T) {
	q := MustCompile("portscan-dsl",
		Filter(func(p *packet.Packet) bool {
			return p.Key.Proto == packet.ProtoTCP && p.HasFlags(packet.FlagSYN) && !p.HasFlags(packet.FlagACK)
		}),
		MapKey(func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() }),
		Distinct(func(p *packet.Packet) uint64 { return uint64(p.Key.DstPort) }),
		Reduce{},
		Threshold(50),
	)
	s := NewState(q, 1024, 1<<14, 7)
	for port := 0; port < 80; port++ {
		p := syn(9, 7, 4000, uint16(100+port))
		s.Update(p)
	}
	victim := packet.FlowKey{DstIP: 7, Proto: packet.ProtoTCP}
	if got := s.Query(victim).Value; got != 80 {
		t.Fatalf("distinct ports = %d want 80", got)
	}
}

func TestDNSAmpQuery(t *testing.T) {
	q := DNSAmpQuery(10000)
	e := NewExact(q)
	// 20 large DNS responses of 1200 B to victim 9.
	for i := 0; i < 20; i++ {
		p := &packet.Packet{
			Key:  packet.FlowKey{SrcIP: uint32(100 + i), DstIP: 9, SrcPort: 53, DstPort: uint16(30000 + i), Proto: packet.ProtoUDP},
			Size: 1200,
		}
		e.Update(p)
	}
	// Small DNS replies and non-DNS UDP are filtered.
	e.Update(&packet.Packet{Key: packet.FlowKey{SrcIP: 1, DstIP: 9, SrcPort: 53, Proto: packet.ProtoUDP}, Size: 100})
	e.Update(&packet.Packet{Key: packet.FlowKey{SrcIP: 1, DstIP: 9, SrcPort: 123, Proto: packet.ProtoUDP}, Size: 1200})
	victim := packet.FlowKey{DstIP: 9, Proto: packet.ProtoUDP}
	if got := e.Counts()[victim]; got != 20*1200 {
		t.Fatalf("victim bytes = %d want %d", got, 20*1200)
	}
	det := e.Detect()
	if !det[victim] || len(det) != 1 {
		t.Fatalf("detect = %v", det)
	}
}
