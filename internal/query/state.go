package query

import (
	"omniwindow/internal/afr"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// State is one memory region's data-plane execution of a query: a
// hash-indexed counter array (Sonata's reduce), an optional per-slot
// multiresolution-bitmap summary (for distinction statistics), and a Bloom
// filter realizing the distinct operator. It implements afr.StateApp.
//
// Collisions are NOT handled: two keys hashing to the same slot share the
// counter, faithfully reproducing Sonata's stateful-operator error model.
type State struct {
	q         *Query
	slots     int
	seed      uint64
	counters  []uint64
	summaries [][4]uint64
	dedup     *sketch.Bloom
}

// NewState builds a region state with `slots` counter slots. For
// distinct-style queries, dedupBits sizes the distinct operator's Bloom
// filter.
func NewState(q *Query, slots, dedupBits int, seed uint64) *State {
	if slots <= 0 {
		panic("query: state slots must be positive")
	}
	s := &State{q: q, slots: slots, seed: seed, counters: make([]uint64, slots)}
	if q.Distinct != nil {
		if dedupBits <= 0 {
			dedupBits = slots * 8
		}
		s.dedup = sketch.NewBloom(dedupBits, 3, seed^0xD15C)
		s.summaries = make([][4]uint64, slots)
	}
	return s
}

// slot returns the hash index of a key.
func (s *State) slot(k packet.FlowKey) int {
	return hashing.Index(k, s.seed, s.slots)
}

// Update implements afr.StateApp.
func (s *State) Update(p *packet.Packet) {
	if !s.q.observes(p) {
		return
	}
	k := s.q.Key(p)
	idx := s.slot(k)
	if s.q.Distinct == nil {
		s.counters[idx] += s.q.volume(p)
		return
	}
	elem := s.q.Distinct(p)
	pair := hashing.Pair64(k, elem, s.seed^0xE1E)
	// Distinct operator: only the first sighting of (key, element)
	// within the sub-window advances the reduce stage.
	if s.dedupTestAndAdd(pair) {
		return
	}
	s.counters[idx]++
	mrbInsert(&s.summaries[idx], pair)
}

// dedupTestAndAdd probes the Bloom filter with a precomputed pair hash.
func (s *State) dedupTestAndAdd(pair uint64) bool {
	// Reuse the filter's key-based API by folding the pair hash into a
	// synthetic key: cheap and preserves the filter's independence.
	k := packet.FlowKey{
		SrcIP:   uint32(pair >> 32),
		DstIP:   uint32(pair),
		SrcPort: uint16(pair >> 48),
		DstPort: uint16(pair >> 16),
		Proto:   uint8(pair >> 8),
	}
	return s.dedup.TestAndAdd(k)
}

// mrbInsert adds one element hash to a 4-component inline multiresolution
// bitmap — the AFR distinct summary (see sketch.MRB for the estimator).
func mrbInsert(sum *[4]uint64, h uint64) {
	l := 0
	for l < 3 && h&(1<<uint(l)) != 0 {
		l++
	}
	pos := (h >> 32) % 64
	sum[l] |= 1 << pos
}

// Query implements afr.StateApp.
func (s *State) Query(k packet.FlowKey) afr.Attr {
	idx := s.slot(k)
	a := afr.Attr{Value: s.counters[idx]}
	if s.summaries != nil {
		a.Distinct = s.summaries[idx]
		a.HasDistinct = true
	}
	return a
}

// ResetSlot implements afr.StateApp: one clear-packet pass zeroes slot i
// of the counter register and the summary registers; the distinct
// operator's Bloom words clear alongside slot 0 (hardware clears the wider
// filter with the same recirculating packets).
func (s *State) ResetSlot(i int) {
	s.counters[i] = 0
	if s.summaries != nil {
		s.summaries[i] = [4]uint64{}
	}
	if i == 0 && s.dedup != nil {
		s.dedup.Reset()
	}
}

// Slots implements afr.StateApp.
func (s *State) Slots() int { return s.slots }

// MemoryBytes reports the region's data-plane footprint.
func (s *State) MemoryBytes() int {
	b := s.slots * 8
	if s.summaries != nil {
		b += s.slots * 32
	}
	if s.dedup != nil {
		b += s.dedup.MemoryBytes()
	}
	return b
}

// Exact is the error-free reference executor used for ITW/ISW ground
// truth: exact per-key dictionaries, exact distinct sets.
type Exact struct {
	q      *Query
	counts map[packet.FlowKey]uint64
	seen   map[packet.FlowKey]map[uint64]bool
}

// NewExact builds an exact executor for q.
func NewExact(q *Query) *Exact {
	return &Exact{
		q:      q,
		counts: make(map[packet.FlowKey]uint64),
		seen:   make(map[packet.FlowKey]map[uint64]bool),
	}
}

// Update processes one packet.
func (e *Exact) Update(p *packet.Packet) {
	if !e.q.observes(p) {
		return
	}
	k := e.q.Key(p)
	if e.q.Distinct == nil {
		e.counts[k] += e.q.volume(p)
		return
	}
	elem := e.q.Distinct(p)
	set, ok := e.seen[k]
	if !ok {
		set = make(map[uint64]bool)
		e.seen[k] = set
	}
	if !set[elem] {
		set[elem] = true
		e.counts[k]++
	}
}

// Counts returns the exact per-key statistic.
func (e *Exact) Counts() map[packet.FlowKey]uint64 { return e.counts }

// DistinctSets returns the exact per-key element sets (distinct queries
// only), used to merge exact sub-windows without double counting.
func (e *Exact) DistinctSets() map[packet.FlowKey]map[uint64]bool { return e.seen }

// Detect returns the keys whose statistic reaches the query threshold.
func (e *Exact) Detect() map[packet.FlowKey]bool {
	out := make(map[packet.FlowKey]bool)
	for k, v := range e.counts {
		if v >= e.q.Threshold {
			out[k] = true
		}
	}
	return out
}

// Reset clears the executor.
func (e *Exact) Reset() {
	e.counts = make(map[packet.FlowKey]uint64)
	e.seen = make(map[packet.FlowKey]map[uint64]bool)
}
