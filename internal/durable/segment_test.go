package durable

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// segFiles lists the live (non-quarantined) segment filenames in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".log") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func quarantinedFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), quarantineSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.AppendTrigger(uint64(i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if files := segFiles(t, dir); len(files) < 3 {
		t.Fatalf("size cap did not rotate: %v", files)
	}
	if s.Rotations() == 0 {
		t.Fatal("rotations not counted")
	}

	// Multi-segment replay merges back into issue order.
	_, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.SubWindow != uint64(i) {
			t.Fatalf("record %d: LSN %d SW %d", i, r.LSN, r.SubWindow)
		}
	}
	s.Close()

	// Reopen resumes past every segment.
	s2, err := OpenStore(dir, 1, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LSN() != n {
		t.Fatalf("reopened LSN = %d, want %d", s2.LSN(), n)
	}
	if len(s2.Lost()) != 0 {
		t.Fatalf("clean reopen reported loss: %+v", s2.Lost())
	}
}

func TestSegmentCadenceRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendTrigger(0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < segBoundaryCadence; i++ {
		s.SealBoundary()
	}
	if err := s.AppendTrigger(1, 1); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("cadence did not rotate: %v", files)
	}
	_, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replay across cadence rotation: %+v", recs)
	}
}

// A CRC-corrupt sealed segment is quarantined whole; its LSNs surface as
// a LostLSNRange bounded by the surviving neighbors, and recovery
// continues through the later segments instead of aborting.
func TestSegmentQuarantineAndLostRange(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.AppendTrigger(uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	files := segFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need >=3 segments, got %v", files)
	}
	victim := filepath.Join(dir, files[1])
	// Find which LSNs the victim holds before corrupting it.
	victimLSNs := map[uint64]bool{}
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for off := wire.SegmentHeaderSize; off < len(buf); {
		rec, sz, derr := wire.DecodeWALRecord(buf[off:])
		if derr != nil {
			t.Fatalf("pre-corruption decode: %v", derr)
		}
		victimLSNs[rec.LSN] = true
		off += sz
	}
	if len(victimLSNs) == 0 {
		t.Fatal("victim segment is empty")
	}
	buf[len(buf)-1] ^= 0x40 // break the last frame's CRC trailer
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 1, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("corrupt segment aborted recovery: %v", err)
	}
	defer s2.Close()
	if got := quarantinedFiles(t, dir); len(got) != 1 || got[0] != files[1]+quarantineSuffix {
		t.Fatalf("quarantine files: %v", got)
	}
	if s2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s2.Quarantined())
	}

	_, recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	replayed := map[uint64]bool{}
	for _, r := range recs {
		if victimLSNs[r.LSN] {
			t.Fatalf("LSN %d replayed from a quarantined segment", r.LSN)
		}
		replayed[r.LSN] = true
	}
	// Quarantined-vs-recovered accounting must reconcile exactly: every
	// issued LSN is replayed or inside a reported gap, and no gap overlaps
	// a replayed LSN.
	lost := s2.Lost()
	inLost := func(lsn uint64) bool {
		for _, lr := range lost {
			if lsn >= lr.From && lsn <= lr.To {
				return true
			}
		}
		return false
	}
	for lsn := uint64(1); lsn <= n; lsn++ {
		if replayed[lsn] == inLost(lsn) {
			t.Fatalf("LSN %d: replayed=%v inLost=%v — accounting does not reconcile", lsn, replayed[lsn], inLost(lsn))
		}
		if victimLSNs[lsn] && !inLost(lsn) {
			t.Fatalf("quarantined LSN %d not reported lost", lsn)
		}
	}
	// Sub-window bounds must cover the victim's sub-windows (trigger i
	// carries sub-window i, LSN i+1).
	for lsn := range victimLSNs {
		sw := lsn - 1
		covered := false
		for _, lr := range lost {
			if sw >= lr.SWLow && sw <= lr.SWHigh {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("sub-window %d damaged but not covered by %+v", sw, lost)
		}
	}
}

// The scrubber catches bit rot in the active segment while the data is
// still redundant in memory: the chain is quarantined and appends move to
// a fresh generation.
func TestScrubDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.AppendTrigger(uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if corrupt, err := s.Scrub(); corrupt != 0 || err != nil {
		t.Fatalf("clean scrub: corrupt=%d err=%v", corrupt, err)
	}

	files := segFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want one active segment, got %v", files)
	}
	path := filepath.Join(dir, files[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[wire.SegmentHeaderSize+10] ^= 0x08 // rot a byte inside the first frame
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	corrupt, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 1 {
		t.Fatalf("scrub missed the rot: corrupt=%d", corrupt)
	}
	if got := quarantinedFiles(t, dir); len(got) != 1 {
		t.Fatalf("rotted segment not quarantined: %v", got)
	}
	// Appends continue on a fresh generation.
	if err := s.AppendTrigger(5, 1); err != nil {
		t.Fatal(err)
	}
	_, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 6 {
		t.Fatalf("post-scrub replay: %+v", recs)
	}
	// The quarantined frames must be reported as a gap.
	if lost := s.Lost(); len(lost) != 1 || lost[0].From != 1 || lost[0].To != 5 {
		t.Fatalf("lost ranges: %+v", lost)
	}
}

// Transient write faults are retried behind a rotation: every append
// eventually lands, the tears the failed attempts left behind read as
// benign torn tails, and replay comes back complete — no gaps.
func TestAppendRetriesTransientFaults(t *testing.T) {
	dir := t.TempDir()
	sched := &faults.DiskSchedule{Seed: 21, WriteEIO: 0.2, ShortWrite: 0.1}
	fs := NewFaultFS(OSFS{}, sched)
	s, err := OpenStore(dir, 1, Options{FS: fs, SegmentBytes: 256, RetryLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.AppendTrigger(uint64(i), 1); err != nil {
			t.Fatalf("append %d failed despite retries: %v", i, err)
		}
	}
	if s.WALErrors() == 0 {
		t.Fatal("schedule injected no faults — test is vacuous")
	}
	if s.TakeIOWait() == 0 {
		t.Fatal("retry backoff not charged to virtual IO wait")
	}
	_, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	if lost := s.Lost(); len(lost) != 0 {
		t.Fatalf("survived faults but reported loss: %+v", lost)
	}
}

// ENOSPC is persistent: it must fail fast instead of burning the retry
// budget against a full disk.
func TestENOSPCFailsFast(t *testing.T) {
	dir := t.TempDir()
	sched := &faults.DiskSchedule{Seed: 1, ENOSPCStart: 0, ENOSPCLen: 1 << 30}
	fs := NewFaultFS(OSFS{}, sched)
	s, err := OpenStore(dir, 1, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opsBefore := fs.Ops()
	err = s.AppendTrigger(0, 1)
	if !errors.Is(err, faults.ErrDiskENOSPC) {
		t.Fatalf("err = %v, want ErrDiskENOSPC", err)
	}
	if burned := fs.Ops() - opsBefore; burned > 2 {
		t.Fatalf("ENOSPC burned %d ops — retries not short-circuited", burned)
	}
	// The store is NOT dead: a later heal can still succeed once space
	// returns (here it never does, so the append keeps failing).
	if err := s.AppendTrigger(1, 1); !errors.Is(err, faults.ErrDiskENOSPC) {
		t.Fatalf("second append: %v", err)
	}
}

func TestStoreHealRotatesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.AppendBatch(0, uint64(i), false, []packet.AFR{{Key: key(i), Attr: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := &wire.Snapshot{HasFinished: true, LastFinished: 5}
	if err := s.Heal(snap); err != nil {
		t.Fatal(err)
	}
	if snap.ThroughLSN != 6 {
		t.Fatalf("heal checkpoint ThroughLSN = %d, want 6", snap.ThroughLSN)
	}
	if files := segFiles(t, dir); len(files) != 0 {
		t.Fatalf("heal left stale segments: %v", files)
	}
	// Post-heal appends land in fresh generations and replay from the new
	// checkpoint alone.
	if err := s.AppendFinish(6); err != nil {
		t.Fatal(err)
	}
	got, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.ThroughLSN != 6 || !got.HasFinished || got.LastFinished != 5 {
		t.Fatalf("post-heal checkpoint: %+v", got)
	}
	if len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("post-heal replay: %+v", recs)
	}
}

// Store death must be exactly-once and stable under concurrent appenders
// and closers (run with -race).
func TestStoreDieRaceHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	s.SetCrash(func(p string) bool {
		// Crash on the 40th append attempt.
		return p == "wal-append" && fired.Add(1) == 40
	})
	var wg sync.WaitGroup
	errs := make([][]error, 8)
	for g := 0; g < 8; g++ {
		g := g
		errs[g] = make([]error, 30)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				errs[g][i] = s.AppendBatch(g%2, uint64(i), false, []packet.AFR{{Key: key(i), Attr: 1}})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Close()
	}()
	wg.Wait()

	var crashMsg string
	for g := range errs {
		for i, err := range errs[g] {
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrCrash) && !errors.Is(err, ErrClosed) {
				t.Fatalf("goroutine %d append %d: unexpected error %v", g, i, err)
			}
			if errors.Is(err, ErrCrash) {
				if crashMsg == "" {
					crashMsg = err.Error()
				} else if err.Error() != crashMsg {
					t.Fatalf("crash error not stable: %q vs %q", err.Error(), crashMsg)
				}
			}
		}
	}
	// Close after death is a no-op, not a double-close.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// The fault-free append path must stay allocation-free at steady state —
// the whole point of the shared encode scratch and the fixed scrub ring.
func TestWALAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	dir := t.TempDir()
	s, err := OpenStore(dir, 1, Options{SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	afrs := make([]packet.AFR, 8)
	for i := range afrs {
		afrs[i] = packet.AFR{Key: key(i), Attr: uint64(i), Seq: uint32(i)}
	}
	// Prime: first appends open the segment and grow the encode scratch.
	for i := 0; i < 4; i++ {
		if err := s.AppendBatch(0, 0, false, afrs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.AppendBatch(0, 1, false, afrs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WAL append allocates %.1f/op, want 0", allocs)
	}
}
