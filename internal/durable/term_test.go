package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// TestTermCASAndAdopt pins the acquisition protocol: CASTerm advances the
// authority without granting it (the acquirer's own writes fence until
// AdoptTerm), a conflicting CAS fails, and a fresh open resumes the
// persisted term.
func TestTermCASAndAdopt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Term(); got != 0 {
		t.Fatalf("fresh store term = %d, want 0", got)
	}

	next, err := s.CASTerm(0, 1)
	if err != nil || next != 1 {
		t.Fatalf("CASTerm(0) = %d, %v; want 1, nil", next, err)
	}
	// Authority advanced, but nobody adopted it yet: every write fences.
	if err := s.AppendFinish(0); !errors.Is(err, ErrFenced) {
		t.Fatalf("write between CAS and adopt: %v, want ErrFenced", err)
	}
	if _, err := s.CASTerm(0, 2); !errors.Is(err, ErrTermConflict) {
		t.Fatal("stale CAS must conflict")
	}
	if err := s.AdoptTerm(0); !errors.Is(err, ErrTermConflict) {
		t.Fatal("adopting a stale term must conflict")
	}
	if err := s.AdoptTerm(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFinish(0); err != nil {
		t.Fatalf("write after adopt: %v", err)
	}
	if got := s.FencedWrites(); got != 1 {
		t.Fatalf("FencedWrites = %d, want 1", got)
	}
	s.Close()

	// Reopen: the term file carries the authority across incarnations,
	// and the opener adopts it (explicit CAS is only for promotion).
	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Term(); got != 1 {
		t.Fatalf("reopened term = %d, want 1", got)
	}
	if got := s2.WriterTerm(); got != 1 {
		t.Fatalf("reopened writer term = %d, want 1", got)
	}
	if err := s2.AppendFinish(1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestTermFencesAllMutations: between CAS and adoption every mutating
// operation is rejected — WAL appends of all types, checkpoints, heals,
// and scrubs (a fenced writer must not quarantine the new holder's
// files).
func TestTermFencesAllMutations(t *testing.T) {
	s, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(0, 0, false, []packet.AFR{{Key: key(1), Attr: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CASTerm(0, 1); err != nil {
		t.Fatal(err)
	}

	if err := s.AppendBatch(0, 1, false, []packet.AFR{{Key: key(2), Attr: 6}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendBatch: %v, want ErrFenced", err)
	}
	if err := s.AppendTrigger(1, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendTrigger: %v, want ErrFenced", err)
	}
	if err := s.AppendFinish(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendFinish: %v, want ErrFenced", err)
	}
	if err := s.AppendShed(1, 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("AppendShed: %v, want ErrFenced", err)
	}
	if err := s.Checkpoint(&wire.Snapshot{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("Checkpoint: %v, want ErrFenced", err)
	}
	if err := s.Heal(&wire.Snapshot{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("Heal: %v, want ErrFenced", err)
	}
	if _, err := s.Scrub(); !errors.Is(err, ErrFenced) {
		t.Fatalf("Scrub: %v, want ErrFenced", err)
	}
	if got := s.FencedWrites(); got != 6 {
		t.Fatalf("FencedWrites = %d, want 6 (scrub rejects without counting)", got)
	}

	// The pre-fence frame is still durable and replayable.
	if _, recs, err := s.Recover(); err != nil || len(recs) != 1 {
		t.Fatalf("recover: %d recs, %v; want 1, nil", len(recs), err)
	}
	s.Close()
}

// TestTermStampsFramesSegmentsAndCheckpoints: the writer's term rides on
// every WAL frame, every segment header, and every checkpoint — so the
// fencing history is reconstructible from the log alone.
func TestTermStampsFramesSegmentsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	cas := func(expect uint64) {
		t.Helper()
		next, err := s.CASTerm(expect, uint32(expect+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AdoptTerm(next); err != nil {
			t.Fatal(err)
		}
	}

	cas(0) // term 1
	if err := s.AppendFinish(0); err != nil {
		t.Fatal(err)
	}
	cas(1) // term 2: adoption seals chains, next frame opens a term-2 segment
	if err := s.AppendFinish(1); err != nil {
		t.Fatal(err)
	}

	_, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	wantTerms := []uint64{1, 2}
	if len(recs) != len(wantTerms) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantTerms))
	}
	for i, r := range recs {
		if r.Term != wantTerms[i] {
			t.Fatalf("record %d has term %d, want %d", i, r.Term, wantTerms[i])
		}
	}

	// Segment headers carry the terms of their writers.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segTerms := map[uint64]int{}
	for _, e := range entries {
		if _, _, ok := s.parseSegName(e.Name()); !ok {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hdr, err := wire.DecodeSegmentHeader(buf)
		if err != nil {
			t.Fatal(err)
		}
		segTerms[hdr.Term]++
	}
	if segTerms[1] == 0 || segTerms[2] == 0 {
		t.Fatalf("segment terms %v, want headers under both term 1 and term 2", segTerms)
	}

	// The checkpoint is stamped with the cutting writer's term.
	if err := s.Checkpoint(&wire.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	snap, err := s.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Term != 2 {
		t.Fatalf("checkpoint term = %d, want 2", snap.Term)
	}
	s.Close()
}

// TestTermFileCorruptionRebuiltFromSegments: a damaged term file is
// quarantined and the authority rebuilt from the newest segment-header
// term — damage can delay fencing's bookkeeping, never roll authority
// backward past what the log proves.
func TestTermFileCorruptionRebuiltFromSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	next, err := s.CASTerm(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdoptTerm(next); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFinish(0); err != nil { // opens a term-1 segment
		t.Fatal(err)
	}
	s.Close()

	// Rot the term file.
	path := filepath.Join(dir, termName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x20
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Term(); got != 1 {
		t.Fatalf("rebuilt term = %d, want 1 (from segment headers)", got)
	}
	if got := s2.Quarantined(); got != 1 {
		t.Fatalf("quarantined = %d, want 1 (the rotted term file)", got)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("rotted term file not set aside: %v", err)
	}
	// A new CAS re-establishes the file past the rebuilt authority.
	if next, err := s2.CASTerm(1, 8); err != nil || next != 2 {
		t.Fatalf("CAS after rebuild = %d, %v; want 2, nil", next, err)
	}
	s2.Close()
}
