//go:build race

package durable

const raceEnabled = true
