package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

func key(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstIP: 9, SrcPort: uint16(i), DstPort: 80, Proto: 6}
}

func TestStoreAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTrigger(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(0, 0, false, []packet.AFR{{Key: key(1), Attr: 5, Seq: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(1, 0, true, []packet.AFR{{Key: key(2), Attr: 7, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFinish(0); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendShed(1, 4); err != nil {
		t.Fatal(err)
	}

	snap, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected checkpoint: %+v", snap)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// Per-shard logs plus the control log must merge back into issue
	// order: LSNs strictly ascending from 1.
	wantTypes := []byte{wire.WALTrigger, wire.WALAFRBatch, wire.WALAFRBatch, wire.WALFinish, wire.WALShed}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
		if r.Type != wantTypes[i] {
			t.Fatalf("record %d has type %d, want %d", i, r.Type, wantTypes[i])
		}
	}
	if !recs[2].Retrans {
		t.Fatal("retransmit flag lost")
	}
	s.Close()

	// Reopen: the LSN counter must resume past everything on disk.
	s2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LSN() != 5 {
		t.Fatalf("reopened LSN = %d, want 5", s2.LSN())
	}
	if err := s2.AppendFinish(1); err != nil {
		t.Fatal(err)
	}
	_, recs, err = s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[len(recs)-1].LSN; got != 6 {
		t.Fatalf("new record LSN = %d, want 6", got)
	}
}

func TestStoreCheckpointTruncatesAndFilters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(0, 0, false, []packet.AFR{{Key: key(1), Attr: 1, Seq: 0}}); err != nil {
		t.Fatal(err)
	}
	want := &wire.Snapshot{
		LastFinished: 0, HasFinished: true,
		Entries: []wire.SnapEntry{{Key: key(1), Contribs: []wire.SnapContrib{{SW: 0, Attr: 1}}}},
	}
	if err := s.Checkpoint(want); err != nil {
		t.Fatal(err)
	}
	if want.ThroughLSN != 1 {
		t.Fatalf("ThroughLSN = %d, want 1", want.ThroughLSN)
	}

	snap, recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || !reflect.DeepEqual(snap, want) {
		t.Fatalf("checkpoint mismatch:\nin:  %+v\nout: %+v", want, snap)
	}
	if len(recs) != 0 {
		t.Fatalf("logs not truncated: %d stale records", len(recs))
	}

	// Frames after the checkpoint replay normally.
	if err := s.AppendFinish(1); err != nil {
		t.Fatal(err)
	}
	_, recs, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != wire.WALFinish {
		t.Fatalf("post-checkpoint replay: %+v", recs)
	}
}

// TestStoreCrashPoints drives every simulated crash point and checks the
// recovery invariants: a torn WAL frame is dropped cleanly, a torn temp
// checkpoint never replaces the real one, and a crash between checkpoint
// rename and log truncation leaves stale frames that LSN filtering skips.
func TestStoreCrashPoints(t *testing.T) {
	t.Run("wal-append", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := Open(dir, 1)
		if err := s.AppendTrigger(0, 2); err != nil {
			t.Fatal(err)
		}
		s.SetCrash(func(p string) bool { return p == "wal-append" })
		first := s.AppendFinish(0)
		if !errors.Is(first, ErrCrash) {
			t.Fatalf("err = %v, want ErrCrash", first)
		}
		// The dead store refuses further writes with the same stable error.
		if second := s.AppendFinish(0); !errors.Is(second, ErrCrash) || second.Error() != first.Error() {
			t.Fatalf("post-crash append: %v, want stable %v", second, first)
		}
		s2, err := Open(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		_, recs, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Type != wire.WALTrigger {
			t.Fatalf("torn tail not dropped: %+v", recs)
		}
		// New frames append after the torn bytes; replay still stops at
		// the tear, so the LSN counter resumed from the last good frame.
		if s2.LSN() != 1 {
			t.Fatalf("LSN = %d, want 1", s2.LSN())
		}
	})

	t.Run("checkpoint-temp", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := Open(dir, 1)
		s.AppendTrigger(0, 2)
		s.SetCrash(func(p string) bool { return p == "checkpoint-temp" })
		if err := s.Checkpoint(&wire.Snapshot{}); !errors.Is(err, ErrCrash) {
			t.Fatalf("err = %v, want ErrCrash", err)
		}
		s2, err := Open(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		snap, recs, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if snap != nil {
			t.Fatalf("torn temp file became a checkpoint: %+v", snap)
		}
		if len(recs) != 1 {
			t.Fatalf("WAL lost: %+v", recs)
		}
	})

	t.Run("checkpoint-rename", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := Open(dir, 1)
		s.AppendTrigger(0, 2)
		s.SetCrash(func(p string) bool { return p == "checkpoint-rename" })
		if err := s.Checkpoint(&wire.Snapshot{}); !errors.Is(err, ErrCrash) {
			t.Fatalf("err = %v, want ErrCrash", err)
		}
		s2, err := Open(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		snap, recs, _ := s2.Recover()
		if snap != nil || len(recs) != 1 {
			t.Fatalf("recover after rename crash: snap=%+v recs=%+v", snap, recs)
		}
	})

	t.Run("wal-truncate", func(t *testing.T) {
		dir := t.TempDir()
		s, _ := Open(dir, 1)
		s.AppendTrigger(0, 2)
		s.SetCrash(func(p string) bool { return p == "wal-truncate" })
		if err := s.Checkpoint(&wire.Snapshot{}); !errors.Is(err, ErrCrash) {
			t.Fatalf("err = %v, want ErrCrash", err)
		}
		s2, err := Open(dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		snap, recs, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if snap == nil || snap.ThroughLSN != 1 {
			t.Fatalf("checkpoint missing after rename: %+v", snap)
		}
		// The stale pre-checkpoint frame survived on disk but is covered
		// by ThroughLSN — replay must skip it.
		if len(recs) != 0 {
			t.Fatalf("stale frames replayed: %+v", recs)
		}
	})
}

func TestStoreRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(1, 0, false, nil); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := Open(t.TempDir(), 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
}

// A corrupt checkpoint is quarantined (renamed aside) and recovery
// proceeds from the WAL alone, never half-loading or silently merging the
// torn snapshot. The strict loader still refuses it for callers that ask.
func TestStoreQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1)
	if err := s.Checkpoint(&wire.Snapshot{HasFinished: true, LastFinished: 7}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x20
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadCheckpoint(); err == nil {
		t.Fatal("strict loader accepted a corrupt checkpoint")
	}
	s.Close()

	s2, err := Open(dir, 1)
	if err != nil {
		t.Fatalf("corrupt checkpoint aborted recovery: %v", err)
	}
	defer s2.Close()
	snap, recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("corrupt checkpoint loaded: %+v", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("unexpected replay records: %+v", recs)
	}
	if got := s2.Quarantined(); got == 0 {
		t.Fatal("quarantine not recorded")
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("checkpoint not renamed aside: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt checkpoint still in place: %v", err)
	}
}

func TestLease(t *testing.T) {
	l := NewLease(100)
	if !l.Expired(0) {
		t.Fatal("unheld lease should read as expired")
	}
	l.Renew(50)
	if l.Expired(149) {
		t.Fatal("live lease read as expired")
	}
	if got := l.Remaining(100); got != 50 {
		t.Fatalf("Remaining = %d, want 50", got)
	}
	if !l.Expired(150) {
		t.Fatal("lapsed lease read as live")
	}
	if got := l.Remaining(150); got != 0 {
		t.Fatalf("Remaining after expiry = %d, want 0", got)
	}
	l.Renew(200)
	l.Release()
	if !l.Expired(201) {
		t.Fatal("released lease should read as expired")
	}
}
