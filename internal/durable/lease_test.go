package durable

import "testing"

// Expiry is inclusive: a lease renewed at t is expired at exactly t+TTL.
// The standby promotes at that instant, so a primary that renews only at
// the boundary has already lost — there is never a moment where both
// sides can believe they hold the lease.
func TestLeaseRenewExactlyAtTTL(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if l.Expired(99) {
		t.Fatal("expired before TTL")
	}
	if !l.Expired(100) {
		t.Fatal("renew+TTL must read as expired (inclusive boundary)")
	}
	// Renewing at the expiry instant starts a fresh term from that
	// instant, not from the stale one.
	l.Renew(100)
	if l.Expired(199) {
		t.Fatal("boundary renewal did not extend the term")
	}
	if !l.Expired(200) {
		t.Fatal("extended term must still expire inclusively")
	}
}

// Promotion race with a revived primary: once the standby observes expiry
// and the old holder releases, a stale renewal from the revived primary
// is a NEW acquisition — it cannot retroactively un-expire the term the
// standby promoted on.
func TestLeasePromotionRaceWithRevivedPrimary(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)

	// Standby's view at t=150: expired. It promotes and takes over.
	if !l.Expired(150) {
		t.Fatal("standby should observe expiry")
	}
	l.Release()

	// A released lease reads expired at every instant, even ones inside
	// the old term — the primary's revival cannot resurrect it.
	for _, now := range []int64{0, 50, 99, 150} {
		if !l.Expired(now) {
			t.Fatalf("released lease read as held at %d", now)
		}
	}
	if got := l.Remaining(50); got != 0 {
		t.Fatalf("Remaining after release = %d, want 0", got)
	}

	// The revived primary renewing afterward is a fresh acquisition with
	// a full term — the normal re-admission path, not a conflict.
	l.Renew(200)
	if l.Expired(299) {
		t.Fatal("fresh acquisition not honored")
	}
	if got := l.Remaining(250); got != 50 {
		t.Fatalf("Remaining = %d, want 50", got)
	}
}

func TestLeaseRemainingNeverNegative(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if got := l.Remaining(500); got != 0 {
		t.Fatalf("Remaining long after expiry = %d, want 0", got)
	}
	if got := l.TTL(); got != 100 {
		t.Fatalf("TTL = %d, want 100", got)
	}
}
