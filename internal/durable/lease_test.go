package durable

import "testing"

// Expiry is inclusive: a lease renewed at t is expired at exactly t+TTL.
// The standby promotes at that instant, so a primary that renews only at
// the boundary has already lost — there is never a moment where both
// sides can believe they hold the lease.
func TestLeaseRenewExactlyAtTTL(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if l.Expired(99) {
		t.Fatal("expired before TTL")
	}
	if !l.Expired(100) {
		t.Fatal("renew+TTL must read as expired (inclusive boundary)")
	}
	// Renewing at the expiry instant starts a fresh term from that
	// instant, not from the stale one.
	l.Renew(100)
	if l.Expired(199) {
		t.Fatal("boundary renewal did not extend the term")
	}
	if !l.Expired(200) {
		t.Fatal("extended term must still expire inclusively")
	}
}

// Promotion race with a revived primary: once the standby observes expiry
// and the old holder releases, a stale renewal from the revived primary
// is a NEW acquisition — it cannot retroactively un-expire the term the
// standby promoted on.
func TestLeasePromotionRaceWithRevivedPrimary(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)

	// Standby's view at t=150: expired. It promotes and takes over.
	if !l.Expired(150) {
		t.Fatal("standby should observe expiry")
	}
	l.Release()

	// A released lease reads expired at every instant, even ones inside
	// the old term — the primary's revival cannot resurrect it.
	for _, now := range []int64{0, 50, 99, 150} {
		if !l.Expired(now) {
			t.Fatalf("released lease read as held at %d", now)
		}
	}
	if got := l.Remaining(50); got != 0 {
		t.Fatalf("Remaining after release = %d, want 0", got)
	}

	// The revived primary renewing afterward is a fresh acquisition with
	// a full term — the normal re-admission path, not a conflict.
	l.Renew(200)
	if l.Expired(299) {
		t.Fatal("fresh acquisition not honored")
	}
	if got := l.Remaining(250); got != 50 {
		t.Fatalf("Remaining = %d, want 50", got)
	}
}

func TestLeaseRemainingNeverNegative(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if got := l.Remaining(500); got != 0 {
		t.Fatalf("Remaining long after expiry = %d, want 0", got)
	}
	if got := l.TTL(); got != 100 {
		t.Fatalf("TTL = %d, want 100", got)
	}
}

// Renewing after the lease already lapsed is legal and starts a fresh
// term from the renewal instant — but the expiry the standby observed in
// between stands: once promoted, the fencing term (not the lease) decides
// who may write. The lease itself just restarts cleanly.
func TestLeaseRenewAfterExpiry(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if !l.Expired(250) {
		t.Fatal("lease should have lapsed at 250")
	}
	l.Renew(250)
	if l.Expired(349) {
		t.Fatal("late renewal did not start a fresh term")
	}
	if !l.Expired(350) {
		t.Fatal("fresh term must expire inclusively at renew+TTL")
	}
	if got := l.Remaining(300); got != 50 {
		t.Fatalf("Remaining mid-fresh-term = %d, want 50", got)
	}
}

// Remaining at the exact expiry instant is 0, not TTL and not negative —
// the standby's promotion wait must never round a just-expired lease back
// up to a full term.
func TestLeaseRemainingAtExactExpiry(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)
	if got := l.Remaining(99); got != 1 {
		t.Fatalf("Remaining one tick before expiry = %d, want 1", got)
	}
	if got := l.Remaining(100); got != 0 {
		t.Fatalf("Remaining at exact expiry = %d, want 0", got)
	}
	if got := l.Remaining(101); got != 0 {
		t.Fatalf("Remaining past expiry = %d, want 0", got)
	}
}

// Clock drift between primary and standby: the standby probes the lease
// with its own (skewed) virtual clock. A fast standby clock observes
// expiry early — a spurious but SAFE takeover (fencing rejects the live
// primary's writes); a slow standby clock observes expiry late — delayed
// but still inevitable promotion. Neither skew direction can make a
// renewal retroactively visible.
func TestLeaseClockDrift(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)

	// Standby running 30 ahead: at primary-time 80 it reads 110 — expired
	// from its point of view, while the primary still holds 20 of term.
	if !l.Expired(80 + 30) {
		t.Fatal("fast standby clock should observe expiry early")
	}

	// Standby running 30 behind: at primary-time 120 it reads 90 — the
	// lapsed lease still looks held, postponing promotion by the skew.
	l.Renew(0)
	if l.Expired(120 - 30) {
		t.Fatal("slow standby clock should observe expiry late")
	}
	if !l.Expired(130 - 30) {
		t.Fatal("slow clock only postpones expiry, never cancels it")
	}
}

// Gray failure: the primary keeps renewing, but each renewal is delayed
// beyond the TTL. The standby observes a lapsed lease (the in-flight
// renewal is invisible until it lands), and a renewal that does land
// later extends the term only from its issue time — never retroactively
// past an expiry already observed.
func TestLeaseRenewDelayedGray(t *testing.T) {
	l := NewLease(100)
	l.Renew(0)

	// Renewal issued at 50, crawling: visible only at 50+120=170.
	l.RenewDelayed(50, 120)
	if l.Expired(99) {
		t.Fatal("previous visible term should still hold before 100")
	}
	if !l.Expired(100) {
		t.Fatal("in-flight renewal must not extend the visible term")
	}
	if !l.Expired(149) {
		t.Fatal("still expired while the renewal is in flight")
	}
	// At 170 the renewal lands: issued at 50, so it expires at 150 —
	// already in the past. A too-slow renewal buys nothing.
	if !l.Expired(170) {
		t.Fatal("a renewal slower than the TTL must never revive the lease")
	}

	// A renewal delayed less than the TTL does extend the term once it
	// lands: issued at 200, visible at 230, expiring at 300.
	l.RenewDelayed(200, 30)
	if !l.Expired(229) {
		t.Fatal("renewal invisible before its arrival time")
	}
	if l.Expired(260) {
		t.Fatal("landed renewal should extend the visible term")
	}
	if !l.Expired(300) {
		t.Fatal("landed renewal expires at issue+TTL, not arrival+TTL")
	}

	// An instant renewal supersedes any in-flight one.
	l.RenewDelayed(400, 50)
	l.Renew(410)
	if l.Expired(509) {
		t.Fatal("instant renewal should supersede the pending one")
	}

	// Zero/negative delay degenerates to an instant renewal.
	l.RenewDelayed(600, 0)
	if l.Expired(699) {
		t.Fatal("zero-delay renewal should behave like Renew")
	}
}
