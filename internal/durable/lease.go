package durable

// Lease is the primary-liveness lease of the hot-standby pair, on the
// deployment's virtual clock (int64 virtual nanoseconds, matching
// packet.Packet.Time). The primary renews it on every successful
// collect-and-reset; the standby's health probe declares the primary dead
// only once the lease expires, so a takeover never races a live primary —
// at the cost of postponing promotion by at most one TTL.
type Lease struct {
	ttl     int64
	expires int64
	held    bool

	// A gray-slow primary's renewal is issued but not yet visible to the
	// standby: it sits in the pending slot until its arrival time passes,
	// then settles into expires on the next observation. One slot is
	// enough — a newer renewal supersedes an older in-flight one, and the
	// merge is conservative (the standby may see the primary as more dead
	// than it is; fencing makes the resulting spurious takeover safe).
	pendAt      int64 // virtual time the delayed renewal becomes visible
	pendExpires int64
	pending     bool
}

// NewLease builds a lease with the given time-to-live in virtual ns.
func NewLease(ttl int64) *Lease { return &Lease{ttl: ttl} }

// TTL returns the configured time-to-live.
func (l *Lease) TTL() int64 { return l.ttl }

// Renew extends the lease to now+TTL.
func (l *Lease) Renew(now int64) {
	l.expires = now + l.ttl
	l.held = true
	l.pending = false // an instant renewal supersedes any in-flight one
}

// RenewDelayed issues a renewal that only becomes visible to observers at
// now+delay — the gray-failure model: the primary is alive and renewing,
// but the renewals crawl. Until the renewal lands, Expired/Remaining
// answer from the previous visible state.
func (l *Lease) RenewDelayed(now, delay int64) {
	if delay <= 0 {
		l.Renew(now)
		return
	}
	l.pendAt = now + delay
	l.pendExpires = now + l.ttl
	l.pending = true
	l.held = true
}

// settle folds any delayed renewal that has arrived by now into the
// visible state.
func (l *Lease) settle(now int64) {
	if l.pending && now >= l.pendAt {
		if l.pendExpires > l.expires {
			l.expires = l.pendExpires
		}
		l.pending = false
	}
}

// Release drops the lease immediately (clean shutdown hands over without
// waiting out the TTL).
func (l *Lease) Release() {
	l.held = false
	l.pending = false
}

// Expired reports whether a held lease has lapsed. An unheld lease is
// expired by definition: there is no primary to wait for.
func (l *Lease) Expired(now int64) bool {
	l.settle(now)
	return !l.held || now >= l.expires
}

// Remaining returns the virtual time left before the standby may promote
// (0 when the lease is already expired).
func (l *Lease) Remaining(now int64) int64 {
	if l.Expired(now) {
		return 0
	}
	return l.expires - now
}
