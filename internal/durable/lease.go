package durable

// Lease is the primary-liveness lease of the hot-standby pair, on the
// deployment's virtual clock (int64 virtual nanoseconds, matching
// packet.Packet.Time). The primary renews it on every successful
// collect-and-reset; the standby's health probe declares the primary dead
// only once the lease expires, so a takeover never races a live primary —
// at the cost of postponing promotion by at most one TTL.
type Lease struct {
	ttl     int64
	expires int64
	held    bool
}

// NewLease builds a lease with the given time-to-live in virtual ns.
func NewLease(ttl int64) *Lease { return &Lease{ttl: ttl} }

// TTL returns the configured time-to-live.
func (l *Lease) TTL() int64 { return l.ttl }

// Renew extends the lease to now+TTL.
func (l *Lease) Renew(now int64) {
	l.expires = now + l.ttl
	l.held = true
}

// Release drops the lease immediately (clean shutdown hands over without
// waiting out the TTL).
func (l *Lease) Release() { l.held = false }

// Expired reports whether a held lease has lapsed. An unheld lease is
// expired by definition: there is no primary to wait for.
func (l *Lease) Expired(now int64) bool {
	return !l.held || now >= l.expires
}

// Remaining returns the virtual time left before the standby may promote
// (0 when the lease is already expired).
func (l *Lease) Remaining(now int64) int64 {
	if l.Expired(now) {
		return 0
	}
	return l.expires - now
}
