// Fencing terms. The store's directory is a shared resource two
// controllers race over during a network partition: a zombie primary
// (alive, but its lease renewals aren't landing) keeps appending while
// the standby promotes. The term file is the arbiter — a monotonic
// counter (wire.TermRecord, CRC-sealed, temp+rename atomic) that a
// promoting standby advances by compare-and-swap. Writing authority is
// the pair (writerTerm == curTerm): CASTerm advances curTerm without
// touching writerTerm, so from that instant every write by the old
// holder returns ErrFenced until the winner adopts the new term. The
// term rides on every WAL frame, every segment header, and every
// checkpoint snapshot, making the fencing history itself durable: a
// legitimate log is non-decreasing in term along LSN order, and a
// damaged term file is rebuilt from the newest segment-header term
// rather than silently granting a stale writer authority.
package durable

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"

	"omniwindow/internal/wire"
)

// ErrFenced is returned by mutating store operations when the writer's
// term is stale: another controller has acquired a newer term (CASTerm)
// since this writer last adopted one. A fenced writer must stop — its
// view of the log is no longer authoritative.
var ErrFenced = errors.New("durable: fenced: stale writer term")

// ErrTermConflict is returned by CASTerm when the expected term does not
// match the current one — another writer won the race.
var ErrTermConflict = errors.New("durable: term compare-and-swap conflict")

const (
	termName = "term.ow"
	termTemp = "term.ow.tmp"
)

// loadTermLocked establishes fencing authority at open: the term file if
// it decodes, rebuilt from the newest segment-header term when the file
// is damaged (quarantined) or missing. The opener adopts the loaded term
// — promotion CAS is always an explicit, separate step.
func (s *Store) loadTermLocked(maxSegTerm uint64) {
	cur := maxSegTerm
	path := filepath.Join(s.dir, termName)
	buf, err := s.readFileRetry(path)
	switch {
	case errors.Is(err, iofs.ErrNotExist):
		// No file yet: authority is whatever the segments prove.
	case err != nil:
		// Unreadable but possibly intact; leave it for the next open.
		s.scrubErrs.Add(1)
	default:
		rec, derr := wire.DecodeTermRecord(buf)
		if derr != nil {
			s.quarantineLocked(nil, path)
		} else if rec.Term > cur {
			cur = rec.Term
			s.holder = rec.Holder
		}
	}
	s.curTerm = cur
	s.writerTerm = cur
}

// writeTermLocked persists the term file atomically (temp write + rename,
// both with transient-fault retries through the FS seam).
func (s *Store) writeTermLocked(rec *wire.TermRecord) error {
	s.hdr = wire.AppendTermRecord(s.hdr[:0], rec)
	tmp := filepath.Join(s.dir, termTemp)
	if err := s.writeFileRetry(tmp, s.hdr); err != nil {
		return fmt.Errorf("durable: term: %w", err)
	}
	if err := s.renameRetry(tmp, filepath.Join(s.dir, termName)); err != nil {
		return fmt.Errorf("durable: term: %w", err)
	}
	return nil
}

// Term returns the current authoritative term (the newest acquired by any
// writer); 0 means fencing was never engaged.
func (s *Store) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curTerm
}

// WriterTerm returns the term this handle writes under. It lags Term
// between a CASTerm and the winner's AdoptTerm — the interval in which
// every write is fenced.
func (s *Store) WriterTerm() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writerTerm
}

// FencedWrites returns how many mutating operations were rejected with
// ErrFenced.
func (s *Store) FencedWrites() int64 { return s.fenced.Load() }

// CASTerm acquires the next term by compare-and-swap: it fails with
// ErrTermConflict unless expect matches the current term, then durably
// advances the term file to expect+1 before updating the in-memory
// authority. The caller's own writes are fenced too until it adopts the
// new term (AdoptTerm) — acquisition and adoption are separate so a
// promotion that dies in between leaves the store refusing *all* stale
// writers, never trusting a half-promoted one.
func (s *Store) CASTerm(expect uint64, holder uint32) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, s.deadErr
	}
	if expect != s.curTerm {
		return 0, fmt.Errorf("durable: term %d, expected %d: %w", s.curTerm, expect, ErrTermConflict)
	}
	next := expect + 1
	if err := s.writeTermLocked(&wire.TermRecord{Term: next, Holder: holder}); err != nil {
		return 0, err
	}
	s.curTerm = next
	s.holder = holder
	return next, nil
}

// AdoptTerm makes this handle write under term t, which must be the
// current authoritative term (the caller just won it via CASTerm). Every
// chain seals, so the new term's first append opens a fresh segment whose
// header carries it — segment rotation records the handover durably.
func (s *Store) AdoptTerm(t uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return s.deadErr
	}
	if t != s.curTerm {
		return fmt.Errorf("durable: cannot adopt term %d, current is %d: %w", t, s.curTerm, ErrTermConflict)
	}
	if s.writerTerm != t {
		s.writerTerm = t
		for _, c := range s.chains {
			s.sealLocked(c)
		}
	}
	return nil
}
