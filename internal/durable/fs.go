// FS is the store's seam to the operating system. Production uses OSFS
// (thin os.* passthroughs); tests and chaos suites wrap it in FaultFS,
// which injects deterministic per-operation faults from a
// faults.DiskSchedule. Keeping the seam at the file-data level — writes,
// reads, renames — puts the interesting failure domain (the medium) under
// test while leaving directory metadata operations clean, so a faulty
// disk can never prevent the store from even enumerating its segments.
package durable

import (
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"

	"omniwindow/internal/faults"
)

// File is the writable handle the store appends WAL frames through.
type File interface {
	Write(p []byte) (int, error)
	Close() error
}

// FS abstracts every file operation the store performs.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// FaultFS wraps a base FS and injects faults from a DiskSchedule. Each
// file-data operation consumes one monotonically increasing operation
// index, so a retried operation redraws its fate rather than replaying
// it — exactly how a real transient fault behaves. Injected slow-IO
// latency accumulates virtually (never sleeps) and is drained by
// TakeSlowWait for the deployment to charge against its collection
// budget. Directory operations (MkdirAll, ReadDir, Remove) pass through
// unfaulted.
type FaultFS struct {
	base  FS
	sched *faults.DiskSchedule
	op    atomic.Uint64
	slow  atomic.Int64
}

// NewFaultFS wraps base with sched. A nil sched injects nothing.
func NewFaultFS(base FS, sched *faults.DiskSchedule) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{base: base, sched: sched}
}

// TakeSlowWait returns and resets the accumulated virtual slow-IO
// latency in nanoseconds.
func (f *FaultFS) TakeSlowWait() int64 { return f.slow.Swap(0) }

// Ops returns how many fault-drawable operations have run (test hook).
func (f *FaultFS) Ops() uint64 { return f.op.Load() }

func (f *FaultFS) next() uint64 {
	op := f.op.Add(1) - 1
	if slow, lat := f.sched.SlowIOAt(op); slow {
		f.slow.Add(lat)
	}
	return op
}

func (f *FaultFS) Create(name string) (File, error) {
	base, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: base, fs: f, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	op := f.next()
	if f.sched.ReadEIOAt(op) {
		return nil, fmt.Errorf("read %s: %w", name, faults.ErrDiskEIO)
	}
	return f.base.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	op := f.next()
	if f.sched.ENOSPCAt(op) {
		return fmt.Errorf("write %s: %w", name, faults.ErrDiskENOSPC)
	}
	if f.sched.WriteEIOAt(op) {
		return fmt.Errorf("write %s: %w", name, faults.ErrDiskEIO)
	}
	if f.sched.ShortWriteAt(op) && len(data) > 1 {
		// The torn prefix lands; the failure is reported.
		if err := f.base.WriteFile(name, data[:len(data)/2], perm); err != nil {
			return err
		}
		return fmt.Errorf("write %s: torn: %w", name, faults.ErrDiskEIO)
	}
	if f.sched.BitRotAt(op) && len(data) > 0 {
		idx, mask := f.sched.BitRotSpot(op, len(data))
		rotted := append([]byte(nil), data...)
		rotted[idx] ^= mask
		return f.base.WriteFile(name, rotted, perm)
	}
	return f.base.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	op := f.next()
	if f.sched.WriteEIOAt(op) {
		return fmt.Errorf("rename %s: %w", oldpath, faults.ErrDiskEIO)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.base.ReadDir(name) }

// faultFile injects write faults on an open segment handle.
type faultFile struct {
	f    File
	fs   *FaultFS
	name string
}

func (w *faultFile) Write(p []byte) (int, error) {
	op := w.fs.next()
	sched := w.fs.sched
	if sched.ENOSPCAt(op) {
		return 0, fmt.Errorf("write %s: %w", w.name, faults.ErrDiskENOSPC)
	}
	if sched.WriteEIOAt(op) {
		return 0, fmt.Errorf("write %s: %w", w.name, faults.ErrDiskEIO)
	}
	if sched.ShortWriteAt(op) && len(p) > 1 {
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write %s: torn: %w", w.name, faults.ErrDiskEIO)
	}
	if sched.BitRotAt(op) && len(p) > 0 {
		// The write "succeeds" but the medium stores one flipped byte —
		// only a CRC re-read can tell. Allocation happens only on the
		// fault path; the clean path below stays zero-alloc.
		idx, mask := sched.BitRotSpot(op, len(p))
		rotted := append([]byte(nil), p...)
		rotted[idx] ^= mask
		if _, err := w.f.Write(rotted); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return w.f.Write(p)
}

func (w *faultFile) Close() error { return w.f.Close() }
