// Package durable is the controller's persistence layer: a checkpoint file
// holding the complete restorable controller state at a sub-window
// boundary, plus per-shard write-ahead logs of everything ingested since,
// so a crashed controller (or a promoted standby) replays back to the
// exact pre-crash state.
//
// Layout inside the directory:
//
//	checkpoint.snap   latest snapshot (wire.EncodeSnapshot; temp+rename)
//	wal-NNN.log       per-shard AFR-batch log (wire.AppendWALRecord frames)
//	wal.ctl           control log: triggers, finishes, shed notes
//
// Every appended frame carries a global log sequence number (LSN) from one
// atomic counter, so replay merges the per-shard logs and the control log
// back into one total order. A checkpoint records the LSN high-water mark
// it covers (ThroughLSN); replay skips frames at or below it, which makes
// a crash between the checkpoint rename and the log truncation harmless —
// the stale frames are recognized and ignored, never double-applied.
//
// A torn tail (the partial frame a crash mid-append leaves behind) decodes
// as wire.ErrTruncated and cleanly ends that log's replay; a frame that
// fails its CRC does the same, because nothing after an undecodable length
// prefix can be trusted.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// ErrCrash is returned by Store operations when the configured crash hook
// fires: the simulated process died mid-operation. The store refuses all
// further writes, exactly as a dead process would.
var ErrCrash = errors.New("durable: simulated crash")

const (
	checkpointName = "checkpoint.snap"
	checkpointTemp = "checkpoint.snap.tmp"
	ctlName        = "wal.ctl"
)

func walName(shard int) string { return fmt.Sprintf("wal-%03d.log", shard) }

// Store manages one controller's checkpoint and write-ahead logs.
type Store struct {
	dir    string
	shards int
	lsn    atomic.Uint64 // last issued LSN

	mu   sync.Mutex
	data []*os.File // per-shard AFR logs
	ctl  *os.File   // control log
	dead bool
	enc  []byte // frame/snapshot encode scratch, reused under mu

	// crash, when set, is consulted at named points inside mutating
	// operations; returning true aborts the operation with ErrCrash,
	// leaving behind whatever partial bytes a real crash would. Points:
	// "wal-append" (a torn half-frame is written first), "checkpoint-temp"
	// (partial temp file), "checkpoint-rename" (temp complete, rename not
	// done), "wal-truncate" (checkpoint renamed, logs not yet truncated).
	crash func(point string) bool

	// Nil-safe instrumentation handles (see Instrument).
	walLat      *obs.Histogram
	ckptLat     *obs.Histogram
	appends     *obs.Counter
	checkpoints *obs.Counter
	walBytes    *obs.Counter
	ckptBytes   *obs.Counter
}

// Open creates (or reopens) a store with the given shard count. Reopening
// an existing directory resumes the LSN counter past every frame already
// on disk.
func Open(dir string, shards int) (*Store, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("durable: shard count must be positive, got %d", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, shards: shards}
	for i := 0; i < shards; i++ {
		f, err := os.OpenFile(filepath.Join(dir, walName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("durable: %w", err)
		}
		s.data = append(s.data, f)
	}
	ctl, err := os.OpenFile(filepath.Join(dir, ctlName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("durable: %w", err)
	}
	s.ctl = ctl

	// Resume the LSN counter past everything already durable, so new
	// frames never collide with replayed ones.
	max := uint64(0)
	snap, err := s.LoadCheckpoint()
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	if snap != nil && snap.ThroughLSN > max {
		max = snap.ThroughLSN
	}
	recs, err := s.replayAll()
	if err != nil {
		s.closeFiles()
		return nil, err
	}
	for _, r := range recs {
		if r.LSN > max {
			max = r.LSN
		}
	}
	s.lsn.Store(max)
	return s, nil
}

// SetCrash installs the simulated-crash hook (tests only; see Store.crash).
func (s *Store) SetCrash(fn func(point string) bool) { s.crash = fn }

// Instrument registers the durability metric family on reg: WAL append
// and checkpoint latency distributions plus operation/byte counters. The
// handles are nil-safe, so an uninstrumented store (the default) pays
// nothing. Call before the store carries traffic.
func (s *Store) Instrument(reg *obs.Registry, labels string) {
	n := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	s.walLat = reg.Histogram(n("omniwindow_durable_wal_append_seconds"), "write-ahead log append latency (frame encode + write)", nil)
	s.ckptLat = reg.Histogram(n("omniwindow_durable_checkpoint_seconds"), "checkpoint latency (encode + temp write + rename + truncate)", nil)
	s.appends = reg.Counter(n("omniwindow_durable_wal_appends_total"), "write-ahead log frames appended")
	s.checkpoints = reg.Counter(n("omniwindow_durable_checkpoints_total"), "checkpoints completed")
	s.walBytes = reg.Counter(n("omniwindow_durable_wal_bytes_total"), "bytes appended to the write-ahead logs")
	s.ckptBytes = reg.Counter(n("omniwindow_durable_checkpoint_bytes_total"), "bytes written per completed checkpoint snapshot")
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// LSN returns the last issued log sequence number.
func (s *Store) LSN() uint64 { return s.lsn.Load() }

func (s *Store) closeFiles() {
	for _, f := range s.data {
		if f != nil {
			f.Close()
		}
	}
	if s.ctl != nil {
		s.ctl.Close()
	}
}

// Close flushes and closes every log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil
	}
	s.dead = true
	s.closeFiles()
	return nil
}

// die marks the store dead at a crash point, simulating the partial write
// a real crash leaves: if frame is non-empty, its first half is written to
// f before the process "dies".
func (s *Store) die(f *os.File, frame []byte) error {
	if f != nil && len(frame) > 0 {
		f.Write(frame[:len(frame)/2])
	}
	s.dead = true
	s.closeFiles()
	return ErrCrash
}

// append writes one framed record to f.
func (s *Store) append(f *os.File, rec *wire.WALRecord) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrCrash
	}
	// Encode into the store's scratch buffer: one steady-state allocation
	// for the life of the store instead of one per append. Safe because
	// the frame is fully written (or abandoned) before mu is released.
	s.enc = wire.AppendWALRecord(s.enc[:0], rec)
	frame := s.enc
	if s.crash != nil && s.crash("wal-append") {
		return s.die(f, frame)
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	s.appends.Inc()
	s.walBytes.Add(int64(len(frame)))
	s.walLat.Observe(time.Since(start))
	return nil
}

// AppendBatch logs one ingested AFR batch to a shard's log. retrans marks
// batches that arrived via the NACK/retransmit path, so replayed delivery
// accounting matches the original run's.
func (s *Store) AppendBatch(shard int, sw uint64, retrans bool, afrs []packet.AFR) error {
	if shard < 0 || shard >= s.shards {
		return fmt.Errorf("durable: shard %d out of range [0,%d)", shard, s.shards)
	}
	return s.append(s.data[shard], &wire.WALRecord{
		Type: wire.WALAFRBatch, LSN: s.lsn.Add(1), SubWindow: sw, Retrans: retrans, AFRs: afrs,
	})
}

// AppendTrigger logs a sub-window's trigger announcement.
func (s *Store) AppendTrigger(sw uint64, keyCount uint32) error {
	return s.append(s.ctl, &wire.WALRecord{
		Type: wire.WALTrigger, LSN: s.lsn.Add(1), SubWindow: sw, KeyCount: keyCount,
	})
}

// AppendFinish logs a FinishSubWindow call, so replay re-runs the window
// assembly (and its evictions) at exactly the same point in the ingest
// order.
func (s *Store) AppendFinish(sw uint64) error {
	return s.append(s.ctl, &wire.WALRecord{
		Type: wire.WALFinish, LSN: s.lsn.Add(1), SubWindow: sw,
	})
}

// AppendShed logs records dropped by admission control, so restored
// ShedAFRs/Degraded accounting matches the pre-crash state.
func (s *Store) AppendShed(sw uint64, n uint32) error {
	return s.append(s.ctl, &wire.WALRecord{
		Type: wire.WALShed, LSN: s.lsn.Add(1), SubWindow: sw, Count: n,
	})
}

// Checkpoint atomically replaces the checkpoint file with snap and
// truncates the logs it supersedes. snap.ThroughLSN is stamped with the
// current LSN high-water mark: every frame logged so far is folded into
// the snapshot by construction (the caller exports controller state after
// logging everything it ingested).
func (s *Store) Checkpoint(snap *wire.Snapshot) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrCrash
	}
	snap.ThroughLSN = s.lsn.Load()
	s.enc = wire.EncodeSnapshot(s.enc[:0], snap)
	buf := s.enc

	tmp := filepath.Join(s.dir, checkpointTemp)
	if s.crash != nil && s.crash("checkpoint-temp") {
		f, _ := os.Create(tmp)
		return s.die(f, buf)
	}
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if s.crash != nil && s.crash("checkpoint-rename") {
		return s.die(nil, nil)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if s.crash != nil && s.crash("wal-truncate") {
		return s.die(nil, nil)
	}
	// The snapshot covers every logged frame; drop them. A crash before
	// this point leaves stale frames behind, which replay recognizes by
	// LSN and skips.
	for _, f := range s.data {
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
	}
	if err := s.ctl.Truncate(0); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := s.ctl.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	s.checkpoints.Inc()
	s.ckptBytes.Add(int64(len(buf)))
	s.ckptLat.Observe(time.Since(start))
	return nil
}

// LoadCheckpoint reads and verifies the checkpoint file. It returns
// (nil, nil) when no checkpoint exists yet. A checkpoint that fails its
// CRC or version check is an error: refusing to load beats silently
// merging a torn snapshot.
func (s *Store) LoadCheckpoint() (*wire.Snapshot, error) {
	buf, err := os.ReadFile(filepath.Join(s.dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	snap, err := wire.DecodeSnapshot(buf)
	if err != nil {
		return nil, fmt.Errorf("durable: checkpoint: %w", err)
	}
	return snap, nil
}

// replayFile decodes every complete frame of one log file. A torn tail
// (ErrTruncated) or a corrupt frame (ErrChecksum) ends that file's replay
// at the last good frame — everything after an unreliable length prefix is
// unreachable anyway.
func replayFile(path string) ([]*wire.WALRecord, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var recs []*wire.WALRecord
	for off := 0; off < len(buf); {
		rec, n, err := wire.DecodeWALRecord(buf[off:])
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, nil
}

// replayAll merges every log file's frames into LSN order.
func (s *Store) replayAll() ([]*wire.WALRecord, error) {
	var all []*wire.WALRecord
	for i := 0; i < s.shards; i++ {
		recs, err := replayFile(filepath.Join(s.dir, walName(i)))
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	recs, err := replayFile(filepath.Join(s.dir, ctlName))
	if err != nil {
		return nil, err
	}
	all = append(all, recs...)
	sort.Slice(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })
	return all, nil
}

// Recover loads the latest checkpoint (nil when none exists) plus the WAL
// frames it does not cover, merged into one LSN-ordered replay sequence.
func (s *Store) Recover() (*wire.Snapshot, []*wire.WALRecord, error) {
	snap, err := s.LoadCheckpoint()
	if err != nil {
		return nil, nil, err
	}
	all, err := s.replayAll()
	if err != nil {
		return nil, nil, err
	}
	through := uint64(0)
	if snap != nil {
		through = snap.ThroughLSN
	}
	recs := all[:0]
	for _, r := range all {
		if r.LSN > through {
			recs = append(recs, r)
		}
	}
	return snap, recs, nil
}
