// Package durable is the controller's persistence layer: a checkpoint file
// holding the complete restorable controller state at a sub-window
// boundary, plus per-shard write-ahead logs of everything ingested since,
// so a crashed controller (or a promoted standby) replays back to the
// exact pre-crash state.
//
// Layout inside the directory:
//
//	checkpoint.snap       latest snapshot (wire.EncodeSnapshot; temp+rename)
//	wal-NNN-GGGGGG.log    per-shard AFR-batch segments (chain NNN, generation G)
//	wal-ctl-GGGGGG.log    control-chain segments: triggers, finishes, sheds
//	*.quarantined         segments (or a checkpoint) set aside as damaged
//
// Each chain's log is a sequence of generation-numbered segments, every
// segment opening with a wire.SegmentHeader naming its chain and
// generation. Segments rotate on a size cap and on a sub-window cadence,
// which bounds the blast radius of any single damaged file. A checkpoint
// supersedes and deletes every live segment; post-checkpoint appends open
// fresh generations.
//
// Every appended frame carries a global log sequence number (LSN) from one
// atomic counter, so replay merges the per-chain segments back into one
// total order. A checkpoint records the LSN high-water mark it covers
// (ThroughLSN); replay skips frames at or below it, which makes a crash
// between the checkpoint rename and the segment deletion harmless — the
// stale frames are recognized and ignored, never double-applied.
//
// The storage failure doctrine: a torn tail (the partial frame a crash or
// a survived short write leaves at the end of a segment) ends that
// segment's replay at the last good frame and is not damage; a frame that
// fails its CRC, an unreadable file, or a damaged segment header is
// damage — the file is quarantined (renamed aside) rather than aborting
// recovery, and the LSNs that disappear with it surface as LostLSNRange
// gaps the caller must account as missing data. Transient write faults
// are retried with backoff behind a rotation (so the tear a failed
// attempt leaves behind is always a benign torn tail); persistent faults
// (ENOSPC, exhausted retries) surface to the caller, which drops to
// degraded durability rather than halting the window pipeline.
package durable

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"omniwindow/internal/faults"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// ErrCrash is returned by Store operations when the configured crash hook
// fires: the simulated process died mid-operation. The store refuses all
// further writes, exactly as a dead process would.
var ErrCrash = errors.New("durable: simulated crash")

// ErrClosed is returned by operations on a store after Close.
var ErrClosed = errors.New("durable: store closed")

const (
	checkpointName   = "checkpoint.snap"
	checkpointTemp   = "checkpoint.snap.tmp"
	quarantineSuffix = ".quarantined"

	// segBoundaryCadence seals a non-empty active segment after this many
	// sub-window boundaries even if the size cap hasn't been reached, so
	// slow shards still rotate and a damaged file stays small in time as
	// well as in bytes.
	segBoundaryCadence = 8

	defaultSegmentBytes    = 256 << 10
	defaultRetryLimit      = 3
	defaultRetryBackoff    = time.Millisecond
	defaultRetryMaxBackoff = 50 * time.Millisecond
	defaultScrubDepth      = 64
)

// Options tunes OpenStore. The zero value gives the production defaults.
type Options struct {
	// FS is the filesystem seam; nil means the real filesystem (OSFS).
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this size;
	// <= 0 means the 256 KiB default.
	SegmentBytes int
	// RetryLimit is how many times a transiently failed file operation is
	// retried; 0 means the default (3), negative disables retries.
	RetryLimit int
	// RetryBackoff is the first retry's backoff, doubling per attempt up
	// to RetryMaxBackoff. Backoff is charged to the store's virtual
	// IO-wait accumulator (TakeIOWait), never slept.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// ScrubDepth is how many recent frames per chain Scrub re-reads and
	// CRC-verifies; 0 means the default (64), negative disables scrubbing.
	ScrubDepth int
}

// LostLSNRange is a gap in the recovered LSN sequence: frames the store
// issued but could not replay, because the segment holding them was
// quarantined (or a checkpoint vanished). SWLow/SWHigh bound the
// sub-windows whose data may be damaged, taken from the nearest
// recovered neighbors; the caller must account every sub-window in the
// range as missing data so the windows spanning them surface as
// Incomplete instead of silently wrong.
type LostLSNRange struct {
	From, To      uint64 // inclusive LSN bounds of the gap
	SWLow, SWHigh uint64 // inclusive sub-window bounds possibly damaged
}

// frameLoc locates one frame inside the active segment, for the scrubber.
type frameLoc struct {
	off int64
	n   int32
}

// chain is one append stream (a shard's AFR log, or the control log) and
// its active segment.
type chain struct {
	id   uint32 // wire chain id: shard index, or wire.CtlChain
	name string // filename component: "000", "001", ..., or "ctl"

	gen    uint64 // highest generation ever seen or opened
	f      File   // active segment handle; nil when none is open
	path   string
	size   int64
	frames int      // frames written to the active segment
	opened uint64   // boundary counter value when the active segment opened
	segs   []string // live (non-quarantined, non-deleted) segment paths
	ring   []frameLoc
}

// Store manages one controller's checkpoint and write-ahead log segments.
type Store struct {
	dir    string
	shards int
	fsys   FS

	segBytes        int64
	retryLimit      int
	retryBackoff    time.Duration
	retryMaxBackoff time.Duration
	scrubDepth      int

	lsn atomic.Uint64 // last issued LSN

	mu       sync.Mutex
	chains   []*chain // shards AFR chains, then the control chain
	boundary uint64   // SealBoundary call counter
	dead     bool
	deadErr  error
	enc      []byte // frame/snapshot encode scratch, reused under mu
	hdr      []byte // segment-header encode scratch (enc may hold a frame)
	lost     []LostLSNRange

	// Fencing state (see term.go): curTerm is the authoritative term
	// (term file), writerTerm is the term this handle writes under.
	// Writes are accepted only while the two agree.
	curTerm     uint64
	writerTerm  uint64
	holder      uint32
	segTermHigh uint64 // newest segment-header term seen by recovery

	ioWait      atomic.Int64 // virtual ns: retry backoff (plus FS slow IO, drained in TakeIOWait)
	walErrs     atomic.Int64
	rotations   atomic.Int64
	quarantines atomic.Int64
	scrubErrs   atomic.Int64
	fenced      atomic.Int64

	// crash, when set, is consulted at named points inside mutating
	// operations; returning true aborts the operation with ErrCrash,
	// leaving behind whatever partial bytes a real crash would. Points:
	// "wal-append" (a torn half-frame is written first), "checkpoint-temp"
	// (partial temp file), "checkpoint-rename" (temp complete, rename not
	// done), "wal-truncate" (checkpoint renamed, old segments not yet
	// deleted).
	crash func(point string) bool

	// Nil-safe instrumentation handles (see Instrument).
	walLat      *obs.Histogram
	ckptLat     *obs.Histogram
	appends     *obs.Counter
	checkpoints *obs.Counter
	walBytes    *obs.Counter
	ckptBytes   *obs.Counter
}

// Open creates (or reopens) a store with the given shard count and
// default options. Reopening an existing directory resumes the LSN
// counter past every frame already on disk.
func Open(dir string, shards int) (*Store, error) {
	return OpenStore(dir, shards, Options{})
}

// OpenStore is Open with explicit Options.
func OpenStore(dir string, shards int, opt Options) (*Store, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("durable: shard count must be positive, got %d", shards)
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	s := &Store{
		dir:             dir,
		shards:          shards,
		fsys:            fsys,
		segBytes:        int64(opt.SegmentBytes),
		retryLimit:      opt.RetryLimit,
		retryBackoff:    opt.RetryBackoff,
		retryMaxBackoff: opt.RetryMaxBackoff,
		scrubDepth:      opt.ScrubDepth,
	}
	if s.segBytes <= 0 {
		s.segBytes = defaultSegmentBytes
	}
	switch {
	case s.retryLimit == 0:
		s.retryLimit = defaultRetryLimit
	case s.retryLimit < 0:
		s.retryLimit = 0
	}
	if s.retryBackoff <= 0 {
		s.retryBackoff = defaultRetryBackoff
	}
	if s.retryMaxBackoff < s.retryBackoff {
		s.retryMaxBackoff = defaultRetryMaxBackoff
		if s.retryMaxBackoff < s.retryBackoff {
			s.retryMaxBackoff = s.retryBackoff
		}
	}
	switch {
	case s.scrubDepth == 0:
		s.scrubDepth = defaultScrubDepth
	case s.scrubDepth < 0:
		s.scrubDepth = 0
	}

	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	for i := 0; i < shards; i++ {
		s.chains = append(s.chains, s.newChain(uint32(i), fmt.Sprintf("%03d", i)))
	}
	s.chains = append(s.chains, s.newChain(wire.CtlChain, "ctl"))

	if err := s.scanDir(); err != nil {
		return nil, err
	}
	// Resume the LSN counter past everything already durable, so new
	// frames never collide with replayed ones. Segments are opened
	// lazily on first append; nothing is written here. The recovery scan
	// also surfaces the newest segment-header term, which backs the term
	// file up if it is damaged or missing.
	s.mu.Lock()
	s.recoverLocked()
	s.loadTermLocked(s.segTermHigh)
	s.mu.Unlock()
	return s, nil
}

func (s *Store) newChain(id uint32, name string) *chain {
	c := &chain{id: id, name: name}
	if s.scrubDepth > 0 {
		c.ring = make([]frameLoc, s.scrubDepth)
	}
	return c
}

func (s *Store) segPath(c *chain, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%s-%06d.log", c.name, gen))
}

// parseSegName maps a segment filename (without any quarantine suffix) to
// its chain index and generation. The legacy single-file names
// ("wal-000.log", "wal.ctl") don't parse and are simply ignored.
func (s *Store) parseSegName(name string) (ci int, gen uint64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	i := strings.LastIndexByte(mid, '-')
	if i < 0 {
		return 0, 0, false
	}
	gen, err := strconv.ParseUint(mid[i+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	if mid[:i] == "ctl" {
		return s.shards, gen, true
	}
	n, err := strconv.Atoi(mid[:i])
	if err != nil || n < 0 || n >= s.shards {
		return 0, 0, false
	}
	return n, gen, true
}

// scanDir enumerates existing segments into each chain (sorted by
// generation) and advances the generation counters past every file seen,
// quarantined ones included, so new segments never collide with old names.
func (s *Store) scanDir() error {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	type seg struct {
		gen  uint64
		path string
	}
	found := make([][]seg, len(s.chains))
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, quarantineSuffix) {
			if ci, gen, ok := s.parseSegName(strings.TrimSuffix(name, quarantineSuffix)); ok && gen > s.chains[ci].gen {
				s.chains[ci].gen = gen
			}
			continue
		}
		ci, gen, ok := s.parseSegName(name)
		if !ok {
			continue
		}
		found[ci] = append(found[ci], seg{gen, filepath.Join(s.dir, name)})
		if gen > s.chains[ci].gen {
			s.chains[ci].gen = gen
		}
	}
	for ci, segs := range found {
		sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
		for _, sg := range segs {
			s.chains[ci].segs = append(s.chains[ci].segs, sg.path)
		}
	}
	return nil
}

// SetCrash installs the simulated-crash hook (tests only; see Store.crash).
func (s *Store) SetCrash(fn func(point string) bool) { s.crash = fn }

// Instrument registers the durability metric family on reg: WAL append
// and checkpoint latency distributions plus operation/byte/fault
// counters. The handles are nil-safe, so an uninstrumented store (the
// default) pays nothing. Call before the store carries traffic.
func (s *Store) Instrument(reg *obs.Registry, labels string) {
	n := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	s.walLat = reg.Histogram(n("omniwindow_durable_wal_append_seconds"), "write-ahead log append latency (frame encode + write)", nil)
	s.ckptLat = reg.Histogram(n("omniwindow_durable_checkpoint_seconds"), "checkpoint latency (encode + temp write + rename + segment deletion)", nil)
	s.appends = reg.Counter(n("omniwindow_durable_wal_appends_total"), "write-ahead log frames appended")
	s.checkpoints = reg.Counter(n("omniwindow_durable_checkpoints_total"), "checkpoints completed")
	s.walBytes = reg.Counter(n("omniwindow_durable_wal_bytes_total"), "bytes appended to the write-ahead logs")
	s.ckptBytes = reg.Counter(n("omniwindow_durable_checkpoint_bytes_total"), "bytes written per completed checkpoint snapshot")
	reg.CounterFunc(n("omniwindow_durable_wal_errors_total"), "write-ahead log append attempts that failed (before any retry succeeded)", s.walErrs.Load)
	reg.CounterFunc(n("omniwindow_durable_rotations_total"), "WAL segments sealed (size cap, cadence, retry rotation, or checkpoint)", s.rotations.Load)
	reg.CounterFunc(n("omniwindow_durable_quarantined_segments_total"), "damaged segments or checkpoints set aside during recovery or scrubbing", s.quarantines.Load)
	reg.CounterFunc(n("omniwindow_durable_scrub_errors_total"), "scrub passes that could not verify a chain (read failures)", s.scrubErrs.Load)
	reg.CounterFunc(n("omniwindow_durable_fenced_writes_total"), "mutating operations rejected because the writer's fencing term was stale", s.fenced.Load)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// LSN returns the last issued log sequence number.
func (s *Store) LSN() uint64 { return s.lsn.Load() }

// Quarantined returns how many damaged files this store instance has set
// aside (segments and checkpoints).
func (s *Store) Quarantined() int64 { return s.quarantines.Load() }

// WALErrors returns how many append attempts failed.
func (s *Store) WALErrors() int64 { return s.walErrs.Load() }

// ScrubErrors returns how many scrub passes hit unreadable chains.
func (s *Store) ScrubErrors() int64 { return s.scrubErrs.Load() }

// Rotations returns how many segments have been sealed.
func (s *Store) Rotations() int64 { return s.rotations.Load() }

// Lost returns the LSN gaps found by the most recent recovery pass (Open
// or Recover): frames that were issued but could not be replayed.
func (s *Store) Lost() []LostLSNRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LostLSNRange(nil), s.lost...)
}

// FSOps reports how many fault-drawable filesystem operations the store
// has issued, when the seam tracks them (FaultFS); 0 otherwise. Chaos
// tests use it to place ENOSPC windows at run-relative positions.
func (s *Store) FSOps() uint64 {
	if f, ok := s.fsys.(interface{ Ops() uint64 }); ok {
		return f.Ops()
	}
	return 0
}

// TakeIOWait returns and resets the store's accumulated virtual IO wait
// in nanoseconds: retry backoff, plus any injected slow-IO latency when
// the filesystem seam reports it. The deployment charges this against
// its collection budget, keeping slow disks visible in virtual time
// without ever sleeping.
func (s *Store) TakeIOWait() int64 {
	w := s.ioWait.Swap(0)
	if f, ok := s.fsys.(interface{ TakeSlowWait() int64 }); ok {
		w += f.TakeSlowWait()
	}
	return w
}

// markDeadLocked transitions the store to its terminal state exactly
// once: the first cause wins, every open handle is closed, and all later
// operations return the same stable wrapped error.
func (s *Store) markDeadLocked(err error) {
	if s.dead {
		return
	}
	s.dead = true
	s.deadErr = err
	for _, c := range s.chains {
		if c.f != nil {
			c.f.Close()
			c.f = nil
		}
	}
}

// Close flushes and closes every open segment. Idempotent; operations
// after Close return an error wrapping ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markDeadLocked(fmt.Errorf("durable: %w", ErrClosed))
	return nil
}

// die marks the store dead at a crash point, simulating the partial write
// a real crash leaves: if frame is non-empty, its first half is written to
// f before the process "dies". Idempotent — a second crash point (or a
// concurrent appender) observes the first death's stable error.
func (s *Store) die(f File, frame []byte, point string) error {
	if s.dead {
		return s.deadErr
	}
	if f != nil && len(frame) > 0 {
		f.Write(frame[:len(frame)/2])
	}
	s.markDeadLocked(fmt.Errorf("durable: store dead (crashed at %q): %w", point, ErrCrash))
	return s.deadErr
}

// isFull reports a full-disk error — the one fault class retries can't
// help with.
func isFull(err error) bool {
	return errors.Is(err, faults.ErrDiskENOSPC) || errors.Is(err, syscall.ENOSPC)
}

func (s *Store) nextBackoff(backoff time.Duration) time.Duration {
	backoff *= 2
	if backoff > s.retryMaxBackoff {
		backoff = s.retryMaxBackoff
	}
	return backoff
}

// sealLocked closes the active segment; the next append opens a fresh
// generation. The sealed file is final: replay reads it until its last
// good frame.
func (s *Store) sealLocked(c *chain) {
	if c.f == nil {
		return
	}
	c.f.Close()
	c.f = nil
	c.frames = 0
	s.rotations.Add(1)
}

// openSegmentLocked opens the chain's next-generation segment and writes
// its header. On failure the chain stays closed (c.f nil) and the caller
// decides whether to retry.
func (s *Store) openSegmentLocked(c *chain) error {
	gen := c.gen + 1
	path := s.segPath(c, gen)
	f, err := s.fsys.Create(path)
	if err != nil {
		return err
	}
	s.hdr = wire.AppendSegmentHeader(s.hdr[:0], &wire.SegmentHeader{Chain: c.id, Gen: gen, Term: s.writerTerm})
	if n, werr := f.Write(s.hdr); werr != nil || n != len(s.hdr) {
		f.Close()
		s.fsys.Remove(path)
		c.gen = gen // never reuse the name, even on failure
		if werr == nil {
			werr = io.ErrShortWrite
		}
		return werr
	}
	c.gen, c.f, c.path = gen, f, path
	c.size = int64(len(s.hdr))
	c.frames = 0
	c.opened = s.boundary
	c.segs = append(c.segs, path)
	return nil
}

// writeFrameLocked lands one frame on the chain's active segment, opening
// one lazily and retrying transient faults with backoff. Every failed
// attempt seals the segment first, so the torn bytes a short write may
// have left become a benign torn tail and the retried frame starts a
// fresh file. ENOSPC is persistent by definition and short-circuits the
// retries.
func (s *Store) writeFrameLocked(c *chain, frame []byte) error {
	var lastErr error
	backoff := s.retryBackoff
	for attempt := 0; attempt <= s.retryLimit; attempt++ {
		if attempt > 0 {
			s.ioWait.Add(int64(backoff))
			backoff = s.nextBackoff(backoff)
		}
		if c.f == nil {
			if err := s.openSegmentLocked(c); err != nil {
				lastErr = err
				s.walErrs.Add(1)
				if isFull(err) {
					break
				}
				continue
			}
		}
		n, err := c.f.Write(frame)
		if err == nil && n == len(frame) {
			if len(c.ring) > 0 {
				c.ring[c.frames%len(c.ring)] = frameLoc{off: c.size, n: int32(n)}
			}
			c.size += int64(n)
			c.frames++
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		lastErr = err
		s.walErrs.Add(1)
		s.sealLocked(c)
		if isFull(err) {
			break
		}
	}
	return fmt.Errorf("durable: wal append: %w", lastErr)
}

// append writes one framed record to the chain at index ci.
func (s *Store) append(ci int, rec *wire.WALRecord) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return s.deadErr
	}
	if s.writerTerm != s.curTerm {
		s.fenced.Add(1)
		return ErrFenced
	}
	rec.Term = s.writerTerm
	c := s.chains[ci]
	// Encode into the store's scratch buffer: one steady-state allocation
	// for the life of the store instead of one per append. Safe because
	// the frame is fully written (or abandoned) before mu is released.
	s.enc = wire.AppendWALRecord(s.enc[:0], rec)
	frame := s.enc
	if s.crash != nil && s.crash("wal-append") {
		if c.f == nil {
			s.openSegmentLocked(c) // best effort, so the tear lands somewhere
		}
		return s.die(c.f, frame, "wal-append")
	}
	if err := s.writeFrameLocked(c, frame); err != nil {
		return err
	}
	if c.size >= s.segBytes {
		s.sealLocked(c)
	}
	s.appends.Inc()
	s.walBytes.Add(int64(len(frame)))
	s.walLat.Observe(time.Since(start))
	return nil
}

// SealBoundary notes a sub-window boundary: active segments that have
// carried frames for segBoundaryCadence boundaries are sealed, so
// rotation happens on a time cadence even when the size cap is far away.
func (s *Store) SealBoundary() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return
	}
	s.boundary++
	for _, c := range s.chains {
		if c.f != nil && c.frames > 0 && s.boundary-c.opened >= segBoundaryCadence {
			s.sealLocked(c)
		}
	}
}

// AppendBatch logs one ingested AFR batch to a shard's chain. retrans
// marks batches that arrived via the NACK/retransmit path, so replayed
// delivery accounting matches the original run's.
func (s *Store) AppendBatch(shard int, sw uint64, retrans bool, afrs []packet.AFR) error {
	if shard < 0 || shard >= s.shards {
		return fmt.Errorf("durable: shard %d out of range [0,%d)", shard, s.shards)
	}
	return s.append(shard, &wire.WALRecord{
		Type: wire.WALAFRBatch, LSN: s.lsn.Add(1), SubWindow: sw, Retrans: retrans, AFRs: afrs,
	})
}

// AppendTrigger logs a sub-window's trigger announcement.
func (s *Store) AppendTrigger(sw uint64, keyCount uint32) error {
	return s.append(s.shards, &wire.WALRecord{
		Type: wire.WALTrigger, LSN: s.lsn.Add(1), SubWindow: sw, KeyCount: keyCount,
	})
}

// AppendFinish logs a FinishSubWindow call, so replay re-runs the window
// assembly (and its evictions) at exactly the same point in the ingest
// order.
func (s *Store) AppendFinish(sw uint64) error {
	return s.append(s.shards, &wire.WALRecord{
		Type: wire.WALFinish, LSN: s.lsn.Add(1), SubWindow: sw,
	})
}

// AppendShed logs records dropped by admission control, so restored
// ShedAFRs/Degraded accounting matches the pre-crash state.
func (s *Store) AppendShed(sw uint64, n uint32) error {
	return s.append(s.shards, &wire.WALRecord{
		Type: wire.WALShed, LSN: s.lsn.Add(1), SubWindow: sw, Count: n,
	})
}

// writeFileRetry writes a whole file with transient-fault retries. Each
// attempt rewrites from scratch, so a torn attempt can't survive into the
// final content.
func (s *Store) writeFileRetry(path string, data []byte) error {
	var lastErr error
	backoff := s.retryBackoff
	for attempt := 0; attempt <= s.retryLimit; attempt++ {
		if attempt > 0 {
			s.ioWait.Add(int64(backoff))
			backoff = s.nextBackoff(backoff)
		}
		err := s.fsys.WriteFile(path, data, 0o644)
		if err == nil {
			return nil
		}
		lastErr = err
		if isFull(err) {
			break
		}
	}
	return lastErr
}

func (s *Store) renameRetry(oldpath, newpath string) error {
	var lastErr error
	backoff := s.retryBackoff
	for attempt := 0; attempt <= s.retryLimit; attempt++ {
		if attempt > 0 {
			s.ioWait.Add(int64(backoff))
			backoff = s.nextBackoff(backoff)
		}
		err := s.fsys.Rename(oldpath, newpath)
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

func (s *Store) readFileRetry(path string) ([]byte, error) {
	var lastErr error
	backoff := s.retryBackoff
	for attempt := 0; attempt <= s.retryLimit; attempt++ {
		if attempt > 0 {
			s.ioWait.Add(int64(backoff))
			backoff = s.nextBackoff(backoff)
		}
		buf, err := s.fsys.ReadFile(path)
		if err == nil {
			return buf, nil
		}
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// Checkpoint atomically replaces the checkpoint file with snap and
// deletes the segments it supersedes. snap.ThroughLSN is stamped with the
// current LSN high-water mark: every frame logged so far is folded into
// the snapshot by construction (the caller exports controller state after
// logging everything it ingested).
func (s *Store) Checkpoint(snap *wire.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked(snap)
}

func (s *Store) checkpointLocked(snap *wire.Snapshot) error {
	start := time.Now()
	if s.dead {
		return s.deadErr
	}
	if s.writerTerm != s.curTerm {
		s.fenced.Add(1)
		return ErrFenced
	}
	snap.ThroughLSN = s.lsn.Load()
	snap.Term = s.writerTerm
	s.enc = wire.EncodeSnapshot(s.enc[:0], snap)
	buf := s.enc

	tmp := filepath.Join(s.dir, checkpointTemp)
	if s.crash != nil && s.crash("checkpoint-temp") {
		f, _ := s.fsys.Create(tmp)
		return s.die(f, buf, "checkpoint-temp")
	}
	if err := s.writeFileRetry(tmp, buf); err != nil {
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	if s.crash != nil && s.crash("checkpoint-rename") {
		return s.die(nil, nil, "checkpoint-rename")
	}
	if err := s.renameRetry(tmp, filepath.Join(s.dir, checkpointName)); err != nil {
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	if s.crash != nil && s.crash("wal-truncate") {
		return s.die(nil, nil, "wal-truncate")
	}
	// The snapshot covers every logged frame; drop the segments. A crash
	// (or a remove failure) before this completes leaves stale segments
	// behind, which replay recognizes by LSN and skips — so deletion
	// failures are tolerable, not fatal.
	for _, c := range s.chains {
		s.sealLocked(c)
		kept := c.segs[:0]
		for _, path := range c.segs {
			if err := s.fsys.Remove(path); err != nil {
				kept = append(kept, path)
			}
		}
		c.segs = kept
	}
	s.checkpoints.Inc()
	s.ckptBytes.Add(int64(len(buf)))
	s.ckptLat.Observe(time.Since(start))
	return nil
}

// Heal re-enters durable mode after a degraded spell: every chain rotates
// to a fresh generation and a new checkpoint of snap is cut, so the
// post-heal log starts from a clean, fully covered state. On failure the
// store is unchanged (still usable, still best tried again later).
func (s *Store) Heal(snap *wire.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return s.deadErr
	}
	for _, c := range s.chains {
		s.sealLocked(c)
	}
	return s.checkpointLocked(snap)
}

// LoadCheckpoint reads and verifies the checkpoint file. It returns
// (nil, nil) when no checkpoint exists yet, and an error when the file is
// unreadable or fails its CRC/version check — the strict form, for
// callers that want to distinguish damage themselves. Recovery instead
// uses the quarantining loader, which sets a damaged checkpoint aside and
// proceeds from the WAL alone.
func (s *Store) LoadCheckpoint() (*wire.Snapshot, error) {
	buf, err := s.fsys.ReadFile(filepath.Join(s.dir, checkpointName))
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	snap, err := wire.DecodeSnapshot(buf)
	if err != nil {
		return nil, fmt.Errorf("durable: checkpoint: %w", err)
	}
	return snap, nil
}

// quarantineLocked sets a damaged file aside. If it is a chain's active
// segment, the handle closes first. A failed rename leaves the file in
// place — it will be re-detected (and re-quarantined) by the next pass.
func (s *Store) quarantineLocked(c *chain, path string) {
	if c != nil && c.f != nil && path == c.path {
		c.f.Close()
		c.f = nil
		c.frames = 0
	}
	s.quarantines.Add(1)
	s.fsys.Rename(path, path+quarantineSuffix)
}

// loadCheckpointQuarantiningLocked is the recovery-time loader: a corrupt
// checkpoint is quarantined (recovery proceeds from the WAL, with the
// missing coverage surfacing as a leading LostLSNRange); an unreadable
// one is treated as absent but left in place, since its bytes may be
// intact.
func (s *Store) loadCheckpointQuarantiningLocked() *wire.Snapshot {
	path := filepath.Join(s.dir, checkpointName)
	buf, err := s.readFileRetry(path)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil
	}
	if err != nil {
		s.scrubErrs.Add(1)
		return nil
	}
	snap, derr := wire.DecodeSnapshot(buf)
	if derr != nil {
		s.quarantineLocked(nil, path)
		return nil
	}
	return snap
}

// replaySegmentLocked decodes every trustworthy frame of one segment.
// keep=false means the file was discarded (quarantined, or an empty
// creation artifact) and must leave the chain's live list. A torn tail —
// in any segment, since retry rotation seals tears mid-chain — ends the
// replay at the last good frame and is not damage; an undecodable header,
// a CRC-failed frame, or an unreadable file is.
func (s *Store) replaySegmentLocked(c *chain, path string) (recs []*wire.WALRecord, keep bool) {
	buf, err := s.readFileRetry(path)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, false
		}
		s.quarantineLocked(c, path)
		return nil, false
	}
	hdr, err := wire.DecodeSegmentHeader(buf)
	if err != nil {
		if errors.Is(err, wire.ErrTruncated) {
			// Crash during segment creation: the header never completed,
			// so the file cannot contain frames. Discard it.
			s.fsys.Remove(path)
			return nil, false
		}
		s.quarantineLocked(c, path)
		return nil, false
	}
	if hdr.Chain != c.id {
		s.quarantineLocked(c, path)
		return nil, false
	}
	if hdr.Term > s.segTermHigh {
		s.segTermHigh = hdr.Term
	}
	for off := wire.SegmentHeaderSize; off < len(buf); {
		rec, n, err := wire.DecodeWALRecord(buf[off:])
		if err != nil {
			if errors.Is(err, wire.ErrChecksum) {
				// Definite corruption. Nothing in this file can be
				// trusted (the rot may not be where the CRC caught it),
				// so its frames are dropped wholesale; the LSNs that
				// vanish with it surface as LostLSNRange gaps.
				s.quarantineLocked(c, path)
				return nil, false
			}
			break // torn tail: keep the prefix
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, true
}

// recoverLocked replays every live segment, quarantining damage, and
// rebuilds the store's view: LSN high-water mark, live segment lists, and
// the LostLSNRange gaps. Returns the checkpoint (nil if none survives)
// and the LSN-ordered frames it does not cover.
func (s *Store) recoverLocked() (*wire.Snapshot, []*wire.WALRecord) {
	snap := s.loadCheckpointQuarantiningLocked()
	var all []*wire.WALRecord
	for _, c := range s.chains {
		live := append([]string(nil), c.segs...)
		c.segs = c.segs[:0]
		for _, path := range live {
			recs, keep := s.replaySegmentLocked(c, path)
			if keep {
				c.segs = append(c.segs, path)
			}
			all = append(all, recs...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].LSN < all[j].LSN })

	through := uint64(0)
	if snap != nil {
		through = snap.ThroughLSN
	}
	max := through
	recs := all[:0]
	for _, r := range all {
		if r.LSN > max {
			max = r.LSN
		}
		if r.LSN > through {
			recs = append(recs, r)
		}
	}
	if max > s.lsn.Load() {
		s.lsn.Store(max)
	}

	// LSN holes in the surviving sequence are the quarantined frames; the
	// sub-window bounds come from the nearest recovered neighbors (or the
	// checkpoint's finish horizon for a leading gap).
	s.lost = s.lost[:0]
	expect := through + 1
	prevSW := uint64(0)
	if snap != nil && snap.HasFinished {
		prevSW = snap.LastFinished
	}
	for _, r := range recs {
		if r.LSN > expect {
			lo, hi := prevSW, r.SubWindow
			if hi < lo {
				lo, hi = hi, lo
			}
			s.lost = append(s.lost, LostLSNRange{From: expect, To: r.LSN - 1, SWLow: lo, SWHigh: hi})
		}
		expect = r.LSN + 1
		prevSW = r.SubWindow
	}
	return snap, recs
}

// Recover loads the latest checkpoint (nil when none survives) plus the
// WAL frames it does not cover, merged into one LSN-ordered replay
// sequence. Damaged files are quarantined rather than failing the
// recovery; the LSNs they took with them are reported by Lost.
func (s *Store) Recover() (*wire.Snapshot, []*wire.WALRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil, nil, s.deadErr
	}
	snap, recs := s.recoverLocked()
	return snap, recs, nil
}

// Scrub re-reads each chain's active segment and CRC-verifies its most
// recent scrubDepth frames, catching bit rot while the data is still
// redundant in memory (the caller cuts a fresh checkpoint on damage). A
// corrupt chain is quarantined and reported in the first return; chains
// that could not be read at all are counted as scrub errors and reported
// in the second without being quarantined, since their bytes may be
// intact.
func (s *Store) Scrub() (corrupt int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.scrubDepth == 0 {
		return 0, nil
	}
	// A fenced writer must not quarantine files the new term-holder is
	// writing: its view of the chains is stale.
	if s.writerTerm != s.curTerm {
		return 0, ErrFenced
	}
	for _, c := range s.chains {
		if c.f == nil || c.frames == 0 {
			continue
		}
		buf, rerr := s.readFileRetry(c.path)
		if rerr != nil {
			s.scrubErrs.Add(1)
			err = rerr
			continue
		}
		depth := c.frames
		if depth > len(c.ring) {
			depth = len(c.ring)
		}
		bad := false
		for i := c.frames - depth; i < c.frames && !bad; i++ {
			loc := c.ring[i%len(c.ring)]
			end := loc.off + int64(loc.n)
			if end > int64(len(buf)) {
				bad = true
				break
			}
			if n, verr := wire.VerifyWALFrame(buf[loc.off:end]); verr != nil || n != int(loc.n) {
				bad = true
			}
		}
		if bad {
			corrupt++
			kept := c.segs[:0]
			for _, p := range c.segs {
				if p != c.path {
					kept = append(kept, p)
				}
			}
			c.segs = kept
			s.quarantineLocked(c, c.path)
		}
	}
	// The checkpoint is scrubbed too: silent rot there is worse than in
	// any segment, because it is the base everything replays on.
	path := filepath.Join(s.dir, checkpointName)
	if buf, rerr := s.fsys.ReadFile(path); rerr == nil {
		if _, derr := wire.DecodeSnapshot(buf); derr != nil {
			corrupt++
			s.quarantineLocked(nil, path)
		}
	} else if !errors.Is(rerr, iofs.ErrNotExist) {
		s.scrubErrs.Add(1)
		err = rerr
	}
	return corrupt, err
}
