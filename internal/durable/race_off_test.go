//go:build !race

package durable

// raceEnabled mirrors the -race build tag so allocation-count tests can
// skip themselves under the race detector, whose instrumentation
// allocates.
const raceEnabled = false
