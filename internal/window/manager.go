package window

import "omniwindow/internal/packet"

// Manager runs the window mechanism at one switch: it consults the local
// Signal, applies the consistency Stamper, routes packets to memory
// regions and reports sub-window terminations so the C&R machinery can
// collect and reset the retired region.
type Manager struct {
	signal  Signal
	stamper Stamper
	regions Regions
	cur     uint64
}

// NewManager builds a manager. Preserve of the stamper is derived from the
// region count: with n regions, the active sub-window plus n-1 previous
// ones remain monitorable.
func NewManager(signal Signal, regions Regions) *Manager {
	return &Manager{
		signal:  signal,
		stamper: Stamper{Preserve: uint64(regions.N() - 1)},
		regions: regions,
	}
}

// Cur returns the switch's current sub-window.
func (m *Manager) Cur() uint64 { return m.cur }

// Regions returns the memory layout.
func (m *Manager) Regions() Regions { return m.regions }

// Result is the outcome of processing one packet through the window
// mechanism.
type Result struct {
	Decision
	// Region hosts the monitored sub-window (valid unless Spike).
	Region int
	// Offset is the flat-array offset of that region (the address MAT
	// output added to per-key slot indexes).
	Offset int
	// Terminated lists sub-windows that ended because the local
	// sub-window advanced while processing this packet (usually zero or
	// one; several after an idle gap under a timeout signal).
	Terminated []uint64
}

// OnPacket processes one packet at virtual time now.
func (m *Manager) OnPacket(p *packet.Packet, now int64) Result {
	target := m.cur
	if !p.OW.HasSubWindow {
		// Only the first hop consults the local signal; later hops are
		// driven purely by the embedded stamp (§5).
		target = m.signal.Target(m.cur, p, now)
	}
	d := m.stamper.Apply(m.cur, p, target)
	var terminated []uint64
	for sw := m.cur; sw < d.Cur; sw++ {
		terminated = append(terminated, sw)
	}
	m.cur = d.Cur
	r := Result{Decision: d, Terminated: terminated}
	if !d.Spike {
		r.Region = m.regions.Index(d.Monitor)
		r.Offset = m.regions.Offset(d.Monitor)
	}
	return r
}

// ForceTerminate ends the current sub-window unconditionally (used when a
// deployment shuts down and must flush the active sub-window). It returns
// the terminated sub-window's index.
func (m *Manager) ForceTerminate() uint64 {
	ended := m.cur
	m.cur++
	return ended
}

// FastForward jumps the manager to sub-window sw without terminating the
// skipped ones. A controller restarting from a checkpoint uses it so the
// sub-windows the pre-crash run already finished are not re-terminated
// (and their windows not re-emitted) when the first post-restart packet
// arrives. Moving backwards is a no-op: sub-windows only advance.
func (m *Manager) FastForward(sw uint64) {
	if sw > m.cur {
		m.cur = sw
	}
}

// Tick advances the window mechanism with a pure timing event (no packet):
// the periodic timeout signals OmniWindow generates so windows terminate
// even when the link goes quiet. It returns the terminated sub-windows.
func (m *Manager) Tick(now int64) []uint64 {
	tick := &packet.Packet{Time: now}
	target := m.signal.Target(m.cur, tick, now)
	if target <= m.cur {
		return nil
	}
	var terminated []uint64
	for sw := m.cur; sw < target; sw++ {
		terminated = append(terminated, sw)
	}
	m.cur = target
	return terminated
}
