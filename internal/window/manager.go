package window

import (
	"fmt"

	"omniwindow/internal/packet"
)

// Manager runs the window mechanism at one switch: it consults the local
// Signal, applies the consistency Stamper, routes packets to memory
// regions and reports sub-window terminations so the C&R machinery can
// collect and reset the retired region.
type Manager struct {
	signal  Signal
	stamper Stamper
	regions Regions
	cur     uint64
	// unsynced marks a freshly booted manager whose sub-window counter
	// restarted at 0: its first advance (signal- or stamp-driven) adopts
	// the target without terminating the skipped range, which belongs to
	// sub-windows this incarnation never observed. Terminating them would
	// re-announce sub-windows the controller already finished and
	// double-emit their windows.
	unsynced bool
}

// NewManager builds a manager. Preserve of the stamper is derived from the
// region count: with n regions, the active sub-window plus n-1 previous
// ones remain monitorable.
func NewManager(signal Signal, regions Regions) *Manager {
	m, err := NewManagerPreserve(signal, regions, regions.N()-1)
	if err != nil {
		panic(err) // unreachable: the derived Preserve is always in bounds
	}
	return m
}

// NewManagerPreserve builds a manager with an explicit Preserve depth. A
// terminated sub-window stays monitorable only while its memory region is
// not yet recycled, so Preserve is bounded by the region count minus the
// active region: with n regions at most n-1 previous sub-windows can be
// preserved. Larger values would promise out-of-order tolerance the data
// plane cannot honor (the "preserved" region already holds newer state),
// so they are rejected.
func NewManagerPreserve(signal Signal, regions Regions, preserve int) (*Manager, error) {
	if preserve < 0 {
		return nil, fmt.Errorf("window: Preserve must be non-negative, got %d", preserve)
	}
	if preserve >= regions.N() {
		return nil, fmt.Errorf("window: Preserve %d must be below the region count %d — with %d regions only the active sub-window plus %d previous ones have live state to monitor into",
			preserve, regions.N(), regions.N(), regions.N()-1)
	}
	return &Manager{
		signal:  signal,
		stamper: Stamper{Preserve: uint64(preserve)},
		regions: regions,
	}, nil
}

// Cur returns the switch's current sub-window.
func (m *Manager) Cur() uint64 { return m.cur }

// Epoch returns the switch's current synchronization epoch (0 when epochs
// are unused or the switch is unsynced after a reboot).
func (m *Manager) Epoch() uint64 { return m.stamper.Epoch }

// SetEpoch sets the switch's synchronization epoch: stamps it writes from
// now on carry it, stamps from older epochs are rejected, stamps from
// newer ones resync it. Fabric controllers call this from epoch beacons;
// a reboot calls it with 0 to model the wiped counter.
func (m *Manager) SetEpoch(e uint64) { m.stamper.Epoch = e }

// Regions returns the memory layout.
func (m *Manager) Regions() Regions { return m.regions }

// Result is the outcome of processing one packet through the window
// mechanism.
type Result struct {
	Decision
	// Region hosts the monitored sub-window (valid unless Spike or
	// StaleEpoch).
	Region int
	// Offset is the flat-array offset of that region (the address MAT
	// output added to per-key slot indexes).
	Offset int
	// Terminated lists sub-windows that ended because the local
	// sub-window advanced while processing this packet (usually zero or
	// one; several after an idle gap under a timeout signal).
	Terminated []uint64
}

// OnPacket processes one packet at virtual time now.
func (m *Manager) OnPacket(p *packet.Packet, now int64) Result {
	target := m.cur
	if !p.OW.HasSubWindow {
		// Only the first hop consults the local signal; later hops are
		// driven purely by the embedded stamp (§5).
		target = m.signal.Target(m.cur, p, now)
	}
	d := m.stamper.Apply(m.cur, p, target)
	if d.StaleEpoch {
		// The stamp is garbage from a rebooted, unsynced switch: no
		// monitoring, no window movement, no termination.
		return Result{Decision: d}
	}
	var terminated []uint64
	if d.Cur > m.cur {
		// On resync — epoch adoption from a newer stamp, or the first
		// advance of a freshly booted manager — the jump is NOT a
		// termination: the skipped range belongs to the pre-reboot
		// incarnation (or to other switches).
		if !d.Resynced && !m.unsynced {
			for sw := m.cur; sw < d.Cur; sw++ {
				terminated = append(terminated, sw)
			}
		}
		m.unsynced = false
	}
	m.cur = d.Cur
	m.stamper.Epoch = d.Epoch
	r := Result{Decision: d, Terminated: terminated}
	if !d.Spike {
		r.Region = m.regions.Index(d.Monitor)
		r.Offset = m.regions.Offset(d.Monitor)
	}
	return r
}

// ForceTerminate ends the current sub-window unconditionally (used when a
// deployment shuts down and must flush the active sub-window). It returns
// the terminated sub-window's index.
func (m *Manager) ForceTerminate() uint64 {
	ended := m.cur
	m.cur++
	return ended
}

// FastForward jumps the manager to sub-window sw without terminating the
// skipped ones. A controller restarting from a checkpoint uses it so the
// sub-windows the pre-crash run already finished are not re-terminated
// (and their windows not re-emitted) when the first post-restart packet
// arrives; an epoch beacon uses it to resync a rebooted switch that
// carries no traffic. Moving backwards is a no-op: sub-windows only
// advance.
func (m *Manager) FastForward(sw uint64) {
	if sw > m.cur {
		m.cur = sw
	}
}

// Resync applies a controller-announced epoch/sub-window beacon: the
// switch adopts the fabric epoch and jumps forward to the announced
// sub-window (without terminating the skipped ones — their state belongs
// to the pre-reboot incarnation or to other switches). A beacon from an
// older epoch than the switch already has is ignored.
func (m *Manager) Resync(epoch, sw uint64) {
	if epoch < m.stamper.Epoch {
		return
	}
	m.stamper.Epoch = epoch
	m.FastForward(sw)
	m.unsynced = false
}

// BootUnsynced marks the manager as freshly booted: its counter restarted
// at 0 and the first advance — from the local signal, a stamp, or a beacon
// — adopts the target sub-window without terminating the skipped range.
// Deployment.Reboot calls this so a power-cycled switch rejoining
// mid-stream cannot re-announce long-finished sub-windows.
func (m *Manager) BootUnsynced() { m.unsynced = true }

// Tick advances the window mechanism with a pure timing event (no packet):
// the periodic timeout signals OmniWindow generates so windows terminate
// even when the link goes quiet. It returns the terminated sub-windows.
func (m *Manager) Tick(now int64) []uint64 {
	tick := &packet.Packet{Time: now}
	target := m.signal.Target(m.cur, tick, now)
	if target <= m.cur {
		return nil
	}
	if m.unsynced {
		// Freshly booted: adopt the clock's sub-window without announcing
		// terminations for a range this incarnation never observed.
		m.cur = target
		m.unsynced = false
		return nil
	}
	var terminated []uint64
	for sw := m.cur; sw < target; sw++ {
		terminated = append(terminated, sw)
	}
	m.cur = target
	return terminated
}
