package window

import "fmt"

// Regions maps sub-windows onto a fixed set of shared memory regions
// (§6). Only one sub-window is active at a time, so with fast C&R two
// regions suffice: while region (sw mod 2) absorbs traffic, the other is
// collected and reset. The regions are concatenated into one flat array
// so a single SALU addresses all of them: entry address = offset(sw) +
// slot, with the offset supplied by a small match-action table.
type Regions struct {
	n     int
	slots int
}

// NewRegions builds a layout of n regions with `slots` entries per region
// per register.
func NewRegions(n, slots int) Regions {
	if n < 2 {
		panic("window: at least two regions are required to overlap measurement with C&R")
	}
	if slots <= 0 {
		panic("window: region slots must be positive")
	}
	return Regions{n: n, slots: slots}
}

// N returns the number of regions.
func (r Regions) N() int { return r.n }

// Slots returns the entries per region.
func (r Regions) Slots() int { return r.slots }

// Index returns the region that hosts sub-window sw.
func (r Regions) Index(sw uint64) int { return int(sw % uint64(r.n)) }

// Offset returns the flat-array starting position of sub-window sw's
// region — the value the address MAT adds to the per-key slot index.
func (r Regions) Offset(sw uint64) int { return r.Index(sw) * r.slots }

// FlatEntries returns the total entries of the concatenated array
// (what one register must hold under the single-SALU layout).
func (r Regions) FlatEntries() int { return r.n * r.slots }

// Addr computes the physical address of (sub-window, slot), erroring on a
// slot outside the region — the bug class the address MAT prevents.
func (r Regions) Addr(sw uint64, slot int) (int, error) {
	if slot < 0 || slot >= r.slots {
		return 0, fmt.Errorf("window: slot %d outside region of %d entries", slot, r.slots)
	}
	return r.Offset(sw) + slot, nil
}

// Plan describes how the controller merges sub-windows into complete
// windows: Size consecutive sub-windows per window, advancing by Slide
// sub-windows between emitted windows. Tumbling windows have Slide ==
// Size; sliding windows have Slide < Size; Slide > Size subsamples
// (G1 and G2 of §2).
type Plan struct {
	Size  int
	Slide int
}

// Tumbling returns a plan with no overlap.
func Tumbling(size int) Plan { return Plan{Size: size, Slide: size} }

// SlidingPlan returns an overlapped plan.
func SlidingPlan(size, slide int) Plan { return Plan{Size: size, Slide: slide} }

// Validate reports configuration errors.
func (p Plan) Validate() error {
	if p.Size <= 0 {
		return fmt.Errorf("window: plan size %d must be positive", p.Size)
	}
	if p.Slide <= 0 {
		return fmt.Errorf("window: plan slide %d must be positive", p.Slide)
	}
	return nil
}

// Ends reports whether a complete window ends with sub-window sw, and if
// so the window's first sub-window. The first window is [0, Size), then
// each later window starts Slide further.
func (p Plan) Ends(sw uint64) (start uint64, ok bool) {
	if sw+1 < uint64(p.Size) {
		return 0, false
	}
	if (sw+1-uint64(p.Size))%uint64(p.Slide) != 0 {
		return 0, false
	}
	return sw + 1 - uint64(p.Size), true
}

// Retire returns the highest sub-window index that can be discarded once
// the window ending at sw has been processed: sub-windows older than the
// next window's start will never be needed again.
func (p Plan) Retire(sw uint64) (uint64, bool) {
	start, ok := p.Ends(sw)
	if !ok {
		return 0, false
	}
	nextStart := start + uint64(p.Slide)
	if nextStart == 0 {
		return 0, false
	}
	return nextStart - 1, true
}
