// Package window implements OmniWindow's core contribution: splitting
// telemetry windows into fine-grained sub-windows that the data plane
// monitors and the controller merges back into tumbling, sliding, session
// or user-defined windows of arbitrary size.
//
// The package provides:
//
//   - termination signals (§5): timeout, counter, session, user-defined;
//   - the Lamport-style consistency model (§5): first-hop stamping,
//     embedded sub-window adoption, out-of-order preservation, latency
//     spikes;
//   - the two-region shared state layout with the flat-array single-SALU
//     optimization (§6);
//   - the merge plan describing which sub-windows form complete windows
//     (G1: arbitrary size, G2: arbitrary slide).
package window

import "omniwindow/internal/packet"

// Signal decides which sub-window a packet belongs to at the local switch.
// Implementations are stateful and must only be consulted by the
// first-hop/local path — downstream switches adopt the embedded stamp via
// the Stamper instead.
type Signal interface {
	// Target returns the sub-window index for a packet arriving at
	// virtual time now while the switch is in sub-window cur. The result
	// must be >= cur (sub-windows only move forward).
	Target(cur uint64, p *packet.Packet, now int64) uint64
}

// TimeoutSignal yields fixed-length time-based sub-windows: sub-window i
// covers [i*Interval, (i+1)*Interval).
type TimeoutSignal struct {
	// Interval is the sub-window length in virtual nanoseconds.
	Interval int64
}

// Target implements Signal.
func (s TimeoutSignal) Target(cur uint64, _ *packet.Packet, now int64) uint64 {
	if s.Interval <= 0 {
		return cur
	}
	t := uint64(now / s.Interval)
	if t < cur {
		return cur
	}
	return t
}

// CounterSignal terminates a sub-window when a condition has matched
// Threshold packets ("e.g., a counter for TCP packets" — §5). The counter
// occupies one data-plane register.
type CounterSignal struct {
	// Cond selects the packets that advance the counter; nil counts all.
	Cond func(*packet.Packet) bool
	// Threshold is the count at which the sub-window terminates.
	Threshold uint64

	count uint64
}

// Target implements Signal.
func (s *CounterSignal) Target(cur uint64, p *packet.Packet, _ int64) uint64 {
	if s.Cond == nil || s.Cond(p) {
		s.count++
	}
	if s.Threshold > 0 && s.count >= s.Threshold {
		s.count = 0
		return cur + 1
	}
	return cur
}

// SessionSignal terminates a sub-window after IdleGap with no traffic, so
// windows track activity sessions of varying length (§5).
type SessionSignal struct {
	// IdleGap is the silence that ends a session, in virtual ns.
	IdleGap int64

	last    int64
	started bool
}

// Target implements Signal.
func (s *SessionSignal) Target(cur uint64, _ *packet.Packet, now int64) uint64 {
	defer func() { s.last, s.started = now, true }()
	if s.started && s.IdleGap > 0 && now-s.last > s.IdleGap {
		return cur + 1
	}
	return cur
}

// UserSignal follows application-embedded window boundaries: packets carry
// a monotonically increasing number (e.g. the DML training iteration of
// Exp#3) and the sub-window simply adopts it.
type UserSignal struct{}

// Target implements Signal.
func (UserSignal) Target(cur uint64, p *packet.Packet, _ int64) uint64 {
	if p.OW.HasUserSignal && p.OW.UserSignal > cur {
		return p.OW.UserSignal
	}
	return cur
}
