package window

import (
	"testing"

	"omniwindow/internal/packet"
)

// TestStamperPreserveBoundary pins the exact spike cutoff: with the switch
// at newCur, an embedded sub-window emb is monitorable iff
// emb+Preserve >= newCur. The boundary case (equality) must be monitored;
// one sub-window older must spike.
func TestStamperPreserveBoundary(t *testing.T) {
	for preserve := uint64(1); preserve <= 3; preserve++ {
		st := Stamper{Preserve: preserve}
		cur := uint64(10)

		// emb + Preserve == cur: the oldest still-preserved sub-window.
		edge := cur - preserve
		p := &packet.Packet{OW: packet.OWHeader{SubWindow: edge, HasSubWindow: true}}
		d := st.Apply(cur, p, 0)
		if d.Spike || d.Monitor != edge {
			t.Fatalf("preserve=%d: boundary sub-window %d spiked: %+v", preserve, edge, d)
		}

		// emb + Preserve < cur: one older, region already recycled.
		p = &packet.Packet{OW: packet.OWHeader{SubWindow: edge - 1, HasSubWindow: true}}
		d = st.Apply(cur, p, 0)
		if !d.Spike {
			t.Fatalf("preserve=%d: sub-window %d beyond preserve range not spiked", preserve, edge-1)
		}
		if d.Cur != cur {
			t.Fatalf("preserve=%d: spike moved cur to %d", preserve, d.Cur)
		}
	}

	// The boundary is evaluated against the ADVANCED cur: a stamp that
	// itself moves the window forward re-ages older embedded sub-windows.
	st := Stamper{Preserve: 1}
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 7, HasSubWindow: true}}
	if d := st.Apply(5, p, 0); d.Spike || d.Cur != 7 || d.Monitor != 7 {
		t.Fatalf("window-moving stamp mishandled: %+v", d)
	}
}

// TestStamperFirstHopWritesEpoch: the stamping switch embeds its epoch
// alongside the sub-window.
func TestStamperFirstHopWritesEpoch(t *testing.T) {
	st := Stamper{Preserve: 1, Epoch: 4}
	p := &packet.Packet{}
	d := st.Apply(2, p, 3)
	if !d.Stamped || p.OW.Epoch != 4 || d.Epoch != 4 {
		t.Fatalf("epoch not stamped: %+v header %+v", d, p.OW)
	}
}

// TestStamperStaleEpochRejected: a stamp from an older epoch (written by a
// rebooted, unsynced switch) must not be monitored, must not move the
// window and must not change the local epoch.
func TestStamperStaleEpochRejected(t *testing.T) {
	st := Stamper{Preserve: 1, Epoch: 2}
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 99, HasSubWindow: true, Epoch: 1}}
	d := st.Apply(5, p, 0)
	if !d.StaleEpoch {
		t.Fatal("older-epoch stamp accepted")
	}
	if d.Cur != 5 || d.Epoch != 2 {
		t.Fatalf("stale stamp mutated local state: %+v", d)
	}
	if d.Spike || d.Stamped {
		t.Fatalf("stale stamp classified as spike/first-hop: %+v", d)
	}
}

// TestStamperNewerEpochResyncs: a stamp from a newer epoch snaps the
// receiving switch (the rebooted one) back into the fabric — it adopts the
// epoch and the embedded sub-window.
func TestStamperNewerEpochResyncs(t *testing.T) {
	st := Stamper{Preserve: 1, Epoch: 0} // freshly rebooted: epoch wiped
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 42, HasSubWindow: true, Epoch: 3}}
	d := st.Apply(1, p, 0)
	if !d.Resynced || d.Epoch != 3 || d.Cur != 42 || d.Monitor != 42 {
		t.Fatalf("newer-epoch stamp did not resync: %+v", d)
	}

	// Epoch 0 on both sides degenerates to the epoch-less behaviour.
	st0 := Stamper{Preserve: 1}
	p0 := &packet.Packet{OW: packet.OWHeader{SubWindow: 2, HasSubWindow: true}}
	if d := st0.Apply(2, p0, 0); d.StaleEpoch || d.Resynced {
		t.Fatalf("epoch-less traffic affected by epoch logic: %+v", d)
	}
}

// TestManagerFastForwardEdges: zero, backwards and exactly-current targets
// are no-ops; only strictly-forward targets move the counter.
func TestManagerFastForwardEdges(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 8))
	m.FastForward(0)
	if m.Cur() != 0 {
		t.Fatalf("FastForward(0) from 0 moved to %d", m.Cur())
	}
	m.FastForward(5)
	if m.Cur() != 5 {
		t.Fatalf("FastForward(5) -> %d", m.Cur())
	}
	m.FastForward(3) // backwards
	if m.Cur() != 5 {
		t.Fatalf("backwards FastForward moved cur to %d", m.Cur())
	}
	m.FastForward(5) // exactly current
	if m.Cur() != 5 {
		t.Fatalf("FastForward to current moved cur to %d", m.Cur())
	}
	// The jump must not have queued terminations: the next in-window
	// packet terminates nothing.
	r := m.OnPacket(&packet.Packet{Time: 550}, 550)
	if len(r.Terminated) != 0 {
		t.Fatalf("FastForward produced terminations: %v", r.Terminated)
	}
}

// TestManagerResyncEpochs: Resync adopts newer epochs and jumps forward,
// ignores older-epoch beacons, and never moves the counter backwards.
func TestManagerResyncEpochs(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 8))
	m.Resync(2, 7)
	if m.Epoch() != 2 || m.Cur() != 7 {
		t.Fatalf("resync not applied: epoch=%d cur=%d", m.Epoch(), m.Cur())
	}
	m.Resync(1, 99) // stale beacon: ignored entirely
	if m.Epoch() != 2 || m.Cur() != 7 {
		t.Fatalf("older-epoch beacon applied: epoch=%d cur=%d", m.Epoch(), m.Cur())
	}
	m.Resync(2, 3) // same epoch, backwards sub-window: epoch kept, no rewind
	if m.Epoch() != 2 || m.Cur() != 7 {
		t.Fatalf("beacon rewound the counter: epoch=%d cur=%d", m.Epoch(), m.Cur())
	}
}

// TestManagerBootUnsyncedAdoptsWithoutTerminating: a freshly booted
// manager's first advance — signal-, stamp- or tick-driven — must adopt
// the target sub-window without announcing terminations for the skipped
// range (those sub-windows belong to the pre-reboot incarnation; naming
// them would re-announce finished sub-windows and double-emit windows).
func TestManagerBootUnsyncedAdoptsWithoutTerminating(t *testing.T) {
	sig := TimeoutSignal{Interval: 100}
	regions := NewRegions(2, 8)

	// Signal-driven adoption.
	m := NewManager(sig, regions)
	m.BootUnsynced()
	r := m.OnPacket(&packet.Packet{Time: 750}, 750)
	if m.Cur() != 7 || len(r.Terminated) != 0 {
		t.Fatalf("signal adoption: cur=%d terminated=%v", m.Cur(), r.Terminated)
	}
	// The NEXT advance terminates normally again.
	r = m.OnPacket(&packet.Packet{Time: 850}, 850)
	if len(r.Terminated) != 1 || r.Terminated[0] != 7 {
		t.Fatalf("post-adoption advance: terminated=%v", r.Terminated)
	}

	// Stamp-driven adoption (resync from a newer epoch).
	m = NewManager(sig, regions)
	m.BootUnsynced()
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 9, HasSubWindow: true, Epoch: 1}}
	r = m.OnPacket(p, 950)
	if m.Cur() != 9 || m.Epoch() != 1 || len(r.Terminated) != 0 {
		t.Fatalf("stamp adoption: cur=%d epoch=%d terminated=%v", m.Cur(), m.Epoch(), r.Terminated)
	}

	// Tick-driven adoption.
	m = NewManager(sig, regions)
	m.BootUnsynced()
	if term := m.Tick(640); len(term) != 0 || m.Cur() != 6 {
		t.Fatalf("tick adoption: cur=%d terminated=%v", m.Cur(), term)
	}
	if term := m.Tick(700); len(term) != 1 || term[0] != 6 {
		t.Fatalf("post-adoption tick: terminated=%v", term)
	}
}

// TestManagerStaleEpochNoStateChange: a stale-epoch stamp reaching the
// manager terminates nothing and leaves cur in place.
func TestManagerStaleEpochNoStateChange(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 8))
	m.SetEpoch(2)
	m.FastForward(4)
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 77, HasSubWindow: true, Epoch: 1}}
	r := m.OnPacket(p, 450)
	if !r.StaleEpoch || m.Cur() != 4 || m.Epoch() != 2 || len(r.Terminated) != 0 {
		t.Fatalf("stale stamp changed manager state: %+v cur=%d epoch=%d", r, m.Cur(), m.Epoch())
	}
}

// TestNewManagerPreserveValidation: Preserve must leave the active region
// out of the preserved set.
func TestNewManagerPreserveValidation(t *testing.T) {
	regions := NewRegions(2, 8)
	if _, err := NewManagerPreserve(TimeoutSignal{Interval: 1}, regions, -1); err == nil {
		t.Fatal("negative preserve accepted")
	}
	if _, err := NewManagerPreserve(TimeoutSignal{Interval: 1}, regions, 2); err == nil {
		t.Fatal("preserve == regions accepted")
	}
	m, err := NewManagerPreserve(TimeoutSignal{Interval: 1}, regions, 0)
	if err != nil || m == nil {
		t.Fatalf("preserve=0 rejected: %v", err)
	}
}
