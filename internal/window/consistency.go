package window

import "omniwindow/internal/packet"

// Stamper implements the lightweight consistency model of §5, following
// Lamport timestamps: the first-hop switch determines a packet's
// sub-window once, embeds it, and every later switch monitors the packet
// into the embedded sub-window — updating its own sub-window if the stamp
// is newer. This guarantees (i) a packet is monitored in the same
// sub-window network-wide even under delays, and (ii) window-moving
// signals propagate with the traffic itself, with no extra messages.
type Stamper struct {
	// Preserve is how many terminated sub-windows stay monitorable so
	// out-of-order packets can still land in their stamped sub-window.
	// It is bounded by the number of memory regions minus the active one.
	Preserve uint64
}

// Decision is the outcome of applying the consistency model to a packet.
type Decision struct {
	// Monitor is the sub-window to record the packet into. Ignore it
	// when Spike is true.
	Monitor uint64
	// Cur is the switch's (possibly advanced) local sub-window.
	Cur uint64
	// Stamped reports whether this switch acted as the first hop and
	// wrote the packet's stamp.
	Stamped bool
	// Spike reports a latency spike: the embedded sub-window is older
	// than every preserved one, so a copy must go to the controller for
	// software handling instead of being monitored in the data plane.
	Spike bool
}

// Apply processes one packet at a switch whose local sub-window is cur.
// target is the local Signal's verdict for this packet (consulted only
// when the packet carries no stamp).
func (s Stamper) Apply(cur uint64, p *packet.Packet, target uint64) Decision {
	if !p.OW.HasSubWindow {
		// First hop: decide once, stamp, and propagate.
		if target < cur {
			target = cur
		}
		p.OW.SubWindow = target
		p.OW.HasSubWindow = true
		return Decision{Monitor: target, Cur: target, Stamped: true}
	}
	emb := p.OW.SubWindow
	newCur := cur
	if emb > newCur {
		// Window-moving signal carried by the packet (Figure 4, packet D).
		newCur = emb
	}
	// The embedded sub-window must still be preserved at this switch.
	if emb+s.Preserve < newCur {
		return Decision{Cur: newCur, Spike: true}
	}
	return Decision{Monitor: emb, Cur: newCur}
}
