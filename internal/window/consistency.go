package window

import "omniwindow/internal/packet"

// Stamper implements the lightweight consistency model of §5, following
// Lamport timestamps: the first-hop switch determines a packet's
// sub-window once, embeds it, and every later switch monitors the packet
// into the embedded sub-window — updating its own sub-window if the stamp
// is newer. This guarantees (i) a packet is monitored in the same
// sub-window network-wide even under delays, and (ii) window-moving
// signals propagate with the traffic itself, with no extra messages.
//
// Epochs extend the model to switch failures: every stamp also carries the
// stamping switch's synchronization epoch. A switch that reboots loses its
// sub-window counter and restarts at epoch 0, so the stamps it writes
// before resyncing are identifiably stale — a synced switch rejects them
// (Decision.StaleEpoch) rather than letting a garbage sub-window move its
// window or poison a memory region. Conversely a stamp from a NEWER epoch
// resyncs the receiving switch: it adopts both the epoch and the embedded
// sub-window (how a rebooted switch catches up from through-traffic alone,
// without controller messages). Epoch 0 everywhere degenerates to the
// epoch-less single-switch behaviour.
type Stamper struct {
	// Preserve is how many terminated sub-windows stay monitorable so
	// out-of-order packets can still land in their stamped sub-window.
	// It is bounded by the number of memory regions minus the active one.
	Preserve uint64
	// Epoch is this switch's current synchronization epoch, written into
	// every first-hop stamp. 0 means unsynced (or epochs unused).
	Epoch uint64
}

// Decision is the outcome of applying the consistency model to a packet.
type Decision struct {
	// Monitor is the sub-window to record the packet into. Ignore it
	// when Spike or StaleEpoch is true.
	Monitor uint64
	// Cur is the switch's (possibly advanced) local sub-window.
	Cur uint64
	// Epoch is the switch's (possibly advanced) local epoch.
	Epoch uint64
	// Stamped reports whether this switch acted as the first hop and
	// wrote the packet's stamp.
	Stamped bool
	// Spike reports a latency spike: the embedded sub-window is older
	// than every preserved one, so a copy must go to the controller for
	// software handling instead of being monitored in the data plane.
	Spike bool
	// StaleEpoch reports that the embedded stamp was written under an
	// older epoch than this switch's — by a switch that had rebooted and
	// not yet resynced. The stamp (sub-window AND epoch) is untrustworthy:
	// the packet must not be monitored, must not move the window, and
	// unlike a Spike must not be merged in software either. Cur and Epoch
	// are unchanged.
	StaleEpoch bool
	// Resynced reports that the embedded stamp carried a newer epoch and
	// this switch adopted it (the reboot-recovery path: the first in-epoch
	// stamp a rebooted switch sees snaps it back into the fabric).
	Resynced bool
}

// Apply processes one packet at a switch whose local sub-window is cur.
// target is the local Signal's verdict for this packet (consulted only
// when the packet carries no stamp).
func (s Stamper) Apply(cur uint64, p *packet.Packet, target uint64) Decision {
	if !p.OW.HasSubWindow {
		// First hop: decide once, stamp, and propagate.
		if target < cur {
			target = cur
		}
		p.OW.SubWindow = target
		p.OW.HasSubWindow = true
		p.OW.Epoch = s.Epoch
		return Decision{Monitor: target, Cur: target, Epoch: s.Epoch, Stamped: true}
	}
	if p.OW.Epoch < s.Epoch {
		// Stamped by an out-of-sync switch (rebooted, counter wiped): the
		// embedded sub-window is garbage. Reject it without touching local
		// state — "no stale-epoch stamp is ever monitored".
		return Decision{Cur: cur, Epoch: s.Epoch, StaleEpoch: true}
	}
	epoch := s.Epoch
	resynced := false
	if p.OW.Epoch > s.Epoch {
		// This switch is the out-of-sync one: adopt the newer epoch and
		// resynchronize the sub-window counter from the stamp.
		epoch = p.OW.Epoch
		resynced = true
	}
	emb := p.OW.SubWindow
	newCur := cur
	if emb > newCur {
		// Window-moving signal carried by the packet (Figure 4, packet D).
		// This same forward-only rule is the resync path: a rebooted
		// switch's wiped counter restarted near 0, so the first in-epoch
		// stamp it sees snaps it forward to the fabric's sub-window.
		newCur = emb
	}
	// The embedded sub-window must still be preserved at this switch.
	if emb+s.Preserve < newCur {
		return Decision{Cur: newCur, Epoch: epoch, Spike: true, Resynced: resynced}
	}
	return Decision{Monitor: emb, Cur: newCur, Epoch: epoch, Resynced: resynced}
}
