package window

import (
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func TestTimeoutSignalTargets(t *testing.T) {
	s := TimeoutSignal{Interval: 100}
	if got := s.Target(0, nil, 50); got != 0 {
		t.Fatalf("t=50 -> %d", got)
	}
	if got := s.Target(0, nil, 100); got != 1 {
		t.Fatalf("t=100 -> %d", got)
	}
	if got := s.Target(0, nil, 555); got != 5 {
		t.Fatalf("t=555 -> %d", got)
	}
	// Never moves backwards even if time looks stale.
	if got := s.Target(7, nil, 100); got != 7 {
		t.Fatalf("stale time moved window back: %d", got)
	}
	// Degenerate interval is inert.
	if got := (TimeoutSignal{}).Target(3, nil, 1e9); got != 3 {
		t.Fatalf("zero interval advanced: %d", got)
	}
}

func TestCounterSignal(t *testing.T) {
	tcp := &packet.Packet{Key: packet.FlowKey{Proto: packet.ProtoTCP}}
	udp := &packet.Packet{Key: packet.FlowKey{Proto: packet.ProtoUDP}}
	s := &CounterSignal{
		Cond:      func(p *packet.Packet) bool { return p.Key.Proto == packet.ProtoTCP },
		Threshold: 3,
	}
	cur := uint64(0)
	for i := 0; i < 2; i++ {
		if got := s.Target(cur, tcp, 0); got != 0 {
			t.Fatalf("early trigger at %d", i)
		}
	}
	if got := s.Target(cur, udp, 0); got != 0 {
		t.Fatal("non-matching packet advanced counter window")
	}
	if got := s.Target(cur, tcp, 0); got != 1 {
		t.Fatal("threshold did not terminate sub-window")
	}
	// Counter resets after firing.
	if got := s.Target(1, tcp, 0); got != 1 {
		t.Fatal("counter did not reset")
	}
}

func TestCounterSignalNilCondCountsAll(t *testing.T) {
	s := &CounterSignal{Threshold: 2}
	p := &packet.Packet{}
	s.Target(0, p, 0)
	if got := s.Target(0, p, 0); got != 1 {
		t.Fatal("nil cond should count every packet")
	}
}

func TestSessionSignal(t *testing.T) {
	s := &SessionSignal{IdleGap: 100}
	p := &packet.Packet{}
	if got := s.Target(0, p, 0); got != 0 {
		t.Fatal("first packet started a session boundary")
	}
	if got := s.Target(0, p, 50); got != 0 {
		t.Fatal("active session terminated")
	}
	if got := s.Target(0, p, 200); got != 1 {
		t.Fatal("idle gap did not terminate session")
	}
	if got := s.Target(1, p, 250); got != 1 {
		t.Fatal("resumed session terminated again")
	}
}

func TestUserSignal(t *testing.T) {
	s := UserSignal{}
	plain := &packet.Packet{}
	if got := s.Target(2, plain, 0); got != 2 {
		t.Fatal("packet without signal advanced window")
	}
	iter5 := &packet.Packet{OW: packet.OWHeader{UserSignal: 5, HasUserSignal: true}}
	if got := s.Target(2, iter5, 0); got != 5 {
		t.Fatal("user signal not adopted")
	}
	iter1 := &packet.Packet{OW: packet.OWHeader{UserSignal: 1, HasUserSignal: true}}
	if got := s.Target(5, iter1, 0); got != 5 {
		t.Fatal("stale user signal moved window back")
	}
}

func TestStamperFirstHopStamps(t *testing.T) {
	st := Stamper{Preserve: 1}
	p := &packet.Packet{}
	d := st.Apply(3, p, 4)
	if !d.Stamped || d.Monitor != 4 || d.Cur != 4 || d.Spike {
		t.Fatalf("unexpected decision: %+v", d)
	}
	if !p.OW.HasSubWindow || p.OW.SubWindow != 4 {
		t.Fatal("stamp not written to packet")
	}
}

func TestStamperDownstreamAdoptsEmbedded(t *testing.T) {
	st := Stamper{Preserve: 1}
	// Figure 4, packet B: switch already in sub-window 2, packet stamped 1.
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 1, HasSubWindow: true}}
	d := st.Apply(2, p, 99)
	if d.Stamped {
		t.Fatal("downstream must not restamp")
	}
	if d.Monitor != 1 || d.Cur != 2 || d.Spike {
		t.Fatalf("unexpected decision: %+v", d)
	}
}

func TestStamperPacketMovesWindowForward(t *testing.T) {
	st := Stamper{Preserve: 1}
	// Figure 4, packet D: embedded sub-window 3 while switch is in 2.
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 3, HasSubWindow: true}}
	d := st.Apply(2, p, 0)
	if d.Cur != 3 || d.Monitor != 3 || d.Spike {
		t.Fatalf("window-moving signal not applied: %+v", d)
	}
}

func TestStamperLatencySpike(t *testing.T) {
	st := Stamper{Preserve: 1}
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 1, HasSubWindow: true}}
	d := st.Apply(5, p, 0)
	if !d.Spike {
		t.Fatal("ancient stamp should be a latency spike")
	}
	if d.Cur != 5 {
		t.Fatalf("cur corrupted: %d", d.Cur)
	}
	// Preserve=2 keeps two old sub-windows monitorable.
	st2 := Stamper{Preserve: 2}
	p2 := &packet.Packet{OW: packet.OWHeader{SubWindow: 3, HasSubWindow: true}}
	if d := st2.Apply(5, p2, 0); d.Spike {
		t.Fatal("sub-window within preserve range spiked")
	}
}

func TestStamperNeverMovesBackProperty(t *testing.T) {
	f := func(cur, emb uint64, preserve uint8) bool {
		st := Stamper{Preserve: uint64(preserve%4) + 1}
		p := &packet.Packet{OW: packet.OWHeader{SubWindow: emb, HasSubWindow: true}}
		d := st.Apply(cur, p, 0)
		return d.Cur >= cur && (d.Spike || d.Monitor == emb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionsMapping(t *testing.T) {
	r := NewRegions(2, 1000)
	if r.Index(0) != 0 || r.Index(1) != 1 || r.Index(2) != 0 {
		t.Fatal("region alternation broken")
	}
	if r.Offset(3) != 1000 || r.Offset(4) != 0 {
		t.Fatal("flat offsets wrong")
	}
	if r.FlatEntries() != 2000 {
		t.Fatal("flat size wrong")
	}
	addr, err := r.Addr(3, 999)
	if err != nil || addr != 1999 {
		t.Fatalf("Addr = %d, %v", addr, err)
	}
	if _, err := r.Addr(3, 1000); err == nil {
		t.Fatal("out-of-region slot accepted")
	}
	if _, err := r.Addr(3, -1); err == nil {
		t.Fatal("negative slot accepted")
	}
}

func TestRegionsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRegions(1, 10) },
		func() { NewRegions(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPlanTumbling(t *testing.T) {
	p := Tumbling(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEnds := map[uint64]uint64{4: 0, 9: 5, 14: 10}
	for sw := uint64(0); sw < 15; sw++ {
		start, ok := p.Ends(sw)
		wantStart, want := wantEnds[sw]
		if ok != want || (ok && start != wantStart) {
			t.Fatalf("Ends(%d) = %d,%v", sw, start, ok)
		}
	}
}

func TestPlanSliding(t *testing.T) {
	p := SlidingPlan(5, 1) // 500 ms window, 100 ms slide: the paper's setup
	for sw := uint64(4); sw < 20; sw++ {
		start, ok := p.Ends(sw)
		if !ok {
			t.Fatalf("sliding window must end at every sub-window >= 4 (sw=%d)", sw)
		}
		if start != sw-4 {
			t.Fatalf("Ends(%d) start = %d", sw, start)
		}
	}
	if _, ok := p.Ends(3); ok {
		t.Fatal("window ended before filling")
	}
}

func TestPlanRetire(t *testing.T) {
	tw := Tumbling(5)
	if r, ok := tw.Retire(4); !ok || r != 4 {
		t.Fatalf("tumbling retire(4) = %d,%v", r, ok)
	}
	sl := SlidingPlan(5, 1)
	if r, ok := sl.Retire(4); !ok || r != 0 {
		t.Fatalf("sliding retire(4) = %d,%v", r, ok)
	}
	if _, ok := sl.Retire(3); ok {
		t.Fatal("retire before first window end")
	}
}

func TestPlanValidate(t *testing.T) {
	if (Plan{Size: 0, Slide: 1}).Validate() == nil {
		t.Fatal("zero size accepted")
	}
	if (Plan{Size: 1, Slide: 0}).Validate() == nil {
		t.Fatal("zero slide accepted")
	}
}

func TestManagerFlow(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 64))
	p1 := &packet.Packet{Time: 10}
	r := m.OnPacket(p1, 10)
	if r.Monitor != 0 || r.Region != 0 || r.Offset != 0 || len(r.Terminated) != 0 {
		t.Fatalf("first packet: %+v", r)
	}
	// Crossing one boundary terminates sub-window 0 and lands in region 1.
	p2 := &packet.Packet{Time: 120}
	r = m.OnPacket(p2, 120)
	if r.Monitor != 1 || r.Region != 1 || r.Offset != 64 {
		t.Fatalf("second packet: %+v", r)
	}
	if len(r.Terminated) != 1 || r.Terminated[0] != 0 {
		t.Fatalf("termination missing: %+v", r.Terminated)
	}
	if m.Cur() != 1 {
		t.Fatalf("cur = %d", m.Cur())
	}
}

func TestManagerIdleGapTerminatesSeveral(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 64))
	m.OnPacket(&packet.Packet{}, 10)
	r := m.OnPacket(&packet.Packet{}, 450)
	if len(r.Terminated) != 4 {
		t.Fatalf("terminated = %v", r.Terminated)
	}
}

func TestManagerDownstreamDoesNotConsultSignal(t *testing.T) {
	// A downstream switch with a *different* local clock must still
	// monitor the packet in its embedded sub-window.
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 64))
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 2, HasSubWindow: true}}
	r := m.OnPacket(p, 999999) // local clock says sub-window 9999
	if r.Monitor != 2 {
		t.Fatalf("embedded stamp ignored: %+v", r)
	}
	if m.Cur() != 2 {
		t.Fatalf("cur = %d", m.Cur())
	}
}

func TestManagerSpikeHasNoRegion(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 64))
	m.OnPacket(&packet.Packet{}, 950) // cur -> 9
	p := &packet.Packet{OW: packet.OWHeader{SubWindow: 1, HasSubWindow: true}}
	r := m.OnPacket(p, 960)
	if !r.Spike {
		t.Fatal("expected spike")
	}
}

func TestManagerTick(t *testing.T) {
	m := NewManager(TimeoutSignal{Interval: 100}, NewRegions(2, 64))
	m.OnPacket(&packet.Packet{}, 10)
	ended := m.Tick(250)
	if len(ended) != 2 || ended[0] != 0 || ended[1] != 1 {
		t.Fatalf("tick terminated %v", ended)
	}
	if m.Cur() != 2 {
		t.Fatalf("cur = %d", m.Cur())
	}
	if got := m.Tick(260); got != nil {
		t.Fatalf("idle tick terminated %v", got)
	}
}

// TestPlanCoverageProperty: for random plans, each sub-window beyond the
// warm-up appears in exactly ceil(size/slide) emitted windows, and every
// window has exactly `size` sub-windows.
func TestPlanCoverageProperty(t *testing.T) {
	f := func(sizeRaw, slideRaw uint8) bool {
		size := int(sizeRaw%8) + 1
		slide := int(slideRaw%uint8(size)) + 1
		p := SlidingPlan(size, slide)
		const horizon = 200
		cover := make([]int, horizon)
		for sw := uint64(0); sw < horizon; sw++ {
			start, ok := p.Ends(sw)
			if !ok {
				continue
			}
			if sw-start+1 != uint64(size) {
				return false
			}
			for s := start; s <= sw; s++ {
				cover[s]++
			}
		}
		// Steady state: every sub-window is covered either floor or
		// ceil of size/slide times (exactly size/slide when slide
		// divides size). Skip the warm-up prefix and the tail whose
		// windows have not all ended inside the horizon.
		lo, hi := size/slide, (size+slide-1)/slide
		if lo == 0 {
			lo = 1
		}
		for s := size; s < horizon-size; s++ {
			if cover[s] < lo || cover[s] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRetireNeverCutsLiveSubWindows: whatever the plan, a retired
// sub-window is never needed by any later window.
func TestRetireNeverCutsLiveSubWindows(t *testing.T) {
	f := func(sizeRaw, slideRaw uint8) bool {
		size := int(sizeRaw%8) + 1
		slide := int(slideRaw%uint8(size)) + 1
		p := SlidingPlan(size, slide)
		for sw := uint64(0); sw < 100; sw++ {
			retire, ok := p.Retire(sw)
			if !ok {
				continue
			}
			// Every window ending strictly after sw must start after
			// the retired point.
			for later := sw + 1; later < sw+40; later++ {
				start, ends := p.Ends(later)
				if ends && start <= retire {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
