package slidingclassic

import (
	"math"
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstPort: 80, Proto: packet.ProtoTCP}
}

func TestAgingBloomRecentAlwaysFound(t *testing.T) {
	a := NewAgingBloom(1<<14, 3, 100, 1)
	for i := 0; i < 80; i++ {
		a.Insert(fk(i))
	}
	for i := 0; i < 80; i++ {
		if !a.Contains(fk(i)) {
			t.Fatalf("recent element %d missing", i)
		}
	}
}

func TestAgingBloomAgesOut(t *testing.T) {
	a := NewAgingBloom(1<<14, 3, 50, 2)
	a.Insert(fk(9999))
	// Two full generations of fresh elements must age it out.
	for i := 0; i < 120; i++ {
		a.Insert(fk(i))
	}
	if a.Contains(fk(9999)) {
		t.Fatal("ancient element still present after two generations")
	}
	// The newest generation is still there.
	if !a.Contains(fk(119)) {
		t.Fatal("fresh element missing")
	}
}

func TestAgingBloomDuplicatesDontAge(t *testing.T) {
	a := NewAgingBloom(1<<14, 3, 10, 3)
	a.Insert(fk(1))
	for i := 0; i < 100; i++ {
		a.Insert(fk(1)) // duplicates must not count toward the generation
	}
	if !a.Contains(fk(1)) {
		t.Fatal("duplicate-only stream aged out its own element")
	}
}

func TestEHExactWhenSmall(t *testing.T) {
	e := NewEH(4, 1000)
	for i := int64(1); i <= 5; i++ {
		e.Add(i * 10)
	}
	// With few events every bucket has size 1: the estimator's half-
	// bucket correction on the oldest still counts 4..5.
	if c := e.Count(60); c < 4 || c > 5 {
		t.Fatalf("small count = %d", c)
	}
}

func TestEHWindowExpiry(t *testing.T) {
	e := NewEH(4, 100)
	for i := int64(0); i < 50; i++ {
		e.Add(i)
	}
	if c := e.Count(1000); c != 0 {
		t.Fatalf("expired events still counted: %d", c)
	}
}

func TestEHRelativeErrorBound(t *testing.T) {
	// k=8 guarantees <= 1/8 relative error; verify empirically across a
	// steady stream and several query points.
	const k, window = 8, int64(10_000)
	e := NewEH(k, window)
	var times []int64
	for i := int64(0); i < 50_000; i += 3 {
		e.Add(i)
		times = append(times, i)
		if i%5000 != 0 || i < window {
			continue
		}
		exact := 0
		for _, ts := range times {
			if ts > i-window && ts <= i {
				exact++
			}
		}
		got := float64(e.Count(i))
		if relErr := math.Abs(got-float64(exact)) / float64(exact); relErr > 1.0/float64(k) {
			t.Fatalf("at %d: est %f exact %d relErr %f > 1/%d", i, got, exact, relErr, k)
		}
	}
}

func TestEHLogarithmicMemory(t *testing.T) {
	e := NewEH(4, 1<<40)
	for i := int64(0); i < 100_000; i++ {
		e.Add(i)
	}
	// Buckets grow as O(k log n), not O(n).
	if e.Buckets() > 4*(4+1)*20 {
		t.Fatalf("EH buckets = %d, not logarithmic", e.Buckets())
	}
	if e.MemoryBytes() != e.Buckets()*16 {
		t.Fatal("memory accounting inconsistent")
	}
}

func TestEHMonotoneNonNegativeProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		e := NewEH(4, 500)
		now := int64(0)
		for _, g := range gaps {
			now += int64(g%100) + 1
			e.Add(now)
			if e.Count(now) == 0 { // just added: must be visible
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingHHDetectsAndAges(t *testing.T) {
	const window = int64(1000)
	s := NewSlidingHH(16, 8, window, 1)
	// A heavy flow early, then silence.
	for i := int64(0); i < 200; i++ {
		s.Add(fk(1), i)
	}
	heavy := s.Heavy(200, 100)
	if len(heavy) != 1 || heavy[0] != fk(1) {
		t.Fatalf("heavy = %v", heavy)
	}
	// After the window slides past the burst, the flow is no longer
	// heavy — the fine-grained deletion tumbling windows cannot do.
	if got := s.Heavy(5000, 100); len(got) != 0 {
		t.Fatalf("aged-out flow still heavy: %v", got)
	}
}

func TestSlidingHHQueryTracksWindow(t *testing.T) {
	const window = int64(1000)
	s := NewSlidingHH(8, 8, window, 2)
	for i := int64(0); i < 100; i++ {
		s.Add(fk(3), i*10)
	}
	full := s.Query(fk(3), 990)
	if full < 80 {
		t.Fatalf("full-window count = %d", full)
	}
	half := s.Query(fk(3), 1490) // window now covers [490,1490]: ~half the packets
	if half >= full || half < 30 {
		t.Fatalf("half-window count = %d (full %d)", half, full)
	}
	if s.Query(fk(99), 990) != 0 {
		t.Fatal("non-resident flow should be 0")
	}
}

func TestSlidingHHEvictionNeedsAgedSlot(t *testing.T) {
	s := NewSlidingHH(2, 8, 100, 3)
	s.Add(fk(1), 0)
	s.Add(fk(2), 1)
	s.Add(fk(3), 2) // both residents active: newcomer dropped
	if s.Query(fk(3), 3) != 0 {
		t.Fatal("newcomer admitted over active residents")
	}
	s.Add(fk(3), 500) // residents aged out: slot freed
	if s.Query(fk(3), 501) == 0 {
		t.Fatal("newcomer not admitted into aged slot")
	}
}

func TestMemoryComparisonClassicVsSubWindows(t *testing.T) {
	// §10's argument quantified: tracking N candidate flows over a
	// sliding window with per-key Exponential Histograms needs
	// per-key timing state, while OmniWindow's sub-window approach pays
	// one counter per key per region regardless of window/slide ratio.
	const window = int64(1_000_000)
	const candidates = 256
	s := NewSlidingHH(candidates, 8, window, 4)
	for i := int64(0); i < 100_000; i++ {
		s.Add(fk(int(i)%candidates), i*10)
	}
	perKeyClassic := s.MemoryBytes() / candidates
	// OmniWindow: two regions x 8-byte counter per key.
	perKeyOmni := 2 * 8
	if perKeyClassic < 4*perKeyOmni {
		t.Fatalf("classic per-key state (%d B) should far exceed sub-window state (%d B)",
			perKeyClassic, perKeyOmni)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAgingBloom(64, 1, 0, 1) },
		func() { NewEH(0, 10) },
		func() { NewEH(4, 0) },
		func() { NewSlidingHH(0, 4, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
