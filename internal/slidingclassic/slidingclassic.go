// Package slidingclassic implements the classic END-HOST sliding-window
// algorithms the paper's related work contrasts OmniWindow against (§10):
//
//   - membership query: the Aging Bloom Filter with two active buffers
//     (Yoon, TKDE'10);
//   - frequency estimation: Exponential Histograms (Datar, Gionis,
//     Indyk, Motwani) counting events in the trailing window;
//   - heavy-hitter detection: a Space-Saving table whose counters are
//     per-key Exponential Histograms, supporting sliding-window queries.
//
// Each solves ONE application, keeps per-element timing state the data
// plane cannot afford, and supports no general merging — the §10 point
// that motivates a general window framework. The comparison bench
// contrasts their memory against OmniWindow's sub-window approach.
package slidingclassic

import (
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// AgingBloom answers sliding-window membership with two alternating Bloom
// filters: inserts go to the active buffer; once it has absorbed its
// capacity of distinct elements, the old buffer is cleared and the roles
// swap. An element inserted within the last `capacity` distinct inserts is
// always found; elements older than two generations are always aged out.
type AgingBloom struct {
	active, old *sketch.Bloom
	capacity    int
	inserted    int
}

// NewAgingBloom builds an aging filter whose generations hold `capacity`
// distinct elements in `bits`-bit buffers.
func NewAgingBloom(bits, hashes, capacity int, seed uint64) *AgingBloom {
	if capacity <= 0 {
		panic("slidingclassic: capacity must be positive")
	}
	return &AgingBloom{
		active:   sketch.NewBloom(bits, hashes, seed),
		old:      sketch.NewBloom(bits, hashes, seed),
		capacity: capacity,
	}
}

// Insert adds k to the active generation, aging out the oldest buffer
// when the generation fills.
func (a *AgingBloom) Insert(k packet.FlowKey) {
	if a.active.TestAndAdd(k) {
		return // already in the active generation
	}
	a.inserted++
	if a.inserted >= a.capacity {
		a.old.Reset()
		a.active, a.old = a.old, a.active
		a.inserted = 0
	}
}

// Contains reports whether k was inserted within the last one to two
// generations (no false negatives within one generation).
func (a *AgingBloom) Contains(k packet.FlowKey) bool {
	return a.active.Contains(k) || a.old.Contains(k)
}

// MemoryBytes reports the two-buffer footprint.
func (a *AgingBloom) MemoryBytes() int {
	return a.active.MemoryBytes() + a.old.MemoryBytes()
}

// ehBucket is one Exponential Histogram bucket: `size` events whose most
// recent one happened at `last`.
type ehBucket struct {
	size uint64
	last int64
}

// EH is an Exponential Histogram counting events in the trailing window
// of `window` ns with relative error at most 1/k: buckets hold
// exponentially growing event counts and at most k+1 buckets of each size
// are kept, merging the two oldest of a size when the bound is exceeded.
type EH struct {
	k       int
	window  int64
	buckets []ehBucket // oldest first
	total   uint64
}

// NewEH builds a histogram with error parameter k over a window.
func NewEH(k int, window int64) *EH {
	if k <= 0 || window <= 0 {
		panic("slidingclassic: EH parameters must be positive")
	}
	return &EH{k: k, window: window}
}

// Add records one event at time now (non-decreasing).
func (e *EH) Add(now int64) {
	e.expire(now)
	e.buckets = append(e.buckets, ehBucket{size: 1, last: now})
	e.total++
	// Enforce at most k+1 buckets per size, merging oldest pairs.
	for size := uint64(1); ; size *= 2 {
		count, firstIdx := 0, -1
		for i := range e.buckets {
			if e.buckets[i].size == size {
				if firstIdx < 0 {
					firstIdx = i
				}
				count++
			}
		}
		if count <= e.k+1 {
			break
		}
		// Merge the two oldest buckets of this size.
		second := firstIdx + 1
		for second < len(e.buckets) && e.buckets[second].size != size {
			second++
		}
		e.buckets[second].size *= 2
		if e.buckets[firstIdx].last > e.buckets[second].last {
			e.buckets[second].last = e.buckets[firstIdx].last
		}
		e.buckets = append(e.buckets[:firstIdx], e.buckets[firstIdx+1:]...)
	}
}

// expire drops buckets entirely outside the window.
func (e *EH) expire(now int64) {
	cut := now - e.window
	for len(e.buckets) > 0 && e.buckets[0].last <= cut {
		e.total -= e.buckets[0].size
		e.buckets = e.buckets[1:]
	}
}

// Count estimates the events in (now-window, now]: all surviving buckets,
// with the straddling oldest bucket contributing half its size (the
// standard EH estimator).
func (e *EH) Count(now int64) uint64 {
	e.expire(now)
	if len(e.buckets) == 0 {
		return 0
	}
	return e.total - e.buckets[0].size/2
}

// Buckets returns the current bucket count (memory proxy).
func (e *EH) Buckets() int { return len(e.buckets) }

// MemoryBytes reports the histogram footprint (16 bytes per bucket).
func (e *EH) MemoryBytes() int { return len(e.buckets) * 16 }

// shhEntry is one Space-Saving slot with a sliding counter.
type shhEntry struct {
	key packet.FlowKey
	eh  *EH
}

// SlidingHH detects heavy hitters over a sliding time window: a
// Space-Saving-style table of candidate keys whose counters are per-key
// Exponential Histograms, so counts age out with the window. This is the
// classic end-host construction — accurate, but every candidate needs a
// multi-bucket histogram, which is exactly the per-key timing state a
// switch pipeline cannot hold (§10).
type SlidingHH struct {
	slots  []shhEntry
	k      int
	window int64
	seed   uint64
}

// NewSlidingHH builds a detector with `slots` candidate slots, EH error
// parameter k and the sliding window length.
func NewSlidingHH(slots, k int, window int64, seed uint64) *SlidingHH {
	if slots <= 0 {
		panic("slidingclassic: slots must be positive")
	}
	return &SlidingHH{slots: make([]shhEntry, slots), k: k, window: window, seed: seed}
}

// Add records one packet of flow key at time now.
func (s *SlidingHH) Add(key packet.FlowKey, now int64) {
	// Resident?
	minIdx, minCount := -1, uint64(0)
	for i := range s.slots {
		e := &s.slots[i]
		if e.eh == nil {
			e.key = key
			e.eh = NewEH(s.k, s.window)
			e.eh.Add(now)
			return
		}
		if e.key == key {
			e.eh.Add(now)
			return
		}
		c := e.eh.Count(now)
		if minIdx < 0 || c < minCount {
			minIdx, minCount = i, c
		}
	}
	// Space-Saving eviction: the smallest resident yields its slot when
	// it has aged to (near) zero; otherwise the newcomer is dropped —
	// the window itself provides the aging Space-Saving usually gets
	// from counter inheritance.
	if minCount == 0 {
		s.slots[minIdx].key = key
		s.slots[minIdx].eh = NewEH(s.k, s.window)
		s.slots[minIdx].eh.Add(now)
	}
}

// Heavy returns the candidates whose trailing-window count reaches the
// threshold.
func (s *SlidingHH) Heavy(now int64, threshold uint64) []packet.FlowKey {
	var out []packet.FlowKey
	for i := range s.slots {
		if s.slots[i].eh == nil {
			continue
		}
		if s.slots[i].eh.Count(now) >= threshold {
			out = append(out, s.slots[i].key)
		}
	}
	return out
}

// Query estimates key's trailing-window count (0 if not resident).
func (s *SlidingHH) Query(key packet.FlowKey, now int64) uint64 {
	for i := range s.slots {
		if s.slots[i].eh != nil && s.slots[i].key == key {
			return s.slots[i].eh.Count(now)
		}
	}
	return 0
}

// MemoryBytes reports the table footprint including per-key histograms.
func (s *SlidingHH) MemoryBytes() int {
	b := 0
	for i := range s.slots {
		b += packet.KeyBytes
		if s.slots[i].eh != nil {
			b += s.slots[i].eh.MemoryBytes()
		}
	}
	return b
}
