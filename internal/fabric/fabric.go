// Package fabric runs a topology of OmniWindow deployments wired over
// simulated links, with a switch-side failure model: power-cycles that
// wipe a switch's registers, stalls that miss collection deadlines, and
// slow clocks that drift. It is the network-wide layer of the paper's §5
// consistency model hardened for partial failure.
//
// Synchronization is epoch-based. The fabric runs at one epoch (starting
// at 1); every first-hop stamp carries it. A rebooted switch restarts at
// epoch 0, so the stamps it writes before resynchronizing are rejected by
// every synced switch — a stale counter can never move another switch's
// window or be monitored anywhere. The rebooted switch resyncs by adopting
// the first in-epoch stamp it forwards, or immediately from a controller
// beacon when Config.Beacons is enabled.
//
// Failures surface as explicit degraded coverage, never silent
// undercounting: every node-level data loss is recorded as a coverage gap
// and charged to the merged window's DegradedSwitches; windows with no
// gap on any route they carried are exact — identical to a fault-free run.
package fabric

import (
	"fmt"
	"sort"

	"omniwindow"
	"omniwindow/internal/controller"
	"omniwindow/internal/faults"
	"omniwindow/internal/netsim"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// SwitchConfig describes one switch of the topology.
type SwitchConfig struct {
	// Config is the switch's OmniWindow deployment configuration.
	// CaptureValues is forced on: the fabric merges per-flow values.
	Config omniwindow.Config
	// Faults is the switch's failure schedule (nil = healthy).
	Faults *faults.SwitchSchedule
}

// Config describes the fabric.
type Config struct {
	// Switches are the topology's nodes, addressed by index.
	Switches []SwitchConfig
	// Route maps a traffic packet to the ordered switch indexes it
	// traverses. It must be consistent per flow (all packets of a flow
	// take the same route) for merged windows to be exact. Nil routes
	// every packet through all switches in index order (a chain).
	Route func(p *packet.Packet) []int
	// LinkDelay is the per-link latency in virtual ns.
	LinkDelay int64
	// Beacons enables controller resync beacons: at every sub-window
	// boundary (and immediately after an observed reboot) the controller
	// broadcasts (epoch, sub-window) and unsynced switches snap back into
	// the fabric. Without beacons a rebooted switch resynchronizes only
	// from the first in-epoch stamp it forwards.
	Beacons bool
	// StrikeLimit is how many health strikes (stale-stamp reports traced
	// back to the switch, missed collection deadlines) quarantine a
	// switch. 0 disables quarantine.
	StrikeLimit int
	// QuarantineFor is how many sub-windows a quarantined switch sits out
	// before it is resynced and readmitted (<= 0 means 2). While
	// quarantined, the switch forwards traffic but monitors nothing, and
	// its reports are excluded from merged windows.
	QuarantineFor int

	// DebugAddr, when non-empty, serves one aggregated observability
	// endpoint for the whole fabric: every switch's deployment registers
	// into a shared registry with a switch="i" label, plus fabric-level
	// health metrics (strikes, quarantines, readmissions) and the merged
	// window-lifecycle trace ring. Empty leaves the fabric uninstrumented.
	DebugAddr string
	// Obs optionally supplies the shared registry instead of (or in
	// addition to) DebugAddr. Either enables instrumentation. Per-switch
	// Config.Obs/ObsLabels are overridden by the fabric's.
	Obs *obs.Registry
}

// CoverageGap is one switch's span of sub-windows with missing or partial
// data (wiped by a reboot, unmonitored while unsynced or quarantined).
type CoverageGap struct {
	Switch   int
	From, To uint64 // inclusive
}

// Window is one merged network-wide window.
type Window struct {
	// Start and End delimit the window's sub-windows, inclusive.
	Start, End uint64
	// Detected are the flows satisfying the query over merged values.
	Detected []packet.FlowKey
	// Values are the merged per-flow statistics: for each flow, the
	// maximum across the switches on its route. Healthy switches on a
	// route agree (the consistency model monitors each packet into the
	// same sub-window fabric-wide), and a faulty switch can only
	// undercount, so the maximum is the network-wide value.
	Values map[packet.FlowKey]uint64
	// SpikePackets is the total number of latency-spike copies merged
	// through the switches' software paths for this window (each distinct
	// copy exactly once per switch controller).
	SpikePackets int
	// Incomplete reports transport-level loss: a covering switch's window
	// finalized with announced records missing.
	Incomplete bool
	// Degraded reports that at least one route this window carried had no
	// fully-covering switch, so the merged statistics are a lower bound.
	// Exactly the windows with false here are byte-identical to a
	// fault-free run.
	Degraded bool
	// DegradedSwitches lists the switches whose faults caused the
	// degradation, sorted ascending.
	DegradedSwitches []int
	// Gaps are those switches' coverage gaps clipped to this window.
	Gaps []CoverageGap
}

// node is one switch plus its fabric-side health state.
type node struct {
	d     *omniwindow.Deployment
	sched *faults.SwitchSchedule

	strikes     int
	struck      map[strikeKey]bool
	quarantined bool
	freeAt      uint64 // fabric sub-window at which quarantine lifts

	gaps    []CoverageGap // closed gaps
	gapOpen bool          // an open gap awaiting resync
	gapFrom uint64

	// Fabric-health instrumentation (nil when observability is off).
	obsStrikes     *obs.Counter
	obsQuarantines *obs.Counter
	obsReadmits    *obs.Counter
}

// strikeKey dedups strikes to one per cause per fabric sub-window.
type strikeKey struct {
	sw    uint64
	cause uint8 // 0 stale-stamp origin, 1 stall
}

// Fabric is a running topology.
type Fabric struct {
	cfg   Config
	nodes []*node
	epoch uint64

	// Observability (nil unless Config.Obs or Config.DebugAddr is set).
	reg      *obs.Registry
	ring     *obs.Ring
	debugSrv *obs.Server

	paths map[string]*netsim.Path
	// routesBySub records, per stamped sub-window, the concrete routes
	// (post quarantine filtering) traffic took — the coverage domain of
	// each merged window.
	routesBySub map[uint64]map[string][]int

	fabricSW uint64 // high-water sub-window across the fabric
	started  bool

	// curRoute is the route of the packet currently in flight, for
	// attributing stale-stamp strikes to its stamping switch.
	curRoute []int

	violations []string
	// spikeSeen counts, per (switch, flow, seq, sub-window), how many
	// spike escapes the hook observed — the exactly-once cross-check
	// against the controllers' SpikePackets accounting.
	spikeSeen map[spikeObs]int
}

// spikeObs identifies one spike copy at one switch.
type spikeObs struct {
	node int
	key  packet.FlowKey
	seq  uint32
	sw   uint64
}

// New builds the fabric: one deployment per switch, all joined at epoch 1,
// each with the fabric's invariant-checking decision hook installed.
func New(cfg Config) (*Fabric, error) {
	if len(cfg.Switches) == 0 {
		return nil, fmt.Errorf("fabric: at least one switch is required")
	}
	if cfg.QuarantineFor <= 0 {
		cfg.QuarantineFor = 2
	}
	f := &Fabric{
		cfg:         cfg,
		epoch:       1,
		paths:       make(map[string]*netsim.Path),
		routesBySub: make(map[uint64]map[string][]int),
		spikeSeen:   make(map[spikeObs]int),
	}
	if cfg.Obs != nil || cfg.DebugAddr != "" {
		f.reg = cfg.Obs
		if f.reg == nil {
			f.reg = obs.NewRegistry()
		}
		f.ring = f.reg.Ring(0)
	}
	for i := range cfg.Switches {
		sc := cfg.Switches[i].Config
		sc.CaptureValues = true
		if f.reg != nil {
			// Every switch registers into the shared registry with a
			// switch label; the deployments' ring events interleave into
			// one fabric-wide lifecycle trace.
			sc.Obs = f.reg
			sc.ObsLabels = fmt.Sprintf("switch=%q", fmt.Sprint(i))
			sc.DebugAddr = "" // one fabric endpoint, not one per switch
		}
		d, err := omniwindow.New(sc)
		if err != nil {
			f.closeObs()
			return nil, fmt.Errorf("fabric: switch %d: %w", i, err)
		}
		d.SetEpoch(f.epoch)
		n := &node{d: d, sched: cfg.Switches[i].Faults, struck: make(map[strikeKey]bool)}
		if f.reg != nil {
			l := fmt.Sprintf("{switch=%q}", fmt.Sprint(i))
			n.obsStrikes = f.reg.Counter("omniwindow_fabric_strikes_total"+l, "health strikes recorded against the switch")
			n.obsQuarantines = f.reg.Counter("omniwindow_fabric_quarantines_total"+l, "times the switch was quarantined")
			n.obsReadmits = f.reg.Counter("omniwindow_fabric_readmits_total"+l, "times the switch was resynced and readmitted")
		}
		f.nodes = append(f.nodes, n)
		f.installHook(i, n)
	}
	if cfg.DebugAddr != "" {
		srv, err := obs.Serve(cfg.DebugAddr, f.reg)
		if err != nil {
			return nil, fmt.Errorf("fabric: debug endpoint: %w", err)
		}
		f.debugSrv = srv
	}
	return f, nil
}

// closeObs tears down the debug endpoint during failed construction.
func (f *Fabric) closeObs() {
	if f.debugSrv != nil {
		f.debugSrv.Close()
	}
}

// Obs exposes the fabric's shared observability registry (nil when
// instrumentation is off).
func (f *Fabric) Obs() *obs.Registry { return f.reg }

// DebugURL returns the fabric debug endpoint's base URL ("" when
// DebugAddr was not configured).
func (f *Fabric) DebugURL() string { return f.debugSrv.URL() }

// CloseDebug stops the fabric debug endpoint; safe to call repeatedly.
func (f *Fabric) CloseDebug() error { return f.debugSrv.Close() }

// installHook registers the invariant checker on one switch: no
// stale-epoch stamp may ever be monitored or terminate sub-windows, and
// every spike escape is recorded for the exactly-once cross-check.
func (f *Fabric) installHook(idx int, n *node) {
	n.d.SetDecisionHook(func(p *packet.Packet, r window.Result) {
		switch {
		case r.StaleEpoch:
			if len(r.Terminated) > 0 {
				f.violations = append(f.violations, fmt.Sprintf(
					"switch %d: stale-epoch stamp terminated sub-windows %v", idx, r.Terminated))
			}
			// Trace the report back to the stamping switch and strike it.
			if len(f.curRoute) > 0 {
				f.strike(f.curRoute[0], 0)
			}
		case p.OW.HasSubWindow && !r.Stamped && p.OW.Epoch < r.Epoch:
			f.violations = append(f.violations, fmt.Sprintf(
				"switch %d: monitored a stamp from epoch %d while at epoch %d (sub-window %d)",
				idx, p.OW.Epoch, r.Epoch, p.OW.SubWindow))
		case r.Spike:
			f.spikeSeen[spikeObs{node: idx, key: p.Key, seq: p.Seq, sw: p.OW.SubWindow}]++
		default:
			// A monitored packet: its route covers the monitored
			// sub-window — the coverage domain of the merged windows.
			f.recordRoute(r.Monitor, f.curRoute)
		}
	})
}

// strike records one health strike against a switch (deduplicated per
// cause per fabric sub-window) and quarantines it at the strike limit.
func (f *Fabric) strike(idx int, cause uint8) {
	n := f.nodes[idx]
	if n.quarantined {
		return
	}
	k := strikeKey{sw: f.fabricSW, cause: cause}
	if n.struck[k] {
		return
	}
	n.struck[k] = true
	n.strikes++
	n.obsStrikes.Inc()
	if f.cfg.StrikeLimit > 0 && n.strikes >= f.cfg.StrikeLimit {
		n.quarantined = true
		n.freeAt = f.fabricSW + uint64(f.cfg.QuarantineFor)
		n.obsQuarantines.Inc()
		f.ring.Record(obs.StageQuarantine, f.fabricSW, idx, int64(n.freeAt))
		f.openGap(idx, f.fabricSW)
	}
}

// openGap starts (or extends) a switch's coverage gap at sub-window from.
func (f *Fabric) openGap(idx int, from uint64) {
	n := f.nodes[idx]
	if n.gapOpen {
		if from < n.gapFrom {
			n.gapFrom = from
		}
		return
	}
	n.gapOpen = true
	n.gapFrom = from
}

// closeGap ends a switch's open coverage gap at sub-window to, inclusive.
func (f *Fabric) closeGap(idx int, to uint64) {
	n := f.nodes[idx]
	if !n.gapOpen {
		return
	}
	n.gapOpen = false
	n.gaps = append(n.gaps, CoverageGap{Switch: idx, From: n.gapFrom, To: to})
}

// Process routes one traffic packet through its path. Packets must arrive
// in non-decreasing time order, as on a real tap.
func (f *Fabric) Process(p *packet.Packet) {
	route := f.liveRoute(p)
	if len(route) == 0 {
		return
	}
	f.curRoute = route
	f.pathFor(route).Run([]packet.Packet{*p})
	f.curRoute = nil
	f.advance()
}

// liveRoute is the packet's configured route with quarantined switches
// bypassed (they forward but do not monitor).
func (f *Fabric) liveRoute(p *packet.Packet) []int {
	var route []int
	if f.cfg.Route != nil {
		route = f.cfg.Route(p)
	} else {
		route = make([]int, len(f.nodes))
		for i := range route {
			route[i] = i
		}
	}
	live := route[:0:0]
	for _, idx := range route {
		if idx < 0 || idx >= len(f.nodes) {
			f.violations = append(f.violations, fmt.Sprintf("route names unknown switch %d", idx))
			continue
		}
		if !f.nodes[idx].quarantined {
			live = append(live, idx)
		}
	}
	return live
}

// pathFor returns (building on first use) the netsim path for a route.
func (f *Fabric) pathFor(route []int) *netsim.Path {
	key := routeKey(route)
	if p, ok := f.paths[key]; ok {
		return p
	}
	hops := make([]netsim.Hop, len(route))
	for i, idx := range route {
		n := f.nodes[idx]
		hops[i] = netsim.Hop{
			OffsetFunc: f.driftOf(n),
			Process: func(pk *packet.Packet, lt int64) {
				if n.quarantined {
					return // readmission outpaced path caching: pass through
				}
				pk.Time = lt
				fwds := n.d.ProcessAndForward(pk)
				if len(fwds) > 0 {
					// Carry the (possibly new) stamp to the next hop.
					pk.OW = fwds[0].OW
				}
			},
		}
	}
	var delays []int64
	if len(route) > 1 {
		delays = make([]int64, len(route)-1)
		for i := range delays {
			delays[i] = f.cfg.LinkDelay
		}
	}
	p := &netsim.Path{Hops: hops, LinkDelay: delays}
	f.paths[key] = p
	return p
}

// driftOf wires a switch's slow-clock schedule into its hop offset.
func (f *Fabric) driftOf(n *node) func() int64 {
	if n.sched == nil || n.sched.ClockDriftPerSub == 0 {
		return nil
	}
	return func() int64 { return n.sched.DriftAt(f.fabricSW) }
}

func routeKey(route []int) string {
	b := make([]byte, 0, len(route)*3)
	for _, idx := range route {
		b = append(b, byte(idx), byte(idx>>8), ',')
	}
	return string(b)
}

// recordRoute notes which route carried monitored traffic in which
// sub-window — the coverage domain of the merged windows.
func (f *Fabric) recordRoute(sw uint64, route []int) {
	if len(route) == 0 {
		return
	}
	m := f.routesBySub[sw]
	if m == nil {
		m = make(map[string][]int)
		f.routesBySub[sw] = m
	}
	key := routeKey(route)
	if _, ok := m[key]; !ok {
		m[key] = append([]int(nil), route...)
	}
}

// advance observes the fabric's sub-window high-water mark and, on each
// boundary crossed, applies the switches' fault schedules, broadcasts
// beacons, lifts elapsed quarantines and closes resynced gaps.
func (f *Fabric) advance() {
	cur := f.fabricSW
	for _, n := range f.nodes {
		if c := n.d.CurrentSubWindow(); c > cur {
			cur = c
		}
	}
	if !f.started {
		f.started = true
		f.boundary(f.fabricSW)
	}
	for b := f.fabricSW + 1; b <= cur; b++ {
		f.fabricSW = b
		f.boundary(b)
	}
	// Close gaps of switches that resynchronized through traffic.
	for i, n := range f.nodes {
		if n.gapOpen && !n.quarantined && n.d.Epoch() == f.epoch {
			f.closeGap(i, f.fabricSW)
		}
	}
}

// boundary applies fault schedules and controller actions at one fabric
// sub-window boundary.
func (f *Fabric) boundary(b uint64) {
	for i, n := range f.nodes {
		if n.quarantined {
			if b >= n.freeAt {
				// Readmit: force a resync and clean the slate.
				n.quarantined = false
				n.strikes = 0
				n.obsReadmits.Inc()
				f.ring.Record(obs.StageReadmit, b, i, 0)
				n.d.ResyncBeacon(f.epoch, b)
				f.closeGap(i, b)
			}
			continue
		}
		if n.sched.RebootAt(b) {
			f.rebootNode(i, b)
		}
		if stalled, _ := n.sched.StallAt(b); stalled {
			// Missed collection deadline: tardy data, a health strike.
			f.strike(i, 1)
		}
	}
	if f.cfg.Beacons {
		// Beacons only target unsynced switches: fast-forwarding a healthy
		// switch would skip terminating its in-flight sub-window and
		// silently strand that region's data.
		for i, n := range f.nodes {
			if n.quarantined || n.d.Epoch() >= f.epoch {
				continue
			}
			n.d.ResyncBeacon(f.epoch, b)
			if n.gapOpen {
				f.closeGap(i, b)
			}
		}
	}
}

// rebootNode power-cycles one switch and opens its coverage gap from the
// oldest sub-window whose data the wipe destroyed.
func (f *Fabric) rebootNode(idx int, b uint64) {
	n := f.nodes[idx]
	from := b
	for _, sw := range n.d.UncollectedSubWindows() {
		if sw < from {
			from = sw
		}
	}
	n.d.Reboot()
	f.openGap(idx, from)
}

// Tick advances virtual time fabric-wide without traffic, firing timeout
// signals at every switch.
func (f *Fabric) Tick(now int64) {
	for _, n := range f.nodes {
		n.d.Tick(now)
	}
	f.advance()
}

// Run processes a whole trace and finalizes.
func (f *Fabric) Run(pkts []packet.Packet) []Window {
	for i := range pkts {
		f.Process(&pkts[i])
	}
	return f.Finalize()
}

// Finalize flushes every switch and returns the merged windows.
func (f *Fabric) Finalize() []Window {
	for i, n := range f.nodes {
		n.d.Finalize()
		if n.gapOpen {
			f.closeGap(i, f.fabricSW)
		}
	}
	return f.Windows()
}

// Node exposes one switch's deployment (stats, controller).
func (f *Fabric) Node(i int) *omniwindow.Deployment { return f.nodes[i].d }

// Epoch returns the fabric's synchronization epoch.
func (f *Fabric) Epoch() uint64 { return f.epoch }

// Quarantined reports whether a switch is currently quarantined.
func (f *Fabric) Quarantined(i int) bool { return f.nodes[i].quarantined }

// Strikes returns a switch's current health-strike count.
func (f *Fabric) Strikes(i int) int { return f.nodes[i].strikes }

// Gaps returns a switch's closed coverage gaps.
func (f *Fabric) Gaps(i int) []CoverageGap { return f.nodes[i].gaps }

// Violations returns the invariant violations observed so far. A healthy
// implementation returns none under any fault schedule: stale-epoch
// stamps are never monitored and never terminate sub-windows.
func (f *Fabric) Violations() []string { return f.violations }

// SpikeObservations returns how many spike escapes the fabric observed per
// (switch, flow, seq, sub-window) — each distinct observation must be
// merged at most once by that switch's controller.
func (f *Fabric) SpikeObservations() map[int]int {
	per := make(map[int]int)
	for obs := range f.spikeSeen {
		per[obs.node]++
	}
	return per
}

// Windows merges the per-switch windows completed so far into
// network-wide windows with coverage accounting.
func (f *Fabric) Windows() []Window {
	type wkey struct{ start, end uint64 }
	perNode := make([]map[wkey]controller.WindowResult, len(f.nodes))
	keys := make(map[wkey]bool)
	for i, n := range f.nodes {
		perNode[i] = make(map[wkey]controller.WindowResult)
		for _, w := range n.d.Results() {
			k := wkey{w.Start, w.End}
			perNode[i][k] = w
			keys[k] = true
		}
	}
	ordered := make([]wkey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].end != ordered[j].end {
			return ordered[i].end < ordered[j].end
		}
		return ordered[i].start < ordered[j].start
	})

	out := make([]Window, 0, len(ordered))
	for _, k := range ordered {
		k := k
		out = append(out, f.mergeWindow(k.start, k.end, func(i int) (controller.WindowResult, bool) {
			w, ok := perNode[i][k]
			return w, ok
		}))
	}
	return out
}

// mergeWindow folds one window across switches and computes its coverage;
// get returns switch i's instance of the window, if it finished one.
func (f *Fabric) mergeWindow(start, end uint64, get func(i int) (controller.WindowResult, bool)) Window {
	w := Window{Start: start, End: end, Values: make(map[packet.FlowKey]uint64)}

	faulty := make([]bool, len(f.nodes))
	for i := range f.nodes {
		if _, ok := get(i); !ok {
			// The switch never finished this window: its coverage of the
			// span is missing entirely.
			faulty[i] = true
			continue
		}
		faulty[i] = f.nodeFaulty(i, start, end)
	}

	// Per-flow maximum across switches. A switch that carries a flow and
	// is healthy saw every packet of it (consistency model), so the max is
	// the network-wide value; faulty switches only undercount and can
	// never raise it above truth.
	for i := range f.nodes {
		res, ok := get(i)
		if !ok {
			continue
		}
		if res.Incomplete && !faulty[i] {
			w.Incomplete = true
		}
		w.SpikePackets += res.SpikePackets
		for k, v := range res.Values {
			if v > w.Values[k] {
				w.Values[k] = v
			}
		}
	}

	// Coverage: a route is covered when its stamping switch is healthy
	// (it saw every packet before any downstream rejection could occur)
	// or any switch on it is healthy with a healthy origin upstream; it
	// is uncovered when its origin is faulty — downstream switches
	// rejected its unsynced stamps, so nobody holds the full count — or
	// when every switch on it is faulty.
	degradedSet := make(map[int]bool)
	for sw := start; sw <= end; sw++ {
		for _, route := range f.routesBySub[sw] {
			uncovered := faulty[route[0]]
			if !uncovered {
				all := true
				for _, idx := range route {
					if !faulty[idx] {
						all = false
						break
					}
				}
				uncovered = all
			}
			if uncovered {
				w.Degraded = true
				for _, idx := range route {
					if faulty[idx] {
						degradedSet[idx] = true
					}
				}
			}
		}
	}
	for idx := range degradedSet {
		w.DegradedSwitches = append(w.DegradedSwitches, idx)
	}
	sort.Ints(w.DegradedSwitches)
	for _, idx := range w.DegradedSwitches {
		for _, g := range f.allGaps(idx) {
			if g.From <= end && g.To >= start {
				w.Gaps = append(w.Gaps, CoverageGap{Switch: idx, From: maxU64(g.From, start), To: minU64(g.To, end)})
			}
		}
	}

	// Detection re-runs the first switch's query over the merged values.
	det := f.cfg.Switches[0].Config.Detector
	thr := f.cfg.Switches[0].Config.Threshold
	for k, v := range w.Values {
		hit := false
		if det != nil {
			hit = det(k, v)
		} else {
			hit = v >= thr
		}
		if hit {
			w.Detected = append(w.Detected, k)
		}
	}
	sort.Slice(w.Detected, func(i, j int) bool { return keyLess(w.Detected[i], w.Detected[j]) })
	return w
}

// nodeFaulty reports whether a switch has a coverage gap overlapping the
// sub-window span [start, end].
func (f *Fabric) nodeFaulty(i int, start, end uint64) bool {
	for _, g := range f.allGaps(i) {
		if g.From <= end && g.To >= start {
			return true
		}
	}
	return false
}

// allGaps is a switch's closed gaps plus its open one, if any, extended
// to the fabric's current sub-window.
func (f *Fabric) allGaps(i int) []CoverageGap {
	n := f.nodes[i]
	if !n.gapOpen {
		return n.gaps
	}
	return append(append([]CoverageGap(nil), n.gaps...), CoverageGap{Switch: i, From: n.gapFrom, To: f.fabricSW})
}

func keyLess(a, b packet.FlowKey) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
