package fabric

import (
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
)

// BenchmarkFabricProcess measures the fabric's per-packet hot path: one
// packet traversing a healthy 3-switch chain (stamp at the origin, stamp
// adoption at two downstream hops, boundary bookkeeping amortized in).
func BenchmarkFabricProcess(b *testing.B) {
	f := chain(b, 3, nil, nil)
	pkts := steadyTrace([]int{1, 2, 3, 4}, 250, 1000*ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		p.Time += int64(i/len(pkts)) * 1000 * ms // keep virtual time monotone across laps
		f.Process(&p)
	}
}

// BenchmarkFabricChaosRun measures a full chaos run: a 3-switch chain
// with a seeded reboot schedule on the middle switch processing a
// complete trace, including resync, gap accounting and window merging.
func BenchmarkFabricChaosRun(b *testing.B) {
	pkts := steadyTrace([]int{1, 2, 3, 4, 5}, 200, 2000*ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scheds := []*faults.SwitchSchedule{
			nil,
			{Reboot: faults.CrashSchedule{Seed: 7, Prob: 0.1}},
			nil,
		}
		f := chain(b, 3, scheds, nil)
		run := make([]packet.Packet, len(pkts))
		copy(run, pkts)
		b.StartTimer()
		if ws := f.Run(run); len(ws) == 0 {
			b.Fatal("no windows")
		}
	}
}

// BenchmarkFabricMerge isolates the window-merge path: the per-node
// windows already exist and Windows() folds them into the fabric-wide
// view (per-flow max, coverage and gap accounting).
func BenchmarkFabricMerge(b *testing.B) {
	f := chain(b, 3, nil, nil)
	pkts := steadyTrace([]int{1, 2, 3, 4, 5, 6, 7, 8}, 200, 1000*ms)
	f.Run(pkts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws := f.Windows(); len(ws) == 0 {
			b.Fatal("no windows")
		}
	}
}
