package fabric

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

const ms = trace.Millisecond

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstIP: 99, SrcPort: uint16(i), DstPort: 443, Proto: packet.ProtoTCP}
}

// swConfig is one switch's frequency-query deployment.
func swConfig() omniwindow.Config {
	return omniwindow.Config{
		SubWindow: 100 * time.Millisecond,
		Plan:      window.Tumbling(5),
		Kind:      afr.Frequency,
		Threshold: 1,
		AppFactory: func(region int) afr.StateApp {
			return telemetry.NewFrequencyApp(sketch.NewCountMin(4, 4096, uint64(region+1)), 4096)
		},
		Slots:   4096,
		Tracker: afr.TrackerConfig{BufferKeys: 1024, BloomBits: 1 << 16, BloomHashes: 3},
	}
}

// steadyTrace emits count packets per flow, evenly spread over [0, dur).
func steadyTrace(flows []int, count int, dur int64) []packet.Packet {
	var pkts []packet.Packet
	step := dur / int64(count)
	var seq uint32
	for i := 0; i < count; i++ {
		for _, f := range flows {
			pkts = append(pkts, packet.Packet{
				Key: fk(f), Size: 100, Seq: seq, Time: int64(i)*step + int64(f),
			})
			seq++
		}
	}
	return pkts
}

// chain builds an n-switch linear fabric with the given per-switch fault
// schedules (nil entries are healthy).
func chain(t testing.TB, n int, scheds []*faults.SwitchSchedule, mutate func(*Config)) *Fabric {
	t.Helper()
	cfg := Config{LinkDelay: 30 * ms}
	for i := 0; i < n; i++ {
		sc := SwitchConfig{Config: swConfig()}
		if scheds != nil {
			sc.Faults = scheds[i]
		}
		cfg.Switches = append(cfg.Switches, sc)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// contentEqual compares the telemetry content of two merged windows (span,
// detected flows, per-flow values) — the "byte-identical" criterion.
func contentEqual(a, b Window) bool {
	if a.Start != b.Start || a.End != b.End || len(a.Values) != len(b.Values) {
		return false
	}
	if !reflect.DeepEqual(a.Detected, b.Detected) {
		return false
	}
	for k, v := range a.Values {
		if b.Values[k] != v {
			return false
		}
	}
	return true
}

func describe(w Window) string {
	return fmt.Sprintf("[%d..%d] degraded=%v switches=%v gaps=%v values=%d",
		w.Start, w.End, w.Degraded, w.DegradedSwitches, w.Gaps, len(w.Values))
}

// TestFabricConsistency is the network-wide consistency test ported onto
// the fabric: two chained switches behind a link delay most of a
// sub-window long must produce identical per-window per-flow counts, and
// the merged fabric windows must equal either one's.
func TestFabricConsistency(t *testing.T) {
	f := chain(t, 2, nil, func(c *Config) { c.LinkDelay = 70 * ms })
	pkts := steadyTrace([]int{1, 2, 3}, 60, 500*ms)
	merged := f.Run(pkts)

	up := f.Node(0).Results()
	down := f.Node(1).Results()
	if len(up) == 0 || len(up) != len(down) {
		t.Fatalf("window counts differ: %d vs %d", len(up), len(down))
	}
	for i := range up {
		if up[i].Start != down[i].Start || up[i].End != down[i].End {
			t.Fatalf("window %d ranges differ", i)
		}
		for k, v := range up[i].Values {
			if down[i].Values[k] != v {
				t.Fatalf("window %d key %v: upstream %d downstream %d — consistency broken",
					i, k, v, down[i].Values[k])
			}
		}
	}
	if len(merged) != len(up) {
		t.Fatalf("merged windows = %d, per-switch = %d", len(merged), len(up))
	}
	for i, w := range merged {
		if w.Degraded || len(w.DegradedSwitches) != 0 {
			t.Fatalf("fault-free window marked degraded: %s", describe(w))
		}
		for k, v := range up[i].Values {
			if w.Values[k] != v {
				t.Fatalf("merged window %d key %v: %d want %d", i, k, w.Values[k], v)
			}
		}
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// runPair runs the same trace through a faulty fabric and a fault-free
// reference of the same shape and returns both window lists.
func runPair(t *testing.T, n int, scheds []*faults.SwitchSchedule, mutate func(*Config), pkts []packet.Packet) (got, ref []Window, f *Fabric) {
	t.Helper()
	f = chain(t, n, scheds, mutate)
	clean := chain(t, n, nil, mutate)
	got = f.Run(append([]packet.Packet(nil), pkts...))
	ref = clean.Run(append([]packet.Packet(nil), pkts...))
	if v := clean.Violations(); len(v) != 0 {
		t.Fatalf("fault-free violations: %v", v)
	}
	return got, ref, f
}

// checkDegradedOrIdentical asserts the acceptance invariant: every merged
// window is byte-identical to the fault-free run, or explicitly marked
// degraded with the failed switch's coverage gap. It returns the number
// of degraded windows.
func checkDegradedOrIdentical(t *testing.T, got, ref []Window, failed int) int {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("window counts: %d vs fault-free %d", len(got), len(ref))
	}
	degraded := 0
	for i := range got {
		if contentEqual(got[i], ref[i]) && !got[i].Degraded {
			continue
		}
		if !got[i].Degraded {
			t.Fatalf("window %d differs from fault-free but is not marked degraded:\n%s\nvs\n%s",
				i, describe(got[i]), describe(ref[i]))
		}
		degraded++
		found := false
		for _, s := range got[i].DegradedSwitches {
			if s == failed {
				found = true
			}
		}
		if !found {
			t.Fatalf("window %d degraded but does not name switch %d: %s", i, failed, describe(got[i]))
		}
		gapFound := false
		for _, g := range got[i].Gaps {
			if g.Switch == failed && g.From <= got[i].End && g.To >= got[i].Start {
				gapFound = true
			}
		}
		if !gapFound {
			t.Fatalf("window %d lacks switch %d's coverage gap: %s", i, failed, describe(got[i]))
		}
		// No silent undercounting — degraded values are lower bounds.
		for k, v := range got[i].Values {
			if v > ref[i].Values[k] {
				t.Fatalf("window %d key %v overcounts: %d > fault-free %d", i, k, v, ref[i].Values[k])
			}
		}
	}
	return degraded
}

// TestFabricChaosRebootMiddle reboots the middle switch of a 3-switch
// chain: its wiped regions lose data, but the route's stamping switch is
// healthy and saw every packet, so every merged window stays byte-identical
// to the fault-free run — the reboot is absorbed, not surfaced.
func TestFabricChaosRebootMiddle(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3, 4}, 120, 1000*ms)
	scheds := []*faults.SwitchSchedule{
		nil,
		{Reboot: faults.CrashSchedule{Fixed: []uint64{3, 7}}},
		nil,
	}
	got, ref, f := runPair(t, 3, scheds, nil, pkts)

	if f.Node(1).Stats().Reboots != 2 {
		t.Fatalf("middle switch reboots = %d want 2", f.Node(1).Stats().Reboots)
	}
	if len(got) != len(ref) {
		t.Fatalf("window counts: %d vs %d", len(got), len(ref))
	}
	for i := range got {
		if !contentEqual(got[i], ref[i]) {
			t.Fatalf("window %d not identical despite healthy origin:\n%s\nvs\n%s",
				i, describe(got[i]), describe(ref[i]))
		}
		if got[i].Degraded {
			t.Fatalf("window %d degraded despite full route coverage: %s", i, describe(got[i]))
		}
	}
	if len(f.Gaps(1)) == 0 {
		t.Fatal("middle switch's wiped state left no recorded gap")
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricChaosRebootOrigin reboots the stamping switch of a 3-switch
// chain without beacons: its post-reboot stamps carry epoch 0 and every
// downstream switch must reject them (never monitor), the affected windows
// must be explicitly marked degraded with switch 0's coverage gap, and
// windows outside the gap must be byte-identical to the fault-free run.
func TestFabricChaosRebootOrigin(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3, 4}, 240, 2000*ms)
	scheds := []*faults.SwitchSchedule{
		{Reboot: faults.CrashSchedule{Fixed: []uint64{7}}},
		nil,
		nil,
	}
	got, ref, f := runPair(t, 3, scheds, nil, pkts)

	degraded := checkDegradedOrIdentical(t, got, ref, 0)
	if degraded == 0 {
		t.Fatal("origin reboot degraded no window")
	}
	if degraded == len(got) {
		t.Fatal("every window degraded — the fault did not stay contained")
	}
	if f.Node(1).Stats().StaleEpochStamps == 0 {
		t.Fatal("downstream switch never saw (and rejected) a stale-epoch stamp")
	}
	if f.Node(1).Stats().SubWindows == 0 {
		t.Fatal("downstream switch collected nothing")
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("stale-stamp invariant violated: %v", v)
	}
}

// TestFabricChaosSeededReboots is the full chaos sweep: seeded
// probabilistic reboot schedules on all three switches across several
// seeds. Whatever the schedule does, every merged window must be
// byte-identical to the fault-free run or explicitly marked degraded with
// the failed switch's gap, and no stale-epoch stamp may ever be monitored.
func TestFabricChaosSeededReboots(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3, 4, 5}, 240, 2000*ms)
	// Nightly sweep: OMNIWINDOW_EXTRA_SEEDS appends derived seeds to the
	// fixed 1..5 table.
	seeds := append([]uint64{1, 2, 3, 4, 5}, faults.ExtraSeeds(3)...)
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			scheds := []*faults.SwitchSchedule{
				{Reboot: faults.CrashSchedule{Seed: seed, Prob: 0.12}},
				{Reboot: faults.CrashSchedule{Seed: seed + 100, Prob: 0.12}},
				{Reboot: faults.CrashSchedule{Seed: seed + 200, Prob: 0.12}},
			}
			got, ref, f := runPair(t, 3, scheds, nil, pkts)
			if len(got) != len(ref) {
				t.Fatalf("window counts: %d vs %d", len(got), len(ref))
			}
			for i := range got {
				if contentEqual(got[i], ref[i]) {
					continue
				}
				if !got[i].Degraded || len(got[i].Gaps) == 0 {
					t.Fatalf("window %d differs but is not marked degraded with a gap:\n%s\nvs\n%s",
						i, describe(got[i]), describe(ref[i]))
				}
				for k, v := range got[i].Values {
					if v > ref[i].Values[k] {
						t.Fatalf("window %d key %v overcounts: %d > %d", i, k, v, ref[i].Values[k])
					}
				}
			}
			if v := f.Violations(); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
		})
	}
}

// TestFabricBeaconsHealReboot: with controller beacons the rebooted origin
// resyncs at the very boundary it died on, so no stale stamp ever reaches
// a downstream switch and only the windows overlapping the wiped state are
// degraded.
func TestFabricBeaconsHealReboot(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3}, 240, 2000*ms)
	scheds := []*faults.SwitchSchedule{
		{Reboot: faults.CrashSchedule{Fixed: []uint64{7}}},
		nil,
		nil,
	}
	beacons := func(c *Config) { c.Beacons = true }
	got, ref, f := runPair(t, 3, scheds, beacons, pkts)

	if n := f.Node(1).Stats().StaleEpochStamps; n != 0 {
		t.Fatalf("beacons enabled but %d stale stamps reached downstream", n)
	}
	degraded := checkDegradedOrIdentical(t, got, ref, 0)
	if degraded == 0 {
		t.Fatal("wiped state degraded no window")
	}
	if degraded > 2 {
		t.Fatalf("beacon resync should contain the damage, got %d degraded windows", degraded)
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricQuarantine: an unsynced origin keeps emitting stale stamps;
// after StrikeLimit strikes the controller quarantines it, the next switch
// takes over stamping, and after QuarantineFor sub-windows the switch is
// resynced and readmitted with a clean slate.
func TestFabricQuarantine(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3}, 300, 3000*ms)
	scheds := []*faults.SwitchSchedule{
		{Reboot: faults.CrashSchedule{Fixed: []uint64{5}}},
		nil,
		nil,
	}
	mutate := func(c *Config) { c.StrikeLimit = 3; c.QuarantineFor = 4 }
	got, ref, f := runPair(t, 3, scheds, mutate, pkts)

	if f.Quarantined(0) {
		t.Fatal("switch 0 still quarantined at the end of the run")
	}
	var sawQuarantineGap bool
	for _, g := range f.Gaps(0) {
		if g.To > g.From {
			sawQuarantineGap = true
		}
	}
	if !sawQuarantineGap {
		t.Fatalf("no quarantine gap recorded for switch 0: %v", f.Gaps(0))
	}
	if f.Strikes(0) != 0 {
		t.Fatalf("strikes not reset after readmission: %d", f.Strikes(0))
	}
	degraded := checkDegradedOrIdentical(t, got, ref, 0)
	if degraded == 0 || degraded == len(got) {
		t.Fatalf("quarantine should degrade some but not all windows, got %d/%d", degraded, len(got))
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricStallStrikes: a switch that repeatedly misses its collection
// deadline accrues strikes and is quarantined even though it never loses
// data outright.
func TestFabricStallStrikes(t *testing.T) {
	pkts := steadyTrace([]int{1, 2}, 200, 2000*ms)
	scheds := []*faults.SwitchSchedule{
		nil,
		{Stall: faults.CrashSchedule{Fixed: []uint64{2, 3, 4}}},
	}
	f := chain(t, 2, scheds, func(c *Config) { c.StrikeLimit = 3 })
	f.Run(pkts)

	if len(f.Gaps(1)) == 0 {
		t.Fatal("stalled switch was never quarantined")
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricClockDrift: a drifting clock on a non-stamping switch is fully
// absorbed by the consistency model — downstream monitoring is driven by
// the embedded stamp, not the local clock — so merged windows are
// byte-identical to a drift-free run.
func TestFabricClockDrift(t *testing.T) {
	pkts := steadyTrace([]int{1, 2, 3}, 120, 1000*ms)
	scheds := []*faults.SwitchSchedule{
		nil,
		{ClockDriftPerSub: -3 * ms}, // 3 ms slow per sub-window
	}
	got, ref, f := runPair(t, 2, scheds, nil, pkts)
	for i := range got {
		if !contentEqual(got[i], ref[i]) || got[i].Degraded {
			t.Fatalf("drift leaked into window %d:\n%s\nvs\n%s", i, describe(got[i]), describe(ref[i]))
		}
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricSpikeExactlyOnce drives a latency-spike packet — stamped so
// long ago that no region preserves its sub-window — through a 2-switch
// chain, with the same copy delivered twice: each switch's controller must
// merge it exactly once into the stamped sub-window.
func TestFabricSpikeExactlyOnce(t *testing.T) {
	f := chain(t, 2, nil, func(c *Config) {
		for i := range c.Switches {
			c.Switches[i].Config.Grace = 350 * time.Millisecond
		}
	})
	pkts := steadyTrace([]int{1, 2}, 80, 600*ms)
	for i := range pkts {
		if pkts[i].Time > 290*ms {
			// A severely delayed packet stamped in sub-window 0 (epoch 1)
			// arrives while the switches are in sub-window 2 — with
			// sub-window 0's collection still pending thanks to the long
			// grace — and a duplicate follows. The rest of the trace then
			// pushes the fabric past sub-window 4 so the first window
			// assembles.
			spike := packet.Packet{
				Key: fk(9), Seq: 7777, Size: 100, Time: 290 * ms,
				OW: packet.OWHeader{SubWindow: 0, HasSubWindow: true, Epoch: 1},
			}
			dup := spike
			f.Process(&spike)
			f.Process(&dup)
			for ; i < len(pkts); i++ {
				f.Process(&pkts[i])
			}
			break
		}
		f.Process(&pkts[i])
	}
	spike := packet.Packet{
		Key: fk(9), Seq: 7777, Size: 100, Time: 290 * ms,
		OW: packet.OWHeader{SubWindow: 0, HasSubWindow: true, Epoch: 1},
	}

	for i := 0; i < 2; i++ {
		if got := f.Node(i).Stats().Spikes; got != 2 {
			t.Fatalf("switch %d spike copies = %d want 2", i, got)
		}
		if got := f.Node(i).Stats().SpikesMerged; got != 1 {
			t.Fatalf("switch %d merged %d spike copies, want exactly 1", i, got)
		}
	}
	// A third copy pushed straight at a controller must also be refused.
	if f.Node(0).Controller().IngestSpike(spike.Clone(), 1) {
		t.Fatal("controller merged the same spike copy twice")
	}

	windows := f.Finalize()
	if len(windows) == 0 {
		t.Fatal("no windows")
	}
	w := windows[0]
	if w.Start != 0 {
		t.Fatalf("first window starts at %d", w.Start)
	}
	if w.Values[fk(9)] != 1 {
		t.Fatalf("spike flow value = %d want 1 (merged exactly once)", w.Values[fk(9)])
	}
	if w.SpikePackets != 2 { // one merge per switch controller
		t.Fatalf("window SpikePackets = %d want 2", w.SpikePackets)
	}
	if obs := f.SpikeObservations(); obs[0] != 1 || obs[1] != 1 {
		t.Fatalf("spike observations = %v want one distinct copy per switch", obs)
	}
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFabricRaceFreeUnderRace exists so `go test -race ./internal/fabric`
// exercises the full chaos path under the race detector (the CI chaos job
// runs the whole package with -race; this test just makes the dependency
// explicit).
func TestFabricRaceFreeUnderRace(t *testing.T) {
	pkts := steadyTrace([]int{1, 2}, 60, 500*ms)
	scheds := []*faults.SwitchSchedule{
		{Reboot: faults.CrashSchedule{Fixed: []uint64{2}}},
		nil,
	}
	f := chain(t, 2, scheds, nil)
	f.Run(pkts)
	if v := f.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}
