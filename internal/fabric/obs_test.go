package fabric

import (
	"fmt"
	"strings"
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/obs"
)

// TestFabricObservability runs the quarantine chaos scenario with a shared
// observability registry and reconciles the per-switch labeled metrics and
// the merged lifecycle trace against the fabric's own accounting.
func TestFabricObservability(t *testing.T) {
	reg := obs.NewRegistry()
	pkts := steadyTrace([]int{1, 2, 3}, 300, 3000*ms)
	scheds := []*faults.SwitchSchedule{
		{Reboot: faults.CrashSchedule{Fixed: []uint64{5}}},
		nil,
		nil,
	}
	f := chain(t, 3, scheds, func(c *Config) {
		c.StrikeLimit = 3
		c.QuarantineFor = 4
		c.Obs = reg
	})
	f.Run(pkts)

	if f.Obs() != reg {
		t.Fatal("fabric did not adopt the supplied registry")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Every switch registered its deployment metrics under its own label.
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("omniwindow_switch_packets_total{switch=%q}", fmt.Sprint(i))
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	// Fabric health counters reconcile with the fabric's accounting: the
	// rebooted switch was quarantined once and readmitted once.
	counter := func(name string) int64 {
		return reg.Counter(name, "").Value()
	}
	if got := counter(`omniwindow_fabric_quarantines_total{switch="0"}`); got != 1 {
		t.Errorf("switch 0 quarantines counter = %d, want 1", got)
	}
	if got := counter(`omniwindow_fabric_readmits_total{switch="0"}`); got != 1 {
		t.Errorf("switch 0 readmits counter = %d, want 1", got)
	}
	if got := counter(`omniwindow_fabric_strikes_total{switch="0"}`); got < 3 {
		t.Errorf("switch 0 strikes counter = %d, want >= StrikeLimit 3", got)
	}
	if got := counter(`omniwindow_switch_reboots_total{switch="0"}`); got != int64(f.Node(0).Stats().Reboots) {
		t.Errorf("switch 0 reboots counter = %d, stats say %d", got, f.Node(0).Stats().Reboots)
	}
	if got := counter(`omniwindow_fabric_quarantines_total{switch="1"}`); got != 0 {
		t.Errorf("healthy switch 1 has %d quarantines", got)
	}

	// The merged trace ring interleaves the failure lifecycle with the
	// window lifecycle.
	seen := make(map[obs.Stage]bool)
	for _, e := range reg.Ring(0).Snapshot() {
		seen[e.Stage] = true
	}
	for _, stage := range []obs.Stage{
		obs.StageAnnounced, obs.StageCollected, obs.StageWindowEmitted,
		obs.StageReboot, obs.StageEpochResync, obs.StageQuarantine, obs.StageReadmit,
	} {
		if !seen[stage] {
			t.Errorf("trace ring missing stage %v", stage)
		}
	}
}
