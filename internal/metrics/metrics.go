// Package metrics implements the accuracy measures reported in the paper's
// evaluation: precision, recall and F1 over detected-anomaly sets, average
// relative error (ARE) for per-flow estimates, and average ARE (AARE)
// across windows for cardinality-style tasks.
//
// These are offline quality measures computed against ground truth after a
// run. Runtime observability — counters, latency histograms and the
// window-lifecycle trace a live pipeline exposes on Config.DebugAddr — is
// the separate internal/obs package.
package metrics

import (
	"math"

	"omniwindow/internal/packet"
)

// Detection summarizes a detection task's outcome against ground truth.
type Detection struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Compare computes detection counts for a reported set against a truth set.
func Compare(reported, truth map[packet.FlowKey]bool) Detection {
	var d Detection
	for k := range reported {
		if truth[k] {
			d.TruePositives++
		} else {
			d.FalsePositives++
		}
	}
	for k := range truth {
		if !reported[k] {
			d.FalseNegatives++
		}
	}
	return d
}

// Precision returns TP/(TP+FP). An empty report has precision 1 by
// convention (nothing wrongly reported).
func (d Detection) Precision() float64 {
	if d.TruePositives+d.FalsePositives == 0 {
		return 1
	}
	return float64(d.TruePositives) / float64(d.TruePositives+d.FalsePositives)
}

// Recall returns TP/(TP+FN). An empty truth set has recall 1 by convention.
func (d Detection) Recall() float64 {
	if d.TruePositives+d.FalseNegatives == 0 {
		return 1
	}
	return float64(d.TruePositives) / float64(d.TruePositives+d.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (d Detection) F1() float64 {
	p, r := d.Precision(), d.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates another detection outcome (used to aggregate across
// windows before computing overall precision/recall).
func (d *Detection) Add(o Detection) {
	d.TruePositives += o.TruePositives
	d.FalsePositives += o.FalsePositives
	d.FalseNegatives += o.FalseNegatives
}

// RelativeError returns |est-truth|/truth; if truth is 0 it returns the
// absolute estimate (the standard convention that avoids division by zero
// while still penalizing spurious mass).
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}

// ARE computes the average relative error of per-flow estimates against
// per-flow truth, averaged over the flows present in truth.
func ARE(est, truth map[packet.FlowKey]uint64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for k, t := range truth {
		sum += RelativeError(float64(est[k]), float64(t))
	}
	return sum / float64(len(truth))
}

// Reliability is the controller's per-sub-window AFR delivery accounting
// (§8): how many records the switch announced, how many distinct sequence
// numbers arrived, how many of those arrived only through NACK-driven
// retransmission, and how many are still missing. Observability tests use
// it to assert exact delivery accounting under injected faults.
type Reliability struct {
	// Expected is the key count announced by the trigger packet, or -1
	// when no trigger arrived (the gap detector is blind then).
	Expected int
	// Received is the number of distinct AFR sequence numbers seen,
	// whether by first delivery or by recovery.
	Received int
	// Recovered is the subset of Received that arrived only via
	// retransmission.
	Recovered int
	// Missing is the number of announced sequence numbers still absent
	// (0 when Expected is unknown).
	Missing int
	// Shed is the number of AFRs admission control dropped for this
	// sub-window under overload (recorded by header peek before the
	// discard). Shed records that were later recovered via NACK still
	// count here: Shed measures overload pressure, Missing measures the
	// damage left after recovery.
	Shed int
}

// Complete reports whether every announced AFR arrived. An unknown
// Expected is not complete: the controller cannot vouch for a sub-window
// whose trigger it never saw.
func (r Reliability) Complete() bool { return r.Expected >= 0 && r.Missing == 0 }

// LossRate is the fraction of announced AFRs still missing (0 when the
// announcement is unknown or empty).
func (r Reliability) LossRate() float64 {
	if r.Expected <= 0 {
		return 0
	}
	return float64(r.Missing) / float64(r.Expected)
}

// Add accumulates another sub-window's accounting. Unknown announcements
// (Expected -1) poison the sum: the total is unknown too.
func (r *Reliability) Add(o Reliability) {
	if r.Expected < 0 || o.Expected < 0 {
		r.Expected = -1
	} else {
		r.Expected += o.Expected
	}
	r.Received += o.Received
	r.Recovered += o.Recovered
	r.Missing += o.Missing
	r.Shed += o.Shed
}

// Mean returns the arithmetic mean of xs (0 for an empty slice). AARE is
// the mean of per-window AREs, so callers collect one ARE per window and
// average with Mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (0..1) of xs using nearest-rank on a
// copied, sorted slice. Used by latency breakdowns.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// insertion sort: slices here are small (per-window latencies)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
