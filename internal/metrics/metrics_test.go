package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func key(i int) packet.FlowKey { return packet.FlowKey{SrcIP: uint32(i)} }

func TestComparePerfect(t *testing.T) {
	truth := map[packet.FlowKey]bool{key(1): true, key(2): true}
	d := Compare(truth, truth)
	if d.Precision() != 1 || d.Recall() != 1 || d.F1() != 1 {
		t.Fatalf("perfect detection scored %+v", d)
	}
}

func TestCompareMixed(t *testing.T) {
	truth := map[packet.FlowKey]bool{key(1): true, key(2): true, key(3): true, key(4): true}
	reported := map[packet.FlowKey]bool{key(1): true, key(2): true, key(9): true}
	d := Compare(reported, truth)
	if d.TruePositives != 2 || d.FalsePositives != 1 || d.FalseNegatives != 2 {
		t.Fatalf("counts wrong: %+v", d)
	}
	if math.Abs(d.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", d.Precision())
	}
	if math.Abs(d.Recall()-0.5) > 1e-12 {
		t.Fatalf("recall = %v", d.Recall())
	}
}

func TestEmptyConventions(t *testing.T) {
	var d Detection
	if d.Precision() != 1 || d.Recall() != 1 {
		t.Fatal("empty sets should score 1 by convention")
	}
	if d.F1() != 1 {
		t.Fatalf("F1 of empty detection = %v", d.F1())
	}
	bad := Detection{FalsePositives: 3}
	if bad.Precision() != 0 {
		t.Fatalf("all-FP precision = %v", bad.Precision())
	}
}

func TestDetectionAdd(t *testing.T) {
	a := Detection{TruePositives: 1, FalsePositives: 2, FalseNegatives: 3}
	a.Add(Detection{TruePositives: 4, FalsePositives: 5, FalseNegatives: 6})
	if a != (Detection{TruePositives: 5, FalsePositives: 7, FalseNegatives: 9}) {
		t.Fatalf("Add result %+v", a)
	}
}

func TestPrecisionRecallBoundsProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		d := Detection{TruePositives: int(tp), FalsePositives: int(fp), FalseNegatives: int(fn)}
		p, r, f1 := d.Precision(), d.Recall(), d.F1()
		return p >= 0 && p <= 1 && r >= 0 && r <= 1 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(5, 0); got != 5 {
		t.Fatalf("zero-truth convention violated: %v", got)
	}
}

func TestARE(t *testing.T) {
	truth := map[packet.FlowKey]uint64{key(1): 100, key(2): 200}
	est := map[packet.FlowKey]uint64{key(1): 110, key(2): 180}
	want := (0.1 + 0.1) / 2
	if got := ARE(est, truth); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ARE = %v want %v", got, want)
	}
	if ARE(nil, nil) != 0 {
		t.Fatal("empty ARE should be 0")
	}
	// Missing estimates count as 0 (full error of 1.0 each).
	if got := ARE(nil, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARE with missing estimates = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	// Percentile must not reorder its input.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestReliability(t *testing.T) {
	r := Reliability{Expected: 10, Received: 8, Recovered: 2}
	if !r.Complete() {
		t.Fatalf("recovered sub-window not complete: %+v", r)
	}
	if r.LossRate() != 0 {
		t.Fatalf("LossRate = %v", r.LossRate())
	}

	r = Reliability{Expected: 10, Received: 8, Missing: 2}
	if r.Complete() {
		t.Fatal("sub-window with gaps reported complete")
	}
	if got := r.LossRate(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("LossRate = %v, want 0.2", got)
	}

	// Unknown expectations (trigger never arrived) are never complete.
	r = Reliability{Expected: -1}
	if r.Complete() {
		t.Fatal("unknown expectation reported complete")
	}
}

func TestReliabilityAdd(t *testing.T) {
	a := Reliability{Expected: 10, Received: 9, Recovered: 1}
	b := Reliability{Expected: 5, Received: 3, Missing: 2}
	sum := a
	sum.Add(b)
	if sum.Expected != 15 || sum.Received != 12 || sum.Recovered != 1 || sum.Missing != 2 {
		t.Fatalf("sum = %+v", sum)
	}
	if sum.Complete() {
		t.Fatal("sum with missing records reported complete")
	}

	// One unknown constituent poisons the sum's expectation.
	sum = a
	sum.Add(Reliability{Expected: -1})
	if sum.Expected != -1 || sum.Complete() {
		t.Fatalf("unknown constituent not poisonous: %+v", sum)
	}
}
