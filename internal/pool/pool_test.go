package pool

import (
	"sync"
	"testing"

	"omniwindow/internal/packet"
)

// reset restores the package to a clean enabled state and drains every
// free list, so tests do not see each other's buffers.
func reset(t *testing.T) {
	t.Helper()
	SetEnabled(true)
	SetDebug(false)
	for i := range bufClasses {
		bufClasses[i].mu.Lock()
		bufClasses[i].free = nil
		bufClasses[i].mu.Unlock()
		afrClasses[i].mu.Lock()
		afrClasses[i].free = nil
		afrClasses[i].mu.Unlock()
	}
	t.Cleanup(func() {
		SetEnabled(true)
		SetDebug(false)
	})
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 17, numClasses - 1}, {1<<17 + 1, -1},
	}
	for _, tc := range cases {
		if got := classFor(tc.n); got != tc.class {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct{ c, class int }{
		{63, -1}, {64, 0}, {127, 0}, {128, 1}, {1 << 17, numClasses - 1},
		{1<<17 + 500, -1},
	}
	for _, tc := range cases {
		if got := classOf(tc.c); got != tc.class {
			t.Errorf("classOf(%d) = %d, want %d", tc.c, got, tc.class)
		}
	}
}

// TestBufReuse: a put buffer comes back on the next get of its class,
// with the requested length and at least the requested capacity.
func TestBufReuse(t *testing.T) {
	reset(t)
	b := GetBuf(100)
	if len(b) != 100 || cap(b) < 100 {
		t.Fatalf("GetBuf(100): len=%d cap=%d", len(b), cap(b))
	}
	b[0] = 42
	PutBuf(b)
	b2 := GetBuf(90)
	if len(b2) != 90 {
		t.Fatalf("GetBuf(90): len=%d", len(b2))
	}
	if &b2[0] != &b[0] {
		t.Fatal("second get did not reuse the put buffer")
	}
}

func TestAFRReuse(t *testing.T) {
	reset(t)
	s := GetAFRs(100)
	if len(s) != 0 || cap(s) < 100 {
		t.Fatalf("GetAFRs(100): len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, packet.AFR{Seq: 7})
	PutAFRs(s)
	s2 := GetAFRs(70) // same size class

	if len(s2) != 0 {
		t.Fatalf("reused slice has len %d, want 0", len(s2))
	}
	s2 = append(s2, packet.AFR{})
	if &s2[0] != &s[0] {
		t.Fatal("second get did not reuse the put slice")
	}
}

// TestOversizedFallsThrough: requests above the largest class are plain
// allocations and their put is discarded, never pooled.
func TestOversizedFallsThrough(t *testing.T) {
	reset(t)
	before := Stats()
	b := GetBuf(1<<17 + 1)
	if len(b) != 1<<17+1 {
		t.Fatalf("oversized len=%d", len(b))
	}
	PutBuf(b)
	after := Stats()
	if after.News-before.News != 1 || after.Drops-before.Drops != 1 {
		t.Fatalf("oversized buffer not alloc+dropped: %+v -> %+v", before, after)
	}
}

// TestDisabled: with pooling off, gets are fresh and puts discard.
func TestDisabled(t *testing.T) {
	reset(t)
	SetEnabled(false)
	b := GetBuf(64)
	PutBuf(b)
	b2 := GetBuf(64)
	if cap(b) > 0 && cap(b2) > 0 && &b[:1][0] == &b2[:1][0] {
		t.Fatal("disabled pool reused a buffer")
	}
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	SetEnabled(true)
	s := GetAFRs(10)
	SetEnabled(false)
	PutAFRs(s) // disabled put: dropped, not pooled
	SetEnabled(true)
	s2 := GetAFRs(10)
	s, s2 = append(s, packet.AFR{}), append(s2, packet.AFR{})
	if &s[0] == &s2[0] {
		t.Fatal("buffer put while disabled was pooled")
	}
}

// TestSteadyStateNoNewAllocations: once warm, a get/put cycle never
// misses — this is the property the allocs/op gates depend on.
func TestSteadyStateNoNewAllocations(t *testing.T) {
	reset(t)
	for i := 0; i < 8; i++ { // warm
		PutBuf(GetBuf(1024))
		PutAFRs(GetAFRs(256))
	}
	before := Stats()
	for i := 0; i < 1000; i++ {
		b := GetBuf(1024)
		PutBuf(b)
		s := GetAFRs(256)
		PutAFRs(s)
	}
	after := Stats()
	if after.News != before.News {
		t.Fatalf("steady state allocated: %d new buffers", after.News-before.News)
	}
}

// TestClassCapBounded: the free list never retains more than maxPerClass
// buffers, so a burst cannot pin unbounded memory.
func TestClassCapBounded(t *testing.T) {
	reset(t)
	bufs := make([][]byte, maxPerClass+50)
	for i := range bufs {
		bufs[i] = GetBuf(64)
	}
	before := Stats()
	for _, b := range bufs {
		PutBuf(b)
	}
	after := Stats()
	if got := after.Drops - before.Drops; got != 50 {
		t.Fatalf("expected 50 over-capacity drops, got %d", got)
	}
	if n := len(bufClasses[0].free); n != maxPerClass {
		t.Fatalf("class retained %d buffers, want %d", n, maxPerClass)
	}
}

// TestDebugDoublePutPanics: returning the same buffer twice is the
// corruption mode the debug checks exist for.
func TestDebugDoublePutPanics(t *testing.T) {
	reset(t)
	SetDebug(true)
	b := GetBuf(64)
	PutBuf(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double put did not panic under debug")
		}
	}()
	PutBuf(b)
}

func TestDebugAFRDoublePutPanics(t *testing.T) {
	reset(t)
	SetDebug(true)
	s := GetAFRs(64)
	PutAFRs(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double AFR put did not panic under debug")
		}
	}()
	PutAFRs(s)
}

// TestDebugLeakTracking: Outstanding counts gotten-but-not-put buffers
// and drops to zero when the workload balances.
func TestDebugLeakTracking(t *testing.T) {
	reset(t)
	SetDebug(true)
	b1, b2 := GetBuf(64), GetBuf(128)
	s := GetAFRs(64)
	if got := Outstanding(); got != 3 {
		t.Fatalf("Outstanding = %d, want 3", got)
	}
	PutBuf(b1)
	PutBuf(b2)
	PutAFRs(s)
	if got := Outstanding(); got != 0 {
		t.Fatalf("Outstanding after balanced puts = %d, want 0", got)
	}
}

// TestDebugForeignPutAllowed: slices that never came from the pool (e.g.
// restored snapshot state) may be put; they enter the free list normally.
func TestDebugForeignPutAllowed(t *testing.T) {
	reset(t)
	SetDebug(true)
	foreign := make([]packet.AFR, 0, 64)
	PutAFRs(foreign) // must not panic
	s := GetAFRs(64)
	s = append(s, packet.AFR{})
	if &s[0] != &foreign[:1][0] {
		t.Fatal("foreign slice was not pooled")
	}
	PutAFRs(s)
}

// TestConcurrentHammer exercises the free lists from many goroutines;
// meaningful under -race.
func TestConcurrentHammer(t *testing.T) {
	reset(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := GetBuf(64 << (i % 4))
				b[0] = byte(g)
				PutBuf(b)
				s := GetAFRs(32 << (i % 4))
				s = append(s, packet.AFR{Seq: uint32(i)})
				PutAFRs(s)
			}
		}(g)
	}
	wg.Wait()
}
