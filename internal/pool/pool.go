// Package pool provides size-classed free lists for the hot-path buffers
// the telemetry pipeline would otherwise allocate per frame: raw datagram
// bytes between the collector's socket reader and its ingest workers, and
// the per-sub-window AFR slices the controller shards accumulate routed
// records in. Both churn at line rate, so per-record garbage — not the
// window algorithms — would be the first throughput wall (DESIGN.md,
// "Hot-path memory model").
//
// The free lists are explicit mutex-guarded stacks rather than sync.Pool:
// a GC cycle must not empty them, because the allocs/op regression gates
// pin the steady state at zero and a pool that refills after every GC
// would make those gates flake. Capacity is bounded per class, so a burst
// can never pin more than a fixed amount of memory.
//
// Ownership rules (enforced by the debug checks):
//
//   - A Get transfers ownership to the caller; the buffer is theirs until
//     they Put it back or drop it (dropping leaks nothing — the GC takes
//     over — but defeats reuse).
//   - Put transfers ownership to the pool. The caller must not retain any
//     reference: the next Get may hand the same memory to another
//     goroutine. Putting the same buffer twice is therefore corruption;
//     debug mode panics on it.
//   - Putting a buffer that did not come from a Get is allowed (restored
//     snapshots feed their slices in), as long as the caller owned it.
//
// SetEnabled(false) turns the package into a pass-through (Get allocates
// fresh, Put discards), which is how the differential suite proves pooled
// and unpooled runs produce byte-identical windows.
package pool

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"omniwindow/internal/packet"
)

const (
	// minClassBits..maxClassBits bound the pooled size classes (powers of
	// two). Requests above the largest class fall through to plain make:
	// they are not hot-path sized.
	minClassBits = 6  // 64 bytes / 64 records
	maxClassBits = 17 // 128 KiB — covers the collector's 64 KiB reads
	numClasses   = maxClassBits - minClassBits + 1

	// maxPerClass bounds each class's free list so a burst cannot pin
	// unbounded memory in the pool.
	maxPerClass = 256
)

var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns pooling on or off globally. Off, Get allocates fresh
// and Put discards — the unpooled baseline of the differential tests.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether pooling is on.
func Enabled() bool { return enabled.Load() }

// Counters is a snapshot of the pool's activity, for tests asserting that
// the steady state actually reuses (News stops growing once warm).
type Counters struct {
	Gets  int64 // buffers handed out
	Puts  int64 // buffers accepted back (retained or dropped)
	News  int64 // Gets served by a fresh allocation (pool miss)
	Drops int64 // Puts discarded (class full, oversized, or disabled)
}

var counters struct {
	gets, puts, news, drops atomic.Int64
}

// Stats snapshots the activity counters.
func Stats() Counters {
	return Counters{
		Gets:  counters.gets.Load(),
		Puts:  counters.puts.Load(),
		News:  counters.news.Load(),
		Drops: counters.drops.Load(),
	}
}

// classFor returns the smallest class whose capacity fits n, or -1 when n
// exceeds the largest class.
func classFor(n int) int {
	c := 0
	for n > 1<<(minClassBits+c) {
		c++
		if c >= numClasses {
			return -1
		}
	}
	return c
}

// classOf returns the largest class whose capacity is <= c (where a
// returned buffer still satisfies every Get of that class), or -1 when c
// is below the smallest class or above the largest (oversized buffers are
// dropped, not pinned).
func classOf(c int) int {
	if c < 1<<minClassBits || c > 1<<maxClassBits {
		return -1
	}
	k := numClasses - 1
	for c < 1<<(minClassBits+k) {
		k--
	}
	return k
}

// freelist is one size class's stack. A plain mutex-guarded stack, not a
// sync.Pool: GC must not drain it (see the package comment).
type freelist[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// get pops a buffer with cap >= 1<<(minClassBits+class), or nil.
func (fl *freelist[T]) get() []T {
	fl.mu.Lock()
	n := len(fl.free)
	if n == 0 {
		fl.mu.Unlock()
		return nil
	}
	b := fl.free[n-1]
	fl.free[n-1] = nil
	fl.free = fl.free[:n-1]
	fl.mu.Unlock()
	return b
}

// put pushes a buffer; reports whether it was retained.
func (fl *freelist[T]) put(b []T) bool {
	fl.mu.Lock()
	if len(fl.free) >= maxPerClass {
		fl.mu.Unlock()
		return false
	}
	fl.free = append(fl.free, b)
	fl.mu.Unlock()
	return true
}

var (
	bufClasses [numClasses]freelist[byte]
	afrClasses [numClasses]freelist[packet.AFR]
)

// GetBuf returns a byte buffer of length n (capacity possibly larger).
// Contents are unspecified: the caller overwrites before reading.
func GetBuf(n int) []byte {
	counters.gets.Add(1)
	if c := classFor(n); enabled.Load() && c >= 0 {
		if b := bufClasses[c].get(); b != nil {
			debugGet(bufID(b))
			return b[:n]
		}
		counters.news.Add(1)
		b := make([]byte, n, 1<<(minClassBits+c))
		debugNew(bufID(b))
		return b
	}
	counters.news.Add(1)
	return make([]byte, n)
}

// PutBuf returns a buffer to its size class. The caller must not retain
// any reference to b afterwards.
func PutBuf(b []byte) {
	counters.puts.Add(1)
	if cap(b) == 0 {
		return
	}
	c := classOf(cap(b))
	if !enabled.Load() || c < 0 {
		counters.drops.Add(1)
		return
	}
	retained := bufClasses[c].put(b[:cap(b)])
	if !retained {
		counters.drops.Add(1)
	}
	debugPut(bufID(b), retained)
}

// GetAFRs returns an empty AFR slice with capacity at least n, ready to
// append into.
func GetAFRs(n int) []packet.AFR {
	counters.gets.Add(1)
	if c := classFor(n); enabled.Load() && c >= 0 {
		if s := afrClasses[c].get(); s != nil {
			debugGet(afrID(s))
			return s[:0]
		}
		counters.news.Add(1)
		s := make([]packet.AFR, 0, 1<<(minClassBits+c))
		debugNew(afrID(s))
		return s
	}
	counters.news.Add(1)
	return make([]packet.AFR, 0, n)
}

// PutAFRs returns an AFR slice to its size class (nil is a no-op). The
// caller must not retain any reference to s afterwards.
func PutAFRs(s []packet.AFR) {
	counters.puts.Add(1)
	if cap(s) == 0 {
		return
	}
	c := classOf(cap(s))
	if !enabled.Load() || c < 0 {
		counters.drops.Add(1)
		return
	}
	retained := afrClasses[c].put(s[:0])
	if !retained {
		counters.drops.Add(1)
	}
	debugPut(afrID(s), retained)
}

// bufID and afrID identify a buffer by its backing array, stable across
// reslicing — what the debug double-put check keys on.
func bufID(b []byte) unsafe.Pointer { return unsafe.Pointer(unsafe.SliceData(b[:cap(b)])) }
func afrID(s []packet.AFR) unsafe.Pointer {
	return unsafe.Pointer(unsafe.SliceData(s[:cap(s)]))
}

// Debug tracking: off by default (one atomic load on the hot path). On, a
// double Put panics immediately — the failure mode where two owners share
// one buffer is otherwise a heisenbug — and Outstanding counts buffers
// handed out but never returned, for leak assertions in tests.
var debugOn atomic.Bool

var dbg struct {
	mu    sync.Mutex
	live  map[unsafe.Pointer]bool // gotten, not yet put
	freed map[unsafe.Pointer]bool // resident in a free list
}

// SetDebug toggles leak/double-put tracking. Enabling resets the tracked
// state; meant for tests, not production (every Get/Put takes a lock).
func SetDebug(on bool) {
	dbg.mu.Lock()
	defer dbg.mu.Unlock()
	debugOn.Store(on)
	dbg.live = map[unsafe.Pointer]bool{}
	dbg.freed = map[unsafe.Pointer]bool{}
}

// Outstanding reports buffers handed out by Get and not yet Put while
// debug tracking was on — the leak count a test asserts to be zero after
// a balanced workload.
func Outstanding() int {
	dbg.mu.Lock()
	defer dbg.mu.Unlock()
	return len(dbg.live)
}

func debugNew(id unsafe.Pointer) {
	if !debugOn.Load() {
		return
	}
	dbg.mu.Lock()
	dbg.live[id] = true
	dbg.mu.Unlock()
}

func debugGet(id unsafe.Pointer) {
	if !debugOn.Load() {
		return
	}
	dbg.mu.Lock()
	delete(dbg.freed, id)
	dbg.live[id] = true
	dbg.mu.Unlock()
}

func debugPut(id unsafe.Pointer, retained bool) {
	if !debugOn.Load() {
		return
	}
	dbg.mu.Lock()
	defer dbg.mu.Unlock()
	if dbg.freed[id] {
		panic("pool: double put — buffer is already in the free list")
	}
	delete(dbg.live, id)
	if retained {
		dbg.freed[id] = true
	}
}
