package wire

import (
	"testing"
	"testing/quick"

	"omniwindow/internal/packet"
)

func samplePacket() *packet.Packet {
	return &packet.Packet{OW: packet.OWHeader{
		Flag:          packet.OWAFR,
		SubWindow:     42,
		HasSubWindow:  true,
		Epoch:         5,
		Index:         7,
		KeyCount:      3,
		App:           1,
		Key:           packet.FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 1234, DstPort: 443, Proto: 6},
		UserSignal:    99,
		HasUserSignal: true,
		AFRs: []packet.AFR{
			{Key: packet.FlowKey{SrcIP: 1, Proto: 17}, Attr: 1000, SubWindow: 42, Seq: 0, App: 0,
				Distinct: [4]uint64{0xFF, 1, 2, 3}, HasDistinct: true},
			{Key: packet.FlowKey{SrcIP: 2, Proto: 6}, Attr: 2000, SubWindow: 42, Seq: 1, App: 1},
		},
		RawWords: []uint64{10, 20, 30},
		Seqs:     []uint32{3, 9, 27},
	}}
}

func headerEqual(a, b *packet.OWHeader) bool {
	if a.Flag != b.Flag || a.SubWindow != b.SubWindow || a.HasSubWindow != b.HasSubWindow ||
		a.Epoch != b.Epoch ||
		a.Index != b.Index || a.KeyCount != b.KeyCount || a.App != b.App || a.Key != b.Key ||
		a.UserSignal != b.UserSignal || a.HasUserSignal != b.HasUserSignal ||
		len(a.AFRs) != len(b.AFRs) || len(a.RawWords) != len(b.RawWords) ||
		len(a.Seqs) != len(b.Seqs) {
		return false
	}
	for i := range a.AFRs {
		if a.AFRs[i] != b.AFRs[i] {
			return false
		}
	}
	for i := range a.RawWords {
		if a.RawWords[i] != b.RawWords[i] {
			return false
		}
	}
	for i := range a.Seqs {
		if a.Seqs[i] != b.Seqs[i] {
			return false
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := Encode(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EncodedSize(p) {
		t.Fatalf("encoded %d bytes, EncodedSize said %d", len(buf), EncodedSize(p))
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !headerEqual(&p.OW, &q.OW) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p.OW, q.OW)
	}
}

func TestRoundTripEmptyHeader(t *testing.T) {
	p := &packet.Packet{}
	buf, err := Encode(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !headerEqual(&p.OW, &q.OW) {
		t.Fatal("empty header round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(flag uint8, sw uint64, idx, kc uint32, app uint8, attr uint64, seq uint32, d0, d1 uint64) bool {
		p := &packet.Packet{OW: packet.OWHeader{
			Flag: packet.OWFlag(flag % 11), SubWindow: sw, HasSubWindow: sw%2 == 0,
			Index: idx, KeyCount: kc, App: app,
			AFRs: []packet.AFR{{Attr: attr, SubWindow: sw, Seq: seq, App: app,
				Distinct: [4]uint64{d0, d1}, HasDistinct: d0%2 == 0}},
		}}
		buf, err := Encode(nil, p)
		if err != nil {
			return false
		}
		q, err := Decode(buf)
		return err == nil && headerEqual(&p.OW, &q.OW)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, 0, 4096)
	out, _ := Encode(buf, p)
	if &out[0] != &buf[:1][0] {
		t.Fatal("large-enough buffer was not reused")
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket()
	buf, _ := Encode(nil, p)

	if _, err := Decode(buf[:4]); err != ErrTruncated {
		t.Fatalf("short datagram: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 0xFF
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[2] = 99
	if _, err := Decode(bad); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
	// Truncated body: lengths promise more than present.
	if _, err := Decode(buf[:len(buf)-1]); err != ErrTruncated {
		t.Fatalf("truncated body: %v", err)
	}
	// Corrupted body: frame length intact, one bit flipped mid-payload.
	bad = append([]byte(nil), buf...)
	bad[len(bad)/2] ^= 0x10
	if _, err := Decode(bad); err != ErrChecksum {
		t.Fatalf("corrupted body: %v", err)
	}
	// Corrupted trailer: the CRC itself flipped.
	bad = append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Decode(bad); err != ErrChecksum {
		t.Fatalf("corrupted checksum: %v", err)
	}
}

func TestRoundTripNack(t *testing.T) {
	p := &packet.Packet{OW: packet.OWHeader{
		Flag:         packet.OWNack,
		SubWindow:    7,
		HasSubWindow: true,
		Seqs:         []uint32{0, 5, 1 << 20},
	}}
	buf, err := Encode(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !headerEqual(&p.OW, &q.OW) {
		t.Fatalf("NACK round trip mismatch:\n%+v\n%+v", p.OW, q.OW)
	}
}

func TestEncodeSeqBound(t *testing.T) {
	p := &packet.Packet{}
	p.OW.Seqs = make([]uint32, MaxSeqsPerDatagram+1)
	if _, err := Encode(nil, p); err == nil {
		t.Fatal("oversized NACK seq list accepted")
	}
}

func TestEncodeAFRBound(t *testing.T) {
	p := &packet.Packet{}
	p.OW.AFRs = make([]packet.AFR, MaxAFRsPerDatagram+1)
	if _, err := Encode(nil, p); err == nil {
		t.Fatal("oversized AFR list accepted")
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = Encode(buf, p)
	}
}

func BenchmarkDecode(b *testing.B) {
	p := samplePacket()
	buf, _ := Encode(nil, p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
