package wire

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
)

// fuzzSeeds are well-formed frames of every kind the collector path
// handles, plus fault-layer-mangled variants (truncated and corrupted
// datagrams exactly as the chaos injector produces them).
func fuzzSeeds() [][]byte {
	var out [][]byte
	add := func(p *packet.Packet) {
		buf, err := Encode(nil, p)
		if err != nil {
			panic(err)
		}
		out = append(out, buf)
	}
	add(samplePacket())
	add(&packet.Packet{})
	add(&packet.Packet{OW: packet.OWHeader{
		Flag: packet.OWNack, SubWindow: 5, HasSubWindow: true,
		Seqs: []uint32{1, 2, 3, 500},
	}})
	add(&packet.Packet{OW: packet.OWHeader{
		Flag: packet.OWRetransmit, SubWindow: 5, HasSubWindow: true,
		AFRs: []packet.AFR{{Attr: 9, SubWindow: 5, Seq: 2}},
	}})
	// Epoch-carrying stamps (wire v3): a synced first-hop stamp and a
	// latency-spike copy bound for the controller's software path.
	add(&packet.Packet{OW: packet.OWHeader{
		SubWindow: 7, HasSubWindow: true, Epoch: 3,
		Key: packet.FlowKey{SrcIP: 9, Proto: 6},
	}})
	add(&packet.Packet{OW: packet.OWHeader{
		Flag: packet.OWLatencySpike, SubWindow: 2, HasSubWindow: true, Epoch: 4,
		Key: packet.FlowKey{SrcIP: 12, DstIP: 8, Proto: 17},
	}})

	// Mangled variants: run each frame through a truncate-always and a
	// corrupt-always injector, as in-flight damage from the fault layer.
	for _, cfg := range []faults.Config{
		{Seed: 1, Truncate: 1},
		{Seed: 2, Corrupt: 1},
	} {
		inj := faults.New(cfg)
		for _, frame := range out[:4] {
			out = append(out, inj.Datagrams(frame)...)
		}
	}
	return out
}

// FuzzDecode hammers the datagram parser with arbitrary bytes: it must
// never panic, and whatever it accepts must survive a semantic round trip
// (decode → encode → decode yields an identical header). Byte identity is
// not required: boolean fields accept any non-zero byte on the wire but
// re-encode canonically as 1.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{0x4F, 0x57, 2, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		checkRoundTrip(t, data, p)
	})
}

// FuzzDecodePatched is the same harness with the CRC-32 trailer patched
// to match before decoding, so mutations reach the body parser instead
// of dying at the checksum gate. Anything the parser then accepts must
// still survive a semantic round trip.
func FuzzDecodePatched(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= headerSize+sumSize {
			data = append([]byte(nil), data...)
			body := data[:len(data)-sumSize]
			binary.BigEndian.PutUint32(data[len(body):], crc32.ChecksumIEEE(body))
		}
		p, err := Decode(data)
		if err != nil {
			return
		}
		checkRoundTrip(t, data, p)
	})
}

// checkRoundTrip asserts decode → encode → decode yields an identical
// header at the identical canonical size.
func checkRoundTrip(t *testing.T, data []byte, p *packet.Packet) {
	t.Helper()
	out, err := Encode(nil, p)
	if err != nil {
		// Decoded packets can exceed the encode bounds only if the
		// parser accepted more AFRs or NACK seqs than Encode allows.
		if len(p.OW.AFRs) <= MaxAFRsPerDatagram && len(p.OW.Seqs) <= MaxSeqsPerDatagram {
			t.Fatalf("re-encode failed: %v", err)
		}
		return
	}
	if len(out) != len(data) {
		t.Fatalf("canonical size mismatch: %d vs %d", len(out), len(data))
	}
	q, err := Decode(out)
	if err != nil {
		t.Fatalf("canonical form did not decode: %v", err)
	}
	if !headerEqual(&p.OW, &q.OW) {
		t.Fatalf("semantic round trip mismatch:\n%+v\n%+v", p.OW, q.OW)
	}
}
