package wire

import (
	"testing"

	"omniwindow/internal/packet"
)

// FuzzDecode hammers the datagram parser with arbitrary bytes: it must
// never panic, and whatever it accepts must survive a semantic round trip
// (decode → encode → decode yields an identical header). Byte identity is
// not required: boolean fields accept any non-zero byte on the wire but
// re-encode canonically as 1.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(nil, samplePacket())
	f.Add(seed)
	empty, _ := Encode(nil, &packet.Packet{})
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0x4F, 0x57, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(nil, p)
		if err != nil {
			// Decoded packets can exceed the encode bound only if the
			// parser accepted more AFRs than Encode allows.
			if len(p.OW.AFRs) <= MaxAFRsPerDatagram {
				t.Fatalf("re-encode failed: %v", err)
			}
			return
		}
		if len(out) != len(data) {
			t.Fatalf("canonical size mismatch: %d vs %d", len(out), len(data))
		}
		q, err := Decode(out)
		if err != nil {
			t.Fatalf("canonical form did not decode: %v", err)
		}
		if !headerEqual(&p.OW, &q.OW) {
			t.Fatalf("semantic round trip mismatch:\n%+v\n%+v", p.OW, q.OW)
		}
	})
}
