package wire

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func TestTermRecordRoundTrip(t *testing.T) {
	for _, r := range []TermRecord{
		{},
		{Term: 1, Holder: 0},
		{Term: 42, Holder: 7},
		{Term: 1<<64 - 1, Holder: 1<<32 - 1},
	} {
		buf := AppendTermRecord(nil, &r)
		if len(buf) != TermRecordSize {
			t.Fatalf("record length %d, want %d", len(buf), TermRecordSize)
		}
		got, err := DecodeTermRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
	}
}

// TestTermRecordRejectsDamage: every single-byte corruption of a term
// record must be rejected — a term file that grants authority on damaged
// bytes would let a fenced zombie write again.
func TestTermRecordRejectsDamage(t *testing.T) {
	buf := AppendTermRecord(nil, &TermRecord{Term: 9, Holder: 2})

	for cut := 1; cut <= len(buf); cut++ {
		if _, err := DecodeTermRecord(buf[:len(buf)-cut]); err != ErrTruncated {
			t.Fatalf("cut %d: %v, want ErrTruncated", cut, err)
		}
	}

	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := DecodeTermRecord(bad); err != ErrBadMagic {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), buf...)
	bad[4] = 99
	if _, err := DecodeTermRecord(bad); err != ErrBadVersion {
		t.Fatalf("bad version: %v, want ErrBadVersion", err)
	}

	for i := 5; i < len(buf); i++ {
		bad = append([]byte(nil), buf...)
		bad[i] ^= 0x20
		if _, err := DecodeTermRecord(bad); err != ErrChecksum {
			t.Fatalf("byte %d flipped: %v, want ErrChecksum", i, err)
		}
	}
}

// FuzzDecodeTermRecord: arbitrary bytes must never decode into a record
// that does not re-encode to the same bytes — the term file has exactly
// one valid byte form per (term, holder) pair.
func FuzzDecodeTermRecord(f *testing.F) {
	f.Add(AppendTermRecord(nil, &TermRecord{Term: 1}))
	f.Add(AppendTermRecord(nil, &TermRecord{Term: 5, Holder: 3}))
	f.Add(AppendTermRecord(nil, &TermRecord{Term: 1<<64 - 1, Holder: 1<<32 - 1}))
	whole := AppendTermRecord(nil, &TermRecord{Term: 2, Holder: 1})
	f.Add(whole[:TermRecordSize/2])
	flipped := append([]byte(nil), whole...)
	flipped[9] ^= 0x04
	f.Add(flipped)
	// CRC patched so mutations reach the body parser.
	patched := append([]byte(nil), flipped...)
	body := patched[:TermRecordSize-sumSize]
	binary.BigEndian.PutUint32(patched[len(body):], crc32.ChecksumIEEE(body))
	f.Add(patched)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeTermRecord(data)
		if err != nil {
			return
		}
		out := AppendTermRecord(nil, &r)
		q, err := DecodeTermRecord(out)
		if err != nil {
			t.Fatalf("canonical form did not decode: %v", err)
		}
		if q != r {
			t.Fatalf("round trip mismatch: %+v vs %+v", q, r)
		}
	})
}
