// WAL segment header codec. Every on-disk WAL segment (internal/durable)
// opens with one fixed-size header naming the chain it belongs to (a shard
// index, or the control chain) and its generation number. Recovery uses
// the header to reject files that are mislabeled, truncated before the
// first frame, or bit-rotted in the preamble — any of which quarantines
// the segment rather than feeding garbage into replay.
package wire

import (
	"encoding/binary"
	"hash/crc32"
)

// SegMagic ("OWSG") and SegVersion identify WAL segment headers. Version
// 2 added the writer's fencing term to the preamble, so every segment
// rotation durably records which term-holder opened it.
const (
	SegMagic   uint32 = 0x4F575347
	SegVersion uint8  = 2
)

// CtlChain is the SegmentHeader.Chain value for the control-log chain
// (triggers/finishes/sheds); shard chains use their shard index.
const CtlChain uint32 = ^uint32(0)

// SegmentHeader is the first SegmentHeaderSize bytes of every segment.
type SegmentHeader struct {
	Chain uint32
	Gen   uint64
	// Term is the fencing term of the writer that opened the segment
	// (internal/durable); recovery uses the newest segment term to
	// rebuild fencing authority when the term file itself is damaged.
	Term uint64
}

// SegmentHeaderSize is the fixed on-disk header length:
// magic(4) + version(1) + chain(4) + gen(8) + term(8) + crc(4).
const SegmentHeaderSize = 4 + 1 + 4 + 8 + 8 + 4

// AppendSegmentHeader appends the encoded header to buf and returns it.
func AppendSegmentHeader(buf []byte, h *SegmentHeader) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, SegMagic)
	buf = append(buf, SegVersion)
	buf = binary.BigEndian.AppendUint32(buf, h.Chain)
	buf = binary.BigEndian.AppendUint64(buf, h.Gen)
	buf = binary.BigEndian.AppendUint64(buf, h.Term)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// DecodeSegmentHeader parses the header at the front of data. ErrTruncated
// means the file ends before a full header (a crash during segment
// creation); ErrBadMagic/ErrBadVersion/ErrChecksum mean the preamble is
// damaged or foreign.
func DecodeSegmentHeader(data []byte) (SegmentHeader, error) {
	var h SegmentHeader
	if len(data) < SegmentHeaderSize {
		return h, ErrTruncated
	}
	body := data[:SegmentHeaderSize-sumSize]
	if binary.BigEndian.Uint32(body) != SegMagic {
		return h, ErrBadMagic
	}
	if body[4] != SegVersion {
		return h, ErrBadVersion
	}
	if binary.BigEndian.Uint32(data[len(body):]) != crc32.ChecksumIEEE(body) {
		return h, ErrChecksum
	}
	h.Chain = binary.BigEndian.Uint32(body[5:])
	h.Gen = binary.BigEndian.Uint64(body[9:])
	h.Term = binary.BigEndian.Uint64(body[17:])
	return h, nil
}

// VerifyWALFrame checks the first WAL frame of data without materializing
// the record (no allocation): it returns the frame's total length on
// success, ErrTruncated for an incomplete frame, and ErrChecksum for a
// complete frame whose CRC trailer does not match — the scrubber's
// bit-rot detector.
func VerifyWALFrame(data []byte) (int, error) {
	if len(data) < walHeaderSize {
		return 0, ErrTruncated
	}
	plen := int(binary.BigEndian.Uint32(data))
	total := walHeaderSize + plen + sumSize
	if plen < walFixedPayload || len(data) < total {
		return 0, ErrTruncated
	}
	payload := data[walHeaderSize : walHeaderSize+plen]
	if binary.BigEndian.Uint32(data[walHeaderSize+plen:]) != crc32.ChecksumIEEE(payload) {
		return 0, ErrChecksum
	}
	return total, nil
}
