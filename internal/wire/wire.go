// Package wire serializes the OmniWindow custom header for transmission
// between switches and the controller. On hardware the header sits
// between the Ethernet and IP headers (paper §8); here it becomes the
// payload of UDP datagrams so a controller can run as an ordinary network
// service (see the collector server in internal/controller).
//
// Encoding is fixed-layout big-endian via encoding/binary — no reflection
// on the hot path, no allocations beyond the output buffer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"omniwindow/internal/packet"
	"omniwindow/internal/pool"
)

// Magic ("OW" in ASCII) and Version identify OmniWindow datagrams.
// Version 2 added the NACK sequence list and the CRC-32 trailer; version 3
// added the synchronization epoch carried by every stamp (switch-failure
// tolerance: stale-epoch stamps from rebooted switches are rejected).
const (
	Magic   uint16 = 0x4F57
	Version uint8  = 3
)

// Errors returned by Decode.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTruncated  = errors.New("wire: truncated datagram")
	ErrChecksum   = errors.New("wire: checksum mismatch")
)

// afrSize is the encoded size of one AFR: key(13) + attr(8) +
// subwindow(8) + seq(4) + app(1) + flags(1) + distinct(32).
const afrSize = packet.KeyBytes + 8 + 8 + 4 + 1 + 1 + 32

// headerSize is the fixed prefix: magic(2) + version(1) + flag(1) +
// subwindow(8) + hasSub(1) + epoch(8) + index(4) + keycount(4) + app(1) +
// key(13) + userSignal(8) + hasUser(1) + nAFRs(2) + nRaw(2) + nSeqs(2).
const headerSize = 2 + 1 + 1 + 8 + 1 + 8 + 4 + 4 + 1 + packet.KeyBytes + 8 + 1 + 2 + 2 + 2

// sumSize is the CRC-32 (IEEE) trailer covering everything before it.
// In-flight truncation changes the frame length (caught by the count
// fields) and in-flight corruption breaks the checksum, so the fault
// layer's mangled datagrams are always detected, never silently merged.
const sumSize = 4

// MaxAFRsPerDatagram bounds records per datagram so encoded packets fit
// comfortably in one MTU-sized-ish datagram (the simulation is not bound
// by a real MTU; the bound keeps encodings sane).
const MaxAFRsPerDatagram = 128

// MaxSeqsPerDatagram bounds the missing-sequence list of one NACK; larger
// gap lists are chunked across datagrams (controller.NackPackets).
const MaxSeqsPerDatagram = 1024

// EncodedSize returns the byte size Encode will produce for p.
func EncodedSize(p *packet.Packet) int {
	return headerSize + len(p.OW.AFRs)*afrSize + len(p.OW.RawWords)*8 + len(p.OW.Seqs)*4 + sumSize
}

// Encode serializes p's OmniWindow header into buf, growing it as needed,
// and returns the resulting slice.
func Encode(buf []byte, p *packet.Packet) ([]byte, error) {
	if len(p.OW.AFRs) > MaxAFRsPerDatagram {
		return nil, fmt.Errorf("wire: %d AFRs exceed the %d per-datagram bound", len(p.OW.AFRs), MaxAFRsPerDatagram)
	}
	if len(p.OW.Seqs) > MaxSeqsPerDatagram {
		return nil, fmt.Errorf("wire: %d NACK seqs exceed the %d per-datagram bound", len(p.OW.Seqs), MaxSeqsPerDatagram)
	}
	need := EncodedSize(p)
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:0]

	buf = binary.BigEndian.AppendUint16(buf, magicValue)
	buf = append(buf, Version, byte(p.OW.Flag))
	buf = binary.BigEndian.AppendUint64(buf, p.OW.SubWindow)
	buf = append(buf, b2u(p.OW.HasSubWindow))
	buf = binary.BigEndian.AppendUint64(buf, p.OW.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, p.OW.Index)
	buf = binary.BigEndian.AppendUint32(buf, p.OW.KeyCount)
	buf = append(buf, p.OW.App)
	kb := p.OW.Key.Bytes()
	buf = append(buf, kb[:]...)
	buf = binary.BigEndian.AppendUint64(buf, p.OW.UserSignal)
	buf = append(buf, b2u(p.OW.HasUserSignal))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.OW.AFRs)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.OW.RawWords)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.OW.Seqs)))

	for i := range p.OW.AFRs {
		buf = appendAFR(buf, &p.OW.AFRs[i])
	}
	for _, w := range p.OW.RawWords {
		buf = binary.BigEndian.AppendUint64(buf, w)
	}
	for _, s := range p.OW.Seqs {
		buf = binary.BigEndian.AppendUint32(buf, s)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode parses a datagram produced by Encode into a fresh packet holding
// only the OmniWindow header (the simulated payload does not travel).
func Decode(data []byte) (*packet.Packet, error) {
	p := &packet.Packet{}
	if err := DecodeInto(p, data); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeInto parses a datagram produced by Encode into p, reusing p's
// slice capacity instead of allocating per frame — the collector's ingest
// workers decode every datagram into one long-lived packet, so the steady
// state allocates nothing. AFR capacity grows through internal/pool (the
// outgrown slice is returned there), so p's AFR backing may be pool-owned:
// callers must treat p and its slices as reusable scratch, never retain
// them past the next DecodeInto, and never PutAFRs them directly.
//
// On error p's contents are unspecified; it remains valid scratch for the
// next call. data is not retained.
func DecodeInto(p *packet.Packet, data []byte) error {
	if len(data) < headerSize+sumSize {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != magicValue {
		return ErrBadMagic
	}
	if data[2] != Version {
		return ErrBadVersion
	}
	// Hold on to the slice capacity across the reset: every other field
	// zeroes like a fresh packet, matching Decode exactly.
	afrs := p.OW.AFRs[:0]
	raws := p.OW.RawWords[:0]
	seqs := p.OW.Seqs[:0]
	*p = packet.Packet{}
	p.OW.Flag = packet.OWFlag(data[3])
	p.OW.SubWindow = binary.BigEndian.Uint64(data[4:])
	p.OW.HasSubWindow = data[12] != 0
	p.OW.Epoch = binary.BigEndian.Uint64(data[13:])
	p.OW.Index = binary.BigEndian.Uint32(data[21:])
	p.OW.KeyCount = binary.BigEndian.Uint32(data[25:])
	p.OW.App = data[29]
	var kb [packet.KeyBytes]byte
	copy(kb[:], data[30:])
	p.OW.Key = packet.KeyFromBytes(kb)
	off := 30 + packet.KeyBytes
	p.OW.UserSignal = binary.BigEndian.Uint64(data[off:])
	p.OW.HasUserSignal = data[off+8] != 0
	nAFR := int(binary.BigEndian.Uint16(data[off+9:]))
	nRaw := int(binary.BigEndian.Uint16(data[off+11:]))
	nSeq := int(binary.BigEndian.Uint16(data[off+13:]))
	off += 15

	if len(data) != headerSize+nAFR*afrSize+nRaw*8+nSeq*4+sumSize {
		return ErrTruncated
	}
	body := data[:len(data)-sumSize]
	if binary.BigEndian.Uint32(data[len(body):]) != crc32.ChecksumIEEE(body) {
		return ErrChecksum
	}
	if nAFR > 0 {
		if cap(afrs) < nAFR {
			pool.PutAFRs(afrs)
			afrs = pool.GetAFRs(nAFR)
		}
		afrs = afrs[:nAFR]
		for i := 0; i < nAFR; i++ {
			decodeAFR(data[off:], &afrs[i])
			off += afrSize
		}
		p.OW.AFRs = afrs
	}
	if nRaw > 0 {
		if cap(raws) < nRaw {
			raws = make([]uint64, nRaw)
		}
		raws = raws[:nRaw]
		for i := range raws {
			raws[i] = binary.BigEndian.Uint64(data[off:])
			off += 8
		}
		p.OW.RawWords = raws
	}
	if nSeq > 0 {
		if cap(seqs) < nSeq {
			seqs = make([]uint32, nSeq)
		}
		seqs = seqs[:nSeq]
		for i := range seqs {
			seqs[i] = binary.BigEndian.Uint32(data[off:])
			off += 4
		}
		p.OW.Seqs = seqs
	}
	return nil
}

// magicValue aliases Magic internally.
const magicValue = Magic

// appendAFR serializes one AFR in the fixed afrSize layout shared by
// datagrams, WAL records and snapshots.
func appendAFR(buf []byte, r *packet.AFR) []byte {
	rk := r.Key.Bytes()
	buf = append(buf, rk[:]...)
	buf = binary.BigEndian.AppendUint64(buf, r.Attr)
	buf = binary.BigEndian.AppendUint64(buf, r.SubWindow)
	buf = binary.BigEndian.AppendUint32(buf, r.Seq)
	buf = append(buf, r.App, b2u(r.HasDistinct))
	for _, w := range r.Distinct {
		buf = binary.BigEndian.AppendUint64(buf, w)
	}
	return buf
}

// decodeAFR parses one afrSize-byte record. The caller guarantees
// len(data) >= afrSize.
func decodeAFR(data []byte, r *packet.AFR) {
	var kb [packet.KeyBytes]byte
	copy(kb[:], data)
	r.Key = packet.KeyFromBytes(kb)
	off := packet.KeyBytes
	r.Attr = binary.BigEndian.Uint64(data[off:])
	r.SubWindow = binary.BigEndian.Uint64(data[off+8:])
	r.Seq = binary.BigEndian.Uint32(data[off+16:])
	r.App = data[off+20]
	r.HasDistinct = data[off+21] != 0
	off += 22
	for w := range r.Distinct {
		r.Distinct[w] = binary.BigEndian.Uint64(data[off:])
		off += 8
	}
}

// Peek reads a datagram's routing fields — flag, header sub-window, key
// count and the per-record sub-windows of AFR payloads — without a full
// decode and without verifying the checksum. Admission control uses it to
// classify frames and to account records it is about to shed (recording
// WHICH sub-window lost data even when the frame itself is discarded).
// Because the CRC is not checked, a corrupted frame may peek to garbage;
// shed accounting is therefore advisory while ingest stays CRC-exact.
type Peek struct {
	// Flag is the OmniWindow frame type.
	Flag packet.OWFlag
	// SubWindow and KeyCount are the header fields (trigger frames).
	SubWindow uint64
	KeyCount  uint32
	// AFRSubWindows maps sub-window -> record count for AFR-bearing
	// frames (nil when the frame carries none).
	AFRSubWindows map[uint64]int
}

// PeekFlag reads only a datagram's frame type, allocation-free — the
// collector's reader triages every datagram (control vs data) and must not
// pay PeekDatagram's per-sub-window map for frames it is going to keep.
// ok is false when the frame is too short or not an OmniWindow datagram.
func PeekFlag(data []byte) (packet.OWFlag, bool) {
	if len(data) < headerSize || binary.BigEndian.Uint16(data) != magicValue || data[2] != Version {
		return 0, false
	}
	return packet.OWFlag(data[3]), true
}

// PeekDatagram inspects data; ok is false when the frame is too short or
// not an OmniWindow v2 datagram (such frames cannot be attributed).
func PeekDatagram(data []byte) (Peek, bool) {
	if len(data) < headerSize || binary.BigEndian.Uint16(data) != magicValue || data[2] != Version {
		return Peek{}, false
	}
	pk := Peek{
		Flag:      packet.OWFlag(data[3]),
		SubWindow: binary.BigEndian.Uint64(data[4:]),
		KeyCount:  binary.BigEndian.Uint32(data[25:]),
	}
	off := 30 + packet.KeyBytes
	nAFR := int(binary.BigEndian.Uint16(data[off+9:]))
	off = headerSize
	if nAFR > 0 && len(data) >= headerSize+nAFR*afrSize {
		pk.AFRSubWindows = make(map[uint64]int, 1)
		for i := 0; i < nAFR; i++ {
			sw := binary.BigEndian.Uint64(data[off+packet.KeyBytes+8:])
			pk.AFRSubWindows[sw]++
			off += afrSize
		}
	}
	return pk, true
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}
