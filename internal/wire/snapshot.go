// Snapshot and write-ahead-log codecs for controller durability
// (internal/durable). Both follow the wire v2 conventions: fixed-layout
// big-endian encoding, a version byte so future layouts can coexist, and
// a CRC-32 (IEEE) trailer so torn writes and bit rot are detected instead
// of silently merged — a checkpoint that fails its checksum is refused,
// never half-loaded.
package wire

import (
	"encoding/binary"
	"hash/crc32"

	"omniwindow/internal/packet"
)

// SnapMagic ("OWSN") and SnapVersion identify checkpoint snapshots.
// Version 2 added the writer's fencing term after ThroughLSN, so a
// checkpoint durably records which term-holder cut it.
const (
	SnapMagic   uint32 = 0x4F57534E
	SnapVersion uint8  = 2
)

// WAL record types. Every controller-state mutation that replay must
// reproduce has a frame type; anything absent from this list is derivable
// or cosmetic (operation timings, for example, are not restored).
const (
	// WALAFRBatch carries ingested AFR records (first transmissions or
	// retransmissions, per the Retrans flag).
	WALAFRBatch byte = 1
	// WALTrigger carries a sub-window's announced key count.
	WALTrigger byte = 2
	// WALFinish marks a FinishSubWindow call; replay re-runs the window
	// assembly so re-emitted windows are byte-identical.
	WALFinish byte = 3
	// WALShed records AFRs dropped by admission control so restored
	// Degraded/ShedAFRs accounting matches the pre-crash state.
	WALShed byte = 4
)

// SnapContrib is one sub-window's contribution to a flow, as stored in the
// key-value table (the controller rebuilds merged values by re-absorbing
// contributions in order; every merge kind is order-insensitive, so the
// rebuild is exact).
type SnapContrib struct {
	SW          uint64
	Attr        uint64
	Distinct    [4]uint64
	HasDistinct bool
}

// SnapEntry is one flow's row.
type SnapEntry struct {
	Key      packet.FlowKey
	Contribs []SnapContrib
}

// SnapDedup is one open sub-window's arrival state.
type SnapDedup struct {
	SW        uint64
	Expected  int32
	Recovered uint32
	Shed      uint32
	Seen      []uint32
}

// SnapRel is one finished sub-window's final delivery accounting.
type SnapRel struct {
	SW        uint64
	Expected  int32
	Received  uint32
	Recovered uint32
	Missing   uint32
	Shed      uint32
}

// Snapshot is the complete restorable controller state at a sub-window
// boundary. Entries, Pending, Dedups and Rels are flat (not per-shard) and
// deterministically ordered by the exporter, so the encoding is
// byte-stable and restore re-routes rows by hash — a snapshot taken at one
// shard count loads correctly at another.
type Snapshot struct {
	// ThroughLSN is the WAL high-water mark the snapshot covers: replay
	// must skip frames with LSN <= ThroughLSN (they are already folded
	// in), which makes a crash between checkpoint rename and WAL
	// truncation harmless.
	ThroughLSN uint64
	// Term is the fencing term of the writer that cut the checkpoint
	// (internal/durable); 0 when fencing was never engaged.
	Term uint64
	// LastFinished is the newest sub-window whose FinishSubWindow ran
	// before the snapshot (valid when HasFinished); replayed WALFinish
	// frames at or below it are skipped.
	LastFinished uint64
	HasFinished  bool
	Entries      []SnapEntry
	Pending      []packet.AFR
	Dedups       []SnapDedup
	Rels         []SnapRel
}

const snapContribSize = 8 + 8 + 32 + 1
const snapHeaderSize = 4 + 1 + 8 + 8 + 8 + 1

// EncodeSnapshot serializes s into buf (grown as needed) and returns the
// resulting slice, ending in the CRC-32 trailer.
func EncodeSnapshot(buf []byte, s *Snapshot) []byte {
	buf = buf[:0]
	buf = binary.BigEndian.AppendUint32(buf, SnapMagic)
	buf = append(buf, SnapVersion)
	buf = binary.BigEndian.AppendUint64(buf, s.ThroughLSN)
	buf = binary.BigEndian.AppendUint64(buf, s.Term)
	buf = binary.BigEndian.AppendUint64(buf, s.LastFinished)
	buf = append(buf, b2u(s.HasFinished))

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Entries)))
	for i := range s.Entries {
		e := &s.Entries[i]
		kb := e.Key.Bytes()
		buf = append(buf, kb[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Contribs)))
		for j := range e.Contribs {
			cb := &e.Contribs[j]
			buf = binary.BigEndian.AppendUint64(buf, cb.SW)
			buf = binary.BigEndian.AppendUint64(buf, cb.Attr)
			for _, w := range cb.Distinct {
				buf = binary.BigEndian.AppendUint64(buf, w)
			}
			buf = append(buf, b2u(cb.HasDistinct))
		}
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Pending)))
	for i := range s.Pending {
		buf = appendAFR(buf, &s.Pending[i])
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Dedups)))
	for i := range s.Dedups {
		d := &s.Dedups[i]
		buf = binary.BigEndian.AppendUint64(buf, d.SW)
		buf = binary.BigEndian.AppendUint32(buf, uint32(d.Expected))
		buf = binary.BigEndian.AppendUint32(buf, d.Recovered)
		buf = binary.BigEndian.AppendUint32(buf, d.Shed)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.Seen)))
		for _, s := range d.Seen {
			buf = binary.BigEndian.AppendUint32(buf, s)
		}
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Rels)))
	for i := range s.Rels {
		r := &s.Rels[i]
		buf = binary.BigEndian.AppendUint64(buf, r.SW)
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Expected))
		buf = binary.BigEndian.AppendUint32(buf, r.Received)
		buf = binary.BigEndian.AppendUint32(buf, r.Recovered)
		buf = binary.BigEndian.AppendUint32(buf, r.Missing)
		buf = binary.BigEndian.AppendUint32(buf, r.Shed)
	}

	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// snapReader cursors over a checksum-verified snapshot body. Every read
// re-checks the remaining length, so a decoder that survives the CRC (a
// deliberately patched checksum, as the fuzz target produces) still fails
// cleanly with ErrTruncated instead of panicking or over-allocating.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.data)-r.off < n {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *snapReader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *snapReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// count reads a length prefix and rejects values whose minimal encoding
// cannot fit in the remaining bytes (allocation-bomb guard).
func (r *snapReader) count(minPer int) int {
	n := int(r.u32())
	if r.err == nil && n*minPer > len(r.data)-r.off {
		r.err = ErrTruncated
		return 0
	}
	return n
}

// DecodeSnapshot parses a snapshot produced by EncodeSnapshot, verifying
// the version and the CRC-32 trailer first.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderSize+sumSize {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint32(data) != SnapMagic {
		return nil, ErrBadMagic
	}
	if data[4] != SnapVersion {
		return nil, ErrBadVersion
	}
	body := data[:len(data)-sumSize]
	if binary.BigEndian.Uint32(data[len(body):]) != crc32.ChecksumIEEE(body) {
		return nil, ErrChecksum
	}
	r := &snapReader{data: body, off: 5}
	s := &Snapshot{
		ThroughLSN:   r.u64(),
		Term:         r.u64(),
		LastFinished: r.u64(),
		HasFinished:  r.u8() != 0,
	}

	if n := r.count(packet.KeyBytes + 4); n > 0 {
		s.Entries = make([]SnapEntry, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var e SnapEntry
			var kb [packet.KeyBytes]byte
			if r.need(packet.KeyBytes) {
				copy(kb[:], r.data[r.off:])
				r.off += packet.KeyBytes
			}
			e.Key = packet.KeyFromBytes(kb)
			if nc := r.count(snapContribSize); nc > 0 {
				e.Contribs = make([]SnapContrib, 0, nc)
				for j := 0; j < nc && r.err == nil; j++ {
					var cb SnapContrib
					cb.SW = r.u64()
					cb.Attr = r.u64()
					for w := range cb.Distinct {
						cb.Distinct[w] = r.u64()
					}
					cb.HasDistinct = r.u8() != 0
					e.Contribs = append(e.Contribs, cb)
				}
			}
			s.Entries = append(s.Entries, e)
		}
	}

	if n := r.count(afrSize); n > 0 {
		s.Pending = make([]packet.AFR, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var rec packet.AFR
			if r.need(afrSize) {
				decodeAFR(r.data[r.off:], &rec)
				r.off += afrSize
			}
			s.Pending = append(s.Pending, rec)
		}
	}

	if n := r.count(8 + 4 + 4 + 4 + 4); n > 0 {
		s.Dedups = make([]SnapDedup, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var d SnapDedup
			d.SW = r.u64()
			d.Expected = int32(r.u32())
			d.Recovered = r.u32()
			d.Shed = r.u32()
			if ns := r.count(4); ns > 0 {
				d.Seen = make([]uint32, 0, ns)
				for j := 0; j < ns && r.err == nil; j++ {
					d.Seen = append(d.Seen, r.u32())
				}
			}
			s.Dedups = append(s.Dedups, d)
		}
	}

	if n := r.count(8 + 5*4); n > 0 {
		s.Rels = make([]SnapRel, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var rel SnapRel
			rel.SW = r.u64()
			rel.Expected = int32(r.u32())
			rel.Received = r.u32()
			rel.Recovered = r.u32()
			rel.Missing = r.u32()
			rel.Shed = r.u32()
			s.Rels = append(s.Rels, rel)
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, ErrTruncated
	}
	return s, nil
}

// WALRecord is one write-ahead-log frame's payload. Frames are
// length-prefixed and CRC-trailed, so replay detects the torn tail a crash
// mid-append leaves behind and stops cleanly there.
type WALRecord struct {
	Type byte
	// LSN is the global log sequence number; the durable layer merges
	// per-shard logs by LSN to recover a total replay order.
	LSN uint64
	// Term is the fencing term the frame was written under (internal/
	// durable); a legitimate log is non-decreasing in Term along LSN
	// order, and the partition chaos suite audits exactly that.
	Term      uint64
	SubWindow uint64
	// KeyCount is the trigger announcement (WALTrigger).
	KeyCount uint32
	// Count is the shed record count (WALShed).
	Count uint32
	// Retrans marks a batch that arrived via the NACK/retransmit path,
	// so replayed delivery accounting matches the original.
	Retrans bool
	AFRs    []packet.AFR
}

// walHeaderSize is the fixed frame prefix: payload length (4).
const walHeaderSize = 4

// walFixedPayload is the fixed leading payload every frame type shares:
// type(1) + lsn(8) + term(8) + subwindow(8).
const walFixedPayload = 1 + 8 + 8 + 8

// AppendWALRecord appends one framed record to buf and returns it.
func AppendWALRecord(buf []byte, rec *WALRecord) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0) // patched below
	payload := len(buf)
	buf = append(buf, rec.Type)
	buf = binary.BigEndian.AppendUint64(buf, rec.LSN)
	buf = binary.BigEndian.AppendUint64(buf, rec.Term)
	buf = binary.BigEndian.AppendUint64(buf, rec.SubWindow)
	switch rec.Type {
	case WALAFRBatch:
		buf = append(buf, b2u(rec.Retrans))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.AFRs)))
		for i := range rec.AFRs {
			buf = appendAFR(buf, &rec.AFRs[i])
		}
	case WALTrigger:
		buf = binary.BigEndian.AppendUint32(buf, rec.KeyCount)
	case WALShed:
		buf = binary.BigEndian.AppendUint32(buf, rec.Count)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-payload))
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payload:]))
}

// DecodeWALRecord parses the first frame of data, returning the record and
// the bytes consumed. ErrTruncated means the frame is incomplete (a torn
// tail — the caller stops replay there); ErrChecksum means the frame is
// complete but corrupt.
func DecodeWALRecord(data []byte) (*WALRecord, int, error) {
	if len(data) < walHeaderSize {
		return nil, 0, ErrTruncated
	}
	plen := int(binary.BigEndian.Uint32(data))
	total := walHeaderSize + plen + sumSize
	if plen < walFixedPayload || len(data) < total {
		return nil, 0, ErrTruncated
	}
	payload := data[walHeaderSize : walHeaderSize+plen]
	if binary.BigEndian.Uint32(data[walHeaderSize+plen:]) != crc32.ChecksumIEEE(payload) {
		return nil, 0, ErrChecksum
	}
	rec := &WALRecord{
		Type:      payload[0],
		LSN:       binary.BigEndian.Uint64(payload[1:]),
		Term:      binary.BigEndian.Uint64(payload[9:]),
		SubWindow: binary.BigEndian.Uint64(payload[17:]),
	}
	rest := payload[walFixedPayload:]
	switch rec.Type {
	case WALAFRBatch:
		if len(rest) < 5 {
			return nil, 0, ErrTruncated
		}
		rec.Retrans = rest[0] != 0
		n := int(binary.BigEndian.Uint32(rest[1:]))
		rest = rest[5:]
		if len(rest) != n*afrSize {
			return nil, 0, ErrTruncated
		}
		if n > 0 {
			rec.AFRs = make([]packet.AFR, n)
			for i := 0; i < n; i++ {
				decodeAFR(rest[i*afrSize:], &rec.AFRs[i])
			}
		}
	case WALTrigger:
		if len(rest) != 4 {
			return nil, 0, ErrTruncated
		}
		rec.KeyCount = binary.BigEndian.Uint32(rest)
	case WALFinish:
		if len(rest) != 0 {
			return nil, 0, ErrTruncated
		}
	case WALShed:
		if len(rest) != 4 {
			return nil, 0, ErrTruncated
		}
		rec.Count = binary.BigEndian.Uint32(rest)
	default:
		return nil, 0, ErrBadVersion
	}
	return rec, total, nil
}
