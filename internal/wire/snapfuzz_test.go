package wire

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// snapFuzzSeeds are well-formed snapshots plus truncated and bit-flipped
// variants — exactly the damage a torn write or disk rot inflicts on a
// checkpoint file.
func snapFuzzSeeds() [][]byte {
	var out [][]byte
	out = append(out, EncodeSnapshot(nil, sampleSnapshot()))
	out = append(out, EncodeSnapshot(nil, &Snapshot{}))
	out = append(out, EncodeSnapshot(nil, &Snapshot{
		ThroughLSN: 1 << 40,
		Dedups:     []SnapDedup{{SW: 9, Expected: -1, Seen: []uint32{0}}},
	}))
	full := out[0]
	out = append(out, full[:len(full)/2], full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x10
	out = append(out, flipped)
	return out
}

// FuzzDecodeSnapshot hammers the checkpoint decoder: arbitrary bytes must
// never panic or over-allocate, and whatever decodes must survive an
// encode → decode round trip bit-for-bit (snapshot encoding is canonical,
// unlike datagrams there is exactly one valid byte form per state).
func FuzzDecodeSnapshot(f *testing.F) {
	for _, s := range snapFuzzSeeds() {
		f.Add(s)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		out := EncodeSnapshot(nil, s)
		if len(out) != len(data) {
			t.Fatalf("canonical size mismatch: %d vs %d", len(out), len(data))
		}
		q, err := DecodeSnapshot(out)
		if err != nil {
			t.Fatalf("canonical form did not decode: %v", err)
		}
		if !reflect.DeepEqual(s, q) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", s, q)
		}
	})
}

// FuzzDecodeSnapshotPatched patches the CRC trailer to match before
// decoding, so mutations reach the body parser instead of dying at the
// checksum gate — the parser's length-guards must hold on their own.
func FuzzDecodeSnapshotPatched(f *testing.F) {
	for _, s := range snapFuzzSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= snapHeaderSize+sumSize {
			data = append([]byte(nil), data...)
			body := data[:len(data)-sumSize]
			binary.BigEndian.PutUint32(data[len(body):], crc32.ChecksumIEEE(body))
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if _, err := DecodeSnapshot(EncodeSnapshot(nil, s)); err != nil {
			t.Fatalf("canonical form did not decode: %v", err)
		}
	})
}

// FuzzDecodeWALRecord covers the log-frame parser the same way: torn
// tails must report ErrTruncated, corruption ErrChecksum, and accepted
// frames must round-trip.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add(AppendWALRecord(nil, &WALRecord{Type: WALTrigger, LSN: 7, SubWindow: 3, KeyCount: 11}))
	f.Add(AppendWALRecord(nil, &WALRecord{Type: WALFinish, LSN: 8, SubWindow: 3}))
	batch := AppendWALRecord(nil, &WALRecord{Type: WALAFRBatch, LSN: 9, SubWindow: 3, AFRs: samplePacket().OW.AFRs})
	f.Add(batch)
	f.Add(batch[:len(batch)-2])
	f.Add([]byte{})
	// Fenced frames: terms in the fixed payload header, including the
	// all-ones term a corrupted fencing field would present.
	f.Add(AppendWALRecord(nil, &WALRecord{Type: WALFinish, LSN: 10, Term: 2, SubWindow: 4}))
	fenced := AppendWALRecord(nil, &WALRecord{Type: WALTrigger, LSN: 11, Term: 1<<64 - 1, SubWindow: 4, KeyCount: 1})
	f.Add(fenced)
	f.Add(fenced[:walHeaderSize+walFixedPayload-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out := AppendWALRecord(nil, rec)
		q, m, err := DecodeWALRecord(out)
		if err != nil || m != len(out) {
			t.Fatalf("canonical form did not decode: %v (%d of %d)", err, m, len(out))
		}
		if !reflect.DeepEqual(rec, q) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", rec, q)
		}
	})
}
