package wire

import (
	"testing"

	"omniwindow/internal/packet"
)

func TestSegmentHeaderRoundTrip(t *testing.T) {
	for _, h := range []SegmentHeader{
		{Chain: 0, Gen: 1},
		{Chain: 7, Gen: 123456},
		{Chain: CtlChain, Gen: 42},
		{Chain: 2, Gen: 5, Term: 3},
		{Chain: CtlChain, Gen: 1, Term: 1<<64 - 1},
	} {
		buf := AppendSegmentHeader(nil, &h)
		if len(buf) != SegmentHeaderSize {
			t.Fatalf("header length %d, want %d", len(buf), SegmentHeaderSize)
		}
		got, err := DecodeSegmentHeader(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestSegmentHeaderRejectsDamage(t *testing.T) {
	buf := AppendSegmentHeader(nil, &SegmentHeader{Chain: 3, Gen: 9})

	if _, err := DecodeSegmentHeader(buf[:SegmentHeaderSize-1]); err != ErrTruncated {
		t.Fatalf("truncated header: %v, want ErrTruncated", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := DecodeSegmentHeader(bad); err != ErrBadMagic {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), buf...)
	bad[4] = 99
	if _, err := DecodeSegmentHeader(bad); err != ErrBadVersion {
		t.Fatalf("bad version: %v, want ErrBadVersion", err)
	}

	bad = append([]byte(nil), buf...)
	bad[6] ^= 0x01 // flip a chain byte without touching magic/version
	if _, err := DecodeSegmentHeader(bad); err != ErrChecksum {
		t.Fatalf("bit rot: %v, want ErrChecksum", err)
	}
}

func TestVerifyWALFrame(t *testing.T) {
	rec := &WALRecord{
		Type:      WALAFRBatch,
		LSN:       5,
		SubWindow: 2,
		AFRs:      []packet.AFR{{Attr: 7, SubWindow: 2, Seq: 1}},
	}
	frame := AppendWALRecord(nil, rec)

	n, err := VerifyWALFrame(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("good frame: n=%d err=%v, want n=%d err=nil", n, err, len(frame))
	}

	// Verification must agree byte-for-byte with the materializing decoder.
	_, dn, derr := DecodeWALRecord(frame)
	if derr != nil || dn != n {
		t.Fatalf("decode/verify disagree: %d vs %d (%v)", dn, n, derr)
	}

	for cut := 1; cut <= len(frame); cut++ {
		if _, err := VerifyWALFrame(frame[:len(frame)-cut]); err != ErrTruncated {
			t.Fatalf("cut %d: %v, want ErrTruncated", cut, err)
		}
	}

	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := VerifyWALFrame(bad); err == nil {
			// A flip inside the length prefix may turn the frame into a
			// truncated one; a flip anywhere else must fail the CRC. No
			// flip may verify.
			t.Fatalf("byte %d flipped but frame verified", i)
		}
	}
}
