package wire

import (
	"reflect"
	"testing"

	"omniwindow/internal/packet"
)

func snapKey(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstIP: 7, SrcPort: uint16(i), DstPort: 53, Proto: 17}
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		ThroughLSN:   42,
		LastFinished: 3,
		HasFinished:  true,
		Entries: []SnapEntry{
			{Key: snapKey(1), Contribs: []SnapContrib{
				{SW: 0, Attr: 5},
				{SW: 1, Attr: 7, Distinct: [4]uint64{1, 2, 3, 4}, HasDistinct: true},
			}},
			{Key: snapKey(2), Contribs: []SnapContrib{{SW: 1, Attr: 9}}},
		},
		Pending: []packet.AFR{
			{Key: snapKey(3), Attr: 11, SubWindow: 4, Seq: 0},
			{Key: snapKey(4), Attr: 13, SubWindow: 4, Seq: 1, HasDistinct: true, Distinct: [4]uint64{9, 0, 0, 1}},
		},
		Dedups: []SnapDedup{
			{SW: 4, Expected: 5, Recovered: 1, Shed: 2, Seen: []uint32{0, 1, 3}},
			{SW: 5, Expected: -1},
		},
		Rels: []SnapRel{
			{SW: 3, Expected: 10, Received: 10, Recovered: 2, Missing: 0, Shed: 1},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	buf := EncodeSnapshot(nil, s)
	got, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", s, got)
	}
	// Deterministic: same snapshot, same bytes.
	if string(buf) != string(EncodeSnapshot(nil, sampleSnapshot())) {
		t.Fatal("snapshot encoding is not byte-stable")
	}
}

func TestSnapshotEmptyRoundTrip(t *testing.T) {
	buf := EncodeSnapshot(nil, &Snapshot{})
	got, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&Snapshot{}, got) {
		t.Fatalf("empty snapshot round trip: %+v", got)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	buf := EncodeSnapshot(nil, sampleSnapshot())
	for _, pos := range []int{5, len(buf) / 2, len(buf) - 5} {
		mangled := append([]byte(nil), buf...)
		mangled[pos] ^= 0x40
		if _, err := DecodeSnapshot(mangled); err == nil {
			t.Fatalf("bit flip at %d not detected", pos)
		}
	}
	for _, cut := range []int{1, 10, len(buf) / 2} {
		if _, err := DecodeSnapshot(buf[:len(buf)-cut]); err == nil {
			t.Fatalf("truncation by %d not detected", cut)
		}
	}
	if _, err := DecodeSnapshot(nil); err != ErrTruncated {
		t.Fatalf("nil snapshot: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 99
	if _, err := DecodeSnapshot(bad); err != ErrBadVersion {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []*WALRecord{
		{Type: WALAFRBatch, LSN: 1, SubWindow: 2, Retrans: true, AFRs: []packet.AFR{
			{Key: snapKey(1), Attr: 3, SubWindow: 2, Seq: 9},
		}},
		{Type: WALAFRBatch, LSN: 2, SubWindow: 2, AFRs: []packet.AFR{}},
		{Type: WALTrigger, LSN: 3, SubWindow: 2, KeyCount: 77},
		{Type: WALFinish, LSN: 4, SubWindow: 2},
		{Type: WALShed, LSN: 5, SubWindow: 2, Count: 13},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendWALRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeWALRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(want.AFRs) == 0 {
			want.AFRs = nil
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("record %d mismatch:\nin:  %+v\nout: %+v", i, want, got)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestWALRecordTornTail(t *testing.T) {
	full := AppendWALRecord(nil, &WALRecord{Type: WALTrigger, LSN: 1, SubWindow: 5, KeyCount: 3})
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeWALRecord(full[:len(full)-cut]); err != ErrTruncated {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-6] ^= 1
	if _, _, err := DecodeWALRecord(corrupt); err != ErrChecksum {
		t.Fatalf("corrupt frame: %v, want ErrChecksum", err)
	}
}
