// Term-file codec. The durable store's fencing authority (internal/
// durable) is a monotonic term persisted in a single fixed-size record:
// a standby acquires the next term by compare-and-swap at promotion, and
// every subsequent write by the old term-holder is rejected (ErrFenced).
// The record follows the wire v2 conventions — fixed big-endian layout,
// a version byte, and a CRC-32 (IEEE) trailer — so a torn or bit-rotted
// term file is detected and rebuilt from segment headers rather than
// silently granting a stale writer authority.
package wire

import (
	"encoding/binary"
	"hash/crc32"
)

// TermMagic ("OWTM") and TermVersion identify term-file records.
const (
	TermMagic   uint32 = 0x4F57544D
	TermVersion uint8  = 1
)

// TermRecord is the complete content of the term file.
type TermRecord struct {
	// Term is the monotonic fencing term. 0 means "never acquired".
	Term uint64
	// Holder identifies the acquiring writer (the deployment's promotion
	// ordinal) — diagnostic only; fencing compares Term alone.
	Holder uint32
}

// TermRecordSize is the fixed on-disk record length:
// magic(4) + version(1) + term(8) + holder(4) + crc(4).
const TermRecordSize = 4 + 1 + 8 + 4 + 4

// AppendTermRecord appends the encoded record to buf and returns it.
func AppendTermRecord(buf []byte, r *TermRecord) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, TermMagic)
	buf = append(buf, TermVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.Term)
	buf = binary.BigEndian.AppendUint32(buf, r.Holder)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// DecodeTermRecord parses a term file. ErrTruncated means the file ends
// before a full record (a crash during acquisition left a torn temp file
// behind); ErrBadMagic/ErrBadVersion/ErrChecksum mean the record is
// damaged or foreign. Any error quarantines the file and falls back to
// the newest term found in segment headers.
func DecodeTermRecord(data []byte) (TermRecord, error) {
	var r TermRecord
	if len(data) < TermRecordSize {
		return r, ErrTruncated
	}
	body := data[:TermRecordSize-sumSize]
	if binary.BigEndian.Uint32(body) != TermMagic {
		return r, ErrBadMagic
	}
	if body[4] != TermVersion {
		return r, ErrBadVersion
	}
	if binary.BigEndian.Uint32(data[len(body):]) != crc32.ChecksumIEEE(body) {
		return r, ErrChecksum
	}
	r.Term = binary.BigEndian.Uint64(body[5:])
	r.Holder = binary.BigEndian.Uint32(body[13:])
	return r, nil
}
