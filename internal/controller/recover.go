package controller

import (
	"time"

	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// RetryPolicy bounds the NACK/retransmit recovery loop of §8. The
// controller re-checks a sub-window's sequence gaps after each round,
// NACKing the remainder with exponentially growing waits, and gives up
// after MaxRetries rounds — an unreachable switch must not stall window
// assembly forever; the window finalizes marked Incomplete instead.
type RetryPolicy struct {
	// MaxRetries is the number of NACK rounds before giving up.
	// 0 disables recovery entirely (gap detection still runs, so windows
	// with losses finalize Incomplete immediately).
	MaxRetries int
	// Backoff is the wait after each NACK for the retransmissions to
	// arrive; it doubles every round.
	Backoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy matches a loopback-scale RTT: 4 rounds starting at
// 2ms, capped at 16ms — under 50ms worst-case stall per sub-window.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Backoff: 2 * time.Millisecond, MaxBackoff: 16 * time.Millisecond}
}

// Recovery is the outcome of one sub-window's recovery loop.
type Recovery struct {
	// Complete reports that no announced sequence is missing.
	Complete bool
	// Rounds is the number of NACKs issued.
	Rounds int
	// Waited is the total backoff time spent (virtual or real, per the
	// sleep function the caller supplied).
	Waited time.Duration
	// Missing holds the sequences still absent after exhaustion (nil
	// when Complete).
	Missing []uint32
}

// RecoverSubWindow drives the bounded NACK/retransmit protocol for one
// sub-window. The caller supplies the three environment hooks, which is
// what lets the same state machine run in-process (deployment: nack calls
// Engine.Retransmit directly, sleep advances virtual time) and over the
// wire (udp: nack sends OWNack datagrams, sleep really sleeps):
//
//   - missing samples the gap state (Controller.MissingSeqs);
//   - nack requests retransmission of the given sequences;
//   - sleep waits for the retransmissions to arrive.
//
// It must run after the sub-window's enumeration has been delivered and
// before the switch resets the region (a reset destroys the state the
// retransmissions are queried from, §4.3).
func RecoverSubWindow(pol RetryPolicy, missing func() []uint32, nack func([]uint32) error, sleep func(time.Duration)) Recovery {
	m := missing()
	if len(m) == 0 {
		return Recovery{Complete: true}
	}
	out := Recovery{Missing: m}
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = DefaultRetryPolicy().Backoff
	}
	maxBackoff := pol.MaxBackoff
	if maxBackoff < backoff {
		maxBackoff = backoff
	}
	for out.Rounds < pol.MaxRetries {
		if err := nack(out.Missing); err != nil {
			return out
		}
		out.Rounds++
		sleep(backoff)
		out.Waited += backoff
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		out.Missing = missing()
		if len(out.Missing) == 0 {
			out.Complete = true
			return out
		}
	}
	return out
}

// NackPackets builds the OWNack requests for a sub-window's missing
// sequences, chunked to the wire bound so each fits one datagram.
func NackPackets(sw uint64, seqs []uint32) []*packet.Packet {
	var out []*packet.Packet
	for start := 0; start < len(seqs); start += wire.MaxSeqsPerDatagram {
		end := min(start+wire.MaxSeqsPerDatagram, len(seqs))
		out = append(out, &packet.Packet{OW: packet.OWHeader{
			Flag:         packet.OWNack,
			SubWindow:    sw,
			HasSubWindow: true,
			Seqs:         append([]uint32(nil), seqs[start:end]...),
		}})
	}
	return out
}
