package controller

import "omniwindow/internal/packet"

// HotTracker implements the controller side of the RDMA address MAT (§7):
// it monitors how often each flow key recurs across sub-windows and
// decides which keys deserve a cached memory address in the switch
// (hot keys get RDMA Fetch-and-Add aggregation; cold keys go through the
// append buffer).
type HotTracker struct {
	capacity  int
	threshold int
	counts    map[packet.FlowKey]int
	hot       map[packet.FlowKey]bool
}

// NewHotTracker builds a tracker for an address MAT of the given capacity;
// keys become hot after `threshold` observations.
func NewHotTracker(capacity, threshold int) *HotTracker {
	if capacity <= 0 {
		panic("controller: hot tracker capacity must be positive")
	}
	if threshold < 1 {
		threshold = 1
	}
	return &HotTracker{
		capacity:  capacity,
		threshold: threshold,
		counts:    make(map[packet.FlowKey]int),
		hot:       make(map[packet.FlowKey]bool),
	}
}

// Observe records one appearance of k (one AFR in one sub-window) and
// returns whether k just crossed into hotness and should be installed in
// the switch's address MAT (subject to capacity).
func (h *HotTracker) Observe(k packet.FlowKey) (promote bool) {
	h.counts[k]++
	if h.hot[k] || h.counts[k] < h.threshold || len(h.hot) >= h.capacity {
		return false
	}
	h.hot[k] = true
	return true
}

// IsHot reports whether k currently holds an address MAT entry.
func (h *HotTracker) IsHot(k packet.FlowKey) bool { return h.hot[k] }

// HotCount returns the number of installed hot keys.
func (h *HotTracker) HotCount() int { return len(h.hot) }

// Decay ages all counts at a window boundary and returns the keys that
// went cold and must be deleted from the address MAT.
func (h *HotTracker) Decay() (demote []packet.FlowKey) {
	for k, c := range h.counts {
		c /= 2
		if c == 0 {
			delete(h.counts, k)
			if h.hot[k] {
				delete(h.hot, k)
				demote = append(demote, k)
			}
			continue
		}
		h.counts[k] = c
		if h.hot[k] && c < h.threshold {
			delete(h.hot, k)
			demote = append(demote, k)
		}
	}
	return demote
}
