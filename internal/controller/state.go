// Controller state export and restore for the durability layer
// (internal/durable). A snapshot taken at a sub-window boundary plus the
// write-ahead log of everything ingested since is enough to rebuild the
// controller to the exact pre-crash state: merged values are rebuilt by
// re-absorbing the stored contributions (every merge kind is
// order-insensitive, so the rebuild is exact), and sequence-number dedup
// makes replaying batches the snapshot already covers harmless.

package controller

import (
	"sort"

	"omniwindow/internal/afr"
	"omniwindow/internal/metrics"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// NoteShed records that admission control dropped n AFRs destined for a
// sub-window (attributed by header peek before the discard). Notes for a
// still-open sub-window flow into its final accounting; notes for an
// already-finished one amend the retained reliability snapshot but cannot
// retroactively change windows that were already emitted.
func (c *Controller) NoteShed(sw uint64, n int) {
	if n <= 0 {
		return
	}
	c.obs.Shed.Add(int64(n))
	c.obs.Ring.Record(obs.StageShed, sw, -1, int64(n))
	c.mu.Lock()
	if d, live := c.dedups[sw]; live {
		c.mu.Unlock()
		d.mu.Lock()
		d.shed += n
		d.mu.Unlock()
		return
	}
	if rel, done := c.rel[sw]; done {
		rel.Shed += n
		c.rel[sw] = rel
	}
	c.mu.Unlock()
}

// NoteLost records that n units of a sub-window's durable record are
// unrecoverable (quarantined WAL segments, a degraded-durability gap the
// standby cannot replay). Unlike shed — which is pressure the live path
// already accounted — lost is damage: it always lands in the sub-window's
// Missing tally, creating the reliability entry if the sub-window was
// never announced, so every window spanning it assembles as Incomplete
// instead of silently wrong.
func (c *Controller) NoteLost(sw uint64, n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	// Works for open and finished sub-windows alike: finishOne merges a
	// pre-charged entry into the dedup's final snapshot, and the fill
	// loop treats the entry as already-accounted.
	rel := c.rel[sw]
	rel.Missing += n
	c.rel[sw] = rel
	c.mu.Unlock()
}

// LastFinished reports the highest sub-window FinishSubWindow has
// completed; ok is false before the first finish.
func (c *Controller) LastFinished() (sw uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastFin, c.hasFin
}

// ExportState snapshots the controller's complete restorable state: the
// key-value table, routed-but-unmerged records, open sub-window arrival
// state and finished sub-window accounting. Output ordering is fully
// deterministic (keys by packetKeyLess, everything else by sub-window and
// sequence), so encoding the snapshot is byte-stable regardless of shard
// count or ingest interleaving. ThroughLSN is left zero; the durable layer
// stamps it with its own log position.
func (c *Controller) ExportState() *wire.Snapshot {
	c.finishMu.Lock()
	defer c.finishMu.Unlock()

	s := &wire.Snapshot{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for k, e := range sh.table {
			se := wire.SnapEntry{Key: k, Contribs: make([]wire.SnapContrib, len(e.contribs))}
			for i, cb := range e.contribs {
				se.Contribs[i] = wire.SnapContrib{
					SW: cb.sw, Attr: cb.attr, Distinct: cb.distinct, HasDistinct: cb.hasDistinct,
				}
			}
			s.Entries = append(s.Entries, se)
		}
		for _, recs := range sh.pending {
			s.Pending = append(s.Pending, recs...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(s.Entries, func(i, j int) bool {
		return packetKeyLess(s.Entries[i].Key, s.Entries[j].Key)
	})
	sort.Slice(s.Pending, func(i, j int) bool {
		a, b := &s.Pending[i], &s.Pending[j]
		if a.SubWindow != b.SubWindow {
			return a.SubWindow < b.SubWindow
		}
		return a.Seq < b.Seq
	})

	c.mu.Lock()
	s.LastFinished, s.HasFinished = c.lastFin, c.hasFin
	for sw, d := range c.dedups {
		d.mu.Lock()
		sd := wire.SnapDedup{
			SW:        sw,
			Expected:  int32(d.expected),
			Recovered: uint32(d.recovered),
			Shed:      uint32(d.shed),
		}
		if n := d.seen.size(); n > 0 {
			// appendSorted iterates the bitset in ascending order, so the
			// snapshot bytes stay identical to the sorted-map encoding.
			sd.Seen = d.seen.appendSorted(make([]uint32, 0, n))
		}
		d.mu.Unlock()
		s.Dedups = append(s.Dedups, sd)
	}
	for sw, r := range c.rel {
		s.Rels = append(s.Rels, wire.SnapRel{
			SW:        sw,
			Expected:  int32(r.Expected),
			Received:  uint32(r.Received),
			Recovered: uint32(r.Recovered),
			Missing:   uint32(r.Missing),
			Shed:      uint32(r.Shed),
		})
	}
	c.mu.Unlock()
	sort.Slice(s.Dedups, func(i, j int) bool { return s.Dedups[i].SW < s.Dedups[j].SW })
	sort.Slice(s.Rels, func(i, j int) bool { return s.Rels[i].SW < s.Rels[j].SW })
	return s
}

// RestoreState replaces the controller's state with a snapshot's. Rows are
// re-routed by hash, so a snapshot exported at one shard count restores
// correctly at another. The configuration (plan, kind, detector) is NOT
// carried by snapshots — the restored controller must be built with the
// same Config the exporter used, or merged values will diverge.
func (c *Controller) RestoreState(s *wire.Snapshot) {
	c.finishMu.Lock()
	defer c.finishMu.Unlock()

	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.table = make(map[packet.FlowKey]*entry)
		sh.pending = make(map[uint64][]packet.AFR)
		sh.mu.Unlock()
	}
	for _, se := range s.Entries {
		sh := c.shards[c.shardIndex(se.Key)]
		e := &entry{
			contribs: make([]contrib, len(se.Contribs)),
			merged:   afr.NewMergedWithCounter(c.cfg.Kind, c.cfg.DistinctCounter),
		}
		for i, cb := range se.Contribs {
			e.contribs[i] = contrib{
				sw: cb.SW, attr: cb.Attr, distinct: cb.Distinct, hasDistinct: cb.HasDistinct,
			}
			e.merged.Absorb(cb.Attr, cb.Distinct, cb.HasDistinct)
		}
		sh.mu.Lock()
		sh.table[se.Key] = e
		sh.mu.Unlock()
	}
	for _, r := range s.Pending {
		sh := c.shards[c.shardIndex(r.Key)]
		sh.mu.Lock()
		sh.pending[r.SubWindow] = append(sh.pending[r.SubWindow], r)
		sh.mu.Unlock()
	}

	c.mu.Lock()
	c.dedups = make(map[uint64]*dedup)
	c.rel = make(map[uint64]metrics.Reliability)
	c.lastFin, c.hasFin = s.LastFinished, s.HasFinished
	for _, sd := range s.Dedups {
		d := &dedup{
			expected:  int(sd.Expected),
			recovered: int(sd.Recovered),
			shed:      int(sd.Shed),
		}
		for _, seq := range sd.Seen {
			d.seen.add(seq)
		}
		c.dedups[sd.SW] = d
	}
	for _, sr := range s.Rels {
		c.rel[sr.SW] = metrics.Reliability{
			Expected:  int(sr.Expected),
			Received:  int(sr.Received),
			Recovered: int(sr.Recovered),
			Missing:   int(sr.Missing),
			Shed:      int(sr.Shed),
		}
	}
	c.mu.Unlock()
}
