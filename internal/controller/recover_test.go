package controller

import (
	"errors"
	"testing"
	"time"

	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// recoveryEnv is a scripted switch: each NACK restores some of the
// missing sequences, and sleep advances virtual time.
type recoveryEnv struct {
	missing []uint32
	// restorePerRound is how many sequences each NACK round recovers.
	restorePerRound int
	nacks           [][]uint32
	virtual         time.Duration
}

func (e *recoveryEnv) Missing() []uint32 {
	return append([]uint32(nil), e.missing...)
}

func (e *recoveryEnv) Nack(seqs []uint32) error {
	e.nacks = append(e.nacks, append([]uint32(nil), seqs...))
	n := e.restorePerRound
	if n > len(e.missing) {
		n = len(e.missing)
	}
	e.missing = e.missing[n:]
	return nil
}

func (e *recoveryEnv) Sleep(d time.Duration) { e.virtual += d }

func TestRecoverNothingMissing(t *testing.T) {
	env := &recoveryEnv{}
	rec := RecoverSubWindow(DefaultRetryPolicy(), env.Missing, env.Nack, env.Sleep)
	if !rec.Complete || rec.Rounds != 0 || len(env.nacks) != 0 {
		t.Fatalf("gap-free recovery ran rounds: %+v", rec)
	}
}

func TestRecoverConvergesWithinBudget(t *testing.T) {
	env := &recoveryEnv{missing: []uint32{1, 4, 9, 16}, restorePerRound: 2}
	rec := RecoverSubWindow(DefaultRetryPolicy(), env.Missing, env.Nack, env.Sleep)
	if !rec.Complete {
		t.Fatalf("did not converge: %+v", rec)
	}
	if rec.Rounds != 2 || len(env.nacks) != 2 {
		t.Fatalf("rounds = %d, nacks = %d, want 2", rec.Rounds, len(env.nacks))
	}
	// The second NACK must only request what was still missing.
	if len(env.nacks[0]) != 4 || len(env.nacks[1]) != 2 {
		t.Fatalf("nack sizes %d/%d, want 4/2", len(env.nacks[0]), len(env.nacks[1]))
	}
	if rec.Waited != env.virtual {
		t.Fatalf("Waited=%v but slept %v", rec.Waited, env.virtual)
	}
}

func TestRecoverExhaustsAndReportsMissing(t *testing.T) {
	env := &recoveryEnv{missing: []uint32{2, 3}} // switch never answers
	pol := RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	rec := RecoverSubWindow(pol, env.Missing, env.Nack, env.Sleep)
	if rec.Complete {
		t.Fatal("reported complete with sequences missing")
	}
	if rec.Rounds != 3 || len(rec.Missing) != 2 {
		t.Fatalf("rounds=%d missing=%v", rec.Rounds, rec.Missing)
	}
	// Backoff doubles and caps: 1ms + 2ms + 2ms.
	if want := 5 * time.Millisecond; rec.Waited != want {
		t.Fatalf("Waited = %v, want %v", rec.Waited, want)
	}
}

func TestRecoverZeroRetriesGivesUpImmediately(t *testing.T) {
	env := &recoveryEnv{missing: []uint32{7}}
	rec := RecoverSubWindow(RetryPolicy{}, env.Missing, env.Nack, env.Sleep)
	if rec.Complete || rec.Rounds != 0 || len(env.nacks) != 0 {
		t.Fatalf("disabled retries still ran: %+v", rec)
	}
	if len(rec.Missing) != 1 || rec.Missing[0] != 7 {
		t.Fatalf("Missing = %v", rec.Missing)
	}
}

func TestRecoverAbortsOnNackError(t *testing.T) {
	calls := 0
	rec := RecoverSubWindow(DefaultRetryPolicy(),
		func() []uint32 { return []uint32{1} },
		func([]uint32) error { calls++; return errors.New("uplink down") },
		func(time.Duration) {})
	if rec.Complete || calls != 1 || rec.Rounds != 0 {
		t.Fatalf("nack error did not abort: %+v after %d calls", rec, calls)
	}
}

func TestNackPacketsChunking(t *testing.T) {
	seqs := make([]uint32, wire.MaxSeqsPerDatagram+5)
	for i := range seqs {
		seqs[i] = uint32(i)
	}
	pkts := NackPackets(99, seqs)
	if len(pkts) != 2 {
		t.Fatalf("%d packets, want 2", len(pkts))
	}
	total := 0
	for _, p := range pkts {
		if p.OW.Flag != packet.OWNack || p.OW.SubWindow != 99 || !p.OW.HasSubWindow {
			t.Fatalf("bad NACK header %+v", p.OW)
		}
		if len(p.OW.Seqs) > wire.MaxSeqsPerDatagram {
			t.Fatalf("chunk of %d exceeds wire bound", len(p.OW.Seqs))
		}
		if _, err := wire.Encode(nil, p); err != nil {
			t.Fatalf("NACK chunk does not encode: %v", err)
		}
		total += len(p.OW.Seqs)
	}
	if total != len(seqs) {
		t.Fatalf("chunks carry %d seqs, want %d", total, len(seqs))
	}
	if got := NackPackets(1, nil); len(got) != 0 {
		t.Fatalf("empty gap list produced %d packets", len(got))
	}
}
