package controller

import (
	"fmt"
	"net"
	"testing"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/faults"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
	"omniwindow/internal/wire"
)

// chaosHarness is the full UDP pipeline under fault injection: a switch
// socket wrapped in a seeded fault schedule, the collector server, and a
// controller behind it. The test itself plays the switch, so NACK
// servicing is synchronous and the run is deterministic up to goroutine
// scheduling — which the delivery barrier makes irrelevant.
type chaosHarness struct {
	t     *testing.T
	sink  *Async
	col   *Collector
	fconn *faults.PacketConn
	inj   *faults.Injector
}

// afrFrameFilter subjects only AFR and retransmit datagrams to faults:
// trigger frames stay lossless so the controller always knows the key
// count (a lost trigger makes gap detection blind — the documented
// limitation of §8's counting scheme).
func afrFrameFilter(b []byte) bool {
	return len(b) > 3 && (b[3] == byte(packet.OWAFR) || b[3] == byte(packet.OWRetransmit))
}

func newChaosHarness(t *testing.T, cfg faults.Config) *chaosHarness {
	t.Helper()
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewAsync(New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 1, CaptureValues: true}))
	col := NewCollector(serverConn, sink)

	switchConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(cfg)
	h := &chaosHarness{
		t:     t,
		sink:  sink,
		col:   col,
		fconn: faults.WrapPacketConn(switchConn, inj, afrFrameFilter),
		inj:   inj,
	}
	t.Cleanup(func() {
		sink.Close()
		col.Close() // closes serverConn
		switchConn.Close()
	})
	return h
}

func (h *chaosHarness) send(p *packet.Packet) {
	h.t.Helper()
	if err := SendDatagram(h.fconn, h.col.Addr(), p); err != nil {
		h.t.Fatal(err)
	}
}

// barrier flushes parked datagrams and waits until the collector has
// accounted for every datagram put on the wire — ingested, rejected by
// the decoder (truncated/corrupted), or shed on queue overrun. After it
// returns, the controller's reliability view is current.
func (h *chaosHarness) barrier() {
	h.t.Helper()
	if err := h.fconn.Flush(); err != nil {
		h.t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		acct := h.col.Received() + h.col.Recovered() + h.col.Drops() + h.col.Overruns()
		if acct >= h.fconn.Delivered() {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("delivery barrier stuck: %d delivered, %d accounted (recv %d, recov %d, drops %d, overruns %d)",
				h.fconn.Delivered(), acct, h.col.Received(), h.col.Recovered(), h.col.Drops(), h.col.Overruns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosAttr is the ground-truth attribute of sequence s.
func chaosAttr(s int) uint64 { return uint64(s)*3 + 1 }

// runChaosSubWindow plays one sub-window's collection over the faulted
// socket: trigger announcement, enumeration, then the NACK/retransmit
// recovery loop with the given policy. It returns the recovery outcome.
func (h *chaosHarness) runChaosSubWindow(n int, pol RetryPolicy) Recovery {
	h.t.Helper()
	h.send(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: uint32(n)}})
	for s := 0; s < n; s++ {
		h.send(afrPkt(packet.AFR{Key: fk(s), SubWindow: 0, Attr: chaosAttr(s), Seq: uint32(s)}))
	}
	h.barrier()

	return RecoverSubWindow(pol,
		func() []uint32 {
			h.barrier()
			return h.sink.MissingSeqs(0)
		},
		func(seqs []uint32) error {
			// The switch answers a NACK by re-querying the requested
			// sequences; the answers cross the same lossy socket.
			for _, s := range seqs {
				h.send(&packet.Packet{OW: packet.OWHeader{
					Flag: packet.OWRetransmit, SubWindow: 0, HasSubWindow: true,
					AFRs: []packet.AFR{{Key: fk(int(s)), SubWindow: 0, Attr: chaosAttr(int(s)), Seq: s}},
				}})
			}
			return h.fconn.Flush()
		},
		time.Sleep,
	)
}

// TestChaosUDPRecoveryExact drives the switch→UDP→collector→merge
// pipeline under seeded loss/duplication/reordering/corruption schedules
// and asserts exact repair: after recovery, the merged window equals the
// lossless ground truth per key, is not Incomplete, and every recovered
// sequence is accounted as Recovered rather than Received.
func TestChaosUDPRecoveryExact(t *testing.T) {
	const n = 200
	cases := []struct {
		name string
		cfg  faults.Config
	}{
		{"drop5/seed1", faults.Config{Seed: 1, Drop: 0.05}},
		{"drop5/seed2", faults.Config{Seed: 2, Drop: 0.05}},
		{"drop5/seed3", faults.Config{Seed: 3, Drop: 0.05}},
		{"mixed/seed1", faults.Config{Seed: 1, Drop: 0.10, Duplicate: 0.10, Reorder: 0.15, Truncate: 0.05, Corrupt: 0.05}},
		{"mangle-heavy/seed2", faults.Config{Seed: 2, Truncate: 0.25, Corrupt: 0.25}},
	}
	// Nightly sweep: OMNIWINDOW_EXTRA_SEEDS widens the fixed table with
	// derived seeds on the full mixed schedule.
	for _, s := range faults.ExtraSeeds(2) {
		cases = append(cases, struct {
			name string
			cfg  faults.Config
		}{fmt.Sprintf("mixed/seed%d", s),
			faults.Config{Seed: int64(s), Drop: 0.10, Duplicate: 0.10, Reorder: 0.15, Truncate: 0.05, Corrupt: 0.05}})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newChaosHarness(t, tc.cfg)
			pol := RetryPolicy{MaxRetries: 25, Backoff: 2 * time.Millisecond, MaxBackoff: 8 * time.Millisecond}
			rec := h.runChaosSubWindow(n, pol)
			if !rec.Complete {
				t.Fatalf("recovery exhausted with %d missing after %d rounds (faults: %+v)",
					len(rec.Missing), rec.Rounds, h.inj.Stats())
			}
			fs := h.inj.Stats()
			if tc.cfg.Drop > 0 && fs.Dropped == 0 {
				t.Fatalf("schedule injected no drops: %+v", fs)
			}
			if (tc.cfg.Truncate > 0 || tc.cfg.Corrupt > 0) && h.col.Drops() == 0 {
				t.Fatal("mangled datagrams were not rejected by the decoder")
			}
			if fs.Dropped+fs.Truncated+fs.Corrupted > 0 {
				if rec.Rounds == 0 || h.col.Recovered() == 0 {
					t.Fatalf("losses repaired without the recovery path: rounds=%d recovered=%d",
						rec.Rounds, h.col.Recovered())
				}
			}

			rel := h.sink.Reliability(0)
			if !rel.Complete() || rel.Expected != n {
				t.Fatalf("reliability snapshot not complete: %+v", rel)
			}
			res := h.sink.FinishSubWindow(0)
			if len(res) != 1 {
				t.Fatalf("windows = %d", len(res))
			}
			w := res[0]
			if w.Incomplete || w.MissingAFRs != 0 {
				t.Fatalf("recovered window marked incomplete: %+v", w)
			}
			if len(w.Values) != n {
				t.Fatalf("window has %d flows, want %d", len(w.Values), n)
			}
			for s := 0; s < n; s++ {
				if got := w.Values[fk(s)]; got != chaosAttr(s) {
					t.Fatalf("flow %d = %d, want %d (dup not suppressed or loss not repaired)",
						s, got, chaosAttr(s))
				}
			}
		})
	}
}

// TestChaosUDPExhaustionMarksIncomplete: when every AFR and every
// retransmission is lost, the bounded retry budget must give up and the
// window must finalize explicitly marked Incomplete with the loss count.
func TestChaosUDPExhaustionMarksIncomplete(t *testing.T) {
	const n = 50
	h := newChaosHarness(t, faults.Config{Seed: 9, Drop: 1})
	pol := RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond}
	rec := h.runChaosSubWindow(n, pol)
	if rec.Complete || rec.Rounds != 2 || len(rec.Missing) != n {
		t.Fatalf("total loss recovered?! %+v", rec)
	}
	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if !res[0].Incomplete || res[0].MissingAFRs != n {
		t.Fatalf("window not marked incomplete: %+v", res[0])
	}
}

// TestChaosUDPRetriesDisabled: a zero retry budget detects the gaps but
// never NACKs — losses surface immediately as an Incomplete window.
func TestChaosUDPRetriesDisabled(t *testing.T) {
	const n = 50
	h := newChaosHarness(t, faults.Config{Seed: 3, Drop: 0.3})
	rec := h.runChaosSubWindow(n, RetryPolicy{})
	if rec.Complete || rec.Rounds != 0 {
		t.Fatalf("disabled retries recovered: %+v", rec)
	}
	if h.col.Recovered() != 0 {
		t.Fatalf("recovered %d datagrams with retries disabled", h.col.Recovered())
	}
	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 || !res[0].Incomplete || res[0].MissingAFRs != len(rec.Missing) {
		t.Fatalf("loss not surfaced: %+v (missing %d)", res[0], len(rec.Missing))
	}
}

// TestChaosUDPDedupNeverDoubleCounts floods the pipeline with duplicates
// (including duplicated retransmissions) and asserts per-key counts stay
// exact — sequence dedup is what makes recovery idempotent.
func TestChaosUDPDedupNeverDoubleCounts(t *testing.T) {
	const n = 100
	h := newChaosHarness(t, faults.Config{Seed: 4, Drop: 0.10, Duplicate: 0.6, MaxDuplicates: 3})
	pol := RetryPolicy{MaxRetries: 25, Backoff: 2 * time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	rec := h.runChaosSubWindow(n, pol)
	if !rec.Complete {
		t.Fatalf("recovery exhausted: %+v", rec)
	}
	if h.inj.Stats().Duplicated == 0 {
		t.Fatal("schedule injected no duplicates")
	}
	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	for s := 0; s < n; s++ {
		if got := res[0].Values[fk(s)]; got != chaosAttr(s) {
			t.Fatalf("flow %d = %d, want %d: duplicate inflated the count", s, got, chaosAttr(s))
		}
	}
}

// TestChaosUDPSeedsAreReproducible: the same seed yields the same fault
// schedule on the wire, byte for byte, independent of receiver timing.
func TestChaosUDPSeedsAreReproducible(t *testing.T) {
	wireTrace := func() []string {
		inj := faults.New(faults.Config{Seed: 6, Drop: 0.2, Duplicate: 0.2, Reorder: 0.2, Truncate: 0.1, Corrupt: 0.1})
		var out []string
		for s := 0; s < 100; s++ {
			p := afrPkt(packet.AFR{Key: fk(s), SubWindow: 0, Attr: chaosAttr(s), Seq: uint32(s)})
			buf, err := wire.Encode(nil, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range inj.Datagrams(buf) {
				out = append(out, fmt.Sprintf("%x", d))
			}
		}
		for _, d := range inj.Flush() {
			out = append(out, fmt.Sprintf("%x", d))
		}
		return out
	}
	a, b := wireTrace(), wireTrace()
	if len(a) != len(b) {
		t.Fatalf("same seed, different wire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, wire divergence at datagram %d", i)
		}
	}
}
