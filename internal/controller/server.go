package controller

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"omniwindow/internal/metrics"
	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// Async guards a Controller for shared use by a network collector and the
// window-assembly driver. The controller itself is safe for concurrent use
// (ingest fans out to hash-partitioned shards), so unlike the earlier
// command-loop design, Receive/IngestAFRs calls from many collector
// goroutines proceed in parallel rather than serializing behind a single
// owner goroutine — the concurrent analogue of the paper's multi-core
// DPDK RX path. Async only adds a closed gate so late packets after Close
// are dropped instead of touching retired state.
type Async struct {
	mu     sync.RWMutex
	closed bool
	ctrl   *Controller
}

// NewAsync wraps ctrl. The caller must not use ctrl directly afterwards.
func NewAsync(ctrl *Controller) *Async {
	return &Async{ctrl: ctrl}
}

// Receive ingests a switch-to-controller packet (O1); concurrent-safe.
func (a *Async) Receive(p *packet.Packet) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return
	}
	a.ctrl.Receive(p)
}

// IngestAFRs ingests direct records (the RDMA path); concurrent-safe.
func (a *Async) IngestAFRs(recs []packet.AFR) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return
	}
	a.ctrl.IngestAFRs(recs)
}

// FinishSubWindow runs window assembly and returns the completed windows.
func (a *Async) FinishSubWindow(sw uint64) []WindowResult {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return nil
	}
	return a.ctrl.FinishSubWindow(sw)
}

// MissingSeqs queries the reliability state.
func (a *Async) MissingSeqs(sw uint64) []uint32 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return nil
	}
	return a.ctrl.MissingSeqs(sw)
}

// Reliability queries a sub-window's delivery accounting.
func (a *Async) Reliability(sw uint64) metrics.Reliability {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return metrics.Reliability{Expected: -1}
	}
	return a.ctrl.Reliability(sw)
}

// TableSize reports the key-value table size.
func (a *Async) TableSize() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return 0
	}
	return a.ctrl.TableSize()
}

// Close rejects all further operations; in-flight calls drain first.
func (a *Async) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
}

// Collector is a UDP server receiving wire-encoded AFR datagrams from
// switches — the network-facing stand-in for the paper's DPDK RX path.
// A dedicated reader goroutine drains the socket as fast as it can copy
// (minimizing kernel-buffer overflow drops, the analogue of DPDK's RX
// ring), handing datagrams to a pool of ingest workers that decode and
// feed the controller concurrently; the sink's sharded controller lets
// those workers proceed in parallel.
type Collector struct {
	conn    net.PacketConn
	sink    *Async
	readWG  sync.WaitGroup
	workWG  sync.WaitGroup
	queue   chan []byte
	drops   atomic.Int64
	recvd   atomic.Int64
	recov   atomic.Int64
	overrun atomic.Int64
}

// NewCollector starts serving datagrams from conn into sink with one
// ingest worker per core. Close the conn (or call Close) to stop.
func NewCollector(conn net.PacketConn, sink *Async) *Collector {
	return NewCollectorWorkers(conn, sink, runtime.GOMAXPROCS(0))
}

// NewCollectorWorkers starts serving datagrams with the given number of
// concurrent ingest workers (at least one).
func NewCollectorWorkers(conn net.PacketConn, sink *Async, workers int) *Collector {
	if workers < 1 {
		workers = 1
	}
	c := &Collector{conn: conn, sink: sink, queue: make(chan []byte, 4096)}
	c.readWG.Add(1)
	go c.readLoop()
	c.workWG.Add(workers)
	for i := 0; i < workers; i++ {
		go c.ingestLoop()
	}
	return c
}

// Addr returns the listening address.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// readLoop drains the socket, queueing raw datagrams for the workers.
func (c *Collector) readLoop() {
	defer c.readWG.Done()
	defer close(c.queue)
	scratch := make([]byte, 64*1024)
	for {
		n, _, err := c.conn.ReadFrom(scratch)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		d := make([]byte, n)
		copy(d, scratch[:n])
		select {
		case c.queue <- d:
		default:
			// Queue full: count the overrun but keep draining the
			// socket; blocking here would push the loss into the
			// kernel buffer where it is invisible.
			c.overrun.Add(1)
		}
	}
}

// ingestLoop decodes queued datagrams and feeds the controller.
// Retransmitted datagrams count as Recovered, not Received: a delivery
// barrier compares Received against first-transmission sends, and folding
// recoveries into it would make "everything sent has arrived" true before
// it is (the Drops-vs-Received accounting bug this split fixes).
func (c *Collector) ingestLoop() {
	defer c.workWG.Done()
	for d := range c.queue {
		p, err := wire.Decode(d)
		if err != nil {
			c.drops.Add(1)
			continue
		}
		c.sink.Receive(p)
		if p.OW.Flag == packet.OWRetransmit {
			c.recov.Add(1)
		} else {
			c.recvd.Add(1)
		}
	}
}

// Close stops the collector: the reader exits, the queue drains, and
// every ingest worker finishes before Close returns.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.readWG.Wait()
	c.workWG.Wait()
	return err
}

// Drops reports datagrams that failed to decode (truncated, corrupted —
// the wire checksum catches in-flight bit flips — or garbage). Safe to
// call while the collector is running.
func (c *Collector) Drops() int { return int(c.drops.Load()) }

// Received reports first-transmission datagrams that decoded and were
// fully ingested into the controller — a delivery barrier for callers
// that must observe all sent state (once Received covers every datagram
// sent, the controller's reliability view is current). Retransmitted
// datagrams are excluded; see Recovered. Safe to call while running.
func (c *Collector) Received() int { return int(c.recvd.Load()) }

// Recovered reports ingested OWRetransmit datagrams — records the
// reliability protocol brought back after loss. Keeping them out of
// Received gives observability tests exact delivery accounting: sent
// first transmissions reconcile against Received+Drops, NACK answers
// against Recovered. Safe to call while running.
func (c *Collector) Recovered() int { return int(c.recov.Load()) }

// Overruns reports datagrams discarded because the ingest queue was full
// (the reliability protocol's retransmission covers them, §8). Safe to
// call while the collector is running.
func (c *Collector) Overruns() int { return int(c.overrun.Load()) }

// SendDatagram wire-encodes p and sends it to addr over conn — the
// switch-side transmit helper.
func SendDatagram(conn net.PacketConn, addr net.Addr, p *packet.Packet) error {
	buf, err := wire.Encode(nil, p)
	if err != nil {
		return err
	}
	_, err = conn.WriteTo(buf, addr)
	return err
}
