package controller

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"omniwindow/internal/metrics"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/pool"
	"omniwindow/internal/wire"
)

// Async guards a Controller for shared use by a network collector and the
// window-assembly driver. The controller itself is safe for concurrent use
// (ingest fans out to hash-partitioned shards), so unlike the earlier
// command-loop design, Receive/IngestAFRs calls from many collector
// goroutines proceed in parallel rather than serializing behind a single
// owner goroutine — the concurrent analogue of the paper's multi-core
// DPDK RX path. Async only adds a closed gate so late packets after Close
// are dropped instead of touching retired state.
type Async struct {
	mu     sync.RWMutex
	closed bool
	ctrl   *Controller
}

// NewAsync wraps ctrl. The caller must not use ctrl directly afterwards.
func NewAsync(ctrl *Controller) *Async {
	return &Async{ctrl: ctrl}
}

// Receive ingests a switch-to-controller packet (O1); concurrent-safe.
func (a *Async) Receive(p *packet.Packet) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return
	}
	a.ctrl.Receive(p)
}

// IngestAFRs ingests direct records (the RDMA path); concurrent-safe.
func (a *Async) IngestAFRs(recs []packet.AFR) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return
	}
	a.ctrl.IngestAFRs(recs)
}

// FinishSubWindow runs window assembly and returns the completed windows.
func (a *Async) FinishSubWindow(sw uint64) []WindowResult {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return nil
	}
	return a.ctrl.FinishSubWindow(sw)
}

// MissingSeqs queries the reliability state.
func (a *Async) MissingSeqs(sw uint64) []uint32 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return nil
	}
	return a.ctrl.MissingSeqs(sw)
}

// Reliability queries a sub-window's delivery accounting.
func (a *Async) Reliability(sw uint64) metrics.Reliability {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return metrics.Reliability{Expected: -1}
	}
	return a.ctrl.Reliability(sw)
}

// TableSize reports the key-value table size.
func (a *Async) TableSize() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return 0
	}
	return a.ctrl.TableSize()
}

// NoteShed records admission-control drops against a sub-window's
// reliability accounting (see Controller.NoteShed).
func (a *Async) NoteShed(sw uint64, n int) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return
	}
	a.ctrl.NoteShed(sw, n)
}

// Close rejects all further operations; in-flight calls drain first.
func (a *Async) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
}

// ShedPolicy selects what admission control drops when the ingest queue
// backs up.
type ShedPolicy int

const (
	// ShedRecoverableFirst is the default: above the watermark,
	// first-transmission AFR datagrams are shed — the reliability
	// protocol's NACK/retransmit path can bring every one of them back —
	// while retransmissions (already-recovered data; shedding them risks
	// exhausting the retry budget) are kept until the queue is hard-full.
	// Control frames are never queued, so they are never shed.
	ShedRecoverableFirst ShedPolicy = iota
	// ShedTailDrop disables the priority tiers: any data frame arriving
	// at a full queue is dropped, none earlier. This is the legacy
	// overrun behaviour, kept for comparison runs — but unlike the old
	// silent discard, drops are still peeked and attributed to their
	// sub-windows.
	ShedTailDrop
)

// CollectorConfig tunes the UDP collector's worker pool and admission
// control. The zero value reproduces the defaults.
type CollectorConfig struct {
	// Workers is the number of concurrent ingest workers (<= 0 means one
	// per core).
	Workers int
	// MaxQueueDepth bounds the raw-datagram queue between the socket
	// reader and the ingest workers (<= 0 means 4096).
	MaxQueueDepth int
	// ShedWatermark is the queue-fill fraction above which the shed
	// policy starts dropping recoverable datagrams (<= 0 means 0.75;
	// values >= 1 only shed when hard-full).
	ShedWatermark float64
	// Policy selects what to shed under pressure.
	Policy ShedPolicy
	// OnClose, when set, runs after the reader has exited and every
	// ingest worker has drained, before Close returns — the hook for
	// flushing a WAL segment or final accounting exactly once, after the
	// last record is ingested.
	OnClose func()
}

// Collector is a UDP server receiving wire-encoded AFR datagrams from
// switches — the network-facing stand-in for the paper's DPDK RX path.
// A dedicated reader goroutine drains the socket as fast as it can copy
// (minimizing kernel-buffer overflow drops, the analogue of DPDK's RX
// ring), handing datagrams to a pool of ingest workers that decode and
// feed the controller concurrently; the sink's sharded controller lets
// those workers proceed in parallel.
//
// The reader applies admission control instead of silently discarding on
// queue overflow: control frames (triggers and anything else without AFR
// payload) are decoded inline and always delivered, and data frames shed
// under pressure are first header-peeked so the drop is charged to the
// right sub-window's reliability accounting — the C&R driver then NACKs
// the gap and the retransmit path recovers the shed records.
type Collector struct {
	conn      net.PacketConn
	sink      *Async
	readWG    sync.WaitGroup
	workWG    sync.WaitGroup
	queue     chan []byte
	watermark int
	policy    ShedPolicy
	onClose   func()
	drops     atomic.Int64
	recvd     atomic.Int64
	recov     atomic.Int64
	overrun   atomic.Int64
	shedAFRs  atomic.Int64
}

// NewCollector starts serving datagrams from conn into sink with one
// ingest worker per core. Close the conn (or call Close) to stop.
func NewCollector(conn net.PacketConn, sink *Async) *Collector {
	return NewCollectorConfig(conn, sink, CollectorConfig{})
}

// NewCollectorWorkers starts serving datagrams with the given number of
// concurrent ingest workers (at least one).
func NewCollectorWorkers(conn net.PacketConn, sink *Async, workers int) *Collector {
	return NewCollectorConfig(conn, sink, CollectorConfig{Workers: workers})
}

// NewCollectorConfig starts serving datagrams with explicit worker-pool
// and admission-control settings.
func NewCollectorConfig(conn net.PacketConn, sink *Async, cfg CollectorConfig) *Collector {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 4096
	}
	if cfg.ShedWatermark <= 0 {
		cfg.ShedWatermark = 0.75
	}
	wm := int(cfg.ShedWatermark * float64(cfg.MaxQueueDepth))
	if wm > cfg.MaxQueueDepth {
		wm = cfg.MaxQueueDepth
	}
	c := &Collector{
		conn:      conn,
		sink:      sink,
		queue:     make(chan []byte, cfg.MaxQueueDepth),
		watermark: wm,
		policy:    cfg.Policy,
		onClose:   cfg.OnClose,
	}
	c.readWG.Add(1)
	go c.readLoop()
	c.workWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go c.ingestLoop()
	}
	return c
}

// Addr returns the listening address.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// readLoop drains the socket, triaging each datagram: control frames are
// decoded and delivered inline (they are tiny, rare, and must never be
// shed — losing a trigger blinds the gap detector for a whole
// sub-window), data frames are queued for the workers or shed per the
// admission policy.
//
// Datagram copies come from internal/pool and are owned by exactly one
// stage at a time: the reader until the queue send, then the ingest worker
// that decodes and releases them. Shed or inline-handled datagrams are
// released here. The triage itself uses the allocation-free PeekFlag; the
// full (map-building) PeekDatagram runs only on the shed path.
func (c *Collector) readLoop() {
	defer c.readWG.Done()
	defer close(c.queue)
	scratch := make([]byte, 64*1024)
	var ctl packet.Packet // reused decode target for inline control frames
	for {
		n, _, err := c.conn.ReadFrom(scratch)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		d := pool.GetBuf(n)
		copy(d, scratch[:n])

		flag, peeked := wire.PeekFlag(d)
		if peeked && flag != packet.OWAFR && flag != packet.OWRetransmit {
			// Control frame: full CRC-checked decode, delivered inline.
			// Receive copies what it keeps, so the reused packet and the
			// pooled buffer are both free again afterwards.
			if err := wire.DecodeInto(&ctl, d); err == nil {
				c.sink.Receive(&ctl)
				c.recvd.Add(1)
			} else {
				c.drops.Add(1)
			}
			pool.PutBuf(d)
			continue
		}

		depth := len(c.queue)
		if c.policy == ShedRecoverableFirst && depth >= c.watermark &&
			(!peeked || flag == packet.OWAFR) {
			// Above the watermark: shed recoverable first transmissions
			// (and unpeekable garbage) to keep room for retransmissions.
			c.shedData(d)
			continue
		}
		select {
		case c.queue <- d: // ownership moves to an ingest worker
		default:
			// Hard-full: shed whatever this is, but attribute the loss.
			// Blocking here would push the loss into the kernel buffer
			// where it is invisible.
			c.shedData(d)
		}
	}
}

// shedData attributes and releases one data frame the admission policy
// dropped.
func (c *Collector) shedData(d []byte) {
	pk, peeked := wire.PeekDatagram(d)
	c.shed(pk, peeked)
	pool.PutBuf(d)
}

// shed records one dropped data frame: the overrun counter always, and —
// when the header peeked cleanly — each carried AFR charged to its
// sub-window's reliability accounting, so the sub-window finalizes with
// Shed set and the NACK path knows to re-query the gap. Peeking is
// advisory (no CRC): a corrupt header at worst misattributes a drop, it
// cannot corrupt controller state.
func (c *Collector) shed(pk wire.Peek, peeked bool) {
	c.overrun.Add(1)
	if !peeked {
		return
	}
	for sw, n := range pk.AFRSubWindows {
		c.shedAFRs.Add(int64(n))
		c.sink.NoteShed(sw, n)
	}
}

// ingestLoop decodes queued datagrams and feeds the controller.
// Retransmitted datagrams count as Recovered, not Received: a delivery
// barrier compares Received against first-transmission sends, and folding
// recoveries into it would make "everything sent has arrived" true before
// it is (the Drops-vs-Received accounting bug this split fixes).
func (c *Collector) ingestLoop() {
	defer c.workWG.Done()
	// One long-lived packet per worker: DecodeInto reuses its AFR slice
	// capacity, and Receive copies everything it keeps, so the worker's
	// steady state allocates nothing.
	var p packet.Packet
	for d := range c.queue {
		err := wire.DecodeInto(&p, d)
		pool.PutBuf(d) // the frame is parsed (or rejected); release either way
		if err != nil {
			c.drops.Add(1)
			continue
		}
		c.sink.Receive(&p)
		if p.OW.Flag == packet.OWRetransmit {
			c.recov.Add(1)
		} else {
			c.recvd.Add(1)
		}
	}
}

// Close stops the collector gracefully: the reader exits, the queue
// drains, every in-flight ingest worker finishes, and the OnClose hook
// (if any) runs — all before Close returns. Records already read off the
// socket are never abandoned mid-decode.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.readWG.Wait()
	c.workWG.Wait()
	if c.onClose != nil {
		c.onClose()
	}
	return err
}

// Drops reports datagrams that failed to decode (truncated, corrupted —
// the wire checksum catches in-flight bit flips — or garbage). Safe to
// call while the collector is running.
func (c *Collector) Drops() int { return int(c.drops.Load()) }

// Received reports first-transmission datagrams that decoded and were
// fully ingested into the controller — a delivery barrier for callers
// that must observe all sent state (once Received covers every datagram
// sent, the controller's reliability view is current). Retransmitted
// datagrams are excluded; see Recovered. Safe to call while running.
func (c *Collector) Received() int { return int(c.recvd.Load()) }

// Recovered reports ingested OWRetransmit datagrams — records the
// reliability protocol brought back after loss. Keeping them out of
// Received gives observability tests exact delivery accounting: sent
// first transmissions reconcile against Received+Drops, NACK answers
// against Recovered. Safe to call while running.
func (c *Collector) Recovered() int { return int(c.recov.Load()) }

// Overruns reports data datagrams shed by admission control — at the
// watermark under ShedRecoverableFirst, or only when hard-full under
// ShedTailDrop. The reliability protocol's retransmission covers them
// (§8), and each shed datagram's records are charged to their
// sub-windows' accounting (see ShedAFRs). Safe to call while running.
func (c *Collector) Overruns() int { return int(c.overrun.Load()) }

// ShedAFRs reports individual AFR records inside shed datagrams whose
// headers peeked cleanly enough to attribute (Overruns counts datagrams;
// this counts records). Safe to call while the collector is running.
func (c *Collector) ShedAFRs() int { return int(c.shedAFRs.Load()) }

// Instrument exports the collector's live counters on reg as scrape-time
// func metrics — the collector already keeps its accounting in atomics,
// so exporting reads the same variables instead of double-counting
// through parallel obs counters. labels is an optional embedded label set
// (e.g. `app="ddos"`); empty means unlabeled. Safe to call while the
// collector is running.
func (c *Collector) Instrument(reg *obs.Registry, labels string) {
	n := func(name string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	reg.CounterFunc(n("omniwindow_collector_received_total"), "first-transmission datagrams decoded and ingested", c.recvd.Load)
	reg.CounterFunc(n("omniwindow_collector_recovered_total"), "retransmitted datagrams ingested via the NACK path", c.recov.Load)
	reg.CounterFunc(n("omniwindow_collector_decode_failures_total"), "datagrams that failed to decode", c.drops.Load)
	reg.CounterFunc(n("omniwindow_collector_overruns_total"), "data datagrams shed by admission control", c.overrun.Load)
	reg.CounterFunc(n("omniwindow_collector_shed_afrs_total"), "AFR records inside shed datagrams attributed by header peek", c.shedAFRs.Load)
	reg.GaugeFunc(n("omniwindow_collector_queue_depth"), "raw datagrams waiting between the socket reader and ingest workers", func() int64 { return int64(len(c.queue)) })
	reg.GaugeFunc(n("omniwindow_collector_table_size"), "flows resident in the controller key-value table", func() int64 { return int64(c.sink.TableSize()) })
}

// SendDatagram wire-encodes p into a pooled buffer and sends it to addr
// over conn — the switch-side transmit helper. WriteTo does not retain its
// argument (the fault-injecting wrapper copies before parking datagrams
// for reorder), so the buffer is released as soon as the send returns.
func SendDatagram(conn net.PacketConn, addr net.Addr, p *packet.Packet) error {
	buf := pool.GetBuf(wire.EncodedSize(p))
	enc, err := wire.Encode(buf, p)
	if err != nil {
		pool.PutBuf(buf)
		return err
	}
	_, err = conn.WriteTo(enc, addr)
	pool.PutBuf(enc)
	return err
}
