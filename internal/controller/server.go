package controller

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"omniwindow/internal/packet"
	"omniwindow/internal/wire"
)

// Async serializes access to a Controller behind a single goroutine, so a
// network collector and the window-assembly driver can share it safely.
// All methods are safe for concurrent use; operations execute in arrival
// order on the owning goroutine (the paper's controller likewise pins the
// collection loop to dedicated DPDK cores).
type Async struct {
	// ctrl is set once at construction and then touched only by the
	// command-loop goroutine.
	ctrl *Controller
	cmds chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewAsync starts the command loop around ctrl. The caller must not use
// ctrl directly afterwards.
func NewAsync(ctrl *Controller) *Async {
	a := &Async{ctrl: ctrl, cmds: make(chan func(), 1024)}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for f := range a.cmds {
			f()
		}
	}()
	return a
}

// submit enqueues an operation unless the loop is closed.
func (a *Async) submit(f func()) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return false
	}
	a.cmds <- f
	return true
}

// Receive enqueues a switch-to-controller packet (async, O1).
func (a *Async) Receive(p *packet.Packet) {
	a.submit(func() { a.c().Receive(p) })
}

// IngestAFRs enqueues direct records (the RDMA path).
func (a *Async) IngestAFRs(recs []packet.AFR) {
	a.submit(func() { a.c().IngestAFRs(recs) })
}

// FinishSubWindow runs window assembly synchronously and returns the
// completed windows.
func (a *Async) FinishSubWindow(sw uint64) []WindowResult {
	ch := make(chan []WindowResult, 1)
	if !a.submit(func() { ch <- a.c().FinishSubWindow(sw) }) {
		return nil
	}
	return <-ch
}

// MissingSeqs queries the reliability state synchronously.
func (a *Async) MissingSeqs(sw uint64) []uint32 {
	ch := make(chan []uint32, 1)
	if !a.submit(func() { ch <- a.c().MissingSeqs(sw) }) {
		return nil
	}
	return <-ch
}

// TableSize reports the key-value table size synchronously.
func (a *Async) TableSize() int {
	ch := make(chan int, 1)
	if !a.submit(func() { ch <- a.c().TableSize() }) {
		return 0
	}
	return <-ch
}

// Close drains and stops the command loop.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.cmds)
	a.wg.Wait()
}

// c returns the wrapped controller (command-loop goroutine only).
func (a *Async) c() *Controller { return a.ctrl }

// Collector is a UDP server receiving wire-encoded AFR datagrams from
// switches — the network-facing stand-in for the paper's DPDK RX path.
type Collector struct {
	conn  net.PacketConn
	sink  *Async
	wg    sync.WaitGroup
	drops atomic.Int64
}

// NewCollector starts serving datagrams from conn into sink. Close the
// conn (or call Close) to stop.
func NewCollector(conn net.PacketConn, sink *Async) *Collector {
	c := &Collector{conn: conn, sink: sink}
	c.wg.Add(1)
	go c.loop()
	return c
}

// Addr returns the listening address.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

func (c *Collector) loop() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		p, err := wire.Decode(buf[:n])
		if err != nil {
			c.drops.Add(1)
			continue
		}
		c.sink.Receive(p)
	}
}

// Close stops the collector and waits for the loop to exit.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// Drops reports datagrams that failed to decode. Safe to call while the
// collector is running.
func (c *Collector) Drops() int { return int(c.drops.Load()) }

// SendDatagram wire-encodes p and sends it to addr over conn — the
// switch-side transmit helper.
func SendDatagram(conn net.PacketConn, addr net.Addr, p *packet.Packet) error {
	buf, err := wire.Encode(nil, p)
	if err != nil {
		return err
	}
	_, err = conn.WriteTo(buf, addr)
	return err
}
