package controller

import (
	"net"
	"testing"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

func TestAsyncSerializesOperations(t *testing.T) {
	a := NewAsync(New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 5, CaptureValues: true}))
	defer a.Close()

	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 50; i++ {
				a.Receive(afrPkt(packet.AFR{
					Key: fk(g*100 + i), SubWindow: 0, Attr: 10, Seq: uint32(g*50 + i),
				}))
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	res := a.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if len(res[0].Values) != 400 {
		t.Fatalf("flows = %d want 400", len(res[0].Values))
	}
	if a.TableSize() != 0 { // tumbling(1): everything retired
		t.Fatalf("table size = %d", a.TableSize())
	}
}

func TestAsyncAfterCloseIsSafe(t *testing.T) {
	a := NewAsync(New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency}))
	a.Close()
	a.Close() // idempotent
	a.Receive(afrPkt(rec(1, 0, 1, 0)))
	if got := a.FinishSubWindow(0); got != nil {
		t.Fatalf("closed async returned %v", got)
	}
	if a.MissingSeqs(0) != nil || a.TableSize() != 0 {
		t.Fatal("closed async returned state")
	}
}

func TestCollectorOverUDP(t *testing.T) {
	// Controller side: UDP listener feeding an Async controller.
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewAsync(New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 3, CaptureValues: true}))
	col := NewCollector(serverConn, sink)
	defer sink.Close()

	// Switch side: send AFR datagrams plus the trigger.
	switchConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer switchConn.Close()

	trig := &packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: 20}}
	if err := SendDatagram(switchConn, col.Addr(), trig); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := afrPkt(packet.AFR{Key: fk(i), SubWindow: 0, Attr: uint64(i), Seq: uint32(i)})
		if err := SendDatagram(switchConn, col.Addr(), p); err != nil {
			t.Fatal(err)
		}
	}
	// Garbage datagram: must be dropped, not crash the loop.
	if _, err := switchConn.WriteTo([]byte("not omniwindow"), col.Addr()); err != nil {
		t.Fatal(err)
	}

	// Wait until every valid datagram has been ingested and the garbage
	// one dropped; then the reliability check must see every sequence.
	deadline := time.Now().Add(5 * time.Second)
	for col.Received() < 21 || col.Drops() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("datagrams not delivered: %d ingested, %d dropped; missing %v",
				col.Received(), col.Drops(), sink.MissingSeqs(0))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if missing := sink.MissingSeqs(0); missing != nil {
		t.Fatalf("AFRs not all received; missing %v", missing)
	}

	res := sink.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if len(res[0].Values) != 20 {
		t.Fatalf("flows = %d", len(res[0].Values))
	}
	for i := 0; i < 20; i++ {
		if res[0].Values[fk(i)] != uint64(i) {
			t.Fatalf("flow %d = %d", i, res[0].Values[fk(i)])
		}
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if col.Drops() != 1 {
		t.Fatalf("drops = %d want 1", col.Drops())
	}
}
