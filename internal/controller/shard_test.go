package controller

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// randomKey draws a flow key with enough entropy to spread across shards.
func randomKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(1 << 16)),
		DstPort: uint16(rng.Intn(1 << 16)),
		Proto:   packet.ProtoTCP,
	}
}

// shardedTrace builds a deterministic multi-sub-window AFR stream with
// duplicates sprinkled in (same seq re-delivered) so dedup is exercised.
func shardedTrace(seed int64, subWindows, flowsPerSub int) [][]packet.AFR {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]packet.FlowKey, flowsPerSub*2)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	batches := make([][]packet.AFR, subWindows)
	for sw := range batches {
		for i := 0; i < flowsPerSub; i++ {
			r := packet.AFR{
				Key:       keys[rng.Intn(len(keys))],
				SubWindow: uint64(sw),
				Attr:      uint64(rng.Intn(100) + 1),
				Seq:       uint32(i),
			}
			batches[sw] = append(batches[sw], r)
			if rng.Intn(10) == 0 {
				batches[sw] = append(batches[sw], r) // duplicate delivery
			}
		}
	}
	return batches
}

// TestShardedDeterminism: FinishSubWindow output must be identical for
// Shards=1 (the exact sequential controller) and Shards=8 on the same
// trace, across kinds and plans — the fold is a deterministic sorted
// merge, so sharding must never change results.
func TestShardedDeterminism(t *testing.T) {
	kinds := []afr.Kind{afr.Frequency, afr.Max, afr.Min, afr.Existence}
	plans := []window.Plan{window.Tumbling(2), window.SlidingPlan(3, 1), window.SlidingPlan(4, 2)}
	for ki, kind := range kinds {
		for pi, plan := range plans {
			batches := shardedTrace(int64(ki*10+pi), 8, 300)
			seq := New(Config{Plan: plan, Kind: kind, Threshold: 150, CaptureValues: true, Shards: 1})
			par := New(Config{Plan: plan, Kind: kind, Threshold: 150, CaptureValues: true, Shards: 8})
			if seq.Shards() != 1 || par.Shards() != 8 {
				t.Fatalf("shard counts = %d, %d", seq.Shards(), par.Shards())
			}
			for sw, recs := range batches {
				seq.IngestAFRs(recs)
				par.IngestAFRs(recs)
				got := par.FinishSubWindow(uint64(sw))
				want := seq.FinishSubWindow(uint64(sw))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("kind %v plan %+v sw %d: sharded output diverged\n got %+v\nwant %+v",
						kind, plan, sw, got, want)
				}
				if got, want := par.TableSize(), seq.TableSize(); got != want {
					t.Fatalf("table size diverged: %d vs %d", got, want)
				}
			}
		}
	}
}

// TestConcurrentIngest hammers IngestAFRs and Receive from many goroutines
// (run under -race by the CI race job); the merged window must account for
// every unique sequence exactly once.
func TestConcurrentIngest(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 1, CaptureValues: true, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				r := packet.AFR{
					Key:       packet.FlowKey{SrcIP: uint32(g*perG + i), DstPort: 443, Proto: packet.ProtoTCP},
					SubWindow: 0,
					Attr:      7,
					Seq:       uint32(g*perG + i),
				}
				if rng.Intn(2) == 0 {
					c.IngestAFRs([]packet.AFR{r, r}) // duplicate in-batch
				} else {
					c.Receive(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: []packet.AFR{r}}})
				}
			}
		}(g)
	}
	wg.Wait()
	res := c.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if len(res[0].Values) != goroutines*perG {
		t.Fatalf("flows = %d want %d", len(res[0].Values), goroutines*perG)
	}
	for k, v := range res[0].Values {
		if v != 7 {
			t.Fatalf("flow %v merged %d want 7 (lost or double-counted)", k, v)
		}
	}
}

// TestIngestDuringFinish overlaps ingest for the next sub-window with
// assembly of the current one; no record may be lost or attributed to the
// wrong sub-window.
func TestIngestDuringFinish(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 1, CaptureValues: true, Shards: 4})
	const flows = 2000
	for i := 0; i < flows; i++ {
		c.IngestAFRs([]packet.AFR{{
			Key: packet.FlowKey{SrcIP: uint32(i), Proto: packet.ProtoTCP}, SubWindow: 0, Attr: 1, Seq: uint32(i),
		}})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < flows; i++ {
			c.IngestAFRs([]packet.AFR{{
				Key: packet.FlowKey{SrcIP: uint32(i), Proto: packet.ProtoTCP}, SubWindow: 1, Attr: 1, Seq: uint32(i),
			}})
		}
	}()
	res0 := c.FinishSubWindow(0)
	<-done
	res1 := c.FinishSubWindow(1)
	if len(res0) != 1 || len(res0[0].Values) != flows {
		t.Fatalf("window 0 flows = %d want %d", len(res0[0].Values), flows)
	}
	if len(res1) != 1 || len(res1[0].Values) != flows {
		t.Fatalf("window 1 flows = %d want %d", len(res1[0].Values), flows)
	}
}

// TestNewWithError rejects invalid plans as errors, while New preserves
// the panic contract for programmatic construction.
func TestNewWithError(t *testing.T) {
	if _, err := NewWithError(Config{Plan: window.Plan{Size: 0, Slide: 1}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	c, err := NewWithError(Config{Plan: window.Tumbling(2), Kind: afr.Frequency, Shards: 3})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if c.Shards() != 3 {
		t.Fatalf("shards = %d want 3", c.Shards())
	}
	// Shards <= 0 defaults to a positive count.
	c = New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency})
	if c.Shards() < 1 {
		t.Fatalf("default shards = %d", c.Shards())
	}
}

// TestShardedOpTimes: per-shard durations must aggregate into the
// sub-window's OpTimes even when work is spread across workers.
func TestShardedOpTimes(t *testing.T) {
	c := New(Config{Plan: window.SlidingPlan(2, 1), Kind: afr.Frequency, Threshold: 1, Shards: 4})
	for sw := 0; sw < 3; sw++ {
		recs := make([]packet.AFR, 500)
		for i := range recs {
			recs[i] = packet.AFR{Key: packet.FlowKey{SrcIP: uint32(i)}, SubWindow: uint64(sw), Attr: 1, Seq: uint32(i)}
		}
		c.Receive(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: recs}})
		c.FinishSubWindow(uint64(sw))
	}
	t2 := c.Times(2)
	if t2.Collect <= 0 || t2.Insert <= 0 || t2.Merge <= 0 || t2.Process <= 0 || t2.Evict <= 0 {
		t.Fatalf("missing aggregated timings: %+v", t2)
	}
}
