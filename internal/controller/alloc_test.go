package controller

import (
	"fmt"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/pool"
	"omniwindow/internal/window"
	"omniwindow/internal/wire"
)

// These tests pin the pooled hot path at zero steady-state allocations
// per operation, mirroring the obs package's no-op pins: once the pool
// classes, shard pending slices, dedup bitset and ingest scratch are
// warm, decoding a frame and ingesting its records must produce no
// garbage at all. A regression here is a GC-pressure regression
// proportional to traffic, which is exactly what the pooling layer
// exists to prevent.
//
// Priming strategy: pool size classes are powers of two, so one large
// batch on the measured sub-window leaves every shard's pending slice
// with append slack far beyond what the measured runs add, and one high
// sequence number sizes the dedup bitset so measured (lower) sequences
// never grow its word array. testing.AllocsPerRun's own warm-up call
// covers the remaining first-touch map entries.

// allocPrime floods the controller with one large distinct-seq batch on
// sub-window 0, pre-sizing shard pending slices and the dedup bitset.
// Primed seqs live in [primeBase, primeBase+n); measured seqs must stay
// below primeBase.
const allocPrimeBase = 1 << 20

func allocPrime(c *Controller, n int) {
	recs := make([]packet.AFR, n)
	for i := range recs {
		recs[i] = packet.AFR{Key: fk(i), SubWindow: 0, Attr: 1, Seq: uint32(allocPrimeBase + i)}
	}
	c.Receive(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: recs}})
}

func newAllocController() *Controller {
	return New(Config{
		Plan: window.Tumbling(8), Kind: afr.Frequency, Threshold: 1 << 62,
		Shards: 4, ExpectedFlows: 1 << 16,
	})
}

// TestDecodeIngestZeroAlloc pins the full collector worker loop body —
// wire.DecodeInto into a long-lived packet, then Controller.Receive — at
// zero allocations per frame in the pooled steady state.
func TestDecodeIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	pool.SetEnabled(true)
	t.Cleanup(func() { pool.SetEnabled(true) })

	const (
		batch = 16
		runs  = 500
	)
	c := newAllocController()
	allocPrime(c, 72_000) // ~18k/shard -> 32k-cap pending slices

	// Pre-encode one frame per run, each with fresh sequence numbers (all
	// below the primed range) so every measured record takes the admit
	// path, not the duplicate path.
	frames := make([][]byte, runs+1)
	seq := uint32(0)
	for i := range frames {
		recs := make([]packet.AFR, batch)
		for j := range recs {
			recs[j] = packet.AFR{Key: fk(int(seq)), SubWindow: 0, Attr: 1, Seq: seq}
			seq++
		}
		enc, err := wire.Encode(nil, &packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: recs}})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = enc
	}

	var p packet.Packet
	var decodeErr error
	i := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if err := wire.DecodeInto(&p, frames[i%len(frames)]); err != nil {
			decodeErr = err
			return
		}
		i++
		c.Receive(&p)
	})
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if allocs != 0 {
		t.Fatalf("decode→ingest allocated %v per frame in steady state, want 0", allocs)
	}
}

// TestIngestAFRsZeroAlloc pins the direct (RDMA-path) batch ingest at
// zero allocations per batch in the pooled steady state.
func TestIngestAFRsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is perturbed by the race detector")
	}
	pool.SetEnabled(true)
	t.Cleanup(func() { pool.SetEnabled(true) })

	const (
		batch = 16
		runs  = 500
	)
	c := newAllocController()
	allocPrime(c, 72_000)

	batches := make([][]packet.AFR, runs+1)
	seq := uint32(0)
	for i := range batches {
		recs := make([]packet.AFR, batch)
		for j := range recs {
			recs[j] = packet.AFR{Key: fk(int(seq)), SubWindow: 0, Attr: 1, Seq: seq}
			seq++
		}
		batches[i] = recs
	}

	i := 0
	allocs := testing.AllocsPerRun(runs, func() {
		c.IngestAFRs(batches[i%len(batches)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("IngestAFRs allocated %v per batch in steady state, want 0", allocs)
	}
}

// TestBatchSizeDifferential: the batched ingest path must be a pure
// performance change — record-at-a-time, whole-batch, packet-sized
// chunks, and pooling on vs off all yield identical window results and
// reliability accounting for the same record stream.
func TestBatchSizeDifferential(t *testing.T) {
	const (
		flows = 500
		subs  = 4
	)
	stream := make([]packet.AFR, 0, flows*subs)
	for sw := 0; sw < subs; sw++ {
		for f := 0; f < flows; f++ {
			stream = append(stream, packet.AFR{
				Key: fk(f % 97), SubWindow: uint64(sw),
				Attr: uint64(f%7 + 1), Seq: uint32(sw*flows + f),
			})
		}
	}

	run := func(pooled bool, chunk int) ([]WindowResult, []string) {
		pool.SetEnabled(pooled)
		defer pool.SetEnabled(true)
		c := New(Config{
			Plan: window.Tumbling(2), Kind: afr.Frequency, Threshold: 40,
			Shards: 4, CaptureValues: true,
		})
		for at := 0; at < len(stream); at += chunk {
			end := at + chunk
			if end > len(stream) {
				end = len(stream)
			}
			c.IngestAFRs(stream[at:end])
		}
		var out []WindowResult
		var rels []string
		for sw := 0; sw < subs; sw++ {
			out = append(out, c.FinishSubWindow(uint64(sw))...)
			rels = append(rels, fmt.Sprintf("%+v", c.Reliability(uint64(sw))))
		}
		return out, rels
	}

	baseRes, baseRel := run(true, len(stream))
	if len(baseRes) == 0 {
		t.Fatal("baseline produced no windows")
	}
	variants := []struct {
		name   string
		pooled bool
		chunk  int
	}{
		{"pooled/chunk=1", true, 1},
		{"pooled/chunk=32", true, 32},
		{"unpooled/chunk=1", false, 1},
		{"unpooled/chunk=32", false, 32},
		{"unpooled/whole", false, len(stream)},
	}
	for _, v := range variants {
		res, rel := run(v.pooled, v.chunk)
		if err := windowsEqual(baseRes, res); err != nil {
			t.Fatalf("%s diverged from baseline: %v", v.name, err)
		}
		for i := range rel {
			if rel[i] != baseRel[i] {
				t.Fatalf("%s reliability[%d] = %s, baseline %s", v.name, i, rel[i], baseRel[i])
			}
		}
	}
}

// windowsEqual compares two result sequences structurally and reports
// the first difference.
func windowsEqual(a, b []WindowResult) error {
	if len(a) != len(b) {
		return fmt.Errorf("window count %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := fmt.Sprintf("%+v", a[i]), fmt.Sprintf("%+v", b[i])
		if x != y {
			return fmt.Errorf("window %d:\n  %s\nvs\n  %s", i, x, y)
		}
	}
	return nil
}
