package controller

import (
	"net"
	"testing"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// shedHarness is a collector over real loopback UDP with a vanishing shed
// watermark: watermark 0 means EVERY first-transmission data frame is shed
// under ShedRecoverableFirst, with no dependency on worker-drain timing —
// the admission-control paths become fully deterministic.
type shedHarness struct {
	t    *testing.T
	sink *Async
	col  *Collector
	sw   net.PacketConn
}

func newShedHarness(t *testing.T, policy ShedPolicy) *shedHarness {
	t.Helper()
	serverConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewAsync(New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 1, CaptureValues: true}))
	col := NewCollectorConfig(serverConn, sink, CollectorConfig{
		Workers:       2,
		MaxQueueDepth: 64,
		ShedWatermark: 0.001, // floors to 0: shed every recoverable frame
		Policy:        policy,
	})
	switchConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &shedHarness{t: t, sink: sink, col: col, sw: switchConn}
	t.Cleanup(func() {
		col.Close()
		sink.Close()
		switchConn.Close()
	})
	return h
}

func (h *shedHarness) send(p *packet.Packet) {
	h.t.Helper()
	if err := SendDatagram(h.sw, h.col.Addr(), p); err != nil {
		h.t.Fatal(err)
	}
}

// wait polls until cond holds (the UDP path is asynchronous even though the
// shed decisions are not).
func (h *shedHarness) wait(what string, cond func() bool) {
	h.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			h.t.Fatalf("timed out waiting for %s (received %d, recovered %d, overruns %d, shedAFRs %d)",
				what, h.col.Received(), h.col.Recovered(), h.col.Overruns(), h.col.ShedAFRs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShedRecoverableFirstRecoversEverything: first transmissions shed at
// the watermark are charged to their sub-window, the gap detector NACKs
// them, and retransmissions — which the policy admits past the watermark —
// bring every record back: the window finalizes exact, Shed accounted but
// not Degraded.
func TestShedRecoverableFirstRecoversEverything(t *testing.T) {
	h := newShedHarness(t, ShedRecoverableFirst)

	// Control frame: never shed, even at watermark 0.
	h.send(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: 3}})
	h.wait("trigger delivery", func() bool { return h.col.Received() == 1 })

	for i := 0; i < 3; i++ {
		h.send(afrPkt(rec(i, 0, 10+i, i)))
	}
	h.wait("watermark shedding", func() bool { return h.col.Overruns() == 3 && h.col.ShedAFRs() == 3 })
	if got := h.sink.MissingSeqs(0); len(got) != 3 {
		t.Fatalf("shed records not NACKable: missing %v", got)
	}
	if rel := h.sink.Reliability(0); rel.Shed != 3 {
		t.Fatalf("shed not attributed: %+v", rel)
	}

	// The NACK answer: retransmissions pass the watermark under this policy.
	for i := 0; i < 3; i++ {
		p := afrPkt(rec(i, 0, 10+i, i))
		p.OW.Flag = packet.OWRetransmit
		h.send(p)
	}
	h.wait("retransmit ingest", func() bool { return h.col.Recovered() == 3 })
	if got := h.sink.MissingSeqs(0); got != nil {
		t.Fatalf("still missing after retransmit: %v", got)
	}

	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	w := res[0]
	if w.ShedAFRs != 3 {
		t.Fatalf("window ShedAFRs = %d want 3", w.ShedAFRs)
	}
	if w.Degraded || w.Incomplete {
		t.Fatalf("fully recovered window marked Degraded=%v Incomplete=%v", w.Degraded, w.Incomplete)
	}
	for i := 0; i < 3; i++ {
		if w.Values[fk(i)] != uint64(10+i) {
			t.Fatalf("flow %d = %d want %d", i, w.Values[fk(i)], 10+i)
		}
	}
}

// TestShedUnrecoveredMarksDegraded: shed records that the retransmit path
// never brings back leave the window both Incomplete (data is missing) and
// Degraded (the cause was overload, not wire loss).
func TestShedUnrecoveredMarksDegraded(t *testing.T) {
	h := newShedHarness(t, ShedRecoverableFirst)

	h.send(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: 2}})
	h.wait("trigger delivery", func() bool { return h.col.Received() == 1 })
	for i := 0; i < 2; i++ {
		h.send(afrPkt(rec(i, 0, 5, i)))
	}
	h.wait("watermark shedding", func() bool { return h.col.ShedAFRs() == 2 })

	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	w := res[0]
	if !w.Degraded {
		t.Fatalf("overload-damaged window not Degraded: %+v", w)
	}
	if !w.Incomplete || w.MissingAFRs != 2 || w.ShedAFRs != 2 {
		t.Fatalf("damage accounting wrong: Incomplete=%v MissingAFRs=%d ShedAFRs=%d",
			w.Incomplete, w.MissingAFRs, w.ShedAFRs)
	}
}

// TestShedTailDropIgnoresWatermark: the legacy policy sheds only when the
// queue is hard-full — with a drained queue, the same watermark-0 setup
// ingests every frame and nothing is shed.
func TestShedTailDropIgnoresWatermark(t *testing.T) {
	h := newShedHarness(t, ShedTailDrop)

	h.send(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: 8}})
	for i := 0; i < 8; i++ {
		h.send(afrPkt(rec(i, 0, 7, i)))
	}
	h.wait("full ingest", func() bool { return h.col.Received() == 9 })
	if h.col.Overruns() != 0 || h.col.ShedAFRs() != 0 {
		t.Fatalf("tail-drop policy shed below hard-full: %d overruns, %d AFRs",
			h.col.Overruns(), h.col.ShedAFRs())
	}
	res := h.sink.FinishSubWindow(0)
	if len(res) != 1 || res[0].ShedAFRs != 0 || res[0].Incomplete {
		t.Fatalf("clean run produced damaged window: %+v", res)
	}
}
