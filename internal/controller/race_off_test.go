//go:build !race

package controller

const raceEnabled = false
