package controller

import (
	"math/rand"
	"testing"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

func fk(i int) packet.FlowKey {
	return packet.FlowKey{SrcIP: uint32(i), DstPort: 443, Proto: packet.ProtoTCP}
}

func afrPkt(recs ...packet.AFR) *packet.Packet {
	return &packet.Packet{OW: packet.OWHeader{Flag: packet.OWAFR, AFRs: recs}}
}

func rec(key, sw, attr, seq int) packet.AFR {
	return packet.AFR{Key: fk(key), SubWindow: uint64(sw), Attr: uint64(attr), Seq: uint32(seq)}
}

func TestTumblingWindowMergesSubWindows(t *testing.T) {
	// The motivating §4.1 example: 60 packets in one sub-window, 80 in
	// the next; threshold 100. Neither sub-window alone is heavy but the
	// merged window must report the flow.
	c := New(Config{Plan: window.Tumbling(2), Kind: afr.Frequency, Threshold: 100})
	c.Receive(afrPkt(rec(1, 0, 60, 0)))
	if res := c.FinishSubWindow(0); len(res) != 0 {
		t.Fatal("window ended early")
	}
	c.Receive(afrPkt(rec(1, 1, 80, 0)))
	res := c.FinishSubWindow(1)
	if len(res) != 1 {
		t.Fatalf("windows = %d", len(res))
	}
	if len(res[0].Detected) != 1 || res[0].Detected[0] != fk(1) {
		t.Fatalf("detected = %v", res[0].Detected)
	}
	if res[0].Start != 0 || res[0].End != 1 {
		t.Fatalf("window range = [%d,%d]", res[0].Start, res[0].End)
	}
}

func TestTumblingWindowsIndependent(t *testing.T) {
	// After a tumbling window is processed, its sub-windows retire:
	// mass must not leak into the next window.
	c := New(Config{Plan: window.Tumbling(2), Kind: afr.Frequency, Threshold: 100, CaptureValues: true})
	c.Receive(afrPkt(rec(1, 0, 70, 0), rec(1, 1, 70, 0)))
	c.FinishSubWindow(0)
	res := c.FinishSubWindow(1)
	if len(res[0].Detected) != 1 {
		t.Fatal("first window should detect")
	}
	c.Receive(afrPkt(rec(1, 2, 10, 0), rec(1, 3, 10, 0)))
	c.FinishSubWindow(2)
	res = c.FinishSubWindow(3)
	if len(res[0].Detected) != 0 {
		t.Fatalf("stale mass leaked: %v (values %v)", res[0].Detected, res[0].Values)
	}
	if res[0].Values[fk(1)] != 20 {
		t.Fatalf("second window value = %d want 20", res[0].Values[fk(1)])
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	// Figure 1: a burst straddling a tumbling boundary is caught by the
	// sliding window. Window = 2 sub-windows, slide = 1.
	c := New(Config{Plan: window.SlidingPlan(2, 1), Kind: afr.Frequency, Threshold: 100})
	c.Receive(afrPkt(rec(7, 0, 30, 0)))
	c.FinishSubWindow(0)
	c.Receive(afrPkt(rec(7, 1, 90, 0)))
	res := c.FinishSubWindow(1) // window [0,1]: 120 >= 100
	if len(res) != 1 || len(res[0].Detected) != 1 {
		t.Fatalf("burst missed: %+v", res)
	}
	c.Receive(afrPkt(rec(7, 2, 30, 0)))
	res = c.FinishSubWindow(2) // window [1,2]: 120 >= 100
	if len(res) != 1 || len(res[0].Detected) != 1 {
		t.Fatalf("second sliding window missed: %+v", res)
	}
	c.Receive(afrPkt(rec(7, 3, 1, 0)))
	res = c.FinishSubWindow(3) // window [2,3]: 31 < 100
	if len(res[0].Detected) != 0 {
		t.Fatalf("stale detection: %+v", res[0].Detected)
	}
}

func TestSlidingEvictionRemovesEmptyFlows(t *testing.T) {
	c := New(Config{Plan: window.SlidingPlan(2, 1), Kind: afr.Frequency, Threshold: 1000})
	c.Receive(afrPkt(rec(1, 0, 5, 0)))
	c.Receive(afrPkt(rec(2, 0, 5, 1), rec(2, 1, 5, 0)))
	c.FinishSubWindow(0)
	if c.TableSize() != 2 {
		t.Fatalf("table size = %d", c.TableSize())
	}
	// Window [0,1] ends; sub-window 0 retires: flow 1 (only in sub-window
	// 0) is deleted, flow 2 survives with its sub-window-1 contribution.
	c.FinishSubWindow(1)
	if c.TableSize() != 1 {
		t.Fatalf("table size after first eviction = %d", c.TableSize())
	}
	// Window [1,2] ends; sub-window 1 retires; flow 2 now empty.
	c.FinishSubWindow(2)
	if c.TableSize() != 0 {
		t.Fatalf("empty flow not deleted: table size = %d", c.TableSize())
	}
}

func TestMaxMergeAcrossSubWindows(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(3), Kind: afr.Max, Threshold: 0, CaptureValues: true})
	c.Receive(afrPkt(rec(1, 0, 5, 0), rec(1, 1, 11, 0), rec(1, 2, 7, 0)))
	c.FinishSubWindow(0)
	c.FinishSubWindow(1)
	res := c.FinishSubWindow(2)
	if res[0].Values[fk(1)] != 11 {
		t.Fatalf("max = %d", res[0].Values[fk(1)])
	}
}

func TestMinMergeEvictionRecomputes(t *testing.T) {
	// Min is not subtractable: eviction must recompute from surviving
	// contributions.
	c := New(Config{Plan: window.SlidingPlan(2, 1), Kind: afr.Min, Threshold: 0, CaptureValues: true})
	c.Receive(afrPkt(rec(1, 0, 3, 0)))
	c.FinishSubWindow(0)
	c.Receive(afrPkt(rec(1, 1, 10, 0)))
	res := c.FinishSubWindow(1)
	if res[0].Values[fk(1)] != 3 {
		t.Fatalf("min over [0,1] = %d", res[0].Values[fk(1)])
	}
	c.Receive(afrPkt(rec(1, 2, 8, 0)))
	res = c.FinishSubWindow(2) // sub-window 0 (value 3) evicted
	if res[0].Values[fk(1)] != 8 {
		t.Fatalf("min over [1,2] = %d want 8", res[0].Values[fk(1)])
	}
}

func TestDistinctionMergeThenCount(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(2), Kind: afr.Distinction, Threshold: 0, CaptureValues: true})
	a := rec(1, 0, 0, 0)
	a.Distinct = [4]uint64{0xFF, 0, 0, 0}
	a.HasDistinct = true
	b := rec(1, 1, 0, 0)
	b.Distinct = [4]uint64{0xFF, 0, 0, 0} // identical set
	b.HasDistinct = true
	c.Receive(afrPkt(a))
	c.FinishSubWindow(0)
	c.Receive(afrPkt(b))
	res := c.FinishSubWindow(1)
	one := New(Config{Plan: window.Tumbling(1), Kind: afr.Distinction, Threshold: 0, CaptureValues: true})
	one.Receive(afrPkt(a))
	ref := one.FinishSubWindow(0)
	if res[0].Values[fk(1)] != ref[0].Values[fk(1)] {
		t.Fatalf("identical distinct sets double-counted: %d vs %d",
			res[0].Values[fk(1)], ref[0].Values[fk(1)])
	}
}

func TestDuplicateAFRsIgnored(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 0, CaptureValues: true})
	c.Receive(afrPkt(rec(1, 0, 10, 0)))
	c.Receive(afrPkt(rec(1, 0, 10, 0))) // retransmitted duplicate
	res := c.FinishSubWindow(0)
	if res[0].Values[fk(1)] != 10 {
		t.Fatalf("duplicate absorbed twice: %d", res[0].Values[fk(1)])
	}
}

func TestMissingSeqsAndTrigger(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency})
	trigger := &packet.Packet{OW: packet.OWHeader{Flag: packet.OWTrigger, SubWindow: 0, KeyCount: 3}}
	c.Receive(trigger)
	c.Receive(afrPkt(rec(1, 0, 1, 0), rec(2, 0, 1, 2)))
	missing := c.MissingSeqs(0)
	if len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("missing = %v", missing)
	}
	c.Receive(afrPkt(rec(3, 0, 1, 1)))
	if m := c.MissingSeqs(0); m != nil {
		t.Fatalf("still missing: %v", m)
	}
	if c.MissingSeqs(42) != nil {
		t.Fatal("unknown sub-window should report nothing")
	}
}

func TestIngestAFRsDirect(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 5, CaptureValues: true})
	c.IngestAFRs([]packet.AFR{rec(1, 0, 7, 0), rec(1, 0, 7, 0)}) // dup seq
	res := c.FinishSubWindow(0)
	if res[0].Values[fk(1)] != 7 {
		t.Fatalf("value = %d", res[0].Values[fk(1)])
	}
}

func TestCustomDetector(t *testing.T) {
	c := New(Config{
		Plan: window.Tumbling(1),
		Kind: afr.Frequency,
		Detector: func(k packet.FlowKey, v uint64) bool {
			return k.SrcIP == 2 // detect by identity, not value
		},
	})
	c.Receive(afrPkt(rec(1, 0, 1000, 0), rec(2, 0, 1, 1)))
	res := c.FinishSubWindow(0)
	if len(res[0].Detected) != 1 || res[0].Detected[0] != fk(2) {
		t.Fatalf("detector ignored: %v", res[0].Detected)
	}
}

func TestDetectedDeterministicOrder(t *testing.T) {
	c := New(Config{Plan: window.Tumbling(1), Kind: afr.Frequency, Threshold: 1})
	c.Receive(afrPkt(rec(3, 0, 5, 0), rec(1, 0, 5, 1), rec(2, 0, 5, 2)))
	res := c.FinishSubWindow(0)
	for i := 1; i < len(res[0].Detected); i++ {
		if res[0].Detected[i].SrcIP < res[0].Detected[i-1].SrcIP {
			t.Fatalf("unsorted output: %v", res[0].Detected)
		}
	}
}

func TestOpTimesRecorded(t *testing.T) {
	c := New(Config{Plan: window.SlidingPlan(2, 1), Kind: afr.Frequency, Threshold: 1})
	for sw := 0; sw < 3; sw++ {
		recs := make([]packet.AFR, 200)
		for i := range recs {
			recs[i] = rec(i, sw, 1, i)
		}
		c.Receive(afrPkt(recs...))
		c.FinishSubWindow(uint64(sw))
	}
	t2 := c.Times(2)
	if t2.Insert <= 0 || t2.Merge <= 0 || t2.Process <= 0 || t2.Evict <= 0 {
		t.Fatalf("missing timings: %+v", t2)
	}
	if t2.Total() < t2.Insert {
		t.Fatal("total inconsistent")
	}
	if c.Times(99) != (OpTimes{}) {
		t.Fatal("unknown sub-window should have zero times")
	}
}

func TestInvalidPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Plan: window.Plan{Size: 0, Slide: 1}})
}

func TestHotTrackerPromotion(t *testing.T) {
	h := NewHotTracker(8, 3)
	if h.Observe(fk(1)) || h.Observe(fk(1)) {
		t.Fatal("promoted before threshold")
	}
	if !h.Observe(fk(1)) {
		t.Fatal("not promoted at threshold")
	}
	if h.Observe(fk(1)) {
		t.Fatal("promoted twice")
	}
	if !h.IsHot(fk(1)) || h.HotCount() != 1 {
		t.Fatal("hot state wrong")
	}
}

func TestHotTrackerCapacity(t *testing.T) {
	h := NewHotTracker(2, 1)
	h.Observe(fk(1))
	h.Observe(fk(2))
	if h.Observe(fk(3)) {
		t.Fatal("promoted beyond capacity")
	}
	if h.HotCount() != 2 {
		t.Fatalf("hot count = %d", h.HotCount())
	}
}

func TestHotTrackerDecayDemotes(t *testing.T) {
	h := NewHotTracker(8, 4)
	for i := 0; i < 4; i++ {
		h.Observe(fk(1))
	}
	if !h.IsHot(fk(1)) {
		t.Fatal("not hot")
	}
	demoted := h.Decay() // 4 -> 2 < threshold
	if len(demoted) != 1 || demoted[0] != fk(1) {
		t.Fatalf("demoted = %v", demoted)
	}
	if h.IsHot(fk(1)) {
		t.Fatal("still hot after demotion")
	}
	// Full decay forgets the key entirely.
	h.Decay()
	if h.Observe(fk(1)) {
		t.Fatal("stale count survived full decay")
	}
}

// TestEvictionEqualsRecomputeProperty: for random contribution streams and
// random sliding plans, the incrementally evicted merged value always
// equals a from-scratch recomputation over the surviving sub-windows.
func TestEvictionEqualsRecomputeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []afr.Kind{afr.Frequency, afr.Max, afr.Min, afr.Existence}
	for trial := 0; trial < 20; trial++ {
		size := rng.Intn(4) + 2
		slide := rng.Intn(size) + 1
		kind := kinds[rng.Intn(len(kinds))]
		c := New(Config{Plan: window.SlidingPlan(size, slide), Kind: kind, Threshold: 1, CaptureValues: true})

		nSub := size + slide*4
		contribs := make(map[packet.FlowKey][][2]uint64) // key -> (sw, attr)
		for sw := 0; sw < nSub; sw++ {
			var recs []packet.AFR
			for f := 0; f < 6; f++ {
				if rng.Intn(2) == 0 {
					continue
				}
				attr := uint64(rng.Intn(50) + 1)
				recs = append(recs, packet.AFR{Key: fk(f), SubWindow: uint64(sw), Attr: attr, Seq: uint32(f)})
				contribs[fk(f)] = append(contribs[fk(f)], [2]uint64{uint64(sw), attr})
			}
			c.Receive(afrPkt(recs...))
			for _, w := range c.FinishSubWindow(uint64(sw)) {
				// Recompute every flow's merged value from scratch.
				for f := 0; f < 6; f++ {
					m := afr.NewMerged(kind)
					for _, cb := range contribs[fk(f)] {
						if cb[0] >= w.Start && cb[0] <= w.End {
							m.Absorb(cb[1], [4]uint64{}, false)
						}
					}
					want := uint64(0)
					if m.Seeded() {
						want = m.Value()
					}
					if got := w.Values[fk(f)]; got != want {
						t.Fatalf("trial %d kind %v window [%d,%d] flow %d: got %d want %d",
							trial, kind, w.Start, w.End, f, got, want)
					}
				}
			}
		}
	}
}
