package controller

import (
	"fmt"

	"omniwindow/internal/obs"
)

// Obs bundles the controller's runtime instrumentation handles. The zero
// value (all nil) is the disabled state: every use is a nil-check no-op,
// so the merge hot path pays nothing when observability is off (see the
// zero-allocation tests and the CI bench-regression gate). Build an
// enabled set with Instrument.
type Obs struct {
	// Ingested counts AFR records admitted on first arrival (packet and
	// RDMA paths both).
	Ingested *obs.Counter
	// Duplicates counts records suppressed by per-sub-window sequence
	// dedup (retransmit overlap, link-level duplication).
	Duplicates *obs.Counter
	// Recovered counts records whose first arrival came via the
	// NACK/retransmit path.
	Recovered *obs.Counter
	// Spikes counts latency-spike copies merged by the software path.
	Spikes *obs.Counter
	// Shed counts AFR records dropped by admission control and charged
	// to their sub-windows via NoteShed.
	Shed *obs.Counter
	// Windows counts complete windows emitted; IncompleteWindows and
	// DegradedWindows split out the damaged ones.
	Windows           *obs.Counter
	IncompleteWindows *obs.Counter
	DegradedWindows   *obs.Counter

	// OpInsert..OpEvict are the per-sub-window O2–O5 latency
	// distributions (summed CPU time across shard workers, matching
	// OpTimes); Finish is the whole assembly.
	OpInsert  *obs.Histogram
	OpMerge   *obs.Histogram
	OpProcess *obs.Histogram
	OpEvict   *obs.Histogram
	Finish    *obs.Histogram

	// Ring receives the window-lifecycle trace events the controller
	// owns: announced, finished, window emitted.
	Ring *obs.Ring
}

// Instrument registers the controller metric family on reg and returns
// the enabled handle set. labels is an optional Prometheus label set
// (e.g. `switch="2"` or `app="ddos"`) embedded in every metric name so
// several controllers share one registry; empty means unlabeled.
func Instrument(reg *obs.Registry, labels string) Obs {
	n := func(name string) string {
		if labels == "" {
			return name
		}
		return fmt.Sprintf("%s{%s}", name, labels)
	}
	return Obs{
		Ingested:          reg.Counter(n("omniwindow_controller_afrs_total"), "AFR records admitted into the key-value table (first arrivals)"),
		Duplicates:        reg.Counter(n("omniwindow_controller_duplicates_total"), "AFR records suppressed by sequence dedup"),
		Recovered:         reg.Counter(n("omniwindow_controller_recovered_total"), "AFR records whose first arrival was a retransmission"),
		Spikes:            reg.Counter(n("omniwindow_controller_spikes_total"), "latency-spike copies merged through the software path"),
		Shed:              reg.Counter(n("omniwindow_controller_shed_total"), "AFR records dropped by admission control, charged via NoteShed"),
		Windows:           reg.Counter(n("omniwindow_controller_windows_total"), "complete windows emitted"),
		IncompleteWindows: reg.Counter(n("omniwindow_controller_windows_incomplete_total"), "windows emitted with unrecovered AFR gaps"),
		DegradedWindows:   reg.Counter(n("omniwindow_controller_windows_degraded_total"), "windows emitted damaged by load shedding or switch faults"),
		OpInsert:          reg.Histogram(n("omniwindow_controller_op_insert_seconds"), "O2 key-value insert time per sub-window (CPU, summed across shards)", nil),
		OpMerge:           reg.Histogram(n("omniwindow_controller_op_merge_seconds"), "O3 statistics merge time per sub-window", nil),
		OpProcess:         reg.Histogram(n("omniwindow_controller_op_process_seconds"), "O4 query evaluation time per completed window", nil),
		OpEvict:           reg.Histogram(n("omniwindow_controller_op_evict_seconds"), "O5 eviction time per retirement", nil),
		Finish:            reg.Histogram(n("omniwindow_controller_finish_seconds"), "FinishSubWindow wall time per sub-window", nil),
		Ring:              reg.Ring(0),
	}
}

// SetObs installs (or, with the zero value, removes) the controller's
// instrumentation. Call before traffic: the handles are read without
// synchronization by concurrent ingest.
func (c *Controller) SetObs(o Obs) { c.obs = o }
