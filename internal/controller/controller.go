// Package controller implements the OmniWindow controller: it collects
// AFRs from switches (bypassing switch OSes), stores them in a key-value
// table, merges per-flow statistics across sub-windows, assembles complete
// windows according to the merge plan, answers telemetry queries over the
// merged table, and evicts retired sub-windows (the O1–O5 operations
// measured in Exp#4).
//
// The key-value table is partitioned into Config.Shards hash-sharded
// slices so the O2 insert, O3 merge, O4 query evaluation and O5 eviction
// of FinishSubWindow run across cores, while ingest (Receive/IngestAFRs)
// is safe for concurrent callers and fans records out to their owning
// shard. Shards=1 degenerates to the fully sequential controller; results
// are deterministic and identical for every shard count (see DESIGN.md,
// "Controller concurrency model").
package controller

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/hashing"
	"omniwindow/internal/metrics"
	"omniwindow/internal/obs"
	"omniwindow/internal/packet"
	"omniwindow/internal/pool"
	"omniwindow/internal/window"
)

// Config parameterizes a controller instance.
type Config struct {
	// Plan maps sub-windows to complete windows.
	Plan window.Plan
	// Kind is the statistic's merge pattern.
	Kind afr.Kind
	// Threshold is the default detection threshold applied to merged
	// values when Detector is nil.
	Threshold uint64
	// Detector optionally overrides threshold detection. It may be
	// called concurrently from shard workers and must be safe for
	// concurrent use (pure predicates are).
	Detector func(k packet.FlowKey, merged uint64) bool
	// DistinctCounter optionally overrides how OR-merged distinct
	// summaries are counted (see afr.DistinctCounter). Like Detector it
	// may be called concurrently and must be a pure function.
	DistinctCounter afr.DistinctCounter
	// CaptureValues copies every flow's merged value into each
	// WindowResult (needed by ARE metrics; costs a table scan).
	CaptureValues bool
	// Shards is the number of partitions of the key-value table. Each
	// shard owns the flows hashing to it and is processed by its own
	// worker during FinishSubWindow. <= 0 defaults to
	// runtime.GOMAXPROCS(0); 1 preserves the exact sequential behaviour
	// (no worker goroutines are spawned).
	Shards int
	// ExpectedFlows hints the per-sub-window flow population, pre-sizing
	// each shard's key-value table and its first pending batch so the
	// warm-up ramp does not rehash/regrow under load. 0 means unknown
	// (tables start empty and size on demand); it never bounds anything.
	ExpectedFlows int
}

// contrib is one sub-window's contribution to a flow.
type contrib struct {
	sw          uint64
	attr        uint64
	distinct    [4]uint64
	hasDistinct bool
}

// entry is one flow's row in the key-value table.
type entry struct {
	contribs []contrib
	merged   afr.Merged
}

// shard owns one partition of the key-value table plus the routed-but-not-
// yet-inserted records for each open sub-window. Its mutex serializes
// concurrent ingest appends against the FinishSubWindow worker that drains
// and merges them; table entries are only ever touched by the worker that
// owns the shard, so no per-entry locking is needed.
type shard struct {
	mu      sync.Mutex
	table   map[packet.FlowKey]*entry
	pending map[uint64][]packet.AFR
	// prevCard is the record count the last finished sub-window drained
	// from this shard. A new sub-window's pending slice is pre-sized from
	// it (steady traffic repeats its cardinality), so appends stay within
	// one pool-classed allocation instead of regrowing per batch.
	prevCard int
}

// pendingFor returns sub-window sw's pending slice, creating it from the
// pool pre-sized to max(hint, prevCard) on first use. Caller holds s.mu
// and must store the appended-to result back into s.pending[sw].
func (s *shard) pendingFor(sw uint64, hint int) []packet.AFR {
	p, ok := s.pending[sw]
	if !ok {
		if hint < s.prevCard {
			hint = s.prevCard
		}
		p = pool.GetAFRs(hint)
	}
	return p
}

// seqSet tracks the AFR sequence numbers seen in one sub-window. Switch
// sequence spaces are dense (0..expected-1), so the set is a growable
// bitset — one bit per record where the map it replaced paid tens of bytes
// per entry — with a spill map for hostile/garbage sequence numbers above
// the dense bound so a single corrupt frame cannot balloon the words
// array. Iteration (export, gap scans) is naturally in ascending order.
type seqSet struct {
	words    []uint64
	n        int
	overflow map[uint32]struct{}
}

// maxDenseSeq bounds the bitset-backed range: 1<<22 sequences cost at most
// 512 KiB of words. Anything above (no real sub-window announces that many
// AFRs) lands in the overflow map.
const maxDenseSeq = 1 << 22

// add inserts seq, reporting whether it was absent.
func (s *seqSet) add(seq uint32) bool {
	if seq >= maxDenseSeq {
		if _, dup := s.overflow[seq]; dup {
			return false
		}
		if s.overflow == nil {
			s.overflow = make(map[uint32]struct{})
		}
		s.overflow[seq] = struct{}{}
		s.n++
		return true
	}
	w := int(seq >> 6)
	if w >= len(s.words) {
		// The region [len, cap) is zero by construction: words only ever
		// grows (freshly made backing arrays are zeroed, and bits are set
		// only below len), so extending within capacity needs no clearing.
		if need := w + 1; need <= cap(s.words) {
			s.words = s.words[:need]
		} else {
			grown := make([]uint64, need, 2*need)
			copy(grown, s.words)
			s.words = grown
		}
	}
	bit := uint64(1) << (seq & 63)
	if s.words[w]&bit != 0 {
		return false
	}
	s.words[w] |= bit
	s.n++
	return true
}

// has reports whether seq is in the set.
func (s *seqSet) has(seq uint32) bool {
	if seq >= maxDenseSeq {
		_, ok := s.overflow[seq]
		return ok
	}
	w := int(seq >> 6)
	return w < len(s.words) && s.words[w]&(1<<(seq&63)) != 0
}

// size is the number of distinct sequences added.
func (s *seqSet) size() int { return s.n }

// appendSorted appends every sequence in ascending order — bitset words
// iterate sorted by construction, and every overflow sequence is above the
// dense bound, so the concatenation is fully sorted. Snapshot encoding
// depends on this determinism.
func (s *seqSet) appendSorted(dst []uint32) []uint32 {
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, uint32(w<<6+b))
			word &^= 1 << b
		}
	}
	if len(s.overflow) > 0 {
		start := len(dst)
		for seq := range s.overflow {
			dst = append(dst, seq)
		}
		ovf := dst[start:]
		sort.Slice(ovf, func(i, j int) bool { return ovf[i] < ovf[j] })
	}
	return dst
}

// dedup is the per-sub-window arrival state shared by every shard: the
// AFR sequence numbers seen so far (duplicate suppression, §8 reliability),
// the key count announced by the trigger packet (-1 when unknown), the
// count of sequences whose first arrival was a retransmission, and the
// count of records admission control shed under overload.
type dedup struct {
	mu        sync.Mutex
	seen      seqSet
	expected  int
	recovered int
	shed      int
}

// OpTimes is the per-sub-window controller time breakdown of Exp#4.
type OpTimes struct {
	// Collect (O1) is the time to receive and parse AFR packets.
	Collect time.Duration
	// Insert (O2) is the time to insert AFRs into the key-value table.
	Insert time.Duration
	// Merge (O3) is the time to fold contributions into merged values.
	Merge time.Duration
	// Process (O4) is the time to evaluate the query over a completed
	// window.
	Process time.Duration
	// Evict (O5) is the time to remove the oldest sub-window(s).
	Evict time.Duration
}

// Total sums all operations.
func (t OpTimes) Total() time.Duration {
	return t.Collect + t.Insert + t.Merge + t.Process + t.Evict
}

// WindowResult is one completed window's output.
type WindowResult struct {
	// Start and End delimit the window's sub-windows, inclusive.
	Start, End uint64
	// Detected are the flows satisfying the query.
	Detected []packet.FlowKey
	// Values are the merged per-flow statistics (nil unless
	// Config.CaptureValues).
	Values map[packet.FlowKey]uint64
	// Incomplete reports that announced AFRs of at least one constituent
	// sub-window never arrived, even after the reliability protocol's
	// bounded retries — the window's statistics are a lower bound, not
	// ground truth, and downstream consumers must not treat the two the
	// same (§8). MissingAFRs counts the absent records.
	Incomplete  bool
	MissingAFRs int
	// ShedAFRs counts records admission control dropped under overload
	// across the window's sub-windows — overload pressure accounting,
	// whether or not the NACK/retransmit path later repaired the gaps.
	ShedAFRs int
	// Degraded reports that load shedding actually damaged this window:
	// at least one constituent sub-window shed records AND still had
	// gaps when the window finalized. A shed-but-fully-recovered window
	// is exact (ShedAFRs > 0, Degraded false); a Degraded window's
	// statistics are a lower bound that overload, not the network,
	// caused — consumers must not read it as ground truth.
	Degraded bool
	// SpikePackets counts latency-spike packets merged into this window's
	// sub-windows through the controller's software path (§5): packets
	// whose stamped sub-window was no longer preserved in the data plane,
	// so their contribution was added to the key-value table directly.
	// Each spike copy is merged exactly once (dedup by flow key + packet
	// sequence per sub-window), so the merged statistics stay exact.
	SpikePackets int
	// DegradedSwitches lists, for network-wide deployments, the switches
	// whose coverage is missing or partial in this window (reboot wiped
	// their uncollected regions, they stamped while unsynced, or they were
	// quarantined). It extends the Degraded contract to the switch plane:
	// non-empty DegradedSwitches implies Degraded, and the window's
	// statistics are a lower bound on the flows those switches carried.
	// The fabric layer fills it; single-switch controllers leave it nil.
	DegradedSwitches []int
}

// Controller assembles windows from AFR batches. Ingest (Receive,
// IngestAFRs) is safe for concurrent callers; FinishSubWindow serializes
// against itself but may run concurrently with ingest.
type Controller struct {
	cfg    Config
	shards []*shard

	// mu guards dedups, times, rel, spikes and spikeDone. Per-shard and
	// per-sub-window state have their own finer locks so concurrent
	// ingest mostly avoids this one.
	mu     sync.Mutex
	dedups map[uint64]*dedup
	times  map[uint64]*OpTimes
	// spikes tracks, per open sub-window, the latency-spike copies merged
	// through the software path (dedup so each copy counts exactly once);
	// spikeDone keeps each finished sub-window's final count until the
	// sub-window retires, for window-level SpikePackets accounting.
	spikes    map[uint64]*spikeState
	spikeDone map[uint64]int
	// rel records each finished sub-window's final delivery accounting
	// (snapshotted by FinishSubWindow before the dedup state retires) so
	// window assembly can mark windows with unrecovered gaps Incomplete.
	rel map[uint64]metrics.Reliability
	// lastFin is the highest sub-window FinishSubWindow has completed
	// (valid only when hasFin). Checkpoints carry it so a restored
	// controller knows which WAL finish records are already applied.
	lastFin uint64
	hasFin  bool

	// finishMu serializes window assembly: FinishSubWindow drains and
	// merges every shard, so two assemblies must not interleave.
	finishMu sync.Mutex

	// scratch recycles ingestBatch's routing/partition workspace. An
	// explicit free list rather than sync.Pool: GC must not drain it, or
	// the zero-allocs/op steady-state gates would flake.
	scratchMu   sync.Mutex
	scratchFree []*ingestScratch

	// obs is the runtime instrumentation handle set (internal/obs). The
	// zero value is disabled: every handle is nil and every call a
	// no-op, keeping the hot path untouched. Install with SetObs.
	obs Obs
}

// NewWithError validates the configuration and builds a controller. An
// invalid merge plan is reported as an error so network-facing callers
// (e.g. the UDP collector path) can reject bad configs without crashing.
func NewWithError(cfg Config) (*Controller, error) {
	if err := cfg.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	c := &Controller{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		dedups:    make(map[uint64]*dedup),
		times:     make(map[uint64]*OpTimes),
		rel:       make(map[uint64]metrics.Reliability),
		spikes:    make(map[uint64]*spikeState),
		spikeDone: make(map[uint64]int),
	}
	perShard := 0
	if cfg.ExpectedFlows > 0 {
		perShard = cfg.ExpectedFlows / cfg.Shards
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			table:    make(map[packet.FlowKey]*entry, perShard),
			pending:  make(map[uint64][]packet.AFR),
			prevCard: perShard,
		}
	}
	return c, nil
}

// New builds a controller. Invalid plans panic: a controller cannot run
// without a window definition. Use NewWithError to handle the failure.
func New(cfg Config) *Controller {
	c, err := NewWithError(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Shards reports the number of key-value table partitions in use.
func (c *Controller) Shards() int { return len(c.shards) }

// TableSize returns the number of flows currently in the key-value table.
func (c *Controller) TableSize() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.table)
		s.mu.Unlock()
	}
	return n
}

// shardIndex maps a flow key to its owning shard.
func (c *Controller) shardIndex(k packet.FlowKey) int {
	if len(c.shards) == 1 {
		return 0
	}
	return hashing.Shard(k, len(c.shards))
}

func (c *Controller) dedupFor(sw uint64) *dedup {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dedups[sw]
	if !ok {
		d = &dedup{expected: -1}
		c.dedups[sw] = d
	}
	return d
}

// ingestScratch is ingestBatch's reusable workspace: the per-record shard
// routing and the per-shard survivor partitions. Slices keep their
// capacity across batches; parts are truncated, never freed.
type ingestScratch struct {
	sis   []int
	parts [][]packet.AFR
}

func (c *Controller) getScratch() *ingestScratch {
	c.scratchMu.Lock()
	n := len(c.scratchFree)
	if n == 0 {
		c.scratchMu.Unlock()
		return &ingestScratch{parts: make([][]packet.AFR, len(c.shards))}
	}
	sc := c.scratchFree[n-1]
	c.scratchFree = c.scratchFree[:n-1]
	c.scratchMu.Unlock()
	return sc
}

func (c *Controller) putScratch(sc *ingestScratch) {
	c.scratchMu.Lock()
	if len(c.scratchFree) < 16 {
		c.scratchFree = append(c.scratchFree, sc)
	}
	c.scratchMu.Unlock()
}

// addCollect charges O1 time to a sub-window (concurrent-safe).
func (c *Controller) addCollect(sw uint64, dt time.Duration) {
	c.mu.Lock()
	t, ok := c.times[sw]
	if !ok {
		t = &OpTimes{}
		c.times[sw] = t
	}
	t.Collect += dt
	c.mu.Unlock()
}

// Times returns the recorded O1–O5 breakdown for a sub-window.
func (c *Controller) Times(sw uint64) OpTimes {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.times[sw]; ok {
		return *t
	}
	return OpTimes{}
}

// Receive ingests one switch-to-controller packet: AFR payloads, trigger
// announcements and spilled flow keys are all accepted (O1). Safe for
// concurrent callers: records fan out to their owning shard.
func (c *Controller) Receive(p *packet.Packet) {
	start := time.Now()
	switch p.OW.Flag {
	case packet.OWAFR, packet.OWRetransmit:
		c.ingestBatch(p.OW.AFRs, p.OW.Flag == packet.OWRetransmit, true)
	case packet.OWTrigger:
		d := c.dedupFor(p.OW.SubWindow)
		d.mu.Lock()
		// Announcements are cumulative knowledge: a retransmitted or
		// post-recovery trigger (e.g. a switch re-terminating against an
		// already-drained data structure announces KeyCount 0) must never
		// lower an expectation a replayed trigger already established —
		// that would erase Missing entries for keys the controller knows
		// it has not received. Keep the max; -1 means "not yet announced".
		if n := int(p.OW.KeyCount); n > d.expected {
			d.expected = n
		}
		d.mu.Unlock()
		c.obs.Ring.Record(obs.StageAnnounced, p.OW.SubWindow, -1, int64(p.OW.KeyCount))
		c.addCollect(p.OW.SubWindow, time.Since(start))
	}
}

// IngestAFRs adds records directly (the RDMA path delivers memory writes,
// not packets). Dedup by sequence still applies. Safe for concurrent
// callers; the batch is hashed lock-free, deduplicated per sub-window,
// then appended to each shard with one lock acquisition per (shard,
// batch).
func (c *Controller) IngestAFRs(recs []packet.AFR) {
	c.ingestBatch(recs, false, false)
}

// ingestBatch is the shared batched ingest under Receive and IngestAFRs:
// route lock-free, dedup with one lock acquisition per run of equal
// sub-windows, then append each shard's survivors under one shard lock
// acquisition per (shard, batch) — where the per-record path took the
// dedup and shard locks once per AFR. retrans marks records arriving via
// the NACK/retransmit path, so recovery accounting counts only sequences
// whose FIRST arrival was a retransmission (a retransmit of a record that
// also arrived normally is a plain duplicate). charge attributes the
// elapsed time to O1 Collect (the packet path; direct RDMA ingest is not
// an O1 receive). recs is not retained: survivors are copied into the
// shard's pending storage.
func (c *Controller) ingestBatch(recs []packet.AFR, retrans, charge bool) {
	if len(recs) == 0 {
		return
	}
	start := time.Now()
	sc := c.getScratch()
	if cap(sc.sis) < len(recs) {
		sc.sis = make([]int, len(recs))
	}
	sis := sc.sis[:len(recs)]
	for i := range recs {
		sis[i] = c.shardIndex(recs[i].Key)
	}
	parts := sc.parts
	var d *dedup
	var dsw uint64
	var admitted, dups, recovered int64
	for i := range recs {
		r := &recs[i]
		if d == nil || r.SubWindow != dsw {
			if d != nil {
				d.mu.Unlock()
				if charge {
					c.addCollect(dsw, time.Since(start))
					start = time.Now()
				}
			}
			d, dsw = c.dedupFor(r.SubWindow), r.SubWindow
			d.mu.Lock()
		}
		if !d.seen.add(r.Seq) {
			dups++
			continue // duplicate delivery
		}
		if retrans {
			d.recovered++
			recovered++
		}
		admitted++
		parts[sis[i]] = append(parts[sis[i]], *r)
	}
	if d != nil {
		d.mu.Unlock()
		if charge {
			c.addCollect(dsw, time.Since(start))
		}
	}
	c.obs.Ingested.Add(admitted)
	c.obs.Duplicates.Add(dups)
	if recovered > 0 {
		c.obs.Recovered.Add(recovered)
	}
	for si, part := range parts {
		if len(part) == 0 {
			continue
		}
		s := c.shards[si]
		s.mu.Lock()
		// Append runs of equal sub-windows so each run costs one map
		// lookup; pendingFor pre-sizes a new sub-window's slice from the
		// previous one's cardinality.
		for j, k := 0, 0; j < len(part); j = k {
			sw := part[j].SubWindow
			for k = j + 1; k < len(part) && part[k].SubWindow == sw; k++ {
			}
			s.pending[sw] = append(s.pendingFor(sw, k-j), part[j:k]...)
		}
		s.mu.Unlock()
		parts[si] = part[:0]
	}
	c.putScratch(sc)
}

// spikeID identifies one latency-spike packet copy within its stamped
// sub-window: the flow key plus the packet-level sequence number. Link
// faults can duplicate a spike copy, and several downstream switches of
// one path may each clone the same late packet toward a shared controller;
// the ID makes every copy merge exactly once.
type spikeID struct {
	key packet.FlowKey
	seq uint32
}

// spikeState is one open sub-window's software-path bookkeeping.
type spikeState struct {
	mu    sync.Mutex
	seen  map[spikeID]bool
	count int
}

func (c *Controller) spikeFor(sw uint64) *spikeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.spikes[sw]
	if !ok {
		s = &spikeState{seen: make(map[spikeID]bool)}
		c.spikes[sw] = s
	}
	return s
}

// IngestSpike merges one latency-spike packet copy through the software
// path (§5): the packet's stamped sub-window is no longer preserved in any
// data-plane region, so its contribution — attr, computed by the caller
// from the application's merge pattern — is added to the key-value table
// directly, attributed to the stamped sub-window. Copies are deduplicated
// by (flow key, packet sequence) per sub-window, so duplicated or
// multiply-cloned spikes merge exactly once. It returns false without
// merging when the packet carries no stamp, when a copy of it was already
// merged, or when the stamped sub-window has already been finished (its
// window is emitted; merging now would silently corrupt later windows
// sharing the table). Safe for concurrent callers.
func (c *Controller) IngestSpike(p *packet.Packet, attr uint64) bool {
	if !p.OW.HasSubWindow {
		return false
	}
	sw := p.OW.SubWindow
	c.mu.Lock()
	finished := c.hasFin && sw <= c.lastFin
	c.mu.Unlock()
	if finished {
		return false
	}
	st := c.spikeFor(sw)
	id := spikeID{key: p.Key, seq: p.Seq}
	st.mu.Lock()
	if st.seen[id] {
		st.mu.Unlock()
		return false
	}
	st.seen[id] = true
	st.count++
	st.mu.Unlock()

	// The contribution enters the owning shard's pending list like an AFR
	// and is folded by the next FinishSubWindow. It deliberately bypasses
	// the AFR sequence dedup: spike packets are not part of the switch's
	// announced per-sub-window sequence space, so they must not consume
	// (or collide with) AFR sequence numbers in loss accounting.
	s := c.shards[c.shardIndex(p.Key)]
	s.mu.Lock()
	s.pending[sw] = append(s.pendingFor(sw, 1), packet.AFR{Key: p.Key, Attr: attr, SubWindow: sw})
	s.mu.Unlock()
	c.obs.Spikes.Inc()
	return true
}

// SpikePackets reports the number of spike copies merged so far for a
// sub-window (live state while open, the final count after finishing, 0
// once retired or never seen).
func (c *Controller) SpikePackets(sw uint64) int {
	c.mu.Lock()
	st, live := c.spikes[sw]
	done, ok := c.spikeDone[sw]
	c.mu.Unlock()
	if live {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.count
	}
	if ok {
		return done
	}
	return 0
}

// MissingSeqs reports AFR sequence numbers the controller has not received
// for a sub-window, given the key count announced by the trigger packet.
// It returns nil when nothing is known to be missing (§8, reliability).
func (c *Controller) MissingSeqs(sw uint64) []uint32 {
	c.mu.Lock()
	d, ok := c.dedups[sw]
	c.mu.Unlock()
	if !ok {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.expected < 0 {
		return nil
	}
	var missing []uint32
	for s := 0; s < d.expected; s++ {
		if !d.seen.has(uint32(s)) {
			missing = append(missing, uint32(s))
		}
	}
	return missing
}

// snapshotReliability reads a dedup's delivery accounting. Caller must
// not hold d.mu.
func snapshotReliability(d *dedup) metrics.Reliability {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := metrics.Reliability{Expected: d.expected, Received: d.seen.size(), Recovered: d.recovered, Shed: d.shed}
	if d.expected >= 0 {
		for s := 0; s < d.expected; s++ {
			if !d.seen.has(uint32(s)) {
				r.Missing++
			}
		}
	}
	return r
}

// Reliability reports a sub-window's AFR delivery accounting: live state
// while the sub-window is still collecting, the final snapshot after
// FinishSubWindow, and a zero-value "never heard of it" record (Expected
// -1) otherwise.
func (c *Controller) Reliability(sw uint64) metrics.Reliability {
	c.mu.Lock()
	d, live := c.dedups[sw]
	rel, done := c.rel[sw]
	c.mu.Unlock()
	if live {
		return snapshotReliability(d)
	}
	if done {
		return rel
	}
	return metrics.Reliability{Expected: -1}
}

// forEachShard runs f once per shard — inline when there is a single
// shard, on a worker goroutine per shard otherwise.
func (c *Controller) forEachShard(f func(i int, s *shard)) {
	if len(c.shards) == 1 {
		f(0, c.shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(c.shards))
	for i, s := range c.shards {
		go func(i int, s *shard) {
			defer wg.Done()
			f(i, s)
		}(i, s)
	}
	wg.Wait()
}

// FinishSubWindow inserts the sub-window's batch into the key-value table
// (O2), merges per-flow statistics (O3), and — when a complete window ends
// here per the plan — processes the query (O4) and evicts retired
// sub-windows (O5). It returns the completed windows, usually zero or one
// per call.
//
// Sub-windows finish strictly in order: finishing one that is already
// finished is a no-op, and finishing one beyond lastFin+1 first finishes
// the skipped range. The skips happen when a rebooted switch resyncs past
// sub-windows its new incarnation never observed — without the fill, the
// window boundaries inside the gap would never assemble and, worse, never
// run O5 eviction, so contributions from before the gap would leak into
// the value of every window emitted after it. A filled sub-window that was
// never announced by a trigger is charged one missing AFR, so the window
// spanning it reports Incomplete instead of passing off the data loss as
// an exact result.
//
// All four operations run across shards on a worker pool; per-shard
// durations are summed into the sub-window's OpTimes so Exp#4's breakdown
// reports total CPU work, not wall-clock. Per-shard results are folded
// deterministically (a single packetKeyLess sort over the concatenated
// detections), so the output is byte-for-byte identical for every shard
// count.
func (c *Controller) FinishSubWindow(sw uint64) []WindowResult {
	c.finishMu.Lock()
	defer c.finishMu.Unlock()

	c.mu.Lock()
	done, last := c.hasFin, c.lastFin
	c.mu.Unlock()
	if done && sw <= last {
		return nil
	}
	var out []WindowResult
	if done {
		for fill := last + 1; fill < sw; fill++ {
			c.mu.Lock()
			_, announced := c.dedups[fill]
			_, accounted := c.rel[fill]
			if !announced && !accounted {
				// Nothing was ever announced for this sub-window: its
				// data died with the switch. Record the loss so the
				// spanning window is marked Incomplete.
				c.rel[fill] = metrics.Reliability{Missing: 1}
			}
			c.mu.Unlock()
			out = append(out, c.finishOne(fill)...)
		}
	}
	return append(out, c.finishOne(sw)...)
}

// finishOne runs the four finish operations for a single sub-window.
// Caller holds finishMu and has established that sw is the next
// sub-window in finish order.
func (c *Controller) finishOne(sw uint64) []WindowResult {
	finStart := time.Now()
	// O2 + O3 per shard: drain the routed records, insert, merge.
	type o23 struct{ insert, merge time.Duration }
	o23s := make([]o23, len(c.shards))
	c.forEachShard(func(i int, s *shard) {
		s.mu.Lock()
		defer s.mu.Unlock()
		recs := s.pending[sw]
		delete(s.pending, sw)

		start := time.Now()
		touched := make([]*entry, 0, len(recs))
		for _, r := range recs {
			e, ok := s.table[r.Key]
			if !ok {
				e = &entry{merged: afr.NewMergedWithCounter(c.cfg.Kind, c.cfg.DistinctCounter)}
				s.table[r.Key] = e
			}
			e.contribs = append(e.contribs, contrib{
				sw: r.SubWindow, attr: r.Attr, distinct: r.Distinct, hasDistinct: r.HasDistinct,
			})
			touched = append(touched, e)
		}
		o23s[i].insert = time.Since(start)

		start = time.Now()
		for j, e := range touched {
			r := recs[j]
			e.merged.Absorb(r.Attr, r.Distinct, r.HasDistinct)
		}
		o23s[i].merge = time.Since(start)

		// The drained slice's job is done (contributions were copied into
		// table entries): remember its cardinality to pre-size the next
		// sub-window, then recycle it.
		s.prevCard = len(recs)
		pool.PutAFRs(recs)
	})

	c.mu.Lock()
	t, ok := c.times[sw]
	if !ok {
		t = &OpTimes{}
		c.times[sw] = t
	}
	var o2sum, o3sum time.Duration
	for _, o := range o23s {
		t.Insert += o.insert
		t.Merge += o.merge
		o2sum += o.insert
		o3sum += o.merge
	}
	// Snapshot the final delivery accounting before retiring the dedup
	// state: window assembly needs to know whether recovery left gaps.
	if d, live := c.dedups[sw]; live {
		c.mu.Unlock()
		rel := snapshotReliability(d)
		c.mu.Lock()
		// NoteLost may have pre-charged damage (quarantined WAL frames)
		// against a still-open sub-window; fold it into the dedup's final
		// snapshot instead of overwriting it.
		if prior, ok := c.rel[sw]; ok {
			rel.Missing += prior.Missing
		}
		c.rel[sw] = rel
	}
	delete(c.dedups, sw)
	// Same for the software path: freeze the sub-window's spike count.
	if st, live := c.spikes[sw]; live {
		st.mu.Lock()
		c.spikeDone[sw] = st.count
		st.mu.Unlock()
		delete(c.spikes, sw)
	}
	if !c.hasFin || sw > c.lastFin {
		c.lastFin, c.hasFin = sw, true
	}
	c.mu.Unlock()
	c.obs.OpInsert.Observe(o2sum)
	c.obs.OpMerge.Observe(o3sum)

	wStart, ok := c.cfg.Plan.Ends(sw)
	if !ok {
		c.obs.Finish.Observe(time.Since(finStart))
		c.obs.Ring.Record(obs.StageFinished, sw, len(c.shards), int64(time.Since(finStart)))
		return nil
	}

	// O4: evaluate the query over each shard's slice of the merged
	// table, then fold.
	type o4 struct {
		detected []packet.FlowKey
		values   map[packet.FlowKey]uint64
		size     int
		scan     time.Duration
	}
	o4s := make([]o4, len(c.shards))
	c.forEachShard(func(i int, s *shard) {
		s.mu.Lock()
		defer s.mu.Unlock()
		start := time.Now()
		if c.cfg.CaptureValues {
			o4s[i].values = make(map[packet.FlowKey]uint64, len(s.table))
		}
		for k, e := range s.table {
			v := e.merged.Value()
			if c.detect(k, v) {
				o4s[i].detected = append(o4s[i].detected, k)
			}
			if o4s[i].values != nil {
				o4s[i].values[k] = v
			}
		}
		o4s[i].size = len(s.table)
		o4s[i].scan = time.Since(start)
	})

	start := time.Now()
	res := WindowResult{Start: wStart, End: sw}
	c.mu.Lock()
	for s := wStart; s <= sw; s++ {
		r := c.rel[s]
		res.MissingAFRs += r.Missing
		res.ShedAFRs += r.Shed
		if r.Shed > 0 && r.Missing > 0 {
			res.Degraded = true
		}
		res.SpikePackets += c.spikeDone[s]
	}
	c.mu.Unlock()
	res.Incomplete = res.MissingAFRs > 0
	total := 0
	for _, o := range o4s {
		total += o.size
	}
	if c.cfg.CaptureValues {
		res.Values = make(map[packet.FlowKey]uint64, total)
	}
	for _, o := range o4s {
		res.Detected = append(res.Detected, o.detected...)
		for k, v := range o.values {
			res.Values[k] = v
		}
	}
	sort.Slice(res.Detected, func(i, j int) bool {
		return packetKeyLess(res.Detected[i], res.Detected[j])
	})
	fold := time.Since(start)

	c.mu.Lock()
	o4sum := fold
	for _, o := range o4s {
		t.Process += o.scan
		o4sum += o.scan
	}
	t.Process += fold
	c.mu.Unlock()
	c.obs.OpProcess.Observe(o4sum)

	// O5: retire sub-windows that no future window needs.
	if retire, ok := c.cfg.Plan.Retire(sw); ok {
		evicts := make([]time.Duration, len(c.shards))
		c.forEachShard(func(i int, s *shard) {
			s.mu.Lock()
			defer s.mu.Unlock()
			start := time.Now()
			c.evictShard(s, retire)
			evicts[i] = time.Since(start)
		})
		c.mu.Lock()
		var o5sum time.Duration
		for _, dt := range evicts {
			t.Evict += dt
			o5sum += dt
		}
		c.obs.OpEvict.Observe(o5sum)
		for old := range c.dedups {
			if old <= retire {
				delete(c.dedups, old)
			}
		}
		for old := range c.rel {
			if old <= retire {
				delete(c.rel, old)
			}
		}
		for old := range c.spikes {
			if old <= retire {
				delete(c.spikes, old)
			}
		}
		for old := range c.spikeDone {
			if old <= retire {
				delete(c.spikeDone, old)
			}
		}
		c.mu.Unlock()
	}
	c.obs.Finish.Observe(time.Since(finStart))
	c.obs.Ring.Record(obs.StageFinished, sw, len(c.shards), int64(time.Since(finStart)))
	c.obs.Ring.Record(obs.StageWindowEmitted, sw, -1, int64(wStart))
	c.obs.Windows.Inc()
	if res.Incomplete {
		c.obs.IncompleteWindows.Inc()
	}
	if res.Degraded {
		c.obs.DegradedWindows.Inc()
	}
	return []WindowResult{res}
}

// detect applies the configured query predicate.
func (c *Controller) detect(k packet.FlowKey, v uint64) bool {
	if c.cfg.Detector != nil {
		return c.cfg.Detector(k, v)
	}
	return v >= c.cfg.Threshold
}

// evictShard removes contributions of sub-windows <= retire from one
// shard, rebuilding merged values from the surviving contributions, and
// deletes flows whose every contribution retired (the paper's O5:
// "updating the merged value and deleting the flows that only appear in
// the oldest sub-window"). Caller holds s.mu.
func (c *Controller) evictShard(s *shard, retire uint64) {
	for k, e := range s.table {
		kept := e.contribs[:0]
		for _, cb := range e.contribs {
			if cb.sw > retire {
				kept = append(kept, cb)
			}
		}
		if len(kept) == 0 {
			delete(s.table, k)
			continue
		}
		if len(kept) != len(e.contribs) {
			e.contribs = kept
			e.merged = afr.NewMergedWithCounter(c.cfg.Kind, c.cfg.DistinctCounter)
			for _, cb := range kept {
				e.merged.Absorb(cb.attr, cb.distinct, cb.hasDistinct)
			}
		} else {
			e.contribs = kept
		}
	}
	for sw := range s.pending {
		if sw <= retire {
			pool.PutAFRs(s.pending[sw])
			delete(s.pending, sw)
		}
	}
}

// packetKeyLess orders flow keys deterministically for stable output.
func packetKeyLess(a, b packet.FlowKey) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
