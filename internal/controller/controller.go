// Package controller implements the OmniWindow controller: it collects
// AFRs from switches (bypassing switch OSes), stores them in a key-value
// table, merges per-flow statistics across sub-windows, assembles complete
// windows according to the merge plan, answers telemetry queries over the
// merged table, and evicts retired sub-windows (the O1–O5 operations
// measured in Exp#4).
package controller

import (
	"sort"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/window"
)

// Config parameterizes a controller instance.
type Config struct {
	// Plan maps sub-windows to complete windows.
	Plan window.Plan
	// Kind is the statistic's merge pattern.
	Kind afr.Kind
	// Threshold is the default detection threshold applied to merged
	// values when Detector is nil.
	Threshold uint64
	// Detector optionally overrides threshold detection.
	Detector func(k packet.FlowKey, merged uint64) bool
	// DistinctCounter optionally overrides how OR-merged distinct
	// summaries are counted (see afr.DistinctCounter).
	DistinctCounter afr.DistinctCounter
	// CaptureValues copies every flow's merged value into each
	// WindowResult (needed by ARE metrics; costs a table scan).
	CaptureValues bool
}

// contrib is one sub-window's contribution to a flow.
type contrib struct {
	sw          uint64
	attr        uint64
	distinct    [4]uint64
	hasDistinct bool
}

// entry is one flow's row in the key-value table.
type entry struct {
	contribs []contrib
	merged   afr.Merged
}

// batch accumulates one sub-window's received AFRs before insertion.
type batch struct {
	afrs []packet.AFR
	seen map[uint32]bool
	// expected is the key count announced by the trigger packet, or -1.
	expected int
}

// OpTimes is the per-sub-window controller time breakdown of Exp#4.
type OpTimes struct {
	// Collect (O1) is the time to receive and parse AFR packets.
	Collect time.Duration
	// Insert (O2) is the time to insert AFRs into the key-value table.
	Insert time.Duration
	// Merge (O3) is the time to fold contributions into merged values.
	Merge time.Duration
	// Process (O4) is the time to evaluate the query over a completed
	// window.
	Process time.Duration
	// Evict (O5) is the time to remove the oldest sub-window(s).
	Evict time.Duration
}

// Total sums all operations.
func (t OpTimes) Total() time.Duration {
	return t.Collect + t.Insert + t.Merge + t.Process + t.Evict
}

// WindowResult is one completed window's output.
type WindowResult struct {
	// Start and End delimit the window's sub-windows, inclusive.
	Start, End uint64
	// Detected are the flows satisfying the query.
	Detected []packet.FlowKey
	// Values are the merged per-flow statistics (nil unless
	// Config.CaptureValues).
	Values map[packet.FlowKey]uint64
}

// Controller assembles windows from AFR batches.
type Controller struct {
	cfg     Config
	table   map[packet.FlowKey]*entry
	batches map[uint64]*batch
	times   map[uint64]*OpTimes
}

// New builds a controller. Invalid plans panic: a controller cannot run
// without a window definition.
func New(cfg Config) *Controller {
	if err := cfg.Plan.Validate(); err != nil {
		panic(err)
	}
	return &Controller{
		cfg:     cfg,
		table:   make(map[packet.FlowKey]*entry),
		batches: make(map[uint64]*batch),
		times:   make(map[uint64]*OpTimes),
	}
}

// TableSize returns the number of flows currently in the key-value table.
func (c *Controller) TableSize() int { return len(c.table) }

func (c *Controller) batchFor(sw uint64) *batch {
	b, ok := c.batches[sw]
	if !ok {
		b = &batch{seen: make(map[uint32]bool), expected: -1}
		c.batches[sw] = b
	}
	return b
}

func (c *Controller) timesFor(sw uint64) *OpTimes {
	t, ok := c.times[sw]
	if !ok {
		t = &OpTimes{}
		c.times[sw] = t
	}
	return t
}

// Times returns the recorded O1–O5 breakdown for a sub-window.
func (c *Controller) Times(sw uint64) OpTimes {
	if t, ok := c.times[sw]; ok {
		return *t
	}
	return OpTimes{}
}

// Receive ingests one switch-to-controller packet: AFR payloads, trigger
// announcements and spilled flow keys are all accepted (O1).
func (c *Controller) Receive(p *packet.Packet) {
	start := time.Now()
	switch p.OW.Flag {
	case packet.OWAFR:
		for _, r := range p.OW.AFRs {
			b := c.batchFor(r.SubWindow)
			if b.seen[r.Seq] {
				continue // duplicate delivery
			}
			b.seen[r.Seq] = true
			b.afrs = append(b.afrs, r)
			c.timesFor(r.SubWindow).Collect += time.Since(start)
			start = time.Now()
		}
	case packet.OWTrigger:
		b := c.batchFor(p.OW.SubWindow)
		b.expected = int(p.OW.KeyCount)
		c.timesFor(p.OW.SubWindow).Collect += time.Since(start)
	}
}

// IngestAFRs adds records directly (the RDMA path delivers memory writes,
// not packets). Dedup by sequence still applies.
func (c *Controller) IngestAFRs(recs []packet.AFR) {
	for _, r := range recs {
		b := c.batchFor(r.SubWindow)
		if b.seen[r.Seq] {
			continue
		}
		b.seen[r.Seq] = true
		b.afrs = append(b.afrs, r)
	}
}

// MissingSeqs reports AFR sequence numbers the controller has not received
// for a sub-window, given the key count announced by the trigger packet.
// It returns nil when nothing is known to be missing (§8, reliability).
func (c *Controller) MissingSeqs(sw uint64) []uint32 {
	b, ok := c.batches[sw]
	if !ok || b.expected < 0 {
		return nil
	}
	var missing []uint32
	for s := 0; s < b.expected; s++ {
		if !b.seen[uint32(s)] {
			missing = append(missing, uint32(s))
		}
	}
	return missing
}

// FinishSubWindow inserts the sub-window's batch into the key-value table
// (O2), merges per-flow statistics (O3), and — when a complete window ends
// here per the plan — processes the query (O4) and evicts retired
// sub-windows (O5). It returns the completed windows, usually zero or one.
func (c *Controller) FinishSubWindow(sw uint64) []WindowResult {
	t := c.timesFor(sw)
	b := c.batchFor(sw)

	// O2: key-value table insertion.
	start := time.Now()
	touched := make([]*entry, 0, len(b.afrs))
	for _, r := range b.afrs {
		e, ok := c.table[r.Key]
		if !ok {
			e = &entry{merged: afr.NewMergedWithCounter(c.cfg.Kind, c.cfg.DistinctCounter)}
			c.table[r.Key] = e
		}
		e.contribs = append(e.contribs, contrib{
			sw: r.SubWindow, attr: r.Attr, distinct: r.Distinct, hasDistinct: r.HasDistinct,
		})
		touched = append(touched, e)
	}
	t.Insert += time.Since(start)

	// O3: merge the new contributions into running values.
	start = time.Now()
	for i, e := range touched {
		r := b.afrs[i]
		e.merged.Absorb(r.Attr, r.Distinct, r.HasDistinct)
	}
	t.Merge += time.Since(start)
	delete(c.batches, sw)

	wStart, ok := c.cfg.Plan.Ends(sw)
	if !ok {
		return nil
	}

	// O4: evaluate the query over the merged table.
	start = time.Now()
	res := WindowResult{Start: wStart, End: sw}
	if c.cfg.CaptureValues {
		res.Values = make(map[packet.FlowKey]uint64, len(c.table))
	}
	for k, e := range c.table {
		v := e.merged.Value()
		if c.detect(k, v) {
			res.Detected = append(res.Detected, k)
		}
		if res.Values != nil {
			res.Values[k] = v
		}
	}
	sort.Slice(res.Detected, func(i, j int) bool {
		return packetKeyLess(res.Detected[i], res.Detected[j])
	})
	t.Process += time.Since(start)

	// O5: retire sub-windows that no future window needs.
	if retire, ok := c.cfg.Plan.Retire(sw); ok {
		start = time.Now()
		c.evict(retire)
		t.Evict += time.Since(start)
	}
	return []WindowResult{res}
}

// detect applies the configured query predicate.
func (c *Controller) detect(k packet.FlowKey, v uint64) bool {
	if c.cfg.Detector != nil {
		return c.cfg.Detector(k, v)
	}
	return v >= c.cfg.Threshold
}

// evict removes contributions of sub-windows <= retire, rebuilding merged
// values from the surviving contributions, and deletes flows whose every
// contribution retired (the paper's O5: "updating the merged value and
// deleting the flows that only appear in the oldest sub-window").
func (c *Controller) evict(retire uint64) {
	for k, e := range c.table {
		kept := e.contribs[:0]
		for _, cb := range e.contribs {
			if cb.sw > retire {
				kept = append(kept, cb)
			}
		}
		if len(kept) == 0 {
			delete(c.table, k)
			continue
		}
		if len(kept) != len(e.contribs) {
			e.contribs = kept
			e.merged = afr.NewMergedWithCounter(c.cfg.Kind, c.cfg.DistinctCounter)
			for _, cb := range kept {
				e.merged.Absorb(cb.attr, cb.distinct, cb.hasDistinct)
			}
		} else {
			e.contribs = kept
		}
	}
	for sw := range c.batches {
		if sw <= retire {
			delete(c.batches, sw)
		}
	}
}

// packetKeyLess orders flow keys deterministically for stable output.
func packetKeyLess(a, b packet.FlowKey) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
