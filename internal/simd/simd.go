// Package simd provides the controller's batch AFR-aggregation kernels.
// The paper merges AFRs with AVX-512 instructions, performing one
// operation (sum, max, min, compare) on many records at once. Go has no
// AVX-512 intrinsics, so this package substitutes the same *mechanism*
// with columnar struct-of-arrays kernels: attributes live in contiguous
// uint64 vectors and the kernels process eight lanes per unrolled
// iteration, giving the compiler license for bounds-check elimination and
// instruction-level parallelism. Exp#7 benchmarks these kernels against
// the per-record scalar path.
package simd

// lanes is the unroll width, mirroring an AVX-512 register's eight
// 64-bit lanes.
const lanes = 8

// Sum adds src into dst element-wise. Slices must have equal length.
func Sum(dst, src []uint64) {
	n := len(dst) &^ (lanes - 1)
	for i := 0; i < n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// Max folds src into dst taking element-wise maxima.
func Max(dst, src []uint64) {
	n := len(dst) &^ (lanes - 1)
	for i := 0; i < n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		for j := 0; j < lanes; j++ {
			if s[j] > d[j] {
				d[j] = s[j]
			}
		}
	}
	for i := n; i < len(dst); i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// Min folds src into dst taking element-wise minima.
func Min(dst, src []uint64) {
	n := len(dst) &^ (lanes - 1)
	for i := 0; i < n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		for j := 0; j < lanes; j++ {
			if s[j] < d[j] {
				d[j] = s[j]
			}
		}
	}
	for i := n; i < len(dst); i++ {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Or folds src into dst bitwise (distinction-summary merging).
func Or(dst, src []uint64) {
	n := len(dst) &^ (lanes - 1)
	for i := 0; i < n; i += lanes {
		d := dst[i : i+lanes : i+lanes]
		s := src[i : i+lanes : i+lanes]
		d[0] |= s[0]
		d[1] |= s[1]
		d[2] |= s[2]
		d[3] |= s[3]
		d[4] |= s[4]
		d[5] |= s[5]
		d[6] |= s[6]
		d[7] |= s[7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] |= src[i]
	}
}

// CountGE returns how many values reach the threshold — the vectorized
// compare the controller uses to pre-filter detection candidates.
func CountGE(vals []uint64, threshold uint64) int {
	n := len(vals) &^ (lanes - 1)
	var c0, c1, c2, c3, c4, c5, c6, c7 int
	for i := 0; i < n; i += lanes {
		v := vals[i : i+lanes : i+lanes]
		if v[0] >= threshold {
			c0++
		}
		if v[1] >= threshold {
			c1++
		}
		if v[2] >= threshold {
			c2++
		}
		if v[3] >= threshold {
			c3++
		}
		if v[4] >= threshold {
			c4++
		}
		if v[5] >= threshold {
			c5++
		}
		if v[6] >= threshold {
			c6++
		}
		if v[7] >= threshold {
			c7++
		}
	}
	count := c0 + c1 + c2 + c3 + c4 + c5 + c6 + c7
	for i := n; i < len(vals); i++ {
		if vals[i] >= threshold {
			count++
		}
	}
	return count
}

// SelectGE appends the indexes of values reaching the threshold to idx and
// returns it.
func SelectGE(vals []uint64, threshold uint64, idx []int) []int {
	for i, v := range vals {
		if v >= threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// Op names a merge operation for the scalar reference path.
type Op int

// Supported scalar ops.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// mergeFn is one record's merge operation.
type mergeFn func(acc, v uint64) uint64

// scalarOp returns the merge function for op.
func scalarOp(op Op) mergeFn {
	switch op {
	case OpMax:
		return func(a, v uint64) uint64 {
			if v > a {
				return v
			}
			return a
		}
	case OpMin:
		return func(a, v uint64) uint64 {
			if v < a {
				return v
			}
			return a
		}
	default:
		return func(a, v uint64) uint64 { return a + v }
	}
}

// MergeScalar is the record-at-a-time reference path Exp#7 compares
// against: the merge operation is dispatched per record through an
// operator function, the way a general controller loop handles one AFR at
// a time. The vectorized path instead dispatches once per batch and runs
// the unrolled columnar kernel — the instruction-level-parallelism
// mechanism the paper gets from AVX-512.
func MergeScalar(dst, src []uint64, op Op) {
	f := scalarOp(op)
	for i := range dst {
		dst[i] = f(dst[i], src[i])
	}
}

// Merge runs the columnar kernel for op.
func Merge(dst, src []uint64, op Op) {
	switch op {
	case OpSum:
		Sum(dst, src)
	case OpMax:
		Max(dst, src)
	case OpMin:
		Min(dst, src)
	}
}
