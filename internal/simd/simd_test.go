package simd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = uint64(rng.Intn(1000))
	}
	return v
}

// refMerge is the independent oracle.
func refMerge(dst, src []uint64, op Op) {
	for i := range dst {
		switch op {
		case OpSum:
			dst[i] += src[i]
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover remainder handling: lengths around the unroll width.
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 100, 1027} {
		for _, op := range []Op{OpSum, OpMax, OpMin} {
			dst := randVec(rng, n)
			src := randVec(rng, n)
			want := append([]uint64(nil), dst...)
			refMerge(want, src, op)
			Merge(dst, src, op)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("op %d n %d idx %d: got %d want %d", op, n, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestMergeScalarMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dst := randVec(rng, 100)
	src := randVec(rng, 100)
	want := append([]uint64(nil), dst...)
	refMerge(want, src, OpSum)
	MergeScalar(dst, src, OpSum)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatal("scalar path diverged")
		}
	}
}

func TestOr(t *testing.T) {
	dst := []uint64{0b0011, 0b1000, 0, 1, 2, 3, 4, 5, 6}
	src := []uint64{0b0101, 0b0001, 7, 0, 0, 0, 0, 0, 1}
	want := make([]uint64, len(dst))
	for i := range dst {
		want[i] = dst[i] | src[i]
	}
	Or(dst, src)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("idx %d: %b", i, dst[i])
		}
	}
}

func TestCountGE(t *testing.T) {
	vals := []uint64{1, 5, 10, 10, 3, 100, 0, 10, 9, 11}
	if got := CountGE(vals, 10); got != 5 {
		t.Fatalf("CountGE = %d want 5", got)
	}
	if CountGE(nil, 1) != 0 {
		t.Fatal("empty CountGE")
	}
}

func TestCountGEMatchesSelectProperty(t *testing.T) {
	f := func(vals []uint64, thr uint64) bool {
		return CountGE(vals, thr) == len(SelectGE(vals, thr, nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectGEAppends(t *testing.T) {
	idx := SelectGE([]uint64{5, 1, 7}, 5, []int{99})
	if len(idx) != 3 || idx[0] != 99 || idx[1] != 0 || idx[2] != 2 {
		t.Fatalf("idx = %v", idx)
	}
}

func BenchmarkMergeColumnarSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dst := randVec(rng, 1<<20)
	src := randVec(rng, 1<<20)
	b.SetBytes(int64(len(dst) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(dst, src)
	}
}

func BenchmarkMergeScalarSum(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dst := randVec(rng, 1<<20)
	src := randVec(rng, 1<<20)
	b.SetBytes(int64(len(dst) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeScalar(dst, src, OpSum)
	}
}
