package packet

import "fmt"

// TCP flag bits carried by simulated packets.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// OWFlag is the collection/reset flag of the OmniWindow custom header
// (paper §8: "the fields include the number of subwindow, collection/reset
// flag, and injected flowkey").
type OWFlag uint8

// OmniWindow header flag values. The data plane dispatches on these to tell
// normal traffic from the special packets that drive C&R.
const (
	// OWNone marks ordinary traffic.
	OWNone OWFlag = iota
	// OWCollection marks a controller-injected collection packet that the
	// switch recirculates to enumerate flow keys (Algorithm 2).
	OWCollection
	// OWReset marks a clear packet: a collection packet converted after
	// enumeration finishes, reused to reset sub-window state (§4.3).
	OWReset
	// OWTrigger marks the cloned packet that signalled sub-window
	// termination, sent to the controller so it can start AFR generation
	// after the out-of-order grace period (§4.2, Figure 3).
	OWTrigger
	// OWInjectKey marks a controller packet carrying a flow key that was
	// spilled to the controller during flowkey tracking; the switch
	// extracts the key, queries it, and answers with an AFR.
	OWInjectKey
	// OWAFR marks a switch-to-controller packet carrying generated AFRs.
	OWAFR
	// OWSpill marks a cloned packet carrying a flow key that did not fit
	// in the data-plane flowkey array (Algorithm 1 lines 5-6).
	OWSpill
	// OWLatencySpike marks the copy of a packet whose embedded sub-window
	// is older than every preserved sub-window; forwarded to the
	// controller for software processing (§5, out-of-order packets).
	OWLatencySpike
	// OWMigrate marks a collection packet that enumerates RAW register
	// state instead of generating AFRs, for telemetry whose statistics
	// can only be computed in the controller, e.g. FlowRadar decoding
	// (§8, merging intermediate data without AFRs).
	OWMigrate
	// OWNack marks a controller-to-switch request naming the AFR sequence
	// numbers of a sub-window that never arrived; the switch re-queries
	// them while the region still holds state (§8, reliability of AFRs).
	OWNack
	// OWRetransmit marks a switch-to-controller packet carrying AFRs
	// re-queried in answer to a NACK. It is ingested exactly like OWAFR
	// (dedup by sequence) but counted separately, so delivery accounting
	// can tell first deliveries from recoveries.
	OWRetransmit
)

// String implements fmt.Stringer for debugging.
func (f OWFlag) String() string {
	switch f {
	case OWNone:
		return "none"
	case OWCollection:
		return "collection"
	case OWReset:
		return "reset"
	case OWTrigger:
		return "trigger"
	case OWInjectKey:
		return "inject-key"
	case OWAFR:
		return "afr"
	case OWSpill:
		return "spill"
	case OWLatencySpike:
		return "latency-spike"
	case OWMigrate:
		return "migrate"
	case OWNack:
		return "nack"
	case OWRetransmit:
		return "retransmit"
	default:
		return fmt.Sprintf("OWFlag(%d)", uint8(f))
	}
}

// AFR is an application-derived flow record (paper §4.1): the flow key plus
// the flow attributes queried from the sub-window state. Attr carries the
// application-defined attribute (packet count, byte count, distinct count,
// max, ...). SubWindow records which sub-window the value summarizes and Seq
// is the per-sub-window sequence ID used for loss recovery (§8, reliability).
type AFR struct {
	Key       FlowKey
	Attr      uint64
	SubWindow uint64
	Seq       uint32
	// App identifies which co-deployed telemetry application the record
	// belongs to when one switch hosts several (they share flowkey
	// tracking and the window mechanism; each app has its own state and
	// its own controller table).
	App uint8
	// Distinct optionally carries a 4-component multiresolution-bitmap
	// summary for distinction statistics: the controller merges the raw
	// bitmaps across sub-windows (a lossless OR) and *then* counts, as
	// §4.2 prescribes, instead of summing per-sub-window counts.
	Distinct    [4]uint64
	HasDistinct bool
}

// OWHeader is the OmniWindow custom header placed between the Ethernet and
// IP headers (paper §8). HasSubWindow distinguishes "no stamp yet" from
// sub-window 0 so first-hop stamping is well defined.
type OWHeader struct {
	Flag         OWFlag
	SubWindow    uint64
	HasSubWindow bool
	// Epoch is the fabric synchronization generation the stamp was written
	// under. A switch that reboots loses its sub-window counter and falls
	// back to epoch 0 ("unsynced"); every stamp it writes before resyncing
	// carries that stale epoch, so downstream switches reject it instead of
	// monitoring a garbage sub-window. Epoch 0 doubles as "epochs disabled"
	// for single-switch deployments: a switch whose own epoch is 0 accepts
	// epoch-0 stamps unchanged.
	Epoch uint64
	// Index is the enumeration index a collection packet carries between
	// recirculation passes (md.index of Algorithm 2).
	Index uint32
	// Key is the injected flow key of OWInjectKey packets and the queried
	// key echoed in OWAFR packets.
	Key FlowKey
	// AFRs are the records appended by AFR generation. A real switch
	// appends them to the header bytes; the simulation carries them
	// in-struct.
	AFRs []AFR
	// UserSignal is the application-embedded window boundary, e.g. the
	// DML training-iteration number of Exp#3 (monotonically increasing).
	UserSignal uint64
	// HasUserSignal reports whether UserSignal is meaningful.
	HasUserSignal bool
	// KeyCount is carried by OWTrigger packets: the number of flow keys
	// the switch tracked in the terminated sub-window, so the controller
	// can detect AFR losses (§8, reliability of AFRs).
	KeyCount uint32
	// RawWords carries migrated register words (OWMigrate responses).
	RawWords []uint64
	// Seqs carries the missing AFR sequence numbers of an OWNack request.
	Seqs []uint32
	// App selects the co-deployed application a control packet targets
	// (state migration enumerates one app's registers at a time).
	App uint8
}

// Packet is a simulated packet. Timestamps are virtual nanoseconds from the
// simulation clock, not wall time.
type Packet struct {
	Key      FlowKey
	Size     uint32 // total bytes on the wire
	TCPFlags uint8
	Seq      uint32 // identifies the packet for loss detection (LossRadar)
	Time     int64  // virtual ns at which the packet enters the network
	OW       OWHeader
}

// IsSpecial reports whether the packet is an OmniWindow control packet
// rather than ordinary traffic. The switch gateway dispatches on this.
func (p *Packet) IsSpecial() bool { return p.OW.Flag != OWNone }

// HasFlags reports whether all the given TCP flag bits are set.
func (p *Packet) HasFlags(mask uint8) bool { return p.TCPFlags&mask == mask }

// Clone returns a copy of the packet with independent header slices,
// which models the switch clone engine (clones must not alias the
// original's header data).
func (p *Packet) Clone() *Packet {
	q := *p
	if len(p.OW.AFRs) > 0 {
		q.OW.AFRs = append([]AFR(nil), p.OW.AFRs...)
	}
	if len(p.OW.RawWords) > 0 {
		q.OW.RawWords = append([]uint64(nil), p.OW.RawWords...)
	}
	if len(p.OW.Seqs) > 0 {
		q.OW.Seqs = append([]uint32(nil), p.OW.Seqs...)
	}
	return &q
}
