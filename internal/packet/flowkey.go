// Package packet defines the flow and packet model shared by every layer of
// the OmniWindow reproduction: the 5-tuple flow key, the simulated packet
// with its TCP metadata, and the OmniWindow custom header that the data
// plane inserts between the Ethernet and IP headers (paper §8).
//
// The types here follow the gopacket convention of fixed-size, comparable
// key types: a FlowKey is a plain struct of scalars so it can be used
// directly as a map key and hashed without allocation.
package packet

import (
	"fmt"
	"net/netip"
)

// KeyBytes is the wire size of a serialized 5-tuple flow key:
// 4 (src IP) + 4 (dst IP) + 2 (src port) + 2 (dst port) + 1 (proto).
const KeyBytes = 13

// Protocol numbers used by the trace generator and queries.
const (
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoICMP uint8 = 1
)

// FlowKey is an IPv4 5-tuple. It is comparable and allocation-free, so it
// serves both as a map key in the controller's key-value table and as the
// value hashed by the data-plane sketch instances.
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Bytes serializes the key into its 13-byte canonical form (big endian),
// matching the flowkey field of the OmniWindow custom header.
func (k FlowKey) Bytes() [KeyBytes]byte {
	var b [KeyBytes]byte
	b[0] = byte(k.SrcIP >> 24)
	b[1] = byte(k.SrcIP >> 16)
	b[2] = byte(k.SrcIP >> 8)
	b[3] = byte(k.SrcIP)
	b[4] = byte(k.DstIP >> 24)
	b[5] = byte(k.DstIP >> 16)
	b[6] = byte(k.DstIP >> 8)
	b[7] = byte(k.DstIP)
	b[8] = byte(k.SrcPort >> 8)
	b[9] = byte(k.SrcPort)
	b[10] = byte(k.DstPort >> 8)
	b[11] = byte(k.DstPort)
	b[12] = k.Proto
	return b
}

// KeyFromBytes parses a key previously produced by Bytes.
func KeyFromBytes(b [KeyBytes]byte) FlowKey {
	return FlowKey{
		SrcIP:   uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		DstIP:   uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		SrcPort: uint16(b[8])<<8 | uint16(b[9]),
		DstPort: uint16(b[10])<<8 | uint16(b[11]),
		Proto:   b[12],
	}
}

// Reverse returns the key of the opposite direction of the same
// conversation (src and dst swapped).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
		Proto:   k.Proto,
	}
}

// SrcAddr returns the source address as a netip.Addr, for display.
func (k FlowKey) SrcAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(k.SrcIP >> 24), byte(k.SrcIP >> 16), byte(k.SrcIP >> 8), byte(k.SrcIP)})
}

// DstAddr returns the destination address as a netip.Addr, for display.
func (k FlowKey) DstAddr() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(k.DstIP >> 24), byte(k.DstIP >> 16), byte(k.DstIP >> 8), byte(k.DstIP)})
}

// String renders the key as "src:port->dst:port/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", k.SrcAddr(), k.SrcPort, k.DstAddr(), k.DstPort, k.Proto)
}

// IsZero reports whether the key is the zero 5-tuple, which the data plane
// uses as the "empty slot" sentinel in flowkey-tracking registers.
func (k FlowKey) IsZero() bool {
	return k == FlowKey{}
}

// SrcHostKey collapses the 5-tuple to a source-host key (dst fields
// zeroed). Several queries (super-spreader, port scan sources) aggregate by
// source host rather than by full 5-tuple.
func (k FlowKey) SrcHostKey() FlowKey {
	return FlowKey{SrcIP: k.SrcIP, Proto: k.Proto}
}

// DstHostKey collapses the 5-tuple to a destination-host key. Victim-side
// queries (DDoS, SYN flood, Slowloris) aggregate by destination host.
func (k FlowKey) DstHostKey() FlowKey {
	return FlowKey{DstIP: k.DstIP, Proto: k.Proto}
}
