package packet

import (
	"testing"
	"testing/quick"
)

func TestKeyBytesRoundTrip(t *testing.T) {
	k := FlowKey{SrcIP: 0x0A000001, DstIP: 0xC0A80001, SrcPort: 12345, DstPort: 443, Proto: ProtoTCP}
	got := KeyFromBytes(k.Bytes())
	if got != k {
		t.Fatalf("round trip mismatch: got %v want %v", got, k)
	}
}

func TestKeyBytesRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		return KeyFromBytes(k.Bytes()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyBytesBigEndianLayout(t *testing.T) {
	k := FlowKey{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 0x0910, DstPort: 0x1112, Proto: 0x13}
	b := k.Bytes()
	want := [KeyBytes]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0x10, 0x11, 0x12, 0x13}
	if b != want {
		t.Fatalf("layout mismatch: got %v want %v", b, want)
	}
}

func TestReverseIsInvolution(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseSwaps(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}
	r := k.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 4 || r.DstPort != 3 || r.Proto != ProtoUDP {
		t.Fatalf("unexpected reverse: %+v", r)
	}
}

func TestIsZero(t *testing.T) {
	var zero FlowKey
	if !zero.IsZero() {
		t.Fatal("zero key should be zero")
	}
	if (FlowKey{SrcIP: 1}).IsZero() {
		t.Fatal("non-zero key should not be zero")
	}
}

func TestHostKeysDropOtherFields(t *testing.T) {
	k := FlowKey{SrcIP: 11, DstIP: 22, SrcPort: 33, DstPort: 44, Proto: ProtoTCP}
	s := k.SrcHostKey()
	if s.SrcIP != 11 || s.DstIP != 0 || s.SrcPort != 0 || s.DstPort != 0 || s.Proto != ProtoTCP {
		t.Fatalf("bad src host key: %+v", s)
	}
	d := k.DstHostKey()
	if d.DstIP != 22 || d.SrcIP != 0 || d.SrcPort != 0 || d.DstPort != 0 {
		t.Fatalf("bad dst host key: %+v", d)
	}
}

func TestKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1000, DstPort: 80, Proto: ProtoTCP}
	want := "10.0.0.1:1000->10.0.0.2:80/6"
	if got := k.String(); got != want {
		t.Fatalf("String() = %q want %q", got, want)
	}
}

func TestHasFlags(t *testing.T) {
	p := Packet{TCPFlags: FlagSYN | FlagACK}
	if !p.HasFlags(FlagSYN) || !p.HasFlags(FlagSYN|FlagACK) {
		t.Fatal("expected flags present")
	}
	if p.HasFlags(FlagFIN) || p.HasFlags(FlagSYN|FlagFIN) {
		t.Fatal("unexpected flags reported present")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Packet{Key: FlowKey{SrcIP: 1}, OW: OWHeader{Flag: OWAFR, AFRs: []AFR{{Attr: 7}}}}
	q := p.Clone()
	q.OW.AFRs[0].Attr = 99
	q.OW.AFRs = append(q.OW.AFRs, AFR{Attr: 1})
	if p.OW.AFRs[0].Attr != 7 || len(p.OW.AFRs) != 1 {
		t.Fatalf("clone aliased original: %+v", p.OW.AFRs)
	}
}

func TestIsSpecial(t *testing.T) {
	if (&Packet{}).IsSpecial() {
		t.Fatal("plain packet should not be special")
	}
	for _, f := range []OWFlag{OWCollection, OWReset, OWTrigger, OWInjectKey, OWAFR, OWSpill, OWLatencySpike} {
		if !(&Packet{OW: OWHeader{Flag: f}}).IsSpecial() {
			t.Fatalf("%v packet should be special", f)
		}
	}
}

func TestOWFlagString(t *testing.T) {
	for f := OWNone; f <= OWLatencySpike; f++ {
		if f.String() == "" {
			t.Fatalf("empty string for flag %d", f)
		}
	}
	if OWFlag(200).String() != "OWFlag(200)" {
		t.Fatalf("unexpected fallback: %s", OWFlag(200))
	}
}
