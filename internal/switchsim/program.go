package switchsim

import (
	"fmt"
	"sort"
)

// RegSpec declares a register a program needs.
type RegSpec struct {
	Name    string
	Feature string
	Entries int
	Width   int
	// After lists items that must be placed in strictly earlier stages
	// (RMT match dependencies: a dependent table cannot share its
	// producer's stage).
	After []string
}

// MATSpec declares a match-action table a program needs.
type MATSpec struct {
	Name     string
	Feature  string
	SRAMKB   int
	VLIWs    int
	Gateways int
	After    []string
}

// ProgramSpec is a declarative switch program: the compiler (Place)
// assigns stages respecting dependencies and per-stage budgets, the way a
// P4 compiler lays tables out on the RMT pipeline.
type ProgramSpec struct {
	Registers []RegSpec
	MATs      []MATSpec
}

// Placement is the result of compiling a ProgramSpec onto a switch.
type Placement struct {
	// Stage maps every item name to its assigned stage.
	Stage map[string]int
	// Registers holds the allocated registers by name.
	Registers map[string]*Register[uint64]
}

// item is the unified view the solver works on.
type placeItem struct {
	name    string
	feature string
	after   []string
	reg     *RegSpec
	mat     *MATSpec
}

// Place compiles spec onto sw: items are topologically ordered by their
// dependencies and greedily assigned the earliest stage that satisfies
// both the ordering constraint (strictly after every dependency) and the
// stage's remaining SRAM/SALU/VLIW/gateway budget. It returns an error on
// unknown or cyclic dependencies and when no stage can host an item.
func Place(sw *Switch, spec ProgramSpec) (*Placement, error) {
	items := make(map[string]*placeItem)
	var order []string
	add := func(it *placeItem) error {
		if _, dup := items[it.name]; dup {
			return fmt.Errorf("switchsim: duplicate program item %q", it.name)
		}
		items[it.name] = it
		order = append(order, it.name)
		return nil
	}
	for i := range spec.Registers {
		r := &spec.Registers[i]
		if err := add(&placeItem{name: r.Name, feature: r.Feature, after: r.After, reg: r}); err != nil {
			return nil, err
		}
	}
	for i := range spec.MATs {
		m := &spec.MATs[i]
		if err := add(&placeItem{name: m.Name, feature: m.Feature, after: m.After, mat: m}); err != nil {
			return nil, err
		}
	}

	// Topological sort (stable: preserves declaration order among
	// independent items).
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var topo []string
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("switchsim: dependency cycle through %q", name)
		case 2:
			return nil
		}
		state[name] = 1
		it := items[name]
		deps := append([]string(nil), it.after...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := items[d]; !ok {
				return fmt.Errorf("switchsim: item %q depends on unknown %q", name, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = 2
		topo = append(topo, name)
		return nil
	}
	for _, name := range order {
		if err := visit(name); err != nil {
			return nil, err
		}
	}

	pl := &Placement{Stage: make(map[string]int), Registers: make(map[string]*Register[uint64])}
	for _, name := range topo {
		it := items[name]
		min := 0
		for _, d := range it.after {
			if s := pl.Stage[d]; s+1 > min {
				min = s + 1
			}
		}
		stage, err := firstFit(sw, it, min)
		if err != nil {
			return nil, err
		}
		pl.Stage[name] = stage
		sw.SetFeature(featureOr(it.feature))
		if it.reg != nil {
			r, err := AllocRegister[uint64](sw, it.name, stage, it.reg.Entries, it.reg.Width)
			if err != nil {
				return nil, err
			}
			pl.Registers[it.name] = r
		} else {
			if err := sw.AllocMAT(it.name, stage, it.mat.SRAMKB, it.mat.VLIWs, it.mat.Gateways); err != nil {
				return nil, err
			}
		}
	}
	return pl, nil
}

// firstFit finds the earliest stage >= min with room for the item.
func firstFit(sw *Switch, it *placeItem, min int) (int, error) {
	cap := sw.ledger.capacity
	for stage := min; stage < cap.Stages; stage++ {
		used := sw.ledger.perStage[stage]
		if it.reg != nil {
			kb := (it.reg.Entries*it.reg.Width + 1023) / 1024
			if used.SALUs+1 <= cap.SALUsPerStage && used.SRAMKB+kb <= cap.SRAMKBPerStage {
				return stage, nil
			}
			continue
		}
		m := it.mat
		if used.SRAMKB+m.SRAMKB <= cap.SRAMKBPerStage &&
			used.VLIWs+m.VLIWs <= cap.VLIWsPerStage &&
			used.Gateways+m.Gateways <= cap.GatewaysPerStage {
			return stage, nil
		}
	}
	return 0, fmt.Errorf("switchsim: no stage can host %q (min stage %d) — the program exceeds the pipeline (C3/C4)", it.name, min)
}

func featureOr(f string) string {
	if f == "" {
		return "uncategorized"
	}
	return f
}
