package switchsim

import "fmt"

// regHeader carries the identity and placement of a register, shared by all
// generic Register instantiations so a Pass can track accesses uniformly.
type regHeader struct {
	name    string
	stage   int
	id      int
	entries int
}

// Name returns the register's name.
func (h *regHeader) Name() string { return h.name }

// Stage returns the pipeline stage the register (and its SALU) lives in.
func (h *regHeader) Stage() int { return h.stage }

// Entries returns the number of entries in the register.
func (h *regHeader) Entries() int { return h.entries }

// header lets Register[T] satisfy interfaces that need the shared header.
func (h *regHeader) header() *regHeader { return h }

// RegisterRef is the type-erased view of a register used for access
// tracking and reset enumeration.
type RegisterRef interface {
	header() *regHeader
	Name() string
	Stage() int
	Entries() int
	// zero clears entry i (used by clear packets and the switch OS).
	zero(i int)
}

// Register is an on-chip stateful memory block served by one SALU. The
// entry type T models the (possibly paired) register width; resource
// accounting uses the byte width declared at allocation.
type Register[T any] struct {
	regHeader
	data []T
}

// zero implements RegisterRef.
func (r *Register[T]) zero(i int) {
	var z T
	r.data[i] = z
}

// AllocRegister allocates a register of `entries` entries of `widthBytes`
// each in `stage`, booking SRAM and one SALU to the switch's current
// feature. It returns an error when the stage budget is exhausted, which is
// exactly the condition that forbids naive per-sub-window state copies (C3).
func AllocRegister[T any](sw *Switch, name string, stage, entries, widthBytes int) (*Register[T], error) {
	kb := (entries*widthBytes + 1023) / 1024
	if err := sw.ledger.charge(sw.feature, stage, Resources{SRAMKB: kb, SALUs: 1}); err != nil {
		return nil, fmt.Errorf("alloc register %q: %w", name, err)
	}
	r := &Register[T]{
		regHeader: regHeader{name: name, stage: stage, id: sw.nextRegID, entries: entries},
		data:      make([]T, entries),
	}
	sw.nextRegID++
	sw.registers = append(sw.registers, r)
	return r, nil
}

// Read returns entry idx. It counts as the register's single access in
// this pass.
func Read[T any](p *Pass, r *Register[T], idx int) T {
	p.touch(&r.regHeader, idx)
	return r.data[idx]
}

// Write stores v into entry idx. It counts as the register's single access
// in this pass.
func Write[T any](p *Pass, r *Register[T], idx int, v T) {
	p.touch(&r.regHeader, idx)
	r.data[idx] = v
}

// ReadWrite applies fn to entry idx and stores the result, returning the
// new value — the read-modify-write a SALU performs in one access.
func ReadWrite[T any](p *Pass, r *Register[T], idx int, fn func(T) T) T {
	p.touch(&r.regHeader, idx)
	v := fn(r.data[idx])
	r.data[idx] = v
	return v
}

// Peek reads entry idx outside any pass. Only the test/verification
// harness and the switch-OS model may use it; data-plane code must go
// through a Pass.
func (r *Register[T]) Peek(idx int) T { return r.data[idx] }

// Poke writes entry idx outside any pass (switch-OS configuration writes).
func (r *Register[T]) Poke(idx int, v T) { r.data[idx] = v }
