package switchsim

import (
	"strings"
	"testing"
)

func TestPlaceChainRespectsDependencies(t *testing.T) {
	sw := New(0)
	pl, err := Place(sw, ProgramSpec{
		Registers: []RegSpec{
			{Name: "a", Feature: "F", Entries: 16, Width: 8},
			{Name: "b", Feature: "F", Entries: 16, Width: 8, After: []string{"a"}},
			{Name: "c", Feature: "F", Entries: 16, Width: 8, After: []string{"b"}},
		},
		MATs: []MATSpec{
			{Name: "gate", Feature: "F", VLIWs: 2, Gateways: 1, After: []string{"c"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(pl.Stage["a"] < pl.Stage["b"] && pl.Stage["b"] < pl.Stage["c"] && pl.Stage["c"] < pl.Stage["gate"]) {
		t.Fatalf("dependency order broken: %v", pl.Stage)
	}
	if pl.Registers["a"] == nil || pl.Registers["a"].Entries() != 16 {
		t.Fatal("register not allocated")
	}
}

func TestPlacePacksIndependentItems(t *testing.T) {
	sw := New(0)
	spec := ProgramSpec{}
	for i := 0; i < 6; i++ {
		spec.Registers = append(spec.Registers, RegSpec{
			Name: string(rune('a' + i)), Feature: "F", Entries: 16, Width: 8,
		})
	}
	pl, err := Place(sw, spec)
	if err != nil {
		t.Fatal(err)
	}
	// 4 SALUs per stage: six independent registers need exactly 2 stages.
	maxStage := 0
	for _, s := range pl.Stage {
		if s > maxStage {
			maxStage = s
		}
	}
	if maxStage != 1 {
		t.Fatalf("six registers used stages 0..%d, want 0..1", maxStage)
	}
}

func TestPlaceSpillsOnSRAM(t *testing.T) {
	sw := New(0)
	big := DefaultCapacity().SRAMKBPerStage * 1024 * 3 / 4
	pl, err := Place(sw, ProgramSpec{
		Registers: []RegSpec{
			{Name: "big1", Entries: big, Width: 1},
			{Name: "big2", Entries: big, Width: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stage["big1"] == pl.Stage["big2"] {
		t.Fatal("two 3/4-SRAM registers packed into one stage")
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(New(0), ProgramSpec{
		Registers: []RegSpec{{Name: "x", Entries: 8, Width: 8}, {Name: "x", Entries: 8, Width: 8}},
	}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate not caught: %v", err)
	}
	if _, err := Place(New(0), ProgramSpec{
		Registers: []RegSpec{{Name: "x", Entries: 8, Width: 8, After: []string{"ghost"}}},
	}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown dep not caught: %v", err)
	}
	if _, err := Place(New(0), ProgramSpec{
		Registers: []RegSpec{
			{Name: "x", Entries: 8, Width: 8, After: []string{"y"}},
			{Name: "y", Entries: 8, Width: 8, After: []string{"x"}},
		},
	}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not caught: %v", err)
	}
	// A chain longer than the pipeline cannot place.
	var spec ProgramSpec
	prev := ""
	for i := 0; i < DefaultCapacity().Stages+1; i++ {
		r := RegSpec{Name: string(rune('A' + i)), Entries: 8, Width: 8}
		if prev != "" {
			r.After = []string{prev}
		}
		prev = r.Name
		spec.Registers = append(spec.Registers, r)
	}
	if _, err := Place(New(0), spec); err == nil {
		t.Fatal("over-long chain placed")
	}
}

func TestPlaceFeatureAttribution(t *testing.T) {
	sw := New(0)
	_, err := Place(sw, ProgramSpec{
		Registers: []RegSpec{{Name: "r", Feature: "Signal", Entries: 16, Width: 8}},
		MATs:      []MATSpec{{Name: "m", Feature: "Signal", VLIWs: 1, Gateways: 1, After: []string{"r"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := sw.Ledger().Feature("Signal")
	if f.SALUs != 1 || f.VLIWs != 1 || f.Stages != 2 {
		t.Fatalf("feature attribution wrong: %+v", f)
	}
}
