package switchsim

import (
	"fmt"
	"time"

	"omniwindow/internal/packet"
)

// ProgramFunc is the data-plane program installed on a switch: it is
// invoked once per pipeline pass with the packet being processed.
type ProgramFunc func(p *Pass)

// Switch models one RMT switch: a pipeline with resource-accounted
// registers/MATs, a recirculation port, and a clone port to the controller.
type Switch struct {
	// ID identifies the switch in multi-switch topologies.
	ID int
	// Costs is the virtual-time cost model.
	Costs CostModel

	ledger    *Ledger
	feature   string
	nextRegID int
	registers []RegisterRef
	program   ProgramFunc

	// maxPasses bounds recirculation loops to catch runaway programs.
	maxPasses int

	// Per-pass access tracking, generation-stamped to avoid a map
	// allocation per packet.
	passGen    int
	touchedGen []int
}

// New creates a switch with the default capacity and cost model.
func New(id int) *Switch {
	return NewWithCapacity(id, DefaultCapacity(), DefaultCosts())
}

// NewWithCapacity creates a switch with explicit capacity and costs.
func NewWithCapacity(id int, capacity Capacity, costs CostModel) *Switch {
	return &Switch{
		ID:        id,
		Costs:     costs,
		ledger:    NewLedger(capacity),
		feature:   "uncategorized",
		maxPasses: 1 << 22,
	}
}

// Ledger exposes the resource ledger for Exp#5 reporting.
func (sw *Switch) Ledger() *Ledger { return sw.ledger }

// SetFeature attributes subsequent allocations to the named feature
// (paper Table 2 rows: "Signal", "Consistency model", ...).
func (sw *Switch) SetFeature(name string) { sw.feature = name }

// AllocMAT books the SRAM, VLIW slots and gateways of a match-action table
// under the current feature. MATs are stateless here: their behaviour lives
// in the program callback; this call keeps the resource model honest.
func (sw *Switch) AllocMAT(name string, stage, sramKB, vliws, gateways int) error {
	if err := sw.ledger.charge(sw.feature, stage, Resources{SRAMKB: sramKB, VLIWs: vliws, Gateways: gateways}); err != nil {
		return fmt.Errorf("alloc MAT %q: %w", name, err)
	}
	return nil
}

// SetProgram installs the data-plane program.
func (sw *Switch) SetProgram(f ProgramFunc) { sw.program = f }

// Registers lists all allocated registers (used by reset enumeration).
func (sw *Switch) Registers() []RegisterRef {
	return append([]RegisterRef(nil), sw.registers...)
}

// Output is everything one Inject produced, with its virtual-time cost.
type Output struct {
	// Forward are the packets leaving on egress ports (normal traffic).
	Forward []*packet.Packet
	// ToController are the packets cloned or redirected to the
	// controller (triggers, AFRs, spilled keys).
	ToController []*packet.Packet
	// Passes is the number of pipeline traversals, 1 + recirculations.
	Passes int
	// Latency is the modeled time from ingress to the last emission.
	Latency time.Duration
}

// Pass is one traversal of the pipeline by one packet. It enforces the RMT
// constraints: each register is accessed at most once, and accesses must
// proceed in non-decreasing stage order (feed-forward pipeline).
type Pass struct {
	sw *Switch
	// Pkt is the packet being processed; programs mutate its OW header.
	Pkt *packet.Packet

	lastStage int

	forward      []*packet.Packet
	toController []*packet.Packet
	recirculate  bool
	dropped      bool
}

// touch records an access to a register and panics on constraint
// violations — these are bugs in the "P4 program", not runtime conditions.
func (p *Pass) touch(h *regHeader, idx int) {
	if idx < 0 || idx >= h.entries {
		panic(fmt.Sprintf("switchsim: register %q index %d out of range [0,%d) — the address MAT computed a bad offset", h.name, idx, h.entries))
	}
	if p.sw.touchedGen[h.id] == p.sw.passGen {
		panic(fmt.Sprintf("switchsim: register %q accessed twice in one pass — a SALU can reach one location per packet (C4); recirculate or restructure", h.name))
	}
	if h.stage < p.lastStage {
		panic(fmt.Sprintf("switchsim: register %q in stage %d accessed after stage %d — RMT pipelines are feed-forward", h.name, h.stage, p.lastStage))
	}
	p.sw.touchedGen[h.id] = p.sw.passGen
	p.lastStage = h.stage
}

// Touch books an access to a register without reading it. The sketch
// adapters use it so algorithm state kept in Go structs still obeys and
// exercises the single-access rule.
func (p *Pass) Touch(r RegisterRef, idx int) { p.touch(r.header(), idx) }

// CloneToController emits a copy of pkt on the CPU/controller port. The
// clone engine is independent of the egress port, so cloning does not
// consume the packet.
func (p *Pass) CloneToController(pkt *packet.Packet) {
	p.toController = append(p.toController, pkt)
}

// Emit forwards an extra packet (used by multicast-style behaviour).
func (p *Pass) Emit(pkt *packet.Packet) { p.forward = append(p.forward, pkt) }

// Recirculate sends the current packet back to ingress for another pass.
func (p *Pass) Recirculate() { p.recirculate = true }

// Drop consumes the current packet.
func (p *Pass) Drop() { p.dropped = true }

// Inject runs the packet through the pipeline, following recirculations
// until the packet leaves, and returns everything emitted plus the modeled
// latency. The recirculation port is hard-wired and independent of front
// ports, so recirculating packets do not steal bandwidth from normal
// traffic (paper §4.2).
func (sw *Switch) Inject(pkt *packet.Packet) Output {
	if sw.program == nil {
		return Output{Forward: []*packet.Packet{pkt}, Passes: 1, Latency: sw.Costs.PipelinePass}
	}
	if len(sw.touchedGen) < sw.nextRegID {
		sw.touchedGen = make([]int, sw.nextRegID)
	}
	var out Output
	cur := pkt
	pass := &Pass{sw: sw}
	for {
		out.Passes++
		if out.Passes > sw.maxPasses {
			panic(fmt.Sprintf("switchsim: packet exceeded %d passes — runaway recirculation loop", sw.maxPasses))
		}
		sw.passGen++
		pass.Pkt = cur
		pass.lastStage = 0
		pass.recirculate = false
		pass.dropped = false
		pass.forward = pass.forward[:0]
		pass.toController = pass.toController[:0]
		sw.program(pass)
		out.ToController = append(out.ToController, pass.toController...)
		out.Forward = append(out.Forward, pass.forward...)
		if pass.recirculate {
			continue
		}
		if !pass.dropped {
			out.Forward = append(out.Forward, cur)
		}
		break
	}
	out.Latency = time.Duration(out.Passes) * sw.Costs.PipelinePass
	return out
}

// OSReadRegister models the switch-OS path reading a whole register via
// PCIe: it returns a snapshot and the modeled time. This is the slow path
// OmniWindow exists to avoid (C1); the TW1/TW2 baselines use it.
func OSReadRegister[T any](sw *Switch, r *Register[T]) ([]T, time.Duration) {
	snap := append([]T(nil), r.data...)
	return snap, sw.Costs.OSReadTime(1, len(r.data))
}

// OSResetRegisters models the switch OS zeroing whole registers
// sequentially and returns the modeled time (Exp#8 baseline).
func (sw *Switch) OSResetRegisters(regs ...RegisterRef) time.Duration {
	total := 0
	for _, r := range regs {
		for i := 0; i < r.Entries(); i++ {
			r.zero(i)
		}
		total += r.Entries()
	}
	return sw.Costs.OSResetTime(1, total)
}
