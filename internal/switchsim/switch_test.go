package switchsim

import (
	"strings"
	"testing"
	"time"

	"omniwindow/internal/packet"
)

func newTestSwitch(t *testing.T) *Switch {
	t.Helper()
	return New(0)
}

func mustReg(t *testing.T, sw *Switch, name string, stage, entries, width int) *Register[uint64] {
	t.Helper()
	r, err := AllocRegister[uint64](sw, name, stage, entries, width)
	if err != nil {
		t.Fatalf("alloc %s: %v", name, err)
	}
	return r
}

func TestRegisterReadWrite(t *testing.T) {
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 16, 8)
	sw.SetProgram(func(p *Pass) {
		v := ReadWrite(p, reg, 3, func(x uint64) uint64 { return x + 5 })
		if v != 5 {
			t.Errorf("ReadWrite returned %d want 5", v)
		}
	})
	sw.Inject(&packet.Packet{})
	if reg.Peek(3) != 5 {
		t.Fatalf("register not updated: %d", reg.Peek(3))
	}
}

func TestSingleAccessPerPassEnforced(t *testing.T) {
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 16, 8)
	sw.SetProgram(func(p *Pass) {
		Read(p, reg, 0)
		defer func() {
			if r := recover(); r == nil {
				t.Error("second access in one pass did not panic")
			} else if !strings.Contains(r.(string), "accessed twice") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		Read(p, reg, 1)
	})
	sw.Inject(&packet.Packet{})
}

func TestFeedForwardStageOrderEnforced(t *testing.T) {
	sw := newTestSwitch(t)
	early := mustReg(t, sw, "early", 1, 8, 8)
	late := mustReg(t, sw, "late", 3, 8, 8)
	sw.SetProgram(func(p *Pass) {
		Read(p, late, 0)
		defer func() {
			if r := recover(); r == nil {
				t.Error("backwards stage access did not panic")
			} else if !strings.Contains(r.(string), "feed-forward") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		Read(p, early, 0)
	})
	sw.Inject(&packet.Packet{})
}

func TestIndexOutOfRangePanics(t *testing.T) {
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 8, 8)
	sw.SetProgram(func(p *Pass) {
		defer func() {
			if r := recover(); r == nil {
				t.Error("out-of-range access did not panic")
			}
		}()
		Read(p, reg, 8)
	})
	sw.Inject(&packet.Packet{})
}

func TestRecirculationRunsMultiplePasses(t *testing.T) {
	sw := newTestSwitch(t)
	passCount := 0
	sw.SetProgram(func(p *Pass) {
		passCount++
		if passCount < 4 {
			p.Recirculate()
		} else {
			p.Drop()
		}
	})
	out := sw.Inject(&packet.Packet{})
	if out.Passes != 4 {
		t.Fatalf("passes = %d want 4", out.Passes)
	}
	if len(out.Forward) != 0 {
		t.Fatalf("dropped packet still forwarded")
	}
	if out.Latency != 4*sw.Costs.PipelinePass {
		t.Fatalf("latency = %v", out.Latency)
	}
}

func TestSingleAccessResetsAcrossPasses(t *testing.T) {
	// A recirculated packet may access the same register again in its
	// next pass — that is the whole basis of C&R enumeration.
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 4, 8)
	i := 0
	sw.SetProgram(func(p *Pass) {
		Write(p, reg, i, uint64(i))
		i++
		if i < 4 {
			p.Recirculate()
		} else {
			p.Drop()
		}
	})
	sw.Inject(&packet.Packet{})
	for j := 0; j < 4; j++ {
		if reg.Peek(j) != uint64(j) {
			t.Fatalf("entry %d = %d", j, reg.Peek(j))
		}
	}
}

func TestCloneToControllerDoesNotConsumePacket(t *testing.T) {
	sw := newTestSwitch(t)
	sw.SetProgram(func(p *Pass) {
		c := p.Pkt.Clone()
		c.OW.Flag = packet.OWTrigger
		p.CloneToController(c)
	})
	out := sw.Inject(&packet.Packet{Key: packet.FlowKey{SrcIP: 1}})
	if len(out.Forward) != 1 || len(out.ToController) != 1 {
		t.Fatalf("forward=%d controller=%d", len(out.Forward), len(out.ToController))
	}
	if out.ToController[0].OW.Flag != packet.OWTrigger {
		t.Fatal("controller copy lost its flag")
	}
	if out.Forward[0].OW.Flag != packet.OWNone {
		t.Fatal("forwarded original was mutated by clone")
	}
}

func TestNoProgramForwards(t *testing.T) {
	sw := newTestSwitch(t)
	out := sw.Inject(&packet.Packet{})
	if len(out.Forward) != 1 || out.Passes != 1 {
		t.Fatalf("unexpected output: %+v", out)
	}
}

func TestLedgerAccounting(t *testing.T) {
	sw := newTestSwitch(t)
	sw.SetFeature("Flowkey tracking")
	mustReg(t, sw, "fk_buffer", 2, 8192, 16) // 128 KB
	mustReg(t, sw, "bloom0", 3, 32768, 1)    // 32 KB
	if err := sw.AllocMAT("fk_gate", 2, 4, 3, 2); err != nil {
		t.Fatal(err)
	}
	sw.SetFeature("Signal")
	mustReg(t, sw, "subwindow", 0, 1, 4)

	fk := sw.Ledger().Feature("Flowkey tracking")
	if fk.Stages != 2 {
		t.Fatalf("feature stages = %d want 2", fk.Stages)
	}
	if fk.SALUs != 2 {
		t.Fatalf("feature SALUs = %d want 2", fk.SALUs)
	}
	if fk.SRAMKB != 128+32+4 {
		t.Fatalf("feature SRAM = %d", fk.SRAMKB)
	}
	if fk.VLIWs != 3 || fk.Gateways != 2 {
		t.Fatalf("feature VLIW/gateway = %d/%d", fk.VLIWs, fk.Gateways)
	}

	total := sw.Ledger().Total()
	if total.Stages != 3 {
		t.Fatalf("total stages = %d want 3 (union of {0,2,3})", total.Stages)
	}
	if total.SALUs != 3 {
		t.Fatalf("total SALUs = %d", total.SALUs)
	}
	if got := sw.Ledger().Feature("missing"); got != (Resources{}) {
		t.Fatalf("missing feature should be zero, got %+v", got)
	}
}

func TestLedgerStageSharing(t *testing.T) {
	// Two features in the same stage: total stage count must not double
	// (Table 2 note: "stage and VLIW can be shared by different features").
	sw := newTestSwitch(t)
	sw.SetFeature("A")
	mustReg(t, sw, "a", 5, 16, 8)
	sw.SetFeature("B")
	mustReg(t, sw, "b", 5, 16, 8)
	if got := sw.Ledger().Total().Stages; got != 1 {
		t.Fatalf("total stages = %d want 1", got)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	cap := DefaultCapacity()
	sw := NewWithCapacity(0, cap, DefaultCosts())
	for i := 0; i < cap.SALUsPerStage; i++ {
		mustReg(t, sw, "r", 0, 8, 8)
	}
	if _, err := AllocRegister[uint64](sw, "overflow", 0, 8, 8); err == nil {
		t.Fatal("expected SALU exhaustion error")
	}
	if _, err := AllocRegister[uint64](sw, "huge", 1, cap.SRAMKBPerStage*1024+1024, 1); err == nil {
		t.Fatal("expected SRAM exhaustion error")
	}
	if _, err := AllocRegister[uint64](sw, "badstage", cap.Stages, 8, 8); err == nil {
		t.Fatal("expected out-of-range stage error")
	}
}

func TestLedgerTableRendering(t *testing.T) {
	sw := newTestSwitch(t)
	sw.SetFeature("Signal")
	mustReg(t, sw, "s", 0, 8, 8)
	tbl := sw.Ledger().Table()
	if !strings.Contains(tbl, "Signal") || !strings.Contains(tbl, "Total") {
		t.Fatalf("table missing rows:\n%s", tbl)
	}
}

func TestUtilizationFractions(t *testing.T) {
	sw := newTestSwitch(t)
	sw.SetFeature("X")
	mustReg(t, sw, "r", 0, 8, 8)
	u := sw.Ledger().Utilization()
	for k, v := range u {
		if v < 0 || v > 1 {
			t.Fatalf("utilization %s = %f out of range", k, v)
		}
	}
	if u["SALU"] == 0 {
		t.Fatal("SALU utilization should be non-zero")
	}
}

func TestOSReadAndResetCosts(t *testing.T) {
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 1024, 2)
	reg.Poke(7, 99)
	snap, d := OSReadRegister(sw, reg)
	if snap[7] != 99 {
		t.Fatal("snapshot missing value")
	}
	if d <= sw.Costs.OSBase {
		t.Fatalf("OS read cost %v too small", d)
	}
	// Snapshot must be independent of live register.
	reg.Poke(7, 1)
	if snap[7] != 99 {
		t.Fatal("snapshot aliases register")
	}

	dReset := sw.OSResetRegisters(reg)
	if reg.Peek(7) != 0 {
		t.Fatal("reset did not zero register")
	}
	if dReset <= sw.Costs.OSBase {
		t.Fatalf("OS reset cost %v too small", dReset)
	}
}

func TestOSResetLinearInRegisters(t *testing.T) {
	sw := newTestSwitch(t)
	r1 := mustReg(t, sw, "r1", 0, 4096, 2)
	r2 := mustReg(t, sw, "r2", 1, 4096, 2)
	d1 := sw.OSResetRegisters(r1)
	d2 := sw.OSResetRegisters(r1, r2)
	if d2-sw.Costs.OSBase != 2*(d1-sw.Costs.OSBase) {
		t.Fatalf("OS reset not linear: %v vs %v", d1, d2)
	}
}

func TestRecircTimeIndependentOfRegisters(t *testing.T) {
	c := DefaultCosts()
	// One clear packet resets the same slot of every register per pass,
	// so the recirculation time depends only on slots and packet count.
	a := c.RecircTime(16, 65536)
	if a <= 0 {
		t.Fatal("recirc time must be positive")
	}
	if b := c.RecircTime(16, 65536); b != a {
		t.Fatal("recirc time not deterministic")
	}
	if c.RecircTime(4, 65536) <= a {
		t.Fatal("fewer packets must take longer")
	}
	if c.RecircTime(0, 100) != 0 || c.RecircTime(4, 0) != 0 {
		t.Fatal("degenerate inputs should cost zero")
	}
}

func TestRecircTimeMatchesPaperRegime(t *testing.T) {
	// Exp#8: 16 clear packets reset 64 K-entry registers in under 2 ms.
	c := DefaultCosts()
	if d := c.RecircTime(16, 65536); d > 2*time.Millisecond {
		t.Fatalf("OW-16 reset %v exceeds 2 ms", d)
	}
	// The OS path takes two to three orders of magnitude longer.
	if os := c.OSResetTime(4, 65536); os < 100*c.RecircTime(16, 65536) {
		t.Fatalf("OS/recirc gap too small: %v vs %v", os, c.RecircTime(16, 65536))
	}
}

func TestTouchBooksAccess(t *testing.T) {
	sw := newTestSwitch(t)
	reg := mustReg(t, sw, "r", 0, 8, 8)
	sw.SetProgram(func(p *Pass) {
		p.Touch(reg, 2)
		defer func() {
			if recover() == nil {
				t.Error("Touch did not enforce single access")
			}
		}()
		Read(p, reg, 2)
	})
	sw.Inject(&packet.Packet{})
}
