// Package switchsim models a reconfigurable match-action (RMT) switch ASIC
// in software. It reproduces the constraints that shape OmniWindow's design
// (paper §2, C1–C4):
//
//   - C1: there is no memory-traversal instruction; the only ways to read
//     state out of the ASIC are per-entry switch-OS reads over PCIe (slow)
//     or recirculating packets that read one entry per pipeline pass;
//   - C2: switches have independent, drifting local clocks;
//   - C3: per-stage SRAM and stateful-ALU budgets are scarce and accounted;
//   - C4: packet processing is single-pass and each SALU may access only
//     one location of its register per pass.
//
// The simulator is synchronous: a driver injects packets and the switch
// returns the resulting forwarded/cloned/recirculated packets together with
// virtual-time costs from the CostModel. No wall-clock time is involved, so
// experiments are deterministic.
package switchsim

import "time"

// CostModel holds the virtual-time costs of data-plane and control-plane
// operations. The defaults are calibrated so the OS-bypass experiments
// (Exp#6, Exp#8) land in the regimes the paper reports: switch-OS C&R in
// seconds, recirculation-based C&R in single-digit milliseconds.
type CostModel struct {
	// PipelinePass is the latency of one full traversal of the pipeline,
	// including the hard-wired recirculation path back to ingress.
	PipelinePass time.Duration
	// RecircSerialize is the extra serialization gap between two
	// recirculated packets sharing the recirculation port.
	RecircSerialize time.Duration
	// OSPerEntryRead is the switch-OS cost to read one register entry via
	// the driver/PCIe/RPC path. The paper measures 2.4 s - 10.3 s to read a
	// Count-Min sketch of 1-4 arrays x 64 K entries, i.e. ~37 us/entry.
	OSPerEntryRead time.Duration
	// OSPerEntryWrite is the switch-OS cost to reset one register entry.
	OSPerEntryWrite time.Duration
	// OSBase is the fixed RPC/driver setup overhead per switch-OS batch.
	OSBase time.Duration
	// DPDKInjectPerKey is the controller cost to craft and inject one
	// flow key into the switch via DPDK (Exp#6 CPC path).
	DPDKInjectPerKey time.Duration
	// DPDKRxPerPacket is the controller cost to receive and parse one
	// AFR-bearing packet over DPDK.
	DPDKRxPerPacket time.Duration
	// AddressLookupPerKey is the controller cost to look up the key-value
	// table address for one key before injecting it (Exp#6 CPC*).
	AddressLookupPerKey time.Duration
	// RDMAWrite is the RNIC-side latency of one RDMA WRITE carrying AFRs;
	// it consumes no controller CPU.
	RDMAWrite time.Duration
	// RDMAFetchAdd is the latency of one RDMA Fetch-and-Add.
	RDMAFetchAdd time.Duration
	// RDMAInjectPerKey is the controller cost to inject one flow key
	// when the RDMA path handles the responses: doorbell-batched sends
	// with no per-response RX processing make it far cheaper than the
	// DPDK path.
	RDMAInjectPerKey time.Duration
	// ControllerWait is the grace period the controller waits after the
	// trigger packet before starting AFR generation, so the switch can
	// absorb out-of-order packets of the terminated sub-window (§4.2).
	ControllerWait time.Duration
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		PipelinePass:        250 * time.Nanosecond,
		RecircSerialize:     10 * time.Nanosecond,
		OSPerEntryRead:      37 * time.Microsecond,
		OSPerEntryWrite:     12 * time.Microsecond,
		OSBase:              5 * time.Millisecond,
		DPDKInjectPerKey:    180 * time.Nanosecond,
		DPDKRxPerPacket:     60 * time.Nanosecond,
		AddressLookupPerKey: 110 * time.Nanosecond,
		RDMAWrite:           900 * time.Nanosecond,
		RDMAFetchAdd:        1100 * time.Nanosecond,
		RDMAInjectPerKey:    40 * time.Nanosecond,
		ControllerWait:      1 * time.Millisecond,
	}
}

// OSReadTime returns the modeled switch-OS time to read `entries` register
// entries sequentially across `registers` registers. The OS path cannot
// read registers concurrently (Exp#8), so the cost is linear in both.
func (c CostModel) OSReadTime(registers, entries int) time.Duration {
	return c.OSBase + time.Duration(registers)*time.Duration(entries)*c.OSPerEntryRead
}

// OSResetTime returns the modeled switch-OS time to zero `entries` entries
// in each of `registers` registers, sequentially.
func (c CostModel) OSResetTime(registers, entries int) time.Duration {
	return c.OSBase + time.Duration(registers)*time.Duration(entries)*c.OSPerEntryWrite
}

// RecircTime returns the modeled time for `packets` concurrently
// recirculating packets to perform `slots` one-entry-per-pass operations.
// Each pass touches the same entry index of every register in the pipeline
// (that is why, unlike the OS path, the cost does not grow with the number
// of registers — Exp#8).
func (c CostModel) RecircTime(packets, slots int) time.Duration {
	if packets <= 0 || slots <= 0 {
		return 0
	}
	passes := (slots + packets - 1) / packets
	return time.Duration(passes)*c.PipelinePass + time.Duration(packets-1)*c.RecircSerialize
}
