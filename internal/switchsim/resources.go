package switchsim

import (
	"fmt"
	"sort"
	"strings"
)

// Resources summarizes hardware usage of one feature or of a whole program
// (paper Table 2 columns). Stage counts are de-duplicated at the ledger
// level because features share stages.
type Resources struct {
	Stages   int
	SRAMKB   int
	SALUs    int
	VLIWs    int
	Gateways int
}

// Add accumulates raw resource counts (Stages excluded; stage totals come
// from stage-set unions in the ledger).
func (r *Resources) Add(o Resources) {
	r.SRAMKB += o.SRAMKB
	r.SALUs += o.SALUs
	r.VLIWs += o.VLIWs
	r.Gateways += o.Gateways
}

// Capacity describes the totals available on the simulated ASIC, loosely
// following published Tofino figures: 12 stages, ~120 KB of register SRAM
// accounted per stage (the simulator tracks the slice telemetry may use),
// 4 SALUs per stage, 24 VLIW slots and 16 gateways per stage.
type Capacity struct {
	Stages           int
	SRAMKBPerStage   int
	SALUsPerStage    int
	VLIWsPerStage    int
	GatewaysPerStage int
}

// DefaultCapacity returns the modeled ASIC capacity.
func DefaultCapacity() Capacity {
	return Capacity{
		Stages:           12,
		SRAMKBPerStage:   1024,
		SALUsPerStage:    4,
		VLIWsPerStage:    24,
		GatewaysPerStage: 16,
	}
}

// Ledger attributes allocated resources to named features so Exp#5 can
// print a per-feature breakdown. A feature's Stage figure is the number of
// distinct stages it touches; the program total is the size of the union.
type Ledger struct {
	capacity Capacity
	perStage []Resources
	features map[string]*Resources
	stages   map[string]map[int]bool
	order    []string
}

// NewLedger creates a ledger for the given capacity.
func NewLedger(capacity Capacity) *Ledger {
	return &Ledger{
		capacity: capacity,
		perStage: make([]Resources, capacity.Stages),
		features: make(map[string]*Resources),
		stages:   make(map[string]map[int]bool),
	}
}

// charge books resources in a stage under a feature, enforcing capacity.
func (l *Ledger) charge(feature string, stage int, r Resources) error {
	if stage < 0 || stage >= l.capacity.Stages {
		return fmt.Errorf("switchsim: stage %d out of range [0,%d)", stage, l.capacity.Stages)
	}
	s := &l.perStage[stage]
	if s.SRAMKB+r.SRAMKB > l.capacity.SRAMKBPerStage {
		return fmt.Errorf("switchsim: stage %d SRAM exhausted (%d+%d > %d KB)", stage, s.SRAMKB, r.SRAMKB, l.capacity.SRAMKBPerStage)
	}
	if s.SALUs+r.SALUs > l.capacity.SALUsPerStage {
		return fmt.Errorf("switchsim: stage %d SALUs exhausted (%d+%d > %d)", stage, s.SALUs, r.SALUs, l.capacity.SALUsPerStage)
	}
	if s.VLIWs+r.VLIWs > l.capacity.VLIWsPerStage {
		return fmt.Errorf("switchsim: stage %d VLIW slots exhausted (%d+%d > %d)", stage, s.VLIWs, r.VLIWs, l.capacity.VLIWsPerStage)
	}
	if s.Gateways+r.Gateways > l.capacity.GatewaysPerStage {
		return fmt.Errorf("switchsim: stage %d gateways exhausted (%d+%d > %d)", stage, s.Gateways, r.Gateways, l.capacity.GatewaysPerStage)
	}
	s.Add(r)

	f, ok := l.features[feature]
	if !ok {
		f = &Resources{}
		l.features[feature] = f
		l.stages[feature] = make(map[int]bool)
		l.order = append(l.order, feature)
	}
	f.Add(r)
	l.stages[feature][stage] = true
	return nil
}

// Feature returns the booked resources of one feature, with its Stage count
// filled in from the stage set.
func (l *Ledger) Feature(name string) Resources {
	f, ok := l.features[name]
	if !ok {
		return Resources{}
	}
	r := *f
	r.Stages = len(l.stages[name])
	return r
}

// Features lists feature names in allocation order.
func (l *Ledger) Features() []string {
	return append([]string(nil), l.order...)
}

// Total returns the whole program's usage. Stages is the union of all
// feature stage sets; the other columns sum raw bookings.
func (l *Ledger) Total() Resources {
	var t Resources
	union := map[int]bool{}
	for _, name := range l.order {
		t.Add(*l.features[name])
		for s := range l.stages[name] {
			union[s] = true
		}
	}
	t.Stages = len(union)
	return t
}

// Utilization returns per-column usage fractions against capacity.
func (l *Ledger) Utilization() map[string]float64 {
	t := l.Total()
	c := l.capacity
	return map[string]float64{
		"Stage":   float64(t.Stages) / float64(c.Stages),
		"SRAM":    float64(t.SRAMKB) / float64(c.Stages*c.SRAMKBPerStage),
		"SALU":    float64(t.SALUs) / float64(c.Stages*c.SALUsPerStage),
		"VLIW":    float64(t.VLIWs) / float64(c.Stages*c.VLIWsPerStage),
		"Gateway": float64(t.Gateways) / float64(c.Stages*c.GatewaysPerStage),
	}
}

// Table renders the Exp#5-style per-feature breakdown.
func (l *Ledger) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %9s %5s %5s %8s\n", "Feature", "Stage", "SRAM(KB)", "SALU", "VLIW", "Gateway")
	names := append([]string(nil), l.order...)
	sort.Strings(names)
	for _, name := range names {
		r := l.Feature(name)
		fmt.Fprintf(&b, "%-22s %6d %9d %5d %5d %8d\n", name, r.Stages, r.SRAMKB, r.SALUs, r.VLIWs, r.Gateways)
	}
	t := l.Total()
	fmt.Fprintf(&b, "%-22s %6d %9d %5d %5d %8d\n", "Total", t.Stages, t.SRAMKB, t.SALUs, t.VLIWs, t.Gateways)
	return b.String()
}
