// Package telemetry binds the sketch library to OmniWindow's StateApp
// interface, implementing the four sketch-based tasks of Exp#2:
//
//   - Q8 super-spreader detection (SpreadSketch, Vector Bloom Filter)
//   - Q9 heavy-hitter detection (MV-Sketch, HashPipe)
//   - Q10 per-flow statistics (Count-Min, SuMax)
//   - Q11 flow cardinality (Linear Counting, HyperLogLog)
//
// Each app is one memory region's state; OmniWindow instantiates two per
// switch under the shared-region layout.
package telemetry

import (
	"omniwindow/internal/afr"
	"omniwindow/internal/hashing"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// seedHash hashes a key for slot indexing.
func seedHash(k packet.FlowKey, seed uint64) uint64 { return hashing.Key64(k, seed) }

// FrequencyApp adapts a frequency sketch (Count-Min, SuMax, MV, HashPipe)
// to afr.StateApp. KeyOf and VolumeOf default to the 5-tuple and packet
// count.
type FrequencyApp struct {
	sk sketch.Sketch
	// KeyOf maps a packet to the aggregation key; nil uses the 5-tuple.
	KeyOf func(*packet.Packet) packet.FlowKey
	// VolumeOf maps a packet to its contribution; nil counts packets.
	VolumeOf func(*packet.Packet) uint64
	slots    int
}

// NewFrequencyApp wraps sk; slots is the per-register entry count the
// in-switch reset must enumerate (the sketch row width).
func NewFrequencyApp(sk sketch.Sketch, slots int) *FrequencyApp {
	if slots <= 0 {
		panic("telemetry: slots must be positive")
	}
	return &FrequencyApp{sk: sk, slots: slots}
}

// Sketch exposes the wrapped sketch (for invertible decoding by
// baselines).
func (a *FrequencyApp) Sketch() sketch.Sketch { return a.sk }

// Update implements afr.StateApp.
func (a *FrequencyApp) Update(p *packet.Packet) {
	k := p.Key
	if a.KeyOf != nil {
		k = a.KeyOf(p)
	}
	v := uint64(1)
	if a.VolumeOf != nil {
		v = a.VolumeOf(p)
	}
	a.sk.Update(k, v)
}

// Query implements afr.StateApp.
func (a *FrequencyApp) Query(k packet.FlowKey) afr.Attr {
	return afr.Attr{Value: a.sk.Query(k)}
}

// ResetSlot implements afr.StateApp. Each clear packet resets one slot of
// every register; the wrapped sketch exposes no per-slot API, so the state
// clears atomically when the enumeration completes — equivalent final
// state, same modeled pass count.
func (a *FrequencyApp) ResetSlot(i int) {
	if i == a.slots-1 {
		a.sk.Reset()
	}
}

// Slots implements afr.StateApp.
func (a *FrequencyApp) Slots() int { return a.slots }

// SpreadApp adapts a Spread sketch (SpreadSketch, VBF) to afr.StateApp for
// super-spreader detection: keys are source hosts, elements are
// destination hosts.
type SpreadApp struct {
	sp    sketch.Spread
	slots int
	// summary extracts the mergeable distinct summary, set per backend.
	summary func(src packet.FlowKey) [4]uint64
}

// NewSpreadSketchApp wraps a SpreadSketch.
func NewSpreadSketchApp(s *sketch.SpreadSketch, slots int) *SpreadApp {
	return &SpreadApp{sp: s, slots: slots, summary: s.Summary}
}

// NewVBFApp wraps a Vector Bloom Filter. Pair it with
// sketch.VBFDistinctCounter on the controller.
func NewVBFApp(v *sketch.VBF, slots int) *SpreadApp {
	return &SpreadApp{sp: v, slots: slots, summary: func(src packet.FlowKey) [4]uint64 {
		return [4]uint64{v.SummaryBitmap(src)}
	}}
}

// Spread exposes the wrapped sketch.
func (a *SpreadApp) Spread() sketch.Spread { return a.sp }

// Update implements afr.StateApp.
func (a *SpreadApp) Update(p *packet.Packet) {
	a.sp.UpdateSpread(p.Key.SrcHostKey(), p.Key.DstHostKey())
}

// Query implements afr.StateApp.
func (a *SpreadApp) Query(k packet.FlowKey) afr.Attr {
	return afr.Attr{
		Value:       a.sp.QuerySpread(k),
		Distinct:    a.summary(k),
		HasDistinct: true,
	}
}

// ResetSlot implements afr.StateApp.
func (a *SpreadApp) ResetSlot(i int) {
	if i == a.slots-1 {
		a.sp.Reset()
	}
}

// Slots implements afr.StateApp.
func (a *SpreadApp) Slots() int { return a.slots }

// spanSlot records the first and last packet timestamps of one key.
type spanSlot struct {
	key         packet.FlowKey
	first, last int64
	used        bool
}

// SpanApp measures per-key packet time spans: the switch records the
// timestamps of the first and the last packet of each key within the
// window — the Exp#3 case study's in-network measurement of DML iteration
// transfer times. The state is a hash-indexed slot array (two registers:
// min-time and max-time) as a switch would implement it.
type SpanApp struct {
	slots []spanSlot
	seed  uint64
	// KeyOf maps packets to measured keys; nil uses the 5-tuple.
	KeyOf func(*packet.Packet) packet.FlowKey
}

// NewSpanApp builds a span app with the given slot count.
func NewSpanApp(slots int, seed uint64) *SpanApp {
	if slots <= 0 {
		panic("telemetry: slots must be positive")
	}
	return &SpanApp{slots: make([]spanSlot, slots), seed: seed}
}

func (a *SpanApp) slot(k packet.FlowKey) *spanSlot {
	h := int(uint64(uint32(seedHash(k, a.seed))) * uint64(len(a.slots)) >> 32)
	return &a.slots[h]
}

// Update implements afr.StateApp.
func (a *SpanApp) Update(p *packet.Packet) {
	k := p.Key
	if a.KeyOf != nil {
		k = a.KeyOf(p)
	}
	s := a.slot(k)
	if !s.used || s.key != k {
		// First sighting (or collision eviction: last writer wins, as a
		// single-location SALU would behave).
		*s = spanSlot{key: k, first: p.Time, last: p.Time, used: true}
		return
	}
	if p.Time < s.first {
		s.first = p.Time
	}
	if p.Time > s.last {
		s.last = p.Time
	}
}

// Query implements afr.StateApp: the measured span in nanoseconds.
func (a *SpanApp) Query(k packet.FlowKey) afr.Attr {
	s := a.slot(k)
	if !s.used || s.key != k {
		return afr.Attr{}
	}
	return afr.Attr{Value: uint64(s.last - s.first)}
}

// ResetSlot implements afr.StateApp.
func (a *SpanApp) ResetSlot(i int) { a.slots[i] = spanSlot{} }

// Slots implements afr.StateApp.
func (a *SpanApp) Slots() int { return len(a.slots) }

// FlowRadarApp deploys FlowRadar under OmniWindow. FlowRadar cannot
// answer per-flow queries in the data plane (flows must be decoded from
// the whole structure), so the app implements afr.StateMigrator: the C&R
// machinery migrates its raw registers to the controller, which calls
// sketch.FlowRadarFromRaw + Decode (§8).
type FlowRadarApp struct {
	fr *sketch.FlowRadar
}

// NewFlowRadarApp wraps a FlowRadar instance.
func NewFlowRadarApp(fr *sketch.FlowRadar) *FlowRadarApp { return &FlowRadarApp{fr: fr} }

// FlowRadar exposes the wrapped structure.
func (a *FlowRadarApp) FlowRadar() *sketch.FlowRadar { return a.fr }

// Update implements afr.StateApp.
func (a *FlowRadarApp) Update(p *packet.Packet) { a.fr.Update(p.Key, 1) }

// Query implements afr.StateApp. The data plane cannot answer per-flow
// queries for FlowRadar; the zero attribute signals "decode offline".
func (a *FlowRadarApp) Query(packet.FlowKey) afr.Attr { return afr.Attr{} }

// ResetSlot implements afr.StateApp.
func (a *FlowRadarApp) ResetSlot(i int) {
	if i == a.fr.Cells()-1 {
		a.fr.Reset()
	}
}

// Slots implements afr.StateApp.
func (a *FlowRadarApp) Slots() int { return a.fr.Cells() }

// RawSlot implements afr.StateMigrator: the four words of cell i.
func (a *FlowRadarApp) RawSlot(i int) []uint64 {
	c := a.fr.RawCell(i)
	return c[:]
}
