package telemetry

import (
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

// Cardinality is a window-mergeable cardinality estimator (Q11): the
// per-sub-window instances merge losslessly into window estimates, the
// state-migration path of §8 (these estimators have no per-flow AFRs).
type Cardinality interface {
	// Insert adds one element.
	Insert(k packet.FlowKey)
	// Estimate returns the estimated distinct-element count.
	Estimate() float64
	// Merge folds another instance of the same concrete type and shape.
	Merge(o Cardinality)
	// Reset clears the estimator.
	Reset()
	// Clone returns an empty estimator of the same shape (for building
	// per-sub-window instances and merge accumulators).
	Clone() Cardinality
}

// LCCard is Linear Counting as a Cardinality.
type LCCard struct {
	lc    *sketch.LinearCounting
	bits  int
	seed  uint64
	bytes int
}

// NewLCCard builds a linear-counting estimator within memoryBytes.
func NewLCCard(memoryBytes int, seed uint64) *LCCard {
	return &LCCard{
		lc:    sketch.NewLinearCountingBytes(memoryBytes, seed),
		bits:  memoryBytes * 8,
		seed:  seed,
		bytes: memoryBytes,
	}
}

// Insert implements Cardinality.
func (c *LCCard) Insert(k packet.FlowKey) { c.lc.Insert(k) }

// Estimate implements Cardinality.
func (c *LCCard) Estimate() float64 { return c.lc.Estimate() }

// Merge implements Cardinality.
func (c *LCCard) Merge(o Cardinality) { c.lc.Merge(o.(*LCCard).lc) }

// Reset implements Cardinality.
func (c *LCCard) Reset() { c.lc.Reset() }

// Clone implements Cardinality.
func (c *LCCard) Clone() Cardinality { return NewLCCard(c.bytes, c.seed) }

// HLLCard is HyperLogLog as a Cardinality.
type HLLCard struct {
	h     *sketch.HyperLogLog
	bytes int
	seed  uint64
}

// NewHLLCard builds a HyperLogLog estimator within memoryBytes (one byte
// per register, as configured in Exp#2).
func NewHLLCard(memoryBytes int, seed uint64) *HLLCard {
	return &HLLCard{h: sketch.NewHyperLogLogBytes(memoryBytes, seed), bytes: memoryBytes, seed: seed}
}

// Insert implements Cardinality.
func (c *HLLCard) Insert(k packet.FlowKey) { c.h.Insert(k) }

// Estimate implements Cardinality.
func (c *HLLCard) Estimate() float64 { return c.h.Estimate() }

// Merge implements Cardinality.
func (c *HLLCard) Merge(o Cardinality) { c.h.Merge(o.(*HLLCard).h) }

// Reset implements Cardinality.
func (c *HLLCard) Reset() { c.h.Reset() }

// Clone implements Cardinality.
func (c *HLLCard) Clone() Cardinality { return NewHLLCard(c.bytes, c.seed) }

// ExactCard counts exactly — the ideal-window reference.
type ExactCard struct {
	set map[packet.FlowKey]bool
}

// NewExactCard builds an exact counter.
func NewExactCard() *ExactCard { return &ExactCard{set: make(map[packet.FlowKey]bool)} }

// Insert implements Cardinality.
func (c *ExactCard) Insert(k packet.FlowKey) { c.set[k] = true }

// Estimate implements Cardinality.
func (c *ExactCard) Estimate() float64 { return float64(len(c.set)) }

// Merge implements Cardinality.
func (c *ExactCard) Merge(o Cardinality) {
	for k := range o.(*ExactCard).set {
		c.set[k] = true
	}
}

// Reset implements Cardinality.
func (c *ExactCard) Reset() { c.set = make(map[packet.FlowKey]bool) }

// Clone implements Cardinality.
func (c *ExactCard) Clone() Cardinality { return NewExactCard() }
