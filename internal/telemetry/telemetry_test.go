package telemetry

import (
	"math"
	"testing"

	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
)

func pkt(src, dst uint32, size uint32) *packet.Packet {
	return &packet.Packet{
		Key:  packet.FlowKey{SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 80, Proto: packet.ProtoTCP},
		Size: size,
	}
}

func TestFrequencyAppCountsPackets(t *testing.T) {
	app := NewFrequencyApp(sketch.NewCountMin(4, 4096, 1), 4096)
	for i := 0; i < 10; i++ {
		app.Update(pkt(1, 2, 100))
	}
	if got := app.Query(pkt(1, 2, 0).Key).Value; got != 10 {
		t.Fatalf("count = %d", got)
	}
	if app.Query(pkt(9, 9, 0).Key).HasDistinct {
		t.Fatal("frequency app must not carry summaries")
	}
}

func TestFrequencyAppCustomVolumeAndKey(t *testing.T) {
	app := NewFrequencyApp(sketch.NewCountMin(4, 4096, 2), 4096)
	app.VolumeOf = func(p *packet.Packet) uint64 { return uint64(p.Size) }
	app.KeyOf = func(p *packet.Packet) packet.FlowKey { return p.Key.DstHostKey() }
	app.Update(pkt(1, 7, 100))
	app.Update(pkt(2, 7, 250))
	host := packet.FlowKey{DstIP: 7, Proto: packet.ProtoTCP}
	if got := app.Query(host).Value; got != 350 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestFrequencyAppResetViaSlots(t *testing.T) {
	app := NewFrequencyApp(sketch.NewCountMin(2, 64, 3), 64)
	app.Update(pkt(1, 2, 100))
	for i := 0; i < app.Slots()-1; i++ {
		app.ResetSlot(i)
	}
	if app.Query(pkt(1, 2, 0).Key).Value == 0 {
		t.Fatal("state cleared before enumeration finished")
	}
	app.ResetSlot(app.Slots() - 1)
	if got := app.Query(pkt(1, 2, 0).Key).Value; got != 0 {
		t.Fatalf("state survived reset: %d", got)
	}
}

func TestFrequencyAppValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrequencyApp(sketch.NewCountMin(2, 64, 1), 0)
}

func TestSpreadSketchAppQueriesAndSummaries(t *testing.T) {
	s := sketch.NewSpreadSketch(4, 4096, 4, 1)
	app := NewSpreadSketchApp(s, 4096)
	for d := 0; d < 200; d++ {
		app.Update(pkt(42, uint32(1000+d), 100))
	}
	src := packet.FlowKey{SrcIP: 42, Proto: packet.ProtoTCP}
	a := app.Query(src)
	if a.Value < 80 {
		t.Fatalf("spread too low: %d", a.Value)
	}
	if !a.HasDistinct || a.Distinct == ([4]uint64{}) {
		t.Fatal("missing summary")
	}
	// The summary itself must estimate in the right ballpark.
	est := sketch.MRBFromComponents(a.Distinct[:]).Estimate()
	if est < 80 || est > 500 {
		t.Fatalf("summary estimate out of range: %f", est)
	}
}

func TestSpreadSummaryMergeAcrossSubWindows(t *testing.T) {
	// Two sub-windows observing the SAME destinations: OR-merged
	// summaries must not double the count (the §4.1 motivation for AFRs
	// carrying mergeable summaries).
	s1 := sketch.NewSpreadSketch(4, 4096, 4, 2)
	s2 := sketch.NewSpreadSketch(4, 4096, 4, 2)
	a1, a2 := NewSpreadSketchApp(s1, 4096), NewSpreadSketchApp(s2, 4096)
	for d := 0; d < 150; d++ {
		a1.Update(pkt(42, uint32(1000+d), 100))
		a2.Update(pkt(42, uint32(1000+d), 100))
	}
	src := packet.FlowKey{SrcIP: 42, Proto: packet.ProtoTCP}
	q1, q2 := a1.Query(src), a2.Query(src)
	var merged [4]uint64
	for i := range merged {
		merged[i] = q1.Distinct[i] | q2.Distinct[i]
	}
	mergedEst := sketch.MRBFromComponents(merged[:]).Estimate()
	singleEst := sketch.MRBFromComponents(q1.Distinct[:]).Estimate()
	if mergedEst > singleEst*1.3 {
		t.Fatalf("identical sub-windows double-counted: %f vs %f", mergedEst, singleEst)
	}
	// Summing scalars (the naive strategy) WOULD double:
	if q1.Value+q2.Value < uint64(float64(q1.Value)*1.8) {
		t.Fatal("test premise broken")
	}
}

func TestVBFAppSummaryCounter(t *testing.T) {
	v := sketch.NewVBF(5, 4096, 1)
	app := NewVBFApp(v, 4096)
	for d := 0; d < 30; d++ {
		app.Update(pkt(42, uint32(2000+d), 100))
	}
	src := packet.FlowKey{SrcIP: 42, Proto: packet.ProtoTCP}
	a := app.Query(src)
	if !a.HasDistinct {
		t.Fatal("VBF app must carry summary")
	}
	got := sketch.VBFDistinctCounter(a.Distinct)
	if got < 15 || got > 60 {
		t.Fatalf("VBF summary count = %d want ~30", got)
	}
}

func TestSpreadAppReset(t *testing.T) {
	s := sketch.NewSpreadSketch(2, 256, 4, 3)
	app := NewSpreadSketchApp(s, 256)
	app.Update(pkt(1, 2, 100))
	for i := 0; i < app.Slots(); i++ {
		app.ResetSlot(i)
	}
	src := packet.FlowKey{SrcIP: 1, Proto: packet.ProtoTCP}
	if app.Query(src).Value != 0 {
		t.Fatal("reset kept spread state")
	}
}

func TestCardinalityImplementations(t *testing.T) {
	for name, c := range map[string]Cardinality{
		"lc":    NewLCCard(1<<14, 1),
		"hll":   NewHLLCard(1<<12, 1),
		"exact": NewExactCard(),
	} {
		const n = 5000
		for i := 0; i < n; i++ {
			c.Insert(packet.FlowKey{SrcIP: uint32(i), Proto: 6})
		}
		est := c.Estimate()
		if math.Abs(est-n)/n > 0.1 {
			t.Fatalf("%s estimate %f too far from %d", name, est, n)
		}
		c.Reset()
		if c.Estimate() != 0 {
			t.Fatalf("%s reset failed", name)
		}
	}
}

func TestCardinalityMergeEqualsUnion(t *testing.T) {
	for name, mk := range map[string]func() Cardinality{
		"lc":    func() Cardinality { return NewLCCard(1<<14, 7) },
		"hll":   func() Cardinality { return NewHLLCard(1<<12, 7) },
		"exact": func() Cardinality { return NewExactCard() },
	} {
		a, b, u := mk(), mk(), mk()
		for i := 0; i < 3000; i++ {
			k := packet.FlowKey{SrcIP: uint32(i), Proto: 6}
			a.Insert(k)
			u.Insert(k)
		}
		for i := 1500; i < 4500; i++ {
			k := packet.FlowKey{SrcIP: uint32(i), Proto: 6}
			b.Insert(k)
			u.Insert(k)
		}
		a.Merge(b)
		if a.Estimate() != u.Estimate() {
			t.Fatalf("%s merge lossy: %f vs %f", name, a.Estimate(), u.Estimate())
		}
	}
}

func TestCardinalityCloneIsEmptyAndCompatible(t *testing.T) {
	for name, c := range map[string]Cardinality{
		"lc":    NewLCCard(1<<14, 9),
		"hll":   NewHLLCard(1<<12, 9),
		"exact": NewExactCard(),
	} {
		c.Insert(packet.FlowKey{SrcIP: 1})
		cl := c.Clone()
		if cl.Estimate() != 0 {
			t.Fatalf("%s clone not empty", name)
		}
		cl.Merge(c) // must not panic: same shape
		if cl.Estimate() == 0 {
			t.Fatalf("%s clone merge lost data", name)
		}
	}
}
