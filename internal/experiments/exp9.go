package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"omniwindow/internal/netsim"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/window"
)

// Exp9Config parameterizes the consistency experiment.
type Exp9Config struct {
	// Seed drives traffic, loss and jitter.
	Seed int64
	// Flows and PacketsPerFlow size the traffic.
	Flows          int
	PacketsPerFlow int
	// DurationNs is the traffic span.
	DurationNs int64
	// SubWindowNs is the measurement sub-window.
	SubWindowNs int64
	// LossRate is the probability a packet is lost on the inter-switch
	// link.
	LossRate float64
	// LinkDelayNs is the fixed propagation delay between the switches.
	LinkDelayNs int64
	// DeviationsNs are the PTP clock deviations to sweep (the paper
	// tunes 2 us .. 512 us).
	DeviationsNs []int64
	// Cells and HashCount size the LossRadar meters.
	Cells     int
	HashCount int
	// Hops is the path length; loss detection compares the first and
	// last switch. The paper notes local-clock error amplifies with the
	// hop count (accumulated transmission delay); default 2.
	Hops int
}

// DefaultExp9Config returns a laptop-scale configuration.
func DefaultExp9Config(seed int64) Exp9Config {
	devs := []int64{}
	for d := int64(2_000); d <= 512_000; d *= 2 {
		devs = append(devs, d)
	}
	return Exp9Config{
		Seed:           seed,
		Flows:          400,
		PacketsPerFlow: 250,
		DurationNs:     1000 * Millisecond,
		SubWindowNs:    50 * Millisecond,
		LossRate:       0.005,
		LinkDelayNs:    5_000,
		DeviationsNs:   devs,
		Cells:          8192,
		HashCount:      3,
		Hops:           2,
	}
}

// Exp9Row is one (mechanism, deviation) precision point of Figure 14.
type Exp9Row struct {
	Mechanism   string // "OmniWindow" or "LocalClock"
	DeviationNs int64
	Precision   float64
	Recall      float64
	// DecodeFailures counts sub-windows whose LossRadar difference could
	// not be fully peeled.
	DecodeFailures int
}

// Exp9Result is the Figure 14 reproduction.
type Exp9Result struct {
	Rows []Exp9Row
}

// Table renders the sweep.
func (r Exp9Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Mechanism,
			fmt.Sprintf("%dus", row.DeviationNs/1000),
			pct(row.Precision), pct(row.Recall),
			fmt.Sprintf("%d", row.DecodeFailures)})
	}
	return table([]string{"Mechanism", "Deviation", "Precision", "Recall", "DecodeFail"}, rows)
}

// Get returns the row for (mechanism, deviation).
func (r Exp9Result) Get(mech string, dev int64) (Exp9Row, bool) {
	for _, row := range r.Rows {
		if row.Mechanism == mech && row.DeviationNs == dev {
			return row, true
		}
	}
	return Exp9Row{}, false
}

// exp9Traffic builds an evenly spread multi-flow stream with per-flow
// sequence numbers (so every packet has a unique LossRadar identity).
func exp9Traffic(cfg Exp9Config) []packet.Packet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Flows * cfg.PacketsPerFlow
	pkts := make([]packet.Packet, 0, n)
	gap := cfg.DurationNs / int64(cfg.PacketsPerFlow)
	for f := 0; f < cfg.Flows; f++ {
		key := packet.FlowKey{
			SrcIP:   uint32(0x0A010000 + f),
			DstIP:   uint32(0x0A020000 + f%64),
			SrcPort: uint16(1024 + f),
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		}
		off := rng.Int63n(gap)
		for j := 0; j < cfg.PacketsPerFlow; j++ {
			pkts = append(pkts, packet.Packet{
				Key: key, Size: 200, Seq: uint32(j),
				Time: off + int64(j)*gap + rng.Int63n(gap/2+1),
			})
		}
	}
	// Sort by time (the per-flow streams interleave).
	sortByTime(pkts)
	return pkts
}

func sortByTime(pkts []packet.Packet) {
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].Time < pkts[j].Time })
}

// RunExp9 reproduces Exp#9 (Figure 14): two adjacent switches run
// LossRadar; the downstream meter is subtracted from the upstream one per
// sub-window and decoded. With OmniWindow's consistency model the
// first-hop stamp ensures both switches meter every packet in the same
// sub-window, so only genuinely lost packets appear in the difference
// (precision 100%). With PTP-synchronized local clocks, packets near
// sub-window boundaries are metered into different sub-windows by the two
// switches and decode as spurious losses, degrading precision as the
// deviation grows.
func RunExp9(cfg Exp9Config) Exp9Result {
	pkts := exp9Traffic(cfg)
	var res Exp9Result
	for _, dev := range cfg.DeviationsNs {
		for _, stamped := range []bool{true, false} {
			row := runExp9Mode(cfg, pkts, dev, stamped)
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func runExp9Mode(cfg Exp9Config, pkts []packet.Packet, dev int64, stamped bool) Exp9Row {
	hops := cfg.Hops
	if hops < 2 {
		hops = 2
	}
	type meterSet map[uint64]*sketch.LossRadar
	up, down := meterSet{}, meterSet{}
	meter := func(ms meterSet, sw uint64) *sketch.LossRadar {
		m, ok := ms[sw]
		if !ok {
			m = sketch.NewLossRadar(cfg.Cells, cfg.HashCount, uint64(cfg.Seed))
			ms[sw] = m
		}
		return m
	}

	lostTruth := make(map[sketch.PacketID]uint64) // id -> upstream sub-window
	var upSW uint64

	// Per-hop clock offsets spread the total deviation across the path;
	// the worst disagreement (first vs last) is `dev`.
	offset := func(h int) int64 {
		if hops == 1 {
			return 0
		}
		return -dev/2 + dev*int64(h)/int64(hops-1)
	}
	var nhops []netsim.Hop
	var delays []int64
	for h := 0; h < hops; h++ {
		h := h
		mgr := window.NewManager(window.TimeoutSignal{Interval: cfg.SubWindowNs}, window.NewRegions(2, 4))
		nhops = append(nhops, netsim.Hop{Offset: offset(h), Process: func(p *packet.Packet, lt int64) {
			var sw uint64
			if stamped {
				sw = mgr.OnPacket(p, lt).Monitor
			} else {
				sw = uint64(lt / cfg.SubWindowNs)
			}
			switch h {
			case 0:
				upSW = sw
				meter(up, sw).Insert(sketch.PacketID{Key: p.Key, Seq: p.Seq})
			case hops - 1:
				meter(down, sw).Insert(sketch.PacketID{Key: p.Key, Seq: p.Seq})
			}
		}})
		if h < hops-1 {
			delays = append(delays, cfg.LinkDelayNs)
		}
	}
	path := netsim.Path{Hops: nhops, LinkDelay: delays}
	lossFn := netsim.BernoulliLoss(0, cfg.LossRate, cfg.Seed+dev)
	path.Loss = func(p *packet.Packet, hop int) bool {
		if lossFn(p, hop) {
			lostTruth[sketch.PacketID{Key: p.Key, Seq: p.Seq}] = upSW
			return true
		}
		return false
	}
	path.Run(pkts)

	// Per sub-window: subtract and decode.
	failures := 0
	reportedTrue, reportedTotal, truthTotal := 0, 0, len(lostTruth)
	for sw, u := range up {
		if d, ok := down[sw]; ok {
			u.Subtract(d)
		}
		lost, _, ok := u.Decode()
		if !ok {
			failures++
		}
		for _, id := range lost {
			reportedTotal++
			if tsw, isLost := lostTruth[id]; isLost && tsw == sw {
				reportedTrue++
			}
		}
	}
	precision := 1.0
	if reportedTotal > 0 {
		precision = float64(reportedTrue) / float64(reportedTotal)
	}
	recall := 1.0
	if truthTotal > 0 {
		recall = float64(reportedTrue) / float64(truthTotal)
	}
	mech := "LocalClock"
	if stamped {
		mech = "OmniWindow"
	}
	return Exp9Row{Mechanism: mech, DeviationNs: dev, Precision: precision, Recall: recall, DecodeFailures: failures}
}
