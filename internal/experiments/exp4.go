package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/controller"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/window"
)

// Exp4Row is one sub-window's controller time breakdown (Figure 10): the
// five controller operations O1 (collect) .. O5 (evict).
type Exp4Row struct {
	Mechanism string // OTW or OSW
	SubWindow string // sw1..sw5 or "avg"
	Times     controller.OpTimes
}

// Exp4Result is the Figure 10 reproduction. The numbers are real measured
// wall-clock times of this controller implementation.
type Exp4Result struct {
	Rows []Exp4Row
}

// Table renders the breakdown in microseconds.
func (r Exp4Result) Table() string {
	us := func(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1e3) }
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mechanism, row.SubWindow,
			us(row.Times.Collect), us(row.Times.Insert), us(row.Times.Merge),
			us(row.Times.Process), us(row.Times.Evict), us(row.Times.Total()),
		})
	}
	return table([]string{"Mech", "SubWin", "O1-collect(us)", "O2-insert(us)", "O3-merge(us)", "O4-process(us)", "O5-evict(us)", "total(us)"}, rows)
}

// RunExp4 reproduces Exp#4 (Figure 10): the controller's per-sub-window
// O1-O5 time breakdown for one complete Q1 window under tumbling and
// sliding plans. The measured sub-windows are a steady-state window
// (the second one, sw indexes WindowSub..2*WindowSub-1).
func RunExp4(sc Scale) Exp4Result {
	th := query.DefaultThresholds()
	pkts := Exp1Trace(sc, th)
	q := query.NewConnQuery(th)
	track := func(p *packet.Packet) (packet.FlowKey, bool) {
		if !q.Observes(p) {
			return packet.FlowKey{}, false
		}
		return q.Key(p), true
	}

	run := func(name string, plan window.Plan) []Exp4Row {
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: time.Duration(sc.SubWindowNs),
			Plan:      plan,
			Kind:      q.Kind,
			Threshold: q.Threshold,
			AppFactory: func(region int) afr.StateApp {
				return query.NewState(q, sc.SubSlots(), sc.SubSlots()*16, uint64(sc.Seed)+uint64(region))
			},
			KeyOf:   track,
			Slots:   sc.SubSlots(),
			Tracker: trackerFor(sc),
		})
		if err != nil {
			panic(fmt.Sprintf("exp4: %v", err))
		}
		d.RunFor(pkts, sc.Duration)

		var rows []Exp4Row
		var sum controller.OpTimes
		for i := 0; i < sc.WindowSub; i++ {
			sw := uint64(sc.WindowSub + i)
			ts := d.Controller().Times(sw)
			rows = append(rows, Exp4Row{Mechanism: name, SubWindow: fmt.Sprintf("sw%d", i+1), Times: ts})
			sum.Collect += ts.Collect
			sum.Insert += ts.Insert
			sum.Merge += ts.Merge
			sum.Process += ts.Process
			sum.Evict += ts.Evict
		}
		n := time.Duration(sc.WindowSub)
		rows = append(rows, Exp4Row{Mechanism: name, SubWindow: "avg", Times: controller.OpTimes{
			Collect: sum.Collect / n, Insert: sum.Insert / n, Merge: sum.Merge / n,
			Process: sum.Process / n, Evict: sum.Evict / n,
		}})
		return rows
	}

	var res Exp4Result
	res.Rows = append(res.Rows, run("OTW", window.Tumbling(sc.WindowSub))...)
	res.Rows = append(res.Rows, run("OSW", window.SlidingPlan(sc.WindowSub, sc.SlideSub))...)
	return res
}
