package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/metrics"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

// Exp10Row is one (mechanism, window size) accuracy point of Figure 15.
type Exp10Row struct {
	Mechanism string
	WindowNs  int64
	Precision float64
	Recall    float64
}

// Exp10Result is the Figure 15 reproduction: heavy-hitter accuracy with
// MV-Sketch as the user-desired window size grows from 0.5 s to 2 s.
// TW1/TW2 and Sliding Sketch allocate memory for a pre-defined 0.5 s
// window, so their accuracy degrades as the window grows; OmniWindow
// keeps measuring 100 ms sub-windows with fixed per-sub-window resources,
// so its accuracy is stable at any merged window size.
type Exp10Result struct {
	Rows []Exp10Row
}

// Table renders the sweep.
func (r Exp10Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Mechanism,
			fmt.Sprintf("%.1fs", float64(row.WindowNs)/1e9),
			pct(row.Precision), pct(row.Recall)})
	}
	return table([]string{"Mechanism", "Window", "Precision", "Recall"}, rows)
}

// Get returns the row for (mechanism, windowNs).
func (r Exp10Result) Get(mech string, windowNs int64) (Exp10Row, bool) {
	for _, row := range r.Rows {
		if row.Mechanism == mech && row.WindowNs == windowNs {
			return row, true
		}
	}
	return Exp10Row{}, false
}

// Exp10Trace builds a longer workload with heavy bursts sprinkled
// throughout, sized to the sweep's largest window.
func Exp10Trace(sc Scale, duration int64) []packet.Packet {
	cfg := trace.DefaultConfig(sc.Seed)
	cfg.Duration = duration
	cfg.Flows = int(int64(sc.Flows) * duration / sc.Duration)
	var anomalies []trace.Anomaly
	n := int(duration / (500 * Millisecond))
	for i := 0; i < n; i++ {
		at := int64(i)*500*Millisecond + 250*Millisecond
		if i%3 == 1 {
			at = int64(i+1) * 500 * Millisecond // boundary placement
		}
		anomalies = append(anomalies, trace.HeavyBurst{
			Key: trace.BurstKey(i), Packets: heavyThreshold * 3 / 2, At: at, Spread: 2 * sc.SubWindowNs,
		})
	}
	cfg.Anomalies = anomalies
	return trace.New(cfg).Generate()
}

// RunExp10 reproduces Exp#10 (Figure 15) for window sizes 0.5-2 s.
func RunExp10(sc Scale) Exp10Result {
	windowSizes := []int64{500 * Millisecond, 1000 * Millisecond, 1500 * Millisecond, 2000 * Millisecond}
	maxWin := windowSizes[len(windowSizes)-1]
	duration := 4 * maxWin
	pkts := Exp10Trace(sc, duration)

	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}

	// The conventional implementations size their sketch for the
	// PRE-DEFINED 0.5 s window and keep that allocation as the
	// user-desired window grows. The budget is deliberately tight (the
	// paper's 8 MB serves 213-440 K flows per window, a bucket load of
	// ~6-13): scaled to this trace's flow density.
	fixedMem := sc.SketchMemory / 8
	owMem := fixedMem / 4
	mkMV := func(mem int, seed uint64) (sketch.Sketch, int) {
		s := sketch.NewMVBytes(4, mem, seed)
		return s, maxi(mem/(4*sketch.MVBucketBytes), 1)
	}

	var res Exp10Result
	for _, winNs := range windowSizes {
		subPerWin := int(winNs / sc.SubWindowNs)
		itw := detectOutputs(baseline.RunIdeal(pkts, duration, winNs, winNs, countEval), heavyThreshold)
		isw := detectOutputs(baseline.RunIdeal(pkts, duration, winNs, sc.SlideNs(), countEval), heavyThreshold)

		full := func(seed uint64) afr.StateApp {
			s, slots := mkMV(fixedMem, seed)
			return telemetry.NewFrequencyApp(s, slots)
		}
		tw1 := detectOutputs(baseline.RunTumbling(pkts, duration, baseline.TumblingConfig{
			WindowNs: winNs, Regions: 1, CRTimeNs: sc.TW1CRNs, Seed: uint64(sc.Seed),
		}, full, nil), heavyThreshold)
		tw2 := detectOutputs(baseline.RunTumbling(pkts, duration, baseline.TumblingConfig{
			WindowNs: winNs, Regions: 2, Seed: uint64(sc.Seed),
		}, full, nil), heavyThreshold)

		owRun := func(plan window.Plan) []map[packet.FlowKey]bool {
			_, subSlots := mkMV(owMem, 1)
			d, err := omniwindow.New(omniwindow.Config{
				SubWindow: time.Duration(sc.SubWindowNs),
				Plan:      plan,
				Kind:      afr.Frequency,
				Threshold: heavyThreshold,
				AppFactory: func(region int) afr.StateApp {
					s, slots := mkMV(owMem, uint64(sc.Seed)+uint64(region))
					return telemetry.NewFrequencyApp(s, slots)
				},
				Slots:   subSlots,
				Tracker: trackerFor(sc),
			})
			if err != nil {
				panic(fmt.Sprintf("exp10: %v", err))
			}
			return detectedSets(d.RunFor(pkts, duration))
		}
		otw := owRun(window.Tumbling(subPerWin))
		osw := owRun(window.SlidingPlan(subPerWin, sc.SlideSub))

		// Sliding Sketch with the fixed 0.5 s-window allocation.
		curSk, _ := mkMV(fixedMem/2, uint64(sc.Seed))
		prevSk, _ := mkMV(fixedMem/2, uint64(sc.Seed))
		ss := detectOutputs(baseline.RunSlidingSketch(pkts, duration, baseline.SlidingSketchConfig{
			WindowNs: winNs, SlideNs: sc.SlideNs(),
		}, sketch.NewSliding(curSk, prevSk), nil, nil), heavyThreshold)

		mk := func(mech string, d metrics.Detection) Exp10Row {
			return Exp10Row{Mechanism: mech, WindowNs: winNs, Precision: d.Precision(), Recall: d.Recall()}
		}
		res.Rows = append(res.Rows,
			mk("ITW", metrics.Compare(unionDetections(itw), unionDetections(itw))),
			mk("TW1", scoreWindows(tw1, itw)),
			mk("TW2", scoreWindows(tw2, itw)),
			mk("OTW", scoreWindows(otw, itw)),
			mk("ISW", metrics.Compare(unionDetections(isw), unionDetections(isw))),
			mk("SS", scoreWindows(ss, isw)),
			mk("OSW", scoreWindows(osw, isw)),
		)
	}
	return res
}
