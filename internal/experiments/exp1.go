package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/metrics"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

// Exp1Anomalies injects six instances of every evaluated anomaly type:
// three centered mid-window and three straddling tumbling-window
// boundaries (the Figure 1 scenario). Each instance is sized ~1.5x its
// query's detection threshold, so a boundary instance split across two
// tumbling windows falls below threshold in both.
func Exp1Anomalies(sc Scale, th query.Thresholds) []trace.Anomaly {
	w := sc.WindowNs()
	nWin := sc.Duration / w
	// Three placements, derived from the trace length:
	//   mid    — concentrated inside one window (every mechanism sees it);
	//   early  — right after a boundary, inside TW1's C&R blackout
	//            (TW1 loses it; everything else sees it);
	//   bound  — straddling a boundary (tumbling windows split it below
	//            threshold; sliding windows see it whole — Figure 1).
	mids := []int64{w / 2}
	earlies := []int64{w + sc.TW1CRNs/2}
	bounds := []int64{w}
	if nWin > 2 {
		mids = append(mids, (nWin-1)*w+w/2)
		earlies = append(earlies, 2*w+sc.TW1CRNs/2)
		bounds = append(bounds, (nWin-1)*w)
	}
	midSpread := sc.SubWindowNs
	earlySpread := sc.TW1CRNs * 8 / 10
	boundSpread := 2 * sc.SubWindowNs

	var out []trace.Anomaly
	inst := 0
	add := func(mk func(victim int, at, spread int64) trace.Anomaly) {
		for _, at := range mids {
			out = append(out, mk(inst, at, midSpread))
			inst++
		}
		for _, at := range earlies {
			out = append(out, mk(inst, at, earlySpread))
			inst++
		}
		for _, at := range bounds {
			out = append(out, mk(inst, at, boundSpread))
			inst++
		}
	}
	scale := func(thr uint64) int { return int(thr * 3 / 2) }

	// Q1: TCP connection fan-out.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.TCPFanout{Host: v, Conns: scale(th.NewConns), At: at, Spread: spread}
	})
	// Q2: SSH brute force (four sources splitting the attempts).
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.SSHBruteForce{Victim: 100 + v, Sources: 4, Attempts: scale(th.SSHAttempts) / 4, At: at, Spread: spread}
	})
	// Q3: port scan.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.PortScan{Scanner: v, Victim: 200 + v, Ports: scale(th.ScanPorts), At: at, Spread: spread}
	})
	// Q4: DDoS.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.DDoS{Victim: 300 + v, Sources: scale(th.DDoSSources), PktsPerSource: 2, At: at, Spread: spread}
	})
	// Q5: SYN flood.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.SYNFlood{Victim: 400 + v, Syns: scale(th.SynFlood), At: at, Spread: spread}
	})
	// Q6: completed flows.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.CompletedFlows{Victim: 500 + v, Flows: scale(th.Completed), At: at, Spread: spread}
	})
	// Q7: Slowloris.
	add(func(v int, at, spread int64) trace.Anomaly {
		return trace.Slowloris{Victim: 600 + v, Conns: scale(th.SlowlorisCon), At: at, Spread: spread, Life: spread}
	})
	return out
}

// Exp1Trace builds the shared Exp#1/Exp#2 workload.
func Exp1Trace(sc Scale, th query.Thresholds) []packet.Packet {
	cfg := trace.DefaultConfig(sc.Seed)
	cfg.Duration = sc.Duration
	cfg.Flows = sc.Flows
	cfg.Anomalies = Exp1Anomalies(sc, th)
	return trace.New(cfg).Generate()
}

// Exp1Row is one (query, mechanism) accuracy cell of Figure 7.
type Exp1Row struct {
	Query     string
	Mechanism string
	Precision float64
	Recall    float64
}

// Exp1Result is the Figure 7 reproduction.
type Exp1Result struct {
	Rows []Exp1Row
}

// Table renders the result like the paper's figure.
func (r Exp1Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Query, row.Mechanism, pct(row.Precision), pct(row.Recall)})
	}
	return table([]string{"Query", "Mechanism", "Precision", "Recall"}, rows)
}

// Get returns the row for (query, mechanism).
func (r Exp1Result) Get(q, mech string) (Exp1Row, bool) {
	for _, row := range r.Rows {
		if row.Query == q && row.Mechanism == mech {
			return row, true
		}
	}
	return Exp1Row{}, false
}

// scoreWindows compares per-window detections against a same-shaped ideal.
func scoreWindows(got, ideal []map[packet.FlowKey]bool) metrics.Detection {
	var d metrics.Detection
	n := len(got)
	if len(ideal) < n {
		n = len(ideal)
	}
	for i := 0; i < n; i++ {
		d.Add(metrics.Compare(got[i], ideal[i]))
	}
	return d
}

// detectOutputs thresholds baseline window outputs.
func detectOutputs(outs []baseline.WindowOutput, threshold uint64) []map[packet.FlowKey]bool {
	res := make([]map[packet.FlowKey]bool, len(outs))
	for i, w := range outs {
		res[i] = w.Detect(threshold)
	}
	return res
}

// unionDetections flattens per-window detections to the anomaly-event
// level (used for the ITW-vs-ISW comparison).
func unionDetections(ds []map[packet.FlowKey]bool) map[packet.FlowKey]bool {
	u := make(map[packet.FlowKey]bool)
	for _, d := range ds {
		for k := range d {
			u[k] = true
		}
	}
	return u
}

// RunExp1 reproduces Exp#1 (Figure 7): Q1-Q7 under ITW, ISW, TW1, TW2,
// OTW and OSW. Tumbling mechanisms are scored per window against ITW;
// sliding ones against ISW; the ITW row itself is scored at the
// anomaly-event level against ISW (the paper's "tumbling windows miss
// boundary anomalies" comparison).
func RunExp1(sc Scale) Exp1Result {
	th := query.DefaultThresholds()
	pkts := Exp1Trace(sc, th)
	var res Exp1Result
	for _, q := range query.All(th) {
		rows := runExp1Query(sc, pkts, q)
		res.Rows = append(res.Rows, rows...)
	}
	return res
}

// RunExp1Query runs a single query (exported for focused tests).
func RunExp1Query(sc Scale, q *query.Query) []Exp1Row {
	return runExp1Query(sc, Exp1Trace(sc, query.DefaultThresholds()), q)
}

func runExp1Query(sc Scale, pkts []packet.Packet, q *query.Query) []Exp1Row {
	exactEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		e := query.NewExact(q)
		for i := range win {
			e.Update(&win[i])
		}
		return e.Counts()
	}
	track := func(p *packet.Packet) (packet.FlowKey, bool) {
		if !q.Observes(p) {
			return packet.FlowKey{}, false
		}
		return q.Key(p), true
	}

	// Ideal windows (error-free structures, offline).
	itw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), exactEval), q.Threshold)
	isw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.SlideNs(), exactEval), q.Threshold)

	// Conventional tumbling baselines with full-window state.
	fullState := func(seed uint64) afr.StateApp {
		return query.NewState(q, sc.QuerySlots, sc.QuerySlots*16, seed)
	}
	tw1 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
		WindowNs: sc.WindowNs(), Regions: 1, CRTimeNs: sc.TW1CRNs, Seed: uint64(sc.Seed),
	}, fullState, track), q.Threshold)
	tw2 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
		WindowNs: sc.WindowNs(), Regions: 2, Seed: uint64(sc.Seed),
	}, fullState, track), q.Threshold)

	// OmniWindow deployments with quarter-budget sub-window state.
	owRun := func(plan window.Plan) []map[packet.FlowKey]bool {
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: time.Duration(sc.SubWindowNs),
			Plan:      plan,
			Kind:      q.Kind,
			Threshold: q.Threshold,
			AppFactory: func(region int) afr.StateApp {
				return query.NewState(q, sc.SubSlots(), sc.SubSlots()*16, uint64(sc.Seed)+uint64(region))
			},
			KeyOf: track,
			Slots: sc.SubSlots(),
			Tracker: afr.TrackerConfig{
				BufferKeys: sc.SubSlots(), BloomBits: sc.SubSlots() * 32, BloomHashes: 3,
			},
		})
		if err != nil {
			panic(fmt.Sprintf("exp1: %v", err))
		}
		results := d.RunFor(pkts, sc.Duration)
		out := make([]map[packet.FlowKey]bool, len(results))
		for i, w := range results {
			out[i] = make(map[packet.FlowKey]bool, len(w.Detected))
			for _, k := range w.Detected {
				out[i][k] = true
			}
		}
		return out
	}
	otw := owRun(window.Tumbling(sc.WindowSub))
	osw := owRun(window.SlidingPlan(sc.WindowSub, sc.SlideSub))

	mk := func(mech string, d metrics.Detection) Exp1Row {
		return Exp1Row{Query: q.Name, Mechanism: mech, Precision: d.Precision(), Recall: d.Recall()}
	}
	return []Exp1Row{
		mk("ITW", metrics.Compare(unionDetections(itw), unionDetections(isw))),
		mk("ISW", metrics.Compare(unionDetections(isw), unionDetections(isw))),
		mk("TW1", scoreWindows(tw1, itw)),
		mk("TW2", scoreWindows(tw2, itw)),
		mk("OTW", scoreWindows(otw, itw)),
		mk("OSW", scoreWindows(osw, isw)),
	}
}
