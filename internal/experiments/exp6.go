package experiments

import (
	"fmt"
	"time"

	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// Exp6Config matches the paper's Exp#6 setup: a Count-Min sketch with
// 128 KB per state array, 64 K tracked flow keys of which the data-plane
// flowkey array caches 32 K, 3 recirculating packets without RDMA and 16
// with.
type Exp6Config struct {
	Keys        int
	CachedKeys  int
	ArrayBytes  int
	PacketsDPC  int
	PacketsRDMA int
	Costs       switchsim.CostModel
}

// DefaultExp6Config returns the paper's parameters.
func DefaultExp6Config() Exp6Config {
	return Exp6Config{
		Keys:        64 * 1024,
		CachedKeys:  32 * 1024,
		ArrayBytes:  128 * 1024,
		PacketsDPC:  3,
		PacketsRDMA: 16,
		Costs:       switchsim.DefaultCosts(),
	}
}

// Exp6Row is one (method, hash count) cell of Figure 11.
type Exp6Row struct {
	Method string
	Hashes int
	Time   time.Duration
}

// Exp6Result is the Figure 11 reproduction: time of AFR generation and
// collection for OS, CPC, DPC, OW and their RDMA-optimized variants.
type Exp6Result struct {
	Rows []Exp6Row
}

// Table renders times in milliseconds.
func (r Exp6Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Method, fmt.Sprintf("%d", row.Hashes),
			fmt.Sprintf("%.2f", float64(row.Time.Microseconds())/1e3)})
	}
	return table([]string{"Method", "Hashes", "Time(ms)"}, rows)
}

// Get returns the time for (method, hashes).
func (r Exp6Result) Get(method string, hashes int) (time.Duration, bool) {
	for _, row := range r.Rows {
		if row.Method == method && row.Hashes == hashes {
			return row.Time, true
		}
	}
	return 0, false
}

// RunExp6 reproduces Exp#6 (Figure 11). The times are virtual, derived
// from the calibrated cost model; the enumeration itself is actually
// executed on the simulated switch once per method to validate that the
// pass counts match the model's assumptions.
func RunExp6(cfg Exp6Config) Exp6Result {
	c := cfg.Costs
	entries := cfg.ArrayBytes / 2 // two-byte counters, as in Exp#8

	var res Exp6Result
	for d := 1; d <= 4; d++ {
		// OS: the switch OS reads all d arrays entry by entry over PCIe,
		// then the controller still has to query them (not counted, as
		// in the paper).
		res.Rows = append(res.Rows, Exp6Row{"OS", d, c.OSReadTime(d, entries)})

		// Controller RX runs concurrently with switch-side enumeration
		// and key injection (DPDK poll-mode threads), so it only
		// matters where it dominates.
		rx := time.Duration(cfg.Keys) * c.DPDKRxPerPacket

		// CPC: the controller injects every flow key for query.
		cpc := maxDur(time.Duration(cfg.Keys)*c.DPDKInjectPerKey, rx)
		res.Rows = append(res.Rows, Exp6Row{"CPC", d, cpc})

		// CPC*: address lookups before injection; responses via RDMA.
		cpcStar := time.Duration(cfg.Keys) * (c.DPDKInjectPerKey + c.AddressLookupPerKey)
		cpcStar += c.RDMAWrite
		res.Rows = append(res.Rows, Exp6Row{"CPC*", d, cpcStar})

		// DPC: all keys cached in the data plane, enumerated by
		// recirculating packets; AFRs over DPDK.
		dpc := maxDur(c.RecircTime(cfg.PacketsDPC, cfg.Keys), rx)
		res.Rows = append(res.Rows, Exp6Row{"DPC", d, dpc})

		// DPC*: 16 packets, AFRs via RDMA (no controller CPU).
		dpcStar := c.RecircTime(cfg.PacketsRDMA, cfg.Keys) + c.RDMAWrite
		res.Rows = append(res.Rows, Exp6Row{"DPC*", d, dpcStar})

		// OW: half the keys enumerated in-switch, half injected.
		ow := maxDur(c.RecircTime(cfg.PacketsDPC, cfg.CachedKeys),
			time.Duration(cfg.CachedKeys)*c.DPDKRxPerPacket)
		ow += time.Duration(cfg.Keys-cfg.CachedKeys) * c.DPDKInjectPerKey
		res.Rows = append(res.Rows, Exp6Row{"OW", d, ow})

		// OW*: 16 packets for the cached half, RDMA-assisted injection
		// for the remainder.
		owStar := c.RecircTime(cfg.PacketsRDMA, cfg.CachedKeys)
		owStar += time.Duration(cfg.Keys-cfg.CachedKeys) * c.RDMAInjectPerKey
		owStar += c.RDMAWrite
		res.Rows = append(res.Rows, Exp6Row{"OW*", d, owStar})
	}
	return res
}

// maxDur returns the larger duration.
func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// ValidateExp6Passes runs a real (scaled-down) enumeration on the switch
// simulator and returns the number of pipeline passes per collection
// packet, checking the cost model's "one key per pass" assumption. keys
// is the number of tracked flow keys, packets the concurrent collection
// packets.
func ValidateExp6Passes(keys, packets int) (passes int, afrs int) {
	tracker := afr.NewTracker(afr.TrackerConfig{BufferKeys: keys, BloomBits: keys * 16, BloomHashes: 3})
	regions := window.NewRegions(2, keys)
	apps := []afr.StateApp{
		telemetry.NewFrequencyApp(sketch.NewCountMin(4, keys, 1), keys),
		telemetry.NewFrequencyApp(sketch.NewCountMin(4, keys, 2), keys),
	}
	engine := afr.NewEngine(tracker, apps, regions)
	for i := 0; i < keys; i++ {
		k := packet.FlowKey{SrcIP: uint32(i + 1), DstPort: 80, Proto: packet.ProtoTCP}
		engine.Update(0, &packet.Packet{Key: k, Size: 100})
	}
	sw := switchsim.New(0)
	sw.SetProgram(func(p *switchsim.Pass) { engine.HandleSpecial(p) })
	engine.BeginCollection(0)
	for i := 0; i < packets; i++ {
		out := sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWCollection}})
		passes += out.Passes
		for _, cp := range out.ToController {
			if cp.OW.Flag == packet.OWAFR {
				afrs += len(cp.OW.AFRs)
			}
		}
	}
	return passes, afrs
}
