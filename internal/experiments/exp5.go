package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/switchsim"
	"omniwindow/internal/window"
)

// Exp5Result is the Table 2 reproduction: per-feature switch resource
// usage of the OmniWindow data plane (Q1 deployment with the RDMA
// optimization enabled).
type Exp5Result struct {
	Features map[string]switchsim.Resources
	Total    switchsim.Resources
	// Utilization is each column's fraction of the modeled ASIC.
	Utilization map[string]float64
	rendered    string
}

// Table renders the per-feature breakdown plus utilization.
func (r Exp5Result) Table() string { return r.rendered }

// RunExp5 reproduces Exp#5 (Table 2): deploy Q1 with every OmniWindow
// feature (including the RDMA optimization) and report the ledger.
func RunExp5(sc Scale) Exp5Result {
	th := query.DefaultThresholds()
	q := query.NewConnQuery(th)
	d, err := omniwindow.New(omniwindow.Config{
		SubWindow: time.Duration(sc.SubWindowNs),
		Plan:      window.Tumbling(sc.WindowSub),
		Kind:      q.Kind,
		Threshold: q.Threshold,
		AppFactory: func(region int) afr.StateApp {
			return query.NewState(q, sc.SubSlots(), sc.SubSlots()*16, uint64(region))
		},
		KeyOf: func(p *packet.Packet) (packet.FlowKey, bool) {
			return q.Key(p), q.Observes(p)
		},
		Slots:   sc.SubSlots(),
		Tracker: trackerFor(sc),
		RDMA:    true,
	})
	if err != nil {
		panic(fmt.Sprintf("exp5: %v", err))
	}
	ledger := d.Switch().Ledger()
	res := Exp5Result{
		Features:    make(map[string]switchsim.Resources),
		Total:       ledger.Total(),
		Utilization: ledger.Utilization(),
	}
	for _, f := range ledger.Features() {
		res.Features[f] = ledger.Feature(f)
	}
	res.rendered = ledger.Table() + fmt.Sprintf(
		"\nUtilization: stage %s, SRAM %s, SALU %s, VLIW %s, gateway %s\n",
		pct(res.Utilization["Stage"]), pct(res.Utilization["SRAM"]),
		pct(res.Utilization["SALU"]), pct(res.Utilization["VLIW"]),
		pct(res.Utilization["Gateway"]))
	return res
}
