package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/metrics"
	"omniwindow/internal/packet"
	"omniwindow/internal/query"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/trace"
	"omniwindow/internal/window"
)

// Exp#2 thresholds, scaled to the synthetic trace.
const (
	// Q8: a super-spreader contacts at least this many distinct hosts
	// per window.
	spreadThreshold = 120
	// Q9: a heavy hitter sends at least this many packets per window.
	heavyThreshold = 300
)

// Exp2Trace extends the Exp#1 workload with super-spreaders (Q8) and
// heavy-hitter bursts (Q9), again mixing mid-window, early-window and
// boundary placements.
func Exp2Trace(sc Scale) []packet.Packet {
	th := query.DefaultThresholds()
	anomalies := Exp1Anomalies(sc, th)
	w := sc.WindowNs()
	nWin := sc.Duration / w
	placements := []struct {
		at, spread int64
	}{
		{w / 2, sc.SubWindowNs},
		{w + sc.TW1CRNs/2, sc.TW1CRNs * 8 / 10},
		{w, 2 * sc.SubWindowNs},
	}
	if nWin > 2 {
		placements = append(placements, []struct{ at, spread int64 }{
			{(nWin-1)*w + w/2, sc.SubWindowNs},
			{2*w + sc.TW1CRNs/2, sc.TW1CRNs * 8 / 10},
			{(nWin - 1) * w, 2 * sc.SubWindowNs},
		}...)
	}
	for i, p := range placements {
		anomalies = append(anomalies,
			trace.SuperSpreader{Host: 700 + i, Dsts: spreadThreshold * 3 / 2, At: p.at, Spread: p.spread},
			trace.HeavyBurst{Key: trace.BurstKey(i), Packets: heavyThreshold * 3 / 2, At: p.at, Spread: p.spread},
		)
	}
	cfg := trace.DefaultConfig(sc.Seed)
	cfg.Duration = sc.Duration
	cfg.Flows = sc.Flows
	cfg.Anomalies = anomalies
	return trace.New(cfg).Generate()
}

// Exp2Row is one (task, sketch, mechanism) cell of Figure 8. For detection
// tasks (Q8, Q9) Precision/Recall are set; for estimation tasks (Q10, Q11)
// Err carries the ARE / AARE.
type Exp2Row struct {
	Task      string
	Sketch    string
	Mechanism string
	Precision float64
	Recall    float64
	Err       float64
	Metric    string // "pr" or "are" or "aare"
}

// Exp2Result is the Figure 8 reproduction.
type Exp2Result struct {
	Rows []Exp2Row
}

// Table renders the result.
func (r Exp2Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		switch row.Metric {
		case "pr":
			rows = append(rows, []string{row.Task, row.Sketch, row.Mechanism,
				pct(row.Precision), pct(row.Recall), "-"})
		default:
			rows = append(rows, []string{row.Task, row.Sketch, row.Mechanism,
				"-", "-", fmt.Sprintf("%.4f", row.Err)})
		}
	}
	return table([]string{"Task", "Sketch", "Mechanism", "Precision", "Recall", "ARE/AARE"}, rows)
}

// Get returns the row for (task, sketch, mechanism).
func (r Exp2Result) Get(task, sk, mech string) (Exp2Row, bool) {
	for _, row := range r.Rows {
		if row.Task == task && row.Sketch == sk && row.Mechanism == mech {
			return row, true
		}
	}
	return Exp2Row{}, false
}

// RunExp2 reproduces Exp#2 (Figure 8): eight sketch algorithms under the
// six window settings plus the Sliding Sketch baseline.
func RunExp2(sc Scale) Exp2Result {
	pkts := Exp2Trace(sc)
	var res Exp2Result
	res.Rows = append(res.Rows, Exp2Spread(sc, pkts)...)
	res.Rows = append(res.Rows, Exp2Heavy(sc, pkts)...)
	res.Rows = append(res.Rows, Exp2Frequency(sc, pkts)...)
	res.Rows = append(res.Rows, Exp2Cardinality(sc, pkts)...)
	return res
}

// srcHostTrack aggregates by source host (Q8's key definition).
func srcHostTrack(p *packet.Packet) (packet.FlowKey, bool) {
	return p.Key.SrcHostKey(), true
}

// exactSpreadEval computes exact distinct destinations per source host.
func exactSpreadEval(win []packet.Packet) map[packet.FlowKey]uint64 {
	sets := make(map[packet.FlowKey]map[uint32]bool)
	for i := range win {
		src := win[i].Key.SrcHostKey()
		s, ok := sets[src]
		if !ok {
			s = make(map[uint32]bool)
			sets[src] = s
		}
		s[win[i].Key.DstIP] = true
	}
	out := make(map[packet.FlowKey]uint64, len(sets))
	for k, s := range sets {
		out[k] = uint64(len(s))
	}
	return out
}

// Exp2Spread runs Q8 with SpreadSketch and the Vector Bloom Filter.
func Exp2Spread(sc Scale, pkts []packet.Packet) []Exp2Row {
	type backend struct {
		name    string
		app     func(mem int, seed uint64) afr.StateApp
		counter afr.DistinctCounter
	}
	slots := func(mem int) int { return maxi(mem/(4*sketch.SPSBucketBytes(4)), 1) }
	backends := []backend{
		{
			name: "SPS",
			app: func(mem int, seed uint64) afr.StateApp {
				return telemetry.NewSpreadSketchApp(sketch.NewSpreadSketchBytes(4, mem, seed), slots(mem))
			},
			counter: nil,
		},
		{
			name: "VBF",
			app: func(mem int, seed uint64) afr.StateApp {
				return telemetry.NewVBFApp(sketch.NewVBF(5, maxi(mem/(5*8), 1), seed), maxi(mem/(5*8), 1))
			},
			counter: sketch.VBFDistinctCounter,
		},
	}

	itw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), exactSpreadEval), spreadThreshold)
	isw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.SlideNs(), exactSpreadEval), spreadThreshold)

	var rows []Exp2Row
	for _, be := range backends {
		full := func(seed uint64) afr.StateApp { return be.app(sc.SketchMemory, seed) }
		tw1 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 1, CRTimeNs: sc.TW1CRNs, Seed: uint64(sc.Seed),
		}, full, srcHostTrack), spreadThreshold)
		tw2 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 2, Seed: uint64(sc.Seed),
		}, full, srcHostTrack), spreadThreshold)

		owRun := func(plan window.Plan) []map[packet.FlowKey]bool {
			subSlots := slotsOf(be.app(sc.SubSketchMemory(), 1))
			d, err := omniwindow.New(omniwindow.Config{
				SubWindow: time.Duration(sc.SubWindowNs),
				Plan:      plan,
				Kind:      afr.Distinction,
				Threshold: spreadThreshold,
				AppFactory: func(region int) afr.StateApp {
					return be.app(sc.SubSketchMemory(), uint64(sc.Seed)+uint64(region))
				},
				KeyOf:           srcHostTrack,
				Slots:           subSlots,
				DistinctCounter: be.counter,
				Tracker:         trackerFor(sc),
			})
			if err != nil {
				panic(fmt.Sprintf("exp2 spread: %v", err))
			}
			return detectedSets(d.RunFor(pkts, sc.Duration))
		}
		otw := owRun(window.Tumbling(sc.WindowSub))
		osw := owRun(window.SlidingPlan(sc.WindowSub, sc.SlideSub))

		mk := func(mech string, d metrics.Detection) Exp2Row {
			return Exp2Row{Task: "Q8-superspreader", Sketch: be.name, Mechanism: mech,
				Precision: d.Precision(), Recall: d.Recall(), Metric: "pr"}
		}
		rows = append(rows,
			mk("ITW", metrics.Compare(unionDetections(itw), unionDetections(isw))),
			mk("ISW", metrics.Compare(unionDetections(isw), unionDetections(isw))),
			mk("TW1", scoreWindows(tw1, itw)),
			mk("TW2", scoreWindows(tw2, itw)),
			mk("OTW", scoreWindows(otw, itw)),
			mk("OSW", scoreWindows(osw, isw)),
		)
	}
	return rows
}

// Exp2Heavy runs Q9 with MV-Sketch and HashPipe.
func Exp2Heavy(sc Scale, pkts []packet.Packet) []Exp2Row {
	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}
	itw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), countEval), heavyThreshold)
	isw := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.SlideNs(), countEval), heavyThreshold)

	backends := []struct {
		name string
		mk   func(mem int, seed uint64) (sketch.Sketch, int)
	}{
		{"MV", func(mem int, seed uint64) (sketch.Sketch, int) {
			s := sketch.NewMVBytes(4, mem, seed)
			return s, maxi(mem/(4*sketch.MVBucketBytes), 1)
		}},
		{"HP", func(mem int, seed uint64) (sketch.Sketch, int) {
			s := sketch.NewHashPipeBytes(4, mem, seed)
			return s, maxi(mem/(4*sketch.HPSlotBytes), 1)
		}},
	}

	var rows []Exp2Row
	for _, be := range backends {
		full := func(seed uint64) afr.StateApp {
			s, slots := be.mk(sc.SketchMemory, seed)
			return telemetry.NewFrequencyApp(s, slots)
		}
		tw1 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 1, CRTimeNs: sc.TW1CRNs, Seed: uint64(sc.Seed),
		}, full, nil), heavyThreshold)
		tw2 := detectOutputs(baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 2, Seed: uint64(sc.Seed),
		}, full, nil), heavyThreshold)

		owRun := func(plan window.Plan) []map[packet.FlowKey]bool {
			_, subSlots := be.mk(sc.SubSketchMemory(), 1)
			d, err := omniwindow.New(omniwindow.Config{
				SubWindow: time.Duration(sc.SubWindowNs),
				Plan:      plan,
				Kind:      afr.Frequency,
				Threshold: heavyThreshold,
				AppFactory: func(region int) afr.StateApp {
					s, slots := be.mk(sc.SubSketchMemory(), uint64(sc.Seed)+uint64(region))
					return telemetry.NewFrequencyApp(s, slots)
				},
				Slots:   subSlots,
				Tracker: trackerFor(sc),
			})
			if err != nil {
				panic(fmt.Sprintf("exp2 heavy: %v", err))
			}
			return detectedSets(d.RunFor(pkts, sc.Duration))
		}
		otw := owRun(window.Tumbling(sc.WindowSub))
		osw := owRun(window.SlidingPlan(sc.WindowSub, sc.SlideSub))

		// Sliding Sketch baseline: same depth, half width, two buckets.
		curSk, _ := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
		prevSk, _ := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
		ss := detectOutputs(baseline.RunSlidingSketch(pkts, sc.Duration, baseline.SlidingSketchConfig{
			WindowNs: sc.WindowNs(), SlideNs: sc.SlideNs(),
		}, sketch.NewSliding(curSk, prevSk), nil, nil), heavyThreshold)

		mk := func(mech string, d metrics.Detection) Exp2Row {
			return Exp2Row{Task: "Q9-heavyhitter", Sketch: be.name, Mechanism: mech,
				Precision: d.Precision(), Recall: d.Recall(), Metric: "pr"}
		}
		rows = append(rows,
			mk("ITW", metrics.Compare(unionDetections(itw), unionDetections(isw))),
			mk("ISW", metrics.Compare(unionDetections(isw), unionDetections(isw))),
			mk("TW1", scoreWindows(tw1, itw)),
			mk("TW2", scoreWindows(tw2, itw)),
			mk("OTW", scoreWindows(otw, itw)),
			mk("OSW", scoreWindows(osw, isw)),
			mk("SS", scoreWindows(ss, isw)),
		)
	}
	return rows
}

// Exp2Frequency runs Q10 (per-flow packet counts, ARE) with Count-Min and
// SuMax, including the Sliding Sketch baseline.
func Exp2Frequency(sc Scale, pkts []packet.Packet) []Exp2Row {
	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}
	itwVals := baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), countEval)
	iswVals := baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.SlideNs(), countEval)

	backends := []struct {
		name string
		mk   func(mem int, seed uint64) (sketch.Sketch, int)
	}{
		{"CM", func(mem int, seed uint64) (sketch.Sketch, int) {
			s := sketch.NewCountMinBytes(4, mem, seed)
			return s, s.Width()
		}},
		{"SM", func(mem int, seed uint64) (sketch.Sketch, int) {
			s := sketch.NewSuMaxBytes(4, mem, seed)
			return s, maxi(mem/(4*8), 1)
		}},
	}

	var rows []Exp2Row
	for _, be := range backends {
		full := func(seed uint64) afr.StateApp {
			s, slots := be.mk(sc.SketchMemory, seed)
			return telemetry.NewFrequencyApp(s, slots)
		}
		tw1 := baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 1, CRTimeNs: sc.TW1CRNs, Seed: uint64(sc.Seed),
		}, full, nil)
		tw2 := baseline.RunTumbling(pkts, sc.Duration, baseline.TumblingConfig{
			WindowNs: sc.WindowNs(), Regions: 2, Seed: uint64(sc.Seed),
		}, full, nil)

		owVals := func(plan window.Plan) []map[packet.FlowKey]uint64 {
			_, subSlots := be.mk(sc.SubSketchMemory(), 1)
			d, err := omniwindow.New(omniwindow.Config{
				SubWindow: time.Duration(sc.SubWindowNs),
				Plan:      plan,
				Kind:      afr.Frequency,
				AppFactory: func(region int) afr.StateApp {
					s, slots := be.mk(sc.SubSketchMemory(), uint64(sc.Seed)+uint64(region))
					return telemetry.NewFrequencyApp(s, slots)
				},
				Slots:         subSlots,
				Threshold:     ^uint64(0), // estimation task: no detection
				CaptureValues: true,
				Tracker:       trackerFor(sc),
			})
			if err != nil {
				panic(fmt.Sprintf("exp2 freq: %v", err))
			}
			results := d.RunFor(pkts, sc.Duration)
			vals := make([]map[packet.FlowKey]uint64, len(results))
			for i, w := range results {
				vals[i] = w.Values
			}
			return vals
		}
		otw := owVals(window.Tumbling(sc.WindowSub))
		osw := owVals(window.SlidingPlan(sc.WindowSub, sc.SlideSub))

		// Sliding Sketch: same depth, half width, two buckets.
		curSk, _ := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
		prevSk, _ := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
		ss := baseline.RunSlidingSketch(pkts, sc.Duration, baseline.SlidingSketchConfig{
			WindowNs: sc.WindowNs(), SlideNs: sc.SlideNs(),
		}, sketch.NewSliding(curSk, prevSk), nil, nil)

		areOf := func(got []map[packet.FlowKey]uint64, ideal []baseline.WindowOutput) float64 {
			var ares []float64
			n := len(got)
			if len(ideal) < n {
				n = len(ideal)
			}
			for i := 0; i < n; i++ {
				ares = append(ares, metrics.ARE(got[i], ideal[i].Values))
			}
			return metrics.Mean(ares)
		}
		valuesOf := func(outs []baseline.WindowOutput) []map[packet.FlowKey]uint64 {
			vs := make([]map[packet.FlowKey]uint64, len(outs))
			for i := range outs {
				vs[i] = outs[i].Values
			}
			return vs
		}

		mk := func(mech string, are float64) Exp2Row {
			return Exp2Row{Task: "Q10-flowcount", Sketch: be.name, Mechanism: mech, Err: are, Metric: "are"}
		}
		rows = append(rows,
			mk("TW1", areOf(valuesOf(tw1), itwVals)),
			mk("TW2", areOf(valuesOf(tw2), itwVals)),
			mk("OTW", areOf(otw, itwVals)),
			mk("OSW", areOf(osw, iswVals)),
			mk("SS", areOf(valuesOf(ss), iswVals)),
		)
	}
	return rows
}

// Exp2Cardinality runs Q11 (window flow cardinality, AARE) with Linear
// Counting and HyperLogLog. These estimators have no per-flow AFRs: the
// per-sub-window instances migrate to the controller and merge losslessly
// (§8, merging intermediate data without AFRs).
func Exp2Cardinality(sc Scale, pkts []packet.Packet) []Exp2Row {
	backends := []struct {
		name string
		mk   func(mem int, seed uint64) telemetry.Cardinality
	}{
		{"LC", func(mem int, seed uint64) telemetry.Cardinality { return telemetry.NewLCCard(mem, seed) }},
		{"HLL", func(mem int, seed uint64) telemetry.Cardinality { return telemetry.NewHLLCard(mem, seed) }},
	}

	exactCount := func(start, end int64) float64 {
		set := make(map[packet.FlowKey]bool)
		for _, p := range baseline.Slice(pkts, start, end) {
			set[p.Key] = true
		}
		return float64(len(set))
	}

	var rows []Exp2Row
	for _, be := range backends {
		// Per-sub-window estimators (quarter memory) — OmniWindow's
		// state, shared by OTW and OSW which merge different ranges.
		nSub := int(sc.Duration / sc.SubWindowNs)
		subs := make([]telemetry.Cardinality, nSub)
		for i := range subs {
			subs[i] = be.mk(sc.SubSketchMemory(), uint64(sc.Seed))
		}
		for i := range pkts {
			swi := int(pkts[i].Time / sc.SubWindowNs)
			if swi >= 0 && swi < nSub {
				subs[swi].Insert(pkts[i].Key)
			}
		}
		mergeRange := func(from, to int) telemetry.Cardinality {
			acc := subs[from].Clone()
			for i := from; i < to; i++ {
				acc.Merge(subs[i])
			}
			return acc
		}

		// Full-window estimators for TW1/TW2.
		twEstimate := func(blackout int64) []float64 {
			var ests []float64
			for _, sp := range baseline.Spans(sc.Duration, sc.WindowNs(), sc.WindowNs()) {
				est := be.mk(sc.SketchMemory, uint64(sc.Seed))
				for _, p := range baseline.Slice(pkts, sp.Start, sp.End) {
					if blackout > 0 && sp.Start > 0 && p.Time < sp.Start+blackout {
						continue
					}
					est.Insert(p.Key)
				}
				ests = append(ests, est.Estimate())
			}
			return ests
		}

		aare := func(ests []float64, spans []baseline.Span) float64 {
			var errs []float64
			for i, sp := range spans {
				if i >= len(ests) {
					break
				}
				errs = append(errs, metrics.RelativeError(ests[i], exactCount(sp.Start, sp.End)))
			}
			return metrics.Mean(errs)
		}

		twSpans := baseline.Spans(sc.Duration, sc.WindowNs(), sc.WindowNs())
		slSpans := baseline.Spans(sc.Duration, sc.WindowNs(), sc.SlideNs())

		// OTW / OSW: merge the sub-window estimators per window span.
		owEsts := func(spans []baseline.Span) []float64 {
			var ests []float64
			for _, sp := range spans {
				from := int(sp.Start / sc.SubWindowNs)
				to := int(sp.End / sc.SubWindowNs)
				if to > nSub {
					to = nSub
				}
				ests = append(ests, mergeRange(from, to).Estimate())
			}
			return ests
		}

		// Sliding Sketch for cardinality: two half-memory buckets
		// rotating per window; an estimate merges both.
		ssEsts := func() []float64 {
			cur := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
			prev := be.mk(sc.SketchMemory/2, uint64(sc.Seed))
			next := 0
			rot := int64(1)
			var ests []float64
			for _, sp := range slSpans {
				for next < len(pkts) && pkts[next].Time < sp.End {
					for pkts[next].Time >= rot*sc.WindowNs() {
						prev.Reset()
						prev, cur = cur, prev
						rot++
					}
					cur.Insert(pkts[next].Key)
					next++
				}
				u := cur.Clone()
				u.Merge(cur)
				u.Merge(prev)
				ests = append(ests, u.Estimate())
			}
			return ests
		}

		mk := func(mech string, v float64) Exp2Row {
			return Exp2Row{Task: "Q11-cardinality", Sketch: be.name, Mechanism: mech, Err: v, Metric: "aare"}
		}
		rows = append(rows,
			mk("TW1", aare(twEstimate(sc.TW1CRNs), twSpans)),
			mk("TW2", aare(twEstimate(0), twSpans)),
			mk("OTW", aare(owEsts(twSpans), twSpans)),
			mk("OSW", aare(owEsts(slSpans), slSpans)),
			mk("SS", aare(ssEsts(), slSpans)),
		)
	}
	return rows
}

// Helpers shared by Exp#2 and Exp#10.

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// slotsOf extracts an app's slot count.
func slotsOf(a afr.StateApp) int { return a.Slots() }

// trackerFor sizes the flowkey tracker proportionally to the scale.
func trackerFor(sc Scale) afr.TrackerConfig {
	return afr.TrackerConfig{
		BufferKeys:  sc.SubSlots(),
		BloomBits:   sc.SubSlots() * 32,
		BloomHashes: 3,
	}
}

// detectedSets converts deployment results to per-window detection sets.
func detectedSets(results []controllerWindow) []map[packet.FlowKey]bool {
	out := make([]map[packet.FlowKey]bool, len(results))
	for i, w := range results {
		out[i] = make(map[packet.FlowKey]bool, len(w.Detected))
		for _, k := range w.Detected {
			out[i][k] = true
		}
	}
	return out
}
