package experiments

import (
	"fmt"
	"time"

	"omniwindow"
	"omniwindow/internal/afr"
	"omniwindow/internal/baseline"
	"omniwindow/internal/packet"
	"omniwindow/internal/sketch"
	"omniwindow/internal/telemetry"
	"omniwindow/internal/window"
)

// ZooRow is one sketch's result in the heavy-hitter zoo.
type ZooRow struct {
	Sketch    string
	Precision float64
	Recall    float64
	// UpdateNsPerPkt is the measured wall-clock update cost.
	UpdateNsPerPkt float64
	// MemoryBytes is the instantiated per-sub-window footprint.
	MemoryBytes int
}

// ZooResult compares every heavy-hitter-capable sketch in the library
// under OmniWindow tumbling windows at an equal per-sub-window memory
// budget — an extension beyond the paper's MV/HP pair, showing the
// framework is agnostic to the deployed algorithm.
type ZooResult struct {
	Rows []ZooRow
}

// Table renders the comparison.
func (r ZooResult) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Sketch, pct(row.Precision), pct(row.Recall),
			fmt.Sprintf("%.0f", row.UpdateNsPerPkt),
			fmt.Sprintf("%d", row.MemoryBytes)})
	}
	return table([]string{"Sketch", "Precision", "Recall", "Update(ns/pkt)", "Memory(B)"}, rows)
}

// zooBackend builds a heavy-hitter StateApp within a memory budget.
type zooBackend struct {
	name string
	mk   func(mem int, seed uint64) (afr.StateApp, int, int) // app, slots, memBytes
}

func zooBackends() []zooBackend {
	return []zooBackend{
		{"CM", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewCountMinBytes(4, mem, seed)
			return telemetry.NewFrequencyApp(s, s.Width()), s.Width(), s.MemoryBytes()
		}},
		{"SuMax", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewSuMaxBytes(4, mem, seed)
			slots := maxi(mem/(4*8), 1)
			return telemetry.NewFrequencyApp(s, slots), slots, s.MemoryBytes()
		}},
		{"MV", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewMVBytes(4, mem, seed)
			slots := maxi(mem/(4*sketch.MVBucketBytes), 1)
			return telemetry.NewFrequencyApp(s, slots), slots, s.MemoryBytes()
		}},
		{"HashPipe", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewHashPipeBytes(4, mem, seed)
			slots := maxi(mem/(4*sketch.HPSlotBytes), 1)
			return telemetry.NewFrequencyApp(s, slots), slots, s.MemoryBytes()
		}},
		{"Elastic", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewElasticBytes(mem, seed)
			slots := maxi(mem/4/sketch.ElasticBucketBytes, 1)
			return telemetry.NewFrequencyApp(s, slots), slots, s.MemoryBytes()
		}},
		{"UnivMon", func(mem int, seed uint64) (afr.StateApp, int, int) {
			s := sketch.NewUnivMonBytes(8, mem, seed)
			slots := maxi(mem/(8*5*8), 8)
			return telemetry.NewFrequencyApp(&univAdapter{s}, slots), slots, s.MemoryBytes()
		}},
	}
}

// univAdapter bridges UnivMon's level-0 point query to the sketch.Sketch
// interface the frequency app expects.
type univAdapter struct{ u *sketch.UnivMon }

func (a *univAdapter) Update(k packet.FlowKey, v uint64) { a.u.Update(k, v) }
func (a *univAdapter) Query(k packet.FlowKey) uint64     { return a.u.Query(k) }
func (a *univAdapter) Reset()                            { a.u.Reset() }
func (a *univAdapter) MemoryBytes() int                  { return a.u.MemoryBytes() }

// RunSketchZoo evaluates the zoo over the Exp#2 workload under OmniWindow
// tumbling windows.
func RunSketchZoo(sc Scale) ZooResult {
	pkts := Exp2Trace(sc)
	countEval := func(win []packet.Packet) map[packet.FlowKey]uint64 {
		m := make(map[packet.FlowKey]uint64)
		for i := range win {
			m[win[i].Key]++
		}
		return m
	}
	ideal := detectOutputs(baseline.RunIdeal(pkts, sc.Duration, sc.WindowNs(), sc.WindowNs(), countEval), heavyThreshold)

	var res ZooResult
	for _, be := range zooBackends() {
		_, subSlots, memBytes := be.mk(sc.SubSketchMemory(), 1)
		d, err := omniwindow.New(omniwindow.Config{
			SubWindow: time.Duration(sc.SubWindowNs),
			Plan:      window.Tumbling(sc.WindowSub),
			Kind:      afr.Frequency,
			Threshold: heavyThreshold,
			AppFactory: func(region int) afr.StateApp {
				app, _, _ := be.mk(sc.SubSketchMemory(), uint64(sc.Seed)+uint64(region))
				return app
			},
			Slots:   subSlots,
			Tracker: trackerFor(sc),
		})
		if err != nil {
			panic(fmt.Sprintf("zoo: %v", err))
		}
		start := time.Now()
		got := detectedSets(d.RunFor(pkts, sc.Duration))
		elapsed := time.Since(start)
		det := scoreWindows(got, ideal)
		res.Rows = append(res.Rows, ZooRow{
			Sketch:         be.name,
			Precision:      det.Precision(),
			Recall:         det.Recall(),
			UpdateNsPerPkt: float64(elapsed.Nanoseconds()) / float64(len(pkts)),
			MemoryBytes:    memBytes,
		})
	}
	return res
}
