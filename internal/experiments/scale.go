// Package experiments reproduces every table and figure of the paper's
// evaluation (§9): one runner per experiment, each returning printable
// rows shaped like the paper's. The workload is the synthetic CAIDA-like
// trace (see internal/trace); absolute numbers therefore differ from the
// paper's testbed, but the comparisons — who wins, by what factor, where
// crossovers fall — reproduce.
package experiments

import (
	"fmt"
	"strings"

	"omniwindow/internal/controller"
	"omniwindow/internal/trace"
)

// controllerWindow aliases the controller's window result for brevity.
type controllerWindow = controller.WindowResult

// Millisecond aliases the trace time unit.
const Millisecond = trace.Millisecond

// Scale sizes an experiment run. The paper's testbed pushes 100 Gbps
// through a Tofino; SmallScale is sized for a laptop-class run with the
// same structure (windows of five 100 ms sub-windows, sub-window memory =
// 1/4 of the window's).
type Scale struct {
	// Seed drives all randomness.
	Seed int64
	// Duration is the trace length (ns).
	Duration int64
	// Flows is the number of background flows.
	Flows int
	// SubWindowNs is the sub-window length.
	SubWindowNs int64
	// WindowSub is the window size in sub-windows.
	WindowSub int
	// SlideSub is the slide in sub-windows (sliding mechanisms).
	SlideSub int
	// QuerySlots is the query-state width for a FULL window; sub-window
	// states get a quarter (the paper's memory setting).
	QuerySlots int
	// SketchMemory is the sketch budget in bytes for a FULL window.
	SketchMemory int
	// TW1CRNs is the C&R blackout of the single-region baseline.
	TW1CRNs int64
}

// SmallScale returns the default laptop-scale configuration.
func SmallScale(seed int64) Scale {
	return Scale{
		Seed:         seed,
		Duration:     2500 * Millisecond,
		Flows:        20000,
		SubWindowNs:  100 * Millisecond,
		WindowSub:    5,
		SlideSub:     1,
		QuerySlots:   1 << 16,
		SketchMemory: 1 << 20, // 1 MB per window (paper: 8 MB)
		TW1CRNs:      100 * Millisecond,
	}
}

// TinyScale returns a minimal configuration for unit tests.
func TinyScale(seed int64) Scale {
	s := SmallScale(seed)
	s.Duration = 1000 * Millisecond
	s.Flows = 3000
	s.QuerySlots = 1 << 14
	s.SketchMemory = 1 << 18
	return s
}

// WindowNs returns the complete-window length.
func (s Scale) WindowNs() int64 { return s.SubWindowNs * int64(s.WindowSub) }

// SlideNs returns the slide length.
func (s Scale) SlideNs() int64 { return s.SubWindowNs * int64(s.SlideSub) }

// SubSlots returns the per-sub-window query-state width (1/4 of the
// window's, per §9.1: non-uniform traffic gets 1/4 instead of 1/5).
func (s Scale) SubSlots() int { return s.QuerySlots / 4 }

// SubSketchMemory returns the per-sub-window sketch budget.
func (s Scale) SubSketchMemory() int { return s.SketchMemory / 4 }

// table renders rows of columns with a header, aligned.
func table(header []string, rows [][]string) string {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
