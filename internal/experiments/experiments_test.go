package experiments

import (
	"strings"
	"testing"
	"time"

	"omniwindow/internal/dml"
	"omniwindow/internal/query"
	"omniwindow/internal/switchsim"
)

// Tiny-scale runs keep the test suite fast; the full figures regenerate
// through bench_test.go / cmd/omnibench at SmallScale.

func TestExp1ShapeOnOneQuery(t *testing.T) {
	sc := TinyScale(42)
	rows := RunExp1Query(sc, query.SynFloodQuery(query.DefaultThresholds()))
	get := func(mech string) Exp1Row {
		for _, r := range rows {
			if r.Mechanism == mech {
				return r
			}
		}
		t.Fatalf("missing mechanism %s", mech)
		return Exp1Row{}
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The orderings the paper reports:
	if itw, isw := get("ITW"), get("ISW"); itw.Recall >= isw.Recall {
		t.Fatalf("tumbling should miss boundary anomalies: ITW r=%.3f ISW r=%.3f", itw.Recall, isw.Recall)
	}
	if tw1, tw2 := get("TW1"), get("TW2"); tw1.Recall >= tw2.Recall {
		t.Fatalf("TW1's C&R blackout should cost recall: %.3f vs %.3f", tw1.Recall, tw2.Recall)
	}
	if otw := get("OTW"); otw.Precision < 0.7 || otw.Recall < 0.7 {
		t.Fatalf("OTW too far from ideal: %+v", otw)
	}
	if osw := get("OSW"); osw.Precision < 0.7 || osw.Recall < 0.7 {
		t.Fatalf("OSW too far from ideal: %+v", osw)
	}
}

func TestExp1TableRenders(t *testing.T) {
	res := Exp1Result{Rows: []Exp1Row{{Query: "Q1", Mechanism: "OTW", Precision: 0.5, Recall: 0.25}}}
	tbl := res.Table()
	if !strings.Contains(tbl, "Q1") || !strings.Contains(tbl, "50.0%") || !strings.Contains(tbl, "25.0%") {
		t.Fatalf("bad table:\n%s", tbl)
	}
	if _, ok := res.Get("Q1", "OTW"); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := res.Get("Q1", "XX"); ok {
		t.Fatal("Get found phantom row")
	}
}

func TestExp2CardinalityShape(t *testing.T) {
	sc := TinyScale(7)
	pkts := Exp2Trace(sc)
	rows := Exp2Cardinality(sc, pkts)
	get := func(sk, mech string) float64 {
		for _, r := range rows {
			if r.Sketch == sk && r.Mechanism == mech {
				return r.Err
			}
		}
		t.Fatalf("missing %s/%s", sk, mech)
		return 0
	}
	for _, sk := range []string{"LC", "HLL"} {
		// Sliding Sketch mixes two windows: AARE far worse than OSW.
		if get(sk, "SS") < 10*get(sk, "OSW")+0.01 {
			t.Fatalf("%s: SS %.4f should be far worse than OSW %.4f", sk, get(sk, "SS"), get(sk, "OSW"))
		}
		// TW1 loses blackout traffic: worse than TW2.
		if get(sk, "TW1") <= get(sk, "TW2") {
			t.Fatalf("%s: TW1 %.4f should exceed TW2 %.4f", sk, get(sk, "TW1"), get(sk, "TW2"))
		}
		// OmniWindow merging is lossless: close to TW2.
		if get(sk, "OTW") > get(sk, "TW2")+0.05 {
			t.Fatalf("%s: OTW %.4f too far above TW2 %.4f", sk, get(sk, "OTW"), get(sk, "TW2"))
		}
	}
}

func TestExp2FrequencyShape(t *testing.T) {
	sc := TinyScale(9)
	pkts := Exp2Trace(sc)
	rows := Exp2Frequency(sc, pkts)
	for _, sk := range []string{"CM", "SM"} {
		var ss, osw, tw1, tw2 float64
		for _, r := range rows {
			if r.Sketch != sk {
				continue
			}
			switch r.Mechanism {
			case "SS":
				ss = r.Err
			case "OSW":
				osw = r.Err
			case "TW1":
				tw1 = r.Err
			case "TW2":
				tw2 = r.Err
			}
		}
		if ss < 2*osw {
			t.Fatalf("%s: SS ARE %.4f should dwarf OSW %.4f", sk, ss, osw)
		}
		if tw1 <= tw2 {
			t.Fatalf("%s: TW1 %.4f should exceed TW2 %.4f", sk, tw1, tw2)
		}
	}
}

func TestExp3MeasurementMatchesGroundTruth(t *testing.T) {
	cfg := dml.DefaultConfig(5)
	cfg.Iterations = 40
	res := RunExp3(cfg)
	if len(res.Rows) != cfg.Iterations*cfg.Workers {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if e := res.MaxRelError(); e > 0.01 {
		t.Fatalf("in-network measurement off by %.4f", e)
	}
	// Compression must shrink transfer times stepwise.
	var it0, it16 int64
	for _, r := range res.Rows {
		if r.Worker == 0 && r.Iteration == 0 {
			it0 = r.MeasuredNs
		}
		if r.Worker == 0 && r.Iteration == 16 {
			it16 = r.MeasuredNs
		}
	}
	if it16 >= it0 {
		t.Fatalf("compression did not shrink measured time: %d vs %d", it16, it0)
	}
	if !strings.Contains(res.Table(), "Ratio") {
		t.Fatal("table broken")
	}
}

func TestExp4BreakdownRecorded(t *testing.T) {
	sc := TinyScale(11)
	res := RunExp4(sc)
	if len(res.Rows) != 2*(sc.WindowSub+1) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The OSW rows must include eviction time; OTW rows may not (O5 is
	// sliding-only in steady state).
	var oswEvict time.Duration
	insertSeen := false
	for _, r := range res.Rows {
		if r.Times.Insert > 0 {
			insertSeen = true
		}
		if r.Mechanism == "OSW" {
			oswEvict += r.Times.Evict
		}
	}
	if !insertSeen {
		t.Fatal("no insert time recorded")
	}
	if oswEvict == 0 {
		t.Fatal("sliding windows must pay O5 eviction")
	}
	if !strings.Contains(res.Table(), "O2-insert") {
		t.Fatal("table broken")
	}
}

func TestExp5ResourceTable(t *testing.T) {
	sc := TinyScale(13)
	res := RunExp5(sc)
	for _, feat := range []string{"Signal", "Consistency model", "Address location",
		"Flowkey tracking", "AFR generation", "RDMA opt.", "In-switch reset"} {
		r, ok := res.Features[feat]
		if !ok || r.Stages == 0 {
			t.Fatalf("feature %q missing from ledger", feat)
		}
	}
	if res.Total.SALUs == 0 || res.Total.SRAMKB == 0 {
		t.Fatalf("empty totals: %+v", res.Total)
	}
	// The consistency model costs no SRAM (Table 2).
	if res.Features["Consistency model"].SRAMKB != 0 {
		t.Fatal("consistency model should use no SRAM")
	}
	for col, u := range res.Utilization {
		if u <= 0 || u > 1 {
			t.Fatalf("utilization %s = %f", col, u)
		}
	}
	if !strings.Contains(res.Table(), "Total") {
		t.Fatal("table broken")
	}
}

func TestExp6Regimes(t *testing.T) {
	res := RunExp6(DefaultExp6Config())
	osT, _ := res.Get("OS", 4)
	cpcT, _ := res.Get("CPC", 4)
	dpcT, _ := res.Get("DPC", 4)
	owT, _ := res.Get("OW", 4)
	dpcStarT, _ := res.Get("DPC*", 4)
	owStarT, _ := res.Get("OW*", 4)

	// The paper's regimes: OS needs seconds; everything else
	// milliseconds; DPC < OW < CPC; RDMA variants of DPC/OW are fastest.
	if osT < 2*time.Second || osT > 15*time.Second {
		t.Fatalf("OS time %v outside the paper's 2.4-10.3 s regime", osT)
	}
	if cpcT > 30*time.Millisecond || cpcT < 5*time.Millisecond {
		t.Fatalf("CPC time %v outside regime", cpcT)
	}
	if !(dpcT < owT && owT < cpcT) {
		t.Fatalf("ordering broken: DPC %v OW %v CPC %v", dpcT, owT, cpcT)
	}
	if dpcStarT >= dpcT || owStarT >= owT {
		t.Fatalf("RDMA variants must be faster: DPC* %v DPC %v, OW* %v OW %v", dpcStarT, dpcT, owStarT, owT)
	}
	if owStarT > 3*time.Millisecond {
		t.Fatalf("OW* %v outside the paper's ~1.8 ms regime", owStarT)
	}
	// OS grows with hash count; the bypass methods do not.
	os1, _ := res.Get("OS", 1)
	if osT <= os1 {
		t.Fatal("OS must grow with the number of arrays")
	}
	dpc1, _ := res.Get("DPC", 1)
	if dpcT != dpc1 {
		t.Fatal("DPC should not depend on the array count")
	}
}

func TestExp6PassValidation(t *testing.T) {
	// Scaled-down functional check: k concurrent collection packets
	// enumerate exactly `keys` AFRs in keys + k passes total.
	keys, packets := 1000, 4
	passes, afrs := ValidateExp6Passes(keys, packets)
	// A Bloom-filter false positive during tracking can drop the odd key
	// (Algorithm 1's inherent approximation); allow a whisker.
	if afrs < keys-2 {
		t.Fatalf("afrs = %d want ~%d", afrs, keys)
	}
	if passes != afrs+packets {
		t.Fatalf("passes = %d want %d", passes, afrs+packets)
	}
}

func TestExp7VectorizedFaster(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock comparison is unreliable under the race detector")
	}
	res := RunExp7(1 << 20)
	for _, op := range []string{"sum", "max"} {
		red := res.Reduction(op)
		if red <= 0 {
			t.Fatalf("vectorized %s not faster (reduction %.3f)", op, red)
		}
	}
	if !strings.Contains(res.Table(), "vectorized") {
		t.Fatal("table broken")
	}
}

func TestExp8Shape(t *testing.T) {
	res := RunExp8(65536, switchsim.DefaultCosts())
	os1, _ := res.Get("OS", 1)
	os4, _ := res.Get("OS", 4)
	ow16at1, _ := res.Get("OW-16", 1)
	ow16at4, _ := res.Get("OW-16", 4)
	ow4, _ := res.Get("OW-4", 4)

	if os4 <= os1 {
		t.Fatal("OS reset must grow with register count")
	}
	if ow16at1 != ow16at4 {
		t.Fatal("OmniWindow reset must not depend on register count")
	}
	if ow16at4 >= ow4 {
		t.Fatal("more clear packets must be faster")
	}
	if ow16at4 > 2*time.Millisecond {
		t.Fatalf("OW-16 %v exceeds the paper's 2 ms", ow16at4)
	}
	if os4 < 100*ow16at4 {
		t.Fatalf("OS/OW gap too small: %v vs %v", os4, ow16at4)
	}
}

func TestExp8FunctionalReset(t *testing.T) {
	passes, clean := ValidateExp8Reset(4, 512, 8)
	if !clean {
		t.Fatal("reset left non-zero entries")
	}
	if passes != 512+8 {
		t.Fatalf("passes = %d want %d", passes, 512+8)
	}
}

func TestExp9ConsistencyShape(t *testing.T) {
	cfg := DefaultExp9Config(3)
	cfg.Flows = 150
	cfg.PacketsPerFlow = 120
	cfg.DeviationsNs = []int64{2_000, 128_000, 512_000}
	res := RunExp9(cfg)
	for _, dev := range cfg.DeviationsNs {
		ow, ok := res.Get("OmniWindow", dev)
		if !ok {
			t.Fatalf("missing OmniWindow row at %d", dev)
		}
		if ow.Precision != 1 {
			t.Fatalf("OmniWindow precision %.4f != 100%% at %dus", ow.Precision, dev/1000)
		}
	}
	lcSmall, _ := res.Get("LocalClock", 2_000)
	lcBig, _ := res.Get("LocalClock", 512_000)
	if lcBig.Precision >= lcSmall.Precision {
		t.Fatalf("local-clock precision must degrade with deviation: %.3f vs %.3f",
			lcBig.Precision, lcSmall.Precision)
	}
	if lcBig.Precision > 0.8 {
		t.Fatalf("512us deviation should hurt badly, got %.3f", lcBig.Precision)
	}
}

func TestAblationMergeShape(t *testing.T) {
	sc := TinyScale(17)
	res := RunAblationMerge(sc)
	var byName = map[string]AblationMergeRow{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r
	}
	afrRow := byName["AFR (OmniWindow)"]
	resRow := byName["merge-results"]
	stRow := byName["merge-states"]
	if resRow.Recall >= afrRow.Recall {
		t.Fatalf("merging results must miss split flows: %.3f vs AFR %.3f", resRow.Recall, afrRow.Recall)
	}
	if stRow.Precision > afrRow.Precision {
		t.Fatalf("merging states must not beat AFR precision: %.3f vs %.3f", stRow.Precision, afrRow.Precision)
	}
}

func TestAblationSALU(t *testing.T) {
	res := RunAblationSALU(4, 1024, 2)
	if res.FlatSALUs != 4 || res.PerRegion != 8 {
		t.Fatalf("SALU counts: flat %d naive %d", res.FlatSALUs, res.PerRegion)
	}
	if res.FlatSRAMKB != res.PerRegionKB {
		t.Fatalf("SRAM should match: %d vs %d", res.FlatSRAMKB, res.PerRegionKB)
	}
}

func TestAblationFlowkeyTradeoff(t *testing.T) {
	sc := TinyScale(19)
	res := RunAblationFlowkey(sc, []int{256, 4096})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Spills <= res.Rows[1].Spills {
		t.Fatalf("smaller buffer must spill more: %d vs %d", res.Rows[0].Spills, res.Rows[1].Spills)
	}
}

func TestAblationSubWindows(t *testing.T) {
	sc := TinyScale(23)
	res := RunAblationSubWindows(sc, []int{2, 5})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Recall < 0.5 {
			t.Fatalf("W=%d recall collapsed: %.3f", r.SubWindows, r.Recall)
		}
	}
}

func TestSketchZoo(t *testing.T) {
	res := RunSketchZoo(TinyScale(29))
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Every sketch in the zoo must be a usable heavy-hitter backend
		// under OmniWindow. UnivMon's Count-Sketch estimates are noisy
		// at tiny memory; hold it to a looser bar.
		bar := 0.8
		if r.Sketch == "UnivMon" {
			bar = 0.4
		}
		if r.Recall < bar || r.Precision < bar {
			t.Fatalf("%s: p=%.3f r=%.3f below bar %.1f", r.Sketch, r.Precision, r.Recall, bar)
		}
		if r.UpdateNsPerPkt <= 0 || r.MemoryBytes <= 0 {
			t.Fatalf("%s: missing measurements: %+v", r.Sketch, r)
		}
	}
	if !strings.Contains(res.Table(), "UnivMon") {
		t.Fatal("table broken")
	}
}

func TestExp9MultiHopAmplifiesError(t *testing.T) {
	cfg := DefaultExp9Config(5)
	cfg.Flows = 150
	cfg.PacketsPerFlow = 120
	cfg.DeviationsNs = []int64{128_000}
	two := RunExp9(cfg)
	cfg.Hops = 5
	five := RunExp9(cfg)
	lc2, _ := two.Get("LocalClock", 128_000)
	lc5, _ := five.Get("LocalClock", 128_000)
	if lc5.Precision >= lc2.Precision {
		t.Fatalf("longer path should hurt local clocks more: 2-hop %.3f vs 5-hop %.3f",
			lc2.Precision, lc5.Precision)
	}
	ow5, _ := five.Get("OmniWindow", 128_000)
	if ow5.Precision != 1 {
		t.Fatalf("OmniWindow must stay exact over 5 hops: %.3f", ow5.Precision)
	}
}

func TestExp1AllQueriesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full Exp#1 sweep")
	}
	sc := TinyScale(31)
	res := RunExp1(sc)
	if len(res.Rows) != 7*6 {
		t.Fatalf("rows = %d want 42", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Precision < 0 || row.Precision > 1 || row.Recall < 0 || row.Recall > 1 {
			t.Fatalf("out-of-range accuracy: %+v", row)
		}
	}
	// The aggregate boundary-miss effect must hold across queries: mean
	// ITW recall below mean ISW recall.
	var itw, isw []float64
	for _, row := range res.Rows {
		switch row.Mechanism {
		case "ITW":
			itw = append(itw, row.Recall)
		case "ISW":
			isw = append(isw, row.Recall)
		}
	}
	if mean(itw) >= mean(isw) {
		t.Fatalf("mean ITW recall %.3f should trail ISW %.3f", mean(itw), mean(isw))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestExp2SpreadAndHeavyShapes(t *testing.T) {
	sc := TinyScale(33)
	pkts := Exp2Trace(sc)
	rows := append(Exp2Spread(sc, pkts), Exp2Heavy(sc, pkts)...)
	byKey := map[string]Exp2Row{}
	for _, r := range rows {
		byKey[r.Task+"/"+r.Sketch+"/"+r.Mechanism] = r
	}
	for _, combo := range []struct{ task, sk string }{
		{"Q8-superspreader", "SPS"}, {"Q8-superspreader", "VBF"},
		{"Q9-heavyhitter", "MV"}, {"Q9-heavyhitter", "HP"},
	} {
		itw := byKey[combo.task+"/"+combo.sk+"/ITW"]
		isw := byKey[combo.task+"/"+combo.sk+"/ISW"]
		otw := byKey[combo.task+"/"+combo.sk+"/OTW"]
		osw := byKey[combo.task+"/"+combo.sk+"/OSW"]
		tw1 := byKey[combo.task+"/"+combo.sk+"/TW1"]
		if itw.Recall >= isw.Recall {
			t.Fatalf("%s/%s: ITW %.3f should trail ISW %.3f", combo.task, combo.sk, itw.Recall, isw.Recall)
		}
		if tw1.Recall >= 1 {
			t.Fatalf("%s/%s: TW1 should lose blackout anomalies", combo.task, combo.sk)
		}
		if otw.Recall < 0.8 || osw.Recall < 0.8 || otw.Precision < 0.8 || osw.Precision < 0.8 {
			t.Fatalf("%s/%s: OmniWindow too far from ideal: otw=%+v osw=%+v", combo.task, combo.sk, otw, osw)
		}
	}
}

func TestExp2HeavySSBelowOSW(t *testing.T) {
	sc := TinyScale(37)
	pkts := Exp2Trace(sc)
	rows := Exp2Heavy(sc, pkts)
	for _, sk := range []string{"MV", "HP"} {
		var ss, osw Exp2Row
		for _, r := range rows {
			if r.Sketch != sk {
				continue
			}
			if r.Mechanism == "SS" {
				ss = r
			}
			if r.Mechanism == "OSW" {
				osw = r
			}
		}
		// Sliding Sketch's stale-window mass costs precision vs OSW.
		if ss.Precision >= osw.Precision {
			t.Fatalf("%s: SS precision %.3f should trail OSW %.3f", sk, ss.Precision, osw.Precision)
		}
	}
}
