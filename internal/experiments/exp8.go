package experiments

import (
	"fmt"
	"time"

	"omniwindow/internal/packet"
	"omniwindow/internal/switchsim"
)

// Exp8Row is one (method, register count) reset timing of Figure 13.
type Exp8Row struct {
	Method    string
	Registers int
	Time      time.Duration
}

// Exp8Result is the Figure 13 reproduction: in-switch reset time vs the
// switch-OS path for 1-4 registers of 64 K two-byte entries.
type Exp8Result struct {
	Rows []Exp8Row
}

// Table renders times in milliseconds.
func (r Exp8Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Method, fmt.Sprintf("%d", row.Registers),
			fmt.Sprintf("%.2f", float64(row.Time.Microseconds())/1e3)})
	}
	return table([]string{"Method", "Registers", "Time(ms)"}, rows)
}

// Get returns the time for (method, registers).
func (r Exp8Result) Get(method string, regs int) (time.Duration, bool) {
	for _, row := range r.Rows {
		if row.Method == method && row.Registers == regs {
			return row.Time, true
		}
	}
	return 0, false
}

// RunExp8 reproduces Exp#8 (Figure 13): the OS-based reset grows linearly
// with the number of registers because the OS cannot reset them
// concurrently, while OmniWindow's clear packets reset the same slot of
// every register in one pipeline pass, so OW-k depends only on the entry
// count and the packet count k. The reset is also executed functionally
// on the simulated switch to verify the state is actually zeroed.
func RunExp8(entries int, costs switchsim.CostModel) Exp8Result {
	var res Exp8Result
	for regs := 1; regs <= 4; regs++ {
		res.Rows = append(res.Rows, Exp8Row{"OS", regs, costs.OSResetTime(regs, entries)})
		for _, k := range []int{4, 8, 16} {
			res.Rows = append(res.Rows, Exp8Row{fmt.Sprintf("OW-%d", k), regs, costs.RecircTime(k, entries)})
		}
	}
	return res
}

// ValidateExp8Reset runs a real clear-packet reset over `regs` registers
// of `entries` entries on the simulated switch and reports whether every
// entry ended zero and how many pipeline passes it took.
func ValidateExp8Reset(regs, entries, packets int) (passes int, clean bool) {
	sw := switchsim.New(0)
	registers := make([]*switchsim.Register[uint64], regs)
	for i := range registers {
		r, err := switchsim.AllocRegister[uint64](sw, fmt.Sprintf("state%d", i), i%4, entries, 2)
		if err != nil {
			panic(err)
		}
		for e := 0; e < entries; e++ {
			r.Poke(e, uint64(e+1))
		}
		registers[i] = r
	}
	resetCounter := 0
	sw.SetProgram(func(p *switchsim.Pass) {
		slot := resetCounter
		resetCounter++
		if slot >= entries {
			p.Drop()
			return
		}
		// One pass: the clear packet resets the same slot of every
		// register (they sit in consecutive stages).
		for _, r := range registers {
			switchsim.Write(p, r, slot, 0)
		}
		p.Recirculate()
	})
	for i := 0; i < packets; i++ {
		out := sw.Inject(&packet.Packet{OW: packet.OWHeader{Flag: packet.OWReset}})
		passes += out.Passes
	}
	clean = true
	for _, r := range registers {
		for e := 0; e < entries; e++ {
			if r.Peek(e) != 0 {
				clean = false
			}
		}
	}
	return passes, clean
}
